package onocsim

import (
	"path/filepath"
	"reflect"
	"testing"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// traceOnDisk round-trips a trace through the binary format and opens it as a
// streaming file source, so equivalence tests exercise the real out-of-core
// path (decode from disk, not a memory adapter).
func traceOnDisk(t *testing.T, tr *Trace) TraceSource {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.sctm")
	if err := SaveTrace(path, tr); err != nil {
		t.Fatalf("save: %v", err)
	}
	src, err := OpenTraceFile(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return src
}

// TestStreamInvarianceNaiveReplay locks in the tentpole contract: streaming
// replay — from memory or from disk, serial or sharded — returns results
// byte-identical to the in-memory engine for every fabric family.
func TestStreamInvarianceNaiveReplay(t *testing.T) {
	for _, tc := range shardCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tr, _, err := CaptureTrace(tc.cfg, IdealNet)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			serial, _, err := RunNaiveReplay(tc.cfg, tr, tc.kind)
			if err != nil {
				t.Fatalf("serial replay: %v", err)
			}
			file := traceOnDisk(t, tr)
			for _, k := range []int{1, 2, 8} {
				cfg := tc.cfg
				cfg.Parallelism.Shards = k
				cfg.Parallelism.Stream = true
				for _, src := range []struct {
					name string
					src  TraceSource
				}{{"mem", MemTraceSource(tr)}, {"file", file}} {
					got, _, err := RunNaiveReplayStream(cfg, src.src, tc.kind)
					if err != nil {
						t.Fatalf("shards=%d %s: %v", k, src.name, err)
					}
					replaysEqual(t, tc.name+"/"+src.name, got, serial)
					if !reflect.DeepEqual(got.NetStats, serial.NetStats) {
						t.Errorf("shards=%d %s: fabric statistics diverge\n got: %+v\nwant: %+v",
							k, src.name, got.NetStats, serial.NetStats)
					}
				}
			}
		})
	}
}

// TestStreamInvarianceSelfCorrection asserts the whole correction trajectory
// is identical when every round streams from disk instead of replaying a
// materialized trace.
func TestStreamInvarianceSelfCorrection(t *testing.T) {
	for _, tc := range shardCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tr, _, err := CaptureTrace(tc.cfg, IdealNet)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			serial, _, err := RunSelfCorrection(tc.cfg, tr, tc.kind)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			file := traceOnDisk(t, tr)
			for _, k := range []int{1, 8} {
				cfg := tc.cfg
				cfg.Parallelism.Shards = k
				cfg.Parallelism.Stream = true
				got, _, err := RunSelfCorrectionStream(cfg, file, tc.kind)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				if !reflect.DeepEqual(got.Iterations, serial.Iterations) {
					t.Errorf("shards=%d: iteration trajectories diverge:\n stream: %+v\n serial: %+v",
						k, got.Iterations, serial.Iterations)
				}
				replaysEqual(t, tc.name, got.Final, serial.Final)
				if got.Converged != serial.Converged {
					t.Errorf("shards=%d: converged %v, want %v", k, got.Converged, serial.Converged)
				}
				if got.TotalCycles != serial.TotalCycles {
					t.Errorf("shards=%d: total cycles %d, want %d", k, got.TotalCycles, serial.TotalCycles)
				}
			}
		})
	}
}

// TestStreamSummaryMatchesReplay checks the constant-residency tier: summary
// fields equal the full replay's on the same fabric.
func TestStreamSummaryMatchesReplay(t *testing.T) {
	cfg := smallConfig()
	tr, _, err := CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	full, _, err := RunNaiveReplay(cfg, tr, IdealNet)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	sum, _, err := RunNaiveReplaySummary(cfg, traceOnDisk(t, tr), IdealNet)
	if err != nil {
		t.Fatalf("summary: %v", err)
	}
	if sum.Events != len(tr.Events) {
		t.Errorf("events %d, want %d", sum.Events, len(tr.Events))
	}
	if sum.Makespan != full.Makespan {
		t.Errorf("makespan %d, want %d", sum.Makespan, full.Makespan)
	}
	if sum.MeanLatency != full.MeanLatency {
		t.Errorf("mean latency %g, want %g", sum.MeanLatency, full.MeanLatency)
	}
	if sum.Cycles != full.Cycles {
		t.Errorf("cycles %d, want %d", sum.Cycles, full.Cycles)
	}
	if !reflect.DeepEqual(sum.NetStats, full.NetStats) {
		t.Errorf("fabric statistics diverge\n got: %+v\nwant: %+v", sum.NetStats, full.NetStats)
	}
}

// holdoutTrace needs more than n/2 events resident at once: the first half of
// the stream injects late (t=500+), the second half early (t=0+), so reaching
// the first due event forces the decoder to hold the entire late block.
func holdoutTrace(n int) *Trace {
	tr := &Trace{Nodes: 4, Workload: "holdout", RefMakespan: sim.Tick(1000 + 10*n)}
	for i := 0; i < n; i++ {
		at := sim.Tick(500 + i)
		if i >= n/2 {
			at = sim.Tick(i - n/2)
		}
		tr.Events = append(tr.Events, trace.Event{
			ID: trace.EventID(i + 1), Src: 0, Dst: 1, Bytes: 8,
			Class: noc.ClassRequest, Kind: trace.KindData,
			Gap: 1, RefInject: at, RefArrive: at + 5,
		})
	}
	return tr
}

// TestStreamWindowTooSmallErrors pins the window-cap contract: a schedule that
// needs more resident events than the window fails loudly and immediately —
// no deadlock, no silent reorder.
func TestStreamWindowTooSmallErrors(t *testing.T) {
	tr := holdoutTrace(10)
	cfg := smallConfig()
	cfg.System.Cores = 4
	cfg.Parallelism.Stream = true
	cfg.Parallelism.WindowEvents = 4

	if _, _, err := RunNaiveReplayStream(cfg, MemTraceSource(tr), IdealNet); err == nil {
		t.Fatal("undersized window accepted")
	}

	// The same trace replays fine once the window covers the holdout span.
	cfg.Parallelism.WindowEvents = 10
	got, _, err := RunNaiveReplayStream(cfg, MemTraceSource(tr), IdealNet)
	if err != nil {
		t.Fatalf("sufficient window: %v", err)
	}
	want, _, err := RunNaiveReplay(cfg, tr, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	replaysEqual(t, "holdout", got, want)
}

// TestStreamDegenerateTraces pins the edge cases: an empty trace and a
// single-source chain replay identically through every engine tier.
func TestStreamDegenerateTraces(t *testing.T) {
	cfg := smallConfig()
	cfg.System.Cores = 4
	for _, tc := range []struct {
		name string
		tr   *Trace
	}{
		{"empty", &Trace{Nodes: 4, Workload: "empty", RefMakespan: 100}},
		{"single-source", singleSourceChain(40)},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want, _, err := RunNaiveReplay(cfg, tc.tr, IdealNet)
			if err != nil {
				t.Fatalf("in-memory: %v", err)
			}
			for _, k := range []int{1, 2, 8} {
				c := cfg
				c.Parallelism.Shards = k
				c.Parallelism.Stream = true
				got, _, err := RunNaiveReplayStream(c, MemTraceSource(tc.tr), IdealNet)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				replaysEqual(t, tc.name, got, want)
			}
			sum, _, err := RunNaiveReplaySummary(cfg, MemTraceSource(tc.tr), IdealNet)
			if err != nil {
				t.Fatalf("summary: %v", err)
			}
			if sum.Makespan != want.Makespan || sum.Cycles != want.Cycles || sum.MeanLatency != want.MeanLatency {
				t.Errorf("summary (%d, %d, %g), want (%d, %d, %g)",
					sum.Makespan, sum.Cycles, sum.MeanLatency, want.Makespan, want.Cycles, want.MeanLatency)
			}
		})
	}
}

// singleSourceChain is one node sending a strict program-order chain: every
// event depends on its predecessor, all traffic from node 0.
func singleSourceChain(n int) *Trace {
	tr := &Trace{Nodes: 4, Workload: "chain", RefMakespan: sim.Tick(10 * n)}
	for i := 0; i < n; i++ {
		e := trace.Event{
			ID: trace.EventID(i + 1), Src: 0, Dst: 1 + i%3, Bytes: 16,
			Class: noc.ClassRequest, Kind: trace.KindData,
			Gap: 2, RefInject: sim.Tick(3 * i), RefArrive: sim.Tick(3*i + 7),
		}
		if i > 0 {
			e.Deps = []trace.Dep{{On: trace.EventID(i), Class: trace.DepProgram}}
		}
		tr.Events = append(tr.Events, e)
	}
	return tr
}

// TestStreamExcludedFromFingerprint extends the cache-compatibility contract
// to the streaming knobs: an execution detail that cannot change results must
// not split the result-memo or disk-cache key space.
func TestStreamExcludedFromFingerprint(t *testing.T) {
	base := smallConfig()
	fp0, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct {
		stream bool
		window int
	}{{true, 0}, {true, 1 << 12}, {false, 1 << 20}, {true, -1}} {
		cfg := base
		cfg.Parallelism.Stream = p.stream
		cfg.Parallelism.WindowEvents = p.window
		fp, err := cfg.Fingerprint()
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if fp != fp0 {
			t.Errorf("%+v changes fingerprint: %s vs %s", p, fp, fp0)
		}
	}
}

// TestStreamWindowValidation checks the WindowEvents bounds in Config.Validate.
func TestStreamWindowValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Parallelism.WindowEvents = -2
	if err := cfg.Validate(); err == nil {
		t.Error("window below -1 accepted")
	}
	cfg.Parallelism.WindowEvents = 1 << 32
	if err := cfg.Validate(); err == nil {
		t.Error("implausible window accepted")
	}
	for _, w := range []int{-1, 0, 1 << 16} {
		cfg.Parallelism.WindowEvents = w
		if err := cfg.Validate(); err != nil {
			t.Errorf("window=%d rejected: %v", w, err)
		}
	}
}

// TestTraceDigestAgreesAcrossRepresentations: a file written by SaveTrace
// digests identically to a MemSource of the same trace (the file holds the
// canonical encoding MemSource hashes), and distinct traces get distinct
// digests.
func TestTraceDigestAgreesAcrossRepresentations(t *testing.T) {
	cfg := smallConfig()
	tr, _, err := CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	file := traceOnDisk(t, tr).(*trace.FileSource)
	mem := MemTraceSource(tr).(*trace.MemSource)
	fd, err := file.Digest()
	if err != nil {
		t.Fatalf("file digest: %v", err)
	}
	md, err := mem.Digest()
	if err != nil {
		t.Fatalf("mem digest: %v", err)
	}
	if fd != md {
		t.Errorf("digests differ: file=%s mem=%s", fd, md)
	}
	if len(fd) != len("sha256:")+64 || fd[:7] != "sha256:" {
		t.Errorf("malformed digest %q", fd)
	}
	other := cfg
	other.Workload.Scale = 8
	tr2, _, err := CaptureTrace(other, IdealNet)
	if err != nil {
		t.Fatalf("capture 2: %v", err)
	}
	md2, err := MemTraceSource(tr2).(*trace.MemSource).Digest()
	if err != nil {
		t.Fatal(err)
	}
	if md2 == md {
		t.Error("distinct traces share a digest")
	}
}

// TestSessionStreamReplayCache: streaming replays through a Session are
// memoized by trace content — a second run of the same file is a cache hit,
// and a MemSource of the same trace hits the entry the file computed.
func TestSessionStreamReplayCache(t *testing.T) {
	cfg := smallConfig()
	cfg.Parallelism.Stream = true
	tr, _, err := CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	file := traceOnDisk(t, tr)
	s := NewSession("")

	first, _, err := s.RunSelfCorrectionStream(cfg, file, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if hits := s.CacheStats().Hits; hits != 0 {
		t.Fatalf("unexpected hits before re-run: %d", hits)
	}
	again, _, err := s.RunSelfCorrectionStream(cfg, file, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Error("cached streaming correction differs from computed one")
	}
	if hits := s.CacheStats().Hits; hits != 1 {
		t.Errorf("re-run hits = %d, want 1", hits)
	}
	fromMem, _, err := s.RunSelfCorrectionStream(cfg, MemTraceSource(tr), Optical)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, fromMem) {
		t.Error("mem-source run missed the file-source cache entry")
	}
	if hits := s.CacheStats().Hits; hits != 2 {
		t.Errorf("cross-representation hits = %d, want 2", hits)
	}

	nv, _, err := s.RunNaiveReplayStream(cfg, file, Optical)
	if err != nil {
		t.Fatal(err)
	}
	nv2, _, err := s.RunNaiveReplayStream(cfg, file, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nv, nv2) {
		t.Error("cached streaming naive replay differs")
	}
	if hits := s.CacheStats().Hits; hits != 3 {
		t.Errorf("naive replay re-run hits = %d, want 3", hits)
	}
}
