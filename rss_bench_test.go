// Memory benchmarks for the streaming out-of-core replay path. The headline
// contract: resident memory stays O(window + nodes) while the trace grows
// 10–100x, so traces far larger than RAM replay at flat RSS. Peak residency
// is sampled as live heap after GC at points during the decode stream and
// reported as the custom unit "max-rss-bytes", which cmd/benchjson folds
// into the snapshot (min across -count repeats) and gates alongside ns/op.
package onocsim_test

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"onocsim"
	"onocsim/internal/trace"
	"onocsim/internal/workload"
)

// peakSampler wraps a TraceSource and records the peak live heap observed
// while a consumer streams through it. Sampling forces a GC so the number is
// residency (live bytes), not allocation churn.
type peakSampler struct {
	src   onocsim.TraceSource
	every int
	peak  uint64
}

func (p *peakSampler) Meta() trace.Meta { return p.src.Meta() }

func (p *peakSampler) Pass() (trace.Iterator, error) {
	it, err := p.src.Pass()
	if err != nil {
		return nil, err
	}
	return &samplerIter{it: it, p: p}, nil
}

func (p *peakSampler) sample() {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > p.peak {
		p.peak = ms.HeapAlloc
	}
}

type samplerIter struct {
	it trace.Iterator
	p  *peakSampler
	n  int
}

func (s *samplerIter) Next(e *trace.Event) (bool, error) {
	ok, err := s.it.Next(e)
	s.n++
	if s.n%s.p.every == 0 {
		s.p.sample()
	}
	return ok, err
}

func (s *samplerIter) Close() error { return s.it.Close() }

// hugeOnDisk generates a synthetic trace of the given length on disk and
// returns its path. Nothing is materialized: generation streams too.
func hugeOnDisk(tb testing.TB, dir string, events int) string {
	tb.Helper()
	path := filepath.Join(dir, fmt.Sprintf("huge-%d.sctm", events))
	spec := workload.HugeSpec{Nodes: 16, Events: events, Pattern: "uniform", Bytes: 64, Gap: 20, Seed: 42}
	if _, err := workload.WriteHugeFile(path, spec); err != nil {
		tb.Fatal(err)
	}
	return path
}

func rssConfig() onocsim.Config {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	return cfg
}

// streamPeakResidency replays the trace through the constant-residency
// summary tier and returns the peak live heap observed mid-stream.
func streamPeakResidency(tb testing.TB, path string) uint64 {
	tb.Helper()
	src, err := onocsim.OpenTraceFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	sampler := &peakSampler{src: src, every: 4096}
	sampler.sample()
	if _, _, err := onocsim.RunNaiveReplaySummary(rssConfig(), sampler, onocsim.IdealNet); err != nil {
		tb.Fatal(err)
	}
	sampler.sample()
	return sampler.peak
}

// TestStreamReplayFlatRSS is the acceptance gate for the out-of-core
// contract: growing the trace 10x must not grow streaming-replay residency
// past 2x. A materialized replay of the large trace is measured alongside to
// prove the probe can see O(events) residency when it exists.
func TestStreamReplayFlatRSS(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a 200k-event trace")
	}
	dir := t.TempDir()
	const small, factor = 20_000, 10

	smallPeak := streamPeakResidency(t, hugeOnDisk(t, dir, small))
	largePath := hugeOnDisk(t, dir, small*factor)
	largePeak := streamPeakResidency(t, largePath)
	t.Logf("streaming peak residency: %d B at %d events, %d B at %d events",
		smallPeak, small, largePeak, small*factor)
	if largePeak > 2*smallPeak {
		t.Errorf("streaming residency grew with the trace: %d B -> %d B across a %dx longer trace",
			smallPeak, largePeak, factor)
	}

	// Control: the materialized path must show the growth streaming avoids —
	// otherwise this test is measuring nothing.
	tr, err := onocsim.LoadTrace(largePath)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	materialized := ms.HeapAlloc
	runtime.KeepAlive(tr)
	t.Logf("materialized trace residency: %d B", materialized)
	if materialized < 2*largePeak {
		t.Errorf("materialized residency %d B is not visibly above streaming peak %d B; RSS probe is insensitive",
			materialized, largePeak)
	}
}

// BenchmarkStreamReplaySummaryRSS replays a 100k-event on-disk trace through
// the constant-residency tier, reporting peak residency and allocation rate
// alongside wall time. This row is the BENCH gate for the memory contract.
func BenchmarkStreamReplaySummaryRSS(b *testing.B) {
	const events = 100_000
	path := hugeOnDisk(b, b.TempDir(), events)
	src, err := onocsim.OpenTraceFile(path)
	if err != nil {
		b.Fatal(err)
	}
	sampler := &peakSampler{src: src, every: 16_384}
	cfg := rssConfig()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startMallocs := ms.Mallocs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := onocsim.RunNaiveReplaySummary(cfg, sampler, onocsim.IdealNet); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(sampler.peak), "max-rss-bytes")
	b.ReportMetric(float64(ms.Mallocs-startMallocs)/float64(b.N)/events, "allocs/event")
}

// BenchmarkInMemoryReplayRSS is the materialized counterpart: the same trace
// loaded whole and replayed serially, with residency measured while the
// event slice is live. The max-rss-bytes contrast with the streaming row is
// the point of the pair.
func BenchmarkInMemoryReplayRSS(b *testing.B) {
	path := hugeOnDisk(b, b.TempDir(), 100_000)
	cfg := rssConfig()
	var peak uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := onocsim.LoadTrace(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := onocsim.RunNaiveReplay(cfg, tr, onocsim.IdealNet); err != nil {
			b.Fatal(err)
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		runtime.KeepAlive(tr)
	}
	b.StopTimer()
	b.ReportMetric(float64(peak), "max-rss-bytes")
}

// BenchmarkNaiveReplayStream and BenchmarkNaiveReplayInMemory are the
// wall-clock overhead pair: same captured trace, identical results, one
// streaming decode per replay vs direct slice indexing. The streaming row
// staying within a few percent of the in-memory row is the perf acceptance
// for the decoder.
func BenchmarkNaiveReplayStream(b *testing.B) {
	tr := captureBenchTrace(b)
	cfg := rssConfig()
	src := onocsim.MemTraceSource(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := onocsim.RunNaiveReplayStream(cfg, src, onocsim.Optical); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveReplayInMemory(b *testing.B) {
	tr := captureBenchTrace(b)
	cfg := rssConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := onocsim.RunNaiveReplay(cfg, tr, onocsim.Optical); err != nil {
			b.Fatal(err)
		}
	}
}

// captureBenchTrace captures one real dependency-annotated trace for the
// overhead pair (memoized: capture cost must not pollute either row).
func captureBenchTrace(b *testing.B) *onocsim.Trace {
	b.Helper()
	benchTraceOnce.Do(func() {
		cfg := rssConfig()
		cfg.Workload.Kernel = "stencil"
		cfg.Workload.Scale = 8
		cfg.Workload.Iterations = 4
		benchTrace, benchTraceErr = func() (*onocsim.Trace, error) {
			tr, _, err := onocsim.CaptureTrace(cfg, onocsim.IdealNet)
			return tr, err
		}()
	})
	if benchTraceErr != nil {
		b.Fatal(benchTraceErr)
	}
	return benchTrace
}

var (
	benchTraceOnce sync.Once
	benchTrace     *onocsim.Trace
	benchTraceErr  error
)
