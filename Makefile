# onocsim build targets. Everything is plain `go` — the Makefile only names
# the common invocations.

GO ?= go

.PHONY: all build vet fmt-check check sweep-smoke test test-race loadtest bench bench-json bench-mem bench-incr report report-csv experiments-md examples clean

all: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l prints unformatted files; any output fails the target.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Static checks plus the golden-file rendering gate: the ASCII output of the
# pinned experiments must stay byte-identical (cmd/expreport/testdata).
check: vet fmt-check sweep-smoke
	$(GO) test ./cmd/expreport/ -run TestGolden -count=1

# End-to-end sweep smoke: a committed micro-grid through the CLI pipeline
# (expand -> analytic prefilter -> prune -> simulate -> Pareto front). The
# tables are discarded; any pipeline regression fails the exit code.
sweep-smoke:
	$(GO) run ./cmd/onocsim -mode sweep -sweep cmd/onocsim/testdata/smoke_sweep.json > /dev/null

# Tier-1 gate: vet runs first so static mistakes fail fast, before the
# (much slower) test sweep; the golden rendering tests run as part of the
# cmd/expreport package.
test: vet
	$(GO) test ./...

# The serial simulators are single-goroutine by design; the race detector
# guards the experiment harness's concurrent study fan-out, the sharded
# conservative-lookahead engine (barrier protocol in internal/sim, shard
# partition/merge in internal/core), the incremental correction loop's
# per-shard checkpoint ladders (capture and restore run inside the shard
# goroutines; internal/core's incremental tests cover every fabric ×
# preset × shard count), the streaming decoders feeding per-shard runners
# (internal/trace sources hand out concurrent passes), the fault
# injector's lazily extended per-channel timelines under sharded replay,
# and the analytic estimator's shared probe cache. The service packages run
# here too: the daemon's whole job is concurrent clients sharing one session
# (single-flight dedup, the admission scheduler, the SSE hub), and the job
# and sweep packages fan hundreds of admission-scheduled arms out of one
# session.
test-race:
	$(GO) test -race ./internal/analytic/ ./internal/experiments/ ./internal/sim/ ./internal/core/ ./internal/fault/ ./internal/trace/ ./internal/service/ ./internal/job/ ./internal/sweep/ ./cmd/onocsimd/ .

# Service load harness: a burst of mixed cost-class requests against an
# in-process daemon, asserting the cache absorbs the burst (flight count,
# not latency — meaningful on noisy hosts) and that drain stays clean.
# Scale the burst with ONOCSIMD_LOAD_CLIENTS.
loadtest:
	ONOCSIMD_LOAD_CLIENTS=$${ONOCSIMD_LOAD_CLIENTS:-64} $(GO) test -race ./internal/service/ -run TestLoadBurst -count=1 -v

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot: runs the root-package benchmarks plus
# the engine micro-benchmarks, folds the results into $(BENCH_OUT) against
# the committed $(BENCH_BASE) reference, and fails on a >25% regression so
# earlier PRs' performance wins stay locked in. The suite runs three full
# passes and benchjson collapses repeated lines to each benchmark's fastest
# run: the shared CI host drifts between fast and slow phases lasting
# minutes (±40% swings observed on untouched microbenchmarks), so the
# passes — spread over the whole wall-clock of the run — give every
# benchmark a shot at a fast phase, where `-count=N` repeats land
# back-to-back inside a single phase. Override the variables to
# re-baseline, e.g. `make bench-json BENCH_OUT=tmp.json BENCH_BASE=BENCH_PR6.json`.
# BENCH_TOLERANCE loosens the timing threshold on a noisy host
# (`BENCH_TOLERANCE=40 make bench-json`); the counter gates stay strict.
BENCH_OUT ?= BENCH_PR10.json
BENCH_BASE ?= BENCH_PR9.json
BENCH_TOLERANCE ?= 25
bench-json:
	for i in 1 2 3; do $(GO) test -run '^$$' -bench=. -benchmem . ./internal/sim/ || exit 1; done | $(GO) run ./cmd/benchjson -out $(BENCH_OUT) -baseline $(BENCH_BASE) -maxregress $(BENCH_TOLERANCE)

# Incremental-correction snapshot: just the full-vs-incremental benchmark
# family, folded into $(BENCH_OUT) against $(BENCH_BASE). The gate leans on
# the deterministic counters — the replayed-events metric and allocs/op don't
# move with host load — while the timing threshold stays overridable via
# BENCH_TOLERANCE for noisy hosts.
bench-incr:
	for i in 1 2 3; do $(GO) test -run '^$$' -bench 'SelfCorrectIncremental|SelfCorrection$$' -benchmem . || exit 1; done | $(GO) run ./cmd/benchjson -out $(BENCH_OUT) -baseline $(BENCH_BASE) -maxregress $(BENCH_TOLERANCE)

# Memory-focused snapshot: just the RSS/overhead benchmark family, folded
# into the same $(BENCH_OUT) gate. The max-rss-bytes rows are what pin the
# streaming engines' O(window) residency contract — benchjson collapses the
# three passes to each row's minimum and fails if residency (or time)
# regresses beyond the limit vs $(BENCH_BASE).
bench-mem:
	for i in 1 2 3; do $(GO) test -run '^$$' -bench 'RSS|NaiveReplayStream|NaiveReplayInMemory' -benchmem . || exit 1; done | $(GO) run ./cmd/benchjson -out $(BENCH_OUT) -baseline $(BENCH_BASE) -maxregress $(BENCH_TOLERANCE)

# Regenerate the full evaluation (R1–R20) at paper scale.
report:
	$(GO) run ./cmd/expreport -exp all | tee results_full.txt

report-csv:
	$(GO) run ./cmd/expreport -exp all -format csv

# Markdown rendering of the evaluation via the typed-JSON path — the same
# pipeline that regenerates EXPERIMENTS.md's measured tables.
experiments-md:
	$(GO) run ./cmd/expreport -exp all -format json | $(GO) run ./cmd/mdreport

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/casestudy
	$(GO) run ./examples/sweep
	$(GO) run ./examples/tracefile
	$(GO) run ./examples/designspace

clean:
	$(GO) clean ./...
