# onocsim build targets. Everything is plain `go` — the Makefile only names
# the common invocations.

GO ?= go

.PHONY: all build vet test test-race bench bench-json report report-csv examples clean

all: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulators are single-goroutine by design; the race detector guards
# the experiment harness's concurrent study fan-out.
test-race:
	$(GO) test -race ./internal/experiments/ .

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark snapshot: runs the root-package benchmarks plus
# the engine micro-benchmarks, folds the results into BENCH_PR2.json against
# the committed BENCH_PR1.json reference, and fails on a >25% regression so
# the PR 1 hot-loop wins stay locked in.
bench-json:
	$(GO) test -run '^$$' -bench=. -benchmem . ./internal/sim/ | $(GO) run ./cmd/benchjson -out BENCH_PR2.json -baseline BENCH_PR1.json -maxregress 25

# Regenerate the full evaluation (R1–R16) at paper scale.
report:
	$(GO) run ./cmd/expreport -exp all | tee results_full.txt

report-csv:
	$(GO) run ./cmd/expreport -exp all -csv

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/casestudy
	$(GO) run ./examples/sweep
	$(GO) run ./examples/tracefile
	$(GO) run ./examples/designspace

clean:
	$(GO) clean ./...
