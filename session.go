package onocsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"onocsim/internal/config"
	"onocsim/internal/simcache"
	"onocsim/internal/trace"
)

// Session memoizes simulation results. Every simulation in this package is
// deterministic — the same validated config produces bit-identical results —
// so a (config fingerprint, fabric kind, operation) triple fully identifies
// a result and never needs computing twice. A Session carries that cache as
// an explicit handle: library users opt in by routing calls through one, and
// code holding no Session (or a nil *Session — every method is nil-safe)
// gets the plain uncached functions.
//
// Concurrent requests for the same result are single-flighted: the first
// computes, duplicates block and share. Cached wall-clock fields (e.g.
// GroundTruth.WallTime) report the original computation's timing.
//
// A Session is safe for concurrent use by multiple goroutines.
type Session struct {
	cache *simcache.Cache

	// mu guards traces and gen. The registry remembers which *Trace values
	// this session produced and under which key, so replay results can be
	// memoized: a replay is only cacheable when the identity of its input
	// trace is known. Traces from elsewhere (transformed, hand-built,
	// loaded from a file) replay uncached — correct, just not memoized.
	//
	// The registry is bounded (maxTraceRegistry, LRU eviction): a long-lived
	// process capturing many distinct configs must not grow this map — and
	// through its keys, pin the traces themselves — without limit. Evicted
	// traces replay uncached from then on, which is the same graceful
	// degradation as an unknown trace.
	mu     sync.Mutex
	traces map[*Trace]traceEntry
	gen    uint64

	// parked stashes the resume state of parked self-correction runs under
	// their cache key. A parked result is never cached, so the next request
	// for the same key re-enters the compute closure — which takes the stash
	// and resumes the loop at the parked round boundary instead of replaying
	// the completed rounds. The stash is in-process only (fabric snapshots
	// do not serialize) and bounded like the trace registry.
	parked map[simcache.Key]parkEntry
}

// parkEntry is one stashed resume state plus a recency stamp.
type parkEntry struct {
	state *CorrectionPark
	gen   uint64
}

// maxParkStash caps the parked-run stash: each entry pins fabric replicas
// and per-event slices, so a draining daemon parking dozens of tenants must
// not hold them all forever. Evicted runs resume from scratch — the same
// graceful degradation as before resume existed.
const maxParkStash = 16

// stashPark remembers a parked run's resume state, evicting the
// least-recently-stashed entry when full.
func (s *Session) stashPark(key simcache.Key, st *CorrectionPark) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	if len(s.parked) >= maxParkStash {
		if _, ok := s.parked[key]; !ok {
			var oldest simcache.Key
			oldestGen := uint64(math.MaxUint64)
			for k, e := range s.parked {
				if e.gen < oldestGen {
					oldest, oldestGen = k, e.gen
				}
			}
			delete(s.parked, oldest)
		}
	}
	s.parked[key] = parkEntry{state: st, gen: s.gen}
}

// takePark removes and returns the stashed resume state for key. Take
// semantics keep the single-use contract: a ParkState's runner must never
// serve two resumes, so whoever takes it owns it.
func (s *Session) takePark(key simcache.Key) *CorrectionPark {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.parked[key]
	if !ok {
		return nil
	}
	delete(s.parked, key)
	return e.state
}

// traceEntry is one registry slot: the capture key plus a recency stamp.
type traceEntry struct {
	key simcache.Key
	gen uint64
}

// maxTraceRegistry caps the trace registry. 256 distinct live traces is far
// beyond any sweep in the repo; the cap exists so a daemon serving arbitrary
// configs for weeks holds a bounded map, not as a tuning knob.
const maxTraceRegistry = 256

// rememberTrace registers tr under its capture key, evicting the
// least-recently-used entry when the registry is full. Re-registering an
// existing trace only refreshes its recency.
func (s *Session) rememberTrace(tr *Trace, key simcache.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	if e, ok := s.traces[tr]; ok {
		e.gen = s.gen
		s.traces[tr] = e
		return
	}
	if len(s.traces) >= maxTraceRegistry {
		var oldest *Trace
		oldestGen := uint64(math.MaxUint64)
		for t, e := range s.traces {
			if e.gen < oldestGen {
				oldest, oldestGen = t, e.gen
			}
		}
		delete(s.traces, oldest)
	}
	s.traces[tr] = traceEntry{key: key, gen: s.gen}
}

// lookupTrace returns tr's capture key and refreshes its recency, so traces
// in active use don't age out under registration churn.
func (s *Session) lookupTrace(tr *Trace) (simcache.Key, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.traces[tr]
	if !ok {
		return simcache.Key{}, false
	}
	s.gen++
	e.gen = s.gen
	s.traces[tr] = e
	return e.key, true
}

// NewSession returns an empty session. cacheDir optionally enables the disk
// layer: captured traces (binary trace codec) and simulation results
// (versioned JSON) are persisted there and reloaded by later invocations;
// pass "" for a purely in-memory session.
func NewSession(cacheDir string) *Session {
	return &Session{
		cache:  simcache.New(cacheDir),
		traces: map[*Trace]traceEntry{},
		parked: map[simcache.Key]parkEntry{},
	}
}

// CacheStats reports cache traffic; zero for a nil session.
func (s *Session) CacheStats() simcache.Stats {
	if s == nil {
		return simcache.Stats{}
	}
	return s.cache.Stats()
}

// SetProgress installs an observer notified of every simulation this session
// resolves: computed fresh, deduplicated against an in-flight computation,
// or served from the memory or disk cache. The observer runs on the
// requesting goroutine and must be safe for concurrent use; nil removes it.
// No-op on a nil session.
func (s *Session) SetProgress(p Progress) {
	if s == nil {
		return
	}
	if p == nil {
		s.cache.SetNotify(nil)
		return
	}
	s.cache.SetNotify(func(key simcache.Key, outcome simcache.Outcome) {
		ev := ProgressEvent{Sim: key.String(), Op: string(key.Op)}
		switch outcome {
		case simcache.OutcomeComputed:
			ev.Kind = ProgressSimComputed
		case simcache.OutcomeHit:
			ev.Kind = ProgressSimCacheHit
		case simcache.OutcomeWait:
			ev.Kind = ProgressSimWait
		case simcache.OutcomeDiskHit:
			ev.Kind = ProgressSimDiskHit
		default:
			return
		}
		p.Event(ev)
	})
}

// normalizeFor strips the config sections an operation cannot observe
// before fingerprinting, so parameter sweeps dedup everything the swept
// parameter does not touch: an optical-loss sweep reuses one ideal-fabric
// capture across every point, an SCTM-window sweep reuses one ground truth.
// Masked sections are replaced by their defaults (not zeroed) so the
// normalized config still validates. The masking must be exact — keeping an
// unread field only costs cache hits, but masking a read one would alias
// distinct results — so each rule cites what the operations actually read.
func normalizeFor(cfg Config, kind NetworkKind, op simcache.Op) Config {
	def := config.Default()
	n := cfg
	// Every cached operation receives its fabric kind explicitly; the
	// config's own Network field only picks a default elsewhere.
	n.Network = def.Network
	// Parallelism cannot affect any result (the sharded engine is
	// byte-identical to the serial one) and is already excluded at the
	// Fingerprint level; normalizing it here as well keeps the invariant
	// visible where the other masking rules live.
	n.Parallelism = def.Parallelism
	// SCTM parameters feed only the correction engine and the coupled
	// replay's two dependency toggles.
	switch op {
	case simcache.OpSCTM:
		// Incremental replay is byte-identical to full replay (it only
		// changes how rounds are executed, like Parallelism), so both modes
		// must share one cached result. Note the work counters
		// (ReplayedEvents/SavedCycles) are execution-mode metadata: a cache
		// hit reports whichever mode computed the entry first.
		n.SCTM.Incremental = def.SCTM.Incremental
	case simcache.OpCoupled, simcache.OpEstimate:
		sc := cfg.SCTM
		n.SCTM = def.SCTM
		n.SCTM.DisableSyncDeps = sc.DisableSyncDeps
		n.SCTM.DisableCausalDeps = sc.DisableCausalDeps
	default:
		n.SCTM = def.SCTM
	}
	// Fault injection exists only in the photonic fabrics; for the rest the
	// section is inert and masked like any unread fabric section.
	if kind != config.NetOptical && kind != config.NetHybrid {
		n.Faults = def.Faults
	}
	// Replays observe only the target fabric (plus the toggles above): the
	// program generation inputs are baked into the trace, whose identity is
	// keyed separately via Key.Capture. Seed is an exception when the
	// target fabric injects faults — fault schedules derive from (Seed,
	// Faults), so two seeds degrade the fabric differently and must not
	// share a replay result.
	switch op {
	case simcache.OpNaive, simcache.OpCoupled, simcache.OpSCTM, simcache.OpEstimate:
		// The closed-form estimator derates faults by expected value and
		// never samples a fault schedule, so its result is seed-independent
		// even with faults enabled.
		if !n.Faults.Enabled() || op == simcache.OpEstimate {
			n.Seed = def.Seed
		}
		n.System = def.System
		n.Workload = def.Workload
		n.MaxCycles = def.MaxCycles
	}
	// Fabric sections are read only when a network of their kind is built,
	// with two scalar exceptions handled below.
	if kind != config.NetElectrical && kind != config.NetHybrid {
		flit := n.Mesh.FlitBytes
		n.Mesh = def.Mesh
		// The electrical flit granularity prices synthetic offered load on
		// every fabric.
		n.Mesh.FlitBytes = flit
	}
	if kind != config.NetOptical && kind != config.NetHybrid {
		clk := n.Optical.ClockGHz
		n.Optical = def.Optical
		if op == simcache.OpTruth && kind != config.NetElectrical {
			// Ground truth converts cycles to watts at the optical system
			// clock on every non-electrical fabric, ideal included.
			n.Optical.ClockGHz = clk
		}
	}
	if kind != config.NetIdeal {
		n.Ideal = def.Ideal
	}
	if kind != config.NetHybrid {
		n.Hybrid = def.Hybrid
	}
	return n
}

// SelfCorrectionKey returns the cache identity of a self-correction run of
// cfg's kernel workload on the given fabric kind: the normalized fingerprint
// of the correction itself joined with the identity of the ideal-fabric
// capture that feeds it. Two configs with equal keys share one cached result
// through any Session — the design-space sweep planner uses this to collapse
// grid arms that differ only in parameters the operation cannot observe
// (e.g. electrical arms swept across wavelengths) before running anything.
func SelfCorrectionKey(cfg Config, kind NetworkKind) (string, error) {
	capKey, err := sessionKey(cfg, IdealNet, simcache.OpCapture)
	if err != nil {
		return "", err
	}
	runKey, err := sessionKey(cfg, kind, simcache.OpSCTM)
	if err != nil {
		return "", err
	}
	return runKey.Fingerprint + "@" + string(kind) + "+" + capKey.Fingerprint, nil
}

// sessionKey builds the cache key for an operation on a validated config.
func sessionKey(cfg Config, kind NetworkKind, op simcache.Op) (simcache.Key, error) {
	norm := normalizeFor(cfg, kind, op)
	fp, err := norm.Fingerprint()
	if err != nil {
		return simcache.Key{}, err
	}
	return simcache.Key{Fingerprint: fp, Kind: string(kind), Op: op}, nil
}

// replayVal and corrVal wrap replay results with their timings so cached
// hits — memory or disk — report the original computation's wall clock.
// Fields are exported for the disk layer's JSON envelope.
type (
	replayVal struct {
		Res  ReplayResult
		Wall time.Duration
	}
	corrVal struct {
		Res  CorrectionResult
		Wall time.Duration
	}
)

// RunExecutionDriven is the memoized form of the package function.
func (s *Session) RunExecutionDriven(cfg Config, kind NetworkKind) (GroundTruth, error) {
	return s.RunExecutionDrivenContext(context.Background(), cfg, kind)
}

// RunExecutionDrivenContext is the memoized form of the package function.
// The context governs the caller's own computation; a caller deduplicated
// onto another request's in-flight computation shares that computation's
// lifecycle (errors from a cancelled flight propagate to its waiters and are
// never cached).
func (s *Session) RunExecutionDrivenContext(ctx context.Context, cfg Config, kind NetworkKind) (GroundTruth, error) {
	if s == nil {
		return RunExecutionDrivenContext(ctx, cfg, kind)
	}
	key, err := sessionKey(cfg, kind, simcache.OpTruth)
	if err != nil {
		return GroundTruth{}, err
	}
	return simcache.DoValue(s.cache, key, func() (GroundTruth, error) {
		return RunExecutionDrivenContext(ctx, cfg, kind)
	})
}

// CaptureTrace is the memoized form of the package function. The returned
// trace is shared: replay engines treat traces as read-only, so one capture
// serves any number of concurrent replays. With a disk-layer session, the
// capture may be satisfied by a trace persisted by an earlier invocation, in
// which case the reported wall time is the (much smaller) load time.
func (s *Session) CaptureTrace(cfg Config, captureOn NetworkKind) (*Trace, time.Duration, error) {
	return s.CaptureTraceContext(context.Background(), cfg, captureOn)
}

// CaptureTraceContext is the memoized form of the package function; see
// RunExecutionDrivenContext for the context contract.
func (s *Session) CaptureTraceContext(ctx context.Context, cfg Config, captureOn NetworkKind) (*Trace, time.Duration, error) {
	if s == nil {
		return CaptureTraceContext(ctx, cfg, captureOn)
	}
	key, err := sessionKey(cfg, captureOn, simcache.OpCapture)
	if err != nil {
		return nil, 0, err
	}
	tr, wall, err := s.cache.DoTrace(key, func() (*trace.Trace, time.Duration, error) {
		return CaptureTraceContext(ctx, cfg, captureOn)
	})
	if err != nil {
		return nil, 0, err
	}
	s.rememberTrace(tr, key)
	return tr, wall, nil
}

// replayKey keys a replay of tr targeting kind under the replay config. The
// trace's own capture key is folded in, so replays of traces captured on
// different fabrics (or under different configs) never collide. ok is false
// when the trace is unknown to the session and the replay must run uncached.
func (s *Session) replayKey(cfg Config, tr *Trace, kind NetworkKind, op simcache.Op) (simcache.Key, bool, error) {
	capKey, ok := s.lookupTrace(tr)
	if !ok {
		return simcache.Key{}, false, nil
	}
	key, err := sessionKey(cfg, kind, op)
	if err != nil {
		return simcache.Key{}, false, err
	}
	key.Capture = capKey.Fingerprint + "@" + capKey.Kind
	return key, true, nil
}

// RunNaiveReplay is the memoized form of the package function. Replays of
// traces not produced by this session's CaptureTrace run uncached.
func (s *Session) RunNaiveReplay(cfg Config, tr *Trace, kind NetworkKind) (ReplayResult, time.Duration, error) {
	return s.RunNaiveReplayContext(context.Background(), cfg, tr, kind)
}

// RunNaiveReplayContext is the memoized form of the package function; see
// RunExecutionDrivenContext for the context contract.
func (s *Session) RunNaiveReplayContext(ctx context.Context, cfg Config, tr *Trace, kind NetworkKind) (ReplayResult, time.Duration, error) {
	if s == nil {
		return RunNaiveReplayContext(ctx, cfg, tr, kind)
	}
	return s.memoReplay(ctx, cfg, tr, kind, simcache.OpNaive, RunNaiveReplayContext)
}

// RunCoupledReplay is the memoized form of the package function.
func (s *Session) RunCoupledReplay(cfg Config, tr *Trace, kind NetworkKind) (ReplayResult, time.Duration, error) {
	return s.RunCoupledReplayContext(context.Background(), cfg, tr, kind)
}

// RunCoupledReplayContext is the memoized form of the package function; see
// RunExecutionDrivenContext for the context contract.
func (s *Session) RunCoupledReplayContext(ctx context.Context, cfg Config, tr *Trace, kind NetworkKind) (ReplayResult, time.Duration, error) {
	if s == nil {
		return RunCoupledReplayContext(ctx, cfg, tr, kind)
	}
	return s.memoReplay(ctx, cfg, tr, kind, simcache.OpCoupled, RunCoupledReplayContext)
}

// memoReplay implements the shared memoization shape of the two replays.
func (s *Session) memoReplay(ctx context.Context, cfg Config, tr *Trace, kind NetworkKind, op simcache.Op,
	run func(context.Context, Config, *Trace, NetworkKind) (ReplayResult, time.Duration, error)) (ReplayResult, time.Duration, error) {
	key, ok, err := s.replayKey(cfg, tr, kind, op)
	if err != nil {
		return ReplayResult{}, 0, err
	}
	if !ok {
		return run(ctx, cfg, tr, kind)
	}
	rv, err := simcache.DoValue(s.cache, key, func() (replayVal, error) {
		res, wall, err := run(ctx, cfg, tr, kind)
		if err != nil {
			return replayVal{}, err
		}
		return replayVal{Res: res, Wall: wall}, nil
	})
	if err != nil {
		return ReplayResult{}, 0, err
	}
	return rv.Res, rv.Wall, nil
}

// sourceKey keys a replay of a TraceSource targeting kind. Source identity
// comes from the trace *content* digest (trace.Digester), not from session
// bookkeeping, so results persist across invocations and across sources —
// replaying a trace file hits the entry a MemSource of the same trace
// computed, and vice versa. Sources without a digest (or whose digest fails,
// e.g. an unreadable file — the replay will surface the real error) run
// uncached.
func (s *Session) sourceKey(cfg Config, src TraceSource, kind NetworkKind, op simcache.Op) (simcache.Key, bool, error) {
	d, ok := src.(trace.Digester)
	if !ok {
		return simcache.Key{}, false, nil
	}
	digest, err := d.Digest()
	if err != nil {
		return simcache.Key{}, false, nil
	}
	key, err := sessionKey(cfg, kind, op)
	if err != nil {
		return simcache.Key{}, false, err
	}
	key.Capture = digest
	return key, true, nil
}

// RunNaiveReplayStream is the memoized form of the package function: cached
// replay results for out-of-core traces, keyed by the source's content
// digest. On a hit the trace file is not even decoded.
//
// Deprecated: this wrapper cannot be cancelled while it queues for a
// simulation slot; use RunNaiveReplayStreamContext.
func (s *Session) RunNaiveReplayStream(cfg Config, src TraceSource, kind NetworkKind) (ReplayResult, time.Duration, error) {
	return s.RunNaiveReplayStreamContext(context.Background(), cfg, src, kind)
}

// RunNaiveReplayStreamContext is the memoized form of the package function:
// cached replay results for out-of-core traces, keyed by the source's
// content digest. On a hit the trace file is not even decoded. See
// RunExecutionDrivenContext for the context contract.
func (s *Session) RunNaiveReplayStreamContext(ctx context.Context, cfg Config, src TraceSource, kind NetworkKind) (ReplayResult, time.Duration, error) {
	if s == nil {
		return RunNaiveReplayStreamContext(ctx, cfg, src, kind)
	}
	key, ok, err := s.sourceKey(cfg, src, kind, simcache.OpNaive)
	if err != nil {
		return ReplayResult{}, 0, err
	}
	if !ok {
		return RunNaiveReplayStreamContext(ctx, cfg, src, kind)
	}
	rv, err := simcache.DoValue(s.cache, key, func() (replayVal, error) {
		res, wall, err := RunNaiveReplayStreamContext(ctx, cfg, src, kind)
		if err != nil {
			return replayVal{}, err
		}
		return replayVal{Res: res, Wall: wall}, nil
	})
	if err != nil {
		return ReplayResult{}, 0, err
	}
	return rv.Res, rv.Wall, nil
}

// RunSelfCorrectionStream is the memoized form of the package function,
// keyed like RunNaiveReplayStream.
//
// Deprecated: this wrapper cannot be cancelled while it queues for a
// simulation slot; use RunSelfCorrectionStreamContext.
func (s *Session) RunSelfCorrectionStream(cfg Config, src TraceSource, kind NetworkKind) (CorrectionResult, time.Duration, error) {
	return s.RunSelfCorrectionStreamContext(context.Background(), cfg, src, kind)
}

// RunSelfCorrectionStreamContext is the memoized form of the package
// function, keyed like RunNaiveReplayStreamContext. This is how the service
// runs big tenant trace files: the digest-keyed cache means two clients
// posting the same trace path (or byte-identical traces under different
// paths) share one streaming computation.
func (s *Session) RunSelfCorrectionStreamContext(ctx context.Context, cfg Config, src TraceSource, kind NetworkKind) (CorrectionResult, time.Duration, error) {
	if s == nil {
		return RunSelfCorrectionStreamContext(ctx, cfg, src, kind)
	}
	key, ok, err := s.sourceKey(cfg, src, kind, simcache.OpSCTM)
	if err != nil {
		return CorrectionResult{}, 0, err
	}
	if !ok {
		return RunSelfCorrectionStreamContext(ctx, cfg, src, kind)
	}
	cv, err := simcache.DoValue(s.cache, key, func() (corrVal, error) {
		res, wall, err := RunSelfCorrectionStreamContext(ctx, cfg, src, kind)
		if err != nil {
			return corrVal{}, err
		}
		return corrVal{Res: res, Wall: wall}, nil
	})
	if err != nil {
		return CorrectionResult{}, 0, err
	}
	return cv.Res, cv.Wall, nil
}

// RunSelfCorrection is the memoized form of the package function.
func (s *Session) RunSelfCorrection(cfg Config, tr *Trace, kind NetworkKind) (CorrectionResult, time.Duration, error) {
	return s.RunSelfCorrectionContext(context.Background(), cfg, tr, kind)
}

// RunSelfCorrectionContext is the memoized form of the package function. A
// context that ends mid-loop parks the correction at the next round boundary
// (see ErrParked): the computing caller gets the partial trajectory back
// alongside the error, and the parked result is never cached — callers
// deduplicated onto the parked flight receive only the error, since a
// partial result must not masquerade as the converged one.
//
// Parked runs stash their resume state (including the runner's fabric
// checkpoints) under the cache key: the next request for the same
// (config, trace, kind) resumes the loop at the parked round boundary
// instead of re-running the completed rounds, and completes to the same
// byte-identical result an uninterrupted run produces. This is what heals
// service traffic after a client disconnect or a cancelled drain — the
// retry pays only the remaining rounds.
func (s *Session) RunSelfCorrectionContext(ctx context.Context, cfg Config, tr *Trace, kind NetworkKind) (CorrectionResult, time.Duration, error) {
	if s == nil {
		return RunSelfCorrectionContext(ctx, cfg, tr, kind)
	}
	key, ok, err := s.replayKey(cfg, tr, kind, simcache.OpSCTM)
	if err != nil {
		return CorrectionResult{}, 0, err
	}
	if !ok {
		return RunSelfCorrectionContext(ctx, cfg, tr, kind)
	}
	// The stash carries a parked partial result past the cache, which
	// (correctly) drops the value of any failed flight.
	var parked *CorrectionResult
	var parkedWall time.Duration
	cv, err := simcache.DoValue(s.cache, key, func() (corrVal, error) {
		// Take (not peek) inside the closure: only the goroutine that
		// actually computes may consume the single-use resume state —
		// deduplicated waiters never reach here.
		resume := s.takePark(key)
		res, state, wall, err := RunSelfCorrectionParkableContext(ctx, cfg, tr, kind, resume)
		if err != nil {
			if errors.Is(err, ErrParked) {
				parked, parkedWall = &res, wall
				if state != nil {
					s.stashPark(key, state)
				}
			}
			return corrVal{}, err
		}
		return corrVal{Res: res, Wall: wall}, nil
	})
	if err != nil {
		if parked != nil {
			return *parked, parkedWall, err
		}
		return CorrectionResult{}, 0, err
	}
	return cv.Res, cv.Wall, nil
}

// estVal wraps an analytic estimate with its timing for the disk layer.
type estVal struct {
	Res  AnalyticEstimate
	Wall time.Duration
}

// Estimate is the memoized form of EstimateAnalytic: the closed-form
// contention-aware latency estimate of replaying tr on the given fabric
// kind. Cheap enough to screen whole design spaces, cached anyway so
// repeated sweeps over a persisted session cost a map lookup.
func (s *Session) Estimate(cfg Config, tr *Trace, kind NetworkKind) (AnalyticEstimate, time.Duration, error) {
	if s == nil {
		return EstimateAnalytic(cfg, tr, kind)
	}
	key, ok, err := s.replayKey(cfg, tr, kind, simcache.OpEstimate)
	if err != nil {
		return AnalyticEstimate{}, 0, err
	}
	if !ok {
		return EstimateAnalytic(cfg, tr, kind)
	}
	ev, err := simcache.DoValue(s.cache, key, func() (estVal, error) {
		res, wall, err := EstimateAnalytic(cfg, tr, kind)
		if err != nil {
			return estVal{}, err
		}
		return estVal{Res: res, Wall: wall}, nil
	})
	if err != nil {
		return AnalyticEstimate{}, 0, err
	}
	return ev.Res, ev.Wall, nil
}

// RunSyntheticLoad is the memoized form of the package function.
func (s *Session) RunSyntheticLoad(cfg Config, kind NetworkKind) (SyntheticResult, error) {
	return s.RunSyntheticLoadContext(context.Background(), cfg, kind)
}

// RunSyntheticLoadContext is the memoized form of the package function; see
// RunExecutionDrivenContext for the context contract.
func (s *Session) RunSyntheticLoadContext(ctx context.Context, cfg Config, kind NetworkKind) (SyntheticResult, error) {
	if s == nil {
		return RunSyntheticLoadContext(ctx, cfg, kind)
	}
	key, err := sessionKey(cfg, kind, simcache.OpSynthetic)
	if err != nil {
		return SyntheticResult{}, err
	}
	return simcache.DoValue(s.cache, key, func() (SyntheticResult, error) {
		return RunSyntheticLoadContext(ctx, cfg, kind)
	})
}

// RunStudy executes the complete methodology comparison through the
// session: capture the trace on the cheap reference fabric, measure
// execution-driven ground truth on the target, and evaluate every replay
// engine against it.
//
// The phases form a two-stage pipeline. Trace capture and execution-driven
// ground truth are independent, so they run in parallel; the three replay
// engines need only the captured trace, so they start as soon as capture
// finishes — typically while the (much slower) ground-truth run is still
// going. Concurrency is bounded by the process-wide simulation-slot
// semaphore held inside each leaf operation. Every simulation is
// self-contained (own fabric, own RNG streams, own message pools), so the
// results are bit-identical to the sequential schedule; with a non-nil
// session, any phase whose result is already cached (or concurrently being
// computed by another study) is deduplicated instead of re-run.
func (s *Session) RunStudy(cfg Config, target NetworkKind) (*Study, error) {
	return s.RunStudyContext(context.Background(), cfg, target)
}

// RunStudyContext is RunStudy with a cancellable lifecycle: every phase
// queues for its simulation slot under ctx, and the self-correction phase
// parks at a round boundary if ctx ends mid-loop. A cancelled study returns
// the first phase error; partial phase results are discarded (use
// RunSelfCorrectionContext directly to keep a parked trajectory).
func (s *Session) RunStudyContext(ctx context.Context, cfg Config, target NetworkKind) (*Study, error) {
	if err := ValidateNetworkKind(cfg, target); err != nil {
		return nil, err
	}
	st := &Study{Workload: cfg.Workload.Kernel, Target: target}

	var wg sync.WaitGroup
	var truthErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		st.Truth, truthErr = s.RunExecutionDrivenContext(ctx, cfg, target)
	}()

	// Capture runs on the calling goroutine: the replay engines block on it.
	tr, capWall, capErr := s.CaptureTraceContext(ctx, cfg, config.NetIdeal)
	if capErr != nil {
		wg.Wait()
		return nil, fmt.Errorf("onocsim: capture: %w", capErr)
	}
	st.Trace = tr
	st.CaptureWall = capWall

	var naiveErr, coupErr, sctmErr error
	wg.Add(3)
	go func() {
		defer wg.Done()
		st.Naive, st.NaiveWall, naiveErr = s.RunNaiveReplayContext(ctx, cfg, tr, target)
	}()
	go func() {
		defer wg.Done()
		st.Coupled, st.CoupledWall, coupErr = s.RunCoupledReplayContext(ctx, cfg, tr, target)
	}()
	go func() {
		defer wg.Done()
		st.SCTM, st.SCTMWall, sctmErr = s.RunSelfCorrectionContext(ctx, cfg, tr, target)
	}()
	wg.Wait()

	if truthErr != nil {
		return nil, fmt.Errorf("onocsim: ground truth: %w", truthErr)
	}
	if naiveErr != nil {
		return nil, fmt.Errorf("onocsim: naive replay: %w", naiveErr)
	}
	if coupErr != nil {
		return nil, fmt.Errorf("onocsim: coupled replay: %w", coupErr)
	}
	if sctmErr != nil {
		return nil, fmt.Errorf("onocsim: self-correction: %w", sctmErr)
	}
	st.NaiveAcc = Compare(st.Naive, st.Truth)
	st.CoupAcc = Compare(st.Coupled, st.Truth)
	st.SCTMAcc = Compare(st.SCTM.Final, st.Truth)
	return st, nil
}
