package onocsim

import (
	"fmt"
	"sync"
	"time"

	"onocsim/internal/config"
	"onocsim/internal/simcache"
	"onocsim/internal/trace"
)

// Session memoizes simulation results. Every simulation in this package is
// deterministic — the same validated config produces bit-identical results —
// so a (config fingerprint, fabric kind, operation) triple fully identifies
// a result and never needs computing twice. A Session carries that cache as
// an explicit handle: library users opt in by routing calls through one, and
// code holding no Session (or a nil *Session — every method is nil-safe)
// gets the plain uncached functions.
//
// Concurrent requests for the same result are single-flighted: the first
// computes, duplicates block and share. Cached wall-clock fields (e.g.
// GroundTruth.WallTime) report the original computation's timing.
//
// A Session is safe for concurrent use by multiple goroutines.
type Session struct {
	cache *simcache.Cache

	// mu guards traces. The registry remembers which *Trace values this
	// session produced and under which key, so replay results can be
	// memoized: a replay is only cacheable when the identity of its input
	// trace is known. Traces from elsewhere (transformed, hand-built,
	// loaded from a file) replay uncached — correct, just not memoized.
	mu     sync.Mutex
	traces map[*Trace]simcache.Key
}

// NewSession returns an empty session. cacheDir optionally enables the disk
// layer: captured traces (binary trace codec) and simulation results
// (versioned JSON) are persisted there and reloaded by later invocations;
// pass "" for a purely in-memory session.
func NewSession(cacheDir string) *Session {
	return &Session{cache: simcache.New(cacheDir), traces: map[*Trace]simcache.Key{}}
}

// CacheStats reports cache traffic; zero for a nil session.
func (s *Session) CacheStats() simcache.Stats {
	if s == nil {
		return simcache.Stats{}
	}
	return s.cache.Stats()
}

// SetProgress installs an observer notified of every simulation this session
// resolves: computed fresh, deduplicated against an in-flight computation,
// or served from the memory or disk cache. The observer runs on the
// requesting goroutine and must be safe for concurrent use; nil removes it.
// No-op on a nil session.
func (s *Session) SetProgress(p Progress) {
	if s == nil {
		return
	}
	if p == nil {
		s.cache.SetNotify(nil)
		return
	}
	s.cache.SetNotify(func(key simcache.Key, outcome simcache.Outcome) {
		ev := ProgressEvent{Sim: key.String(), Op: string(key.Op)}
		switch outcome {
		case simcache.OutcomeComputed:
			ev.Kind = ProgressSimComputed
		case simcache.OutcomeHit:
			ev.Kind = ProgressSimCacheHit
		case simcache.OutcomeWait:
			ev.Kind = ProgressSimWait
		case simcache.OutcomeDiskHit:
			ev.Kind = ProgressSimDiskHit
		default:
			return
		}
		p.Event(ev)
	})
}

// normalizeFor strips the config sections an operation cannot observe
// before fingerprinting, so parameter sweeps dedup everything the swept
// parameter does not touch: an optical-loss sweep reuses one ideal-fabric
// capture across every point, an SCTM-window sweep reuses one ground truth.
// Masked sections are replaced by their defaults (not zeroed) so the
// normalized config still validates. The masking must be exact — keeping an
// unread field only costs cache hits, but masking a read one would alias
// distinct results — so each rule cites what the operations actually read.
func normalizeFor(cfg Config, kind NetworkKind, op simcache.Op) Config {
	def := config.Default()
	n := cfg
	// Every cached operation receives its fabric kind explicitly; the
	// config's own Network field only picks a default elsewhere.
	n.Network = def.Network
	// Parallelism cannot affect any result (the sharded engine is
	// byte-identical to the serial one) and is already excluded at the
	// Fingerprint level; normalizing it here as well keeps the invariant
	// visible where the other masking rules live.
	n.Parallelism = def.Parallelism
	// SCTM parameters feed only the correction engine and the coupled
	// replay's two dependency toggles.
	switch op {
	case simcache.OpSCTM:
		// Incremental replay is byte-identical to full replay (it only
		// changes how rounds are executed, like Parallelism), so both modes
		// must share one cached result. Note the work counters
		// (ReplayedEvents/SavedCycles) are execution-mode metadata: a cache
		// hit reports whichever mode computed the entry first.
		n.SCTM.Incremental = def.SCTM.Incremental
	case simcache.OpCoupled, simcache.OpEstimate:
		sc := cfg.SCTM
		n.SCTM = def.SCTM
		n.SCTM.DisableSyncDeps = sc.DisableSyncDeps
		n.SCTM.DisableCausalDeps = sc.DisableCausalDeps
	default:
		n.SCTM = def.SCTM
	}
	// Fault injection exists only in the photonic fabrics; for the rest the
	// section is inert and masked like any unread fabric section.
	if kind != config.NetOptical && kind != config.NetHybrid {
		n.Faults = def.Faults
	}
	// Replays observe only the target fabric (plus the toggles above): the
	// program generation inputs are baked into the trace, whose identity is
	// keyed separately via Key.Capture. Seed is an exception when the
	// target fabric injects faults — fault schedules derive from (Seed,
	// Faults), so two seeds degrade the fabric differently and must not
	// share a replay result.
	switch op {
	case simcache.OpNaive, simcache.OpCoupled, simcache.OpSCTM, simcache.OpEstimate:
		// The closed-form estimator derates faults by expected value and
		// never samples a fault schedule, so its result is seed-independent
		// even with faults enabled.
		if !n.Faults.Enabled() || op == simcache.OpEstimate {
			n.Seed = def.Seed
		}
		n.System = def.System
		n.Workload = def.Workload
		n.MaxCycles = def.MaxCycles
	}
	// Fabric sections are read only when a network of their kind is built,
	// with two scalar exceptions handled below.
	if kind != config.NetElectrical && kind != config.NetHybrid {
		flit := n.Mesh.FlitBytes
		n.Mesh = def.Mesh
		// The electrical flit granularity prices synthetic offered load on
		// every fabric.
		n.Mesh.FlitBytes = flit
	}
	if kind != config.NetOptical && kind != config.NetHybrid {
		clk := n.Optical.ClockGHz
		n.Optical = def.Optical
		if op == simcache.OpTruth && kind != config.NetElectrical {
			// Ground truth converts cycles to watts at the optical system
			// clock on every non-electrical fabric, ideal included.
			n.Optical.ClockGHz = clk
		}
	}
	if kind != config.NetIdeal {
		n.Ideal = def.Ideal
	}
	if kind != config.NetHybrid {
		n.Hybrid = def.Hybrid
	}
	return n
}

// sessionKey builds the cache key for an operation on a validated config.
func sessionKey(cfg Config, kind NetworkKind, op simcache.Op) (simcache.Key, error) {
	norm := normalizeFor(cfg, kind, op)
	fp, err := norm.Fingerprint()
	if err != nil {
		return simcache.Key{}, err
	}
	return simcache.Key{Fingerprint: fp, Kind: string(kind), Op: op}, nil
}

// replayVal and corrVal wrap replay results with their timings so cached
// hits — memory or disk — report the original computation's wall clock.
// Fields are exported for the disk layer's JSON envelope.
type (
	replayVal struct {
		Res  ReplayResult
		Wall time.Duration
	}
	corrVal struct {
		Res  CorrectionResult
		Wall time.Duration
	}
)

// RunExecutionDriven is the memoized form of the package function.
func (s *Session) RunExecutionDriven(cfg Config, kind NetworkKind) (GroundTruth, error) {
	if s == nil {
		return RunExecutionDriven(cfg, kind)
	}
	key, err := sessionKey(cfg, kind, simcache.OpTruth)
	if err != nil {
		return GroundTruth{}, err
	}
	return simcache.DoValue(s.cache, key, func() (GroundTruth, error) {
		return RunExecutionDriven(cfg, kind)
	})
}

// CaptureTrace is the memoized form of the package function. The returned
// trace is shared: replay engines treat traces as read-only, so one capture
// serves any number of concurrent replays. With a disk-layer session, the
// capture may be satisfied by a trace persisted by an earlier invocation, in
// which case the reported wall time is the (much smaller) load time.
func (s *Session) CaptureTrace(cfg Config, captureOn NetworkKind) (*Trace, time.Duration, error) {
	if s == nil {
		return CaptureTrace(cfg, captureOn)
	}
	key, err := sessionKey(cfg, captureOn, simcache.OpCapture)
	if err != nil {
		return nil, 0, err
	}
	tr, wall, err := s.cache.DoTrace(key, func() (*trace.Trace, time.Duration, error) {
		return CaptureTrace(cfg, captureOn)
	})
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	if _, ok := s.traces[tr]; !ok {
		s.traces[tr] = key
	}
	s.mu.Unlock()
	return tr, wall, nil
}

// replayKey keys a replay of tr targeting kind under the replay config. The
// trace's own capture key is folded in, so replays of traces captured on
// different fabrics (or under different configs) never collide. ok is false
// when the trace is unknown to the session and the replay must run uncached.
func (s *Session) replayKey(cfg Config, tr *Trace, kind NetworkKind, op simcache.Op) (simcache.Key, bool, error) {
	s.mu.Lock()
	capKey, ok := s.traces[tr]
	s.mu.Unlock()
	if !ok {
		return simcache.Key{}, false, nil
	}
	key, err := sessionKey(cfg, kind, op)
	if err != nil {
		return simcache.Key{}, false, err
	}
	key.Capture = capKey.Fingerprint + "@" + capKey.Kind
	return key, true, nil
}

// RunNaiveReplay is the memoized form of the package function. Replays of
// traces not produced by this session's CaptureTrace run uncached.
func (s *Session) RunNaiveReplay(cfg Config, tr *Trace, kind NetworkKind) (ReplayResult, time.Duration, error) {
	if s == nil {
		return RunNaiveReplay(cfg, tr, kind)
	}
	return s.memoReplay(cfg, tr, kind, simcache.OpNaive, RunNaiveReplay)
}

// RunCoupledReplay is the memoized form of the package function.
func (s *Session) RunCoupledReplay(cfg Config, tr *Trace, kind NetworkKind) (ReplayResult, time.Duration, error) {
	if s == nil {
		return RunCoupledReplay(cfg, tr, kind)
	}
	return s.memoReplay(cfg, tr, kind, simcache.OpCoupled, RunCoupledReplay)
}

// memoReplay implements the shared memoization shape of the two replays.
func (s *Session) memoReplay(cfg Config, tr *Trace, kind NetworkKind, op simcache.Op,
	run func(Config, *Trace, NetworkKind) (ReplayResult, time.Duration, error)) (ReplayResult, time.Duration, error) {
	key, ok, err := s.replayKey(cfg, tr, kind, op)
	if err != nil {
		return ReplayResult{}, 0, err
	}
	if !ok {
		return run(cfg, tr, kind)
	}
	rv, err := simcache.DoValue(s.cache, key, func() (replayVal, error) {
		res, wall, err := run(cfg, tr, kind)
		if err != nil {
			return replayVal{}, err
		}
		return replayVal{Res: res, Wall: wall}, nil
	})
	if err != nil {
		return ReplayResult{}, 0, err
	}
	return rv.Res, rv.Wall, nil
}

// sourceKey keys a replay of a TraceSource targeting kind. Source identity
// comes from the trace *content* digest (trace.Digester), not from session
// bookkeeping, so results persist across invocations and across sources —
// replaying a trace file hits the entry a MemSource of the same trace
// computed, and vice versa. Sources without a digest (or whose digest fails,
// e.g. an unreadable file — the replay will surface the real error) run
// uncached.
func (s *Session) sourceKey(cfg Config, src TraceSource, kind NetworkKind, op simcache.Op) (simcache.Key, bool, error) {
	d, ok := src.(trace.Digester)
	if !ok {
		return simcache.Key{}, false, nil
	}
	digest, err := d.Digest()
	if err != nil {
		return simcache.Key{}, false, nil
	}
	key, err := sessionKey(cfg, kind, op)
	if err != nil {
		return simcache.Key{}, false, err
	}
	key.Capture = digest
	return key, true, nil
}

// RunNaiveReplayStream is the memoized form of the package function: cached
// replay results for out-of-core traces, keyed by the source's content
// digest. On a hit the trace file is not even decoded.
func (s *Session) RunNaiveReplayStream(cfg Config, src TraceSource, kind NetworkKind) (ReplayResult, time.Duration, error) {
	if s == nil {
		return RunNaiveReplayStream(cfg, src, kind)
	}
	key, ok, err := s.sourceKey(cfg, src, kind, simcache.OpNaive)
	if err != nil {
		return ReplayResult{}, 0, err
	}
	if !ok {
		return RunNaiveReplayStream(cfg, src, kind)
	}
	rv, err := simcache.DoValue(s.cache, key, func() (replayVal, error) {
		res, wall, err := RunNaiveReplayStream(cfg, src, kind)
		if err != nil {
			return replayVal{}, err
		}
		return replayVal{Res: res, Wall: wall}, nil
	})
	if err != nil {
		return ReplayResult{}, 0, err
	}
	return rv.Res, rv.Wall, nil
}

// RunSelfCorrectionStream is the memoized form of the package function,
// keyed like RunNaiveReplayStream.
func (s *Session) RunSelfCorrectionStream(cfg Config, src TraceSource, kind NetworkKind) (CorrectionResult, time.Duration, error) {
	if s == nil {
		return RunSelfCorrectionStream(cfg, src, kind)
	}
	key, ok, err := s.sourceKey(cfg, src, kind, simcache.OpSCTM)
	if err != nil {
		return CorrectionResult{}, 0, err
	}
	if !ok {
		return RunSelfCorrectionStream(cfg, src, kind)
	}
	cv, err := simcache.DoValue(s.cache, key, func() (corrVal, error) {
		res, wall, err := RunSelfCorrectionStream(cfg, src, kind)
		if err != nil {
			return corrVal{}, err
		}
		return corrVal{Res: res, Wall: wall}, nil
	})
	if err != nil {
		return CorrectionResult{}, 0, err
	}
	return cv.Res, cv.Wall, nil
}

// RunSelfCorrection is the memoized form of the package function.
func (s *Session) RunSelfCorrection(cfg Config, tr *Trace, kind NetworkKind) (CorrectionResult, time.Duration, error) {
	if s == nil {
		return RunSelfCorrection(cfg, tr, kind)
	}
	key, ok, err := s.replayKey(cfg, tr, kind, simcache.OpSCTM)
	if err != nil {
		return CorrectionResult{}, 0, err
	}
	if !ok {
		return RunSelfCorrection(cfg, tr, kind)
	}
	cv, err := simcache.DoValue(s.cache, key, func() (corrVal, error) {
		res, wall, err := RunSelfCorrection(cfg, tr, kind)
		if err != nil {
			return corrVal{}, err
		}
		return corrVal{Res: res, Wall: wall}, nil
	})
	if err != nil {
		return CorrectionResult{}, 0, err
	}
	return cv.Res, cv.Wall, nil
}

// estVal wraps an analytic estimate with its timing for the disk layer.
type estVal struct {
	Res  AnalyticEstimate
	Wall time.Duration
}

// Estimate is the memoized form of EstimateAnalytic: the closed-form
// contention-aware latency estimate of replaying tr on the given fabric
// kind. Cheap enough to screen whole design spaces, cached anyway so
// repeated sweeps over a persisted session cost a map lookup.
func (s *Session) Estimate(cfg Config, tr *Trace, kind NetworkKind) (AnalyticEstimate, time.Duration, error) {
	if s == nil {
		return EstimateAnalytic(cfg, tr, kind)
	}
	key, ok, err := s.replayKey(cfg, tr, kind, simcache.OpEstimate)
	if err != nil {
		return AnalyticEstimate{}, 0, err
	}
	if !ok {
		return EstimateAnalytic(cfg, tr, kind)
	}
	ev, err := simcache.DoValue(s.cache, key, func() (estVal, error) {
		res, wall, err := EstimateAnalytic(cfg, tr, kind)
		if err != nil {
			return estVal{}, err
		}
		return estVal{Res: res, Wall: wall}, nil
	})
	if err != nil {
		return AnalyticEstimate{}, 0, err
	}
	return ev.Res, ev.Wall, nil
}

// RunSyntheticLoad is the memoized form of the package function.
func (s *Session) RunSyntheticLoad(cfg Config, kind NetworkKind) (SyntheticResult, error) {
	if s == nil {
		return RunSyntheticLoad(cfg, kind)
	}
	key, err := sessionKey(cfg, kind, simcache.OpSynthetic)
	if err != nil {
		return SyntheticResult{}, err
	}
	return simcache.DoValue(s.cache, key, func() (SyntheticResult, error) {
		return RunSyntheticLoad(cfg, kind)
	})
}

// RunStudy executes the complete methodology comparison through the
// session: capture the trace on the cheap reference fabric, measure
// execution-driven ground truth on the target, and evaluate every replay
// engine against it.
//
// The phases form a two-stage pipeline. Trace capture and execution-driven
// ground truth are independent, so they run in parallel; the three replay
// engines need only the captured trace, so they start as soon as capture
// finishes — typically while the (much slower) ground-truth run is still
// going. Concurrency is bounded by the process-wide simulation-slot
// semaphore held inside each leaf operation. Every simulation is
// self-contained (own fabric, own RNG streams, own message pools), so the
// results are bit-identical to the sequential schedule; with a non-nil
// session, any phase whose result is already cached (or concurrently being
// computed by another study) is deduplicated instead of re-run.
func (s *Session) RunStudy(cfg Config, target NetworkKind) (*Study, error) {
	if err := ValidateNetworkKind(cfg, target); err != nil {
		return nil, err
	}
	st := &Study{Workload: cfg.Workload.Kernel, Target: target}

	var wg sync.WaitGroup
	var truthErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		st.Truth, truthErr = s.RunExecutionDriven(cfg, target)
	}()

	// Capture runs on the calling goroutine: the replay engines block on it.
	tr, capWall, capErr := s.CaptureTrace(cfg, config.NetIdeal)
	if capErr != nil {
		wg.Wait()
		return nil, fmt.Errorf("onocsim: capture: %w", capErr)
	}
	st.Trace = tr
	st.CaptureWall = capWall

	var naiveErr, coupErr, sctmErr error
	wg.Add(3)
	go func() {
		defer wg.Done()
		st.Naive, st.NaiveWall, naiveErr = s.RunNaiveReplay(cfg, tr, target)
	}()
	go func() {
		defer wg.Done()
		st.Coupled, st.CoupledWall, coupErr = s.RunCoupledReplay(cfg, tr, target)
	}()
	go func() {
		defer wg.Done()
		st.SCTM, st.SCTMWall, sctmErr = s.RunSelfCorrection(cfg, tr, target)
	}()
	wg.Wait()

	if truthErr != nil {
		return nil, fmt.Errorf("onocsim: ground truth: %w", truthErr)
	}
	if naiveErr != nil {
		return nil, fmt.Errorf("onocsim: naive replay: %w", naiveErr)
	}
	if coupErr != nil {
		return nil, fmt.Errorf("onocsim: coupled replay: %w", coupErr)
	}
	if sctmErr != nil {
		return nil, fmt.Errorf("onocsim: self-correction: %w", sctmErr)
	}
	st.NaiveAcc = Compare(st.Naive, st.Truth)
	st.CoupAcc = Compare(st.Coupled, st.Truth)
	st.SCTMAcc = Compare(st.SCTM.Final, st.Truth)
	return st, nil
}
