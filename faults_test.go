package onocsim

import (
	"reflect"
	"testing"

	"onocsim/internal/config"
	"onocsim/internal/noc"
)

// faultedConfig returns the small stencil config with the named preset.
func faultedConfig(t *testing.T, preset string) Config {
	t.Helper()
	cfg := smallConfig()
	f, err := config.FaultPreset(preset)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = f
	return cfg
}

// intenseFaults returns a fault section scaled to the quick stencil run
// (~2k cycles): the presets' MTBFs are tuned for paper-scale runs and would
// rarely fire before this workload drains.
func intenseFaults() config.Faults {
	return config.Faults{
		ThermalMTBF:     300,
		ThermalDuration: 150,
		ThermalDetune:   0.75,
		TokenMTBF:       400,
		TokenTimeout:    120,
		LaserDroopDB:    3,
	}
}

// faultClassCases enumerates each fault class enabled alone, plus an intense
// section combining all three — the matrix the tentpole's determinism and
// shard-invariance guarantees are pinned over.
func faultClassCases() []struct {
	name   string
	faults config.Faults
} {
	return []struct {
		name   string
		faults config.Faults
	}{
		{"thermal-only", config.Faults{ThermalMTBF: 300, ThermalDuration: 150, ThermalDetune: 0.75}},
		{"token-only", config.Faults{TokenMTBF: 400, TokenTimeout: 120}},
		{"droop-only", config.Faults{LaserDroopDB: 3}},
		{"intense-all", intenseFaults()},
	}
}

// TestFaultedRunsDeterministic pins the seeded-schedule contract end to end:
// two independent faulted runs of the same config are identical in every
// field wall time does not touch, on every optical-family fabric.
func TestFaultedRunsDeterministic(t *testing.T) {
	swmr := faultedConfig(t, "heavy")
	swmr.Optical.Architecture = "swmr"
	cases := []struct {
		name string
		cfg  Config
		kind NetworkKind
	}{
		{"mwsr-light", faultedConfig(t, "light"), Optical},
		{"mwsr-heavy", faultedConfig(t, "heavy"), Optical},
		{"swmr-heavy", swmr, Optical},
		{"hybrid-heavy", faultedConfig(t, "heavy"), Hybrid},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			a, err := RunExecutionDriven(tc.cfg, tc.kind)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunExecutionDriven(tc.cfg, tc.kind)
			if err != nil {
				t.Fatal(err)
			}
			if a.Makespan != b.Makespan || a.MeanLatency != b.MeanLatency ||
				a.Messages != b.Messages || a.Cycles != b.Cycles {
				t.Errorf("faulted truth runs diverge: %+v vs %+v", a, b)
			}
			if a.Faults != b.Faults {
				t.Errorf("fault counters diverge: %+v vs %+v", a.Faults, b.Faults)
			}
		})
	}
}

// TestFaultedCountsEvents checks an intense fault section actually exercises
// every counter the degradation machinery owns on its natural fabric.
func TestFaultedCountsEvents(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults = intenseFaults()
	truth, err := RunExecutionDriven(cfg, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Faults.TokenLosses == 0 {
		t.Error("no token losses under the intense section")
	}
	if truth.Faults.DriftedSends == 0 {
		t.Error("no drifted sends under the intense section")
	}
	clean, err := RunExecutionDriven(smallConfig(), Optical)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Faults != (noc.FaultCounts{}) {
		t.Errorf("fault-free run counted fault events: %+v", clean.Faults)
	}
	if truth.Makespan <= clean.Makespan {
		t.Errorf("intense faults did not degrade makespan: %d vs clean %d", truth.Makespan, clean.Makespan)
	}
}

// TestFaultedShardInvariance is the acceptance criterion for the tentpole:
// for every fault class, sharded conservative-lookahead replay returns
// byte-identical results — per-event time vectors, fabric statistics
// including the fault counters, and the whole self-correction trajectory —
// for any shard count.
func TestFaultedShardInvariance(t *testing.T) {
	for _, fc := range faultClassCases() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			t.Parallel()
			cfg := smallConfig()
			cfg.Faults = fc.faults
			tr, _, err := CaptureTrace(cfg, IdealNet)
			if err != nil {
				t.Fatal(err)
			}
			serial, _, err := RunNaiveReplay(cfg, tr, Optical)
			if err != nil {
				t.Fatal(err)
			}
			serialSC, _, err := RunSelfCorrection(cfg, tr, Optical)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 8} {
				sharded := cfg
				sharded.Parallelism.Shards = k
				got, _, err := RunNaiveReplay(sharded, tr, Optical)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				replaysEqual(t, fc.name, got, serial)
				if !reflect.DeepEqual(got.NetStats, serial.NetStats) {
					t.Errorf("shards=%d: fabric statistics (incl. fault counters) diverge\n got: %+v\nwant: %+v",
						k, got.NetStats, serial.NetStats)
				}
				sc, _, err := RunSelfCorrection(sharded, tr, Optical)
				if err != nil {
					t.Fatalf("shards=%d self-correction: %v", k, err)
				}
				replaysEqual(t, fc.name+"/sctm", sc.Final, serialSC.Final)
				if !reflect.DeepEqual(sc.Iterations, serialSC.Iterations) {
					t.Errorf("shards=%d: correction trajectories diverge", k)
				}
				if sc.Converged != serialSC.Converged || sc.TotalCycles != serialSC.TotalCycles {
					t.Errorf("shards=%d: convergence diverges", k)
				}
			}
		})
	}
}

// TestFaultSeedChangesSchedule checks the schedule actually derives from the
// run seed: a different seed under the same fault section must produce a
// different fault history (the counters are the cheapest observable).
func TestFaultSeedChangesSchedule(t *testing.T) {
	a := smallConfig()
	a.Faults = intenseFaults()
	b := a
	b.Seed = a.Seed + 1
	ra, err := RunExecutionDriven(a, Optical)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunExecutionDriven(b, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Faults == rb.Faults && ra.Makespan == rb.Makespan {
		t.Errorf("seeds %d and %d produced identical faulted runs: %+v", a.Seed, b.Seed, ra.Faults)
	}
}

// TestHybridReroutesUnderDroop checks graceful degradation on the hybrid
// fabric: with enough droop to blacklist long lightpaths, traffic falls back
// to the electrical mesh and the run still completes.
func TestHybridReroutesUnderDroop(t *testing.T) {
	cfg := smallConfig()
	cfg.Faults = config.Faults{LaserDroopDB: 25}
	truth, err := RunExecutionDriven(cfg, Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Makespan <= 0 {
		t.Fatal("degraded hybrid run did not complete")
	}
	if truth.Faults.Rerouted == 0 {
		t.Skip("25 dB droop blacklists no hybrid path at this scale; rerouting covered in unit tests")
	}
}
