package onocsim

import (
	"reflect"
	"testing"

	"onocsim/internal/core"
	"onocsim/internal/noc"
)

// freshOnly hides a fabric's Resettable implementation, forcing the
// self-correction loop onto its fresh-network-per-round fallback. The
// embedded interface forwards the rest of the contract untouched.
type freshOnly struct{ noc.Network }

// sequentialStudy is the pre-pipeline reference schedule: every phase runs
// one after another on the calling goroutine, and self-correction builds a
// fresh fabric for every round.
func sequentialStudy(t *testing.T, cfg Config, target NetworkKind) *Study {
	t.Helper()
	tr, _, err := CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	truth, err := RunExecutionDriven(cfg, target)
	if err != nil {
		t.Fatalf("ground truth: %v", err)
	}
	naive, _, err := RunNaiveReplay(cfg, tr, target)
	if err != nil {
		t.Fatalf("naive: %v", err)
	}
	coupled, _, err := RunCoupledReplay(cfg, tr, target)
	if err != nil {
		t.Fatalf("coupled: %v", err)
	}
	factory, err := NetworkFactory(cfg, target)
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	sctm, err := core.SelfCorrect(func() noc.Network { return freshOnly{factory()} }, tr, cfg.SCTM)
	if err != nil {
		t.Fatalf("self-correction: %v", err)
	}
	return &Study{
		Workload: cfg.Workload.Kernel,
		Target:   target,
		Truth:    truth,
		Trace:    tr,
		Naive:    naive,
		Coupled:  coupled,
		SCTM:     sctm,
		NaiveAcc: Compare(naive, truth),
		CoupAcc:  Compare(coupled, truth),
		SCTMAcc:  Compare(sctm.Final, truth),
	}
}

// replaysEqual compares everything a replay result determines, ignoring the
// NetStats pointer (compared separately where it matters).
func replaysEqual(t *testing.T, phase string, got, want ReplayResult) {
	t.Helper()
	if got.Makespan != want.Makespan {
		t.Errorf("%s: makespan %d, want %d", phase, got.Makespan, want.Makespan)
	}
	if got.MeanLatency != want.MeanLatency {
		t.Errorf("%s: mean latency %g, want %g", phase, got.MeanLatency, want.MeanLatency)
	}
	if got.Cycles != want.Cycles {
		t.Errorf("%s: cycles %d, want %d", phase, got.Cycles, want.Cycles)
	}
	if !reflect.DeepEqual(got.Inject, want.Inject) {
		t.Errorf("%s: per-event injection times diverge", phase)
	}
	if !reflect.DeepEqual(got.Arrive, want.Arrive) {
		t.Errorf("%s: per-event arrival times diverge", phase)
	}
}

// TestStudyDeterminism locks in the two performance shortcuts that must be
// observationally invisible: the pipelined RunStudy schedule (phases racing
// on separate goroutines) and the reset-and-reuse fabric path inside the
// self-correction loop. For every fabric kind, the pipelined study must be
// bit-identical to the sequential, fresh-fabric-per-round reference.
func TestStudyDeterminism(t *testing.T) {
	for _, kind := range []NetworkKind{IdealNet, Electrical, Optical, Hybrid} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			cfg := smallConfig()
			got, err := RunStudy(cfg, kind)
			if err != nil {
				t.Fatal(err)
			}
			want := sequentialStudy(t, cfg, kind)

			if got.Truth.Makespan != want.Truth.Makespan {
				t.Errorf("truth: makespan %d, want %d", got.Truth.Makespan, want.Truth.Makespan)
			}
			if got.Truth.MeanLatency != want.Truth.MeanLatency {
				t.Errorf("truth: mean latency %g, want %g", got.Truth.MeanLatency, want.Truth.MeanLatency)
			}
			if got.Truth.Messages != want.Truth.Messages {
				t.Errorf("truth: %d messages, want %d", got.Truth.Messages, want.Truth.Messages)
			}
			if !reflect.DeepEqual(got.Trace.Events, want.Trace.Events) {
				t.Error("captured traces diverge")
			}
			replaysEqual(t, "naive", got.Naive, want.Naive)
			replaysEqual(t, "coupled", got.Coupled, want.Coupled)
			replaysEqual(t, "sctm", got.SCTM.Final, want.SCTM.Final)
			if !reflect.DeepEqual(got.SCTM.Iterations, want.SCTM.Iterations) {
				t.Errorf("sctm: iteration traces diverge:\n reuse: %+v\n fresh: %+v",
					got.SCTM.Iterations, want.SCTM.Iterations)
			}
			if got.SCTM.Converged != want.SCTM.Converged {
				t.Errorf("sctm: converged %v, want %v", got.SCTM.Converged, want.SCTM.Converged)
			}
			if got.SCTM.TotalCycles != want.SCTM.TotalCycles {
				t.Errorf("sctm: total cycles %d, want %d", got.SCTM.TotalCycles, want.SCTM.TotalCycles)
			}
			if got.NaiveAcc != want.NaiveAcc || got.CoupAcc != want.CoupAcc || got.SCTMAcc != want.SCTMAcc {
				t.Error("accuracy summaries diverge")
			}
		})
	}
}

// TestResettableRoundTrip drives each resettable fabric, resets it, and
// checks the second run of an identical workload reproduces the first run's
// delivery times exactly.
func TestResettableRoundTrip(t *testing.T) {
	cfg := smallConfig()
	for _, kind := range []NetworkKind{IdealNet, Electrical, Optical, Hybrid} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			net, err := BuildNetwork(cfg, kind)
			if err != nil {
				t.Fatal(err)
			}
			r, ok := net.(noc.Resettable)
			if !ok {
				t.Fatalf("%T does not implement noc.Resettable", net)
			}
			run := func() []Tick {
				var arrivals []Tick
				net.SetDeliver(func(m *Message) { arrivals = append(arrivals, m.Arrive) })
				id := uint64(0)
				for src := 0; src < net.Nodes(); src++ {
					for d := 1; d <= 3; d++ {
						id++
						net.Inject(&Message{ID: id, Src: src, Dst: (src + d) % net.Nodes(), Bytes: 64})
					}
				}
				for net.Busy() {
					net.Tick()
				}
				return arrivals
			}
			first := run()
			if len(first) == 0 {
				t.Fatal("no deliveries")
			}
			r.Reset()
			if net.Now() != 0 || net.Busy() || net.Stats().Delivered != 0 {
				t.Fatalf("reset left residue: now=%d busy=%v delivered=%d",
					net.Now(), net.Busy(), net.Stats().Delivered)
			}
			second := run()
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("post-reset run diverges:\n first: %v\n second: %v", first, second)
			}
		})
	}
}
