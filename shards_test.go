package onocsim

import (
	"reflect"
	"testing"
)

// shardCase is one fabric-family cell of the shard-invariance matrix.
type shardCase struct {
	name string
	cfg  Config
	kind NetworkKind
}

// shardCases covers every fabric family through the public API: both optical
// crossbars shard (MWSR per destination, SWMR per source), the ideal fabric
// shards per source, and the mesh/hybrid kinds exercise the serial fallback
// through the exact same Parallelism.Shards path.
func shardCases() []shardCase {
	swmr := smallConfig()
	swmr.Optical.Architecture = "swmr"
	return []shardCase{
		{"ideal", smallConfig(), IdealNet},
		{"optical-mwsr", smallConfig(), Optical},
		{"optical-swmr", swmr, Optical},
		{"electrical-fallback", smallConfig(), Electrical},
		{"hybrid-fallback", smallConfig(), Hybrid},
	}
}

// TestShardInvarianceNaiveReplay locks in the tentpole contract at the API
// level: RunNaiveReplay with any Parallelism.Shards value returns results
// byte-identical to the serial run — Makespan, MeanLatency, Cycles, both
// per-event time vectors, and the full fabric statistics (order-sensitive
// Welford accumulators included).
func TestShardInvarianceNaiveReplay(t *testing.T) {
	for _, tc := range shardCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tr, _, err := CaptureTrace(tc.cfg, IdealNet)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			serial, _, err := RunNaiveReplay(tc.cfg, tr, tc.kind)
			if err != nil {
				t.Fatalf("serial replay: %v", err)
			}
			for _, k := range []int{1, 2, 3, 8} {
				cfg := tc.cfg
				cfg.Parallelism.Shards = k
				got, _, err := RunNaiveReplay(cfg, tr, tc.kind)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				replaysEqual(t, tc.name, got, serial)
				if !reflect.DeepEqual(got.NetStats, serial.NetStats) {
					t.Errorf("shards=%d: fabric statistics diverge\n got: %+v\nwant: %+v",
						k, got.NetStats, serial.NetStats)
				}
			}
		})
	}
}

// TestShardInvarianceSelfCorrection asserts the whole correction trajectory —
// every iteration's summary, the final estimate, convergence, and total
// cycles — is identical for sharded and serial replay rounds.
func TestShardInvarianceSelfCorrection(t *testing.T) {
	for _, tc := range shardCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tr, _, err := CaptureTrace(tc.cfg, IdealNet)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			serial, _, err := RunSelfCorrection(tc.cfg, tr, tc.kind)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			cfg := tc.cfg
			cfg.Parallelism.Shards = 8
			got, _, err := RunSelfCorrection(cfg, tr, tc.kind)
			if err != nil {
				t.Fatalf("sharded: %v", err)
			}
			if !reflect.DeepEqual(got.Iterations, serial.Iterations) {
				t.Errorf("iteration trajectories diverge:\n sharded: %+v\n  serial: %+v",
					got.Iterations, serial.Iterations)
			}
			replaysEqual(t, tc.name, got.Final, serial.Final)
			if got.Converged != serial.Converged {
				t.Errorf("converged %v, want %v", got.Converged, serial.Converged)
			}
			if got.TotalCycles != serial.TotalCycles {
				t.Errorf("total cycles %d, want %d", got.TotalCycles, serial.TotalCycles)
			}
		})
	}
}

// TestShardsExcludedFromFingerprint pins the cache-compatibility contract:
// because sharding cannot change any result, it must not split the
// result-memo or disk-cache key space either.
func TestShardsExcludedFromFingerprint(t *testing.T) {
	base := smallConfig()
	fp0, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 1, 2, 8, 64} {
		cfg := base
		cfg.Parallelism.Shards = k
		fp, err := cfg.Fingerprint()
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if fp != fp0 {
			t.Errorf("shards=%d changes fingerprint: %s vs %s", k, fp, fp0)
		}
	}
}

// TestShardsValidation checks the Parallelism bounds in Config.Validate.
func TestShardsValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Parallelism.Shards = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative shard count accepted")
	}
	cfg.Parallelism.Shards = 1 << 20
	if err := cfg.Validate(); err == nil {
		t.Error("implausible shard count accepted")
	}
	cfg.Parallelism.Shards = 8
	if err := cfg.Validate(); err != nil {
		t.Errorf("shards=8 rejected: %v", err)
	}
}
