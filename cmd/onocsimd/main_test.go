package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// End-to-end drain: boot the daemon, start a long self-correction over HTTP,
// deliver the shutdown signal mid-loop (the test cancels the same context
// signal.NotifyContext would), and verify the client still receives a valid
// parked partial result and run() exits cleanly.
func TestDaemonSIGTERMDrainsAndParks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{addr: "127.0.0.1:0", drain: 30 * time.Second, quick: true},
			func(addr net.Addr) { ready <- addr })
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// Long-running correction: fixed far-off seed + heavy damping give the
	// loop ~60 rounds of boundaries to park at.
	body := `{"op":"correct","network":"optical","config":{
		"system":{"cores":16},
		"workload":{"kernel":"stencil","scale":4,"iterations":2},
		"sctm":{"max_iterations":500,"tolerance_cycles":0,"makespan_tolerance":0,
			"damping":0.9,"seed":"fixed","initial_latency_cycles":5000},
		"max_cycles":5000000}}`
	resp, err := http.Post(base+"/v1/simulate?stream=sse", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read the SSE stream; after the first computed progress event (the
	// capture finishing means the correction loop is next), deliver the
	// "signal". The final result event must report a parked run.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var event string
	var result []byte
	signalled := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			switch event {
			case "progress":
				if !signalled && strings.Contains(line, `"computed"`) {
					signalled = true
					cancel() // SIGTERM
				}
			case "result", "error":
				result = []byte(strings.TrimPrefix(line, "data: "))
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !signalled {
		t.Fatal("never saw a computed progress event to signal on")
	}
	if result == nil {
		t.Fatal("stream ended without a result event")
	}
	var env struct {
		Version int             `json:"version"`
		Status  string          `json:"status"`
		Table   json.RawMessage `json:"table"`
	}
	if err := json.Unmarshal(result, &env); err != nil {
		t.Fatalf("bad result payload %s: %v", result, err)
	}
	if env.Status != "parked" || len(env.Table) == 0 {
		t.Fatalf("expected parked partial result, got %s", result)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon did not shut down cleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after drain")
	}

	// The listener is really gone.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("daemon still serving after shutdown")
	}
}

// A daemon with nothing in flight shuts down promptly on signal.
func TestDaemonIdleShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{addr: "127.0.0.1:0", drain: 10 * time.Second},
			func(addr net.Addr) { ready <- addr })
	}()
	var base string
	select {
	case addr := <-ready:
		base = fmt.Sprintf("http://%s", addr)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("idle shutdown failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle daemon did not exit")
	}
}
