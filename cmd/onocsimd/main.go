// Command onocsimd serves simulations over HTTP: a long-lived daemon around
// one shared onocsim session, so every client benefits from single-flight
// deduplication, the in-memory result cache, and (with -cachedir) the
// content-addressed disk layer across restarts.
//
// Examples:
//
//	onocsimd -addr :8080 -cachedir /var/cache/onocsim
//	curl -s localhost:8080/v1/simulate -d '{"op":"exec","network":"optical"}'
//	curl -sN 'localhost:8080/v1/simulate?stream=sse' -d '{"op":"study"}'
//
// SIGTERM or SIGINT drains gracefully: new requests are refused, in-flight
// self-correction loops park at their next round boundary and return their
// partial trajectories, and the listener closes once responses are written
// (or the -drain timeout expires).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"onocsim/internal/cliutil"
	"onocsim/internal/service"
)

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	flag.StringVar(&o.cacheDir, "cachedir", "", "content-addressed result cache directory (empty: in-memory only)")
	flag.IntVar(&o.budget, "budget", 0, "admission budget in cost units — light 1, medium 2, heavy 4 (0: 2×GOMAXPROCS)")
	flag.DurationVar(&o.drain, "drain", 30*time.Second, "graceful shutdown timeout")
	flag.BoolVar(&o.quick, "quick", false, "shrink experiment sweeps (testing/load harnesses)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	err := run(ctx, o, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "onocsimd:", err)
	}
	os.Exit(cliutil.ExitCode(err))
}

type options struct {
	addr     string
	cacheDir string
	budget   int
	drain    time.Duration
	quick    bool
}

// run serves until ctx ends, then drains. onReady, if non-nil, receives the
// bound address once the listener is up — the e2e test's hook for talking to
// a daemon on an ephemeral port.
func run(ctx context.Context, o options, onReady func(addr net.Addr)) error {
	if o.addr == "" {
		return cliutil.Usagef("empty -addr")
	}
	srv := service.New(service.Config{CacheDir: o.cacheDir, Budget: o.budget, Quick: o.quick})
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "onocsimd: listening on %s\n", ln.Addr())
	if onReady != nil {
		onReady(ln.Addr())
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "onocsimd: draining")
	// Refuse new work and park in-flight correction loops, then let the
	// HTTP server wait for handlers to write their final responses.
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
