package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"onocsim/internal/metrics"
)

func docFor(t *testing.T, tb *metrics.Table) string {
	t.Helper()
	data, err := json.Marshal(map[string]interface{}{
		"version": metrics.TableFormatVersion,
		"results": []map[string]interface{}{{"id": "r1", "table": tb}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunRendersMarkdown(t *testing.T) {
	tb := metrics.NewTable("R1 — demo", "kernel", "err")
	tb.AddCells(metrics.String("fft"), metrics.Percent(0.018))
	tb.AddCells(metrics.String("has|pipe"), metrics.Percent(0.5))
	tb.Note("a note")
	var out bytes.Buffer
	if err := run(strings.NewReader(docFor(t, tb)), &out); err != nil {
		t.Fatal(err)
	}
	md := out.String()
	for _, want := range []string{
		"### R1 — demo",
		"| kernel | err |",
		"| --- | --- |",
		"| fft | 1.8% |",
		"| has\\|pipe | 50.0% |",
		"*note: a note*",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(strings.NewReader("not json"), &bytes.Buffer{}); err == nil {
		t.Error("malformed input accepted")
	}
	if err := run(strings.NewReader(`{"version":99,"results":[]}`), &bytes.Buffer{}); err == nil {
		t.Error("wrong version accepted")
	}
}
