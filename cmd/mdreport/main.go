// Command mdreport converts the versioned JSON document of `expreport
// -format json` into GitHub-flavored markdown tables, one section per
// experiment. EXPERIMENTS.md's measured tables are regenerated through this
// path (see `make experiments-md`), so the committed markdown is a rendering
// of the same typed cells the ASCII and CSV views show.
//
// Usage:
//
//	expreport -exp all -quick -format json | mdreport
//	expreport -exp r1 -format json | mdreport > r1.md
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"onocsim/internal/cliutil"
	"onocsim/internal/metrics"
)

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mdreport:", err)
		os.Exit(cliutil.ExitCode(err))
	}
}

// resultsDoc mirrors the document cmd/expreport emits.
type resultsDoc struct {
	Version int `json:"version"`
	Results []struct {
		ID    string         `json:"id"`
		Table *metrics.Table `json:"table"`
	} `json:"results"`
}

// escape protects cell text inside a markdown table row.
func escape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}

// writeMarkdown renders one table as a markdown section.
func writeMarkdown(w io.Writer, t *metrics.Table) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	header := make([]string, len(t.Columns))
	rule := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = escape(c)
		rule[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n| %s |\n",
		strings.Join(header, " | "), strings.Join(rule, " | ")); err != nil {
		return err
	}
	for r := 0; r < t.NumRows(); r++ {
		cells := make([]string, len(t.Columns))
		for c := range t.Columns {
			cells[c] = escape(t.Cell(r, c))
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	for _, n := range t.Notes() {
		if _, err := fmt.Fprintf(w, "\n*note: %s*\n", n); err != nil {
			return err
		}
	}
	return nil
}

func run(stdin io.Reader, w io.Writer) error {
	var doc resultsDoc
	dec := json.NewDecoder(stdin)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("decoding results document: %w", err)
	}
	if doc.Version != metrics.TableFormatVersion {
		return fmt.Errorf("results document version %d, want %d", doc.Version, metrics.TableFormatVersion)
	}
	for i, r := range doc.Results {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := writeMarkdown(w, r.Table); err != nil {
			return err
		}
	}
	return nil
}
