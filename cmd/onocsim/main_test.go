package main

import (
	"path/filepath"
	"testing"

	"onocsim"
)

// smallCfgFile writes a fast config and returns its path.
func smallCfgFile(t *testing.T) string {
	t.Helper()
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 2
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExecMode(t *testing.T) {
	for _, network := range []string{"ideal", "electrical", "optical"} {
		if err := run(smallCfgFile(t), network, "exec", "ascii", false, 0); err != nil {
			t.Fatalf("exec on %s: %v", network, err)
		}
	}
}

func TestRunStudyMode(t *testing.T) {
	if err := run(smallCfgFile(t), "optical", "study", "ascii", false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunStudyModeSharded(t *testing.T) {
	if err := run(smallCfgFile(t), "optical", "study", "ascii", false, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONFormats(t *testing.T) {
	cfgPath := smallCfgFile(t)
	if err := run(cfgPath, "optical", "exec", "json", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(cfgPath, "optical", "study", "json", false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(cfgPath, "optical", "exec", "yaml", false, 0); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestRunRejections(t *testing.T) {
	cfgPath := smallCfgFile(t)
	if err := run(cfgPath, "optical", "teleport", "ascii", false, 0); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run(cfgPath, "warp", "exec", "ascii", false, 0); err == nil {
		t.Fatal("unknown network accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "nope.json"), "optical", "exec", "ascii", false, 0); err == nil {
		t.Fatal("missing config accepted")
	}
}
