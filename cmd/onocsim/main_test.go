package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"onocsim"
	"onocsim/internal/cliutil"
	"onocsim/internal/config"
)

// smallCfgFile writes a fast config and returns its path.
func smallCfgFile(t *testing.T) string {
	t.Helper()
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 2
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// opts builds the baseline option set the old positional signature implied.
func opts(cfgPath, network, mode, format string) options {
	return options{cfgPath: cfgPath, network: network, mode: mode, format: format}
}

func TestRunExecMode(t *testing.T) {
	for _, network := range []string{"ideal", "electrical", "optical"} {
		if err := run(opts(smallCfgFile(t), network, "exec", "ascii")); err != nil {
			t.Fatalf("exec on %s: %v", network, err)
		}
	}
}

func TestRunExecModeFaulted(t *testing.T) {
	for _, preset := range []string{"light", "heavy"} {
		o := opts(smallCfgFile(t), "optical", "exec", "ascii")
		o.faults = preset
		if err := run(o); err != nil {
			t.Fatalf("faulted exec (%s): %v", preset, err)
		}
	}
}

func TestRunStudyMode(t *testing.T) {
	if err := run(opts(smallCfgFile(t), "optical", "study", "ascii")); err != nil {
		t.Fatal(err)
	}
}

func TestRunStudyModeSharded(t *testing.T) {
	o := opts(smallCfgFile(t), "optical", "study", "ascii")
	o.shards = 4
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunStudyModeStreaming(t *testing.T) {
	o := opts(smallCfgFile(t), "optical", "study", "ascii")
	o.shards = 2
	o.stream = true
	o.window = 1 << 12
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunStudyModeIncremental(t *testing.T) {
	o := opts(smallCfgFile(t), "optical", "study", "ascii")
	o.incr = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

// The two job-pipeline modes the CLI gained with the unified pipeline: a
// correction run and its closed-form estimate.
func TestRunCorrectAndEstimateModes(t *testing.T) {
	cfgPath := smallCfgFile(t)
	for _, mode := range []string{"correct", "estimate"} {
		if err := run(opts(cfgPath, "optical", mode, "ascii")); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
	}
}

func TestRunJSONFormats(t *testing.T) {
	cfgPath := smallCfgFile(t)
	if err := run(opts(cfgPath, "optical", "exec", "json")); err != nil {
		t.Fatal(err)
	}
	if err := run(opts(cfgPath, "optical", "study", "json")); err != nil {
		t.Fatal(err)
	}
	if err := run(opts(cfgPath, "optical", "exec", "yaml")); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestRunSweepMode drives the sweep pipeline through the CLI entry point on
// a deliberately tiny grid (2 unique arms after identity collapsing).
func TestRunSweepMode(t *testing.T) {
	spec := config.Sweep{
		Networks:    []config.NetworkKind{config.NetElectrical, config.NetOptical},
		Cores:       []int{16},
		Wavelengths: []int{16},
		Faults:      []string{"off"},
		Kernels:     []string{"stencil"},
		Quick:       true,
	}
	spec.Normalize()
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"ascii", "json"} {
		o := options{mode: "sweep", format: format, sweepPath: path}
		if err := run(o); err != nil {
			t.Fatalf("sweep (%s): %v", format, err)
		}
	}
	// A bad spec is a runtime error, not a crash.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"cores":[7]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{mode: "sweep", format: "ascii", sweepPath: bad}); err == nil {
		t.Fatal("invalid sweep spec accepted")
	}
}

// TestRunExitCodes is the table test for the standardized convention: every
// bad flag value is a usage error (exit 2), while runtime failures such as a
// missing config file exit 1.
func TestRunExitCodes(t *testing.T) {
	cfgPath := smallCfgFile(t)
	badSeed := opts(cfgPath, "optical", "exec", "ascii")
	badSeed.seedMode = "entrails"
	badFaults := opts(cfgPath, "optical", "exec", "ascii")
	badFaults.faults = "catastrophic"
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"unknown mode", run(opts(cfgPath, "optical", "teleport", "ascii")), 2},
		{"unknown network", run(opts(cfgPath, "warp", "exec", "ascii")), 2},
		{"unknown format", run(opts(cfgPath, "optical", "exec", "yaml")), 2},
		{"unknown faults preset", run(badFaults), 2},
		{"unknown seed mode", run(badSeed), 1},
		{"missing config", run(opts(filepath.Join(t.TempDir(), "nope.json"), "optical", "exec", "ascii")), 1},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if got := cliutil.ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: exit code %d, want %d (err: %v)", tc.name, got, tc.want, tc.err)
		}
	}
}
