package main

import (
	"path/filepath"
	"testing"

	"onocsim"
	"onocsim/internal/cliutil"
)

// smallCfgFile writes a fast config and returns its path.
func smallCfgFile(t *testing.T) string {
	t.Helper()
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 2
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExecMode(t *testing.T) {
	for _, network := range []string{"ideal", "electrical", "optical"} {
		if err := run(smallCfgFile(t), network, "exec", "ascii", "", "", false, 0, false, false, 0); err != nil {
			t.Fatalf("exec on %s: %v", network, err)
		}
	}
}

func TestRunExecModeFaulted(t *testing.T) {
	for _, preset := range []string{"light", "heavy"} {
		if err := run(smallCfgFile(t), "optical", "exec", "ascii", preset, "", false, 0, false, false, 0); err != nil {
			t.Fatalf("faulted exec (%s): %v", preset, err)
		}
	}
}

func TestRunStudyMode(t *testing.T) {
	if err := run(smallCfgFile(t), "optical", "study", "ascii", "", "", false, 0, false, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunStudyModeSharded(t *testing.T) {
	if err := run(smallCfgFile(t), "optical", "study", "ascii", "", "", false, 4, false, false, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunStudyModeStreaming(t *testing.T) {
	if err := run(smallCfgFile(t), "optical", "study", "ascii", "", "", false, 2, true, false, 1<<12); err != nil {
		t.Fatal(err)
	}
}

func TestRunStudyModeIncremental(t *testing.T) {
	if err := run(smallCfgFile(t), "optical", "study", "ascii", "", "", false, 0, false, true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONFormats(t *testing.T) {
	cfgPath := smallCfgFile(t)
	if err := run(cfgPath, "optical", "exec", "json", "", "", false, 0, false, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(cfgPath, "optical", "study", "json", "", "", false, 0, false, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(cfgPath, "optical", "exec", "yaml", "", "", false, 0, false, false, 0); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestRunExitCodes is the table test for the standardized convention: every
// bad flag value is a usage error (exit 2), while runtime failures such as a
// missing config file exit 1.
func TestRunExitCodes(t *testing.T) {
	cfgPath := smallCfgFile(t)
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"unknown mode", run(cfgPath, "optical", "teleport", "ascii", "", "", false, 0, false, false, 0), 2},
		{"unknown network", run(cfgPath, "warp", "exec", "ascii", "", "", false, 0, false, false, 0), 2},
		{"unknown format", run(cfgPath, "optical", "exec", "yaml", "", "", false, 0, false, false, 0), 2},
		{"unknown faults preset", run(cfgPath, "optical", "exec", "ascii", "catastrophic", "", false, 0, false, false, 0), 2},
		{"unknown seed mode", run(cfgPath, "optical", "exec", "ascii", "", "entrails", false, 0, false, false, 0), 1},
		{"missing config", run(filepath.Join(t.TempDir(), "nope.json"), "optical", "exec", "ascii", "", "", false, 0, false, false, 0), 1},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if got := cliutil.ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: exit code %d, want %d (err: %v)", tc.name, got, tc.want, tc.err)
		}
	}
}
