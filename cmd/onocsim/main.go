// Command onocsim runs one simulation described by a JSON config file.
//
// Modes:
//
//	exec    — execution-driven simulation on the selected fabric
//	study   — full methodology comparison (ground truth, naive replay,
//	          coupled replay, self-correction) on the selected fabric
//
// Examples:
//
//	onocsim -mode exec -network optical
//	onocsim -config myexp.json -mode study -network optical
//	onocsim -dump-config > baseline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"onocsim"
	"onocsim/internal/cliutil"
	"onocsim/internal/config"
	"onocsim/internal/metrics"
	"onocsim/internal/prof"
	"onocsim/internal/report"
)

func main() {
	var (
		cfgPath    = flag.String("config", "", "JSON config file (default: built-in baseline)")
		network    = flag.String("network", "optical", "fabric: electrical | optical | hybrid | ideal")
		mode       = flag.String("mode", "exec", "run mode: exec | study")
		format     = flag.String("format", "ascii", "output format: ascii | json")
		faults     = flag.String("faults", "", "optical fault-injection preset: off | light | heavy (default: keep the config file's faults section)")
		dumpConfig = flag.Bool("dump-config", false, "print the effective config as JSON and exit")
		shards     = flag.Int("shards", 0, "shard count for replay-family simulations (0: one per CPU, capped at the core count; results are identical for any count)")
		stream     = flag.Bool("stream", false, "run replay-family simulations on the streaming out-of-core decoder (results are identical)")
		incr       = flag.Bool("incremental", false, "resume self-correction rounds from frozen-prefix checkpoints instead of replaying from cycle zero (results are identical; ignored by -stream)")
		window     = flag.Int("window", 0, "streaming read-ahead window in events (0: default 64Ki, -1: unbounded)")
		seedMode   = flag.String("seed", "", "self-correction round-0 seeding: zeroload | analytic | fixed (default: keep the config file's sctm.seed)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err == nil {
		err = run(*cfgPath, *network, *mode, *format, *faults, *seedMode, *dumpConfig, *shards, *stream, *incr, *window)
	}
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "onocsim:", err)
	}
	os.Exit(cliutil.ExitCode(err))
}

func run(cfgPath, network, mode, format, faults, seedMode string, dumpConfig bool, shards int, stream, incr bool, window int) error {
	if format != "ascii" && format != "json" {
		return cliutil.Usagef("unknown format %q (want ascii or json)", format)
	}
	if mode != "exec" && mode != "study" {
		return cliutil.Usagef("unknown mode %q (want exec or study)", mode)
	}
	switch config.NetworkKind(network) {
	case config.NetElectrical, config.NetOptical, config.NetIdeal, config.NetHybrid:
	default:
		return cliutil.Usagef("unknown network %q (want electrical, optical, hybrid, or ideal)", network)
	}
	cfg := onocsim.DefaultConfig()
	if cfgPath != "" {
		var err error
		cfg, err = onocsim.LoadConfig(cfgPath)
		if err != nil {
			return err
		}
	}
	if faults != "" {
		f, err := config.FaultPreset(faults)
		if err != nil {
			return cliutil.UsageError{Err: err}
		}
		cfg.Faults = f
	}
	if seedMode != "" {
		cfg.SCTM.Seed = seedMode
	}
	kind := onocsim.NetworkKind(network)
	cfg.Network = kind
	// Sharding is byte-identical to serial execution for any count, so the
	// default exploits whatever the host offers; the replayer itself caps
	// the count at the chip's node count.
	if shards == 0 {
		shards = runtime.NumCPU()
	}
	cfg.Parallelism.Shards = shards
	// Streaming, like sharding, is an execution detail: it changes resident
	// memory, never results, so the flags only select the engine.
	if stream {
		cfg.Parallelism.Stream = true
	}
	if window != 0 {
		cfg.Parallelism.WindowEvents = window
	}
	// Incremental correction, like sharding and streaming, never changes
	// results — it only skips re-simulating each round's frozen prefix.
	if incr {
		cfg.SCTM.Incremental = true
	}

	if dumpConfig {
		return cfg.Save("/dev/stdout")
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	// Both modes build one typed table; ascii and json are two renderings of
	// it, so the JSON carries the same values (with kinds and units) that the
	// terminal shows. The builders live in internal/report, shared with the
	// onocsimd service so both front ends render identically.
	var t *metrics.Table
	switch mode {
	case "exec":
		res, err := onocsim.RunExecutionDriven(cfg, kind)
		if err != nil {
			return err
		}
		t = report.Exec(cfg, kind, res)

	case "study":
		study, err := onocsim.RunStudy(cfg, kind)
		if err != nil {
			return err
		}
		t = report.Study(cfg, kind, study)

	default:
		return fmt.Errorf("unknown mode %q (want exec or study)", mode)
	}
	if format == "json" {
		return t.WriteJSON(os.Stdout)
	}
	return t.WriteASCII(os.Stdout)
}
