// Command onocsim runs one simulation described by a JSON config file, or a
// whole design-space sweep.
//
// Modes:
//
//	exec     — execution-driven simulation on the selected fabric
//	study    — full methodology comparison (ground truth, naive replay,
//	           coupled replay, self-correction) on the selected fabric
//	correct  — capture the config's kernel trace and run the
//	           self-correction loop on the selected fabric
//	estimate — price the config's kernel trace on the selected fabric with
//	           the closed-form contention model (no fabric ticks)
//	sweep    — expand a design grid (-sweep spec, or the built-in default),
//	           prune dominated arms with the analytic prefilter, simulate
//	           the survivors, and print the latency/throughput/power
//	           Pareto front
//
// Every mode reduces to the same typed job pipeline (internal/job) the
// onocsimd daemon serves, so the tables here and the daemon's response
// payloads are renderings of identical values.
//
// Examples:
//
//	onocsim -mode exec -network optical
//	onocsim -config myexp.json -mode study -network optical
//	onocsim -mode sweep -quick
//	onocsim -mode sweep -sweep grid.json -format json
//	onocsim -dump-config > baseline.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"onocsim"
	"onocsim/internal/cliutil"
	"onocsim/internal/config"
	"onocsim/internal/job"
	"onocsim/internal/prof"
	"onocsim/internal/sweep"
)

// options carries every flag; run is kept flag-free so tests drive it
// directly.
type options struct {
	cfgPath    string
	network    string
	mode       string
	format     string
	faults     string
	seedMode   string
	dumpConfig bool
	shards     int
	stream     bool
	incr       bool
	window     int
	sweepPath  string
	quick      bool
}

func main() {
	var o options
	flag.StringVar(&o.cfgPath, "config", "", "JSON config file (default: built-in baseline)")
	flag.StringVar(&o.network, "network", "optical", "fabric: electrical | optical | hybrid | ideal")
	flag.StringVar(&o.mode, "mode", "exec", "run mode: exec | study | correct | estimate | sweep")
	flag.StringVar(&o.format, "format", "ascii", "output format: ascii | json")
	flag.StringVar(&o.faults, "faults", "", "optical fault-injection preset: off | light | heavy (default: keep the config file's faults section)")
	flag.BoolVar(&o.dumpConfig, "dump-config", false, "print the effective config as JSON and exit")
	flag.IntVar(&o.shards, "shards", 0, "shard count for replay-family simulations (0: one per CPU, capped at the core count; results are identical for any count)")
	flag.BoolVar(&o.stream, "stream", false, "run replay-family simulations on the streaming out-of-core decoder (results are identical)")
	flag.BoolVar(&o.incr, "incremental", false, "resume self-correction rounds from frozen-prefix checkpoints instead of replaying from cycle zero (results are identical; ignored by -stream)")
	flag.IntVar(&o.window, "window", 0, "streaming read-ahead window in events (0: default 64Ki, -1: unbounded)")
	flag.StringVar(&o.seedMode, "seed", "", "self-correction round-0 seeding: zeroload | analytic | fixed (default: keep the config file's sctm.seed)")
	flag.StringVar(&o.sweepPath, "sweep", "", "JSON sweep spec for -mode sweep (default: built-in quick grid)")
	flag.BoolVar(&o.quick, "quick", false, "shrink every sweep arm to the quick problem size (-mode sweep only)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err == nil {
		err = run(o)
	}
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "onocsim:", err)
	}
	os.Exit(cliutil.ExitCode(err))
}

func run(o options) error {
	if o.format != "ascii" && o.format != "json" {
		return cliutil.Usagef("unknown format %q (want ascii or json)", o.format)
	}
	switch o.mode {
	case "exec", "study", "correct", "estimate":
	case "sweep":
		return runSweep(o)
	default:
		return cliutil.Usagef("unknown mode %q (want exec, study, correct, estimate or sweep)", o.mode)
	}
	switch config.NetworkKind(o.network) {
	case config.NetElectrical, config.NetOptical, config.NetIdeal, config.NetHybrid:
	default:
		return cliutil.Usagef("unknown network %q (want electrical, optical, hybrid, or ideal)", o.network)
	}
	cfg := onocsim.DefaultConfig()
	if o.cfgPath != "" {
		var err error
		cfg, err = onocsim.LoadConfig(o.cfgPath)
		if err != nil {
			return err
		}
	}
	if o.faults != "" {
		f, err := config.FaultPreset(o.faults)
		if err != nil {
			return cliutil.UsageError{Err: err}
		}
		cfg.Faults = f
	}
	if o.seedMode != "" {
		cfg.SCTM.Seed = o.seedMode
	}
	kind := onocsim.NetworkKind(o.network)
	cfg.Network = kind
	// Sharding is byte-identical to serial execution for any count, so the
	// default exploits whatever the host offers; the replayer itself caps
	// the count at the chip's node count.
	if o.shards == 0 {
		o.shards = runtime.NumCPU()
	}
	cfg.Parallelism.Shards = o.shards
	// Streaming, like sharding, is an execution detail: it changes resident
	// memory, never results, so the flags only select the engine.
	if o.stream {
		cfg.Parallelism.Stream = true
	}
	if o.window != 0 {
		cfg.Parallelism.WindowEvents = o.window
	}
	// Incremental correction, like sharding and streaming, never changes
	// results — it only skips re-simulating each round's frozen prefix.
	if o.incr {
		cfg.SCTM.Incremental = true
	}

	if o.dumpConfig {
		return cfg.Save("/dev/stdout")
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	// All four single-run modes are one typed job through the same pipeline
	// the onocsimd service serves; ascii and json are two renderings of the
	// job's table, so the JSON carries the same values (with kinds and
	// units) that the terminal shows.
	runner := &job.Runner{Session: onocsim.NewSession("")}
	res, err := runner.Run(context.Background(), job.Job{Op: job.Op(o.mode), Config: cfg, Kind: kind})
	if err != nil {
		return err
	}
	if o.format == "json" {
		return res.Table.WriteJSON(os.Stdout)
	}
	return res.Table.WriteASCII(os.Stdout)
}

// runSweep expands, prunes and simulates a design grid, printing per-arm
// progress to stderr and the deterministic result tables to stdout.
func runSweep(o options) error {
	spec := config.DefaultSweep()
	spec.Normalize()
	if o.sweepPath != "" {
		var err error
		spec, err = config.LoadSweep(o.sweepPath)
		if err != nil {
			return err
		}
	}
	if o.quick {
		spec.Quick = true
	}
	progress := onocsim.ProgressFunc(func(ev onocsim.ProgressEvent) {
		if ev.Kind == onocsim.ProgressSweepArm {
			fmt.Fprintf(os.Stderr, "onocsim: sweep %-9s %s\n", ev.Op, ev.Sim)
		}
	})
	res, err := sweep.Run(context.Background(), spec, sweep.Options{
		Session:  onocsim.NewSession(""),
		Progress: progress,
	})
	if err != nil {
		return err
	}
	if o.format == "json" {
		return res.WriteJSON(os.Stdout)
	}
	return res.WriteASCII(os.Stdout)
}
