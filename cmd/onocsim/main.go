// Command onocsim runs one simulation described by a JSON config file.
//
// Modes:
//
//	exec    — execution-driven simulation on the selected fabric
//	study   — full methodology comparison (ground truth, naive replay,
//	          coupled replay, self-correction) on the selected fabric
//
// Examples:
//
//	onocsim -mode exec -network optical
//	onocsim -config myexp.json -mode study -network optical
//	onocsim -dump-config > baseline.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"onocsim"
	"onocsim/internal/cliutil"
	"onocsim/internal/config"
	"onocsim/internal/metrics"
	"onocsim/internal/prof"
)

func main() {
	var (
		cfgPath    = flag.String("config", "", "JSON config file (default: built-in baseline)")
		network    = flag.String("network", "optical", "fabric: electrical | optical | hybrid | ideal")
		mode       = flag.String("mode", "exec", "run mode: exec | study")
		format     = flag.String("format", "ascii", "output format: ascii | json")
		faults     = flag.String("faults", "", "optical fault-injection preset: off | light | heavy (default: keep the config file's faults section)")
		dumpConfig = flag.Bool("dump-config", false, "print the effective config as JSON and exit")
		shards     = flag.Int("shards", 0, "shard count for replay-family simulations (0: one per CPU, capped at the core count; results are identical for any count)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stop, err := prof.Start(*cpuprofile, *memprofile)
	if err == nil {
		err = run(*cfgPath, *network, *mode, *format, *faults, *dumpConfig, *shards)
	}
	if perr := stop(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "onocsim:", err)
	}
	os.Exit(cliutil.ExitCode(err))
}

func run(cfgPath, network, mode, format, faults string, dumpConfig bool, shards int) error {
	if format != "ascii" && format != "json" {
		return cliutil.Usagef("unknown format %q (want ascii or json)", format)
	}
	if mode != "exec" && mode != "study" {
		return cliutil.Usagef("unknown mode %q (want exec or study)", mode)
	}
	switch config.NetworkKind(network) {
	case config.NetElectrical, config.NetOptical, config.NetIdeal, config.NetHybrid:
	default:
		return cliutil.Usagef("unknown network %q (want electrical, optical, hybrid, or ideal)", network)
	}
	cfg := onocsim.DefaultConfig()
	if cfgPath != "" {
		var err error
		cfg, err = onocsim.LoadConfig(cfgPath)
		if err != nil {
			return err
		}
	}
	if faults != "" {
		f, err := config.FaultPreset(faults)
		if err != nil {
			return cliutil.UsageError{Err: err}
		}
		cfg.Faults = f
	}
	kind := onocsim.NetworkKind(network)
	cfg.Network = kind
	// Sharding is byte-identical to serial execution for any count, so the
	// default exploits whatever the host offers; the replayer itself caps
	// the count at the chip's node count.
	if shards == 0 {
		shards = runtime.NumCPU()
	}
	cfg.Parallelism.Shards = shards

	if dumpConfig {
		return cfg.Save("/dev/stdout")
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	switch mode {
	case "exec":
		res, err := onocsim.RunExecutionDriven(cfg, kind)
		if err != nil {
			return err
		}
		if format == "json" {
			return writeJSON(execSummary{
				Workload:    cfg.Workload.Kernel,
				Network:     string(kind),
				Cores:       cfg.System.Cores,
				Makespan:    int64(res.Makespan),
				MeanLatency: res.MeanLatency,
				Messages:    res.Messages,
				Cycles:      int64(res.Cycles),
				StaticMW:    res.Power.StaticMW,
				DynamicMW:   res.Power.DynamicMW,
				FaultEvents: res.Faults.TokenLosses + res.Faults.DriftedSends + res.Faults.DeratedSends + res.Faults.Rerouted,
			})
		}
		t := metrics.NewTable(fmt.Sprintf("execution-driven run — %s, %s, %d cores",
			cfg.Workload.Kernel, kind, cfg.System.Cores), "metric", "value")
		t.AddRow("makespan (cycles)", fmt.Sprintf("%d", res.Makespan))
		t.AddRow("mean msg latency (cycles)", fmt.Sprintf("%.2f", res.MeanLatency))
		t.AddRow("network messages", fmt.Sprintf("%d", res.Messages))
		t.AddRow("simulated cycles", fmt.Sprintf("%d", res.Cycles))
		t.AddRow("mean latency by class", fmt.Sprintf("req %.1f / resp %.1f / wb %.1f",
			res.ClassLatency[0], res.ClassLatency[1], res.ClassLatency[2]))
		t.AddRow("host wall time", res.WallTime.String())
		t.AddRow("network power (mW)", fmt.Sprintf("%.1f static + %.2f dynamic", res.Power.StaticMW, res.Power.DynamicMW))
		if cfg.Faults.Enabled() {
			t.AddRow("fault events", fmt.Sprintf("%d token losses / %d drifted / %d derated / %d rerouted",
				res.Faults.TokenLosses, res.Faults.DriftedSends, res.Faults.DeratedSends, res.Faults.Rerouted))
		}
		return t.WriteASCII(os.Stdout)

	case "study":
		study, err := onocsim.RunStudy(cfg, kind)
		if err != nil {
			return err
		}
		if format == "json" {
			return writeJSON(studySummary{
				Workload:      study.Workload,
				Network:       string(kind),
				Cores:         cfg.System.Cores,
				TruthMakespan: int64(study.Truth.Makespan),
				Naive:         methodSummary{int64(study.Naive.Makespan), study.NaiveAcc.MakespanErr},
				SCTM:          methodSummary{int64(study.SCTM.Final.Makespan), study.SCTMAcc.MakespanErr},
				Coupled:       methodSummary{int64(study.Coupled.Makespan), study.CoupAcc.MakespanErr},
				SCTMRounds:    len(study.SCTM.Iterations),
				SCTMConverged: study.SCTM.Converged,
				TraceEvents:   study.Trace.NumEvents(),
			})
		}
		t := metrics.NewTable(fmt.Sprintf("methodology study — %s on %s, %d cores",
			study.Workload, kind, cfg.System.Cores),
			"method", "makespan", "err vs truth", "mean lat", "host time")
		t.AddRow("execution-driven (truth)", fmt.Sprintf("%d", study.Truth.Makespan), "—",
			fmt.Sprintf("%.1f", study.Truth.MeanLatency), study.Truth.WallTime.String())
		t.AddRow("naive trace replay", fmt.Sprintf("%d", study.Naive.Makespan),
			fmt.Sprintf("%.1f%%", study.NaiveAcc.MakespanErr*100),
			fmt.Sprintf("%.1f", study.Naive.MeanLatency), study.NaiveWall.String())
		t.AddRow("self-correction trace model", fmt.Sprintf("%d", study.SCTM.Final.Makespan),
			fmt.Sprintf("%.1f%%", study.SCTMAcc.MakespanErr*100),
			fmt.Sprintf("%.1f", study.SCTM.Final.MeanLatency), study.SCTMWall.String())
		t.AddRow("coupled replay (reference)", fmt.Sprintf("%d", study.Coupled.Makespan),
			fmt.Sprintf("%.1f%%", study.CoupAcc.MakespanErr*100),
			fmt.Sprintf("%.1f", study.Coupled.MeanLatency), study.CoupledWall.String())
		t.Note("trace: %d events captured on the %s fabric in %s",
			study.Trace.NumEvents(), config.NetIdeal, study.CaptureWall)
		t.Note("self-correction: %d rounds, converged=%v", len(study.SCTM.Iterations), study.SCTM.Converged)
		return t.WriteASCII(os.Stdout)

	default:
		return fmt.Errorf("unknown mode %q (want exec or study)", mode)
	}
}

// execSummary is the machine-readable form of an execution-driven run.
type execSummary struct {
	Workload    string  `json:"workload"`
	Network     string  `json:"network"`
	Cores       int     `json:"cores"`
	Makespan    int64   `json:"makespan_cycles"`
	MeanLatency float64 `json:"mean_latency_cycles"`
	Messages    uint64  `json:"messages"`
	Cycles      int64   `json:"simulated_cycles"`
	StaticMW    float64 `json:"static_mw"`
	DynamicMW   float64 `json:"dynamic_mw"`
	FaultEvents uint64  `json:"fault_events"`
}

// methodSummary is one replay methodology's estimate and error.
type methodSummary struct {
	Makespan int64   `json:"makespan_cycles"`
	Error    float64 `json:"makespan_error"`
}

// studySummary is the machine-readable form of a methodology study.
type studySummary struct {
	Workload      string        `json:"workload"`
	Network       string        `json:"network"`
	Cores         int           `json:"cores"`
	TruthMakespan int64         `json:"truth_makespan_cycles"`
	Naive         methodSummary `json:"naive"`
	SCTM          methodSummary `json:"sctm"`
	Coupled       methodSummary `json:"coupled"`
	SCTMRounds    int           `json:"sctm_rounds"`
	SCTMConverged bool          `json:"sctm_converged"`
	TraceEvents   int           `json:"trace_events"`
}

func writeJSON(v interface{}) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
