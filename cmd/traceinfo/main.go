// Command traceinfo inspects a binary SCTM trace file: event and byte
// counts, dependency-class breakdown, chain-depth distribution, per-node
// hotspots, and the critical path under the recorded reference latencies.
//
// The analysis streams: events decode incrementally and per-event state is
// retired once the stream moves a window past it, so traces far larger than
// memory inspect at O(window) residency. -window bounds the resident span
// (0 = default 64Ki events, -1 = unbounded).
//
// Example:
//
//	tracegen -kernel fft -cores 64 -out fft.sctm
//	traceinfo fft.sctm
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"onocsim/internal/cliutil"
	"onocsim/internal/metrics"
	"onocsim/internal/trace"
)

func main() {
	verbose := flag.Bool("v", false, "also print the critical path event list")
	window := flag.Int("window", 0, "dependency-span window in events (0 = default, -1 = unbounded)")
	flag.Parse()
	var err error
	if flag.NArg() != 1 {
		err = cliutil.Usagef("usage: traceinfo [-v] [-window n] <trace.sctm>")
	} else {
		err = run(flag.Arg(0), *verbose, *window)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
	}
	os.Exit(cliutil.ExitCode(err))
}

func run(path string, verbose bool, window int) error {
	src, err := trace.NewFileSource(path)
	if err != nil {
		return err
	}
	// The path event list is only reconstructible with per-event predecessor
	// links (O(events) memory), so pay for it only under -v.
	an, err := trace.StreamAnalyze(src, trace.StreamOptions{Window: window, Paths: verbose})
	if err != nil {
		return err
	}
	return report(os.Stdout, path, an, src, verbose)
}

// report renders an analysis. It is a pure function of the Analysis (plus a
// second decode pass for -v), which is what pins the streaming output
// byte-identical to the in-memory computation: the test feeds it both.
func report(w io.Writer, path string, an *trace.Analysis, src trace.Source, verbose bool) error {
	m := an.Meta
	st := an.Stats

	t := metrics.NewTable(fmt.Sprintf("trace %s — workload %q, %d nodes", path, m.Workload, m.Nodes),
		"metric", "value")
	t.AddRow("events", fmt.Sprintf("%d", st.Events))
	t.AddRow("payload bytes", fmt.Sprintf("%d", st.Bytes))
	t.AddRow("reference makespan (cycles)", fmt.Sprintf("%d", m.RefMakespan))
	t.AddRow("deps: program order", fmt.Sprintf("%d", st.DepEdges[trace.DepProgram]))
	t.AddRow("deps: causal", fmt.Sprintf("%d", st.DepEdges[trace.DepCausal]))
	t.AddRow("deps: synchronization", fmt.Sprintf("%d", st.DepEdges[trace.DepSync]))
	for k := trace.Kind(0); k < trace.Kind(5); k++ {
		t.AddRow("kind: "+k.String(), fmt.Sprintf("%d", st.ByKind[k]))
	}
	t.AddRow("critical path (cycles)", fmt.Sprintf("%d", an.CriticalPath.Length))
	t.AddRow("critical path (events)", fmt.Sprintf("%d", an.CriticalPathEvents))
	t.AddRow("critical fraction of makespan", fmt.Sprintf("%.1f%%", 100*float64(an.CriticalPath.Length)/float64(m.RefMakespan)))
	t.AddRow("max dependency span (events)", fmt.Sprintf("%d", an.MaxDepSpan))
	if err := t.WriteASCII(w); err != nil {
		return err
	}

	hist := an.DepthHist
	fmt.Fprintf(w, "\ndependency-chain depth distribution (%d levels):\n", len(hist))
	step := (len(hist) + 19) / 20
	if step < 1 {
		step = 1
	}
	for d := 0; d < len(hist); d += step {
		count := 0
		for k := d; k < d+step && k < len(hist); k++ {
			count += hist[k]
		}
		fmt.Fprintf(w, "  depth %5d..%-5d %8d events\n", d, min(d+step-1, len(hist)-1), count)
	}

	maxS, maxR, argS, argR := 0, 0, 0, 0
	for n := range an.Sends {
		if an.Sends[n] > maxS {
			maxS, argS = an.Sends[n], n
		}
		if an.Recvs[n] > maxR {
			maxR, argR = an.Recvs[n], n
		}
	}
	fmt.Fprintf(w, "\nhottest sender: node %d (%d msgs); hottest receiver: node %d (%d msgs)\n",
		argS, maxS, argR, maxR)

	if verbose {
		fmt.Fprintf(w, "\ncritical path events:\n")
		if err := printPathEvents(w, src, an.CriticalPath.Events); err != nil {
			return err
		}
	}
	return nil
}

// printPathEvents streams a second decode pass, printing the events on the
// critical path in path order. Dependencies always point backward, so the
// path is ID-ordered and one pass with O(path) memory suffices.
func printPathEvents(w io.Writer, src trace.Source, ids []trace.EventID) error {
	want := make(map[trace.EventID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	it, err := src.Pass()
	if err != nil {
		return err
	}
	defer it.Close()
	var e trace.Event
	for {
		ok, err := it.Next(&e)
		if err != nil {
			return err
		}
		if !ok {
			return it.Close()
		}
		if want[e.ID] {
			fmt.Fprintf(w, "  #%d %s %d->%d %dB gap=%d lat=%d\n",
				e.ID, e.Kind, e.Src, e.Dst, e.Bytes, e.Gap, e.RefArrive-e.RefInject)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
