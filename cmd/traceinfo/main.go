// Command traceinfo inspects a binary SCTM trace file: event and byte
// counts, dependency-class breakdown, chain-depth distribution, per-node
// hotspots, and the critical path under the recorded reference latencies.
//
// Example:
//
//	tracegen -kernel fft -cores 64 -out fft.sctm
//	traceinfo fft.sctm
package main

import (
	"flag"
	"fmt"
	"os"

	"onocsim/internal/cliutil"
	"onocsim/internal/metrics"
	"onocsim/internal/trace"
)

func main() {
	verbose := flag.Bool("v", false, "also print the critical path event list")
	flag.Parse()
	var err error
	if flag.NArg() != 1 {
		err = cliutil.Usagef("usage: traceinfo [-v] <trace.sctm>")
	} else {
		err = run(flag.Arg(0), *verbose)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
	}
	os.Exit(cliutil.ExitCode(err))
}

func run(path string, verbose bool) error {
	tr, err := trace.LoadFile(path)
	if err != nil {
		return err
	}
	st := tr.ComputeStats()

	t := metrics.NewTable(fmt.Sprintf("trace %s — workload %q, %d nodes", path, tr.Workload, tr.Nodes),
		"metric", "value")
	t.AddRow("events", fmt.Sprintf("%d", st.Events))
	t.AddRow("payload bytes", fmt.Sprintf("%d", st.Bytes))
	t.AddRow("reference makespan (cycles)", fmt.Sprintf("%d", tr.RefMakespan))
	t.AddRow("deps: program order", fmt.Sprintf("%d", st.DepEdges[trace.DepProgram]))
	t.AddRow("deps: causal", fmt.Sprintf("%d", st.DepEdges[trace.DepCausal]))
	t.AddRow("deps: synchronization", fmt.Sprintf("%d", st.DepEdges[trace.DepSync]))
	for k := trace.Kind(0); k < trace.Kind(5); k++ {
		t.AddRow("kind: "+k.String(), fmt.Sprintf("%d", st.ByKind[k]))
	}
	cp, err := tr.CriticalPathReference()
	if err != nil {
		return err
	}
	t.AddRow("critical path (cycles)", fmt.Sprintf("%d", cp.Length))
	t.AddRow("critical path (events)", fmt.Sprintf("%d", len(cp.Events)))
	t.AddRow("critical fraction of makespan", fmt.Sprintf("%.1f%%", 100*float64(cp.Length)/float64(tr.RefMakespan)))
	if err := t.WriteASCII(os.Stdout); err != nil {
		return err
	}

	hist := tr.DepthHistogram()
	fmt.Printf("\ndependency-chain depth distribution (%d levels):\n", len(hist))
	step := (len(hist) + 19) / 20
	if step < 1 {
		step = 1
	}
	for d := 0; d < len(hist); d += step {
		count := 0
		for k := d; k < d+step && k < len(hist); k++ {
			count += hist[k]
		}
		fmt.Printf("  depth %5d..%-5d %8d events\n", d, min(d+step-1, len(hist)-1), count)
	}

	sends, recvs := tr.NodeActivity()
	maxS, maxR, argS, argR := 0, 0, 0, 0
	for n := range sends {
		if sends[n] > maxS {
			maxS, argS = sends[n], n
		}
		if recvs[n] > maxR {
			maxR, argR = recvs[n], n
		}
	}
	fmt.Printf("\nhottest sender: node %d (%d msgs); hottest receiver: node %d (%d msgs)\n",
		argS, maxS, argR, maxR)

	if verbose {
		fmt.Printf("\ncritical path events:\n")
		for _, id := range cp.Events {
			e := tr.Event(id)
			fmt.Printf("  #%d %s %d->%d %dB gap=%d lat=%d\n",
				e.ID, e.Kind, e.Src, e.Dst, e.Bytes, e.Gap, e.RefArrive-e.RefInject)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
