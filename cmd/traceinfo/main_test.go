package main

import (
	"path/filepath"
	"testing"

	"onocsim"
	"onocsim/internal/trace"
)

func TestRunOnRealTrace(t *testing.T) {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 2
	tr, _, err := onocsim.CaptureTrace(cfg, onocsim.IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.sctm")
	if err := trace.SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "absent.sctm"), false); err == nil {
		t.Fatal("missing file accepted")
	}
}
