package main

import (
	"bytes"
	"path/filepath"
	"testing"

	"onocsim"
	"onocsim/internal/trace"
)

func captureToFile(t *testing.T) string {
	t.Helper()
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 2
	tr, _, err := onocsim.CaptureTrace(cfg, onocsim.IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.sctm")
	if err := trace.SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunOnRealTrace(t *testing.T) {
	path := captureToFile(t)
	if err := run(path, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := run(path, true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunWindowed(t *testing.T) {
	path := captureToFile(t)
	// Unbounded and tight-but-sufficient windows both succeed; the analysis
	// itself is checked byte-identical in internal/trace's tests.
	if err := run(path, false, trace.Unbounded); err != nil {
		t.Fatal(err)
	}
	if err := run(path, true, trace.DefaultWindow); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "absent.sctm"), false, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestReportByteIdenticalToInMemory pins the streaming report's bytes: the
// same rendering fed an Analysis assembled from the in-memory trace methods
// must produce the identical output, -v event list included.
func TestReportByteIdenticalToInMemory(t *testing.T) {
	path := captureToFile(t)
	tr, err := trace.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := trace.StreamAnalyze(src, trace.StreamOptions{Paths: true})
	if err != nil {
		t.Fatal(err)
	}

	cp, err := tr.CriticalPathReference()
	if err != nil {
		t.Fatal(err)
	}
	mem := &trace.Analysis{
		Meta: trace.Meta{Nodes: tr.Nodes, Workload: tr.Workload,
			RefMakespan: tr.RefMakespan, NumEvents: len(tr.Events)},
		Stats:              tr.ComputeStats(),
		CriticalPath:       cp,
		CriticalPathEvents: len(cp.Events),
		DepthHist:          tr.DepthHistogram(),
		MaxDepSpan:         streamed.MaxDepSpan,
	}
	mem.Sends, mem.Recvs = tr.NodeActivity()

	for _, verbose := range []bool{false, true} {
		var got, want bytes.Buffer
		if err := report(&got, path, streamed, src, verbose); err != nil {
			t.Fatal(err)
		}
		if err := report(&want, path, mem, trace.NewMemSource(tr), verbose); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("-v=%v: streaming report diverges from in-memory report:\n--- streaming ---\n%s\n--- in-memory ---\n%s",
				verbose, got.String(), want.String())
		}
	}
}
