// Command tracegen captures a dependency-annotated trace by running the
// configured workload execution-driven on a capture fabric, then writes it
// in the binary SCTM format (or JSON with -json).
//
// With -huge it instead streams a synthetic generated trace straight to
// disk: events are encoded as they are produced and never materialized, so
// traces far larger than memory can be generated for the out-of-core replay
// path (-events sets the length, -pattern/-bytes/-gap the shape).
//
// Example:
//
//	tracegen -kernel fft -cores 64 -out fft64.sctm
//	tracegen -config exp.json -capture-on electrical -out exp.sctm -json exp.json.trace
//	tracegen -huge -events 50000000 -pattern hotspot -out huge.sctm
package main

import (
	"flag"
	"fmt"
	"os"

	"onocsim"
	"onocsim/internal/cliutil"
	"onocsim/internal/trace"
	"onocsim/internal/workload"
)

func main() {
	var (
		cfgPath   = flag.String("config", "", "JSON config file (default: built-in baseline)")
		kernel    = flag.String("kernel", "", "override workload kernel: fft | lu | stencil | sort")
		cores     = flag.Int("cores", 0, "override core count")
		captureOn = flag.String("capture-on", "ideal", "capture fabric: ideal | electrical | optical")
		out       = flag.String("out", "trace.sctm", "output path (binary format)")
		jsonOut   = flag.String("json", "", "optional JSON dump path")
		huge      = flag.Bool("huge", false, "generate a synthetic trace streamed to disk instead of capturing")
		events    = flag.Int("events", 0, "-huge: event count (default 1Mi)")
		pattern   = flag.String("pattern", "uniform", "-huge: traffic pattern: uniform | hotspot | neighbor")
		bytesMean = flag.Int("bytes", 64, "-huge: mean payload bytes")
		gap       = flag.Int("gap", 20, "-huge: mean per-source think time in cycles")
	)
	flag.Parse()
	var err error
	if *huge {
		err = runHuge(*cfgPath, *cores, *events, *pattern, *bytesMean, *gap, *out)
	} else {
		err = run(*cfgPath, *kernel, *cores, *captureOn, *out, *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
	}
	os.Exit(cliutil.ExitCode(err))
}

func run(cfgPath, kernel string, cores int, captureOn, out, jsonOut string) error {
	switch captureOn {
	case "ideal", "electrical", "optical":
	default:
		return cliutil.Usagef("unknown capture fabric %q (want ideal, electrical, or optical)", captureOn)
	}
	if kernel != "" && !knownKernel(kernel) {
		return cliutil.Usagef("unknown kernel %q (want one of %v)", kernel, workload.KernelNames())
	}
	cfg := onocsim.DefaultConfig()
	if cfgPath != "" {
		var err error
		cfg, err = onocsim.LoadConfig(cfgPath)
		if err != nil {
			return err
		}
	}
	if kernel != "" {
		cfg.Workload.Kernel = kernel
	}
	if cores > 0 {
		cfg.System.Cores = cores
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	tr, wall, err := onocsim.CaptureTrace(cfg, onocsim.NetworkKind(captureOn))
	if err != nil {
		return err
	}
	if err := onocsim.SaveTrace(out, tr); err != nil {
		return err
	}
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		if err := trace.WriteJSON(f, tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	st := tr.ComputeStats()
	fmt.Printf("captured %s on %s fabric in %s\n", cfg.Workload.Kernel, captureOn, wall)
	fmt.Printf("  %s\n", st)
	fmt.Printf("wrote %s\n", out)
	if jsonOut != "" {
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}

// runHuge streams a generated trace to disk with O(nodes) resident memory.
// The config contributes only the seed and (absent -cores) the node count.
func runHuge(cfgPath string, cores, events int, pattern string, bytesMean, gap int, out string) error {
	cfg := onocsim.DefaultConfig()
	if cfgPath != "" {
		var err error
		cfg, err = onocsim.LoadConfig(cfgPath)
		if err != nil {
			return err
		}
	}
	spec := workload.DefaultHugeSpec()
	spec.Nodes = cfg.System.Cores
	spec.Seed = cfg.Seed
	if cores > 0 {
		spec.Nodes = cores
	}
	if events > 0 {
		spec.Events = events
	}
	spec.Pattern = pattern
	spec.Bytes = bytesMean
	spec.Gap = gap

	makespan, err := workload.WriteHugeFile(out, spec)
	if err != nil {
		return err
	}
	fi, err := os.Stat(out)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d %s events over %d nodes (ref makespan %d cycles)\n",
		spec.Events, spec.Pattern, spec.Nodes, makespan)
	fmt.Printf("wrote %s (%d bytes)\n", out, fi.Size())
	return nil
}

// knownKernel reports whether name is one of the built-in workload kernels.
func knownKernel(name string) bool {
	for _, k := range workload.KernelNames() {
		if k == name {
			return true
		}
	}
	return false
}
