package main

import (
	"path/filepath"
	"testing"

	"onocsim/internal/trace"
)

func TestRunCapturesAndWrites(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.sctm")
	jsonOut := filepath.Join(dir, "t.json")
	if err := run("", "stencil", 16, "ideal", out, jsonOut); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Workload != "stencil" || tr.Nodes != 16 {
		t.Fatalf("trace metadata: %q %d", tr.Workload, tr.Nodes)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.sctm")
	if err := run("", "nokernel", 16, "ideal", out, ""); err == nil {
		t.Fatal("bad kernel accepted")
	}
	if err := run("", "stencil", 10, "ideal", out, ""); err == nil {
		t.Fatal("non-square cores accepted")
	}
	if err := run("", "stencil", 16, "teleport", out, ""); err == nil {
		t.Fatal("bad capture fabric accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing.json"), "", 0, "ideal", out, ""); err == nil {
		t.Fatal("missing config accepted")
	}
}
