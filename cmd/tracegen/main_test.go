package main

import (
	"path/filepath"
	"testing"

	"onocsim/internal/cliutil"
	"onocsim/internal/trace"
)

func TestRunCapturesAndWrites(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.sctm")
	jsonOut := filepath.Join(dir, "t.json")
	if err := run("", "stencil", 16, "ideal", out, jsonOut); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Workload != "stencil" || tr.Nodes != 16 {
		t.Fatalf("trace metadata: %q %d", tr.Workload, tr.Nodes)
	}
}

// TestRunRejectsBadInputs pins the shared exit-code convention: bad flag
// values are usage errors (exit 2), while config-level failures exit 1.
func TestRunRejectsBadInputs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.sctm")
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"bad kernel", run("", "nokernel", 16, "ideal", out, ""), 2},
		{"bad capture fabric", run("", "stencil", 16, "teleport", out, ""), 2},
		{"non-square cores", run("", "stencil", 10, "ideal", out, ""), 1},
		{"missing config", run(filepath.Join(t.TempDir(), "missing.json"), "", 0, "ideal", out, ""), 1},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if got := cliutil.ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: exit code %d, want %d (err: %v)", tc.name, got, tc.want, tc.err)
		}
	}
}
