package main

import (
	"path/filepath"
	"testing"

	"onocsim/internal/cliutil"
	"onocsim/internal/trace"
)

func TestRunCapturesAndWrites(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.sctm")
	jsonOut := filepath.Join(dir, "t.json")
	if err := run("", "stencil", 16, "ideal", out, jsonOut); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Workload != "stencil" || tr.Nodes != 16 {
		t.Fatalf("trace metadata: %q %d", tr.Workload, tr.Nodes)
	}
}

// TestRunRejectsBadInputs pins the shared exit-code convention: bad flag
// values are usage errors (exit 2), while config-level failures exit 1.
func TestRunRejectsBadInputs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.sctm")
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"bad kernel", run("", "nokernel", 16, "ideal", out, ""), 2},
		{"bad capture fabric", run("", "stencil", 16, "teleport", out, ""), 2},
		{"non-square cores", run("", "stencil", 10, "ideal", out, ""), 1},
		{"missing config", run(filepath.Join(t.TempDir(), "missing.json"), "", 0, "ideal", out, ""), 1},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if got := cliutil.ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: exit code %d, want %d (err: %v)", tc.name, got, tc.want, tc.err)
		}
	}
}

// TestRunHugeStreamsToDisk generates a synthetic trace with the streaming
// writer and checks it opens as a valid streaming source end to end.
func TestRunHugeStreamsToDisk(t *testing.T) {
	out := filepath.Join(t.TempDir(), "huge.sctm")
	if err := runHuge("", 8, 5000, "hotspot", 32, 10, out); err != nil {
		t.Fatal(err)
	}
	src, err := trace.NewFileSource(out)
	if err != nil {
		t.Fatal(err)
	}
	m := src.Meta()
	if m.Nodes != 8 || m.NumEvents != 5000 {
		t.Fatalf("meta %+v, want 8 nodes / 5000 events", m)
	}
	if _, err := trace.StreamAnalyze(src, trace.StreamOptions{}); err != nil {
		t.Fatalf("generated trace does not analyze: %v", err)
	}
}

func TestRunHugeRejectsBadPattern(t *testing.T) {
	out := filepath.Join(t.TempDir(), "huge.sctm")
	if err := runHuge("", 8, 100, "zipf", 32, 10, out); err == nil {
		t.Fatal("bad pattern accepted")
	}
}
