package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"onocsim/internal/cliutil"
	"onocsim/internal/experiments"
	"onocsim/internal/metrics"
)

var quick = experiments.Options{Seed: 42, Cores: 16, Quick: true}

func TestRunSingleExperimentASCIIAndCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "r1", quick, "ascii", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, "r1", quick, "csv", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesCSVFiles(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run(&buf, "r13", quick, "ascii", dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "r13.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "nodes") {
		t.Fatalf("csv missing header: %q", data[:40])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run(&bytes.Buffer{}, "r99", quick, "ascii", "")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if cliutil.ExitCode(err) != 2 {
		t.Fatalf("unknown experiment should be a usage error (exit 2), got %v (exit %d)", err, cliutil.ExitCode(err))
	}
	if err := run(&bytes.Buffer{}, "all", experiments.Options{Seed: 1, Cores: 16, Quick: true}, "csv", ""); err != nil {
		// "all" must also fail loudly on an unknown id embedded in the
		// sequence — it shouldn't here.
		t.Fatalf("all (quick, csv): %v", err)
	}
}

func TestRunFormatValidation(t *testing.T) {
	for _, bad := range []string{"yaml", "", "Json", "ascii,csv"} {
		err := run(&bytes.Buffer{}, "r13", quick, bad, "")
		if err == nil {
			t.Fatalf("format %q accepted", bad)
		}
		if cliutil.ExitCode(err) != 2 {
			t.Fatalf("format %q: want usage error (exit 2), got %v (exit %d)", bad, err, cliutil.ExitCode(err))
		}
	}
}

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := runList(&buf, "ascii"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"r1", "r18", "heavy", "light", "kernel-studies"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}
	if err := runList(&bytes.Buffer{}, "nope"); cliutil.ExitCode(err) != 2 {
		t.Fatalf("bad list format: want exit 2, got %v", err)
	}
	var jbuf bytes.Buffer
	if err := runList(&jbuf, "json"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version int `json:"version"`
		Results []struct {
			ID    string         `json:"id"`
			Table *metrics.Table `json:"table"`
		} `json:"results"`
	}
	if err := json.Unmarshal(jbuf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 1 || doc.Results[0].Table.NumRows() != len(experiments.Registry()) {
		t.Fatalf("list json: want one table with %d rows, got %+v", len(experiments.Registry()), doc)
	}
}

// TestRunJSONRoundTrip pins the -format json contract: the document is
// versioned, cells carry numeric values and units, and a decoded table
// renders byte-identically to the directly rendered ASCII.
func TestRunJSONRoundTrip(t *testing.T) {
	var jbuf bytes.Buffer
	if err := run(&jbuf, "r13", quick, "json", ""); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version int `json:"version"`
		Results []struct {
			ID    string         `json:"id"`
			Table *metrics.Table `json:"table"`
		} `json:"results"`
	}
	if err := json.Unmarshal(jbuf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != metrics.TableFormatVersion {
		t.Fatalf("doc version = %d, want %d", doc.Version, metrics.TableFormatVersion)
	}
	if len(doc.Results) != 1 || doc.Results[0].ID != "r13" {
		t.Fatalf("want one r13 result, got %+v", doc.Results)
	}
	decoded := doc.Results[0].Table
	if v, ok := decoded.At(0, 0).Value(); !ok || v != 16 {
		t.Fatalf("decoded cell (0,0) lost its numeric value: %+v", decoded.At(0, 0))
	}
	if unit := decoded.At(0, 0).Unit; unit != "nodes" {
		t.Fatalf("decoded cell (0,0) lost its unit: %q", unit)
	}

	var direct bytes.Buffer
	if err := run(&direct, "r13", quick, "ascii", ""); err != nil {
		t.Fatal(err)
	}
	var rendered bytes.Buffer
	if err := decoded.WriteASCII(&rendered); err != nil {
		t.Fatal(err)
	}
	if rendered.String() != direct.String() {
		t.Fatalf("decoded table renders differently:\n--- direct ---\n%s--- decoded ---\n%s", direct.String(), rendered.String())
	}
}
