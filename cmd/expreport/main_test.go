package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"onocsim/internal/experiments"
)

var quick = experiments.Options{Seed: 42, Cores: 16, Quick: true}

func TestRunSingleExperimentASCIIAndCSV(t *testing.T) {
	if err := run("r1", quick, false, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("r1", quick, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesCSVFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run("r13", quick, false, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "r13.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "nodes") {
		t.Fatalf("csv missing header: %q", data[:40])
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("r99", quick, false, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run("all", experiments.Options{Seed: 1, Cores: 16, Quick: true}, true, ""); err != nil {
		// "all" must also fail loudly on an unknown id embedded in the
		// sequence — it shouldn't here.
		t.Fatalf("all (quick, csv): %v", err)
	}
}
