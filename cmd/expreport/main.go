// Command expreport regenerates the reconstructed paper evaluation: every
// table and figure R1–R8 described in DESIGN.md §3, as aligned ASCII or CSV.
//
// Examples:
//
//	expreport -exp all
//	expreport -exp r1 -cores 64
//	expreport -exp r4 -csv > r4.csv
//	expreport -exp all -quick              # CI-sized sweeps
//	expreport -exp all -parallel           # memoized parallel scheduler
//	expreport -exp all -parallel -cachedir ~/.cache/onocsim
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"onocsim"
	"onocsim/internal/cliutil"
	"onocsim/internal/config"
	"onocsim/internal/experiments"
	"onocsim/internal/metrics"
	"onocsim/internal/prof"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (r1..r18) or 'all'")
		cores      = flag.Int("cores", 64, "core count for kernel experiments")
		seed       = flag.Uint64("seed", 42, "experiment seed")
		quick      = flag.Bool("quick", false, "shrink sweeps (CI-sized)")
		csv        = flag.Bool("csv", false, "emit CSV instead of ASCII")
		outdir     = flag.String("outdir", "", "also write one CSV file per experiment into this directory")
		parallel   = flag.Bool("parallel", false, "fan experiments out concurrently, deduplicating shared simulations (tables are byte-identical apart from wall-clock cells)")
		cachedir   = flag.String("cachedir", "", "persist captured traces here and reload them across invocations (implies result memoization)")
		shards     = flag.Int("shards", 0, "shard count for replay-family simulations (0: one per CPU; tables are identical for any count)")
		faults     = flag.String("faults", "", "run the kernel experiments under this fault preset: off | light | heavy (R18 sweeps all presets regardless)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		verbose    = flag.Bool("v", false, "report cache statistics on stderr")
	)
	flag.Parse()
	// Sharded replay is byte-identical to serial for any count, so the
	// default exploits whatever the host offers.
	if *shards == 0 {
		*shards = runtime.NumCPU()
	}
	opts := experiments.Options{Seed: *seed, Cores: *cores, Quick: *quick, Parallel: *parallel, Shards: *shards}
	// One session serves the whole invocation, so every experiment —
	// whether run via -exp all or singly — shares one memo table. The
	// scheduler would create its own; making it here too lets a plain
	// -cachedir (without -parallel) still reuse disk-persisted captures,
	// and gives -v something to report.
	if *parallel || *cachedir != "" {
		opts.Session = onocsim.NewSession(*cachedir)
	}
	var err error
	opts.Faults, err = config.FaultPreset(*faults)
	if err != nil {
		err = cliutil.UsageError{Err: err}
	} else {
		var stopProf func() error
		stopProf, err = prof.Start(*cpuprofile, *memprofile)
		if err == nil {
			err = run(*exp, opts, *csv, *outdir)
		}
		if perr := stopProf(); err == nil {
			err = perr
		}
	}
	if *verbose && opts.Session != nil {
		st := opts.Session.CacheStats()
		fmt.Fprintf(os.Stderr, "expreport: cache: %d computed, %d hits, %d single-flight waits, %d disk hits, %d disk errors\n",
			st.Misses, st.Hits, st.Waits, st.DiskHits, st.DiskErrors)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "expreport:", err)
	}
	os.Exit(cliutil.ExitCode(err))
}

// writeCSVFile saves one experiment table as <outdir>/<id>.csv.
func writeCSVFile(outdir, id string, t *metrics.Table) error {
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(outdir, id+".csv"))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(exp string, opts experiments.Options, csv bool, outdir string) error {
	if exp != "all" && !experiments.Known(exp) {
		return cliutil.Usagef("unknown experiment %q (want %s, or all)", exp, strings.Join(experiments.Names(), ", "))
	}
	if exp == "all" {
		tables, err := experiments.All(opts)
		if err != nil {
			return err
		}
		names := experiments.Names()
		for i, t := range tables {
			if i > 0 {
				fmt.Println()
			}
			if outdir != "" && i < len(names) {
				if err := writeCSVFile(outdir, names[i], t); err != nil {
					return err
				}
			}
			if csv {
				if err := t.WriteCSV(os.Stdout); err != nil {
					return err
				}
			} else if err := t.WriteASCII(os.Stdout); err != nil {
				return err
			}
		}
		return nil
	}
	t, err := experiments.ByName(exp, opts)
	if err != nil {
		return err
	}
	if outdir != "" {
		if err := writeCSVFile(outdir, exp, t); err != nil {
			return err
		}
	}
	if csv {
		return t.WriteCSV(os.Stdout)
	}
	return t.WriteASCII(os.Stdout)
}
