// Command expreport regenerates the reconstructed paper evaluation: every
// table and figure R1–R18 registered in the experiment registry (DESIGN.md
// §3 and §9), rendered as aligned ASCII, CSV, or versioned JSON. The tool
// itself is a thin renderer: experiment identity, cost and wiring live in
// internal/experiments, and every output format is a view of the same typed
// tables.
//
// Examples:
//
//	expreport -list
//	expreport -exp all
//	expreport -exp r1 -cores 64
//	expreport -exp r4 -format csv > r4.csv
//	expreport -exp r1 -format json | jq '.results[0].table'
//	expreport -exp all -quick              # CI-sized sweeps
//	expreport -exp all -parallel -progress # scheduler + live stderr progress
//	expreport -exp all -parallel -cachedir ~/.cache/onocsim
//	expreport -sweep grid.json -quick      # custom design-space sweep
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"onocsim"
	"onocsim/internal/cliutil"
	"onocsim/internal/config"
	"onocsim/internal/experiments"
	"onocsim/internal/metrics"
	"onocsim/internal/prof"
	"onocsim/internal/sweep"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (r1..r20) or 'all'")
		cores      = flag.Int("cores", 64, "core count for kernel experiments")
		seed       = flag.Uint64("seed", 42, "experiment seed")
		quick      = flag.Bool("quick", false, "shrink sweeps (CI-sized)")
		format     = flag.String("format", "ascii", "output format: ascii | csv | json")
		csv        = flag.Bool("csv", false, "emit CSV instead of ASCII (deprecated: use -format csv)")
		list       = flag.Bool("list", false, "list the registered experiments (id, cost, needs, summary) and exit")
		outdir     = flag.String("outdir", "", "also write one CSV file per experiment into this directory")
		parallel   = flag.Bool("parallel", false, "fan experiments out concurrently, deduplicating shared simulations (tables are byte-identical apart from wall-clock cells)")
		cachedir   = flag.String("cachedir", "", "persist captured traces here and reload them across invocations (implies result memoization)")
		shards     = flag.Int("shards", 0, "shard count for replay-family simulations (0: one per CPU; tables are identical for any count)")
		incr       = flag.Bool("incremental", false, "resume self-correction rounds from frozen-prefix checkpoints (tables are identical apart from wall-clock and replayed-events cells)")
		faults     = flag.String("faults", "", "run the kernel experiments under this fault preset: off | light | heavy (R18 sweeps all presets regardless)")
		seedMode   = flag.String("seedmode", "", "self-correction round-0 seeding for the kernel experiments: zeroload | analytic | fixed (R19 compares the modes regardless); -seed stays the RNG seed")
		sweepPath  = flag.String("sweep", "", "run a design-space sweep from this JSON spec instead of the registered experiments ('default': the built-in grid)")
		progress   = flag.Bool("progress", false, "stream experiment and simulation progress to stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		verbose    = flag.Bool("v", false, "report cache statistics on stderr")
	)
	flag.Parse()
	if *csv && *format == "ascii" {
		*format = "csv"
	}
	// Sharded replay is byte-identical to serial for any count, so the
	// default exploits whatever the host offers.
	if *shards == 0 {
		*shards = runtime.NumCPU()
	}
	opts := experiments.Options{Seed: *seed, Cores: *cores, Quick: *quick, Parallel: *parallel, Shards: *shards, SeedMode: *seedMode, Incremental: *incr}
	if *progress {
		opts.Progress = &progressLogger{w: os.Stderr}
	}
	// One session serves the whole invocation, so every experiment —
	// whether run via -exp all or singly — shares one memo table. The
	// scheduler would create its own; making it here too lets a plain
	// -cachedir (without -parallel) still reuse disk-persisted captures,
	// and gives -v something to report.
	if *parallel || *cachedir != "" {
		opts.Session = onocsim.NewSession(*cachedir)
		if opts.Progress != nil {
			opts.Session.SetProgress(opts.Progress)
		}
	}
	var err error
	opts.Faults, err = config.FaultPreset(*faults)
	if err != nil {
		err = cliutil.UsageError{Err: err}
	} else if *list {
		err = runList(os.Stdout, *format)
	} else {
		var stopProf func() error
		stopProf, err = prof.Start(*cpuprofile, *memprofile)
		if err == nil {
			if *sweepPath != "" {
				err = runSweep(os.Stdout, *sweepPath, opts, *format)
			} else {
				err = run(os.Stdout, *exp, opts, *format, *outdir)
			}
		}
		if perr := stopProf(); err == nil {
			err = perr
		}
	}
	if *verbose && opts.Session != nil {
		st := opts.Session.CacheStats()
		fmt.Fprintf(os.Stderr, "expreport: cache: %d computed, %d hits, %d single-flight waits, %d disk hits, %d disk errors\n",
			st.Misses, st.Hits, st.Waits, st.DiskHits, st.DiskErrors)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "expreport:", err)
	}
	os.Exit(cliutil.ExitCode(err))
}

// progressLogger streams progress events as stderr lines. Events arrive from
// many goroutines under -parallel, so each line is written under a mutex.
type progressLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func (p *progressLogger) Event(e onocsim.ProgressEvent) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch e.Kind {
	case onocsim.ProgressExperimentStart:
		fmt.Fprintf(p.w, "expreport: %s start — %s\n", e.Experiment, e.Title)
	case onocsim.ProgressExperimentDone:
		if e.Err != nil {
			fmt.Fprintf(p.w, "expreport: %s failed after %s: %v\n", e.Experiment, e.Elapsed.Round(time.Millisecond), e.Err)
		} else {
			fmt.Fprintf(p.w, "expreport: %s done in %s\n", e.Experiment, e.Elapsed.Round(time.Millisecond))
		}
	default:
		fmt.Fprintf(p.w, "expreport: sim %s %s\n", e.Kind, e.Sim)
	}
}

// checkFormat validates the -format value; unknown formats are usage errors
// (exit 2), matching the flag-parse convention.
func checkFormat(format string) error {
	switch format {
	case "ascii", "csv", "json":
		return nil
	}
	return cliutil.Usagef("unknown format %q (want ascii, csv, or json)", format)
}

// writeTable renders one table in the selected format. JSON output goes
// through the results document so single-experiment and all runs share one
// shape; this helper serves the ascii/csv paths.
func writeTable(w io.Writer, t *metrics.Table, format string) error {
	if format == "csv" {
		return t.WriteCSV(w)
	}
	return t.WriteASCII(w)
}

// resultsDoc is the versioned document emitted by -format json: the table
// format version and one entry per experiment, in the order they ran.
type resultsDoc struct {
	Version int           `json:"version"`
	Results []resultEntry `json:"results"`
}

type resultEntry struct {
	ID    string         `json:"id"`
	Table *metrics.Table `json:"table"`
}

// writeJSONDoc emits the versioned results document.
func writeJSONDoc(w io.Writer, ids []string, tables []*metrics.Table) error {
	doc := resultsDoc{Version: metrics.TableFormatVersion}
	for i, t := range tables {
		doc.Results = append(doc.Results, resultEntry{ID: ids[i], Table: t})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// runList renders the experiment registry (the -list view).
func runList(w io.Writer, format string) error {
	if err := checkFormat(format); err != nil {
		return err
	}
	t := metrics.NewTable("Registered experiments", "id", "cost", "needs", "summary")
	for _, d := range experiments.Registry() {
		needs := make([]string, len(d.Needs))
		for i, n := range d.Needs {
			needs[i] = string(n)
		}
		t.AddCells(
			metrics.String(d.ID),
			metrics.String(string(d.CostClass)),
			metrics.String(strings.Join(needs, ", ")),
			metrics.String(d.Summary),
		)
	}
	if format == "json" {
		return writeJSONDoc(w, []string{"registry"}, []*metrics.Table{t})
	}
	return writeTable(w, t, format)
}

// runSweep drives the design-space sweep pipeline (internal/sweep) from a
// spec file — the batch counterpart of a single -exp run. The experiment
// options that make sense for a sweep carry over: -seed and -quick shape the
// spec, -progress streams per-arm phases through the shared progressLogger,
// and -parallel/-cachedir's session (if any) memoizes the arms.
func runSweep(w io.Writer, path string, opts experiments.Options, format string) error {
	if err := checkFormat(format); err != nil {
		return err
	}
	spec := config.DefaultSweep()
	if path != "default" {
		var err error
		spec, err = config.LoadSweep(path)
		if err != nil {
			return err
		}
	}
	spec.Normalize()
	if opts.Seed != 0 {
		spec.Seed = opts.Seed
	}
	if opts.Quick {
		spec.Quick = true
	}
	session := opts.Session
	if session == nil {
		session = onocsim.NewSession("")
	}
	res, err := sweep.Run(context.Background(), spec, sweep.Options{
		Session:  session,
		Progress: opts.Progress,
	})
	if err != nil {
		return err
	}
	switch format {
	case "json":
		return res.WriteJSON(w)
	case "csv":
		if err := res.Summary.WriteCSV(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
		return res.Front.WriteCSV(w)
	}
	return res.WriteASCII(w)
}

// writeCSVFile saves one experiment table as <outdir>/<id>.csv.
func writeCSVFile(outdir, id string, t *metrics.Table) error {
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(outdir, id+".csv"))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(w io.Writer, exp string, opts experiments.Options, format, outdir string) error {
	if err := checkFormat(format); err != nil {
		return err
	}
	if exp != "all" && !experiments.Known(exp) {
		return cliutil.Usagef("unknown experiment %q (want %s, or all)", exp, strings.Join(experiments.Names(), ", "))
	}
	var (
		ids    []string
		tables []*metrics.Table
	)
	if exp == "all" {
		all, err := experiments.All(opts)
		if err != nil {
			return err
		}
		ids, tables = experiments.Names(), all
	} else {
		t, err := experiments.ByName(exp, opts)
		if err != nil {
			return err
		}
		ids, tables = []string{exp}, []*metrics.Table{t}
	}
	if outdir != "" {
		for i, t := range tables {
			if err := writeCSVFile(outdir, ids[i], t); err != nil {
				return err
			}
		}
	}
	if format == "json" {
		return writeJSONDoc(w, ids, tables)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := writeTable(w, t, format); err != nil {
			return err
		}
	}
	return nil
}
