package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"onocsim/internal/experiments"
	"onocsim/internal/metrics"
)

// maskWallClock replaces host-time cells, the only nondeterministic content a
// table can carry, so the remaining bytes are pinnable. The three golden
// tables below contain none today; the mask keeps the tests honest if a
// wall-clock column is ever added to one.
func maskWallClock(t *metrics.Table) {
	for r := 0; r < t.NumRows(); r++ {
		for c := range t.Columns {
			if t.At(r, c).Kind == metrics.KindDuration {
				t.SetCell(r, c, metrics.String("MASKED"))
			}
		}
	}
}

// TestGoldenASCII pins the ASCII rendering of representative experiments to
// byte-identical golden files captured before the typed-cell refactor: R1
// (the headline accuracy table), R4 (the synthetic load sweep: floats, bools)
// and R18 (the fault sweep: ratios, percentages, counters). Simulations are
// deterministic, so any diff is a rendering or modeling change — regenerate
// with:
//
//	go run ./cmd/expreport -exp rN -quick -cores 16 -seed 42 > testdata/rN_quick.golden
func TestGoldenASCII(t *testing.T) {
	opts := experiments.Options{Seed: 42, Cores: 16, Quick: true}
	for _, id := range []string{"r1", "r4", "r18"} {
		id := id
		t.Run(id, func(t *testing.T) {
			tb, err := experiments.ByName(id, opts)
			if err != nil {
				t.Fatal(err)
			}
			maskWallClock(tb)
			var got bytes.Buffer
			if err := tb.WriteASCII(&got); err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", id+"_quick.golden"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("%s ASCII drifted from golden:\n--- got ---\n%s--- want ---\n%s", id, got.String(), want)
			}
		})
	}
}
