package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"onocsim/internal/experiments"
	"onocsim/internal/metrics"
)

// maskWallClock replaces host-time cells, the only nondeterministic content a
// table can carry, so the remaining bytes are pinnable. R19 carries two
// wall-clock columns; the other golden tables contain none today, and the
// mask keeps those tests honest if one is ever added.
func maskWallClock(t *metrics.Table) {
	for r := 0; r < t.NumRows(); r++ {
		for c := range t.Columns {
			if t.At(r, c).Kind == metrics.KindDuration {
				t.SetCell(r, c, metrics.String("MASKED"))
			}
		}
	}
}

// TestGoldenASCII pins the ASCII rendering of representative experiments to
// byte-identical golden files: R1 (the headline accuracy table), R4 (the
// synthetic load sweep: floats, bools), R18 (the fault sweep: ratios,
// percentages, counters), R19 (the seeding comparison: wall-clock cells
// masked) and R20 (the design-space sweep: the Pareto front and its pruning
// accounting must not drift). Simulations are deterministic, so any diff is
// a rendering or modeling change — regenerate through the same masked path
// with:
//
//	UPDATE_GOLDEN=1 go test ./cmd/expreport -run TestGoldenASCII
func TestGoldenASCII(t *testing.T) {
	opts := experiments.Options{Seed: 42, Cores: 16, Quick: true}
	for _, id := range []string{"r1", "r4", "r18", "r19", "r20"} {
		id := id
		t.Run(id, func(t *testing.T) {
			tb, err := experiments.ByName(id, opts)
			if err != nil {
				t.Fatal(err)
			}
			maskWallClock(tb)
			var got bytes.Buffer
			if err := tb.WriteASCII(&got); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", id+"_quick.golden")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("%s ASCII drifted from golden:\n--- got ---\n%s--- want ---\n%s", id, got.String(), want)
			}
		})
	}
}
