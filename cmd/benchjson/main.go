// Command benchjson converts `go test -bench` output into a machine-readable
// JSON snapshot, optionally folding in a recorded baseline run so the file
// carries before/after numbers and speedups side by side. The baseline may be
// raw `go test -bench` text or a snapshot this tool wrote earlier (its
// "current" section becomes the reference), so successive PRs chain:
// BENCH_PR1.json baselines BENCH_PR2.json, and so on.
//
// With -maxregress, benchjson also acts as a CI gate: it exits nonzero when
// any benchmark present in both runs got slower than the allowed percentage.
// Wall clock on a shared host is the noisiest number a run carries, so the
// gate leans on the deterministic counters instead: allocs/op, allocs/event
// and max RSS are gated by the separate, much stricter -counterregress
// threshold (default 5%), which fires independently of -maxregress. The
// timing threshold can also be set per-host through the BENCH_TOLERANCE
// environment variable; an explicit -maxregress flag wins over it.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchmem ./... | benchjson -out BENCH.json -baseline BENCH_BASELINE.txt
//	go test -run '^$' -bench=. -benchmem ./... | benchjson -out BENCH_PR2.json -baseline BENCH_PR1.json -maxregress 25
//	BENCH_TOLERANCE=40 make bench-json   # noisy host: loosen timing, counters stay strict
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"onocsim/internal/cliutil"
	"onocsim/internal/metrics"
)

// Result is one benchmark measurement. MaxRSSBytes and AllocsPerEvent come
// from the repo's memory benchmarks, which report them as the custom units
// "max-rss-bytes" and "allocs/event"; they are the gate for the streaming
// replay path's O(window) residency contract.
type Result struct {
	Iterations     int64   `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp    int64   `json:"allocs_per_op,omitempty"`
	MaxRSSBytes    int64   `json:"max_rss_bytes,omitempty"`
	AllocsPerEvent float64 `json:"allocs_per_event,omitempty"`
}

// Snapshot is the emitted document.
type Snapshot struct {
	// Env echoes the goos/goarch/pkg/cpu header lines of the current run.
	Env map[string]string `json:"env,omitempty"`
	// Baseline holds the recorded reference run, when one was supplied.
	Baseline map[string]Result `json:"baseline,omitempty"`
	// Current holds the run parsed from stdin.
	Current map[string]Result `json:"current"`
	// Speedup is baseline ns/op divided by current ns/op, for benchmarks
	// present in both runs.
	Speedup map[string]float64 `json:"speedup,omitempty"`
}

// parse reads `go test -bench` output: header key: value lines and benchmark
// result lines ("BenchmarkName-8  20  105088199 ns/op  ... B/op  ... allocs/op").
// The memory units "max-rss-bytes" and "allocs/event" are captured; other
// custom metrics (e.g. "5.000 rows") are ignored. Repeated lines for the
// same benchmark (from `-count=N`) collapse to the fastest run: on a shared
// CI host the minimum is the measurement least polluted by scheduler and
// neighbor noise, and the regression gate should compare code, not load.
// Memory fields collapse to their own minima across the repeats for the same
// reason — a GC that a neighbor's load delayed inflates a single repeat's
// residency, not the code's.
func parse(r io.Reader) (map[string]Result, map[string]string, error) {
	results := map[string]Result{}
	env := map[string]string{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ": "); ok && !strings.Contains(k, " ") {
			env[k] = v
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				// The suffix is the run's GOMAXPROCS; record it alongside the
				// cpu/goos header lines so snapshots compared across hosts are
				// self-describing.
				env["gomaxprocs"] = name[i+1:]
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			val, unit := f[i], f[i+1]
			switch unit {
			case "ns/op":
				res.NsPerOp, _ = strconv.ParseFloat(val, 64)
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
			case "max-rss-bytes":
				v, _ := strconv.ParseFloat(val, 64)
				res.MaxRSSBytes = int64(v)
			case "allocs/event":
				res.AllocsPerEvent, _ = strconv.ParseFloat(val, 64)
			}
		}
		if res.NsPerOp > 0 {
			prev, ok := results[name]
			if ok {
				// allocs/op collapses to the minimum too: a GC emptying a
				// sync.Pool mid-repeat inflates one repeat's count, not the
				// code's, and the jitter is always upward.
				res.MaxRSSBytes = minNonzero(res.MaxRSSBytes, prev.MaxRSSBytes)
				res.AllocsPerEvent = minNonzeroF(res.AllocsPerEvent, prev.AllocsPerEvent)
				res.AllocsPerOp = minNonzero(res.AllocsPerOp, prev.AllocsPerOp)
				if prev.NsPerOp < res.NsPerOp {
					mem := Result{MaxRSSBytes: res.MaxRSSBytes, AllocsPerEvent: res.AllocsPerEvent, AllocsPerOp: res.AllocsPerOp}
					res = prev
					res.MaxRSSBytes, res.AllocsPerEvent, res.AllocsPerOp = mem.MaxRSSBytes, mem.AllocsPerEvent, mem.AllocsPerOp
				}
			}
			results[name] = res
		}
	}
	return results, env, sc.Err()
}

// minNonzero folds repeat measurements where zero means "not reported".
func minNonzero(a, b int64) int64 {
	if a == 0 || (b != 0 && b < a) {
		return b
	}
	return a
}

func minNonzeroF(a, b float64) float64 {
	if a == 0 || (b != 0 && b < a) {
		return b
	}
	return a
}

// parseBaseline reads a baseline file: either raw `go test -bench` text or a
// JSON snapshot written by this tool, whose "current" results become the
// reference numbers.
func parseBaseline(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if trimmed := strings.TrimSpace(string(data)); strings.HasPrefix(trimmed, "{") {
		var snap Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("parsing %s as a snapshot: %w", path, err)
		}
		if len(snap.Current) == 0 {
			return nil, fmt.Errorf("snapshot %s has no current results", path)
		}
		return snap.Current, nil
	}
	res, _, err := parse(strings.NewReader(string(data)))
	return res, err
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline run to embed: raw `go test -bench` text or a benchjson snapshot")
	maxRegress := flag.Float64("maxregress", 0, "fail (exit 1) if any benchmark's ns/op regresses more than this percent vs the baseline (0 disables; the BENCH_TOLERANCE env var overrides the value unless the flag is set explicitly)")
	counterRegress := flag.Float64("counterregress", 5, "fail (exit 1) if a deterministic counter — allocs/op, allocs/event, max RSS — regresses more than this percent vs the baseline (0 disables; gates independently of -maxregress)")
	table := flag.Bool("table", false, "also render the comparison as an aligned ASCII table on stderr (stdout when -out is set)")
	flag.Parse()
	explicit := false
	flag.CommandLine.Visit(func(f *flag.Flag) {
		if f.Name == "maxregress" {
			explicit = true
		}
	})
	tol, err := timingTolerance(*maxRegress, explicit, os.Getenv("BENCH_TOLERANCE"))
	if err == nil {
		err = run(os.Stdin, *out, *baseline, tol, *counterRegress, *table)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
	}
	os.Exit(cliutil.ExitCode(err))
}

// timingTolerance resolves the effective timing threshold. Timing noise is
// host-specific, so the threshold alone is environment-overridable: CI on a
// noisy shared box exports BENCH_TOLERANCE once instead of patching every
// invocation. An explicitly passed -maxregress is a deliberate per-run
// choice and wins; the counters' threshold is never widened this way.
func timingTolerance(flagValue float64, explicit bool, env string) (float64, error) {
	if explicit || env == "" {
		return flagValue, nil
	}
	tol, err := strconv.ParseFloat(env, 64)
	if err != nil || tol < 0 {
		return 0, cliutil.Usagef("bad BENCH_TOLERANCE %q (want a percentage >= 0)", env)
	}
	return tol, nil
}

// comparisonTable renders a snapshot as a typed table, one row per current
// benchmark in name order, with baseline and speedup columns when a baseline
// is present.
func comparisonTable(snap Snapshot) *metrics.Table {
	names := make([]string, 0, len(snap.Current))
	for name := range snap.Current {
		names = append(names, name)
	}
	sort.Strings(names)
	t := metrics.NewTable("benchmark comparison (ns/op)",
		"benchmark", "baseline", "current", "speedup", "delta", "B/op", "allocs/op", "max RSS", "RSS delta")
	for _, name := range names {
		c := snap.Current[name]
		base, hasBase := snap.Baseline[name]
		baseCell := metrics.String("—")
		speedCell := metrics.String("—")
		deltaCell := metrics.String("—")
		rssCell := metrics.String("—")
		rssDeltaCell := metrics.String("—")
		if hasBase {
			baseCell = metrics.Float(base.NsPerOp, 0, "ns/op")
			if sp, ok := snap.Speedup[name]; ok {
				speedCell = metrics.Ratio(sp, 2)
			}
			if base.NsPerOp > 0 {
				// Signed relative change versus the baseline, as a typed
				// percent cell: negative is faster.
				deltaCell = metrics.Percent((c.NsPerOp - base.NsPerOp) / base.NsPerOp)
			}
		}
		if c.MaxRSSBytes > 0 {
			rssCell = metrics.Int(c.MaxRSSBytes, "B")
			if hasBase && base.MaxRSSBytes > 0 {
				rssDeltaCell = metrics.Percent(float64(c.MaxRSSBytes-base.MaxRSSBytes) / float64(base.MaxRSSBytes))
			}
		}
		t.AddCells(
			metrics.String(strings.TrimPrefix(name, "Benchmark")),
			baseCell,
			metrics.Float(c.NsPerOp, 0, "ns/op"),
			speedCell,
			deltaCell,
			metrics.Int(c.BytesPerOp, "B/op"),
			metrics.Int(c.AllocsPerOp, "allocs/op"),
			rssCell,
			rssDeltaCell,
		)
	}
	return t
}

// run converts stdin into a snapshot. A failed regression gate is a runtime
// failure (exit 1), matching CI conventions; only bad flag values exit 2.
// maxRegress gates wall clock; counterRegress gates the deterministic
// counters (allocs/op, allocs/event, max RSS), which are immune to host
// noise and therefore hold a much tighter line.
func run(stdin io.Reader, out, baseline string, maxRegress, counterRegress float64, table bool) error {
	if maxRegress < 0 {
		return cliutil.Usagef("negative -maxregress %v (want a percentage >= 0)", maxRegress)
	}
	if counterRegress < 0 {
		return cliutil.Usagef("negative -counterregress %v (want a percentage >= 0)", counterRegress)
	}
	current, env, err := parse(stdin)
	if err != nil {
		return err
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}
	// go test omits the -N name suffix when GOMAXPROCS is 1, so a
	// single-CPU host's output carries no parallelism marker at all. The
	// stdin pipeline runs benchjson on the same host as the benchmarks, so
	// its own value is theirs.
	if _, ok := env["gomaxprocs"]; !ok {
		env["gomaxprocs"] = strconv.Itoa(runtime.GOMAXPROCS(0))
	}
	snap := Snapshot{Env: env, Current: current}
	var regressions []string
	if baseline != "" {
		snap.Baseline, err = parseBaseline(baseline)
		if err != nil {
			return err
		}
		snap.Speedup = map[string]float64{}
		for name, b := range snap.Baseline {
			c, ok := current[name]
			if !ok || c.NsPerOp <= 0 {
				continue
			}
			// Two decimal places: benchmark noise makes more digits lie.
			snap.Speedup[name] = float64(int64(b.NsPerOp/c.NsPerOp*100)) / 100
			if maxRegress > 0 && c.NsPerOp > b.NsPerOp*(1+maxRegress/100) {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.0f ns/op vs baseline %.0f ns/op (+%.1f%%, limit %.0f%%)",
					name, c.NsPerOp, b.NsPerOp, (c.NsPerOp/b.NsPerOp-1)*100, maxRegress))
			}
			// The deterministic counters gate under their own, stricter
			// threshold: allocation counts and peak residency measure the
			// code, not the host, so they stay pinned even when a noisy
			// machine forces the timing tolerance wide open. Residency is
			// the streaming engines' whole point — an RSS regression is as
			// real as a slowdown.
			if counterRegress <= 0 {
				continue
			}
			limit := 1 + counterRegress/100
			// A +2 absolute grace on allocs/op keeps tiny benchmarks (a
			// handful of allocations, where one stray pool miss is >5%)
			// from flapping; percentage-meaningful counts still gate hard.
			if b.AllocsPerOp > 0 && float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*limit &&
				c.AllocsPerOp > b.AllocsPerOp+2 {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %d allocs/op vs baseline %d allocs/op (+%.1f%%, limit %.0f%%)",
					name, c.AllocsPerOp, b.AllocsPerOp,
					(float64(c.AllocsPerOp)/float64(b.AllocsPerOp)-1)*100, counterRegress))
			}
			if b.AllocsPerEvent > 0 && c.AllocsPerEvent > b.AllocsPerEvent*limit {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.2f allocs/event vs baseline %.2f allocs/event (+%.1f%%, limit %.0f%%)",
					name, c.AllocsPerEvent, b.AllocsPerEvent,
					(c.AllocsPerEvent/b.AllocsPerEvent-1)*100, counterRegress))
			}
			if b.MaxRSSBytes > 0 && c.MaxRSSBytes > 0 &&
				float64(c.MaxRSSBytes) > float64(b.MaxRSSBytes)*limit {
				regressions = append(regressions, fmt.Sprintf(
					"%s: max RSS %d B vs baseline %d B (+%.1f%%, limit %.0f%%)",
					name, c.MaxRSSBytes, b.MaxRSSBytes,
					(float64(c.MaxRSSBytes)/float64(b.MaxRSSBytes)-1)*100, counterRegress))
			}
		}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(current), out)
	}
	if table {
		// With -out, stdout is free for the table; otherwise it carries the
		// JSON and the table goes to stderr.
		tw := os.Stderr
		if out != "" {
			tw = os.Stdout
		}
		if err := comparisonTable(snap).WriteASCII(tw); err != nil {
			return err
		}
	}
	if len(regressions) > 0 {
		// The snapshot is still written above: the numbers that failed the
		// gate are exactly the ones worth inspecting.
		msg := fmt.Sprintf("%d benchmark(s) regressed beyond the limit:", len(regressions))
		for _, r := range regressions {
			msg += "\n  " + r
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
