package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"onocsim/internal/cliutil"
)

const benchOutput = `goos: linux
goarch: amd64
BenchmarkFast-8    100    1000 ns/op    64 B/op    2 allocs/op
BenchmarkSlow-8     10    9000 ns/op
`

// TestParseMinOfRepeats pins the -count=N collapse: repeated result lines
// for one benchmark keep the fastest run.
func TestParseMinOfRepeats(t *testing.T) {
	out := `BenchmarkHot-8  100  1500 ns/op
BenchmarkHot-8  100  1200 ns/op
BenchmarkHot-8  100  1900 ns/op
`
	res, _, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got := res["BenchmarkHot"].NsPerOp; got != 1200 {
		t.Fatalf("min collapse: got %v ns/op, want 1200", got)
	}
}

func TestRunWritesSnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader(benchOutput), out, "", 0, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Current) != 2 || snap.Current["BenchmarkFast"].NsPerOp != 1000 {
		t.Fatalf("snapshot: %+v", snap.Current)
	}
}

// TestRunExitCodes pins the shared convention: bad flag values exit 2,
// while runtime failures — including a tripped regression gate — exit 1.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := run(strings.NewReader(benchOutput), base, "", 0, false); err != nil {
		t.Fatal(err)
	}
	regressed := strings.ReplaceAll(benchOutput, "9000 ns/op", "90000 ns/op")
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"negative maxregress", run(strings.NewReader(benchOutput), "", "", -1, false), 2},
		{"empty stdin", run(strings.NewReader(""), "", "", 0, false), 1},
		{"missing baseline", run(strings.NewReader(benchOutput), "", filepath.Join(dir, "absent.json"), 0, false), 1},
		{"regression gate", run(strings.NewReader(regressed), filepath.Join(dir, "out.json"), base, 25, false), 1},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if got := cliutil.ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: exit code %d, want %d (err: %v)", tc.name, got, tc.want, tc.err)
		}
	}
}

// TestRunGatePasses checks the gate stays quiet within the allowance and
// that the chained-snapshot baseline path computes speedups.
func TestRunGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := run(strings.NewReader(benchOutput), base, "", 0, false); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.json")
	if err := run(strings.NewReader(benchOutput), out, base, 25, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Speedup["BenchmarkFast"] != 1 {
		t.Fatalf("speedup = %v", snap.Speedup)
	}
}

// TestComparisonTable checks the -table rendering: rows in name order, the
// baseline and speedup columns filled when present and dashed when not.
func TestComparisonTable(t *testing.T) {
	snap := Snapshot{
		Current: map[string]Result{
			"BenchmarkZeta": {NsPerOp: 2000, BytesPerOp: 64, AllocsPerOp: 2},
			"BenchmarkAlfa": {NsPerOp: 500},
		},
		Baseline: map[string]Result{"BenchmarkZeta": {NsPerOp: 3000}},
		Speedup:  map[string]float64{"BenchmarkZeta": 1.5},
	}
	var buf bytes.Buffer
	if err := comparisonTable(snap).WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Index(out, "Alfa") > strings.Index(out, "Zeta") {
		t.Fatalf("rows not sorted by name:\n%s", out)
	}
	// The delta column is a typed percent cell: 2000 vs 3000 baseline is a
	// signed −33.3% change, rendered by the percent kind, not preformatted.
	for _, want := range []string{"1.50x", "3000", "—", "-33.3%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestParseMemoryUnits pins the custom memory units: max-rss-bytes and
// allocs/event land in their own fields, and across -count repeats both
// collapse to their minima independently of which repeat was fastest.
func TestParseMemoryUnits(t *testing.T) {
	out := `BenchmarkStream-8  10  2000 ns/op  1048576 max-rss-bytes  3.50 allocs/event
BenchmarkStream-8  10  1500 ns/op  2097152 max-rss-bytes  3.75 allocs/event
`
	res, _, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	r := res["BenchmarkStream"]
	if r.NsPerOp != 1500 {
		t.Errorf("ns/op %v, want 1500 (fastest repeat)", r.NsPerOp)
	}
	if r.MaxRSSBytes != 1048576 {
		t.Errorf("max RSS %d, want 1048576 (min across repeats)", r.MaxRSSBytes)
	}
	if r.AllocsPerEvent != 3.50 {
		t.Errorf("allocs/event %v, want 3.5 (min across repeats)", r.AllocsPerEvent)
	}
}

// TestRSSGate checks that -maxregress also fails on a residency regression,
// even when timing improved.
func TestRSSGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	baseRun := "BenchmarkStream-8  10  2000 ns/op  1000000 max-rss-bytes\n"
	if err := run(strings.NewReader(baseRun), base, "", 0, false); err != nil {
		t.Fatal(err)
	}
	// Faster but 3x the residency: must trip the gate.
	bloated := "BenchmarkStream-8  10  1000 ns/op  3000000 max-rss-bytes\n"
	err := run(strings.NewReader(bloated), filepath.Join(dir, "out.json"), base, 25, false)
	if err == nil {
		t.Fatal("RSS regression passed the gate")
	}
	if !strings.Contains(err.Error(), "max RSS") {
		t.Fatalf("gate error does not name RSS: %v", err)
	}
	// Same residency within the limit passes.
	ok := "BenchmarkStream-8  10  1000 ns/op  1100000 max-rss-bytes\n"
	if err := run(strings.NewReader(ok), filepath.Join(dir, "out2.json"), base, 25, false); err != nil {
		t.Fatalf("in-limit run failed the gate: %v", err)
	}
}

// TestTableRendersMemoryColumns smoke-checks the memory columns render.
func TestTableRendersMemoryColumns(t *testing.T) {
	snap := Snapshot{
		Current:  map[string]Result{"BenchmarkStream": {NsPerOp: 1000, MaxRSSBytes: 4096}},
		Baseline: map[string]Result{"BenchmarkStream": {NsPerOp: 1200, MaxRSSBytes: 2048}},
		Speedup:  map[string]float64{"BenchmarkStream": 1.2},
	}
	var buf bytes.Buffer
	if err := comparisonTable(snap).WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "max RSS") || !strings.Contains(s, "4096") {
		t.Fatalf("table missing memory column:\n%s", s)
	}
}
