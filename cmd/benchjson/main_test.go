package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"onocsim/internal/cliutil"
)

const benchOutput = `goos: linux
goarch: amd64
BenchmarkFast-8    100    1000 ns/op    64 B/op    2 allocs/op
BenchmarkSlow-8     10    9000 ns/op
`

// TestParseMinOfRepeats pins the -count=N collapse: repeated result lines
// for one benchmark keep the fastest run.
func TestParseMinOfRepeats(t *testing.T) {
	out := `BenchmarkHot-8  100  1500 ns/op
BenchmarkHot-8  100  1200 ns/op
BenchmarkHot-8  100  1900 ns/op
`
	res, _, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got := res["BenchmarkHot"].NsPerOp; got != 1200 {
		t.Fatalf("min collapse: got %v ns/op, want 1200", got)
	}
}

func TestRunWritesSnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader(benchOutput), out, "", 0, 5, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Current) != 2 || snap.Current["BenchmarkFast"].NsPerOp != 1000 {
		t.Fatalf("snapshot: %+v", snap.Current)
	}
}

// TestRunExitCodes pins the shared convention: bad flag values exit 2,
// while runtime failures — including a tripped regression gate — exit 1.
func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := run(strings.NewReader(benchOutput), base, "", 0, 5, false); err != nil {
		t.Fatal(err)
	}
	regressed := strings.ReplaceAll(benchOutput, "9000 ns/op", "90000 ns/op")
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"negative maxregress", run(strings.NewReader(benchOutput), "", "", -1, 5, false), 2},
		{"empty stdin", run(strings.NewReader(""), "", "", 0, 5, false), 1},
		{"missing baseline", run(strings.NewReader(benchOutput), "", filepath.Join(dir, "absent.json"), 0, 5, false), 1},
		{"regression gate", run(strings.NewReader(regressed), filepath.Join(dir, "out.json"), base, 25, 5, false), 1},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if got := cliutil.ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: exit code %d, want %d (err: %v)", tc.name, got, tc.want, tc.err)
		}
	}
}

// TestRunGatePasses checks the gate stays quiet within the allowance and
// that the chained-snapshot baseline path computes speedups.
func TestRunGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := run(strings.NewReader(benchOutput), base, "", 0, 5, false); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.json")
	if err := run(strings.NewReader(benchOutput), out, base, 25, 5, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Speedup["BenchmarkFast"] != 1 {
		t.Fatalf("speedup = %v", snap.Speedup)
	}
}

// TestComparisonTable checks the -table rendering: rows in name order, the
// baseline and speedup columns filled when present and dashed when not.
func TestComparisonTable(t *testing.T) {
	snap := Snapshot{
		Current: map[string]Result{
			"BenchmarkZeta": {NsPerOp: 2000, BytesPerOp: 64, AllocsPerOp: 2},
			"BenchmarkAlfa": {NsPerOp: 500},
		},
		Baseline: map[string]Result{"BenchmarkZeta": {NsPerOp: 3000}},
		Speedup:  map[string]float64{"BenchmarkZeta": 1.5},
	}
	var buf bytes.Buffer
	if err := comparisonTable(snap).WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Index(out, "Alfa") > strings.Index(out, "Zeta") {
		t.Fatalf("rows not sorted by name:\n%s", out)
	}
	// The delta column is a typed percent cell: 2000 vs 3000 baseline is a
	// signed −33.3% change, rendered by the percent kind, not preformatted.
	for _, want := range []string{"1.50x", "3000", "—", "-33.3%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestParseMemoryUnits pins the custom memory units: max-rss-bytes and
// allocs/event land in their own fields, and across -count repeats both
// collapse to their minima independently of which repeat was fastest.
func TestParseMemoryUnits(t *testing.T) {
	out := `BenchmarkStream-8  10  2000 ns/op  1048576 max-rss-bytes  3.50 allocs/event
BenchmarkStream-8  10  1500 ns/op  2097152 max-rss-bytes  3.75 allocs/event
`
	res, _, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	r := res["BenchmarkStream"]
	if r.NsPerOp != 1500 {
		t.Errorf("ns/op %v, want 1500 (fastest repeat)", r.NsPerOp)
	}
	if r.MaxRSSBytes != 1048576 {
		t.Errorf("max RSS %d, want 1048576 (min across repeats)", r.MaxRSSBytes)
	}
	if r.AllocsPerEvent != 3.50 {
		t.Errorf("allocs/event %v, want 3.5 (min across repeats)", r.AllocsPerEvent)
	}
}

// TestRSSGate checks that -maxregress also fails on a residency regression,
// even when timing improved.
func TestRSSGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	baseRun := "BenchmarkStream-8  10  2000 ns/op  1000000 max-rss-bytes\n"
	if err := run(strings.NewReader(baseRun), base, "", 0, 5, false); err != nil {
		t.Fatal(err)
	}
	// Faster but 3x the residency: must trip the gate.
	bloated := "BenchmarkStream-8  10  1000 ns/op  3000000 max-rss-bytes\n"
	err := run(strings.NewReader(bloated), filepath.Join(dir, "out.json"), base, 25, 5, false)
	if err == nil {
		t.Fatal("RSS regression passed the gate")
	}
	if !strings.Contains(err.Error(), "max RSS") {
		t.Fatalf("gate error does not name RSS: %v", err)
	}
	// Same residency within the limit passes.
	ok := "BenchmarkStream-8  10  1000 ns/op  1100000 max-rss-bytes\n"
	if err := run(strings.NewReader(ok), filepath.Join(dir, "out2.json"), base, 25, 25, false); err != nil {
		t.Fatalf("in-limit run failed the gate: %v", err)
	}
}

// TestTableRendersMemoryColumns smoke-checks the memory columns render.
func TestTableRendersMemoryColumns(t *testing.T) {
	snap := Snapshot{
		Current:  map[string]Result{"BenchmarkStream": {NsPerOp: 1000, MaxRSSBytes: 4096}},
		Baseline: map[string]Result{"BenchmarkStream": {NsPerOp: 1200, MaxRSSBytes: 2048}},
		Speedup:  map[string]float64{"BenchmarkStream": 1.2},
	}
	var buf bytes.Buffer
	if err := comparisonTable(snap).WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "max RSS") || !strings.Contains(s, "4096") {
		t.Fatalf("table missing memory column:\n%s", s)
	}
}

// TestCounterGate pins the counter-first gating: allocation regressions trip
// the strict -counterregress threshold even when timing is inside the loose
// timing tolerance (or improved outright), and the +2 absolute grace keeps
// one stray pool miss on a tiny benchmark from flapping.
func TestCounterGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	baseRun := "BenchmarkHot-8  100  1000 ns/op  64 B/op  100 allocs/op\n"
	if err := run(strings.NewReader(baseRun), base, "", 0, 5, false); err != nil {
		t.Fatal(err)
	}
	// Faster, but 20% more allocations: the counter gate must fire.
	bloated := "BenchmarkHot-8  100  800 ns/op  64 B/op  120 allocs/op\n"
	err := run(strings.NewReader(bloated), filepath.Join(dir, "out.json"), base, 50, 5, false)
	if err == nil {
		t.Fatal("allocation regression passed the gate")
	}
	if !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("gate error does not name allocs/op: %v", err)
	}
	// Ten times slower but allocation-identical: with timing gating disabled
	// the counters alone decide, and they pass.
	slow := "BenchmarkHot-8  100  10000 ns/op  64 B/op  100 allocs/op\n"
	if err := run(strings.NewReader(slow), filepath.Join(dir, "out2.json"), base, 0, 5, false); err != nil {
		t.Fatalf("counter-clean slow run failed the gate: %v", err)
	}
	// A tiny benchmark gaining a single allocation is >5% but inside the
	// absolute grace.
	tinyBase := filepath.Join(dir, "tiny.json")
	if err := run(strings.NewReader("BenchmarkTiny-8  100  1000 ns/op  8 B/op  2 allocs/op\n"), tinyBase, "", 0, 5, false); err != nil {
		t.Fatal(err)
	}
	oneMore := "BenchmarkTiny-8  100  1000 ns/op  8 B/op  3 allocs/op\n"
	if err := run(strings.NewReader(oneMore), filepath.Join(dir, "out3.json"), tinyBase, 0, 5, false); err != nil {
		t.Fatalf("one-alloc jitter tripped the gate: %v", err)
	}
}

// TestAllocsPerEventGate checks the per-event allocation counter gates under
// the strict threshold too.
func TestAllocsPerEventGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := run(strings.NewReader("BenchmarkStream-8  10  2000 ns/op  3.00 allocs/event\n"), base, "", 0, 5, false); err != nil {
		t.Fatal(err)
	}
	err := run(strings.NewReader("BenchmarkStream-8  10  2000 ns/op  4.00 allocs/event\n"), filepath.Join(dir, "out.json"), base, 0, 5, false)
	if err == nil || !strings.Contains(err.Error(), "allocs/event") {
		t.Fatalf("allocs/event regression not gated: %v", err)
	}
}

// TestParseMinAllocsAcrossRepeats pins that allocs/op collapses to the
// minimum across -count repeats independently of which repeat was fastest.
func TestParseMinAllocsAcrossRepeats(t *testing.T) {
	out := `BenchmarkHot-8  100  1500 ns/op  64 B/op  110 allocs/op
BenchmarkHot-8  100  1200 ns/op  64 B/op  118 allocs/op
`
	res, _, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	r := res["BenchmarkHot"]
	if r.NsPerOp != 1200 || r.AllocsPerOp != 110 {
		t.Fatalf("got %v ns/op, %d allocs/op; want fastest time 1200 with min allocs 110", r.NsPerOp, r.AllocsPerOp)
	}
}

// TestTimingTolerance pins the BENCH_TOLERANCE resolution order: explicit
// flag > environment > flag default, with malformed values as usage errors.
func TestTimingTolerance(t *testing.T) {
	if got, err := timingTolerance(25, false, ""); err != nil || got != 25 {
		t.Fatalf("default: %v, %v", got, err)
	}
	if got, err := timingTolerance(25, false, "40"); err != nil || got != 40 {
		t.Fatalf("env override: %v, %v", got, err)
	}
	if got, err := timingTolerance(25, true, "40"); err != nil || got != 25 {
		t.Fatalf("explicit flag must win: %v, %v", got, err)
	}
	for _, bad := range []string{"wide", "-3"} {
		if _, err := timingTolerance(25, false, bad); err == nil {
			t.Errorf("BENCH_TOLERANCE=%q accepted", bad)
		} else if cliutil.ExitCode(err) != 2 {
			t.Errorf("BENCH_TOLERANCE=%q: exit %d, want 2", bad, cliutil.ExitCode(err))
		}
	}
}

// TestParseRecordsGOMAXPROCS checks the env map carries the run's
// GOMAXPROCS, taken from the benchmark-name suffix, so cross-host snapshot
// comparisons are self-describing.
func TestParseRecordsGOMAXPROCS(t *testing.T) {
	_, env, err := parse(strings.NewReader("cpu: Example CPU @ 2.00GHz\nBenchmarkHot-8  100  1000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if env["gomaxprocs"] != "8" {
		t.Fatalf("gomaxprocs = %q, want 8", env["gomaxprocs"])
	}
	if env["cpu"] != "Example CPU @ 2.00GHz" {
		t.Fatalf("cpu = %q", env["cpu"])
	}
}

// TestSnapshotRecordsGOMAXPROCSWithoutSuffix pins the single-CPU fallback:
// go test omits the -N benchmark-name suffix when GOMAXPROCS is 1, so run
// fills the field from its own process, which shares the pipeline's host.
func TestSnapshotRecordsGOMAXPROCSWithoutSuffix(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(strings.NewReader("BenchmarkBare  100  1000 ns/op\n"), out, "", 0, 5, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Env["gomaxprocs"] == "" {
		t.Fatal("snapshot env missing gomaxprocs")
	}
}
