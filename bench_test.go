// Benchmarks regenerating the reconstructed paper evaluation. Each
// BenchmarkR* corresponds to one table/figure in DESIGN.md §3 and
// EXPERIMENTS.md; running `go test -bench=. -benchmem` reproduces the whole
// evaluation at CI scale (experiments use Quick mode inside benchmarks to
// keep per-iteration cost bounded — run cmd/expreport for full-scale runs).
//
// Microbenchmarks at the bottom characterize the simulator itself: fabric
// cycle cost, trace codec throughput, and the correction loop.
package onocsim_test

import (
	"io"
	"sync"
	"testing"

	"onocsim"
	"onocsim/internal/config"
	"onocsim/internal/core"
	"onocsim/internal/experiments"
	"onocsim/internal/noc"
	"onocsim/internal/trace"
	"onocsim/internal/workload"
)

var benchOpts = experiments.Options{Seed: 42, Cores: 16, Quick: true}

// benchTable runs one experiment per iteration, failing the benchmark on
// error and reporting the row count so regressions in coverage are visible.
func benchTable(b *testing.B, name string) {
	b.Helper()
	rows := 0
	for i := 0; i < b.N; i++ {
		t, err := experiments.ByName(name, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		rows = t.NumRows()
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkR1Accuracy regenerates the headline accuracy table (R1).
func BenchmarkR1Accuracy(b *testing.B) { benchTable(b, "r1") }

// BenchmarkR2SimTime regenerates the simulation-cost table (R2).
func BenchmarkR2SimTime(b *testing.B) { benchTable(b, "r2") }

// BenchmarkR3Convergence regenerates the convergence figure series (R3).
func BenchmarkR3Convergence(b *testing.B) { benchTable(b, "r3") }

// BenchmarkR4LoadLatency regenerates the load–latency figure series (R4).
func BenchmarkR4LoadLatency(b *testing.B) { benchTable(b, "r4") }

// BenchmarkR5CaseStudy regenerates the application case-study table (R5).
func BenchmarkR5CaseStudy(b *testing.B) { benchTable(b, "r5") }

// BenchmarkR6Power regenerates the power-breakdown table (R6).
func BenchmarkR6Power(b *testing.B) { benchTable(b, "r6") }

// BenchmarkR7Scaling regenerates the scalability figure series (R7).
func BenchmarkR7Scaling(b *testing.B) { benchTable(b, "r7") }

// BenchmarkR8Ablation regenerates the dependency-ablation table (R8).
func BenchmarkR8Ablation(b *testing.B) { benchTable(b, "r8") }

// BenchmarkR9Architectures regenerates the MWSR-vs-SWMR extension (R9).
func BenchmarkR9Architectures(b *testing.B) { benchTable(b, "r9") }

// BenchmarkR10CaptureFabric regenerates the capture-sensitivity extension (R10).
func BenchmarkR10CaptureFabric(b *testing.B) { benchTable(b, "r10") }

// BenchmarkR11Damping regenerates the damping-sweep extension (R11).
func BenchmarkR11Damping(b *testing.B) { benchTable(b, "r11") }

// BenchmarkR12Hybrid regenerates the hybrid-NoC extension (R12).
func BenchmarkR12Hybrid(b *testing.B) { benchTable(b, "r12") }

// --- Simulator microbenchmarks ---

// benchFabricTick measures the cost of simulating one cycle of a fabric
// under moderate uniform load.
func benchFabricTick(b *testing.B, kind onocsim.NetworkKind) {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 64
	net, err := onocsim.BuildNetwork(cfg, kind)
	if err != nil {
		b.Fatal(err)
	}
	// Preload with traffic and keep topping it up.
	var id uint64
	inject := func() {
		for src := 0; src < 64; src += 4 {
			id++
			net.Inject(&noc.Message{ID: id, Src: src, Dst: (src + 13) % 64, Bytes: 64, Class: noc.ClassRequest})
		}
	}
	inject()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%16 == 0 {
			inject()
		}
		net.Tick()
	}
}

func BenchmarkTickElectrical(b *testing.B) { benchFabricTick(b, onocsim.Electrical) }
func BenchmarkTickOptical(b *testing.B)    { benchFabricTick(b, onocsim.Optical) }
func BenchmarkTickIdeal(b *testing.B)      { benchFabricTick(b, onocsim.IdealNet) }

// BenchmarkExecutionDriven measures a full execution-driven kernel run.
func BenchmarkExecutionDriven(b *testing.B) {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 2
	for i := 0; i < b.N; i++ {
		if _, err := onocsim.RunExecutionDriven(cfg, onocsim.Optical); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelfCorrection measures the full correction loop on a captured
// trace (capture excluded).
func BenchmarkSelfCorrection(b *testing.B) {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 2
	tr, _, err := onocsim.CaptureTrace(cfg, onocsim.IdealNet)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := onocsim.RunSelfCorrection(cfg, tr, onocsim.Optical); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.NumEvents()), "events")
}

// BenchmarkSchedulePass measures the pure dependency-graph schedule pass,
// the cheap half of each correction round.
func BenchmarkSchedulePass(b *testing.B) {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	tr, _, err := onocsim.CaptureTrace(cfg, onocsim.IdealNet)
	if err != nil {
		b.Fatal(err)
	}
	lat := make([]onocsim.Tick, tr.NumEvents())
	for i := range lat {
		lat[i] = 20
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Schedule(tr, lat, core.ScheduleOptions{})
	}
	b.ReportMetric(float64(tr.NumEvents()), "events")
}

// BenchmarkTraceCodec measures binary encode+decode throughput.
func BenchmarkTraceCodec(b *testing.B) {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	tr, _, err := onocsim.CaptureTrace(cfg, onocsim.IdealNet)
	if err != nil {
		b.Fatal(err)
	}
	var buf writableBuffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.data = buf.data[:0]
		if err := trace.WriteBinary(&buf, tr); err != nil {
			b.Fatal(err)
		}
		if _, err := trace.ReadBinary(&readableBuffer{data: buf.data}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf.data)))
}

type writableBuffer struct{ data []byte }

func (w *writableBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

type readableBuffer struct {
	data []byte
	pos  int
}

func (r *readableBuffer) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

// BenchmarkSyntheticUniform measures the synthetic traffic harness on both
// fabrics at a moderate load (part of regenerating R4 quickly).
func BenchmarkSyntheticUniform(b *testing.B) {
	for _, kind := range []onocsim.NetworkKind{onocsim.Electrical, onocsim.Optical} {
		b.Run(string(kind), func(b *testing.B) {
			cfg := onocsim.DefaultConfig()
			cfg.System.Cores = 16
			cfg.Workload = config.Workload{
				Kind: config.WorkloadSynthetic, Pattern: "uniform",
				InjectionRate: 0.1, PacketBytes: 64, Packets: 50,
				Kernel: "stencil", Scale: 1, Iterations: 1, ComputeScale: 1,
			}
			for i := 0; i < b.N; i++ {
				net, err := onocsim.BuildNetwork(cfg, kind)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := workload.RunSynthetic(net, cfg.Workload, cfg.Mesh.FlitBytes, cfg.Seed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Sharded replay benchmarks ---

// shardBench holds the one captured trace shared by the sharded-replay
// benchmarks; capture cost is paid once and excluded from every timing loop.
var shardBench struct {
	once sync.Once
	cfg  onocsim.Config
	tr   *trace.Trace
	err  error
}

func shardBenchTrace(b *testing.B) (onocsim.Config, *trace.Trace) {
	b.Helper()
	s := &shardBench
	s.once.Do(func() {
		cfg := onocsim.DefaultConfig()
		cfg.System.Cores = 64
		cfg.Workload.Scale = 8
		cfg.Workload.Iterations = 2
		s.cfg = cfg
		s.tr, _, s.err = onocsim.CaptureTrace(cfg, onocsim.IdealNet)
	})
	if s.err != nil {
		b.Fatal(s.err)
	}
	return s.cfg, s.tr
}

// benchReplayShards measures a naive trace replay on the optical crossbar
// split across K shards of the conservative-lookahead engine. Results are
// byte-identical across K (the shard-invariance tests assert it); only
// wall-clock moves, and only on hosts with spare cores. The replayer is
// built outside the loop so fabric reuse matches the serial engine's.
func benchReplayShards(b *testing.B, shards int) {
	cfg, tr := shardBenchTrace(b)
	factory, err := onocsim.NetworkFactory(cfg, onocsim.Optical)
	if err != nil {
		b.Fatal(err)
	}
	inject := make([]onocsim.Tick, len(tr.Events))
	for i := range tr.Events {
		inject[i] = tr.Events[i].RefInject
	}
	r := core.NewShardedReplayer(factory, shards)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Replay(tr, inject); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.NumEvents()), "events")
}

func BenchmarkReplayShards1(b *testing.B) { benchReplayShards(b, 1) }
func BenchmarkReplayShards2(b *testing.B) { benchReplayShards(b, 2) }
func BenchmarkReplayShards4(b *testing.B) { benchReplayShards(b, 4) }
func BenchmarkReplayShards8(b *testing.B) { benchReplayShards(b, 8) }

// BenchmarkSelfCorrectionShards8 measures the full correction loop with
// every replay round split across 8 shards (compare BenchmarkSelfCorrection
// for the serial loop on a smaller chip).
func BenchmarkSelfCorrectionShards8(b *testing.B) {
	cfg, tr := shardBenchTrace(b)
	factory, err := onocsim.NetworkFactory(cfg, onocsim.Optical)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SelfCorrectSharded(factory, tr, cfg.SCTM, 8); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.NumEvents()), "events")
}

// BenchmarkR13Photonics regenerates the loss-budget sensitivity table (R13).
func BenchmarkR13Photonics(b *testing.B) { benchTable(b, "r13") }

// BenchmarkR14WhatIf regenerates the core-speed what-if table (R14).
func BenchmarkR14WhatIf(b *testing.B) { benchTable(b, "r14") }

// BenchmarkR15League regenerates the fabric league table (R15).
func BenchmarkR15League(b *testing.B) { benchTable(b, "r15") }

// BenchmarkR16Seeds regenerates the seed-sensitivity table (R16).
func BenchmarkR16Seeds(b *testing.B) { benchTable(b, "r16") }

// BenchmarkR17Memory regenerates the memory-intensity table (R17).
func BenchmarkR17Memory(b *testing.B) { benchTable(b, "r17") }

// BenchmarkR18Faults regenerates the fault-injection degradation table (R18).
func BenchmarkR18Faults(b *testing.B) { benchTable(b, "r18") }

// BenchmarkR19Seeding regenerates the analytic fast-path table (R19).
func BenchmarkR19Seeding(b *testing.B) { benchTable(b, "r19") }

// seedBenchCases are the two contended fabrics the analytic seed is built
// for, each with a workload where contention actually shapes the schedule:
// the mesh runs the fft kernel, the crossbar a dependency-chained hotspot
// (every source bursting at node 0) under damping. The rounds metric is the
// replay-round count the seeding strategy pays; comparing it between the
// ZeroLoad and Analytic benchmarks shows the fast path's savings per fabric.
func seedBenchCases(b *testing.B) []struct {
	name string
	kind onocsim.NetworkKind
	cfg  onocsim.Config
	tr   *onocsim.Trace
} {
	b.Helper()
	mesh := onocsim.DefaultConfig()
	mesh.System.Cores = 16
	mesh.Workload.Kernel = "fft"
	mesh.Workload.Scale = 4
	mesh.Workload.Iterations = 2
	meshTr, _, err := onocsim.CaptureTrace(mesh, onocsim.IdealNet)
	if err != nil {
		b.Fatal(err)
	}

	xbar := onocsim.DefaultConfig()
	xbar.System.Cores = 16
	xbar.SCTM.Damping = 0.5
	xbarTr := hotspotBenchTrace(16, 8)

	return []struct {
		name string
		kind onocsim.NetworkKind
		cfg  onocsim.Config
		tr   *onocsim.Trace
	}{
		{"mesh", onocsim.Electrical, mesh, meshTr},
		{"crossbar", onocsim.Optical, xbar, xbarTr},
	}
}

// hotspotBenchTrace builds the crossbar seed benchmark's workload: per-source
// causal chains all targeting node 0, so destination-channel queueing feeds
// straight back into the schedule.
func hotspotBenchTrace(nodes, burst int) *onocsim.Trace {
	tr := &onocsim.Trace{Nodes: nodes, Workload: "hotspot"}
	id := trace.EventID(1)
	var tm onocsim.Tick
	prev := make([]trace.EventID, nodes)
	for i := 0; i < burst; i++ {
		for src := 1; src < nodes; src++ {
			var deps []trace.Dep
			if prev[src] != 0 {
				deps = []trace.Dep{{On: prev[src], Class: trace.DepCausal}}
			}
			tr.Events = append(tr.Events, trace.Event{
				ID: id, Src: src, Dst: 0, Bytes: 256, Gap: 2, Deps: deps,
				RefInject: tm, RefArrive: tm + 60,
			})
			prev[src] = id
			id++
			tm++
		}
	}
	tr.RefMakespan = tm + 200
	return tr
}

// benchSelfCorrectSeed measures the correction loop under one seeding mode
// across the contended-fabric cases, reporting replay rounds per fabric.
func benchSelfCorrectSeed(b *testing.B, mode string) {
	for _, tc := range seedBenchCases(b) {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := tc.cfg
			cfg.SCTM.Seed = mode
			var rounds int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, _, err := onocsim.RunSelfCorrection(cfg, tc.tr, tc.kind)
				if err != nil {
					b.Fatal(err)
				}
				rounds = len(res.Iterations)
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkSelfCorrectSeedZeroLoad is the baseline arm: legacy zero-load
// round-0 seeding on both contended fabrics.
func BenchmarkSelfCorrectSeedZeroLoad(b *testing.B) { benchSelfCorrectSeed(b, "zeroload") }

// BenchmarkSelfCorrectSeedAnalytic is the fast-path arm: closed-form
// contention-aware round-0 seeding. Compare its rounds metric (and ns/op)
// with the ZeroLoad benchmark to see the replay-round savings.
func BenchmarkSelfCorrectSeedAnalytic(b *testing.B) { benchSelfCorrectSeed(b, "analytic") }

// benchSelfCorrectIncr runs the correction loop in both execution modes on
// one workload: "full" replays every event every round, "incremental" resumes
// each round from the deepest frozen-prefix checkpoint. Results are
// byte-identical (the equivalence tests assert it); the replayed-events
// metric is the deterministic work counter the incremental mode shrinks, and
// ns/op shows how much of it wall clock recovers.
func benchSelfCorrectIncr(b *testing.B, kind onocsim.NetworkKind, cfg onocsim.Config, tr *onocsim.Trace) {
	for _, mode := range []struct {
		name string
		incr bool
	}{{"full", false}, {"incremental", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			c := cfg
			c.SCTM.Incremental = mode.incr
			var replayed int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, _, err := onocsim.RunSelfCorrection(c, tr, kind)
				if err != nil {
					b.Fatal(err)
				}
				replayed = res.ReplayedEvents
			}
			b.ReportMetric(float64(replayed), "replayed-events")
		})
	}
}

// incrBenchTrace builds the incremental benchmark's workload, the shape the
// frozen-prefix optimization targets: a long dependency-free head whose
// schedule never moves between rounds (dep-free events inject at their fixed
// gap), followed by parallel dependency chains all hammering one node, whose
// queueing delays shift the scheduled suffix round over round.
func incrBenchTrace(nodes int) *onocsim.Trace {
	tr := &onocsim.Trace{Nodes: nodes, Workload: "incr-bench", RefMakespan: 1_000_000}
	const head, tail, chains = 600, 200, 10
	for i := 0; i < head; i++ {
		at := onocsim.Tick(i * 8)
		tr.Events = append(tr.Events, trace.Event{
			ID: trace.EventID(i + 1), Src: i % nodes, Dst: (i*5 + 1) % nodes,
			Bytes: 64 + (i%4)*32, Class: noc.Class(i % 3),
			Kind: trace.KindData, Gap: at,
			RefInject: at, RefArrive: at + 40,
		})
	}
	for i := 0; i < tail; i++ {
		id := head + i + 1
		dep := trace.EventID(head)
		if i >= chains {
			dep = trace.EventID(id - chains)
		}
		at := onocsim.Tick(head*8 + i*4)
		tr.Events = append(tr.Events, trace.Event{
			ID: trace.EventID(id), Src: i % nodes, Dst: 3,
			Bytes: 256, Class: noc.Class(i % 3),
			Kind: trace.KindData, Gap: 4,
			Deps:      []trace.Dep{{On: dep, Class: trace.DepCausal}},
			RefInject: at, RefArrive: at + 80,
		})
	}
	return tr
}

// BenchmarkSelfCorrectIncrementalCrossbar compares full vs incremental
// correction on the optical crossbar.
func BenchmarkSelfCorrectIncrementalCrossbar(b *testing.B) {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	benchSelfCorrectIncr(b, onocsim.Optical, cfg, incrBenchTrace(16))
}

// BenchmarkSelfCorrectIncrementalMesh is the same comparison on the
// electrical mesh, the expensive flit-level fabric where skipping the frozen
// prefix buys the most replay cycles.
func BenchmarkSelfCorrectIncrementalMesh(b *testing.B) {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	benchSelfCorrectIncr(b, onocsim.Electrical, cfg, incrBenchTrace(16))
}

// benchEstimateVsCorrect pins the screening-speedup comparison: both arms
// run the identical (config, trace, fabric) triple, so the ns/op ratio
// between the estimate and the full correction loop is the speedup a sweep
// gains by simulating only the survivors.
func benchEstimateVsCorrect(b *testing.B, kind onocsim.NetworkKind, estimate bool) {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 2
	tr, _, err := onocsim.CaptureTrace(cfg, onocsim.IdealNet)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if estimate {
			_, _, err = onocsim.EstimateAnalytic(cfg, tr, kind)
		} else {
			_, _, err = onocsim.RunSelfCorrection(cfg, tr, kind)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.NumEvents()), "events")
}

// BenchmarkAnalyticEstimate prices the closed-form estimator itself on the
// same config/trace as BenchmarkSelfCorrection — the ns/op ratio between the
// two is the screening speedup (the estimate never ticks a fabric). The
// optical crossbar replays in closed form itself, so the ratio there is a
// modest ~20×; the mesh pair below is where screening pays.
func BenchmarkAnalyticEstimate(b *testing.B) {
	benchEstimateVsCorrect(b, onocsim.Optical, true)
}

// BenchmarkSelfCorrectionMesh / BenchmarkAnalyticEstimateMesh are the same
// comparison on the electrical mesh, whose flit-level wormhole replay is the
// expensive fabric screening exists for: the estimate is several hundred
// times faster on this config, and the gap widens with core count.
func BenchmarkSelfCorrectionMesh(b *testing.B) {
	benchEstimateVsCorrect(b, onocsim.Electrical, false)
}

func BenchmarkAnalyticEstimateMesh(b *testing.B) {
	benchEstimateVsCorrect(b, onocsim.Electrical, true)
}
