module onocsim

go 1.22
