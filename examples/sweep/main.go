// Sweep characterizes the two fabrics open-loop (experiment R4's figure):
// synthetic traffic at increasing injection rates, printing the load–latency
// curve for each fabric as a table plus an ASCII latency histogram at the
// last uncongested point.
//
// Run with:
//
//	go run ./examples/sweep [-pattern uniform] [-cores 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"onocsim"
	"onocsim/internal/config"
	"onocsim/internal/metrics"
	"onocsim/internal/workload"
)

func main() {
	pattern := flag.String("pattern", "uniform", "traffic pattern: uniform|transpose|hotspot|bitcomplement|neighbor|tornado")
	cores := flag.Int("cores", 64, "node count (perfect square)")
	flag.Parse()

	rates := []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50}
	t := metrics.NewTable(
		fmt.Sprintf("load–latency sweep, %s traffic, %d nodes", *pattern, *cores),
		"offered", "fabric", "mean lat", "p99 lat", "throughput", "saturated")

	for _, rate := range rates {
		for _, kind := range []onocsim.NetworkKind{onocsim.Electrical, onocsim.Optical} {
			cfg := onocsim.DefaultConfig()
			cfg.System.Cores = *cores
			cfg.Workload = config.Workload{
				Kind:          config.WorkloadSynthetic,
				Pattern:       *pattern,
				InjectionRate: rate,
				PacketBytes:   64,
				Packets:       200,
				Kernel:        "stencil",
				Scale:         1,
				Iterations:    1,
				ComputeScale:  1,
			}
			net, err := onocsim.BuildNetwork(cfg, kind)
			if err != nil {
				log.Fatal(err)
			}
			res, err := workload.RunSynthetic(net, cfg.Workload, cfg.Mesh.FlitBytes, cfg.Seed)
			if err != nil {
				log.Fatal(err)
			}
			t.AddRow(
				fmt.Sprintf("%.2f", rate),
				string(kind),
				fmt.Sprintf("%.1f", res.MeanLatency),
				fmt.Sprintf("%.0f", res.P99Latency),
				fmt.Sprintf("%.3f", res.Throughput),
				fmt.Sprintf("%v", res.Saturated),
			)
		}
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Latency distribution on the optical fabric at moderate load.
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = *cores
	cfg.Workload = config.Workload{
		Kind: config.WorkloadSynthetic, Pattern: *pattern,
		InjectionRate: 0.10, PacketBytes: 64, Packets: 200,
		Kernel: "stencil", Scale: 1, Iterations: 1, ComputeScale: 1,
	}
	net, err := onocsim.BuildNetwork(cfg, onocsim.Optical)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := workload.RunSynthetic(net, cfg.Workload, cfg.Mesh.FlitBytes, cfg.Seed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptical latency distribution at 0.10 flits/node/cycle:\n%s",
		net.Stats().Latency.Render(50))
}
