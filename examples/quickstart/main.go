// Quickstart: the smallest end-to-end use of the Self-Correction Trace
// Model. It captures a dependency-annotated trace of a 16-core stencil
// kernel on the cheap reference fabric, replays it on the optical crossbar
// with and without self-correction, and compares both against
// execution-driven ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"onocsim"
)

func main() {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Kernel = "stencil"
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 3

	// 1. Capture once on the cheap reference fabric.
	tr, _, err := onocsim.CaptureTrace(cfg, onocsim.IdealNet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured trace: %d events, reference makespan %d cycles\n",
		tr.NumEvents(), tr.RefMakespan)

	// 2. Ground truth: execution-driven simulation of the optical fabric.
	truth, err := onocsim.RunExecutionDriven(cfg, onocsim.Optical)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution-driven ONOC makespan: %d cycles (truth)\n", truth.Makespan)

	// 3. Conventional trace-driven replay: fast but wrong.
	naive, _, err := onocsim.RunNaiveReplay(cfg, tr, onocsim.Optical)
	if err != nil {
		log.Fatal(err)
	}
	na := onocsim.Compare(naive, truth)
	fmt.Printf("naive replay estimate:          %d cycles (%.1f%% error)\n",
		naive.Makespan, na.MakespanErr*100)

	// 4. The Self-Correction Trace Model.
	sctm, _, err := onocsim.RunSelfCorrection(cfg, tr, onocsim.Optical)
	if err != nil {
		log.Fatal(err)
	}
	sa := onocsim.Compare(sctm.Final, truth)
	fmt.Printf("self-corrected estimate:        %d cycles (%.1f%% error, %d rounds, converged=%v)\n",
		sctm.Final.Makespan, sa.MakespanErr*100, len(sctm.Iterations), sctm.Converged)
}
