// Tracefile demonstrates offline trace workflows: capture a trace, save it
// in the binary SCTM format, reload it, verify it round-trips bit-exactly,
// and run the self-correction model on the reloaded trace — the
// capture-once / evaluate-many-designs loop the trace methodology exists
// for. It finishes by sweeping an optical design parameter (wavelengths per
// channel) against the single stored trace.
//
// Run with:
//
//	go run ./examples/tracefile [-out /tmp/kernel.sctm]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"onocsim"
	"onocsim/internal/metrics"
)

func main() {
	out := flag.String("out", os.TempDir()+"/onocsim-example.sctm", "trace file path")
	flag.Parse()

	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Kernel = "fft"
	cfg.Workload.Scale = 4

	// Capture and persist.
	tr, _, err := onocsim.CaptureTrace(cfg, onocsim.IdealNet)
	if err != nil {
		log.Fatal(err)
	}
	if err := onocsim.SaveTrace(*out, tr); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d events, wrote %s (%d bytes, %.1f bytes/event)\n",
		tr.NumEvents(), *out, info.Size(), float64(info.Size())/float64(tr.NumEvents()))

	// Reload and verify.
	tr2, err := onocsim.LoadTrace(*out)
	if err != nil {
		log.Fatal(err)
	}
	if tr2.NumEvents() != tr.NumEvents() || tr2.RefMakespan != tr.RefMakespan {
		log.Fatalf("round-trip mismatch: %d/%d events, %d/%d makespan",
			tr2.NumEvents(), tr.NumEvents(), tr2.RefMakespan, tr.RefMakespan)
	}
	fmt.Println("round-trip verified")

	// Evaluate many optical designs against the one stored trace.
	t := metrics.NewTable("design sweep from one stored trace (fft, 16 cores)",
		"wavelengths/channel", "estimated makespan", "mean latency", "rounds")
	for _, wl := range []int{4, 8, 16, 32, 64} {
		c := cfg
		c.Optical.WavelengthsPerChannel = wl
		res, _, err := onocsim.RunSelfCorrection(c, tr2, onocsim.Optical)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(
			fmt.Sprintf("%d", wl),
			fmt.Sprintf("%d", res.Final.Makespan),
			fmt.Sprintf("%.1f", res.Final.MeanLatency),
			fmt.Sprintf("%d", len(res.Iterations)),
		)
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
