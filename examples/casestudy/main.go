// Casestudy reproduces the paper's case study (experiment R5): run real
// parallel kernels execution-driven on the baseline electrical mesh and on
// the optical crossbar, and compare application completion time and network
// power — the "compare our system running real application with a baseline
// NOC simulator" claim of the abstract.
//
// Run with:
//
//	go run ./examples/casestudy [-cores 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"onocsim"
	"onocsim/internal/metrics"
	"onocsim/internal/workload"
)

func main() {
	cores := flag.Int("cores", 64, "core count (perfect square; power of two for fft)")
	flag.Parse()

	t := metrics.NewTable(
		fmt.Sprintf("ONOC vs electrical baseline, %d cores, execution-driven", *cores),
		"kernel", "elec makespan", "opt makespan", "speedup",
		"elec power (mW)", "opt power (mW)")
	var speedups []float64
	for _, k := range workload.KernelNames() {
		cfg := onocsim.DefaultConfig()
		cfg.System.Cores = *cores
		cfg.Workload.Kernel = k

		elec, err := onocsim.RunExecutionDriven(cfg, onocsim.Electrical)
		if err != nil {
			log.Fatalf("%s electrical: %v", k, err)
		}
		opt, err := onocsim.RunExecutionDriven(cfg, onocsim.Optical)
		if err != nil {
			log.Fatalf("%s optical: %v", k, err)
		}
		sp := float64(elec.Makespan) / float64(opt.Makespan)
		speedups = append(speedups, sp)
		t.AddRow(k,
			fmt.Sprintf("%d", elec.Makespan),
			fmt.Sprintf("%d", opt.Makespan),
			fmt.Sprintf("%.2fx", sp),
			fmt.Sprintf("%.1f", elec.Power.TotalMW()),
			fmt.Sprintf("%.1f", opt.Power.TotalMW()),
		)
	}
	t.Note("geometric-mean optical speedup: %.2fx", metrics.GeoMean(speedups))
	if err := t.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
