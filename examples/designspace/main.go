// Designspace explores the interconnect design space the methodology makes
// cheap: one kernel, every fabric this repository implements — electrical
// mesh (two routing modes), MWSR and SWMR optical crossbars, and the
// path-adaptive hybrid at several thresholds — all execution-driven, with
// completion time and power side by side.
//
// Run with:
//
//	go run ./examples/designspace [-kernel lu] [-cores 64]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"onocsim"
	"onocsim/internal/metrics"
)

func main() {
	kernel := flag.String("kernel", "lu", "kernel: fft | lu | stencil | sort | reduce")
	cores := flag.Int("cores", 64, "core count")
	flag.Parse()

	base := onocsim.DefaultConfig()
	base.System.Cores = *cores
	base.Workload.Kernel = *kernel

	type design struct {
		name   string
		kind   onocsim.NetworkKind
		mutate func(*onocsim.Config)
	}
	designs := []design{
		{"mesh (xy)", onocsim.Electrical, nil},
		{"mesh (west-first)", onocsim.Electrical, func(c *onocsim.Config) { c.Mesh.Routing = "westfirst" }},
		{"torus (xy)", onocsim.Electrical, func(c *onocsim.Config) { c.Mesh.Topology = "torus"; c.Mesh.VCs = 6 }},
		{"crossbar mwsr", onocsim.Optical, nil},
		{"crossbar swmr", onocsim.Optical, func(c *onocsim.Config) { c.Optical.Architecture = "swmr" }},
		{"hybrid t=2", onocsim.Hybrid, func(c *onocsim.Config) { c.Hybrid.Threshold = 2 }},
		{"hybrid t=4", onocsim.Hybrid, func(c *onocsim.Config) { c.Hybrid.Threshold = 4 }},
		{"hybrid t=6", onocsim.Hybrid, func(c *onocsim.Config) { c.Hybrid.Threshold = 6 }},
	}

	t := metrics.NewTable(
		fmt.Sprintf("design space — %s kernel, %d cores, execution-driven", *kernel, *cores),
		"design", "makespan", "mean lat", "static mW", "dynamic mW")
	for _, d := range designs {
		cfg := base
		if d.mutate != nil {
			d.mutate(&cfg)
		}
		res, err := onocsim.RunExecutionDriven(cfg, d.kind)
		if err != nil {
			log.Fatalf("%s: %v", d.name, err)
		}
		t.AddRow(d.name,
			fmt.Sprintf("%d", res.Makespan),
			fmt.Sprintf("%.1f", res.MeanLatency),
			fmt.Sprintf("%.0f", res.Power.StaticMW),
			fmt.Sprintf("%.1f", res.Power.DynamicMW),
		)
	}
	t.Note("same programs, same seed, five fabrics — the point of a unified fabric contract")
	if err := t.WriteASCII(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
