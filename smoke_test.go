package onocsim

import "testing"

// smallConfig returns a fast configuration for smoke/integration tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Kernel = "stencil"
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 2
	cfg.MaxCycles = 5_000_000
	return cfg
}

func TestSmokeExecutionDrivenAllFabrics(t *testing.T) {
	for _, kind := range []NetworkKind{IdealNet, Electrical, Optical} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			truth, err := RunExecutionDriven(smallConfig(), kind)
			if err != nil {
				t.Fatalf("execution-driven on %s: %v", kind, err)
			}
			if truth.Makespan <= 0 {
				t.Fatalf("non-positive makespan %d", truth.Makespan)
			}
			if truth.Messages == 0 {
				t.Fatalf("no messages simulated")
			}
			t.Logf("%s: makespan=%d meanLat=%.1f msgs=%d", kind, truth.Makespan, truth.MeanLatency, truth.Messages)
		})
	}
}

func TestSmokeFullStudy(t *testing.T) {
	study, err := RunStudy(smallConfig(), Optical)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("truth makespan=%d naive=%d (err %.1f%%) sctm=%d (err %.1f%%, %d iters, converged=%v) coupled=%d (err %.1f%%)",
		study.Truth.Makespan,
		study.Naive.Makespan, study.NaiveAcc.MakespanErr*100,
		study.SCTM.Final.Makespan, study.SCTMAcc.MakespanErr*100,
		len(study.SCTM.Iterations), study.SCTM.Converged,
		study.Coupled.Makespan, study.CoupAcc.MakespanErr*100)
	if study.SCTMAcc.MakespanErr >= study.NaiveAcc.MakespanErr && study.NaiveAcc.MakespanErr > 0.05 {
		t.Errorf("self-correction (%.2f%%) did not improve on naive replay (%.2f%%)",
			study.SCTMAcc.MakespanErr*100, study.NaiveAcc.MakespanErr*100)
	}
}
