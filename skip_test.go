package onocsim

import (
	"fmt"
	"reflect"
	"testing"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

type injEvent struct {
	at       Tick
	src, dst int
	bytes    int
	class    noc.Class
}

// driveSchedule injects a fixed schedule and runs the fabric dry, either
// ticking every cycle or fast-forwarding through NextWake/SkipTo. It returns
// the (id, arrival) sequence in delivery order.
func driveSchedule(t *testing.T, net Network, sched []injEvent, skip bool) [][2]Tick {
	t.Helper()
	var deliveries [][2]Tick
	net.SetDeliver(func(m *Message) {
		deliveries = append(deliveries, [2]Tick{Tick(m.ID), m.Arrive})
	})
	i := 0
	for guard := 0; ; guard++ {
		if guard > 10_000_000 {
			t.Fatal("schedule did not drain")
		}
		now := net.Now()
		for i < len(sched) && sched[i].at <= now {
			e := sched[i]
			net.Inject(&Message{ID: uint64(i + 1), Src: e.src, Dst: e.dst, Bytes: e.bytes, Class: e.class})
			i++
		}
		if i == len(sched) && !net.Busy() {
			return deliveries
		}
		if skip {
			wake := net.NextWake()
			if i < len(sched) && sched[i].at < wake {
				wake = sched[i].at
			}
			if wake == noc.Never {
				t.Fatalf("NextWake=Never with %d in flight", len(sched)-len(deliveries))
			}
			if wake > now+1 {
				net.SkipTo(wake - 1)
			}
		}
		net.Tick()
	}
}

// TestSkipEquivalence is the idle-skip invariant check: for every fabric
// kind, fast-forwarding through NextWake/SkipTo must reproduce the exact
// delivery times and order of the cycle-by-cycle run — on bursty traffic
// with long idle stretches, the regime skipping is designed to exploit.
func TestSkipEquivalence(t *testing.T) {
	cfg := smallConfig()
	for _, kind := range []NetworkKind{IdealNet, Electrical, Optical, Hybrid} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			ref, err := BuildNetwork(cfg, kind)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := BuildNetwork(cfg, kind)
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewStream(7, "skip-equivalence-"+string(kind))
			nodes := ref.Nodes()
			var sched []injEvent
			at := Tick(0)
			for burst := 0; burst < 40; burst++ {
				// Idle gaps span a few cycles to several token rotations.
				at += Tick(1 + rng.Intn(3000))
				for k := 0; k < 1+rng.Intn(6); k++ {
					src := rng.Intn(nodes)
					dst := rng.Intn(nodes)
					if dst == src {
						dst = (src + 1) % nodes
					}
					sched = append(sched, injEvent{
						at:    at + Tick(rng.Intn(4)),
						src:   src,
						dst:   dst,
						bytes: 8 << rng.Intn(5),
						class: noc.Class(rng.Intn(int(noc.NumClasses))),
					})
				}
			}
			want := driveSchedule(t, ref, sched, false)
			got := driveSchedule(t, fast, sched, true)
			if len(want) != len(sched) {
				t.Fatalf("reference run delivered %d of %d", len(want), len(sched))
			}
			if !reflect.DeepEqual(got, want) {
				for i := range want {
					if i < len(got) && got[i] != want[i] {
						t.Fatalf("delivery %d diverges: skip run %v, tick run %v", i, got[i], want[i])
					}
				}
				t.Fatalf("skip run delivered %d, tick run %d", len(got), len(want))
			}
			if fast.Stats().Delivered != ref.Stats().Delivered {
				t.Fatalf("stats diverge: %d vs %d", fast.Stats().Delivered, ref.Stats().Delivered)
			}
			if fmt.Sprintf("%.9f", fast.Stats().MeanLatency()) != fmt.Sprintf("%.9f", ref.Stats().MeanLatency()) {
				t.Fatalf("mean latency diverges: %g vs %g", fast.Stats().MeanLatency(), ref.Stats().MeanLatency())
			}
		})
	}
}
