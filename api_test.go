package onocsim

import (
	"path/filepath"
	"testing"

	"onocsim/internal/config"
)

func TestBuildNetworkKinds(t *testing.T) {
	cfg := smallConfig()
	for _, kind := range []NetworkKind{Electrical, Optical, IdealNet} {
		net, err := BuildNetwork(cfg, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if net.Nodes() != cfg.System.Cores {
			t.Fatalf("%s: %d nodes", kind, net.Nodes())
		}
		if net.Now() != 0 {
			t.Fatalf("%s: fabric not fresh", kind)
		}
	}
	if _, err := BuildNetwork(cfg, NetworkKind("quantum")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	bad := cfg
	bad.System.Cores = 10
	if _, err := BuildNetwork(bad, Electrical); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestNetworkFactoryFreshInstances(t *testing.T) {
	cfg := smallConfig()
	f, err := NetworkFactory(cfg, Optical)
	if err != nil {
		t.Fatal(err)
	}
	a, b := f(), f()
	a.Tick()
	if b.Now() != 0 {
		t.Fatal("factory returned shared state")
	}
	bad := cfg
	bad.Mesh.VCs = 0
	if _, err := NetworkFactory(bad, Electrical); err == nil {
		t.Fatal("factory accepted invalid config")
	}
}

func TestCaptureTraceCompleteAndValid(t *testing.T) {
	cfg := smallConfig()
	tr, wall, err := CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	if wall <= 0 {
		t.Fatal("no wall time measured")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != cfg.System.Cores || tr.Workload != "stencil" {
		t.Fatalf("metadata: nodes=%d workload=%q", tr.Nodes, tr.Workload)
	}
	if tr.RefMakespan <= 0 {
		t.Fatal("no makespan")
	}
}

func TestCaptureOnElectricalFabricToo(t *testing.T) {
	cfg := smallConfig()
	tr, _, err := CaptureTrace(cfg, Electrical)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEvents() == 0 {
		t.Fatal("no events")
	}
}

func TestExecutionDrivenDeterminism(t *testing.T) {
	cfg := smallConfig()
	a, err := RunExecutionDriven(cfg, Optical)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExecutionDriven(cfg, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Messages != b.Messages || a.MeanLatency != b.MeanLatency {
		t.Fatalf("nondeterministic ground truth: %+v vs %+v", a, b)
	}
}

func TestTraceSaveLoadAPI(t *testing.T) {
	cfg := smallConfig()
	tr, _, err := CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.sctm")
	if err := SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEvents() != tr.NumEvents() || got.RefMakespan != tr.RefMakespan {
		t.Fatal("API round trip mismatch")
	}
	// A reloaded trace must drive the correction loop identically.
	r1, _, err := RunSelfCorrection(cfg, tr, Optical)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := RunSelfCorrection(cfg, got, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Final.Makespan != r2.Final.Makespan {
		t.Fatalf("reloaded trace diverged: %d vs %d", r1.Final.Makespan, r2.Final.Makespan)
	}
}

func TestNaiveReplayOnCaptureFabricIsExact(t *testing.T) {
	// The machinery invariant behind the whole methodology: replaying the
	// recorded timestamps on a fresh instance of the very fabric they
	// were captured on must reproduce the recorded arrivals exactly —
	// capture and replay see the same deterministic network.
	cfg := smallConfig()
	tr, _, err := CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := RunNaiveReplay(cfg, tr, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	mismatches := 0
	for i := range tr.Events {
		if res.Arrive[i] != tr.Events[i].RefArrive {
			mismatches++
			if mismatches <= 3 {
				t.Errorf("event %d: replay arrive %d, captured %d",
					i+1, res.Arrive[i], tr.Events[i].RefArrive)
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d arrivals diverged on the capture fabric", mismatches, tr.NumEvents())
	}
	if res.Makespan != tr.RefMakespan {
		t.Fatalf("replay makespan %d != captured %d", res.Makespan, tr.RefMakespan)
	}
}

func TestExecutionDrivenOnTorus(t *testing.T) {
	cfg := smallConfig()
	cfg.Mesh.Topology = "torus"
	cfg.Mesh.VCs = 6
	torus, err := RunExecutionDriven(cfg, Electrical)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := RunExecutionDriven(smallConfig(), Electrical)
	if err != nil {
		t.Fatal(err)
	}
	if torus.Makespan <= 0 || torus.Messages == 0 {
		t.Fatalf("torus run degenerate: %+v", torus)
	}
	// Wraparound halves worst-case distance; the coherent workload must
	// not get slower (message counts may differ slightly because miss
	// interleaving is timing-dependent).
	if torus.Makespan > mesh.Makespan {
		t.Fatalf("torus makespan %d worse than mesh %d", torus.Makespan, mesh.Makespan)
	}
}

func TestStudyOnElectricalTarget(t *testing.T) {
	// The methodology is fabric-agnostic: target the electrical mesh too.
	study, err := RunStudy(smallConfig(), Electrical)
	if err != nil {
		t.Fatal(err)
	}
	if study.SCTMAcc.MakespanErr > 0.25 {
		t.Fatalf("SCTM error on electrical target: %.1f%%", study.SCTMAcc.MakespanErr*100)
	}
}

func TestStudyOnHybridTarget(t *testing.T) {
	// The whole methodology must compose with the hybrid fabric too —
	// capture on ideal, correct against the two-sub-fabric target.
	cfg := smallConfig()
	cfg.Hybrid.Threshold = 3
	study, err := RunStudy(cfg, Hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if study.SCTMAcc.MakespanErr > study.NaiveAcc.MakespanErr+0.02 {
		t.Fatalf("sctm %.1f%% worse than naive %.1f%% on hybrid",
			study.SCTMAcc.MakespanErr*100, study.NaiveAcc.MakespanErr*100)
	}
}

func TestStudyAllKernels(t *testing.T) {
	for _, k := range []string{"fft", "lu", "sort"} {
		k := k
		t.Run(k, func(t *testing.T) {
			cfg := smallConfig()
			cfg.Workload.Kernel = k
			study, err := RunStudy(cfg, Optical)
			if err != nil {
				t.Fatal(err)
			}
			if study.SCTM.Final.Makespan <= 0 {
				t.Fatal("degenerate SCTM result")
			}
			// The headline claim, kernel by kernel: correction must not
			// be (much) worse than naive replay.
			if study.SCTMAcc.MakespanErr > study.NaiveAcc.MakespanErr+0.02 {
				t.Errorf("sctm %.1f%% worse than naive %.1f%%",
					study.SCTMAcc.MakespanErr*100, study.NaiveAcc.MakespanErr*100)
			}
		})
	}
}

func TestSelfCorrectionUsesConfigKnobs(t *testing.T) {
	cfg := smallConfig()
	tr, _, err := CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SCTM.MaxIterations = 1
	cfg.SCTM.ToleranceCycles = 0
	cfg.SCTM.MakespanTolerance = 0
	res, _, err := RunSelfCorrection(cfg, tr, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 1 {
		t.Fatalf("MaxIterations ignored: %d rounds", len(res.Iterations))
	}
}

func TestLoadConfigAPI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	cfg := DefaultConfig()
	cfg.Name = "api"
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "api" {
		t.Fatal("config not loaded")
	}
}

func TestCompareAPI(t *testing.T) {
	truth := GroundTruth{Makespan: 1000, MeanLatency: 50}
	rep := ReplayResult{Makespan: 1100, MeanLatency: 55}
	acc := Compare(rep, truth)
	if acc.MakespanErr != 0.1 {
		t.Fatalf("makespan err = %g", acc.MakespanErr)
	}
}

func TestPowerReportedOnBothFabrics(t *testing.T) {
	cfg := smallConfig()
	for _, kind := range []NetworkKind{Electrical, Optical} {
		res, err := RunExecutionDriven(cfg, kind)
		if err != nil {
			t.Fatal(err)
		}
		if res.Power.TotalMW() <= 0 {
			t.Fatalf("%s: no power", kind)
		}
		if res.ClassLatency[0] <= 0 || res.ClassLatency[1] <= 0 {
			t.Fatalf("%s: per-class latencies missing: %v", kind, res.ClassLatency)
		}
	}
}

func TestAPIErrorPaths(t *testing.T) {
	bad := smallConfig()
	bad.Workload.Kernel = "fft"
	bad.System.Cores = 144 // square but not a power of two: fft rejects it
	if _, err := RunExecutionDriven(bad, Optical); err == nil {
		t.Fatal("RunExecutionDriven accepted invalid kernel/core combination")
	}
	if _, _, err := CaptureTrace(bad, IdealNet); err == nil {
		t.Fatal("CaptureTrace accepted invalid kernel/core combination")
	}
	if _, err := RunStudy(bad, Optical); err == nil {
		t.Fatal("RunStudy accepted invalid kernel/core combination")
	}
	invalid := smallConfig()
	invalid.Mesh.VCs = 0
	if _, err := RunStudy(invalid, Electrical); err == nil {
		t.Fatal("RunStudy accepted invalid config")
	}
	tiny := smallConfig()
	tiny.MaxCycles = 10 // guaranteed timeout
	if _, err := RunExecutionDriven(tiny, Optical); err == nil {
		t.Fatal("cycle bound not enforced")
	}
}

func TestConfigKindConstants(t *testing.T) {
	if Electrical != config.NetElectrical || Optical != config.NetOptical || IdealNet != config.NetIdeal {
		t.Fatal("kind constants drifted")
	}
}
