package onocsim

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"onocsim/internal/simcache"
)

// The regression the daemon needed: Session.traces used to grow without
// bound — one entry per distinct captured config, forever — so a long-lived
// process serving arbitrary configs leaked the registry and pinned every
// trace it ever produced. The registry is now LRU-bounded.
func TestSessionTraceRegistryBounded(t *testing.T) {
	s := NewSession("")
	for i := 0; i < 4*maxTraceRegistry; i++ {
		s.rememberTrace(&Trace{}, simcache.Key{Fingerprint: fmt.Sprintf("fp-%04d", i)})
	}
	s.mu.Lock()
	n := len(s.traces)
	s.mu.Unlock()
	if n > maxTraceRegistry {
		t.Fatalf("registry grew to %d entries, cap is %d", n, maxTraceRegistry)
	}
}

func TestSessionTraceRegistryEvictsOldestKeepsTouched(t *testing.T) {
	s := NewSession("")
	hot := &Trace{}
	s.rememberTrace(hot, simcache.Key{Fingerprint: "hot"})
	for i := 0; i < 2*maxTraceRegistry; i++ {
		// Touching the hot trace between registrations keeps it resident
		// while everything older churns out.
		if _, ok := s.lookupTrace(hot); !ok {
			t.Fatalf("hot trace evicted after %d registrations despite lookups", i)
		}
		s.rememberTrace(&Trace{}, simcache.Key{Fingerprint: fmt.Sprintf("cold-%04d", i)})
	}
	key, ok := s.lookupTrace(hot)
	if !ok || key.Fingerprint != "hot" {
		t.Fatalf("hot trace lost: ok=%v key=%v", ok, key)
	}
	// Re-registering an already-known trace must not duplicate or grow.
	s.mu.Lock()
	before := len(s.traces)
	s.mu.Unlock()
	s.rememberTrace(hot, simcache.Key{Fingerprint: "hot"})
	s.mu.Lock()
	after := len(s.traces)
	s.mu.Unlock()
	if after != before {
		t.Fatalf("re-registration changed registry size %d -> %d", before, after)
	}
}

// An evicted trace degrades to uncached replay, exactly like a trace the
// session never saw.
func TestSessionEvictedTraceReplaysUncached(t *testing.T) {
	s := NewSession("")
	cfg := smallConfig()
	tr, _, err := s.CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.replayKey(cfg, tr, Optical, simcache.OpNaive); err != nil || !ok {
		t.Fatalf("fresh capture not keyed: ok=%v err=%v", ok, err)
	}
	for i := 0; i < maxTraceRegistry+1; i++ {
		s.rememberTrace(&Trace{}, simcache.Key{Fingerprint: fmt.Sprintf("churn-%04d", i)})
	}
	if _, ok, err := s.replayKey(cfg, tr, Optical, simcache.OpNaive); err != nil || ok {
		t.Fatalf("evicted trace still keyed: ok=%v err=%v", ok, err)
	}
	// The replay still works, just uncached.
	res, _, err := s.RunNaiveReplay(cfg, tr, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("uncached replay produced no result")
	}
}

// A context that dies mid-correction parks the loop: the session returns the
// partial trajectory with ErrParked and caches nothing, so a later
// uncancelled run computes the full result fresh.
func TestSessionSelfCorrectionParksAndNeverCachesPartial(t *testing.T) {
	s := NewSession("")
	cfg := smallConfig()
	tr, _, err := s.CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := s.RunSelfCorrectionContext(ctx, cfg, tr, Optical)
	if !errors.Is(err, ErrParked) && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled correction returned %v", err)
	}
	if errors.Is(err, ErrParked) && res.Converged {
		t.Fatal("parked result claims convergence")
	}
	misses := s.CacheStats().Misses
	full, _, err := s.RunSelfCorrection(cfg, tr, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Converged {
		t.Fatalf("full run did not converge: %+v", full)
	}
	if got := s.CacheStats().Misses; got == misses {
		t.Fatal("full run after park was served from cache — the partial leaked in")
	}
	// And the converged result is cached now.
	hits := s.CacheStats().Hits
	if _, _, err := s.RunSelfCorrection(cfg, tr, Optical); err != nil {
		t.Fatal(err)
	}
	if got := s.CacheStats().Hits; got != hits+1 {
		t.Fatalf("converged result not cached: hits %d -> %d", hits, got)
	}
}
