package onocsim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"onocsim/internal/simcache"
)

// The regression the daemon needed: Session.traces used to grow without
// bound — one entry per distinct captured config, forever — so a long-lived
// process serving arbitrary configs leaked the registry and pinned every
// trace it ever produced. The registry is now LRU-bounded.
func TestSessionTraceRegistryBounded(t *testing.T) {
	s := NewSession("")
	for i := 0; i < 4*maxTraceRegistry; i++ {
		s.rememberTrace(&Trace{}, simcache.Key{Fingerprint: fmt.Sprintf("fp-%04d", i)})
	}
	s.mu.Lock()
	n := len(s.traces)
	s.mu.Unlock()
	if n > maxTraceRegistry {
		t.Fatalf("registry grew to %d entries, cap is %d", n, maxTraceRegistry)
	}
}

func TestSessionTraceRegistryEvictsOldestKeepsTouched(t *testing.T) {
	s := NewSession("")
	hot := &Trace{}
	s.rememberTrace(hot, simcache.Key{Fingerprint: "hot"})
	for i := 0; i < 2*maxTraceRegistry; i++ {
		// Touching the hot trace between registrations keeps it resident
		// while everything older churns out.
		if _, ok := s.lookupTrace(hot); !ok {
			t.Fatalf("hot trace evicted after %d registrations despite lookups", i)
		}
		s.rememberTrace(&Trace{}, simcache.Key{Fingerprint: fmt.Sprintf("cold-%04d", i)})
	}
	key, ok := s.lookupTrace(hot)
	if !ok || key.Fingerprint != "hot" {
		t.Fatalf("hot trace lost: ok=%v key=%v", ok, key)
	}
	// Re-registering an already-known trace must not duplicate or grow.
	s.mu.Lock()
	before := len(s.traces)
	s.mu.Unlock()
	s.rememberTrace(hot, simcache.Key{Fingerprint: "hot"})
	s.mu.Lock()
	after := len(s.traces)
	s.mu.Unlock()
	if after != before {
		t.Fatalf("re-registration changed registry size %d -> %d", before, after)
	}
}

// An evicted trace degrades to uncached replay, exactly like a trace the
// session never saw.
func TestSessionEvictedTraceReplaysUncached(t *testing.T) {
	s := NewSession("")
	cfg := smallConfig()
	tr, _, err := s.CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.replayKey(cfg, tr, Optical, simcache.OpNaive); err != nil || !ok {
		t.Fatalf("fresh capture not keyed: ok=%v err=%v", ok, err)
	}
	for i := 0; i < maxTraceRegistry+1; i++ {
		s.rememberTrace(&Trace{}, simcache.Key{Fingerprint: fmt.Sprintf("churn-%04d", i)})
	}
	if _, ok, err := s.replayKey(cfg, tr, Optical, simcache.OpNaive); err != nil || ok {
		t.Fatalf("evicted trace still keyed: ok=%v err=%v", ok, err)
	}
	// The replay still works, just uncached.
	res, _, err := s.RunNaiveReplay(cfg, tr, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("uncached replay produced no result")
	}
}

// A context that dies mid-correction parks the loop: the session returns the
// partial trajectory with ErrParked and caches nothing, so a later
// uncancelled run computes the full result fresh.
func TestSessionSelfCorrectionParksAndNeverCachesPartial(t *testing.T) {
	s := NewSession("")
	cfg := smallConfig()
	tr, _, err := s.CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := s.RunSelfCorrectionContext(ctx, cfg, tr, Optical)
	if !errors.Is(err, ErrParked) && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled correction returned %v", err)
	}
	if errors.Is(err, ErrParked) && res.Converged {
		t.Fatal("parked result claims convergence")
	}
	misses := s.CacheStats().Misses
	full, _, err := s.RunSelfCorrection(cfg, tr, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Converged {
		t.Fatalf("full run did not converge: %+v", full)
	}
	if got := s.CacheStats().Misses; got == misses {
		t.Fatal("full run after park was served from cache — the partial leaked in")
	}
	// And the converged result is cached now.
	hits := s.CacheStats().Hits
	if _, _, err := s.RunSelfCorrection(cfg, tr, Optical); err != nil {
		t.Fatal(err)
	}
	if got := s.CacheStats().Hits; got != hits+1 {
		t.Fatalf("converged result not cached: hits %d -> %d", hits, got)
	}
}

// resumePollCtx reports Canceled after a fixed number of Err polls — the
// session-level twin of internal/core's countdownCtx. The correction loop
// polls once per round boundary (plus one poll at slot admission), so the
// budget selects the round the park lands on.
type resumePollCtx struct {
	context.Context
	remaining int
}

func (c *resumePollCtx) Err() error {
	if c.remaining > 0 {
		c.remaining--
		return nil
	}
	return context.Canceled
}

// A parked session correction stashes its resume state under the cache key;
// the next identical request resumes from the parked round instead of
// re-running from scratch, and completes to the exact result an
// uninterrupted session computes. The resume is proven — not just the
// equality — by giving the second call an Err-poll budget large enough for
// the remaining rounds but far too small for a from-scratch rerun.
func TestSessionResumesParkedCorrection(t *testing.T) {
	cfg := smallConfig()
	cfg.SCTM.MaxIterations = 10
	cfg.SCTM.ToleranceCycles = 0
	cfg.SCTM.MakespanTolerance = 0
	cfg.SCTM.Damping = 0.9
	cfg.SCTM.Seed = "fixed"
	cfg.SCTM.InitialLatencyCycles = 5000

	ref := NewSession("")
	tr, _, err := ref.CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := ref.RunSelfCorrection(cfg, tr, Optical)
	if err != nil {
		t.Fatal(err)
	}
	if full.Converged || len(full.Iterations) != cfg.SCTM.MaxIterations {
		t.Fatalf("reference run converged early: %+v", full)
	}

	s := NewSession("")
	tr2, _, err := s.CaptureTrace(cfg, IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &resumePollCtx{Context: context.Background(), remaining: 5}
	parked, _, err := s.RunSelfCorrectionContext(ctx, cfg, tr2, Optical)
	if !errors.Is(err, ErrParked) {
		t.Fatalf("err = %v, want ErrParked", err)
	}
	r := len(parked.Iterations)
	if r == 0 || r >= cfg.SCTM.MaxIterations {
		t.Fatalf("park landed at %d rounds, want mid-loop", r)
	}

	// Budget: remaining rounds plus admission/boundary slack. A restart
	// from round zero would need MaxIterations+1 polls and park again.
	budget := (cfg.SCTM.MaxIterations - r) + 2
	if budget >= cfg.SCTM.MaxIterations+1 {
		t.Fatalf("park too late to distinguish resume from restart: r=%d", r)
	}
	ctx2 := &resumePollCtx{Context: context.Background(), remaining: budget}
	resumed, _, err := s.RunSelfCorrectionContext(ctx2, cfg, tr2, Optical)
	if err != nil {
		t.Fatalf("resumed run failed (did the session restart from scratch?): %v", err)
	}
	if !reflect.DeepEqual(resumed, full) {
		t.Fatalf("resumed result diverged from uninterrupted run:\n got %+v\nwant %+v", resumed, full)
	}

	// The completed resume is cached like any converged-or-exhausted run.
	hits := s.CacheStats().Hits
	if _, _, err := s.RunSelfCorrection(cfg, tr2, Optical); err != nil {
		t.Fatal(err)
	}
	if got := s.CacheStats().Hits; got != hits+1 {
		t.Fatalf("resumed result not cached: hits %d -> %d", hits, got)
	}
}
