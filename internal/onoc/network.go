// Package onoc implements the optical Network-on-Chip under study: a
// Corona-class multiple-writer single-reader (MWSR) wavelength-routed
// crossbar. Every node owns a "home channel" — a WDM group of wavelengths on
// the serpentine waveguide that only it detects — and any other node may
// modulate onto that channel after acquiring the channel's circulating
// arbitration token. The physical layer (losses, laser power, per-bit
// energies) comes from internal/photonics.
//
// The model is cycle-level: token circulation, channel serialization at the
// aggregate WDM line rate, light propagation scaled by serpentine distance,
// and O/E conversion overheads are all modelled in system clock cycles.
package onoc

import (
	"container/heap"
	"fmt"

	"onocsim/internal/config"
	"onocsim/internal/noc"
	"onocsim/internal/photonics"
	"onocsim/internal/sim"
)

// Network is the optical crossbar fabric. It implements noc.Network.
type Network struct {
	cfg   config.Optical
	nodes int

	now     sim.Tick
	deliver noc.DeliverFunc
	stats   *noc.Stats

	// bitsPerCycle is the aggregate capacity of one home channel.
	bitsPerCycle float64

	channels []*channel
	arrivals arrivalHeap
	seq      uint64
	inflight int

	// Power accounting.
	devices  photonics.DeviceParams
	budget   photonics.Budget
	bitsSent uint64
	grabs    uint64

	// TokenWait is exposed through Stats().HopCount: for the optical
	// fabric "hops" means cycles spent waiting for the channel token.
}

// channel is the home channel of one destination node.
type channel struct {
	dst int
	// queues[src] holds messages from src awaiting the token.
	queues [][]*pending
	queued int
	// tokenPos is the node currently able to grab the token.
	tokenPos int
	// tokenReady is the cycle at which the token becomes actionable at
	// tokenPos (circulation delay or post-transmission release).
	tokenReady sim.Tick
	// holdCount counts consecutive transmissions by tokenPos, bounded by
	// MaxTokenHold for fairness.
	holdCount int
}

type pending struct {
	msg *noc.Message
}

type arrival struct {
	at  sim.Tick
	seq uint64
	msg *noc.Message
}

type arrivalHeap []arrival

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// New builds the crossbar for the given node count.
func New(nodes int, cfg config.Optical) *Network {
	if nodes < 2 {
		panic(fmt.Sprintf("onoc: need ≥2 nodes, got %d", nodes))
	}
	bpc := float64(cfg.WavelengthsPerChannel) * cfg.GbpsPerWavelength / cfg.ClockGHz
	if bpc <= 0 {
		panic("onoc: non-positive channel capacity")
	}
	n := &Network{
		cfg:          cfg,
		nodes:        nodes,
		stats:        noc.NewStats(),
		bitsPerCycle: bpc,
		devices:      photonics.DefaultDeviceParams(),
	}
	budget, err := photonics.ComputeBudget(n.devices, photonics.CrossbarGeometry{
		Nodes:                 nodes,
		WavelengthsPerChannel: cfg.WavelengthsPerChannel,
		DieEdgeCm:             cfg.DieEdgeCm,
	})
	if err != nil {
		panic("onoc: " + err.Error())
	}
	n.budget = budget
	n.channels = make([]*channel, nodes)
	for d := 0; d < nodes; d++ {
		ch := &channel{dst: d, tokenPos: (d + 1) % nodes}
		ch.queues = make([][]*pending, nodes)
		n.channels[d] = ch
	}
	return n
}

// Nodes implements noc.Network.
func (n *Network) Nodes() int { return n.nodes }

// Now implements noc.Network.
func (n *Network) Now() sim.Tick { return n.now }

// Stats implements noc.Network. For this fabric, Stats().HopCount records
// token-acquisition wait cycles rather than hop counts.
func (n *Network) Stats() *noc.Stats { return n.stats }

// SetDeliver implements noc.Network.
func (n *Network) SetDeliver(fn noc.DeliverFunc) { n.deliver = fn }

// Budget exposes the resolved static photonic budget for reporting.
func (n *Network) Budget() photonics.Budget { return n.budget }

// SerializationCycles returns the channel occupancy of a payload.
func (n *Network) SerializationCycles(bytes int) sim.Tick {
	bits := float64(bytes) * 8
	c := sim.Tick(bits / n.bitsPerCycle)
	if float64(c)*n.bitsPerCycle < bits {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// propagation returns the light travel time from src to the channel reader
// dst along the serpentine (messages travel downstream only).
func (n *Network) propagation(src, dst int) sim.Tick {
	hops := (dst - src + n.nodes) % n.nodes
	p := sim.Tick(int64(hops) * n.cfg.PropagationCyclesAcross / int64(n.nodes))
	if p < 1 {
		p = 1
	}
	return p
}

// Inject implements noc.Network.
func (n *Network) Inject(m *noc.Message) {
	if m.Src < 0 || m.Src >= n.nodes || m.Dst < 0 || m.Dst >= n.nodes {
		panic(fmt.Sprintf("onoc: message %d endpoints (%d->%d) out of range [0,%d)", m.ID, m.Src, m.Dst, n.nodes))
	}
	m.Inject = n.now
	n.stats.Injected++
	n.inflight++
	if m.Src == m.Dst {
		n.seq++
		heap.Push(&n.arrivals, arrival{at: n.now + 1, seq: n.seq, msg: m})
		return
	}
	ch := n.channels[m.Dst]
	ch.queues[m.Src] = append(ch.queues[m.Src], &pending{msg: m})
	ch.queued++
}

// Tick implements noc.Network: deliver due arrivals, then advance every
// channel's token/transmission state by one cycle.
func (n *Network) Tick() {
	n.now++
	for len(n.arrivals) > 0 && n.arrivals[0].at <= n.now {
		a := heap.Pop(&n.arrivals).(arrival)
		a.msg.Arrive = n.now
		n.stats.RecordDelivery(a.msg)
		n.inflight--
		if n.deliver != nil {
			n.deliver(a.msg)
		}
	}
	for _, ch := range n.channels {
		n.stepChannel(ch)
	}
}

// stepChannel advances one channel: either start a transmission at the
// token's current position, or circulate the token.
func (n *Network) stepChannel(ch *channel) {
	if ch.tokenReady > n.now {
		return // token in flight or channel transmitting
	}
	q := ch.queues[ch.tokenPos]
	if len(q) > 0 && ch.holdCount < n.cfg.MaxTokenHold {
		p := q[0]
		ch.queues[ch.tokenPos] = q[1:]
		ch.queued--
		ch.holdCount++
		m := p.msg
		ser := n.SerializationCycles(m.Bytes)
		oe := sim.Tick(n.cfg.OEOverheadCycles)
		prop := n.propagation(m.Src, m.Dst)
		n.stats.HopCount.Add(float64(n.now - m.Inject)) // token wait
		n.stats.QueueDelay.Add(float64(n.now - m.Inject))
		arriveAt := n.now + oe + ser + prop
		n.seq++
		heap.Push(&n.arrivals, arrival{at: arriveAt, seq: n.seq, msg: m})
		n.bitsSent += uint64(m.Bytes) * 8
		n.grabs++
		// The channel is occupied for the serialization period; the
		// token resumes circulating from here afterwards.
		ch.tokenReady = n.now + ser
		return
	}
	// Advance the token to the next node.
	ch.holdCount = 0
	ch.tokenPos = (ch.tokenPos + 1) % n.nodes
	ch.tokenReady = n.now + sim.Tick(n.cfg.TokenHopCycles)
}

// Busy implements noc.Network.
func (n *Network) Busy() bool { return n.inflight > 0 }

// ZeroLoadLatency implements noc.Network: expected token wait (half a
// circulation at zero load) plus O/E overhead, serialization and mean
// propagation.
func (n *Network) ZeroLoadLatency(src, dst, bytes int) sim.Tick {
	if src == dst {
		return 1
	}
	tokenWait := sim.Tick(int64(n.nodes) * n.cfg.TokenHopCycles / 2)
	return tokenWait + sim.Tick(n.cfg.OEOverheadCycles) + n.SerializationCycles(bytes) + n.propagation(src, dst)
}

// PowerReport implements noc.Network: static laser + ring tuning from the
// photonic budget, dynamic modulation/reception energy over the window.
func (n *Network) PowerReport(elapsed sim.Tick, clockGHz float64) noc.PowerReport {
	seconds := float64(elapsed) / (clockGHz * 1e9)
	dynPJ := n.devices.DynamicEnergyPJ(int64(n.bitsSent))
	// Charge a small electrical arbitration cost per token grab.
	const tokenGrabPJ = 0.5
	dynPJ += float64(n.grabs) * tokenGrabPJ
	dynMW := 0.0
	if seconds > 0 {
		dynMW = dynPJ * 1e-9 / seconds
	}
	static := n.budget.LaserPowerMW + n.budget.TuningPowerMW
	return noc.PowerReport{
		StaticMW:  static,
		DynamicMW: dynMW,
		Breakdown: map[string]float64{
			"laser_mw":     n.budget.LaserPowerMW,
			"tuning_mw":    n.budget.TuningPowerMW,
			"endpoints_mw": dynMW,
		},
	}
}
