// Package onoc implements the optical Network-on-Chip under study: a
// Corona-class multiple-writer single-reader (MWSR) wavelength-routed
// crossbar. Every node owns a "home channel" — a WDM group of wavelengths on
// the serpentine waveguide that only it detects — and any other node may
// modulate onto that channel after acquiring the channel's circulating
// arbitration token. The physical layer (losses, laser power, per-bit
// energies) comes from internal/photonics.
//
// The model is cycle-level: token circulation, channel serialization at the
// aggregate WDM line rate, light propagation scaled by serpentine distance,
// and O/E conversion overheads are all modelled in system clock cycles.
package onoc

import (
	"fmt"

	"onocsim/internal/config"
	"onocsim/internal/fault"
	"onocsim/internal/noc"
	"onocsim/internal/photonics"
	"onocsim/internal/sim"
)

// serTable memoizes payload-size → channel-occupancy conversions. Protocol
// traffic uses a handful of distinct sizes, so the per-transmission float
// division folds into a table lookup.
type serTable struct {
	// bitsPerCycle is the aggregate capacity of one channel.
	bitsPerCycle float64
	tab          []sim.Tick
}

func (t *serTable) cycles(bytes int) sim.Tick {
	if bytes >= 0 && bytes < len(t.tab) {
		if c := t.tab[bytes]; c > 0 {
			return c
		}
	}
	bits := float64(bytes) * 8
	c := sim.Tick(bits / t.bitsPerCycle)
	if float64(c)*t.bitsPerCycle < bits {
		c++
	}
	if c < 1 {
		c = 1
	}
	if bytes >= 0 && bytes < 1<<16 {
		if bytes >= len(t.tab) {
			grown := make([]sim.Tick, bytes+1)
			copy(grown, t.tab)
			t.tab = grown
		}
		t.tab[bytes] = c
	}
	return c
}

// Network is the optical crossbar fabric. It implements noc.Network.
type Network struct {
	cfg   config.Optical
	nodes int

	now      sim.Tick
	deliver  noc.DeliverFunc
	shardObs noc.ShardObsFunc
	stats    *noc.Stats

	ser serTable

	// Fault injection (nil / empty when the config carries no faults).
	// faults schedules token losses and thermal drift windows; serDrift is
	// the serialization table at drift-degraded channel capacity; derate
	// maps serpentine hop count → rate-derating factor for lightpaths that
	// no longer close at full rate under laser droop (nil when none do).
	faults   *fault.Injector
	serDrift serTable
	derate   []sim.Tick
	regens   uint64

	channels []*channel
	// active lists the channels with queued senders in ascending dst order,
	// so Tick steps exactly the channels a full scan would have, in the same
	// order, without touching the (mostly idle) rest.
	active   []*channel
	arrivals arrivalHeap
	seq      uint64
	inflight int

	// Power accounting.
	devices  photonics.DeviceParams
	budget   photonics.Budget
	bitsSent uint64
	grabs    uint64

	// TokenWait is exposed through Stats().HopCount: for the optical
	// fabric "hops" means cycles spent waiting for the channel token.
}

// srcQueue is a FIFO of messages from one source. Popping advances a head
// index instead of re-slicing, so the backing array keeps its capacity and
// steady-state traffic stops allocating.
type srcQueue struct {
	buf  []*noc.Message
	head int
}

func (q *srcQueue) push(m *noc.Message) { q.buf = append(q.buf, m) }

func (q *srcQueue) empty() bool { return q.head == len(q.buf) }

func (q *srcQueue) pop() *noc.Message {
	m := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return m
}

func (q *srcQueue) reset() {
	for i := q.head; i < len(q.buf); i++ {
		q.buf[i] = nil
	}
	q.buf = q.buf[:0]
	q.head = 0
}

// channel is the home channel of one destination node.
type channel struct {
	dst int
	// queues[src] holds messages from src awaiting the token.
	queues []srcQueue
	queued int
	// tokenPos is the node currently able to grab the token.
	tokenPos int
	// tokenReady is the cycle at which the token becomes actionable at
	// tokenPos (circulation delay or post-transmission release).
	tokenReady sim.Tick
	// holdCount counts consecutive transmissions by tokenPos, bounded by
	// MaxTokenHold for fairness.
	holdCount int
}

type arrival struct {
	at  sim.Tick
	seq uint64
	msg *noc.Message
}

// arrivalHeap is a value-based 4-ary min-heap ordered by (at, seq). Like the
// sim engine it avoids container/heap, whose interface{} crossings boxed an
// allocation onto every push and pop — the dominant cost of the optical Tick.
type arrivalHeap []arrival

func (h arrivalHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *arrivalHeap) push(a arrival) {
	q := append(*h, a)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

func (h *arrivalHeap) pop() arrival {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = arrival{} // release the message reference
	q = q[:n]
	i := 0
	for {
		best := i
		for k := 4*i + 1; k <= 4*i+4 && k < n; k++ {
			if q.less(k, best) {
				best = k
			}
		}
		if best == i {
			break
		}
		q[i], q[best] = q[best], q[i]
		i = best
	}
	*h = q
	return top
}

// New builds the crossbar for the given node count.
func New(nodes int, cfg config.Optical) *Network {
	return NewWithFaults(nodes, cfg, config.Faults{}, 0)
}

// NewWithFaults builds the crossbar with deterministic fault injection. The
// schedule derives from seed and the fault parameters only, so two fabrics
// built with equal (nodes, cfg, faults, seed) observe identical fault
// timelines — including sharded replicas, which each own a disjoint subset
// of the channels.
func NewWithFaults(nodes int, cfg config.Optical, faults config.Faults, seed uint64) *Network {
	if nodes < 2 {
		panic(fmt.Sprintf("onoc: need ≥2 nodes, got %d", nodes))
	}
	bpc := float64(cfg.WavelengthsPerChannel) * cfg.GbpsPerWavelength / cfg.ClockGHz
	if bpc <= 0 {
		panic("onoc: non-positive channel capacity")
	}
	n := &Network{
		cfg:     cfg,
		nodes:   nodes,
		stats:   noc.NewStats(),
		ser:     serTable{bitsPerCycle: bpc},
		devices: photonics.DefaultDeviceParams(),
		faults:  fault.New(nodes, faults, seed),
	}
	geom := photonics.CrossbarGeometry{
		Nodes:                 nodes,
		WavelengthsPerChannel: cfg.WavelengthsPerChannel,
		DieEdgeCm:             cfg.DieEdgeCm,
	}
	budget, err := photonics.ComputeBudgetWithDroop(n.devices, geom, faults.LaserDroopDB)
	if err != nil {
		panic("onoc: " + err.Error())
	}
	n.budget = budget
	if faults.ThermalMTBF > 0 {
		// A drift window detunes ThermalDetune of the channel's rings;
		// at least one wavelength always survives.
		avail := cfg.WavelengthsPerChannel - int(float64(cfg.WavelengthsPerChannel)*faults.ThermalDetune)
		if avail < 1 {
			avail = 1
		}
		n.serDrift = serTable{bitsPerCycle: bpc * float64(avail) / float64(cfg.WavelengthsPerChannel)}
	}
	n.derate = derateTable(n.devices, geom, budget, faults.LaserDroopDB)
	n.channels = make([]*channel, nodes)
	for d := 0; d < nodes; d++ {
		ch := &channel{dst: d, tokenPos: (d + 1) % nodes}
		ch.queues = make([]srcQueue, nodes)
		n.channels[d] = ch
	}
	return n
}

// derateTable maps serpentine hop count → serialization multiplier under a
// drooped laser; the physics lives in photonics.RateDerateTable (shared with
// the closed-form analytic model), converted here into fabric ticks. Returns
// nil when every path still closes at full rate, which keeps the fault-free
// fast path branch-free.
func derateTable(p photonics.DeviceParams, g photonics.CrossbarGeometry, b photonics.Budget, droopDB float64) []sim.Tick {
	raw := photonics.RateDerateTable(p, g, b, droopDB)
	if raw == nil {
		return nil
	}
	tab := make([]sim.Tick, len(raw))
	for i, v := range raw {
		tab[i] = sim.Tick(v)
	}
	return tab
}

// DerateFactor returns the serialization multiplier laser droop imposes on
// the src→dst lightpath (1 when the path still closes at full rate). The
// hybrid fabric consults it to reroute blacklisted pairs over the mesh.
func (n *Network) DerateFactor(src, dst int) sim.Tick {
	if n.derate == nil || src == dst {
		return 1
	}
	return n.derate[(dst-src+n.nodes)%n.nodes]
}

// Nodes implements noc.Network.
func (n *Network) Nodes() int { return n.nodes }

// Now implements noc.Network.
func (n *Network) Now() sim.Tick { return n.now }

// Stats implements noc.Network. For this fabric, Stats().HopCount records
// token-acquisition wait cycles rather than hop counts.
func (n *Network) Stats() *noc.Stats { return n.stats }

// SetDeliver implements noc.Network.
func (n *Network) SetDeliver(fn noc.DeliverFunc) { n.deliver = fn }

// Budget exposes the resolved static photonic budget for reporting.
func (n *Network) Budget() photonics.Budget { return n.budget }

// SerializationCycles returns the nominal (fault-free) channel occupancy of
// a payload.
func (n *Network) SerializationCycles(bytes int) sim.Tick {
	return n.ser.cycles(bytes)
}

// sendSer returns the channel occupancy of one transmission under the fault
// state at the transmit instant: an active thermal drift window shrinks the
// channel's usable WDM degree, and laser droop derates lightpaths whose loss
// no longer fits the shrunken margin. Both degrade bandwidth gracefully —
// the message still goes through, just slower.
func (n *Network) sendSer(m *noc.Message) sim.Tick {
	var ser sim.Tick
	if n.faults.DriftAt(m.Dst, n.now) {
		ser = n.serDrift.cycles(m.Bytes)
		n.stats.Faults.DriftedSends++
	} else {
		ser = n.ser.cycles(m.Bytes)
	}
	if n.derate != nil {
		if f := n.derate[(m.Dst-m.Src+n.nodes)%n.nodes]; f > 1 {
			ser *= f
			n.stats.Faults.DeratedSends++
		}
	}
	return ser
}

// propagation returns the light travel time from src to the channel reader
// dst along the serpentine (messages travel downstream only).
func (n *Network) propagation(src, dst int) sim.Tick {
	hops := (dst - src + n.nodes) % n.nodes
	p := sim.Tick(int64(hops) * n.cfg.PropagationCyclesAcross / int64(n.nodes))
	if p < 1 {
		p = 1
	}
	return p
}

// catchUp replays an idle channel's token circulation since it last carried
// queued traffic, in closed form. Channels with no queued senders are
// skipped by Tick entirely; their hop trajectory — one hop every
// max(TokenHopCycles, 1) cycles starting at max(tokenReady, 1) — is
// reconstructed here the moment the channel matters again.
func (n *Network) catchUp(ch *channel) {
	n.advanceToken(ch, n.now)
}

// advanceToken replays the token's hop trajectory on a channel with no
// queued senders through instant to, leaving tokenReady strictly beyond it.
// Without token faults one closed-form division suffices; with them the
// trajectory is piecewise — closed-form hopping between outage windows, with
// each actionable moment that lands inside a window losing the token until
// the timeout regenerates it at the home node. Because ticked execution
// (stepChannel) checks the same schedule at the same actionable moments,
// full ticking, idle skipping, and this catch-up all produce the identical
// (tokenPos, tokenReady) trajectory — the skip-equivalence invariant.
func (n *Network) advanceToken(ch *channel, to sim.Tick) {
	first := ch.tokenReady
	if first < 1 {
		first = 1
	}
	if first > to {
		return
	}
	period := sim.Tick(n.cfg.TokenHopCycles)
	if period < 1 {
		period = 1
	}
	hop := sim.Tick(n.cfg.TokenHopCycles)
	if !n.faults.TokenFaults() {
		steps := (to-first)/period + 1
		ch.tokenPos = (ch.tokenPos + int(steps%sim.Tick(n.nodes))) % n.nodes
		ch.holdCount = 0
		ch.tokenReady = first + (steps-1)*period + hop
		return
	}
	if hop < 1 {
		hop = period // degenerate configs: keep the loop advancing
	}
	m, pos := first, ch.tokenPos
	for m <= to {
		if end, ok := n.faults.TokenOutage(ch.dst, m); ok {
			n.stats.Faults.TokenLosses++
			n.regens++
			pos = (ch.dst + 1) % n.nodes
			m = end
			continue
		}
		limit := to
		if next := n.faults.NextTokenOutage(ch.dst, m); next-1 < limit {
			limit = next - 1
		}
		steps := (limit-m)/period + 1
		pos = (pos + int(steps%sim.Tick(n.nodes))) % n.nodes
		m += (steps-1)*period + hop
	}
	ch.tokenPos = pos
	ch.holdCount = 0
	ch.tokenReady = m
}

// Inject implements noc.Network.
func (n *Network) Inject(m *noc.Message) {
	if m.Src < 0 || m.Src >= n.nodes || m.Dst < 0 || m.Dst >= n.nodes {
		panic(fmt.Sprintf("onoc: message %d endpoints (%d->%d) out of range [0,%d)", m.ID, m.Src, m.Dst, n.nodes))
	}
	m.Inject = n.now
	n.stats.Injected++
	n.inflight++
	if m.Src == m.Dst {
		n.seq++
		n.arrivals.push(arrival{at: n.now + 1, seq: n.seq, msg: m})
		return
	}
	ch := n.channels[m.Dst]
	if ch.queued == 0 {
		n.catchUp(ch)
		n.insertActive(ch)
	}
	ch.queues[m.Src].push(m)
	ch.queued++
}

// insertActive adds a newly-queued channel to the active list, keeping it
// sorted by dst. The list is short under realistic load, so a linear shift
// beats any cleverer structure.
func (n *Network) insertActive(ch *channel) {
	i := len(n.active)
	for i > 0 && n.active[i-1].dst > ch.dst {
		i--
	}
	n.active = append(n.active, nil)
	copy(n.active[i+1:], n.active[i:])
	n.active[i] = ch
}

// Tick implements noc.Network: deliver due arrivals, then advance every
// channel's token/transmission state by one cycle.
func (n *Network) Tick() {
	n.now++
	for len(n.arrivals) > 0 && n.arrivals[0].at <= n.now {
		a := n.arrivals.pop()
		a.msg.Arrive = n.now
		n.stats.RecordDelivery(a.msg)
		n.inflight--
		if n.deliver != nil {
			n.deliver(a.msg)
		}
	}
	// Idle channels circulate their token lazily (see catchUp); only the
	// active list does per-cycle work. Channels drained by stepChannel are
	// compacted out in place.
	if len(n.active) > 0 {
		w := 0
		for _, ch := range n.active {
			n.stepChannel(ch)
			if ch.queued > 0 {
				n.active[w] = ch
				w++
			}
		}
		for i := w; i < len(n.active); i++ {
			n.active[i] = nil
		}
		n.active = n.active[:w]
	}
}

// stepChannel advances one channel: either start a transmission at the
// token's current position, or circulate the token.
func (n *Network) stepChannel(ch *channel) {
	if ch.tokenReady > n.now {
		return // token in flight or channel transmitting
	}
	// A lost token stalls the whole channel until the timeout regenerates
	// it at the home node. The check runs at actionable moments only
	// (now == tokenReady), matching advanceToken's idle-path replay.
	if end, ok := n.faults.TokenOutage(ch.dst, n.now); ok {
		n.stats.Faults.TokenLosses++
		n.regens++
		ch.tokenPos = (ch.dst + 1) % n.nodes
		ch.holdCount = 0
		ch.tokenReady = end
		return
	}
	q := &ch.queues[ch.tokenPos]
	if !q.empty() && ch.holdCount < n.cfg.MaxTokenHold {
		m := q.pop()
		ch.queued--
		ch.holdCount++
		ser := n.sendSer(m)
		oe := sim.Tick(n.cfg.OEOverheadCycles)
		prop := n.propagation(m.Src, m.Dst)
		n.stats.HopCount.Add(float64(n.now - m.Inject)) // token wait
		n.stats.QueueDelay.Add(float64(n.now - m.Inject))
		if n.shardObs != nil {
			n.shardObs(m.ID, noc.ShardObs{Start: n.now, Queue: float64(n.now - m.Inject)})
		}
		arriveAt := n.now + oe + ser + prop
		n.seq++
		n.arrivals.push(arrival{at: arriveAt, seq: n.seq, msg: m})
		n.bitsSent += uint64(m.Bytes) * 8
		n.grabs++
		// The channel is occupied for the serialization period; the
		// token resumes circulating from here afterwards.
		ch.tokenReady = n.now + ser
		return
	}
	// Advance the token to the next node.
	ch.holdCount = 0
	ch.tokenPos = (ch.tokenPos + 1) % n.nodes
	ch.tokenReady = n.now + sim.Tick(n.cfg.TokenHopCycles)
}

// Busy implements noc.Network.
func (n *Network) Busy() bool { return n.inflight > 0 }

// Lookahead implements noc.Network: the fastest cross-node interaction is a
// message that wins its token instantly — O/E conversion plus the minimum one
// cycle each of serialization and propagation.
func (n *Network) Lookahead() sim.Tick {
	la := sim.Tick(n.cfg.OEOverheadCycles) + 2
	if la < 1 {
		la = 1
	}
	return la
}

// ShardNode implements noc.ScheduleShardable. Every resource a src→dst
// message touches — the destination's home channel, its token, its per-source
// queues, its arrival stream — belongs to the destination.
func (n *Network) ShardNode(src, dst int) int { return dst }

// SetShardObs implements noc.ScheduleShardable. Like the delivery callback,
// the sink survives Reset.
func (n *Network) SetShardObs(fn noc.ShardObsFunc) { n.shardObs = fn }

// SeqOrder implements noc.ScheduleShardable: the arrival heap's tie-break seq
// is assigned when a transmission starts (or, for self-messages, at Inject),
// and Tick scans active channels in ascending dst order — so same-cycle
// deliveries complete in transmit-start order, tie-broken by dst.
func (n *Network) SeqOrder() noc.SeqOrder { return noc.SeqByService }

// NextWake implements noc.Network. An active channel next acts (transmits or
// hops) at tokenReady — which every state transition leaves strictly in the
// future — so the fabric's next event is the earliest of that and the first
// pending arrival. Cycles in between are spent on light propagation, channel
// serialization, or token flight: provably unobservable. Idle token
// circulation is also unobservable — catchUp and SkipTo reproduce it
// analytically.
func (n *Network) NextWake() sim.Tick {
	wake := noc.Never
	if len(n.arrivals) > 0 {
		wake = n.arrivals[0].at
	}
	next := n.now + 1
	for _, ch := range n.active {
		if ch.tokenReady <= next {
			return next
		}
		if ch.tokenReady < wake {
			wake = ch.tokenReady
		}
	}
	return wake
}

// SkipTo implements noc.Network: jump the clock and advance every active
// channel's arbitration token exactly as the skipped Ticks would have, in
// closed form. t is below NextWake, so no transmission starts in the skipped
// stretch and any channel action is a hop: one every max(TokenHopCycles, 1)
// cycles starting at max(tokenReady, now+1), holdCount reset by the first.
// (With NextWake bounding t below every active tokenReady the loop body is
// all continues; it is kept general so SkipTo is safe for any t < NextWake
// an implementation revision might permit.) Idle channels are untouched —
// they circulate lazily via catchUp.
func (n *Network) SkipTo(t sim.Tick) {
	if t <= n.now {
		return
	}
	// Every state transition leaves tokenReady strictly beyond now, so
	// advanceToken's max(tokenReady, 1) start equals the max(tokenReady,
	// now+1) this loop historically used; sharing the helper keeps the
	// skipped trajectory — including any token losses discovered inside the
	// stretch — byte-identical to catchUp's and to ticked execution's.
	for _, ch := range n.active {
		n.advanceToken(ch, t)
	}
	n.now = t
}

// Reset implements noc.Resettable: clock, statistics, queues, arrivals,
// token state and energy counters return to constructor values; the static
// photonic budget is untouched (it depends only on geometry).
func (n *Network) Reset() {
	n.now = 0
	n.stats = noc.NewStats()
	n.arrivals = n.arrivals[:0]
	for i := range n.active {
		n.active[i] = nil
	}
	n.active = n.active[:0]
	n.seq = 0
	n.inflight = 0
	n.bitsSent = 0
	n.grabs = 0
	n.regens = 0
	// Fault timelines are pure functions of (seed, faults, channel): their
	// lazily-materialized windows persist across Reset and replay
	// identically in the next round.
	for d, ch := range n.channels {
		for s := range ch.queues {
			ch.queues[s].reset()
		}
		ch.queued = 0
		ch.tokenPos = (d + 1) % n.nodes
		ch.tokenReady = 0
		ch.holdCount = 0
	}
}

// ZeroLoadLatency implements noc.Network: expected token wait (half a
// circulation at zero load) plus O/E overhead, serialization and mean
// propagation.
func (n *Network) ZeroLoadLatency(src, dst, bytes int) sim.Tick {
	if src == dst {
		return 1
	}
	tokenWait := sim.Tick(int64(n.nodes) * n.cfg.TokenHopCycles / 2)
	ser := n.SerializationCycles(bytes)
	if n.derate != nil {
		// Laser droop is a static degradation, so the zero-load estimate
		// reflects it; transient faults (drift, token loss) do not shift
		// the expectation and are charged only when they fire.
		ser *= n.DerateFactor(src, dst)
	}
	return tokenWait + sim.Tick(n.cfg.OEOverheadCycles) + ser + n.propagation(src, dst)
}

// PowerReport implements noc.Network: static laser + ring tuning from the
// photonic budget, dynamic modulation/reception energy over the window.
func (n *Network) PowerReport(elapsed sim.Tick, clockGHz float64) noc.PowerReport {
	seconds := float64(elapsed) / (clockGHz * 1e9)
	dynPJ := n.devices.DynamicEnergyPJ(int64(n.bitsSent))
	// Charge a small electrical arbitration cost per token grab, and a
	// larger one per timeout-and-regenerate token recovery.
	const tokenGrabPJ = 0.5
	const tokenRegenPJ = 5.0
	dynPJ += float64(n.grabs) * tokenGrabPJ
	dynPJ += float64(n.regens) * tokenRegenPJ
	dynMW := 0.0
	if seconds > 0 {
		dynMW = dynPJ * 1e-9 / seconds
	}
	static := n.budget.LaserPowerMW + n.budget.TuningPowerMW
	breakdown := map[string]float64{
		"laser_mw":     n.budget.LaserPowerMW,
		"tuning_mw":    n.budget.TuningPowerMW,
		"endpoints_mw": dynMW,
	}
	if n.budget.LaserDroopDB > 0 {
		breakdown["laser_droop_db"] = n.budget.LaserDroopDB
	}
	if n.regens > 0 {
		breakdown["token_regens"] = float64(n.regens)
	}
	return noc.PowerReport{
		StaticMW:  static,
		DynamicMW: dynMW,
		Breakdown: breakdown,
	}
}
