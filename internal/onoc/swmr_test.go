package onoc

import (
	"testing"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

func drainSWMR(n *SWMR, bound int) bool {
	for i := 0; i < bound && n.Busy(); i++ {
		n.Tick()
	}
	return !n.Busy()
}

func TestSWMRSingleMessage(t *testing.T) {
	n := NewSWMR(16, optCfg())
	var got *noc.Message
	n.SetDeliver(func(m *noc.Message) { got = m })
	n.Inject(&noc.Message{ID: 1, Src: 2, Dst: 9, Bytes: 64, Class: noc.ClassRequest})
	if !drainSWMR(n, 1000) {
		t.Fatal("did not drain")
	}
	// Without arbitration, the uncontended latency is exactly ZLL + the
	// one-cycle injection offset window.
	zll := n.ZeroLoadLatency(2, 9, 64)
	if got.Latency() < zll || got.Latency() > zll+2 {
		t.Fatalf("latency %d vs ZLL %d", got.Latency(), zll)
	}
}

func TestSWMRNoArbitrationBeatsMWSRAtZeroLoad(t *testing.T) {
	cfg := optCfg()
	mwsr := New(64, cfg)
	swmr := NewSWMR(64, cfg)
	// The SWMR ZLL must be strictly below MWSR's, which includes the
	// expected token wait.
	if swmr.ZeroLoadLatency(0, 32, 64) >= mwsr.ZeroLoadLatency(0, 32, 64) {
		t.Fatalf("swmr %d not faster than mwsr %d",
			swmr.ZeroLoadLatency(0, 32, 64), mwsr.ZeroLoadLatency(0, 32, 64))
	}
}

func TestSWMRSenderChannelSerializes(t *testing.T) {
	n := NewSWMR(4, optCfg())
	var arrives []sim.Tick
	n.SetDeliver(func(m *noc.Message) { arrives = append(arrives, m.Arrive) })
	// One sender, several messages to different destinations: they share
	// the sender's channel and must serialize.
	for i := 0; i < 5; i++ {
		n.Inject(&noc.Message{ID: uint64(i + 1), Src: 0, Dst: 1 + i%3, Bytes: 80, Class: noc.ClassRequest})
	}
	if !drainSWMR(n, 10_000) {
		t.Fatal("did not drain")
	}
	ser := n.SerializationCycles(80)
	for i := 1; i < len(arrives); i++ {
		if arrives[i] < arrives[0]+sim.Tick(i)*ser-2 {
			t.Fatalf("arrival %d at %d too early for serialized channel (ser=%d)", i, arrives[i], ser)
		}
	}
}

func TestSWMRDistinctSendersDontContend(t *testing.T) {
	n := NewSWMR(16, optCfg())
	var maxLat sim.Tick
	n.SetDeliver(func(m *noc.Message) {
		if m.Latency() > maxLat {
			maxLat = m.Latency()
		}
	})
	// All nodes send one message simultaneously — to distinct receivers,
	// on distinct channels: no queueing anywhere.
	for s := 0; s < 16; s++ {
		n.Inject(&noc.Message{ID: uint64(s + 1), Src: s, Dst: (s + 5) % 16, Bytes: 64, Class: noc.ClassRequest})
	}
	if !drainSWMR(n, 10_000) {
		t.Fatal("did not drain")
	}
	worstZLL := n.ZeroLoadLatency(0, 15, 64)
	if maxLat > worstZLL+2 {
		t.Fatalf("uncontended broadcast saw latency %d > ZLL bound %d", maxLat, worstZLL)
	}
}

func TestSWMRAllPairs(t *testing.T) {
	n := NewSWMR(16, optCfg())
	delivered := 0
	n.SetDeliver(func(m *noc.Message) { delivered++ })
	id := uint64(0)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			id++
			n.Inject(&noc.Message{ID: id, Src: s, Dst: d, Bytes: 48, Class: noc.ClassResponse})
		}
	}
	if !drainSWMR(n, 100_000) {
		t.Fatal("did not drain")
	}
	if delivered != 256 {
		t.Fatalf("delivered %d of 256", delivered)
	}
}

func TestSWMRLaserPowerExceedsMWSR(t *testing.T) {
	cfg := optCfg()
	mwsr := New(64, cfg)
	swmr := NewSWMR(64, cfg)
	// Broadcast splitting: the SWMR laser budget must be far above the
	// point-to-point MWSR budget; tuning stays symmetric.
	if swmr.Budget().LaserPowerMW <= 10*mwsr.Budget().LaserPowerMW {
		t.Fatalf("swmr laser %g not ≫ mwsr %g — broadcast split missing",
			swmr.Budget().LaserPowerMW, mwsr.Budget().LaserPowerMW)
	}
	if swmr.Budget().TuningPowerMW != mwsr.Budget().TuningPowerMW {
		t.Fatalf("tuning power should be symmetric: %g vs %g",
			swmr.Budget().TuningPowerMW, mwsr.Budget().TuningPowerMW)
	}
	rep := swmr.PowerReport(1000, cfg.ClockGHz)
	if rep.StaticMW <= 0 {
		t.Fatal("no static power")
	}
}

func TestSWMRDeterminism(t *testing.T) {
	run := func() sim.Tick {
		n := NewSWMR(16, optCfg())
		n.SetDeliver(func(m *noc.Message) {})
		rng := sim.NewRNG(77)
		id := uint64(0)
		for cyc := 0; cyc < 200; cyc++ {
			for s := 0; s < 16; s++ {
				if rng.Bernoulli(0.2) {
					id++
					n.Inject(&noc.Message{ID: id, Src: s, Dst: rng.Intn(16), Bytes: 8 + rng.Intn(100), Class: noc.ClassRequest})
				}
			}
			n.Tick()
		}
		drainSWMR(n, 100_000)
		return n.Now()
	}
	if run() != run() {
		t.Fatal("nondeterministic")
	}
}

func TestSWMRSelfMessage(t *testing.T) {
	n := NewSWMR(4, optCfg())
	var lat sim.Tick = -1
	n.SetDeliver(func(m *noc.Message) { lat = m.Latency() })
	n.Inject(&noc.Message{ID: 1, Src: 3, Dst: 3, Bytes: 16, Class: noc.ClassRequest})
	n.Tick()
	if lat != 1 {
		t.Fatalf("self latency = %d", lat)
	}
}

func TestSWMRConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("single-node swmr accepted")
		}
	}()
	NewSWMR(1, optCfg())
}
