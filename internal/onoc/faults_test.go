package onoc

import (
	"reflect"
	"testing"

	"onocsim/internal/config"
	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

func heavyFaults() config.Faults {
	f, err := config.FaultPreset("heavy")
	if err != nil {
		panic(err)
	}
	return f
}

// faultRun drives a faulted MWSR crossbar through a bursty schedule (long
// idle gaps between bursts, so idle-cycle skipping has real work to do) and
// records every delivery instant plus the final statistics.
type faultRun struct {
	now        sim.Tick
	deliveries map[uint64]sim.Tick
	stats      noc.Stats
}

func driveFaulted(t *testing.T, skip bool, faults config.Faults) faultRun {
	t.Helper()
	const nodes = 16
	n := NewWithFaults(nodes, optCfg(), faults, 42)
	got := map[uint64]sim.Tick{}
	n.SetDeliver(func(m *noc.Message) { got[m.ID] = n.Now() })

	type inj struct {
		t sim.Tick
		m *noc.Message
	}
	var pending []inj
	rng := sim.NewRNG(31)
	id := uint64(0)
	// Bursts every ~5k cycles, long enough to straddle several heavy-preset
	// token windows (MTBF 16k) and drift windows (MTBF 12k).
	for burst := 0; burst < 12; burst++ {
		at := sim.Tick(burst * 5_000)
		for s := 0; s < nodes; s++ {
			if rng.Bernoulli(0.5) {
				id++
				pending = append(pending, inj{at, &noc.Message{
					ID: id, Src: s, Dst: rng.Intn(nodes), Bytes: 8 + rng.Intn(120), Class: noc.ClassRequest}})
			}
		}
	}

	for steps := 0; len(pending) > 0 || n.Busy(); steps++ {
		if steps > 2_000_000 {
			t.Fatal("faulted run did not drain")
		}
		for len(pending) > 0 && pending[0].t <= n.Now() {
			n.Inject(pending[0].m)
			pending = pending[1:]
		}
		if skip {
			target := sim.Never
			if len(pending) > 0 {
				target = pending[0].t
			}
			if wake := n.NextWake(); wake < target {
				target = wake
			}
			if target > n.Now()+1 && target != sim.Never {
				n.SkipTo(target - 1)
			}
		}
		n.Tick()
	}
	return faultRun{now: n.Now(), deliveries: got, stats: *n.Stats()}
}

// TestFaultedSkipEquivalence is the core tentpole guarantee at fabric level:
// full-cycle ticking and idle-cycle skipping see the identical fault
// schedule, delivering every message at the same instant with the same
// fault counters.
func TestFaultedSkipEquivalence(t *testing.T) {
	tick := driveFaulted(t, false, heavyFaults())
	skip := driveFaulted(t, true, heavyFaults())
	if !reflect.DeepEqual(tick.deliveries, skip.deliveries) {
		t.Fatalf("delivery schedules diverge: %d vs %d messages", len(tick.deliveries), len(skip.deliveries))
	}
	if tick.stats.Faults != skip.stats.Faults {
		t.Fatalf("fault counters diverge: %+v vs %+v", tick.stats.Faults, skip.stats.Faults)
	}
	if tick.stats.Delivered != skip.stats.Delivered || tick.stats.Injected != skip.stats.Injected {
		t.Fatalf("message counters diverge")
	}
	if tick.stats.Faults.TokenLosses == 0 {
		t.Error("heavy preset drove no token losses — the equivalence test exercised nothing")
	}
	if tick.stats.Faults.DriftedSends == 0 {
		t.Error("heavy preset drove no drifted sends")
	}
}

// TestFaultedResetDeterminism pins the self-correction contract: Reset
// between rounds replays the identical fault schedule.
func TestFaultedResetDeterminism(t *testing.T) {
	n := NewWithFaults(16, optCfg(), heavyFaults(), 42)
	run := func() (sim.Tick, noc.FaultCounts) {
		n.SetDeliver(func(m *noc.Message) {})
		rng := sim.NewRNG(7)
		id := uint64(0)
		for cyc := 0; cyc < 3_000; cyc++ {
			for s := 0; s < 16; s++ {
				if rng.Bernoulli(0.05) {
					id++
					n.Inject(&noc.Message{ID: id, Src: s, Dst: rng.Intn(16), Bytes: 64, Class: noc.ClassRequest})
				}
			}
			n.Tick()
		}
		if !drain(n, 1_000_000) {
			t.Fatal("did not drain")
		}
		return n.Now(), n.Stats().Faults
	}
	t1, f1 := run()
	n.Reset()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Fatalf("rounds diverge: (%d,%+v) vs (%d,%+v)", t1, f1, t2, f2)
	}
}

// TestFaultFreePathUnchanged checks NewWithFaults with a zero section is the
// plain constructor: same delivery schedule, zero counters.
func TestFaultFreePathUnchanged(t *testing.T) {
	clean := driveFaulted(t, false, config.Faults{})
	faulted := driveFaulted(t, false, heavyFaults())
	if clean.stats.Faults != (noc.FaultCounts{}) {
		t.Fatalf("fault-free run counted faults: %+v", clean.stats.Faults)
	}
	if clean.now >= faulted.now {
		t.Logf("note: faulted run (%d) not slower than clean (%d); acceptable but unusual", faulted.now, clean.now)
	}
}

// TestSWMRDroopDerates checks laser droop shrinks the worst-case margin on
// the SWMR crossbar: long lightpaths serialize slower and the counter fires.
func TestSWMRDroopDerates(t *testing.T) {
	f := config.Faults{LaserDroopDB: 12}
	n := NewSWMRWithFaults(16, optCfg(), f, 42)
	clean := NewSWMR(16, optCfg())
	if n.DerateFactor(0, 15) <= 1 {
		t.Skip("12 dB droop leaves all paths within budget for this geometry")
	}
	if got, want := n.ZeroLoadLatency(0, 15, 256), clean.ZeroLoadLatency(0, 15, 256); got <= want {
		t.Errorf("derated zero-load latency %d not above clean %d", got, want)
	}
	n.SetDeliver(func(m *noc.Message) {})
	n.Inject(&noc.Message{ID: 1, Src: 0, Dst: 15, Bytes: 256, Class: noc.ClassRequest})
	for i := 0; i < 10_000 && n.Busy(); i++ {
		n.Tick()
	}
	if n.Stats().Faults.DeratedSends == 0 {
		t.Error("derated send not counted")
	}
}
