package onoc

import (
	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// This file implements noc.Checkpointer for both crossbars. A snapshot deep-
// copies every piece of round-trip-mutable state — clock, statistics, sender
// FIFOs, the arrival heap, token/arbitration cursors, energy counters — and
// nothing that is immutable or a pure function of the configuration: the
// photonic budget, serialization memo tables, and the lazily materialized
// fault timelines (which persist across Reset for the same reason). Messages
// are cloned on capture *and* on restore, so one snapshot can seed any number
// of replays without aliasing the pool-recycled live copies.

// cloneMsg returns an independent copy of m. Payload is carried by reference
// (it is opaque to the fabric and nil on every replay path).
func cloneMsg(m *noc.Message) *noc.Message {
	c := *m
	return &c
}

// cloneArrivals deep-copies an arrival heap; copying the slice preserves the
// heap shape.
func cloneArrivals(src arrivalHeap) arrivalHeap {
	if len(src) == 0 {
		return nil
	}
	dst := make(arrivalHeap, len(src))
	copy(dst, src)
	for i := range dst {
		dst[i].msg = cloneMsg(dst[i].msg)
	}
	return dst
}

// restoreArrivals replaces h's contents with a deep copy of src, reusing h's
// backing array when possible.
func restoreArrivals(h *arrivalHeap, src arrivalHeap) {
	q := *h
	for i := range q {
		q[i] = arrival{}
	}
	q = q[:0]
	for _, a := range src {
		a.msg = cloneMsg(a.msg)
		q = append(q, a)
	}
	*h = q
}

// srcQueueSnap is the live region of one sender FIFO, head-normalized.
type srcQueueSnap []*noc.Message

// captureQueue deep-copies the live region of q.
func captureQueue(q *srcQueue) srcQueueSnap {
	if q.empty() {
		return nil
	}
	live := q.buf[q.head:]
	out := make(srcQueueSnap, len(live))
	for i, m := range live {
		out[i] = cloneMsg(m)
	}
	return out
}

// restoreQueue replaces q's contents with a deep copy of snap. Normalizing
// head to zero is observationally identical: FIFO behavior depends only on
// the live region.
func restoreQueue(q *srcQueue, snap srcQueueSnap) {
	q.reset()
	for _, m := range snap {
		q.push(cloneMsg(m))
	}
}

// mwsrChannelSnap captures one home channel's arbitration and queue state.
type mwsrChannelSnap struct {
	queues     []srcQueueSnap // nil entries for empty FIFOs
	queued     int
	tokenPos   int
	tokenReady sim.Tick
	holdCount  int
}

// mwsrSnapshot is the MWSR crossbar's full mutable state.
type mwsrSnapshot struct {
	now      sim.Tick
	stats    *noc.Stats
	regens   uint64
	seq      uint64
	inflight int
	bitsSent uint64
	grabs    uint64
	arrivals arrivalHeap
	channels []mwsrChannelSnap
	// active lists the dsts of channels on the active list, in list order,
	// so Restore can rebuild the aliases against the target's own channels.
	active []int
}

// SnapshotAt implements noc.Snapshot.
func (s *mwsrSnapshot) SnapshotAt() sim.Tick { return s.now }

// Snapshot implements noc.Checkpointer.
func (n *Network) Snapshot() noc.Snapshot {
	s := &mwsrSnapshot{
		now:      n.now,
		stats:    n.stats.Clone(),
		regens:   n.regens,
		seq:      n.seq,
		inflight: n.inflight,
		bitsSent: n.bitsSent,
		grabs:    n.grabs,
		arrivals: cloneArrivals(n.arrivals),
		channels: make([]mwsrChannelSnap, len(n.channels)),
		active:   make([]int, len(n.active)),
	}
	for i, ch := range n.active {
		s.active[i] = ch.dst
	}
	for d, ch := range n.channels {
		cs := mwsrChannelSnap{
			queued:     ch.queued,
			tokenPos:   ch.tokenPos,
			tokenReady: ch.tokenReady,
			holdCount:  ch.holdCount,
		}
		if ch.queued > 0 {
			cs.queues = make([]srcQueueSnap, len(ch.queues))
			for src := range ch.queues {
				cs.queues[src] = captureQueue(&ch.queues[src])
			}
		}
		s.channels[d] = cs
	}
	return s
}

// Restore implements noc.Checkpointer.
func (n *Network) Restore(s noc.Snapshot) {
	snap := s.(*mwsrSnapshot)
	n.now = snap.now
	n.stats = snap.stats.Clone()
	n.regens = snap.regens
	n.seq = snap.seq
	n.inflight = snap.inflight
	n.bitsSent = snap.bitsSent
	n.grabs = snap.grabs
	restoreArrivals(&n.arrivals, snap.arrivals)
	for d, ch := range n.channels {
		cs := &snap.channels[d]
		for src := range ch.queues {
			if cs.queues != nil && cs.queues[src] != nil {
				restoreQueue(&ch.queues[src], cs.queues[src])
			} else {
				ch.queues[src].reset()
			}
		}
		ch.queued = cs.queued
		ch.tokenPos = cs.tokenPos
		ch.tokenReady = cs.tokenReady
		ch.holdCount = cs.holdCount
	}
	for i := range n.active {
		n.active[i] = nil
	}
	n.active = n.active[:0]
	for _, d := range snap.active {
		n.active = append(n.active, n.channels[d])
	}
}

// swmrSnapshot is the SWMR crossbar's full mutable state.
type swmrSnapshot struct {
	now      sim.Tick
	stats    *noc.Stats
	seq      uint64
	inflight int
	bitsSent uint64
	sends    uint64
	chanFree []sim.Tick
	queues   []srcQueueSnap
	arrivals arrivalHeap
}

// SnapshotAt implements noc.Snapshot.
func (s *swmrSnapshot) SnapshotAt() sim.Tick { return s.now }

// Snapshot implements noc.Checkpointer.
func (n *SWMR) Snapshot() noc.Snapshot {
	s := &swmrSnapshot{
		now:      n.now,
		stats:    n.stats.Clone(),
		seq:      n.seq,
		inflight: n.inflight,
		bitsSent: n.bitsSent,
		sends:    n.sends,
		chanFree: make([]sim.Tick, len(n.chanFree)),
		queues:   make([]srcQueueSnap, len(n.queues)),
		arrivals: cloneArrivals(n.arrivals),
	}
	copy(s.chanFree, n.chanFree)
	for src := range n.queues {
		s.queues[src] = captureQueue(&n.queues[src])
	}
	return s
}

// Restore implements noc.Checkpointer.
func (n *SWMR) Restore(s noc.Snapshot) {
	snap := s.(*swmrSnapshot)
	n.now = snap.now
	n.stats = snap.stats.Clone()
	n.seq = snap.seq
	n.inflight = snap.inflight
	n.bitsSent = snap.bitsSent
	n.sends = snap.sends
	copy(n.chanFree, snap.chanFree)
	for src := range n.queues {
		restoreQueue(&n.queues[src], snap.queues[src])
	}
	restoreArrivals(&n.arrivals, snap.arrivals)
}
