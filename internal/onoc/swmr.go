package onoc

import (
	"fmt"

	"onocsim/internal/config"
	"onocsim/internal/fault"
	"onocsim/internal/noc"
	"onocsim/internal/photonics"
	"onocsim/internal/sim"
)

// SWMR is the single-writer multiple-reader crossbar (Firefly-class): every
// node owns a broadcast channel that only it modulates, and every other node
// carries a receiver bank for that channel. Arbitration disappears — a
// sender serializes only behind its own earlier messages — at the price of a
// quadratic receiver-ring budget whose thermal tuning dominates static
// power. The MWSR/SWMR pair brackets the classic ONOC design space:
// arbitration latency versus static power.
type SWMR struct {
	cfg   config.Optical
	nodes int

	now      sim.Tick
	deliver  noc.DeliverFunc
	shardObs noc.ShardObsFunc
	stats    *noc.Stats

	ser serTable

	// Fault injection (see Network): thermal drift shrinks a sender
	// channel's usable WDM degree, laser droop derates over-budget
	// lightpaths. SWMR has no arbitration token, so the token fault class
	// does not apply and is ignored.
	faults   *fault.Injector
	serDrift serTable
	derate   []sim.Tick

	// chanFree[s] is the first cycle node s's send channel is free.
	chanFree []sim.Tick
	// queues[s] holds messages awaiting the channel, FIFO.
	queues   []srcQueue
	arrivals arrivalHeap
	seq      uint64
	inflight int

	devices  photonics.DeviceParams
	budget   photonics.Budget
	bitsSent uint64
	sends    uint64
}

// NewSWMR builds the broadcast crossbar for the given node count.
func NewSWMR(nodes int, cfg config.Optical) *SWMR {
	return NewSWMRWithFaults(nodes, cfg, config.Faults{}, 0)
}

// NewSWMRWithFaults builds the broadcast crossbar with deterministic fault
// injection. Token faults do not apply (no arbitration token exists) and are
// ignored; thermal drift and laser droop degrade exactly as on MWSR.
func NewSWMRWithFaults(nodes int, cfg config.Optical, faults config.Faults, seed uint64) *SWMR {
	if nodes < 2 {
		panic(fmt.Sprintf("onoc: swmr needs ≥2 nodes, got %d", nodes))
	}
	bpc := float64(cfg.WavelengthsPerChannel) * cfg.GbpsPerWavelength / cfg.ClockGHz
	if bpc <= 0 {
		panic("onoc: non-positive channel capacity")
	}
	// Drop the inapplicable token class before building the injector so a
	// token-only fault section costs nothing here.
	faults.TokenMTBF, faults.TokenTimeout = 0, 0
	n := &SWMR{
		cfg:      cfg,
		nodes:    nodes,
		stats:    noc.NewStats(),
		ser:      serTable{bitsPerCycle: bpc},
		devices:  photonics.DefaultDeviceParams(),
		faults:   fault.New(nodes, faults, seed),
		chanFree: make([]sim.Tick, nodes),
		queues:   make([]srcQueue, nodes),
	}
	geom := photonics.CrossbarGeometry{
		Nodes:                 nodes,
		WavelengthsPerChannel: cfg.WavelengthsPerChannel,
		DieEdgeCm:             cfg.DieEdgeCm,
	}
	budget, err := photonics.ComputeBudgetWithDroop(n.devices, geom, faults.LaserDroopDB)
	if err != nil {
		panic("onoc: " + err.Error())
	}
	if faults.ThermalMTBF > 0 {
		avail := cfg.WavelengthsPerChannel - int(float64(cfg.WavelengthsPerChannel)*faults.ThermalDetune)
		if avail < 1 {
			avail = 1
		}
		n.serDrift = serTable{bitsPerCycle: bpc * float64(avail) / float64(cfg.WavelengthsPerChannel)}
	}
	n.derate = derateTable(n.devices, geom, budget, faults.LaserDroopDB)
	// The ring count is symmetric with MWSR (N·(N-1) receiver banks here
	// versus N·(N-1) modulator banks there), so tuning power matches. The
	// SWMR penalty is the broadcast laser budget: every wavelength's
	// optical power must be split across all N-1 potential readers, a
	// 10·log10(N-1) dB splitting loss on top of the serpentine path, so
	// the wall-plug laser power scales by roughly the reader count.
	budget.LaserPowerMW *= float64(nodes - 1)
	n.budget = budget
	return n
}

// Nodes implements noc.Network.
func (n *SWMR) Nodes() int { return n.nodes }

// Now implements noc.Network.
func (n *SWMR) Now() sim.Tick { return n.now }

// Stats implements noc.Network. HopCount records sender-channel queueing.
func (n *SWMR) Stats() *noc.Stats { return n.stats }

// SetDeliver implements noc.Network.
func (n *SWMR) SetDeliver(fn noc.DeliverFunc) { n.deliver = fn }

// Budget exposes the resolved photonic budget.
func (n *SWMR) Budget() photonics.Budget { return n.budget }

// SerializationCycles returns the nominal (fault-free) channel occupancy of
// a payload.
func (n *SWMR) SerializationCycles(bytes int) sim.Tick {
	return n.ser.cycles(bytes)
}

// swmrSendSer mirrors Network.sendSer for the broadcast crossbar: drift on
// the sender's channel, droop derating by lightpath length.
func (n *SWMR) swmrSendSer(m *noc.Message) sim.Tick {
	var ser sim.Tick
	if n.faults.DriftAt(m.Src, n.now) {
		ser = n.serDrift.cycles(m.Bytes)
		n.stats.Faults.DriftedSends++
	} else {
		ser = n.ser.cycles(m.Bytes)
	}
	if n.derate != nil {
		if f := n.derate[(m.Dst-m.Src+n.nodes)%n.nodes]; f > 1 {
			ser *= f
			n.stats.Faults.DeratedSends++
		}
	}
	return ser
}

// DerateFactor returns the droop-induced serialization multiplier for the
// src→dst lightpath (1 when it closes at full rate).
func (n *SWMR) DerateFactor(src, dst int) sim.Tick {
	if n.derate == nil || src == dst {
		return 1
	}
	return n.derate[(dst-src+n.nodes)%n.nodes]
}

// propagation mirrors the MWSR serpentine distance model.
func (n *SWMR) propagation(src, dst int) sim.Tick {
	hops := (dst - src + n.nodes) % n.nodes
	p := sim.Tick(int64(hops) * n.cfg.PropagationCyclesAcross / int64(n.nodes))
	if p < 1 {
		p = 1
	}
	return p
}

// Inject implements noc.Network.
func (n *SWMR) Inject(m *noc.Message) {
	if m.Src < 0 || m.Src >= n.nodes || m.Dst < 0 || m.Dst >= n.nodes {
		panic(fmt.Sprintf("onoc: swmr message %d endpoints (%d->%d) out of range [0,%d)", m.ID, m.Src, m.Dst, n.nodes))
	}
	m.Inject = n.now
	n.stats.Injected++
	n.inflight++
	if m.Src == m.Dst {
		n.seq++
		n.arrivals.push(arrival{at: n.now + 1, seq: n.seq, msg: m})
		return
	}
	n.queues[m.Src].push(m)
}

// Tick implements noc.Network.
func (n *SWMR) Tick() {
	n.now++
	for len(n.arrivals) > 0 && n.arrivals[0].at <= n.now {
		a := n.arrivals.pop()
		a.msg.Arrive = n.now
		n.stats.RecordDelivery(a.msg)
		n.inflight--
		if n.deliver != nil {
			n.deliver(a.msg)
		}
	}
	for s := 0; s < n.nodes; s++ {
		if n.queues[s].empty() || n.chanFree[s] > n.now {
			continue
		}
		m := n.queues[s].pop()
		ser := n.swmrSendSer(m)
		oe := sim.Tick(n.cfg.OEOverheadCycles)
		wait := n.now - m.Inject
		n.stats.HopCount.Add(float64(wait))
		n.stats.QueueDelay.Add(float64(wait))
		if n.shardObs != nil {
			n.shardObs(m.ID, noc.ShardObs{Start: n.now, Queue: float64(wait)})
		}
		n.seq++
		n.arrivals.push(arrival{at: n.now + oe + ser + n.propagation(m.Src, m.Dst), seq: n.seq, msg: m})
		n.chanFree[s] = n.now + ser
		n.bitsSent += uint64(m.Bytes) * 8
		n.sends++
	}
}

// Busy implements noc.Network.
func (n *SWMR) Busy() bool { return n.inflight > 0 }

// Lookahead implements noc.Network: an uncontended send still pays O/E
// conversion plus at least one cycle each of serialization and propagation.
func (n *SWMR) Lookahead() sim.Tick {
	la := sim.Tick(n.cfg.OEOverheadCycles) + 2
	if la < 1 {
		la = 1
	}
	return la
}

// ShardNode implements noc.ScheduleShardable. A message's only stateful
// resources — the sender's broadcast channel and FIFO — belong to its source.
func (n *SWMR) ShardNode(src, dst int) int { return src }

// SetShardObs implements noc.ScheduleShardable. Like the delivery callback,
// the sink survives Reset.
func (n *SWMR) SetShardObs(fn noc.ShardObsFunc) { n.shardObs = fn }

// SeqOrder implements noc.ScheduleShardable: seq is assigned at transmit
// start (self-messages at Inject) and Tick scans senders in ascending source
// order, so same-cycle deliveries complete in transmit-start order,
// tie-broken by source.
func (n *SWMR) SeqOrder() noc.SeqOrder { return noc.SeqByService }

// NextWake implements noc.Network. With no arbitration there is no hidden
// per-cycle state: the next observable action is either the earliest
// arrival or the first cycle a backlogged sender's channel frees up, both
// known exactly.
func (n *SWMR) NextWake() sim.Tick {
	wake := noc.Never
	if len(n.arrivals) > 0 {
		wake = n.arrivals[0].at
	}
	for s := 0; s < n.nodes; s++ {
		if n.queues[s].empty() {
			continue
		}
		next := n.chanFree[s]
		if next < n.now+1 {
			next = n.now + 1
		}
		if next < wake {
			wake = next
		}
	}
	return wake
}

// SkipTo implements noc.Network. chanFree and arrival times are absolute,
// so the skip is a pure clock jump.
func (n *SWMR) SkipTo(t sim.Tick) {
	if t > n.now {
		n.now = t
	}
}

// Reset implements noc.Resettable.
func (n *SWMR) Reset() {
	n.now = 0
	n.stats = noc.NewStats()
	n.arrivals = n.arrivals[:0]
	n.seq = 0
	n.inflight = 0
	n.bitsSent = 0
	n.sends = 0
	for s := range n.queues {
		n.queues[s].reset()
		n.chanFree[s] = 0
	}
}

// ZeroLoadLatency implements noc.Network: no arbitration wait at all.
func (n *SWMR) ZeroLoadLatency(src, dst, bytes int) sim.Tick {
	if src == dst {
		return 1
	}
	ser := n.SerializationCycles(bytes)
	if n.derate != nil {
		ser *= n.DerateFactor(src, dst) // static droop shifts the expectation
	}
	return sim.Tick(n.cfg.OEOverheadCycles) + ser + n.propagation(src, dst)
}

// PowerReport implements noc.Network.
func (n *SWMR) PowerReport(elapsed sim.Tick, clockGHz float64) noc.PowerReport {
	seconds := float64(elapsed) / (clockGHz * 1e9)
	dynPJ := n.devices.DynamicEnergyPJ(int64(n.bitsSent))
	dynMW := 0.0
	if seconds > 0 {
		dynMW = dynPJ * 1e-9 / seconds
	}
	static := n.budget.LaserPowerMW + n.budget.TuningPowerMW
	breakdown := map[string]float64{
		"laser_mw":     n.budget.LaserPowerMW,
		"tuning_mw":    n.budget.TuningPowerMW,
		"endpoints_mw": dynMW,
	}
	if n.budget.LaserDroopDB > 0 {
		breakdown["laser_droop_db"] = n.budget.LaserDroopDB
	}
	return noc.PowerReport{
		StaticMW:  static,
		DynamicMW: dynMW,
		Breakdown: breakdown,
	}
}
