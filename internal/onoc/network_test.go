package onoc

import (
	"testing"

	"onocsim/internal/config"
	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

func optCfg() config.Optical { return config.Default().Optical }

func drain(n *Network, bound int) bool {
	for i := 0; i < bound && n.Busy(); i++ {
		n.Tick()
	}
	return !n.Busy()
}

func TestSerializationCycles(t *testing.T) {
	cfg := optCfg() // 16 λ × 10 Gbps / 2 GHz = 80 bits/cycle
	n := New(4, cfg)
	cases := []struct {
		bytes int
		want  sim.Tick
	}{
		{1, 1},  // 8 bits
		{10, 1}, // 80 bits exactly
		{11, 2}, // 88 bits
		{80, 8}, // 640 bits
		{1000, 100},
	}
	for _, c := range cases {
		if got := n.SerializationCycles(c.bytes); got != c.want {
			t.Errorf("SerializationCycles(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestPropagationScalesWithDistance(t *testing.T) {
	n := New(16, optCfg())
	near := n.propagation(4, 5) // 1 hop downstream
	far := n.propagation(5, 4)  // 15 hops around the serpentine
	if near < 1 {
		t.Fatal("propagation must be at least one cycle")
	}
	if far <= near {
		t.Fatalf("far propagation %d not > near %d", far, near)
	}
}

func TestSingleMessageDelivery(t *testing.T) {
	n := New(16, optCfg())
	var got *noc.Message
	n.SetDeliver(func(m *noc.Message) { got = m })
	n.Inject(&noc.Message{ID: 1, Src: 2, Dst: 9, Bytes: 64, Class: noc.ClassRequest})
	if !drain(n, 1000) {
		t.Fatal("did not drain")
	}
	if got == nil {
		t.Fatal("no delivery")
	}
	// Latency = token wait + OE + serialization + propagation; bounded by
	// a full token circulation plus constants.
	maxLat := sim.Tick(16*int64(optCfg().TokenHopCycles)) +
		sim.Tick(optCfg().OEOverheadCycles) + n.SerializationCycles(64) +
		sim.Tick(optCfg().PropagationCyclesAcross) + 2
	if got.Latency() < 3 || got.Latency() > maxLat {
		t.Fatalf("latency %d outside (3, %d]", got.Latency(), maxLat)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	n := New(16, optCfg())
	delivered := 0
	n.SetDeliver(func(m *noc.Message) {
		delivered++
		if m.Dst != int(m.ID-1)%16 {
			t.Errorf("message %d delivered to wrong node %d", m.ID, m.Dst)
		}
	})
	id := uint64(0)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			id++
			n.Inject(&noc.Message{ID: id, Src: s, Dst: d, Bytes: 48, Class: noc.ClassResponse})
		}
	}
	if !drain(n, 100_000) {
		t.Fatal("did not drain")
	}
	if delivered != 256 {
		t.Fatalf("delivered %d of 256", delivered)
	}
}

func TestChannelSerializesConcurrentWriters(t *testing.T) {
	// All 15 other nodes write to node 0's channel simultaneously: the
	// channel must serialize, so the span between first and last arrival
	// is at least (writers-1) × serialization.
	n := New(16, optCfg())
	var first, last sim.Tick
	count := 0
	n.SetDeliver(func(m *noc.Message) {
		if count == 0 {
			first = m.Arrive
		}
		last = m.Arrive
		count++
	})
	for s := 1; s < 16; s++ {
		n.Inject(&noc.Message{ID: uint64(s), Src: s, Dst: 0, Bytes: 80, Class: noc.ClassRequest})
	}
	if !drain(n, 100_000) {
		t.Fatal("did not drain")
	}
	ser := n.SerializationCycles(80)
	if span := last - first; span < sim.Tick(14)*ser {
		t.Fatalf("hotspot span %d < %d — channel did not serialize", span, 14*int(ser))
	}
}

func TestMaxTokenHoldPreventsStarvation(t *testing.T) {
	cfg := optCfg()
	cfg.MaxTokenHold = 2
	n := New(4, cfg)
	// Node 1 floods node 0's channel; node 3 sends one message. With the
	// hold bound, node 3 must get through long before the flood ends.
	var arrivals []uint64
	n.SetDeliver(func(m *noc.Message) { arrivals = append(arrivals, m.ID) })
	for i := 0; i < 50; i++ {
		n.Inject(&noc.Message{ID: uint64(i + 100), Src: 1, Dst: 0, Bytes: 80, Class: noc.ClassRequest})
	}
	n.Inject(&noc.Message{ID: 1, Src: 3, Dst: 0, Bytes: 80, Class: noc.ClassRequest})
	if !drain(n, 100_000) {
		t.Fatal("did not drain")
	}
	pos := -1
	for i, id := range arrivals {
		if id == 1 {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("victim message never arrived")
	}
	if pos > 10 {
		t.Fatalf("victim message arrived at position %d of %d — starved", pos, len(arrivals))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Tick, float64) {
		n := New(16, optCfg())
		n.SetDeliver(func(m *noc.Message) {})
		rng := sim.NewRNG(31)
		id := uint64(0)
		for cyc := 0; cyc < 200; cyc++ {
			for s := 0; s < 16; s++ {
				if rng.Bernoulli(0.2) {
					id++
					n.Inject(&noc.Message{ID: id, Src: s, Dst: rng.Intn(16), Bytes: 8 + rng.Intn(120), Class: noc.ClassRequest})
				}
			}
			n.Tick()
		}
		drain(n, 100_000)
		return n.Now(), n.Stats().Latency.Mean()
	}
	t1, l1 := run()
	t2, l2 := run()
	if t1 != t2 || l1 != l2 {
		t.Fatalf("nondeterministic: (%d,%g) vs (%d,%g)", t1, l1, t2, l2)
	}
}

func TestSelfMessage(t *testing.T) {
	n := New(4, optCfg())
	var lat sim.Tick = -1
	n.SetDeliver(func(m *noc.Message) { lat = m.Latency() })
	n.Inject(&noc.Message{ID: 1, Src: 2, Dst: 2, Bytes: 64, Class: noc.ClassRequest})
	n.Tick()
	if lat != 1 {
		t.Fatalf("self-message latency = %d, want 1", lat)
	}
}

func TestZeroLoadLatencyShape(t *testing.T) {
	n := New(64, optCfg())
	if n.ZeroLoadLatency(3, 3, 64) != 1 {
		t.Fatal("self ZLL should be 1")
	}
	if n.ZeroLoadLatency(0, 1, 16) >= n.ZeroLoadLatency(0, 1, 4096) {
		t.Fatal("ZLL not increasing with size")
	}
	// Unlike the mesh, the crossbar's ZLL is dominated by token wait and
	// serialization, not hop distance — near and far differ only by
	// propagation.
	diff := n.ZeroLoadLatency(0, 32, 64) - n.ZeroLoadLatency(0, 1, 64)
	if diff < 0 || diff > sim.Tick(optCfg().PropagationCyclesAcross) {
		t.Fatalf("distance sensitivity %d outside propagation budget", diff)
	}
}

func TestPowerReportBudget(t *testing.T) {
	n := New(64, optCfg())
	n.SetDeliver(func(m *noc.Message) {})
	for i := 0; i < 64; i++ {
		n.Inject(&noc.Message{ID: uint64(i + 1), Src: i, Dst: (i + 1) % 64, Bytes: 256, Class: noc.ClassRequest})
	}
	drain(n, 100_000)
	rep := n.PowerReport(n.Now(), optCfg().ClockGHz)
	if rep.StaticMW <= 0 || rep.DynamicMW <= 0 {
		t.Fatalf("power report: %+v", rep)
	}
	if rep.Breakdown["laser_mw"] <= 0 || rep.Breakdown["tuning_mw"] <= 0 {
		t.Fatal("missing laser/tuning breakdown")
	}
	// The crossbar's hallmark: static dominates dynamic at this load.
	if rep.StaticMW < rep.DynamicMW {
		t.Fatalf("expected static-dominated power, got static=%g dynamic=%g", rep.StaticMW, rep.DynamicMW)
	}
	b := n.Budget()
	if b.TotalRings != 64*63*16+64*16 {
		t.Fatalf("ring count = %d", b.TotalRings)
	}
}

func TestTokenWaitRecordedInHopCount(t *testing.T) {
	n := New(16, optCfg())
	n.SetDeliver(func(m *noc.Message) {})
	for s := 1; s < 8; s++ {
		n.Inject(&noc.Message{ID: uint64(s), Src: s, Dst: 0, Bytes: 80, Class: noc.ClassRequest})
	}
	drain(n, 100_000)
	if n.Stats().HopCount.Count() != 7 {
		t.Fatalf("token wait samples = %d", n.Stats().HopCount.Count())
	}
	if n.Stats().HopCount.Max() <= n.Stats().HopCount.Min() {
		t.Fatal("contending writers should see different token waits")
	}
}

func TestConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("single-node crossbar accepted")
		}
	}()
	New(1, optCfg())
}

func TestChannelConservation(t *testing.T) {
	// Every injected (non-self) message grabs the token exactly once and
	// its bits are accounted once.
	n := New(16, optCfg())
	n.SetDeliver(func(m *noc.Message) {})
	var bytes uint64
	rng := sim.NewRNG(43)
	injected := uint64(0)
	for k := 0; k < 20; k++ {
		for s := 0; s < 16; s++ {
			d := rng.Intn(16)
			if d == s {
				continue
			}
			sz := 8 + rng.Intn(200)
			n.Inject(&noc.Message{ID: uint64(k*16 + s + 1), Src: s, Dst: d, Bytes: sz, Class: noc.ClassRequest})
			bytes += uint64(sz)
			injected++
		}
	}
	if !drain(n, 200_000) {
		t.Fatal("did not drain")
	}
	if n.grabs != injected {
		t.Fatalf("token grabs %d != injected %d", n.grabs, injected)
	}
	if n.bitsSent != bytes*8 {
		t.Fatalf("bits sent %d != injected bits %d", n.bitsSent, bytes*8)
	}
	for _, ch := range n.channels {
		if ch.queued != 0 {
			t.Fatalf("channel %d still queues %d", ch.dst, ch.queued)
		}
	}
}
