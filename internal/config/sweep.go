package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Sweep is a design-space sweep specification: the cross product of its axes
// is expanded into one job per point ("arm"). The spec is deliberately a
// plain value — the expansion, pruning and Pareto machinery live in
// internal/sweep; this package only knows how to validate the grid against
// the same invariants Config.Validate enforces per point, so a bad axis is
// rejected before any of the hundreds of arms is built.
type Sweep struct {
	// Name labels the sweep in reports; defaults to "sweep".
	Name string `json:"name"`
	// Networks lists the target fabrics (electrical, optical, hybrid;
	// ideal is allowed but rarely interesting).
	Networks []NetworkKind `json:"networks"`
	// Cores lists system sizes; every entry must be a perfect square, and
	// a power of two when the fft kernel is in Kernels.
	Cores []int `json:"cores"`
	// Wavelengths lists WDM degrees (1..128). Electrical arms ignore the
	// axis, and the fingerprint-level dedup collapses them accordingly.
	Wavelengths []int `json:"wavelengths"`
	// Faults lists fault preset names (off, light, heavy).
	Faults []string `json:"faults"`
	// Kernels lists workload kernels (fft, lu, stencil, sort, reduce).
	Kernels []string `json:"kernels"`
	// Quick shrinks every arm's kernel to the quick problem size (scale 4,
	// 2 iterations), same as the experiment runner's -quick.
	Quick bool `json:"quick"`
	// PruneMargin is the analytic-prefilter dominance margin m: an arm is
	// pruned without simulation when another arm's estimate is at least a
	// factor (1+m) better on latency and throughput and no worse on
	// power. 0 means the default 0.20; negative disables pruning.
	PruneMargin float64 `json:"prune_margin"`
	// Seed drives every arm's RNG streams; 0 means 42.
	Seed uint64 `json:"seed"`
}

// DefaultSweep returns the standard quick grid: 3 fabrics x 2 system sizes
// x 3 WDM degrees x 2 fault presets x 2 kernels = 72 arms.
func DefaultSweep() Sweep {
	return Sweep{
		Name:        "sweep",
		Networks:    []NetworkKind{NetElectrical, NetOptical, NetHybrid},
		Cores:       []int{16, 64},
		Wavelengths: []int{4, 16, 64},
		Faults:      []string{"off", "heavy"},
		Kernels:     []string{"stencil", "fft"},
		Quick:       true,
	}
}

// Normalize fills defaulted fields in place and returns the spec for
// chaining. Empty axes default to the DefaultSweep axis.
func (s *Sweep) Normalize() *Sweep {
	def := DefaultSweep()
	if s.Name == "" {
		s.Name = def.Name
	}
	if len(s.Networks) == 0 {
		s.Networks = def.Networks
	}
	if len(s.Cores) == 0 {
		s.Cores = def.Cores
	}
	if len(s.Wavelengths) == 0 {
		s.Wavelengths = def.Wavelengths
	}
	if len(s.Faults) == 0 {
		s.Faults = def.Faults
	}
	if len(s.Kernels) == 0 {
		s.Kernels = def.Kernels
	}
	if s.PruneMargin == 0 {
		s.PruneMargin = 0.20
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	return s
}

// Arms returns the grid size: the product of the axis lengths.
func (s Sweep) Arms() int {
	return len(s.Networks) * len(s.Cores) * len(s.Wavelengths) * len(s.Faults) * len(s.Kernels)
}

// Validate checks every axis value against the per-point config invariants,
// so expansion cannot produce an invalid arm. Call Normalize first; empty
// axes are rejected here.
func (s Sweep) Validate() error {
	if len(s.Networks) == 0 || len(s.Cores) == 0 || len(s.Wavelengths) == 0 ||
		len(s.Faults) == 0 || len(s.Kernels) == 0 {
		return fmt.Errorf("config: sweep has an empty axis (normalize first, or fill networks/cores/wavelengths/faults/kernels)")
	}
	for _, k := range s.Networks {
		switch k {
		case NetElectrical, NetOptical, NetIdeal, NetHybrid:
		default:
			return fmt.Errorf("config: sweep network %q unknown", k)
		}
	}
	needPow2 := false
	for _, kern := range s.Kernels {
		switch kern {
		case "fft":
			needPow2 = true
		case "lu", "stencil", "sort", "reduce":
		default:
			return fmt.Errorf("config: sweep kernel %q unknown (want fft, lu, stencil, sort, or reduce)", kern)
		}
	}
	for _, c := range s.Cores {
		if c < 4 || !isSquare(c) {
			return fmt.Errorf("config: sweep cores %d must be a perfect square >= 4", c)
		}
		if needPow2 && !isPow2(c) {
			return fmt.Errorf("config: sweep cores %d must be a power of two when the fft kernel is swept", c)
		}
	}
	for _, w := range s.Wavelengths {
		if w < 1 || w > 128 {
			return fmt.Errorf("config: sweep wavelengths %d out of range [1,128]", w)
		}
	}
	for _, f := range s.Faults {
		if _, err := FaultPreset(f); err != nil {
			return fmt.Errorf("config: sweep %w", err)
		}
	}
	if s.PruneMargin >= 1 {
		return fmt.Errorf("config: sweep prune_margin %.2f must be below 1", s.PruneMargin)
	}
	return nil
}

// ParseSweep decodes and validates a JSON sweep spec, rejecting unknown
// fields (typoed axis names would otherwise silently sweep the default).
func ParseSweep(data []byte) (Sweep, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Sweep
	if err := dec.Decode(&s); err != nil {
		return Sweep{}, fmt.Errorf("config: parse sweep: %w", err)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return Sweep{}, err
	}
	return s, nil
}

// LoadSweep reads and validates a JSON sweep spec file.
func LoadSweep(path string) (Sweep, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Sweep{}, fmt.Errorf("config: read sweep %s: %w", path, err)
	}
	return ParseSweep(data)
}
