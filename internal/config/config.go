// Package config defines the JSON-serializable configuration schema for
// every simulator in onocsim and validates it. One Config describes a
// complete experiment: the chip (cores, caches), the interconnect (electrical
// mesh or optical crossbar), the workload, and the self-correction trace
// model parameters.
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// NetworkKind selects which interconnect model a simulation uses.
type NetworkKind string

const (
	// NetElectrical is the baseline wormhole virtual-channel mesh.
	NetElectrical NetworkKind = "electrical"
	// NetOptical is the wavelength-routed photonic crossbar.
	NetOptical NetworkKind = "optical"
	// NetIdeal is a contention-free fixed-latency network used as the
	// cheap reference fabric for trace capture.
	NetIdeal NetworkKind = "ideal"
	// NetHybrid is the path-adaptive opto-electronic fabric: short hops
	// ride the mesh, long hops the crossbar.
	NetHybrid NetworkKind = "hybrid"
)

// Config is the root configuration object.
type Config struct {
	// Name labels the experiment in reports.
	Name string `json:"name"`
	// Seed drives every RNG stream in the simulation.
	Seed uint64 `json:"seed"`

	System   System   `json:"system"`
	Mesh     Mesh     `json:"mesh"`
	Optical  Optical  `json:"optical"`
	Ideal    Ideal    `json:"ideal"`
	Hybrid   Hybrid   `json:"hybrid"`
	Workload Workload `json:"workload"`
	SCTM     SCTM     `json:"sctm"`

	// Network selects the interconnect under study.
	Network NetworkKind `json:"network"`
	// MaxCycles bounds any single simulation; 0 means the package default
	// (a safety net against livelocked protocols, not a tuning knob).
	MaxCycles int64 `json:"max_cycles"`

	// Faults configures deterministic optical fault injection; the zero
	// value disables it entirely.
	Faults Faults `json:"faults"`

	// Parallelism tunes intra-run execution; it can never change results.
	Parallelism Parallelism `json:"parallelism"`
}

// Faults configures deterministic fault injection in the photonic fabrics
// (internal/fault). Every schedule derives from Seed plus these parameters
// alone, so the same (seed, faults) pair always yields the same fault
// timeline — on any host, for any shard count. The zero value means "no
// faults" and, uniquely, is omitted from Fingerprint so pre-existing cached
// results for fault-free configs stay valid.
type Faults struct {
	// ThermalMTBF is the mean number of cycles between thermal drift
	// windows on each optical channel's ring bank; 0 disables the class.
	ThermalMTBF int64 `json:"thermal_mtbf"`
	// ThermalDuration is how many cycles one drift window lasts.
	ThermalDuration int64 `json:"thermal_duration"`
	// ThermalDetune is the fraction of a channel's wavelengths detuned
	// (unusable) while a drift window is active, in (0,1]. At least one
	// wavelength always survives, so degradation is graceful.
	ThermalDetune float64 `json:"thermal_detune"`
	// TokenMTBF is the mean number of cycles between lost-token events on
	// each MWSR home channel; 0 disables the class. The SWMR crossbar has
	// no arbitration token and ignores this class.
	TokenMTBF int64 `json:"token_mtbf"`
	// TokenTimeout is the recovery latency: a channel whose token is lost
	// stalls until the timeout fires and a fresh token is regenerated at
	// the home node.
	TokenTimeout int64 `json:"token_timeout"`
	// LaserDroopDB shrinks the worst-case optical link margin by this many
	// dB. Lightpaths whose loss exceeds the shrunken budget are derated
	// (modulation rate halved per 3 dB of excess); the hybrid fabric
	// reroutes such pairs over the electrical mesh instead.
	LaserDroopDB float64 `json:"laser_droop_db"`
}

// Enabled reports whether any fault class is active.
func (f Faults) Enabled() bool {
	return f.ThermalMTBF > 0 || f.TokenMTBF > 0 || f.LaserDroopDB > 0
}

// FaultPreset returns a named fault configuration for the CLI -faults flag:
// "off" (or "none") disables injection, "light" models occasional transients,
// "heavy" models a chip near the edge of its thermal and power envelope.
func FaultPreset(name string) (Faults, error) {
	switch name {
	case "", "off", "none":
		return Faults{}, nil
	case "light":
		return Faults{
			ThermalMTBF:     40_000,
			ThermalDuration: 2_000,
			ThermalDetune:   0.5,
			TokenMTBF:       60_000,
			TokenTimeout:    250,
			LaserDroopDB:    1,
		}, nil
	case "heavy":
		return Faults{
			ThermalMTBF:     12_000,
			ThermalDuration: 4_000,
			ThermalDetune:   0.75,
			TokenMTBF:       16_000,
			TokenTimeout:    600,
			LaserDroopDB:    3,
		}, nil
	default:
		return Faults{}, fmt.Errorf("config: unknown fault preset %q (want off, light, or heavy)", name)
	}
}

// Parallelism configures deterministic intra-run parallel execution. It is a
// pure wall-clock knob: the sharded engine is byte-identical to the serial
// one for any shard count, which is why this section is excluded from
// Fingerprint — cached results remain valid whatever the setting.
type Parallelism struct {
	// Shards is the number of conservative-lookahead shards replay-style
	// simulations run across. 0 and 1 both mean serial; the effective
	// count is clamped to the node count, and fabrics whose traffic does
	// not factorize per node (the wormhole mesh, the hybrid fabric) fall
	// back to serial regardless.
	Shards int `json:"shards"`
	// Stream replays traces through the streaming decoder instead of
	// materializing them in memory. Like Shards, it is an execution
	// detail: streaming replay is byte-identical to in-memory replay, so
	// the flag (and WindowEvents) stays out of Fingerprint and cached
	// results remain valid whichever path produced them.
	Stream bool `json:"stream,omitempty"`
	// WindowEvents bounds how many decoded-but-not-yet-injectable events a
	// streaming replay keeps resident. 0 selects the default window
	// (trace.DefaultWindow); -1 lifts the bound. A schedule needing more
	// residency than the window fails with an error naming the required
	// size — never a deadlock, never a silently wrong result.
	WindowEvents int `json:"window_events,omitempty"`
}

// System describes the CMP substrate: core count and the cache hierarchy.
type System struct {
	// Cores is the number of processing cores; it must be a positive
	// perfect square so cores tile the 2-D mesh used by both fabrics.
	Cores int `json:"cores"`
	// L1Sets, L1Ways, L1LineBytes size the private L1 data cache.
	L1Sets      int `json:"l1_sets"`
	L1Ways      int `json:"l1_ways"`
	L1LineBytes int `json:"l1_line_bytes"`
	// L2SetsPerBank, L2Ways size each distributed shared-L2 bank (one
	// bank per core tile, S-NUCA address interleaving).
	L2SetsPerBank int `json:"l2_sets_per_bank"`
	L2Ways        int `json:"l2_ways"`
	// L2HitCycles is the bank access latency.
	L2HitCycles int64 `json:"l2_hit_cycles"`
	// MemCycles is the off-chip memory access latency beyond L2.
	MemCycles int64 `json:"mem_cycles"`
	// CtrlBytes and DataBytes are the network payload sizes of a control
	// message (request/ack/inv) and a data-bearing message.
	CtrlBytes int `json:"ctrl_bytes"`
	DataBytes int `json:"data_bytes"`
	// MemPorts places that many memory controllers at the chip corners
	// (0–4). With 0 (the default), off-chip latency is folded into the
	// home bank; with ≥1, every L2 data miss becomes real request/response
	// traffic to a controller tile — the memory-bound traffic pattern
	// photonic interconnects are usually pitched at.
	MemPorts int `json:"mem_ports"`
}

// Mesh configures the baseline electrical NoC.
type Mesh struct {
	// Topology selects "mesh" (default) or "torus" (wraparound links with
	// dateline virtual-channel deadlock avoidance; requires xy routing and
	// at least two VCs per message class).
	Topology string `json:"topology"`
	// VCs is the number of virtual channels per physical port.
	VCs int `json:"vcs"`
	// BufDepth is flit buffer depth per VC.
	BufDepth int `json:"buf_depth"`
	// FlitBytes is the physical link width per cycle.
	FlitBytes int `json:"flit_bytes"`
	// RouterStages is the per-hop router pipeline latency in cycles.
	RouterStages int64 `json:"router_stages"`
	// LinkCycles is the per-hop wire traversal latency in cycles.
	LinkCycles int64 `json:"link_cycles"`
	// Routing selects "xy" (deterministic) or "westfirst" (partially
	// adaptive, deadlock-free turn model).
	Routing string `json:"routing"`
	// ClockGHz is the electrical network clock, used to convert cycle
	// counts into seconds for the mesh power report. It may differ from
	// the optical system clock when the fabrics are clocked independently.
	ClockGHz float64 `json:"clock_ghz"`
}

// Optical configures the photonic crossbar (Corona-class MWSR).
type Optical struct {
	// Architecture selects the crossbar organization: "mwsr" (Corona:
	// token-arbitrated home channels, the default) or "swmr" (Firefly:
	// per-sender broadcast channels, no arbitration, quadratic receivers).
	Architecture string `json:"architecture"`
	// WavelengthsPerChannel is the WDM degree of each home channel.
	WavelengthsPerChannel int `json:"wavelengths_per_channel"`
	// GbpsPerWavelength is the modulation rate of one wavelength.
	GbpsPerWavelength float64 `json:"gbps_per_wavelength"`
	// ClockGHz is the system clock used to convert line rate into
	// bits-per-cycle channel capacity.
	ClockGHz float64 `json:"clock_ghz"`
	// TokenHopCycles is the token circulation delay between adjacent
	// nodes on the arbitration waveguide.
	TokenHopCycles int64 `json:"token_hop_cycles"`
	// PropagationCyclesAcross is the light propagation time across the
	// full die (worst case); per-pair delay scales with hop distance.
	PropagationCyclesAcross int64 `json:"propagation_cycles_across"`
	// OEOverheadCycles is modulation + detection + serdes overhead per
	// message at the endpoints.
	OEOverheadCycles int64 `json:"oe_overhead_cycles"`
	// MaxTokenHold bounds how many packets a node may send back-to-back
	// while holding a channel token, preventing starvation under hotspot
	// traffic.
	MaxTokenHold int `json:"max_token_hold"`
	// DieEdgeCm is the physical die edge used by the loss budget.
	DieEdgeCm float64 `json:"die_edge_cm"`
}

// Hybrid configures the path-adaptive opto-electronic fabric.
type Hybrid struct {
	// Threshold is the minimum Manhattan hop distance routed optically;
	// shorter paths ride the electrical mesh.
	Threshold int `json:"threshold"`
}

// Ideal configures the contention-free reference network.
type Ideal struct {
	// LatencyCycles is the fixed end-to-end message latency.
	LatencyCycles int64 `json:"latency_cycles"`
	// BytesPerCycle is the per-node injection bandwidth cap; 0 disables
	// the cap entirely.
	BytesPerCycle int `json:"bytes_per_cycle"`
}

// WorkloadKind names a traffic source.
type WorkloadKind string

const (
	WorkloadSynthetic WorkloadKind = "synthetic"
	WorkloadKernel    WorkloadKind = "kernel"
)

// Workload selects and parameterizes the traffic.
type Workload struct {
	Kind WorkloadKind `json:"kind"`

	// Synthetic traffic parameters.
	// Pattern is one of uniform, transpose, hotspot, bitcomplement,
	// neighbor, tornado.
	Pattern string `json:"pattern"`
	// InjectionRate is flits/node/cycle offered load (electrical flit
	// granularity is used for both fabrics so loads are comparable).
	InjectionRate float64 `json:"injection_rate"`
	// PacketBytes is the synthetic packet payload size.
	PacketBytes int `json:"packet_bytes"`
	// Packets is the total number of packets to inject per node.
	Packets int `json:"packets"`

	// Kernel parameters.
	// Kernel is one of fft, lu, stencil, sort.
	Kernel string `json:"kernel"`
	// Scale sets the kernel problem size (kernel-specific meaning:
	// FFT points per core, LU matrix blocks, stencil block edge, sort
	// keys per core).
	Scale int `json:"scale"`
	// Iterations repeats iterative kernels (stencil sweeps).
	Iterations int `json:"iterations"`
	// ComputeScale multiplies every modelled compute gap, emulating
	// faster or slower cores relative to the network.
	ComputeScale float64 `json:"compute_scale"`
	// Jitter adds seed-driven per-operation compute variation of ±Jitter
	// (fraction, 0 disables), modelling input-dependent work. The R16
	// experiment uses it to test seed robustness.
	Jitter float64 `json:"jitter"`
}

// SCTM parameterizes the self-correction trace model.
type SCTM struct {
	// MaxIterations bounds the correction fixpoint loop.
	MaxIterations int `json:"max_iterations"`
	// ToleranceCycles stops iterating when the largest absolute change
	// of any event's injection time falls to or below this value.
	ToleranceCycles int64 `json:"tolerance_cycles"`
	// InitialLatencyCycles seeds round 0 latency estimates; 0 means use
	// the target network's zero-load estimate.
	InitialLatencyCycles int64 `json:"initial_latency_cycles"`
	// Damping blends each round's measured latencies with the previous
	// estimates (0 = take measurements verbatim, 0.5 = halfway). The R8
	// family of ablations sweeps it; the default is off because verbatim
	// feedback reaches low makespan error fastest on our workloads.
	Damping float64 `json:"damping"`
	// MakespanTolerance is the relative makespan change between
	// consecutive rounds below which the loop is declared converged
	// (the per-event schedule keeps jittering under contention long
	// after the aggregate stabilizes). 0 disables the criterion.
	MakespanTolerance float64 `json:"makespan_tolerance"`
	// DisableSyncDeps / DisableCausalDeps ablate dependency classes
	// (experiment R8); production use leaves both false.
	DisableSyncDeps   bool `json:"disable_sync_deps"`
	DisableCausalDeps bool `json:"disable_causal_deps"`
	// Seed selects the round-0 latency seeding strategy:
	//
	//   ""         legacy behavior: "fixed" when InitialLatencyCycles > 0,
	//              otherwise "zeroload".
	//   "zeroload" per-event ZeroLoadLatency on the target fabric.
	//   "analytic" closed-form contention-aware estimate (internal/analytic),
	//              falling back to zero-load when the estimator declines.
	//   "fixed"    the constant InitialLatencyCycles for every event.
	//
	// The empty default is deliberately excluded from Fingerprint so cached
	// results from earlier schema versions stay addressable.
	Seed string `json:"seed,omitempty"`
	// Incremental resumes each correction round from a frozen-prefix
	// checkpoint of the previous round instead of replaying from cycle
	// zero. It is a pure execution detail: results are byte-identical
	// either way (only the ReplayedEvents/SavedCycles work counters
	// differ), so — like Parallelism — it is excluded from Fingerprint
	// and cached results remain addressable from both modes. The
	// streaming (out-of-core) replay path ignores it.
	Incremental bool `json:"incremental,omitempty"`
}

// SeedMode is the effective seeding strategy after resolving the legacy
// empty value: "fixed" when InitialLatencyCycles is set, else "zeroload".
func (t *SCTM) SeedMode() string {
	if t.Seed != "" {
		return t.Seed
	}
	if t.InitialLatencyCycles > 0 {
		return "fixed"
	}
	return "zeroload"
}

// Default returns a fully populated baseline configuration: a 64-core chip,
// canonical mesh and crossbar parameters from the 2012-era literature, and a
// stencil kernel workload.
func Default() Config {
	return Config{
		Name:    "default",
		Seed:    42,
		Network: NetElectrical,
		System: System{
			Cores:         64,
			L1Sets:        64,
			L1Ways:        4,
			L1LineBytes:   64,
			L2SetsPerBank: 256,
			L2Ways:        8,
			L2HitCycles:   6,
			MemCycles:     120,
			CtrlBytes:     8,
			DataBytes:     72,
		},
		Mesh: Mesh{
			Topology:     "mesh",
			VCs:          4,
			BufDepth:     4,
			FlitBytes:    16,
			RouterStages: 2,
			LinkCycles:   1,
			Routing:      "xy",
			ClockGHz:     2,
		},
		Optical: Optical{
			Architecture:            "mwsr",
			WavelengthsPerChannel:   16,
			GbpsPerWavelength:       10,
			ClockGHz:                2,
			TokenHopCycles:          1,
			PropagationCyclesAcross: 8,
			OEOverheadCycles:        3,
			MaxTokenHold:            4,
			DieEdgeCm:               2.0,
		},
		Ideal: Ideal{
			LatencyCycles: 20,
			BytesPerCycle: 16,
		},
		Hybrid: Hybrid{
			Threshold: 4,
		},
		Workload: Workload{
			Kind:          WorkloadKernel,
			Pattern:       "uniform",
			InjectionRate: 0.05,
			PacketBytes:   64,
			Packets:       200,
			Kernel:        "stencil",
			Scale:         8,
			Iterations:    4,
			ComputeScale:  1,
		},
		SCTM: SCTM{
			MaxIterations:     10,
			ToleranceCycles:   2,
			Damping:           0,
			MakespanTolerance: 0.01,
		},
		Parallelism: Parallelism{Shards: 1},
	}
}

// isSquare reports whether n is a positive perfect square.
func isSquare(n int) bool {
	if n <= 0 {
		return false
	}
	for r := 1; r*r <= n; r++ {
		if r*r == n {
			return true
		}
	}
	return false
}

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Validate checks cross-field invariants and returns a descriptive error for
// the first violation found.
func (c *Config) Validate() error {
	s := &c.System
	switch {
	case !isSquare(s.Cores):
		return fmt.Errorf("config: system.cores=%d must be a positive perfect square", s.Cores)
	case !isPow2(s.L1Sets) || s.L1Ways <= 0:
		return fmt.Errorf("config: invalid L1 geometry sets=%d ways=%d", s.L1Sets, s.L1Ways)
	case !isPow2(s.L1LineBytes):
		return fmt.Errorf("config: l1_line_bytes=%d must be a power of two", s.L1LineBytes)
	case !isPow2(s.L2SetsPerBank) || s.L2Ways <= 0:
		return fmt.Errorf("config: invalid L2 geometry sets=%d ways=%d", s.L2SetsPerBank, s.L2Ways)
	case s.L2HitCycles < 1 || s.MemCycles < 1:
		return fmt.Errorf("config: latencies must be ≥1 (l2=%d mem=%d)", s.L2HitCycles, s.MemCycles)
	case s.CtrlBytes <= 0 || s.DataBytes <= 0:
		return fmt.Errorf("config: message sizes must be positive (ctrl=%d data=%d)", s.CtrlBytes, s.DataBytes)
	case s.MemPorts < 0 || s.MemPorts > 4:
		return fmt.Errorf("config: system.mem_ports=%d out of [0,4]: memory controllers sit at the chip corners, so at most 4 exist", s.MemPorts)
	}
	m := &c.Mesh
	switch {
	case m.Topology != "mesh" && m.Topology != "torus":
		return fmt.Errorf("config: mesh.topology=%q not in {mesh, torus}", m.Topology)
	case m.Topology == "torus" && m.Routing != "xy":
		return fmt.Errorf("config: torus requires xy routing, got %q", m.Routing)
	case m.Topology == "torus" && m.VCs < 6:
		return fmt.Errorf("config: torus needs ≥2 VCs per message class (≥6 total), got %d", m.VCs)
	case m.VCs < 1 || m.VCs > 16:
		return fmt.Errorf("config: mesh.vcs=%d out of [1,16]", m.VCs)
	case m.BufDepth < 1:
		return fmt.Errorf("config: mesh.buf_depth=%d must be ≥1", m.BufDepth)
	case m.FlitBytes < 1:
		return fmt.Errorf("config: mesh.flit_bytes=%d must be ≥1", m.FlitBytes)
	case m.RouterStages < 1 || m.LinkCycles < 1:
		return fmt.Errorf("config: mesh latencies must be ≥1")
	case m.Routing != "xy" && m.Routing != "westfirst":
		return fmt.Errorf("config: mesh.routing=%q not in {xy, westfirst}", m.Routing)
	case m.ClockGHz <= 0:
		return fmt.Errorf("config: mesh.clock_ghz=%g must be positive", m.ClockGHz)
	}
	o := &c.Optical
	switch {
	case o.Architecture != "mwsr" && o.Architecture != "swmr":
		return fmt.Errorf("config: optical.architecture=%q not in {mwsr, swmr}", o.Architecture)
	case o.WavelengthsPerChannel < 1 || o.WavelengthsPerChannel > 128:
		return fmt.Errorf("config: optical.wavelengths_per_channel=%d out of [1,128]", o.WavelengthsPerChannel)
	case o.GbpsPerWavelength <= 0 || o.ClockGHz <= 0:
		return fmt.Errorf("config: optical rates must be positive")
	case o.TokenHopCycles < 1 || o.PropagationCyclesAcross < 0 || o.OEOverheadCycles < 0:
		return fmt.Errorf("config: optical latencies invalid")
	case o.MaxTokenHold < 1:
		return fmt.Errorf("config: optical.max_token_hold=%d must be ≥1", o.MaxTokenHold)
	case o.DieEdgeCm <= 0:
		return fmt.Errorf("config: optical.die_edge_cm=%g must be positive", o.DieEdgeCm)
	}
	if c.Ideal.LatencyCycles < 1 {
		return fmt.Errorf("config: ideal.latency_cycles=%d must be ≥1", c.Ideal.LatencyCycles)
	}
	if c.Ideal.BytesPerCycle < 0 {
		return fmt.Errorf("config: ideal.bytes_per_cycle must be ≥0")
	}
	if c.Hybrid.Threshold < 1 {
		return fmt.Errorf("config: hybrid.threshold=%d must be ≥1", c.Hybrid.Threshold)
	}
	w := &c.Workload
	switch w.Kind {
	case WorkloadSynthetic:
		switch w.Pattern {
		case "uniform", "transpose", "hotspot", "bitcomplement", "neighbor", "tornado":
		default:
			return fmt.Errorf("config: unknown synthetic pattern %q", w.Pattern)
		}
		if w.InjectionRate <= 0 || w.InjectionRate > 1 {
			return fmt.Errorf("config: injection_rate=%g out of (0,1]", w.InjectionRate)
		}
		if w.PacketBytes <= 0 || w.Packets <= 0 {
			return fmt.Errorf("config: synthetic sizes must be positive")
		}
	case WorkloadKernel:
		switch w.Kernel {
		case "fft", "lu", "stencil", "sort", "reduce":
		default:
			return fmt.Errorf("config: unknown kernel %q", w.Kernel)
		}
		if w.Scale <= 0 {
			return fmt.Errorf("config: workload.scale=%d must be positive", w.Scale)
		}
		if w.Iterations <= 0 {
			return fmt.Errorf("config: workload.iterations=%d must be positive", w.Iterations)
		}
		if w.ComputeScale <= 0 {
			return fmt.Errorf("config: workload.compute_scale must be positive")
		}
		if w.Jitter < 0 || w.Jitter > 0.5 {
			return fmt.Errorf("config: workload.jitter=%g out of [0,0.5]", w.Jitter)
		}
	default:
		return fmt.Errorf("config: unknown workload kind %q", w.Kind)
	}
	switch c.Network {
	case NetElectrical, NetOptical, NetIdeal, NetHybrid:
	default:
		return fmt.Errorf("config: unknown network %q", c.Network)
	}
	t := &c.SCTM
	if t.MaxIterations < 1 {
		return fmt.Errorf("config: sctm.max_iterations=%d must be ≥1", t.MaxIterations)
	}
	if t.ToleranceCycles < 0 {
		return fmt.Errorf("config: sctm.tolerance_cycles must be ≥0")
	}
	if t.Damping < 0 || t.Damping >= 1 {
		return fmt.Errorf("config: sctm.damping=%g out of [0,1)", t.Damping)
	}
	if t.MakespanTolerance < 0 || t.MakespanTolerance > 0.5 {
		return fmt.Errorf("config: sctm.makespan_tolerance=%g out of [0,0.5]", t.MakespanTolerance)
	}
	switch t.Seed {
	case "", "zeroload", "analytic", "fixed":
	default:
		return fmt.Errorf("config: sctm.seed=%q not in {zeroload, analytic, fixed}", t.Seed)
	}
	if t.Seed == "fixed" && t.InitialLatencyCycles <= 0 {
		return fmt.Errorf("config: sctm.seed=fixed requires sctm.initial_latency_cycles > 0")
	}
	if (t.Seed == "zeroload" || t.Seed == "analytic") && t.InitialLatencyCycles > 0 {
		return fmt.Errorf("config: sctm.seed=%q contradicts sctm.initial_latency_cycles=%d (fixed seeding)", t.Seed, t.InitialLatencyCycles)
	}
	if c.MaxCycles < 0 {
		return fmt.Errorf("config: max_cycles must be ≥0")
	}
	f := &c.Faults
	switch {
	case f.ThermalMTBF < 0 || f.TokenMTBF < 0:
		return fmt.Errorf("config: fault MTBFs must be ≥0 (thermal=%d token=%d)", f.ThermalMTBF, f.TokenMTBF)
	case f.ThermalMTBF > 0 && f.ThermalDuration < 1:
		return fmt.Errorf("config: faults.thermal_duration=%d must be ≥1 when thermal drift is enabled", f.ThermalDuration)
	case f.ThermalMTBF > 0 && (f.ThermalDetune <= 0 || f.ThermalDetune > 1):
		return fmt.Errorf("config: faults.thermal_detune=%g out of (0,1]", f.ThermalDetune)
	case f.ThermalMTBF == 0 && (f.ThermalDuration != 0 || f.ThermalDetune != 0):
		return fmt.Errorf("config: thermal fault parameters set but faults.thermal_mtbf=0")
	case f.TokenMTBF > 0 && f.TokenTimeout < 1:
		return fmt.Errorf("config: faults.token_timeout=%d must be ≥1 when token faults are enabled", f.TokenTimeout)
	case f.TokenMTBF == 0 && f.TokenTimeout != 0:
		return fmt.Errorf("config: faults.token_timeout set but faults.token_mtbf=0")
	case f.LaserDroopDB < 0 || f.LaserDroopDB > 60:
		return fmt.Errorf("config: faults.laser_droop_db=%g out of [0,60]", f.LaserDroopDB)
	}
	if c.Parallelism.Shards < 0 {
		return fmt.Errorf("config: parallelism.shards must be ≥0")
	}
	if c.Parallelism.Shards > 1<<16 {
		return fmt.Errorf("config: parallelism.shards=%d is implausibly large", c.Parallelism.Shards)
	}
	if c.Parallelism.WindowEvents < -1 {
		return fmt.Errorf("config: parallelism.window_events must be ≥ -1 (-1 = unbounded)")
	}
	if c.Parallelism.WindowEvents > 1<<31 {
		return fmt.Errorf("config: parallelism.window_events=%d is implausibly large", c.Parallelism.WindowEvents)
	}
	return nil
}

// MeshWidth returns the edge length of the square core grid.
func (c *Config) MeshWidth() int {
	r := 1
	for r*r < c.System.Cores {
		r++
	}
	return r
}

// MaxCyclesOrDefault returns the simulation cycle bound, substituting a
// generous default when unset.
func (c *Config) MaxCyclesOrDefault() int64 {
	if c.MaxCycles > 0 {
		return c.MaxCycles
	}
	return 200_000_000
}

// Load reads and validates a JSON config file.
func Load(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates JSON bytes. Unknown fields are rejected so
// typos in experiment configs fail loudly.
func Parse(data []byte) (Config, error) {
	c := Default()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("config: decode: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Save writes the config as indented JSON.
func (c *Config) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("config: encode: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
