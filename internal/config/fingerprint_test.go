package config

import (
	"strings"
	"testing"
)

func fp(t *testing.T, c Config) string {
	t.Helper()
	s, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFingerprintPinned pins the exact digests of the two workhorse configs.
// The Faults section is hashed only when non-zero, so these values must
// never change for fault-free configs: every disk-cached result keyed before
// fault injection existed stays addressable.
func TestFingerprintPinned(t *testing.T) {
	cfg := Default()
	if got, want := fp(t, cfg), "2603f2024a47be4164fbf88ced243dcf57c7ec1cf5535915b39771e85bf2fa28"; got != want {
		t.Errorf("Default() fingerprint = %s, want %s", got, want)
	}
	cfg.Network = NetOptical
	if got, want := fp(t, cfg), "ec4824c872f793960241db4f077ca8c54b4af664b0491e277a1a23330af2da36"; got != want {
		t.Errorf("optical fingerprint = %s, want %s", got, want)
	}
}

// TestFingerprintDistinguishesFaults checks every Faults field independently
// perturbs the digest: two configs differing in any fault parameter must
// never collide in the result cache.
func TestFingerprintDistinguishesFaults(t *testing.T) {
	base := Default()
	base.Faults, _ = FaultPreset("light")
	seen := map[string]string{"base": fp(t, base)}
	mutations := []struct {
		name   string
		mutate func(*Faults)
	}{
		{"thermal_mtbf", func(f *Faults) { f.ThermalMTBF++ }},
		{"thermal_duration", func(f *Faults) { f.ThermalDuration++ }},
		{"thermal_detune", func(f *Faults) { f.ThermalDetune += 0.01 }},
		{"token_mtbf", func(f *Faults) { f.TokenMTBF++ }},
		{"token_timeout", func(f *Faults) { f.TokenTimeout++ }},
		{"laser_droop_db", func(f *Faults) { f.LaserDroopDB += 0.5 }},
	}
	for _, m := range mutations {
		c := base
		m.mutate(&c.Faults)
		h := fp(t, c)
		for prev, ph := range seen {
			if h == ph {
				t.Errorf("%s collides with %s", m.name, prev)
			}
		}
		seen[m.name] = h
	}
	// A faulted config must also differ from its fault-free twin.
	clean := Default()
	if fp(t, clean) == seen["base"] {
		t.Error("faulted config collides with fault-free config")
	}
}

// TestFingerprintSeedModeCompatibility pins that the SCTM seed mode is
// hashed only when explicitly set: configs with the default empty mode keep
// the exact digests pinned before the field existed (PR 5), so every
// previously persisted cache entry stays addressable, while each explicit
// mode gets its own identity.
func TestFingerprintSeedModeCompatibility(t *testing.T) {
	cfg := Default()
	if cfg.SCTM.Seed != "" {
		t.Fatalf("Default() seed mode = %q, want empty (legacy)", cfg.SCTM.Seed)
	}
	if got, want := fp(t, cfg), "2603f2024a47be4164fbf88ced243dcf57c7ec1cf5535915b39771e85bf2fa28"; got != want {
		t.Errorf("default-seed fingerprint = %s, want PR5 digest %s", got, want)
	}
	optical := cfg
	optical.Network = NetOptical
	if got, want := fp(t, optical), "ec4824c872f793960241db4f077ca8c54b4af664b0491e277a1a23330af2da36"; got != want {
		t.Errorf("default-seed optical fingerprint = %s, want PR5 digest %s", got, want)
	}
	// Every explicit mode must hash distinctly from the default and from
	// each other sibling mode.
	seen := map[string]string{"default": fp(t, cfg)}
	for _, mode := range []string{"zeroload", "analytic", "fixed"} {
		c := Default()
		c.SCTM.Seed = mode
		if mode == "fixed" {
			c.SCTM.InitialLatencyCycles = 25
		}
		h := fp(t, c)
		for prev, ph := range seen {
			if h == ph {
				t.Errorf("seed mode %q collides with %s", mode, prev)
			}
		}
		seen[mode] = h
	}
}

// TestValidateSeedMode checks the seed-mode cross-field rules.
func TestValidateSeedMode(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SCTM)
		want   string // substring of the error, "" for valid
	}{
		{"default", func(t *SCTM) {}, ""},
		{"zeroload", func(t *SCTM) { t.Seed = "zeroload" }, ""},
		{"analytic", func(t *SCTM) { t.Seed = "analytic" }, ""},
		{"fixed with cycles", func(t *SCTM) { t.Seed = "fixed"; t.InitialLatencyCycles = 10 }, ""},
		{"unknown mode", func(t *SCTM) { t.Seed = "psychic" }, "sctm.seed"},
		{"fixed without cycles", func(t *SCTM) { t.Seed = "fixed" }, "initial_latency_cycles"},
		{"zeroload with cycles", func(t *SCTM) { t.Seed = "zeroload"; t.InitialLatencyCycles = 10 }, "contradicts"},
		{"analytic with cycles", func(t *SCTM) { t.Seed = "analytic"; t.InitialLatencyCycles = 10 }, "contradicts"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Default()
			c.mutate(&cfg.SCTM)
			err := cfg.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v does not mention %q", err, c.want)
			}
		})
	}
}

// TestSeedModeResolution pins the legacy resolution of the empty mode.
func TestSeedModeResolution(t *testing.T) {
	var s SCTM
	if got := s.SeedMode(); got != "zeroload" {
		t.Errorf("empty SCTM seed mode = %q, want zeroload", got)
	}
	s.InitialLatencyCycles = 5
	if got := s.SeedMode(); got != "fixed" {
		t.Errorf("legacy initial-latency seed mode = %q, want fixed", got)
	}
	s.Seed = "analytic"
	if got := s.SeedMode(); got != "analytic" {
		t.Errorf("explicit seed mode = %q, want analytic", got)
	}
}

func TestFaultPreset(t *testing.T) {
	for _, name := range []string{"", "off", "none"} {
		f, err := FaultPreset(name)
		if err != nil || f.Enabled() {
			t.Errorf("preset %q: %+v, %v", name, f, err)
		}
	}
	for _, name := range []string{"light", "heavy"} {
		f, err := FaultPreset(name)
		if err != nil || !f.Enabled() {
			t.Errorf("preset %q: %+v, %v", name, f, err)
		}
		cfg := Default()
		cfg.Faults = f
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %q fails validation: %v", name, err)
		}
	}
	if _, err := FaultPreset("catastrophic"); err == nil || !strings.Contains(err.Error(), "catastrophic") {
		t.Errorf("unknown preset error = %v", err)
	}
}

func TestValidateFaultRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Faults)
		want   string
	}{
		{"negative mtbf", func(f *Faults) { f.ThermalMTBF = -1 }, "MTBFs"},
		{"drift without duration", func(f *Faults) { f.ThermalMTBF = 100; f.ThermalDetune = 0.5 }, "thermal_duration"},
		{"drift detune range", func(f *Faults) { f.ThermalMTBF = 100; f.ThermalDuration = 10; f.ThermalDetune = 1.5 }, "thermal_detune"},
		{"orphan thermal params", func(f *Faults) { f.ThermalDetune = 0.5 }, "thermal_mtbf=0"},
		{"token without timeout", func(f *Faults) { f.TokenMTBF = 100 }, "token_timeout"},
		{"orphan token timeout", func(f *Faults) { f.TokenTimeout = 10 }, "token_mtbf=0"},
		{"droop range", func(f *Faults) { f.LaserDroopDB = 61 }, "laser_droop_db"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Default()
			c.mutate(&cfg.Faults)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("expected validation error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
