package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDefaultIsValid(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"non-square cores", func(c *Config) { c.System.Cores = 10 }, "perfect square"},
		{"zero cores", func(c *Config) { c.System.Cores = 0 }, "perfect square"},
		{"l1 sets not pow2", func(c *Config) { c.System.L1Sets = 12 }, "L1 geometry"},
		{"l1 line not pow2", func(c *Config) { c.System.L1LineBytes = 48 }, "power of two"},
		{"l2 geometry", func(c *Config) { c.System.L2Ways = 0 }, "L2 geometry"},
		{"zero latency", func(c *Config) { c.System.L2HitCycles = 0 }, "latencies"},
		{"message sizes", func(c *Config) { c.System.CtrlBytes = 0 }, "message sizes"},
		{"vcs range", func(c *Config) { c.Mesh.VCs = 0 }, "mesh.vcs"},
		{"buf depth", func(c *Config) { c.Mesh.BufDepth = 0 }, "buf_depth"},
		{"flit bytes", func(c *Config) { c.Mesh.FlitBytes = 0 }, "flit_bytes"},
		{"routing name", func(c *Config) { c.Mesh.Routing = "zigzag" }, "routing"},
		{"wavelengths", func(c *Config) { c.Optical.WavelengthsPerChannel = 0 }, "wavelengths"},
		{"optical rates", func(c *Config) { c.Optical.ClockGHz = 0 }, "rates"},
		{"token hold", func(c *Config) { c.Optical.MaxTokenHold = 0 }, "max_token_hold"},
		{"die edge", func(c *Config) { c.Optical.DieEdgeCm = 0 }, "die_edge"},
		{"ideal latency", func(c *Config) { c.Ideal.LatencyCycles = 0 }, "ideal.latency"},
		{"pattern", func(c *Config) { c.Workload.Kind = WorkloadSynthetic; c.Workload.Pattern = "spiral" }, "pattern"},
		{"rate", func(c *Config) { c.Workload.Kind = WorkloadSynthetic; c.Workload.InjectionRate = 0 }, "injection_rate"},
		{"kernel", func(c *Config) { c.Workload.Kernel = "raytrace" }, "kernel"},
		{"scale", func(c *Config) { c.Workload.Scale = 0 }, "scale"},
		{"iterations", func(c *Config) { c.Workload.Iterations = 0 }, "iterations"},
		{"compute scale", func(c *Config) { c.Workload.ComputeScale = 0 }, "compute_scale"},
		{"workload kind", func(c *Config) { c.Workload.Kind = "replay" }, "workload kind"},
		{"network", func(c *Config) { c.Network = "quantum" }, "network"},
		{"sctm iters", func(c *Config) { c.SCTM.MaxIterations = 0 }, "max_iterations"},
		{"sctm tol", func(c *Config) { c.SCTM.ToleranceCycles = -1 }, "tolerance"},
		{"sctm damping", func(c *Config) { c.SCTM.Damping = 1.0 }, "damping"},
		{"sctm mk tol", func(c *Config) { c.SCTM.MakespanTolerance = 0.9 }, "makespan_tolerance"},
		{"max cycles", func(c *Config) { c.MaxCycles = -1 }, "max_cycles"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Default()
			c.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("expected validation error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestMeshWidth(t *testing.T) {
	for _, c := range []struct{ cores, want int }{{1, 1}, {4, 2}, {16, 4}, {64, 8}, {144, 12}, {256, 16}} {
		cfg := Default()
		cfg.System.Cores = c.cores
		if got := cfg.MeshWidth(); got != c.want {
			t.Errorf("MeshWidth(%d) = %d, want %d", c.cores, got, c.want)
		}
	}
}

func TestMaxCyclesOrDefault(t *testing.T) {
	cfg := Default()
	if cfg.MaxCyclesOrDefault() != 200_000_000 {
		t.Fatalf("default bound = %d", cfg.MaxCyclesOrDefault())
	}
	cfg.MaxCycles = 5000
	if cfg.MaxCyclesOrDefault() != 5000 {
		t.Fatal("explicit bound ignored")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	cfg := Default()
	cfg.Name = "roundtrip"
	cfg.System.Cores = 16
	cfg.Workload.Kernel = "fft"
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, cfg)
	}
}

func TestParsePartialOverridesDefaults(t *testing.T) {
	got, err := Parse([]byte(`{"name":"x","system":{"cores":16,"l1_sets":64,"l1_ways":4,"l1_line_bytes":64,"l2_sets_per_bank":256,"l2_ways":8,"l2_hit_cycles":6,"mem_cycles":120,"ctrl_bytes":8,"data_bytes":72}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.System.Cores != 16 {
		t.Fatalf("cores = %d", got.System.Cores)
	}
	// Untouched sections keep defaults.
	if got.Mesh.VCs != Default().Mesh.VCs {
		t.Fatal("defaults not preserved for unspecified sections")
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"nmae":"typo"}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	if _, err := Parse([]byte(`{"system":{"cores":10}}`)); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := Parse([]byte(`{`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file did not error")
	}
}

func TestSaveCreatesReadableJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	cfg := Default()
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"cores\": 64") {
		t.Fatalf("saved JSON missing expected field:\n%s", data)
	}
}
