package config

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"math"
)

// fingerprintVersion is folded into every fingerprint so that adding or
// re-interpreting a config field invalidates previously persisted results
// instead of silently colliding with them. Bump it whenever the set of
// hashed fields (or their meaning) changes.
const fingerprintVersion = 1

// Fingerprint returns a canonical, collision-resistant identity for a
// validated configuration: two configs share a fingerprint exactly when
// every simulation-relevant field is equal. The hash is computed over an
// explicit, fixed field ordering (not struct memory or JSON output), so it
// is stable across process runs, architectures, and incidental struct
// reshuffles — which is what makes it usable as a cross-invocation disk
// cache key.
//
// Name is deliberately excluded: it labels reports and does not influence
// simulation results. Parallelism is excluded for the same reason — the
// sharded engine is byte-identical to the serial one for any shard count,
// and the streaming replay path (Stream, WindowEvents) is byte-identical to
// the in-memory one, so folding any of them in would only split the cache
// for equal results (and excluding them keeps fingerprints, hence persisted
// disk caches, stable across the settings). Everything else — seed, system
// geometry, all fabric parameters, workload, and SCTM knobs — is included.
func (c *Config) Fingerprint() (string, error) {
	if err := c.Validate(); err != nil {
		return "", fmt.Errorf("config: fingerprint of invalid config: %w", err)
	}
	h := sha256.New()
	w := fpWriter{h: h}
	w.str("onocsim-fingerprint")
	w.u64(fingerprintVersion)

	w.u64(c.Seed)
	s := &c.System
	w.ints(s.Cores, s.L1Sets, s.L1Ways, s.L1LineBytes, s.L2SetsPerBank, s.L2Ways)
	w.i64s(s.L2HitCycles, s.MemCycles)
	w.ints(s.CtrlBytes, s.DataBytes, s.MemPorts)

	m := &c.Mesh
	w.str(m.Topology)
	w.ints(m.VCs, m.BufDepth, m.FlitBytes)
	w.i64s(m.RouterStages, m.LinkCycles)
	w.str(m.Routing)
	w.f64(m.ClockGHz)

	o := &c.Optical
	w.str(o.Architecture)
	w.ints(o.WavelengthsPerChannel)
	w.f64(o.GbpsPerWavelength)
	w.f64(o.ClockGHz)
	w.i64s(o.TokenHopCycles, o.PropagationCyclesAcross, o.OEOverheadCycles)
	w.ints(o.MaxTokenHold)
	w.f64(o.DieEdgeCm)

	w.i64s(c.Ideal.LatencyCycles)
	w.ints(c.Ideal.BytesPerCycle)
	w.ints(c.Hybrid.Threshold)

	wl := &c.Workload
	w.str(string(wl.Kind))
	w.str(wl.Pattern)
	w.f64(wl.InjectionRate)
	w.ints(wl.PacketBytes, wl.Packets)
	w.str(wl.Kernel)
	w.ints(wl.Scale, wl.Iterations)
	w.f64(wl.ComputeScale)
	w.f64(wl.Jitter)

	t := &c.SCTM
	w.ints(t.MaxIterations)
	w.i64s(t.ToleranceCycles, t.InitialLatencyCycles)
	w.f64(t.Damping)
	w.f64(t.MakespanTolerance)
	w.bools(t.DisableSyncDeps, t.DisableCausalDeps)
	// SCTM.Incremental is deliberately NOT hashed: like Parallelism, it is a
	// pure execution detail — the incremental loop is byte-identical to the
	// full-replay loop — so both modes address the same cached result.

	w.str(string(c.Network))
	w.i64s(c.MaxCycles)

	// The Faults section is hashed only when it differs from the zero value:
	// appending nothing for fault-free configs keeps their fingerprints
	// byte-identical to pre-fault releases, so persisted disk caches stay
	// valid, while any non-default section (even a disabled-but-nonzero one)
	// gets its own identity and can never collide with a no-fault result.
	if c.Faults != (Faults{}) {
		f := &c.Faults
		w.str("faults")
		w.i64s(f.ThermalMTBF, f.ThermalDuration)
		w.f64(f.ThermalDetune)
		w.i64s(f.TokenMTBF, f.TokenTimeout)
		w.f64(f.LaserDroopDB)
	}

	// The SCTM seed mode is hashed only when explicitly set, like Faults:
	// the empty default contributes nothing, keeping every pre-Seed
	// fingerprint (and the disk caches keyed on them) byte-identical.
	if t.Seed != "" {
		w.str("sctm-seed")
		w.str(t.Seed)
	}

	return hex.EncodeToString(h.Sum(nil)), nil
}

// fpWriter feeds canonically framed primitives into a hash. Strings are
// length-prefixed so adjacent fields cannot alias ("ab","c" vs "a","bc");
// numerics are fixed-width little-endian. Hash writes never fail, so errors
// are not threaded through.
type fpWriter struct{ h hash.Hash }

func (w fpWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.h.Write(b[:])
}

func (w fpWriter) str(s string) {
	w.u64(uint64(len(s)))
	io.WriteString(w.h, s)
}

func (w fpWriter) ints(vs ...int) {
	for _, v := range vs {
		w.u64(uint64(int64(v)))
	}
}

func (w fpWriter) i64s(vs ...int64) {
	for _, v := range vs {
		w.u64(uint64(v))
	}
}

func (w fpWriter) f64(v float64) {
	// Validated configs never hold NaN, and the sign of zero does not
	// influence any model, so raw IEEE bits are canonical enough.
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.h.Write(b[:])
}

func (w fpWriter) bools(vs ...bool) {
	for _, v := range vs {
		if v {
			w.u64(1)
		} else {
			w.u64(0)
		}
	}
}
