package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"testing"

	"onocsim"
)

// A correct job naming a stored trace file streams it instead of capturing
// the config's kernel, and repeats key on the file's content digest — the
// service-side surface of the out-of-core trace layer.
func TestSimulateStreamsStoredTrace(t *testing.T) {
	cfg := onocsim.DefaultConfig()
	cfg.System.Cores = 16
	cfg.Workload.Scale = 4
	cfg.Workload.Iterations = 2
	tr, _, err := onocsim.CaptureTrace(cfg, onocsim.IdealNet)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tenant.sctm")
	if err := onocsim.SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t)
	body := fmt.Sprintf(`{"op":"correct","network":"optical","trace":%q,"config":{
		"system":{"cores":16},
		"workload":{"kernel":"stencil","scale":4,"iterations":2},
		"max_cycles":5000000}}`, path)
	code, raw := postJSON(t, ts.URL+"/v1/simulate", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	var env resultEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Status != "ok" || len(env.Table) == 0 {
		t.Fatalf("bad envelope: %+v", env)
	}

	// The repeat is a digest-keyed cache hit: nothing recomputes.
	misses := serverStats(t, ts).Cache.Misses
	code, raw2 := postJSON(t, ts.URL+"/v1/simulate", body)
	if code != http.StatusOK {
		t.Fatalf("repeat status %d: %s", code, raw2)
	}
	if got := serverStats(t, ts).Cache.Misses; got != misses {
		t.Fatalf("repeated streamed correct recomputed: misses %d -> %d", misses, got)
	}

	// Trace paths only make sense for correct jobs.
	code, raw = postJSON(t, ts.URL+"/v1/simulate",
		fmt.Sprintf(`{"op":"exec","network":"optical","trace":%q}`, path))
	if code != http.StatusBadRequest {
		t.Fatalf("trace on exec: status %d: %s", code, raw)
	}
}
