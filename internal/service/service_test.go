package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// smallSim is a fast /v1/simulate body for op on the optical fabric.
func smallSim(op string) string {
	return fmt.Sprintf(`{"op":%q,"network":"optical","config":{
		"system":{"cores":16},
		"workload":{"kernel":"stencil","scale":4,"iterations":2},
		"max_cycles":5000000}}`, op)
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Config{Quick: true})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func serverStats(t *testing.T, ts *httptest.Server) statsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// The tentpole's acceptance test: N clients POST the same config
// concurrently; the daemon runs the simulation exactly once (single-flight
// across HTTP) and every client receives a byte-identical versioned result.
func TestSimulateConcurrentDedup(t *testing.T) {
	_, ts := newTestServer(t)
	const n = 8
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i], bodies[i] = postJSON(t, ts.URL+"/v1/simulate", smallSim("exec"))
		}()
	}
	wg.Wait()
	// Every client gets the same versioned result document; elapsed_ms is
	// per-request metadata, the table must be byte-identical.
	var env resultEnvelope
	if err := json.Unmarshal(bodies[0], &env); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d: %s", i, codes[i], bodies[i])
		}
		var got resultEnvelope
		if err := json.Unmarshal(bodies[i], &got); err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint != env.Fingerprint || got.Status != env.Status || !bytes.Equal(got.Table, env.Table) {
			t.Fatalf("client %d received a different result:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if env.Version != ResponseVersion || env.Status != "ok" || env.Op != "exec" || env.Fingerprint == "" {
		t.Fatalf("bad envelope: %+v", env)
	}
	st := serverStats(t, ts)
	if st.Cache.Misses != 1 {
		t.Fatalf("computed %d times for %d identical requests, want exactly 1", st.Cache.Misses, n)
	}
	if st.Cache.Hits+st.Cache.Waits == 0 {
		t.Fatalf("no request was deduplicated: %+v", st.Cache)
	}
	if st.Requests < n {
		t.Fatalf("request counter %d < %d", st.Requests, n)
	}
}

// A repeated request after the flight settles is a pure cache hit and still
// returns the identical document.
func TestSimulateRepeatHitsCache(t *testing.T) {
	_, ts := newTestServer(t)
	code, first := postJSON(t, ts.URL+"/v1/simulate", smallSim("estimate"))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, first)
	}
	misses := serverStats(t, ts).Cache.Misses
	code, second := postJSON(t, ts.URL+"/v1/simulate", smallSim("estimate"))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, second)
	}
	var a, b resultEnvelope
	if err := json.Unmarshal(first, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Table, b.Table) {
		t.Fatalf("cached result differs:\n%s\nvs\n%s", a.Table, b.Table)
	}
	if got := serverStats(t, ts).Cache.Misses; got != misses {
		t.Fatalf("repeat request recomputed: misses %d -> %d", misses, got)
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	event string
	data  []byte
}

// readSSE consumes a text/event-stream body into parsed events.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = append(cur.data, strings.TrimPrefix(line, "data: ")...)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSimulateSSEStreamsProgressThenResult(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/simulate?stream=sse", "application/json", strings.NewReader(smallSim("exec")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := readSSE(t, resp)
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	last := events[len(events)-1]
	if last.event != "result" {
		t.Fatalf("stream did not end with a result event: %+v", last)
	}
	var env resultEnvelope
	if err := json.Unmarshal(last.data, &env); err != nil {
		t.Fatal(err)
	}
	if env.Status != "ok" || env.Version != ResponseVersion {
		t.Fatalf("bad streamed envelope: %+v", env)
	}
	sawProgress := false
	for _, ev := range events[:len(events)-1] {
		if ev.event != "progress" {
			t.Fatalf("unexpected event %q before result", ev.event)
		}
		var we wireEvent
		if err := json.Unmarshal(ev.data, &we); err != nil {
			t.Fatalf("bad progress payload %s: %v", ev.data, err)
		}
		if we.Kind == "computed" {
			sawProgress = true
		}
	}
	if !sawProgress {
		t.Fatal("no computed progress event streamed for a fresh simulation")
	}
	// The streamed result table is byte-identical to the plain-JSON one.
	_, plain := postJSON(t, ts.URL+"/v1/simulate", smallSim("exec"))
	var plainEnv resultEnvelope
	if err := json.Unmarshal(plain, &plainEnv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(env.Table, plainEnv.Table) {
		t.Fatalf("streamed table differs from plain table:\n%s\nvs\n%s", env.Table, plainEnv.Table)
	}
}

func TestSimulateRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"bad op", `{"op":"teleport"}`},
		{"bad network", `{"op":"exec","network":"quantum"}`},
		{"unknown config field", `{"op":"exec","config":{"warp_factor":9}}`},
		{"invalid config", `{"op":"exec","config":{"system":{"cores":7}}}`},
		{"malformed json", `{"op":`},
	} {
		code, body := postJSON(t, ts.URL+"/v1/simulate", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400): %s", tc.name, code, body)
		}
	}
}

func TestExperimentEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Version     int              `json:"version"`
		Experiments []experimentInfo `json:"experiments"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Experiments) < 10 {
		t.Fatalf("registry listing too short: %d entries", len(listing.Experiments))
	}
	// r13 is analytic (cost light) — cheap enough to run end to end.
	code, body := postJSON(t, ts.URL+"/v1/experiments/r13", "")
	if code != http.StatusOK {
		t.Fatalf("r13: status %d: %s", code, body)
	}
	var env resultEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Op != "experiment:r13" || env.Status != "ok" || len(env.Table) == 0 {
		t.Fatalf("bad experiment envelope: %+v", env)
	}
	if code, body := postJSON(t, ts.URL+"/v1/experiments/r999", ""); code != http.StatusNotFound {
		t.Fatalf("unknown experiment: status %d: %s", code, body)
	}
}

// Draining refuses new work with 503 and parks an in-flight self-correction
// at a round boundary: the client still gets a valid partial result, marked
// status "parked".
func TestDrainParksInFlightCorrection(t *testing.T) {
	srv, ts := newTestServer(t)
	// A fixed seed far above the real latencies plus heavy damping forces a
	// long geometric approach (~350 rounds before the schedule can freeze):
	// a wide, deterministic window of round boundaries for the park to
	// land on, even on a fast host where each round takes well under a
	// millisecond and the drain poll below runs over HTTP.
	body := `{"op":"correct","network":"optical","config":{
		"system":{"cores":16},
		"workload":{"kernel":"stencil","scale":4,"iterations":2},
		"sctm":{"max_iterations":1000,"tolerance_cycles":0,"makespan_tolerance":0,
			"damping":0.97,"seed":"fixed","initial_latency_cycles":20000},
		"max_cycles":5000000}}`
	resp, err := http.Post(ts.URL+"/v1/simulate?stream=sse", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Stream until the capture finishes computing, then drain mid-loop.
	type result struct {
		env resultEnvelope
		evs []sseEvent
	}
	resc := make(chan result, 1)
	go func() {
		evs := readSSE(t, resp)
		var r result
		r.evs = evs
		if len(evs) > 0 && evs[len(evs)-1].event == "result" {
			_ = json.Unmarshal(evs[len(evs)-1].data, &r.env)
		}
		resc <- r
	}()
	// Wait for the correction to be underway (the capture is the first
	// computed entry, the correction flight the second miss), then drain.
	deadline := time.Now().Add(30 * time.Second)
	for serverStats(t, ts).Cache.Misses < 2 {
		if time.Now().After(deadline) {
			t.Fatal("correction never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv.Drain()

	// New work is refused while draining.
	if code, b := postJSON(t, ts.URL+"/v1/simulate", smallSim("exec")); code != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted new work: %d %s", code, b)
	}

	r := <-resc
	if len(r.evs) == 0 || r.evs[len(r.evs)-1].event != "result" {
		t.Fatalf("stream did not end in a result: %+v", r.evs)
	}
	if r.env.Status != "parked" {
		t.Fatalf("in-flight correction not parked: %+v", r.env)
	}
	if len(r.env.Table) == 0 {
		t.Fatal("parked result carries no table")
	}
}
