package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// envInt reads a positive integer knob from the environment.
func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestLoadBurst is the service load harness (`make loadtest` scales it up
// via ONOCSIMD_LOAD_CLIENTS): a burst of concurrent requests of mixed cost
// classes over a handful of distinct configs. Because the distinct-work set
// is tiny compared to the burst, the cache must absorb almost everything —
// the assertion is on flight count, not latency, so the test is meaningful
// on a noisy host. Afterwards the scheduler must be idle and drain must be
// clean.
func TestLoadBurst(t *testing.T) {
	clients := envInt("ONOCSIMD_LOAD_CLIENTS", 24)
	srv := New(Config{Quick: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Three ops (light, medium, medium) × two workload scales: six distinct
	// units of work under any number of clients.
	ops := []string{"estimate", "exec", "correct"}
	configFor := func(i int) string {
		scale := 4 + 4*(i%2)
		return fmt.Sprintf(`{"op":%q,"network":"optical","config":{
			"system":{"cores":16},
			"workload":{"kernel":"stencil","scale":%d,"iterations":2},
			"max_cycles":5000000}}`, ops[i%len(ops)], scale)
	}
	distinct := len(ops) * 2

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(configFor(i)))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var env resultEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				errs[i] = fmt.Errorf("decode: %w", err)
				return
			}
			if resp.StatusCode != http.StatusOK || env.Status != "ok" {
				errs[i] = fmt.Errorf("status %d, envelope %q", resp.StatusCode, env.Status)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	st := serverStats(t, ts)
	// Each distinct unit of work costs at most 3 flights (capture, truth /
	// correction, estimate); everything else must come from dedup or cache.
	maxFlights := uint64(3 * distinct)
	if st.Cache.Misses > maxFlights {
		t.Fatalf("%d computations for %d distinct units (max %d) — cache not absorbing the burst: %+v",
			st.Cache.Misses, distinct, maxFlights, st.Cache)
	}
	served := st.Cache.Hits + st.Cache.Waits
	if served == 0 {
		t.Fatalf("no request was served by cache or dedup: %+v", st.Cache)
	}
	t.Logf("burst of %d: %d flights, %d cache/dedup serves (hit ratio %.0f%%), %d queued peak-free",
		clients, st.Cache.Misses, served,
		100*float64(served)/float64(served+st.Cache.Misses), st.Scheduler.Queued)
	if st.Scheduler.InUse != 0 || st.Scheduler.Queued != 0 {
		t.Fatalf("scheduler not idle after burst: %+v", st.Scheduler)
	}

	// Clean shutdown: drain refuses new work, stats still serve.
	srv.Drain()
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(configFor(0)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted load: %d", resp.StatusCode)
	}
	if !serverStats(t, ts).Draining {
		t.Fatal("stats do not report draining")
	}
}
