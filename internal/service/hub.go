package service

import (
	"sync"
	"sync/atomic"

	"onocsim"
)

// hub fans the shared session's progress events out to every streaming
// request. Sends are non-blocking: a subscriber that stops draining its
// channel loses events (counted in dropped) instead of stalling the
// simulation goroutines delivering them — progress is advisory, results are
// not.
//
// Events are session-wide, not per-request: the whole point of the daemon is
// that concurrent requests for the same config share one computation, so a
// client deduplicated onto another request's flight streams that flight's
// events. Clients that care can correlate on the event's sim key.
type hub struct {
	mu      sync.Mutex
	subs    map[chan onocsim.ProgressEvent]struct{}
	dropped atomic.Uint64
}

func newHub() *hub {
	return &hub{subs: make(map[chan onocsim.ProgressEvent]struct{})}
}

// Event implements onocsim.Progress.
func (h *hub) Event(ev onocsim.ProgressEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			h.dropped.Add(1)
		}
	}
}

// subscribe registers an event channel. The returned cancel unsubscribes;
// the channel is never closed — receivers select on their own context.
func (h *hub) subscribe() (<-chan onocsim.ProgressEvent, func()) {
	ch := make(chan onocsim.ProgressEvent, 64)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		delete(h.subs, ch)
		h.mu.Unlock()
	}
}
