// Package service implements onocsimd, the simulation-as-a-service daemon:
// a long-lived HTTP server over one shared onocsim.Session. Clients POST
// validated config documents; results are keyed by config fingerprint, so
// identical requests — concurrent or not — share one computation through the
// session's single-flight cache, and repeats are served from the
// content-addressed disk layer. Admission is budgeted by a weighted fair
// scheduler (onocsim.SlotScheduler): each request is priced by its cost
// class, heavy sweeps cannot starve cheap probes, and a client that
// disconnects while queued releases its claim.
//
// Endpoints:
//
//	GET  /healthz               — liveness + drain state
//	GET  /v1/stats              — cache, scheduler and request counters
//	GET  /v1/experiments        — the experiment registry
//	POST /v1/experiments/{id}   — run one registry experiment
//	POST /v1/simulate           — run one simulation (op: exec | study |
//	                              correct | estimate)
//	POST /v1/sweeps             — run a design-space sweep (body: a
//	                              config.Sweep spec; empty body sweeps the
//	                              default grid)
//
// Every request reduces to the typed internal/job pipeline: handlers decode
// into a job.Job, price it with the job's admission class, and execute it
// through one job.Runner over the shared session — the same path the onocsim
// CLI takes, which is what keeps the two front ends' tables byte-identical.
// A sweep expands into many jobs; its handler holds no admission units
// itself — each arm admits individually, so a sweep's arms interleave fairly
// with interactive requests instead of reserving the budget up front.
//
// Any POST streams progress as Server-Sent Events when the client asks for
// text/event-stream (Accept header or ?stream=sse): `event: progress` lines
// while simulations resolve, then one `event: result` (or `event: error`).
// Otherwise the response is a single JSON envelope.
//
// Shutdown is graceful: Drain makes new requests 503, then ends the drain
// context merged into every in-flight request, which parks long
// self-correction loops at their next round boundary (onocsim.ErrParked).
// Parked partial results are returned to their clients with status "parked"
// and are never cached.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"onocsim"
	"onocsim/internal/config"
	"onocsim/internal/experiments"
	"onocsim/internal/job"
	"onocsim/internal/metrics"
	"onocsim/internal/simcache"
	"onocsim/internal/sweep"
)

// ResponseVersion guards the service's JSON envelopes against schema drift,
// exactly like metrics.TableFormatVersion guards the table payload inside.
const ResponseVersion = 1

// errDraining is the cancellation cause a draining server injects into
// in-flight request contexts, and the refusal for new work.
var errDraining = errors.New("service: server draining")

// Config configures a Server.
type Config struct {
	// CacheDir optionally enables the session's content-addressed disk
	// layer; "" keeps results in memory only.
	CacheDir string
	// Budget is the admission budget in cost units (light 1, medium 2,
	// heavy 4); <= 0 selects 2×GOMAXPROCS. The budget bounds concurrently
	// admitted requests; within a request, leaf simulations are further
	// bounded by the library's process-wide slot scheduler.
	Budget int
	// Quick shrinks experiment sweeps (experiments.Options.Quick) — meant
	// for tests and load harnesses, not production service.
	Quick bool
}

// Server is the daemon's state: one shared session, one admission scheduler,
// one progress hub. Construct with New; serve via Handler.
type Server struct {
	session *onocsim.Session
	sched   *onocsim.SlotScheduler
	runner  *job.Runner
	hub     *hub
	mux     *http.ServeMux
	quick   bool
	start   time.Time

	drainCtx    context.Context
	drainCancel context.CancelCauseFunc

	mu       sync.Mutex
	draining bool

	requests atomic.Uint64
}

// New builds a Server over a fresh session.
func New(cfg Config) *Server {
	budget := cfg.Budget
	if budget <= 0 {
		budget = 2 * runtime.GOMAXPROCS(0)
	}
	s := &Server{
		session: onocsim.NewSession(cfg.CacheDir),
		sched:   onocsim.NewSlotScheduler(budget),
		hub:     newHub(),
		mux:     http.NewServeMux(),
		quick:   cfg.Quick,
		start:   time.Now(),
	}
	s.drainCtx, s.drainCancel = context.WithCancelCause(context.Background())
	s.session.SetProgress(s.hub)
	s.runner = &job.Runner{
		Session: s.session,
		// The job pipeline must not depend on the registry (experiments
		// build on jobs, not the reverse), so the dispatch is injected
		// here, where both sides are visible.
		Experiment: func(_ context.Context, id string) (*metrics.Table, error) {
			return experiments.ByName(id, experiments.Options{
				Session:  s.session,
				Quick:    s.quick,
				Progress: s.hub,
			})
		},
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	s.mux.HandleFunc("POST /v1/experiments/{id}", s.handleExperimentRun)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain moves the server into shutdown: new POSTs are refused with 503, and
// the drain context merged into every in-flight request ends, parking long
// self-correction loops at their next round boundary. Call before
// http.Server.Shutdown, which then waits for the in-flight handlers to
// finish writing their (possibly parked) responses. Idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.drainCancel(errDraining)
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// requestCtx merges the client's context with the server's drain context:
// the returned context ends when the client disconnects or the server
// drains, whichever first. The cleanup must be deferred.
func (s *Server) requestCtx(r *http.Request) (context.Context, func()) {
	ctx, cancel := context.WithCancelCause(r.Context())
	stop := context.AfterFunc(s.drainCtx, func() { cancel(errDraining) })
	return ctx, func() { stop(); cancel(nil) }
}

// resultEnvelope is the service's versioned JSON result document. Table is
// the operation's metrics.Table in its own versioned JSON format — the same
// bytes `onocsim -format json` prints, since both front ends share
// internal/report.
type resultEnvelope struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Op          string          `json:"op"`
	Network     string          `json:"network,omitempty"`
	Status      string          `json:"status"`
	ElapsedMS   int64           `json:"elapsed_ms"`
	Table       json.RawMessage `json:"table"`
}

// envelope assembles a result document around a rendered table.
func envelope(op, network, fingerprint, status string, elapsed time.Duration, t *metrics.Table) (resultEnvelope, error) {
	var buf bytes.Buffer
	if err := t.WriteJSON(&buf); err != nil {
		return resultEnvelope{}, err
	}
	return resultEnvelope{
		Version:     ResponseVersion,
		Fingerprint: fingerprint,
		Op:          op,
		Network:     network,
		Status:      status,
		ElapsedMS:   elapsed.Milliseconds(),
		Table:       json.RawMessage(buf.Bytes()),
	}, nil
}

// apiError carries an HTTP status with a client-facing message.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// httpStatus maps an error to its response code: explicit apiErrors keep
// their code, lifecycle errors (drain, client disconnect, admission refusal)
// are 503, everything else is a 500.
func httpStatus(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.code
	}
	if errors.Is(err, errDraining) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, httpStatus(err), map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

// statsResponse is the /v1/stats document.
type statsResponse struct {
	Version       int               `json:"version"`
	UptimeMS      int64             `json:"uptime_ms"`
	Requests      uint64            `json:"requests"`
	Draining      bool              `json:"draining"`
	Cache         simcache.Stats    `json:"cache"`
	Scheduler     onocsim.SlotStats `json:"scheduler"`
	DroppedEvents uint64            `json:"dropped_events"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Version:       ResponseVersion,
		UptimeMS:      time.Since(s.start).Milliseconds(),
		Requests:      s.requests.Load(),
		Draining:      s.Draining(),
		Cache:         s.session.CacheStats(),
		Scheduler:     s.sched.Stats(),
		DroppedEvents: s.hub.dropped.Load(),
	})
}

// experimentInfo is one /v1/experiments listing entry.
type experimentInfo struct {
	ID      string `json:"id"`
	Title   string `json:"title"`
	Summary string `json:"summary"`
	Cost    string `json:"cost"`
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	reg := experiments.Registry()
	out := make([]experimentInfo, 0, len(reg))
	for _, d := range reg {
		out = append(out, experimentInfo{ID: d.ID, Title: d.Title, Summary: d.Summary, Cost: string(d.CostClass)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"version": ResponseVersion, "experiments": out})
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.Draining() {
		writeError(w, errDraining)
		return
	}
	id := r.PathValue("id")
	d, ok := experiments.Lookup(id)
	if !ok {
		writeError(w, &apiError{code: http.StatusNotFound, msg: fmt.Sprintf("unknown experiment %q", id)})
		return
	}
	ctx, cleanup := s.requestCtx(r)
	defer cleanup()
	j := job.Job{Op: job.OpExperiment, Experiment: id, Cost: string(d.CostClass)}
	class, units := j.Admission()
	if err := s.sched.Acquire(ctx, class, units); err != nil {
		writeError(w, fmt.Errorf("admission: %w", err))
		return
	}
	defer s.sched.Release(units)
	s.respond(w, r, func() (any, error) {
		// Experiments are cancellable at admission and between their leaf
		// simulations (each queues on the process-wide slot scheduler under
		// the session), but a leaf that is already running completes.
		res, err := s.runner.Run(ctx, j)
		if err != nil {
			return nil, err
		}
		return envelope("experiment:"+id, "", "", res.Status, res.Elapsed, res.Table)
	})
}

// simulateRequest is the /v1/simulate body. Config is a full config
// document in the same JSON schema as `onocsim -config` files (validated,
// unknown fields rejected); omitted, the baseline config is used. Trace
// optionally names a stored binary trace file on the server host: a correct
// op then streams it out-of-core (keyed by content digest) instead of
// capturing the config's kernel — how big tenant traces run without ever
// being materialized in daemon memory.
type simulateRequest struct {
	Op      string          `json:"op"`
	Network string          `json:"network"`
	Config  json.RawMessage `json:"config"`
	Trace   string          `json:"trace"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.Draining() {
		writeError(w, errDraining)
		return
	}
	var req simulateRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badRequestf("decode request: %v", err))
		return
	}
	switch req.Op {
	case "exec", "study", "correct", "estimate":
	default:
		writeError(w, badRequestf("unknown op %q (want exec, study, correct or estimate)", req.Op))
		return
	}
	cfg := onocsim.DefaultConfig()
	if len(req.Config) > 0 {
		var err error
		cfg, err = config.Parse(req.Config)
		if err != nil {
			writeError(w, badRequestf("%v", err))
			return
		}
	}
	kind := cfg.Network
	if req.Network != "" {
		kind = onocsim.NetworkKind(req.Network)
	}
	cfg.Network = kind
	j := job.Job{Op: job.Op(req.Op), Config: cfg, Kind: kind, TracePath: req.Trace}
	if err := j.Validate(); err != nil {
		writeError(w, badRequestf("%v", err))
		return
	}
	fp, err := j.Fingerprint()
	if err != nil {
		writeError(w, err)
		return
	}

	ctx, cleanup := s.requestCtx(r)
	defer cleanup()
	class, units := j.Admission()
	if err := s.sched.Acquire(ctx, class, units); err != nil {
		writeError(w, fmt.Errorf("admission: %w", err))
		return
	}
	defer s.sched.Release(units)

	s.respond(w, r, func() (any, error) {
		res, err := s.runner.Run(ctx, j)
		if err != nil {
			return nil, err
		}
		return envelope(req.Op, string(kind), fp, res.Status, res.Elapsed, res.Table)
	})
}

// sweepEnvelope is the /v1/sweeps result document. Front and Summary are
// metrics.Table JSON — the same bytes `onocsim -mode sweep -format json`
// embeds, since both front ends render through internal/sweep.
type sweepEnvelope struct {
	Version    int             `json:"version"`
	Name       string          `json:"name"`
	Status     string          `json:"status"`
	ElapsedMS  int64           `json:"elapsed_ms"`
	Arms       int             `json:"arms"`
	UniqueJobs int             `json:"unique_jobs"`
	Pruned     int             `json:"pruned"`
	Simulated  int             `json:"simulated"`
	Front      json.RawMessage `json:"front"`
	Summary    json.RawMessage `json:"summary"`
}

// handleSweep runs a design-space sweep. The handler holds no admission
// units itself — every arm admits individually through the shared scheduler
// (estimates light, simulations medium), so hundreds of arms interleave
// fairly with interactive requests instead of reserving the whole budget.
// SSE clients receive one "sweep-arm" progress event per unique arm and
// phase.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.Draining() {
		writeError(w, errDraining)
		return
	}
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	data, err := io.ReadAll(body)
	if err != nil {
		writeError(w, badRequestf("read request: %v", err))
		return
	}
	spec := config.DefaultSweep()
	spec.Normalize()
	if len(bytes.TrimSpace(data)) > 0 {
		spec, err = config.ParseSweep(data)
		if err != nil {
			writeError(w, badRequestf("%v", err))
			return
		}
	}
	ctx, cleanup := s.requestCtx(r)
	defer cleanup()
	s.respond(w, r, func() (any, error) {
		start := time.Now()
		res, err := sweep.Run(ctx, spec, sweep.Options{
			Session:  s.session,
			Progress: s.hub,
			Sched:    s.sched,
		})
		if err != nil {
			return nil, err
		}
		front, err := json.Marshal(res.Front)
		if err != nil {
			return nil, err
		}
		summary, err := json.Marshal(res.Summary)
		if err != nil {
			return nil, err
		}
		return sweepEnvelope{
			Version:    ResponseVersion,
			Name:       res.Spec.Name,
			Status:     "ok",
			ElapsedMS:  time.Since(start).Milliseconds(),
			Arms:       res.Arms,
			UniqueJobs: res.UniqueJobs,
			Pruned:     res.Pruned,
			Simulated:  res.Simulated,
			Front:      front,
			Summary:    summary,
		}, nil
	})
}

// wantsSSE reports whether the client asked for an event stream.
func wantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "sse" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// respond runs compute and delivers its result envelope: as one JSON
// document, or — when the client asked for SSE — as a progress stream
// terminated by a result (or error) event.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, compute func() (any, error)) {
	fl, canFlush := w.(http.Flusher)
	if !wantsSSE(r) || !canFlush {
		env, err := compute()
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, env)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	events, unsubscribe := s.hub.subscribe()
	defer unsubscribe()
	done := make(chan struct{})
	var env any
	var cerr error
	go func() {
		defer close(done)
		env, cerr = compute()
	}()
	for {
		select {
		case ev := <-events:
			writeSSE(w, "progress", toWire(ev))
			fl.Flush()
		case <-done:
			if cerr != nil {
				writeSSE(w, "error", map[string]string{"error": cerr.Error()})
			} else {
				writeSSE(w, "result", env)
			}
			fl.Flush()
			return
		case <-r.Context().Done():
			// Client gone: stop streaming. The computation goroutine holds
			// the merged context and winds down on its own.
			<-done
			return
		}
	}
}

// wireEvent is a ProgressEvent flattened for the wire (Err as a string).
type wireEvent struct {
	Kind       string `json:"kind"`
	Experiment string `json:"experiment,omitempty"`
	Title      string `json:"title,omitempty"`
	Sim        string `json:"sim,omitempty"`
	Op         string `json:"op,omitempty"`
	Err        string `json:"err,omitempty"`
	ElapsedMS  int64  `json:"elapsed_ms,omitempty"`
}

func toWire(ev onocsim.ProgressEvent) wireEvent {
	out := wireEvent{
		Kind:       ev.Kind.String(),
		Experiment: ev.Experiment,
		Title:      ev.Title,
		Sim:        ev.Sim,
		Op:         ev.Op,
		ElapsedMS:  ev.Elapsed.Milliseconds(),
	}
	if ev.Err != nil {
		out.Err = ev.Err.Error()
	}
	return out
}

// writeSSE emits one Server-Sent Event with a JSON data payload.
func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{"error":"marshal failure"}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
