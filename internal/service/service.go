// Package service implements onocsimd, the simulation-as-a-service daemon:
// a long-lived HTTP server over one shared onocsim.Session. Clients POST
// validated config documents; results are keyed by config fingerprint, so
// identical requests — concurrent or not — share one computation through the
// session's single-flight cache, and repeats are served from the
// content-addressed disk layer. Admission is budgeted by a weighted fair
// scheduler (onocsim.SlotScheduler): each request is priced by its cost
// class, heavy sweeps cannot starve cheap probes, and a client that
// disconnects while queued releases its claim.
//
// Endpoints:
//
//	GET  /healthz               — liveness + drain state
//	GET  /v1/stats              — cache, scheduler and request counters
//	GET  /v1/experiments        — the experiment registry
//	POST /v1/experiments/{id}   — run one registry experiment
//	POST /v1/simulate           — run one simulation (op: exec | study |
//	                              correct | estimate)
//
// Any POST streams progress as Server-Sent Events when the client asks for
// text/event-stream (Accept header or ?stream=sse): `event: progress` lines
// while simulations resolve, then one `event: result` (or `event: error`).
// Otherwise the response is a single JSON envelope.
//
// Shutdown is graceful: Drain makes new requests 503, then ends the drain
// context merged into every in-flight request, which parks long
// self-correction loops at their next round boundary (onocsim.ErrParked).
// Parked partial results are returned to their clients with status "parked"
// and are never cached.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"onocsim"
	"onocsim/internal/config"
	"onocsim/internal/experiments"
	"onocsim/internal/metrics"
	"onocsim/internal/report"
	"onocsim/internal/simcache"
)

// ResponseVersion guards the service's JSON envelopes against schema drift,
// exactly like metrics.TableFormatVersion guards the table payload inside.
const ResponseVersion = 1

// errDraining is the cancellation cause a draining server injects into
// in-flight request contexts, and the refusal for new work.
var errDraining = errors.New("service: server draining")

// Config configures a Server.
type Config struct {
	// CacheDir optionally enables the session's content-addressed disk
	// layer; "" keeps results in memory only.
	CacheDir string
	// Budget is the admission budget in cost units (light 1, medium 2,
	// heavy 4); <= 0 selects 2×GOMAXPROCS. The budget bounds concurrently
	// admitted requests; within a request, leaf simulations are further
	// bounded by the library's process-wide slot scheduler.
	Budget int
	// Quick shrinks experiment sweeps (experiments.Options.Quick) — meant
	// for tests and load harnesses, not production service.
	Quick bool
}

// Server is the daemon's state: one shared session, one admission scheduler,
// one progress hub. Construct with New; serve via Handler.
type Server struct {
	session *onocsim.Session
	sched   *onocsim.SlotScheduler
	hub     *hub
	mux     *http.ServeMux
	quick   bool
	start   time.Time

	drainCtx    context.Context
	drainCancel context.CancelCauseFunc

	mu       sync.Mutex
	draining bool

	requests atomic.Uint64
}

// New builds a Server over a fresh session.
func New(cfg Config) *Server {
	budget := cfg.Budget
	if budget <= 0 {
		budget = 2 * runtime.GOMAXPROCS(0)
	}
	s := &Server{
		session: onocsim.NewSession(cfg.CacheDir),
		sched:   onocsim.NewSlotScheduler(budget),
		hub:     newHub(),
		mux:     http.NewServeMux(),
		quick:   cfg.Quick,
		start:   time.Now(),
	}
	s.drainCtx, s.drainCancel = context.WithCancelCause(context.Background())
	s.session.SetProgress(s.hub)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	s.mux.HandleFunc("POST /v1/experiments/{id}", s.handleExperimentRun)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain moves the server into shutdown: new POSTs are refused with 503, and
// the drain context merged into every in-flight request ends, parking long
// self-correction loops at their next round boundary. Call before
// http.Server.Shutdown, which then waits for the in-flight handlers to
// finish writing their (possibly parked) responses. Idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.drainCancel(errDraining)
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// requestCtx merges the client's context with the server's drain context:
// the returned context ends when the client disconnects or the server
// drains, whichever first. The cleanup must be deferred.
func (s *Server) requestCtx(r *http.Request) (context.Context, func()) {
	ctx, cancel := context.WithCancelCause(r.Context())
	stop := context.AfterFunc(s.drainCtx, func() { cancel(errDraining) })
	return ctx, func() { stop(); cancel(nil) }
}

// admission maps a registry cost class to the scheduler's pricing. The
// weights are deliberately coarse: they exist to keep a burst of heavy
// sweeps from monopolizing the budget, not to model cost precisely.
func admission(c experiments.CostClass) (onocsim.SlotClass, int) {
	switch c {
	case experiments.CostLight:
		return onocsim.SlotLight, 1
	case experiments.CostHeavy:
		return onocsim.SlotHeavy, 4
	default:
		return onocsim.SlotMedium, 2
	}
}

// opAdmission prices the simulate ops on the same scale.
func opAdmission(op string) (onocsim.SlotClass, int) {
	switch op {
	case "study":
		return onocsim.SlotHeavy, 4
	case "estimate":
		return onocsim.SlotLight, 1
	default: // exec, correct
		return onocsim.SlotMedium, 2
	}
}

// resultEnvelope is the service's versioned JSON result document. Table is
// the operation's metrics.Table in its own versioned JSON format — the same
// bytes `onocsim -format json` prints, since both front ends share
// internal/report.
type resultEnvelope struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Op          string          `json:"op"`
	Network     string          `json:"network,omitempty"`
	Status      string          `json:"status"`
	ElapsedMS   int64           `json:"elapsed_ms"`
	Table       json.RawMessage `json:"table"`
}

// envelope assembles a result document around a rendered table.
func envelope(op, network, fingerprint, status string, elapsed time.Duration, t *metrics.Table) (resultEnvelope, error) {
	var buf bytes.Buffer
	if err := t.WriteJSON(&buf); err != nil {
		return resultEnvelope{}, err
	}
	return resultEnvelope{
		Version:     ResponseVersion,
		Fingerprint: fingerprint,
		Op:          op,
		Network:     network,
		Status:      status,
		ElapsedMS:   elapsed.Milliseconds(),
		Table:       json.RawMessage(buf.Bytes()),
	}, nil
}

// apiError carries an HTTP status with a client-facing message.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// httpStatus maps an error to its response code: explicit apiErrors keep
// their code, lifecycle errors (drain, client disconnect, admission refusal)
// are 503, everything else is a 500.
func httpStatus(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.code
	}
	if errors.Is(err, errDraining) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, httpStatus(err), map[string]string{"error": err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

// statsResponse is the /v1/stats document.
type statsResponse struct {
	Version       int               `json:"version"`
	UptimeMS      int64             `json:"uptime_ms"`
	Requests      uint64            `json:"requests"`
	Draining      bool              `json:"draining"`
	Cache         simcache.Stats    `json:"cache"`
	Scheduler     onocsim.SlotStats `json:"scheduler"`
	DroppedEvents uint64            `json:"dropped_events"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Version:       ResponseVersion,
		UptimeMS:      time.Since(s.start).Milliseconds(),
		Requests:      s.requests.Load(),
		Draining:      s.Draining(),
		Cache:         s.session.CacheStats(),
		Scheduler:     s.sched.Stats(),
		DroppedEvents: s.hub.dropped.Load(),
	})
}

// experimentInfo is one /v1/experiments listing entry.
type experimentInfo struct {
	ID      string `json:"id"`
	Title   string `json:"title"`
	Summary string `json:"summary"`
	Cost    string `json:"cost"`
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	reg := experiments.Registry()
	out := make([]experimentInfo, 0, len(reg))
	for _, d := range reg {
		out = append(out, experimentInfo{ID: d.ID, Title: d.Title, Summary: d.Summary, Cost: string(d.CostClass)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"version": ResponseVersion, "experiments": out})
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.Draining() {
		writeError(w, errDraining)
		return
	}
	id := r.PathValue("id")
	d, ok := experiments.Lookup(id)
	if !ok {
		writeError(w, &apiError{code: http.StatusNotFound, msg: fmt.Sprintf("unknown experiment %q", id)})
		return
	}
	ctx, cleanup := s.requestCtx(r)
	defer cleanup()
	class, units := admission(d.CostClass)
	if err := s.sched.Acquire(ctx, class, units); err != nil {
		writeError(w, fmt.Errorf("admission: %w", err))
		return
	}
	defer s.sched.Release(units)
	s.respond(w, r, func() (resultEnvelope, error) {
		start := time.Now()
		// Experiments are cancellable at admission and between their leaf
		// simulations (each queues on the process-wide slot scheduler under
		// the session), but a leaf that is already running completes.
		t, err := experiments.ByName(id, experiments.Options{
			Session:  s.session,
			Quick:    s.quick,
			Progress: s.hub,
		})
		if err != nil {
			return resultEnvelope{}, err
		}
		return envelope("experiment:"+id, "", "", "ok", time.Since(start), t)
	})
}

// simulateRequest is the /v1/simulate body. Config is a full config
// document in the same JSON schema as `onocsim -config` files (validated,
// unknown fields rejected); omitted, the baseline config is used.
type simulateRequest struct {
	Op      string          `json:"op"`
	Network string          `json:"network"`
	Config  json.RawMessage `json:"config"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.Draining() {
		writeError(w, errDraining)
		return
	}
	var req simulateRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, badRequestf("decode request: %v", err))
		return
	}
	switch req.Op {
	case "exec", "study", "correct", "estimate":
	default:
		writeError(w, badRequestf("unknown op %q (want exec, study, correct or estimate)", req.Op))
		return
	}
	cfg := onocsim.DefaultConfig()
	if len(req.Config) > 0 {
		var err error
		cfg, err = config.Parse(req.Config)
		if err != nil {
			writeError(w, badRequestf("%v", err))
			return
		}
	}
	kind := cfg.Network
	if req.Network != "" {
		kind = onocsim.NetworkKind(req.Network)
	}
	if err := onocsim.ValidateNetworkKind(cfg, kind); err != nil {
		writeError(w, badRequestf("%v", err))
		return
	}
	cfg.Network = kind
	fp, err := cfg.Fingerprint()
	if err != nil {
		writeError(w, err)
		return
	}

	ctx, cleanup := s.requestCtx(r)
	defer cleanup()
	class, units := opAdmission(req.Op)
	if err := s.sched.Acquire(ctx, class, units); err != nil {
		writeError(w, fmt.Errorf("admission: %w", err))
		return
	}
	defer s.sched.Release(units)

	s.respond(w, r, func() (resultEnvelope, error) {
		start := time.Now()
		t, status, err := s.compute(ctx, req.Op, cfg, kind)
		if err != nil {
			return resultEnvelope{}, err
		}
		return envelope(req.Op, string(kind), fp, status, time.Since(start), t)
	})
}

// compute runs one simulate op through the shared session. Deduplicated
// flights self-heal: when a request is deduplicated onto another client's
// computation and that client disconnects (killing the flight with a
// cancellation or a park), the still-connected request retries the — now
// vacant — flight itself, up to twice. A park caused by this request's own
// lifecycle (client gone or server draining) is terminal and returns the
// partial result with status "parked".
func (s *Server) compute(ctx context.Context, op string, cfg onocsim.Config, kind onocsim.NetworkKind) (*metrics.Table, string, error) {
	for attempt := 0; ; attempt++ {
		t, status, err := s.computeOnce(ctx, op, cfg, kind)
		if err == nil {
			return t, status, nil
		}
		if errors.Is(err, onocsim.ErrParked) && t != nil {
			// This request's own computation parked and carried its partial
			// trajectory out; report it rather than retrying a dying server.
			return t, "parked", nil
		}
		retryable := errors.Is(err, context.Canceled) || errors.Is(err, onocsim.ErrParked)
		if !retryable || attempt >= 2 || ctx.Err() != nil {
			return nil, "", err
		}
	}
}

func (s *Server) computeOnce(ctx context.Context, op string, cfg onocsim.Config, kind onocsim.NetworkKind) (*metrics.Table, string, error) {
	switch op {
	case "exec":
		res, err := s.session.RunExecutionDrivenContext(ctx, cfg, kind)
		if err != nil {
			return nil, "", err
		}
		return report.Exec(cfg, kind, res), "ok", nil
	case "study":
		st, err := s.session.RunStudyContext(ctx, cfg, kind)
		if err != nil {
			return nil, "", err
		}
		return report.Study(cfg, kind, st), "ok", nil
	case "correct":
		tr, _, err := s.session.CaptureTraceContext(ctx, cfg, onocsim.IdealNet)
		if err != nil {
			return nil, "", err
		}
		res, wall, err := s.session.RunSelfCorrectionContext(ctx, cfg, tr, kind)
		if err != nil {
			if errors.Is(err, onocsim.ErrParked) && len(res.Iterations) > 0 {
				// The partial trajectory came back with the park: render it.
				return report.Correction(cfg, kind, res, wall, true), "parked", err
			}
			return nil, "", err
		}
		return report.Correction(cfg, kind, res, wall, false), "ok", nil
	case "estimate":
		tr, _, err := s.session.CaptureTraceContext(ctx, cfg, onocsim.IdealNet)
		if err != nil {
			return nil, "", err
		}
		res, wall, err := s.session.Estimate(cfg, tr, kind)
		if err != nil {
			return nil, "", err
		}
		return report.Estimate(cfg, kind, res, wall), "ok", nil
	default:
		return nil, "", badRequestf("unknown op %q", op)
	}
}

// wantsSSE reports whether the client asked for an event stream.
func wantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "sse" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// respond runs compute and delivers its result: as one JSON document, or —
// when the client asked for SSE — as a progress stream terminated by a
// result (or error) event.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, compute func() (resultEnvelope, error)) {
	fl, canFlush := w.(http.Flusher)
	if !wantsSSE(r) || !canFlush {
		env, err := compute()
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, env)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	events, unsubscribe := s.hub.subscribe()
	defer unsubscribe()
	done := make(chan struct{})
	var env resultEnvelope
	var cerr error
	go func() {
		defer close(done)
		env, cerr = compute()
	}()
	for {
		select {
		case ev := <-events:
			writeSSE(w, "progress", toWire(ev))
			fl.Flush()
		case <-done:
			if cerr != nil {
				writeSSE(w, "error", map[string]string{"error": cerr.Error()})
			} else {
				writeSSE(w, "result", env)
			}
			fl.Flush()
			return
		case <-r.Context().Done():
			// Client gone: stop streaming. The computation goroutine holds
			// the merged context and winds down on its own.
			<-done
			return
		}
	}
}

// wireEvent is a ProgressEvent flattened for the wire (Err as a string).
type wireEvent struct {
	Kind       string `json:"kind"`
	Experiment string `json:"experiment,omitempty"`
	Title      string `json:"title,omitempty"`
	Sim        string `json:"sim,omitempty"`
	Op         string `json:"op,omitempty"`
	Err        string `json:"err,omitempty"`
	ElapsedMS  int64  `json:"elapsed_ms,omitempty"`
}

func toWire(ev onocsim.ProgressEvent) wireEvent {
	out := wireEvent{
		Kind:       ev.Kind.String(),
		Experiment: ev.Experiment,
		Title:      ev.Title,
		Sim:        ev.Sim,
		Op:         ev.Op,
		ElapsedMS:  ev.Elapsed.Milliseconds(),
	}
	if ev.Err != nil {
		out.Err = ev.Err.Error()
	}
	return out
}

// writeSSE emits one Server-Sent Event with a JSON data payload.
func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(`{"error":"marshal failure"}`)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
