package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"onocsim"
	"onocsim/internal/config"
	"onocsim/internal/sweep"
)

// tinySweep is a 4-arm grid whose two electrical arms collapse to one unique
// job (the mesh observes neither wavelengths nor optical faults), so the
// envelope's accounting proves fingerprint-level dedup inside one request.
const tinySweep = `{"name":"tiny","networks":["electrical","optical"],"cores":[16],"wavelengths":[4,16],"faults":["off"],"kernels":["stencil"],"quick":true}`

func postSweep(t *testing.T, ts string, body string) sweepEnvelope {
	t.Helper()
	code, raw := postJSON(t, ts+"/v1/sweeps", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	var env sweepEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	return env
}

// The sweep endpoint collapses identity-equal arms inside a request, serves
// a repeated request entirely from the session memo (zero new computations),
// and returns the exact table bytes the in-process pipeline — and hence the
// CLI — produces for the same spec.
func TestSweepDedupAndCLIParity(t *testing.T) {
	_, ts := newTestServer(t)
	env := postSweep(t, ts.URL, tinySweep)
	if env.Version != ResponseVersion || env.Status != "ok" || env.Name != "tiny" {
		t.Fatalf("bad envelope: %+v", env)
	}
	if env.Arms != 4 || env.UniqueJobs != 3 {
		t.Fatalf("dedup accounting: %d arms -> %d unique jobs, want 4 -> 3", env.Arms, env.UniqueJobs)
	}
	if env.Simulated != env.UniqueJobs-env.Pruned {
		t.Fatalf("accounting broken: %d simulated, %d unique - %d pruned", env.Simulated, env.UniqueJobs, env.Pruned)
	}

	// A second identical POST reuses every arm's memoized result: the
	// session computes nothing new, and the tables are byte-identical.
	misses := serverStats(t, ts).Cache.Misses
	again := postSweep(t, ts.URL, tinySweep)
	if got := serverStats(t, ts).Cache.Misses; got != misses {
		t.Fatalf("repeated sweep recomputed: misses %d -> %d", misses, got)
	}
	if !bytes.Equal(env.Front, again.Front) || !bytes.Equal(env.Summary, again.Summary) {
		t.Fatalf("repeated sweep changed tables:\n%s\nvs\n%s", env.Front, again.Front)
	}

	// Parity with the in-process pipeline on a fresh session (the CLI path):
	// the envelope embeds the same table bytes sweep.Run marshals.
	spec, err := config.ParseSweep([]byte(tinySweep))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sweep.Run(context.Background(), spec, sweep.Options{Session: onocsim.NewSession("")})
	if err != nil {
		t.Fatal(err)
	}
	front, err := json.Marshal(res.Front)
	if err != nil {
		t.Fatal(err)
	}
	summary, err := json.Marshal(res.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(front, env.Front) {
		t.Fatalf("service front diverged from pipeline front:\n%s\nvs\n%s", env.Front, front)
	}
	if !bytes.Equal(summary, env.Summary) {
		t.Fatalf("service summary diverged from pipeline summary:\n%s\nvs\n%s", env.Summary, summary)
	}
}

// An empty body runs the built-in default grid; a bad spec is a 400.
func TestSweepSpecValidation(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/sweeps", `{"cores":[7]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d: %s", code, body)
	}
	code, body = postJSON(t, ts.URL+"/v1/sweeps", `{"unknown_axis":[1]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d: %s", code, body)
	}
}
