package enoc

import (
	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// vcBuf is one virtual-channel input buffer.
type vcBuf struct {
	q []*flit
	// owner is the packet currently allocated to this VC; a VC is busy
	// from head-flit allocation until its tail flit departs.
	owner *packet
	// outPort/outVC are the route decision for the owner packet; they are
	// computed once per packet at this router.
	outPort int
	outVC   int
	routed  bool
	granted bool
}

// link models a point-to-point channel with a fixed traversal delay. Flits
// pushed at cycle t surface at the downstream input buffer at t+delay.
// wrap marks torus wraparound links — the datelines of the VC discipline.
type link struct {
	delay    sim.Tick
	dst      *router
	dstPort  int
	wrap     bool
	inflight []linkFlit
}

type linkFlit struct {
	at sim.Tick
	f  *flit
}

// router is one mesh node: five ports (N/S/E/W/local), VCs per port,
// combined VC+switch allocation, one flit per output port per cycle.
type router struct {
	id, x, y int
	net      *Network

	in [numPorts][]vcBuf
	// out[p] describes the downstream of output port p: the link (nil for
	// unconnected edges and for the local ejection port), the mirrored
	// credit count per downstream VC, and the mirrored busy state used by
	// VC allocation.
	outLink   [numPorts]*link
	outCredit [numPorts][]int
	outBusy   [numPorts][]bool

	// upstream[p] identifies the router and output port feeding input
	// port p, so credits and VC releases can flow back. The local port
	// has no upstream; the network interface reads buffer state directly.
	upstream [numPorts]*upstreamRef

	// rr are round-robin arbitration pointers, one per output port, over
	// the flattened (inputPort, vc) space.
	rr [numPorts]int

	// occupancy counts buffered flits across all input VCs; allocate is
	// skipped entirely for empty routers, the dominant case at kernel
	// loads (see BenchmarkTickElectrical).
	occupancy int
	// linkLoad counts flits in flight on this router's outgoing links so
	// drainLinks can skip quiet routers.
	linkLoad int
}

// upstreamRef points back at the fabric element feeding an input port.
type upstreamRef struct {
	r    *router
	port int
}

func newRouter(id, x, y int, net *Network) *router {
	r := &router{id: id, x: x, y: y, net: net}
	vcs := net.cfg.VCs
	for p := 0; p < numPorts; p++ {
		r.in[p] = make([]vcBuf, vcs)
		r.outCredit[p] = make([]int, vcs)
		r.outBusy[p] = make([]bool, vcs)
		for v := 0; v < vcs; v++ {
			r.outCredit[p][v] = net.cfg.BufDepth
		}
	}
	return r
}

// vcRange returns the half-open VC range a message class may use. When
// fewer VCs than classes exist every class shares the full range (acceptable
// for synthetic traffic; the coherent system configures VCs ≥ classes).
func (r *router) vcRange(c noc.Class) (lo, hi int) {
	vcs := r.net.cfg.VCs
	if vcs < int(noc.NumClasses) {
		return 0, vcs
	}
	lo = int(c) * vcs / int(noc.NumClasses)
	hi = (int(c) + 1) * vcs / int(noc.NumClasses)
	return lo, hi
}

// acceptFlit appends a flit arriving on (port, vc) to the input buffer. The
// caller is responsible for having respected credits; overflow is a flow
// control protocol violation and panics.
func (r *router) acceptFlit(port, vc int, f *flit) {
	b := &r.in[port][vc]
	if len(b.q) >= r.net.cfg.BufDepth {
		panic("enoc: input buffer overflow — credit protocol violated")
	}
	f.readyAt = r.net.now + sim.Tick(r.net.cfg.RouterStages)
	f.inPort = port
	f.vcAtRouter = vc
	if f.isHead {
		if b.owner != nil {
			panic("enoc: head flit arrived on busy VC — allocation protocol violated")
		}
		b.owner = f.pkt
		b.routed = false
		b.granted = false
	}
	b.q = append(b.q, f)
	r.occupancy++
	r.net.power.bufferWrites++
}

// drainLinks surfaces link flits whose delay expired.
func (r *router) drainLinks() {
	if r.linkLoad == 0 {
		return
	}
	for p := 0; p < numPorts; p++ {
		l := r.outLink[p]
		if l == nil || len(l.inflight) == 0 {
			continue
		}
		keep := l.inflight[:0]
		for _, lf := range l.inflight {
			if lf.at <= r.net.now {
				l.dst.acceptFlit(l.dstPort, lf.f.vcOnWire, lf.f)
				r.linkLoad--
			} else {
				keep = append(keep, lf)
			}
		}
		l.inflight = keep
	}
}

// allocate performs combined route computation, VC allocation and switch
// allocation for all output ports of this router in one cycle, moving at
// most one flit per output port.
func (r *router) allocate() {
	if r.occupancy == 0 {
		return
	}
	vcs := r.net.cfg.VCs
	slots := numPorts * vcs
	for outPort := 0; outPort < numPorts; outPort++ {
		start := r.rr[outPort]
		for k := 0; k < slots; k++ {
			s := (start + k) % slots
			inPort := s / vcs
			vc := s % vcs
			if inPort == outPort {
				continue // U-turns never occur under minimal routing
			}
			b := &r.in[inPort][vc]
			if len(b.q) == 0 {
				continue
			}
			f := b.q[0]
			if f.readyAt > r.net.now {
				continue
			}
			if f.isHead && !b.routed {
				b.outPort = r.route(f.pkt)
				b.routed = true
				r.net.power.routeComps++
			}
			if b.outPort != outPort {
				continue
			}
			if f.isHead && !b.granted {
				if !r.grantVC(b, f.pkt) {
					continue // no free downstream VC this cycle
				}
			}
			if !r.forward(b, f) {
				continue // no credit this cycle
			}
			r.rr[outPort] = (s + 1) % slots
			break // one flit per output port per cycle
		}
	}
}

// grantVC tries to allocate a downstream VC for the packet heading out of
// b.outPort. It reports success and records the grant in b.outVC. The local
// ejection port has no downstream buffers and therefore needs no VC.
func (r *router) grantVC(b *vcBuf, p *packet) bool {
	if b.outPort == portLocal {
		b.outVC = 0
		b.granted = true
		return true
	}
	lo, hi := r.vcRange(p.msg.Class)
	if r.net.torus {
		// Dateline discipline: exactly one VC before the wrap crossing,
		// the other after. This breaks the ring cycle each unidirectional
		// torus dimension would otherwise form.
		v := lo
		if p.crossedWrap {
			v = lo + 1
		}
		if v >= hi || r.outBusy[b.outPort][v] {
			return false
		}
		r.outBusy[b.outPort][v] = true
		b.outVC = v
		b.granted = true
		r.net.power.vcAllocs++
		return true
	}
	for v := lo; v < hi; v++ {
		if !r.outBusy[b.outPort][v] {
			r.outBusy[b.outPort][v] = true
			b.outVC = v
			b.granted = true
			r.net.power.vcAllocs++
			return true
		}
	}
	return false
}

// forward moves the head-of-queue flit of b through the crossbar to
// b.outPort, consuming one credit. It reports whether the flit moved.
func (r *router) forward(b *vcBuf, f *flit) bool {
	out := b.outPort
	if out == portLocal {
		// Ejection: the local port has unbounded sink bandwidth per VC
		// (standard simplification; endpoint contention is modelled in
		// the protocol layer above).
		r.popFlit(b, f)
		r.net.eject(r.id, f)
		return true
	}
	if r.outCredit[out][b.outVC] <= 0 {
		return false
	}
	r.outCredit[out][b.outVC]--
	f.vcOnWire = b.outVC
	l := r.outLink[out]
	if l.wrap && f.isHead {
		f.pkt.crossedWrap = true
	}
	l.inflight = append(l.inflight, linkFlit{at: r.net.now + l.delay, f: f})
	r.linkLoad++
	r.popFlit(b, f)
	r.net.power.xbarTraversals++
	r.net.power.linkTraversals++
	if f.isHead {
		f.pkt.hops++
	}
	return true
}

// popFlit removes the forwarded flit from its buffer, returning the credit
// upstream and releasing the VC on tail departure.
func (r *router) popFlit(b *vcBuf, f *flit) {
	b.q = b.q[1:]
	r.occupancy--
	r.net.power.bufferReads++
	// Return one credit and, on tail, the VC itself to the upstream
	// mirror of this input buffer.
	if up := r.upstream[f.inPort]; up != nil {
		up.r.outCredit[up.port][f.vcAtRouter]++
		if f.isTail {
			up.r.outBusy[up.port][f.vcAtRouter] = false
		}
	}
	if f.isTail {
		b.owner = nil
		b.routed = false
		b.granted = false
	}
}
