package enoc

import (
	"fmt"

	"onocsim/internal/config"
	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// Network is the electrical mesh fabric (optionally a torus). It implements
// noc.Network.
type Network struct {
	cfg   config.Mesh
	width int
	nodes int
	torus bool

	now     sim.Tick
	deliver noc.DeliverFunc
	stats   *noc.Stats
	power   powerCounters

	routers []*router
	nis     []*netIface

	// selfQ holds Src==Dst messages pending their next-cycle delivery.
	selfQ []selfMsg
	// inflight counts injected-but-undelivered packets (including
	// self-messages) for Busy.
	inflight int
}

type selfMsg struct {
	at  sim.Tick
	msg *noc.Message
}

// New builds a width×width mesh where width² equals nodes. It panics on a
// non-square node count, matching the config validation contract.
func New(nodes int, cfg config.Mesh) *Network {
	width := 1
	for width*width < nodes {
		width++
	}
	if width*width != nodes {
		panic(fmt.Sprintf("enoc: %d nodes is not a perfect square", nodes))
	}
	n := &Network{cfg: cfg, width: width, nodes: nodes, torus: cfg.Topology == "torus", stats: noc.NewStats()}
	n.routers = make([]*router, nodes)
	for id := 0; id < nodes; id++ {
		n.routers[id] = newRouter(id, id%width, id/width, n)
	}
	// Wire neighbor links and the upstream credit paths.
	connect := func(from *router, outPort int, to *router, inPort int, wrap bool) {
		from.outLink[outPort] = &link{delay: sim.Tick(cfg.LinkCycles), dst: to, dstPort: inPort, wrap: wrap}
		to.upstream[inPort] = &upstreamRef{r: from, port: outPort}
	}
	for id := 0; id < nodes; id++ {
		r := n.routers[id]
		if r.y > 0 {
			connect(r, portNorth, n.routers[id-width], portSouth, false)
		} else if n.torus && width > 1 {
			connect(r, portNorth, n.routers[r.x+(width-1)*width], portSouth, true)
		}
		if r.y < width-1 {
			connect(r, portSouth, n.routers[id+width], portNorth, false)
		} else if n.torus && width > 1 {
			connect(r, portSouth, n.routers[r.x], portNorth, true)
		}
		if r.x < width-1 {
			connect(r, portEast, n.routers[id+1], portWest, false)
		} else if n.torus && width > 1 {
			connect(r, portEast, n.routers[r.y*width], portWest, true)
		}
		if r.x > 0 {
			connect(r, portWest, n.routers[id-1], portEast, false)
		} else if n.torus && width > 1 {
			connect(r, portWest, n.routers[r.y*width+width-1], portEast, true)
		}
	}
	n.nis = make([]*netIface, nodes)
	for id := 0; id < nodes; id++ {
		n.nis[id] = &netIface{node: id, net: n}
	}
	return n
}

// Nodes implements noc.Network.
func (n *Network) Nodes() int { return n.nodes }

// Width returns the mesh edge length.
func (n *Network) Width() int { return n.width }

// Now implements noc.Network.
func (n *Network) Now() sim.Tick { return n.now }

// Stats implements noc.Network.
func (n *Network) Stats() *noc.Stats { return n.stats }

// SetDeliver implements noc.Network.
func (n *Network) SetDeliver(fn noc.DeliverFunc) { n.deliver = fn }

// Inject implements noc.Network.
func (n *Network) Inject(m *noc.Message) {
	if m.Src < 0 || m.Src >= n.nodes || m.Dst < 0 || m.Dst >= n.nodes {
		panic(fmt.Sprintf("enoc: message %d endpoints (%d->%d) out of range [0,%d)", m.ID, m.Src, m.Dst, n.nodes))
	}
	m.Inject = n.now
	n.stats.Injected++
	n.inflight++
	if m.Src == m.Dst {
		n.selfQ = append(n.selfQ, selfMsg{at: n.now + 1, msg: m})
		return
	}
	p := &packet{msg: m, nflits: flitsFor(m.Bytes, n.cfg.FlitBytes)}
	n.nis[m.Src].enqueue(p)
}

// Tick implements noc.Network: link drain, then allocation, then injection,
// all in deterministic node order.
func (n *Network) Tick() {
	n.now++
	// Self-messages bypass the fabric with a one-cycle loopback latency.
	if len(n.selfQ) > 0 {
		keep := n.selfQ[:0]
		for _, s := range n.selfQ {
			if s.at <= n.now {
				s.msg.Arrive = n.now
				n.stats.RecordDelivery(s.msg)
				n.stats.HopCount.Add(0)
				n.inflight--
				if n.deliver != nil {
					n.deliver(s.msg)
				}
			} else {
				keep = append(keep, s)
			}
		}
		n.selfQ = keep
	}
	for _, r := range n.routers {
		r.drainLinks()
	}
	for _, r := range n.routers {
		r.allocate()
	}
	for _, ni := range n.nis {
		ni.tryInject()
	}
}

// eject is called by a router's local port as flits complete.
func (n *Network) eject(node int, f *flit) {
	if !f.isTail {
		return
	}
	m := f.pkt.msg
	if node != m.Dst {
		panic(fmt.Sprintf("enoc: message %d ejected at %d, expected %d", m.ID, node, m.Dst))
	}
	m.Arrive = n.now
	n.stats.RecordDelivery(m)
	n.stats.HopCount.Add(float64(f.pkt.hops))
	n.stats.QueueDelay.Add(float64(f.pkt.enterNI - m.Inject))
	n.inflight--
	if n.deliver != nil {
		n.deliver(m)
	}
}

// Busy implements noc.Network.
func (n *Network) Busy() bool { return n.inflight > 0 }

// ZeroLoadLatency implements noc.Network: per-hop pipeline plus wire delay
// plus serialization, with one cycle of injection overhead.
func (n *Network) ZeroLoadLatency(src, dst, bytes int) sim.Tick {
	if src == dst {
		return 1
	}
	sx, sy := src%n.width, src/n.width
	dx, dy := dst%n.width, dst/n.width
	hx, hy := abs(dx-sx), abs(dy-sy)
	if n.torus {
		if w := n.width - hx; w < hx {
			hx = w
		}
		if w := n.width - hy; w < hy {
			hy = w
		}
	}
	hops := hx + hy
	nflits := flitsFor(bytes, n.cfg.FlitBytes)
	return sim.Tick(hops+1)*sim.Tick(n.cfg.RouterStages) + sim.Tick(hops)*sim.Tick(n.cfg.LinkCycles) + sim.Tick(nflits)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// netIface is the per-node network interface: per-class injection queues,
// one flit injected per cycle, VC allocation against the local input port.
type netIface struct {
	node    int
	net     *Network
	classQ  [noc.NumClasses][]*packet
	sending [noc.NumClasses]*sendState
	rr      int
}

// sendState tracks an in-progress packet injection.
type sendState struct {
	pkt  *packet
	vc   int
	next int
}

func (ni *netIface) enqueue(p *packet) {
	c := p.msg.Class
	if c >= noc.NumClasses {
		panic(fmt.Sprintf("enoc: message %d has invalid class %d", p.msg.ID, c))
	}
	ni.classQ[c] = append(ni.classQ[c], p)
}

// tryInject pushes at most one flit into the local router this cycle,
// round-robining across classes for fairness.
func (ni *netIface) tryInject() {
	r := ni.net.routers[ni.node]
	for k := 0; k < int(noc.NumClasses); k++ {
		c := noc.Class((ni.rr + k) % int(noc.NumClasses))
		if ni.injectClass(r, c) {
			ni.rr = (ni.rr + k + 1) % int(noc.NumClasses)
			return
		}
	}
}

// injectClass attempts one flit for class c; reports whether a flit moved.
func (ni *netIface) injectClass(r *router, c noc.Class) bool {
	st := ni.sending[c]
	if st == nil {
		if len(ni.classQ[c]) == 0 {
			return false
		}
		// Find a free local-input VC in this class's partition.
		lo, hi := r.vcRange(c)
		vc := -1
		for v := lo; v < hi; v++ {
			if r.in[portLocal][v].owner == nil && len(r.in[portLocal][v].q) < ni.net.cfg.BufDepth {
				vc = v
				break
			}
		}
		if vc < 0 {
			return false
		}
		p := ni.classQ[c][0]
		ni.classQ[c] = ni.classQ[c][1:]
		p.enterNI = ni.net.now
		st = &sendState{pkt: p, vc: vc}
		ni.sending[c] = st
	}
	b := &r.in[portLocal][st.vc]
	if len(b.q) >= ni.net.cfg.BufDepth {
		return false
	}
	f := &flit{
		pkt:    st.pkt,
		idx:    st.next,
		isHead: st.next == 0,
		isTail: st.next == st.pkt.nflits-1,
	}
	r.acceptFlit(portLocal, st.vc, f)
	st.next++
	if st.next == st.pkt.nflits {
		ni.sending[c] = nil
	}
	return true
}
