package enoc

import (
	"fmt"

	"onocsim/internal/config"
	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// Network is the electrical mesh fabric (optionally a torus). It implements
// noc.Network.
type Network struct {
	cfg   config.Mesh
	width int
	nodes int
	torus bool

	now     sim.Tick
	deliver noc.DeliverFunc
	stats   *noc.Stats
	power   powerCounters

	routers []*router
	nis     []*netIface

	// selfQ holds Src==Dst messages pending their next-cycle delivery.
	selfQ []selfMsg
	// inflight counts injected-but-undelivered packets (including
	// self-messages) for Busy.
	inflight int

	// pktFree/flitFree recycle the per-message wormhole state: a packet
	// and its flits die at ejection and are reborn at the next Inject,
	// so a steady-state run allocates almost nothing per message.
	pktFree  []*packet
	flitFree []*flit
}

// newPacket returns a recycled or fresh packet wrapping m.
func (n *Network) newPacket(m *noc.Message) *packet {
	if l := len(n.pktFree); l > 0 {
		p := n.pktFree[l-1]
		n.pktFree[l-1] = nil
		n.pktFree = n.pktFree[:l-1]
		*p = packet{msg: m, nflits: flitsFor(m.Bytes, n.cfg.FlitBytes)}
		return p
	}
	return &packet{msg: m, nflits: flitsFor(m.Bytes, n.cfg.FlitBytes)}
}

// newFlit returns a recycled or fresh flit.
func (n *Network) newFlit() *flit {
	if l := len(n.flitFree); l > 0 {
		f := n.flitFree[l-1]
		n.flitFree[l-1] = nil
		n.flitFree = n.flitFree[:l-1]
		*f = flit{}
		return f
	}
	return &flit{}
}

type selfMsg struct {
	at  sim.Tick
	msg *noc.Message
}

// New builds a width×width mesh where width² equals nodes. It panics on a
// non-square node count, matching the config validation contract.
func New(nodes int, cfg config.Mesh) *Network {
	width := 1
	for width*width < nodes {
		width++
	}
	if width*width != nodes {
		panic(fmt.Sprintf("enoc: %d nodes is not a perfect square", nodes))
	}
	n := &Network{cfg: cfg, width: width, nodes: nodes, torus: cfg.Topology == "torus", stats: noc.NewStats()}
	n.routers = make([]*router, nodes)
	for id := 0; id < nodes; id++ {
		n.routers[id] = newRouter(id, id%width, id/width, n)
	}
	// Wire neighbor links and the upstream credit paths.
	connect := func(from *router, outPort int, to *router, inPort int, wrap bool) {
		from.outLink[outPort] = &link{delay: sim.Tick(cfg.LinkCycles), dst: to, dstPort: inPort, wrap: wrap}
		to.upstream[inPort] = &upstreamRef{r: from, port: outPort}
	}
	for id := 0; id < nodes; id++ {
		r := n.routers[id]
		if r.y > 0 {
			connect(r, portNorth, n.routers[id-width], portSouth, false)
		} else if n.torus && width > 1 {
			connect(r, portNorth, n.routers[r.x+(width-1)*width], portSouth, true)
		}
		if r.y < width-1 {
			connect(r, portSouth, n.routers[id+width], portNorth, false)
		} else if n.torus && width > 1 {
			connect(r, portSouth, n.routers[r.x], portNorth, true)
		}
		if r.x < width-1 {
			connect(r, portEast, n.routers[id+1], portWest, false)
		} else if n.torus && width > 1 {
			connect(r, portEast, n.routers[r.y*width], portWest, true)
		}
		if r.x > 0 {
			connect(r, portWest, n.routers[id-1], portEast, false)
		} else if n.torus && width > 1 {
			connect(r, portWest, n.routers[r.y*width+width-1], portEast, true)
		}
	}
	n.nis = make([]*netIface, nodes)
	for id := 0; id < nodes; id++ {
		n.nis[id] = &netIface{node: id, net: n}
	}
	return n
}

// Nodes implements noc.Network.
func (n *Network) Nodes() int { return n.nodes }

// Width returns the mesh edge length.
func (n *Network) Width() int { return n.width }

// Now implements noc.Network.
func (n *Network) Now() sim.Tick { return n.now }

// Stats implements noc.Network.
func (n *Network) Stats() *noc.Stats { return n.stats }

// SetDeliver implements noc.Network.
func (n *Network) SetDeliver(fn noc.DeliverFunc) { n.deliver = fn }

// Inject implements noc.Network.
func (n *Network) Inject(m *noc.Message) {
	if m.Src < 0 || m.Src >= n.nodes || m.Dst < 0 || m.Dst >= n.nodes {
		panic(fmt.Sprintf("enoc: message %d endpoints (%d->%d) out of range [0,%d)", m.ID, m.Src, m.Dst, n.nodes))
	}
	m.Inject = n.now
	n.stats.Injected++
	n.inflight++
	if m.Src == m.Dst {
		n.selfQ = append(n.selfQ, selfMsg{at: n.now + 1, msg: m})
		return
	}
	n.nis[m.Src].enqueue(n.newPacket(m))
}

// Tick implements noc.Network: link drain, then allocation, then injection,
// all in deterministic node order.
func (n *Network) Tick() {
	n.now++
	// Self-messages bypass the fabric with a one-cycle loopback latency.
	if len(n.selfQ) > 0 {
		keep := n.selfQ[:0]
		for _, s := range n.selfQ {
			if s.at <= n.now {
				s.msg.Arrive = n.now
				n.stats.RecordDelivery(s.msg)
				n.stats.HopCount.Add(0)
				n.inflight--
				if n.deliver != nil {
					n.deliver(s.msg)
				}
			} else {
				keep = append(keep, s)
			}
		}
		n.selfQ = keep
	}
	for _, r := range n.routers {
		r.drainLinks()
	}
	for _, r := range n.routers {
		r.allocate()
	}
	for _, ni := range n.nis {
		ni.tryInject()
	}
}

// eject is called by a router's local port as flits complete. Ejected flits
// (and, on tail, the packet) return to the fabric free lists.
func (n *Network) eject(node int, f *flit) {
	if !f.isTail {
		n.flitFree = append(n.flitFree, f)
		return
	}
	p := f.pkt
	n.flitFree = append(n.flitFree, f)
	m := p.msg
	if node != m.Dst {
		panic(fmt.Sprintf("enoc: message %d ejected at %d, expected %d", m.ID, node, m.Dst))
	}
	m.Arrive = n.now
	n.stats.RecordDelivery(m)
	n.stats.HopCount.Add(float64(p.hops))
	n.stats.QueueDelay.Add(float64(p.enterNI - m.Inject))
	n.pktFree = append(n.pktFree, p)
	n.inflight--
	if n.deliver != nil {
		n.deliver(m)
	}
}

// Busy implements noc.Network.
func (n *Network) Busy() bool { return n.inflight > 0 }

// Lookahead implements noc.Network: the fastest cross-node interaction is a
// single-hop packet — one router pipeline traversal plus one link flight.
// The mesh is not ScheduleShardable (wormhole flits from different sources
// contend for shared links every cycle), so this bound serves only the
// generic conservative-window machinery.
func (n *Network) Lookahead() sim.Tick {
	la := sim.Tick(n.cfg.RouterStages + n.cfg.LinkCycles)
	if la < 1 {
		la = 1
	}
	return la
}

// NextWake implements noc.Network. With flits in routers or NIs the mesh
// does observable work every cycle, so the only skippable states are a
// fully drained fabric and one where the sole survivors are self-messages
// awaiting their fixed loopback delivery.
func (n *Network) NextWake() sim.Tick {
	if n.inflight == 0 {
		return noc.Never
	}
	if n.inflight == len(n.selfQ) {
		wake := noc.Never
		for _, s := range n.selfQ {
			if s.at < wake {
				wake = s.at
			}
		}
		return wake
	}
	return n.now + 1
}

// SkipTo implements noc.Network. In the skippable states (see NextWake) no
// router, link or NI holds live work, and all remaining state — self-queue
// delivery times, flit readyAt stamps — is kept in absolute cycles, so the
// skip is a pure clock jump.
func (n *Network) SkipTo(t sim.Tick) {
	if t > n.now {
		n.now = t
	}
}

// Reset implements noc.Resettable: clocks, statistics, power counters,
// queues, buffers, credits and arbitration pointers all return to their
// constructor values. The packet/flit free lists survive — they hold only
// dead state and are the point of reusing the fabric.
func (n *Network) Reset() {
	n.now = 0
	n.stats = noc.NewStats()
	n.power = powerCounters{}
	n.selfQ = n.selfQ[:0]
	n.inflight = 0
	depth := n.cfg.BufDepth
	for _, r := range n.routers {
		for p := 0; p < numPorts; p++ {
			for v := range r.in[p] {
				b := &r.in[p][v]
				b.q = b.q[:0]
				b.owner = nil
				b.routed = false
				b.granted = false
			}
			for v := range r.outCredit[p] {
				r.outCredit[p][v] = depth
				r.outBusy[p][v] = false
			}
			if l := r.outLink[p]; l != nil {
				l.inflight = l.inflight[:0]
			}
			r.rr[p] = 0
		}
		r.occupancy = 0
		r.linkLoad = 0
	}
	for _, ni := range n.nis {
		for c := range ni.classQ {
			ni.classQ[c] = ni.classQ[c][:0]
			ni.sending[c] = sendState{}
		}
		ni.rr = 0
	}
}

// ZeroLoadLatency implements noc.Network: per-hop pipeline plus wire delay
// plus serialization, with one cycle of injection overhead.
func (n *Network) ZeroLoadLatency(src, dst, bytes int) sim.Tick {
	if src == dst {
		return 1
	}
	sx, sy := src%n.width, src/n.width
	dx, dy := dst%n.width, dst/n.width
	hx, hy := abs(dx-sx), abs(dy-sy)
	if n.torus {
		if w := n.width - hx; w < hx {
			hx = w
		}
		if w := n.width - hy; w < hy {
			hy = w
		}
	}
	hops := hx + hy
	nflits := flitsFor(bytes, n.cfg.FlitBytes)
	return sim.Tick(hops+1)*sim.Tick(n.cfg.RouterStages) + sim.Tick(hops)*sim.Tick(n.cfg.LinkCycles) + sim.Tick(nflits)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// netIface is the per-node network interface: per-class injection queues,
// one flit injected per cycle, VC allocation against the local input port.
type netIface struct {
	node    int
	net     *Network
	classQ  [noc.NumClasses][]*packet
	sending [noc.NumClasses]sendState
	rr      int
}

// sendState tracks an in-progress packet injection; pkt == nil means idle.
// Stored by value inside the interface so starting a packet allocates
// nothing.
type sendState struct {
	pkt  *packet
	vc   int
	next int
}

func (ni *netIface) enqueue(p *packet) {
	c := p.msg.Class
	if c >= noc.NumClasses {
		panic(fmt.Sprintf("enoc: message %d has invalid class %d", p.msg.ID, c))
	}
	ni.classQ[c] = append(ni.classQ[c], p)
}

// tryInject pushes at most one flit into the local router this cycle,
// round-robining across classes for fairness.
func (ni *netIface) tryInject() {
	r := ni.net.routers[ni.node]
	for k := 0; k < int(noc.NumClasses); k++ {
		c := noc.Class((ni.rr + k) % int(noc.NumClasses))
		if ni.injectClass(r, c) {
			ni.rr = (ni.rr + k + 1) % int(noc.NumClasses)
			return
		}
	}
}

// injectClass attempts one flit for class c; reports whether a flit moved.
func (ni *netIface) injectClass(r *router, c noc.Class) bool {
	st := &ni.sending[c]
	if st.pkt == nil {
		if len(ni.classQ[c]) == 0 {
			return false
		}
		// Find a free local-input VC in this class's partition.
		lo, hi := r.vcRange(c)
		vc := -1
		for v := lo; v < hi; v++ {
			if r.in[portLocal][v].owner == nil && len(r.in[portLocal][v].q) < ni.net.cfg.BufDepth {
				vc = v
				break
			}
		}
		if vc < 0 {
			return false
		}
		p := ni.classQ[c][0]
		ni.classQ[c][0] = nil
		ni.classQ[c] = ni.classQ[c][1:]
		p.enterNI = ni.net.now
		*st = sendState{pkt: p, vc: vc}
	}
	b := &r.in[portLocal][st.vc]
	if len(b.q) >= ni.net.cfg.BufDepth {
		return false
	}
	f := ni.net.newFlit()
	f.pkt = st.pkt
	f.idx = st.next
	f.isHead = st.next == 0
	f.isTail = st.next == st.pkt.nflits-1
	r.acceptFlit(portLocal, st.vc, f)
	st.next++
	if st.next == st.pkt.nflits {
		st.pkt = nil
	}
	return true
}
