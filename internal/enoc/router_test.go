package enoc

import (
	"testing"

	"onocsim/internal/config"
	"onocsim/internal/noc"
)

// mkNet builds a small mesh for router-level white-box tests.
func mkNet(nodes int, mutate func(*config.Mesh)) *Network {
	cfg := config.Default().Mesh
	if mutate != nil {
		mutate(&cfg)
	}
	n := New(nodes, cfg)
	n.SetDeliver(func(m *noc.Message) {})
	return n
}

func TestAcceptFlitOverflowPanics(t *testing.T) {
	n := mkNet(4, nil)
	r := n.routers[0]
	for i := 0; i < n.cfg.BufDepth; i++ {
		f := &flit{pkt: &packet{msg: &noc.Message{ID: 1}, nflits: 10}, idx: i + 1}
		r.acceptFlit(portNorth, 0, f)
	}
	defer func() {
		if recover() == nil {
			t.Error("buffer overflow accepted")
		}
	}()
	r.acceptFlit(portNorth, 0, &flit{pkt: &packet{msg: &noc.Message{ID: 2}, nflits: 10}, idx: 99})
}

func TestAcceptHeadOnBusyVCPanics(t *testing.T) {
	n := mkNet(4, nil)
	r := n.routers[0]
	p1 := &packet{msg: &noc.Message{ID: 1}, nflits: 4}
	r.acceptFlit(portNorth, 0, &flit{pkt: p1, isHead: true})
	defer func() {
		if recover() == nil {
			t.Error("second head on busy VC accepted")
		}
	}()
	p2 := &packet{msg: &noc.Message{ID: 2}, nflits: 4}
	r.acceptFlit(portNorth, 0, &flit{pkt: p2, isHead: true})
}

func TestRouteXYAllQuadrants(t *testing.T) {
	n := mkNet(16, nil) // 4×4, router 5 = (1,1)
	r := n.routers[5]
	cases := map[int]int{
		6:  portEast,  // (2,1)
		4:  portWest,  // (0,1)
		9:  portSouth, // (1,2)
		1:  portNorth, // (1,0)
		10: portEast,  // (2,2): X first
		0:  portWest,  // (0,0): X first
		5:  portLocal,
	}
	for dst, want := range cases {
		p := &packet{msg: &noc.Message{Dst: dst}}
		if got := r.route(p); got != want {
			t.Errorf("route(5→%d) = %s, want %s", dst, portNames[got], portNames[want])
		}
	}
}

func TestWestFirstNeverTurnsToWestLate(t *testing.T) {
	cfg := config.Default().Mesh
	cfg.Routing = "westfirst"
	n := New(16, cfg)
	// From (3,1)=7 to (0,2)=8: must go west immediately.
	p := &packet{msg: &noc.Message{Dst: 8}}
	if got := n.routers[7].route(p); got != portWest {
		t.Fatalf("westward packet routed %s first", portNames[got])
	}
	// From (0,1)=4 to (2,2)=10: dx>0, dy>0 — adaptive between E and S,
	// never W or N.
	p2 := &packet{msg: &noc.Message{Dst: 10}}
	got := n.routers[4].route(p2)
	if got != portEast && got != portSouth {
		t.Fatalf("adaptive choice %s not productive", portNames[got])
	}
}

func TestInjectRejectsBadClass(t *testing.T) {
	n := mkNet(4, nil)
	defer func() {
		if recover() == nil {
			t.Error("invalid class accepted")
		}
	}()
	n.Inject(&noc.Message{ID: 1, Src: 0, Dst: 1, Bytes: 8, Class: noc.Class(9)})
}

func TestSingleVCStillDelivers(t *testing.T) {
	// Degenerate fabric: 1 VC shared by all classes, depth 1 buffers.
	n := mkNet(16, func(c *config.Mesh) { c.VCs = 1; c.BufDepth = 1 })
	got := 0
	n.SetDeliver(func(m *noc.Message) { got++ })
	for i := 0; i < 32; i++ {
		n.Inject(&noc.Message{ID: uint64(i + 1), Src: i % 16, Dst: (i * 7) % 16, Bytes: 64, Class: noc.ClassRequest})
	}
	for i := 0; i < 100_000 && n.Busy(); i++ {
		n.Tick()
	}
	want := 0
	for i := 0; i < 32; i++ {
		want++
	}
	if got != want {
		t.Fatalf("delivered %d of %d on 1-VC fabric", got, want)
	}
}

func TestMultiFlitPacketStaysContiguousPerVC(t *testing.T) {
	// Two long packets from the same source to the same destination: the
	// destination must see each packet's flits complete (tail after head)
	// exactly once — guaranteed by eject() only firing on tails and the
	// delivery counter matching.
	n := mkNet(16, nil)
	got := 0
	n.SetDeliver(func(m *noc.Message) { got++ })
	n.Inject(&noc.Message{ID: 1, Src: 0, Dst: 15, Bytes: 160, Class: noc.ClassRequest})
	n.Inject(&noc.Message{ID: 2, Src: 0, Dst: 15, Bytes: 160, Class: noc.ClassRequest})
	for i := 0; i < 10_000 && n.Busy(); i++ {
		n.Tick()
	}
	if got != 2 {
		t.Fatalf("delivered %d of 2 long packets", got)
	}
}

func TestQueueDelayGrowsWithLoad(t *testing.T) {
	light := mkNet(16, nil)
	heavy := mkNet(16, nil)
	for i := 0; i < 4; i++ {
		light.Inject(&noc.Message{ID: uint64(i + 1), Src: 0, Dst: 15, Bytes: 64, Class: noc.ClassRequest})
	}
	for i := 0; i < 200; i++ {
		heavy.Inject(&noc.Message{ID: uint64(i + 1), Src: 0, Dst: 15, Bytes: 64, Class: noc.ClassRequest})
	}
	for i := 0; i < 100_000 && (light.Busy() || heavy.Busy()); i++ {
		if light.Busy() {
			light.Tick()
		}
		if heavy.Busy() {
			heavy.Tick()
		}
	}
	if heavy.Stats().QueueDelay.Mean() <= light.Stats().QueueDelay.Mean() {
		t.Fatalf("queue delay did not grow with load: %g vs %g",
			heavy.Stats().QueueDelay.Mean(), light.Stats().QueueDelay.Mean())
	}
}
