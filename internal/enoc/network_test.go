package enoc

import (
	"testing"

	"onocsim/internal/config"
	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

func meshCfg() config.Mesh { return config.Default().Mesh }

// drain ticks until idle or the bound, returning whether the fabric drained.
func drain(n *Network, bound int) bool {
	for i := 0; i < bound && n.Busy(); i++ {
		n.Tick()
	}
	return !n.Busy()
}

func TestSingleMessageLatency(t *testing.T) {
	cfg := meshCfg()
	n := New(16, cfg)
	var got *noc.Message
	n.SetDeliver(func(m *noc.Message) { got = m })
	n.Inject(&noc.Message{ID: 1, Src: 0, Dst: 5, Bytes: 64, Class: noc.ClassRequest})
	if !drain(n, 500) {
		t.Fatal("did not drain")
	}
	if got == nil {
		t.Fatal("no delivery")
	}
	// 0→5 on a 4×4 mesh: dx=1, dy=1 → 2 hops. Uncontended latency should
	// be within a couple of cycles of the zero-load estimate.
	zll := n.ZeroLoadLatency(0, 5, 64)
	lat := got.Latency()
	if lat < zll-2 || lat > zll+4 {
		t.Fatalf("latency %d far from zero-load estimate %d", lat, zll)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	for _, routing := range []string{"xy", "westfirst"} {
		routing := routing
		t.Run(routing, func(t *testing.T) {
			cfg := meshCfg()
			cfg.Routing = routing
			n := New(16, cfg)
			delivered := map[uint64]bool{}
			n.SetDeliver(func(m *noc.Message) {
				if delivered[m.ID] {
					t.Errorf("message %d delivered twice", m.ID)
				}
				delivered[m.ID] = true
				want := int(m.ID-1) % 16
				if m.Dst != want {
					t.Errorf("message %d at wrong node", m.ID)
				}
			})
			id := uint64(0)
			for s := 0; s < 16; s++ {
				for d := 0; d < 16; d++ {
					id++
					n.Inject(&noc.Message{ID: id, Src: s, Dst: d, Bytes: 32, Class: noc.ClassRequest})
				}
			}
			// Encode dst in ID for the check above: ID = s*16+d+1 → dst = (ID-1)%16.
			if !drain(n, 50_000) {
				t.Fatal("all-pairs did not drain")
			}
			if len(delivered) != 256 {
				t.Fatalf("delivered %d of 256", len(delivered))
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Tick, float64) {
		cfg := meshCfg()
		n := New(16, cfg)
		n.SetDeliver(func(m *noc.Message) {})
		rng := sim.NewRNG(99)
		id := uint64(0)
		for cyc := 0; cyc < 300; cyc++ {
			for src := 0; src < 16; src++ {
				if rng.Bernoulli(0.15) {
					id++
					n.Inject(&noc.Message{ID: id, Src: src, Dst: rng.Intn(16), Bytes: 8 + rng.Intn(100), Class: noc.Class(rng.Intn(3))})
				}
			}
			n.Tick()
		}
		drain(n, 100_000)
		return n.Now(), n.Stats().Latency.Mean()
	}
	t1, l1 := run()
	t2, l2 := run()
	if t1 != t2 || l1 != l2 {
		t.Fatalf("nondeterministic: (%d,%g) vs (%d,%g)", t1, l1, t2, l2)
	}
}

func TestHeavyLoadDrains(t *testing.T) {
	cfg := meshCfg()
	n := New(16, cfg)
	n.SetDeliver(func(m *noc.Message) {})
	rng := sim.NewRNG(3)
	id := uint64(0)
	// Saturating burst: 50 packets per node at once.
	for k := 0; k < 50; k++ {
		for src := 0; src < 16; src++ {
			id++
			n.Inject(&noc.Message{ID: id, Src: src, Dst: rng.Intn(16), Bytes: 64, Class: noc.Class(rng.Intn(3))})
		}
	}
	if !drain(n, 200_000) {
		t.Fatal("saturating burst did not drain — likely deadlock")
	}
	if n.Stats().Delivered != 800 {
		t.Fatalf("delivered %d of 800", n.Stats().Delivered)
	}
}

func TestCreditsRestoredAfterDrain(t *testing.T) {
	cfg := meshCfg()
	n := New(16, cfg)
	n.SetDeliver(func(m *noc.Message) {})
	rng := sim.NewRNG(5)
	for k := 0; k < 20; k++ {
		for src := 0; src < 16; src++ {
			n.Inject(&noc.Message{ID: uint64(k*16 + src + 1), Src: src, Dst: rng.Intn(16), Bytes: 48, Class: noc.ClassRequest})
		}
	}
	if !drain(n, 100_000) {
		t.Fatal("did not drain")
	}
	for _, r := range n.routers {
		for p := 0; p < numPorts; p++ {
			if r.outLink[p] == nil {
				continue
			}
			for v := 0; v < cfg.VCs; v++ {
				if r.outCredit[p][v] != cfg.BufDepth {
					t.Fatalf("router %d port %d vc %d: credit %d, want %d (credit leak)",
						r.id, p, v, r.outCredit[p][v], cfg.BufDepth)
				}
				if r.outBusy[p][v] {
					t.Fatalf("router %d port %d vc %d: still busy after drain (VC leak)", r.id, p, v)
				}
			}
		}
		for p := 0; p < numPorts; p++ {
			for v := 0; v < cfg.VCs; v++ {
				if len(r.in[p][v].q) != 0 || r.in[p][v].owner != nil {
					t.Fatalf("router %d input %d/%d not empty after drain", r.id, p, v)
				}
			}
		}
	}
}

func TestSelfMessageBypassesFabric(t *testing.T) {
	n := New(16, meshCfg())
	var lat sim.Tick = -1
	n.SetDeliver(func(m *noc.Message) { lat = m.Latency() })
	n.Inject(&noc.Message{ID: 1, Src: 7, Dst: 7, Bytes: 64, Class: noc.ClassResponse})
	n.Tick()
	if lat != 1 {
		t.Fatalf("self-message latency = %d, want 1", lat)
	}
}

func TestZeroLoadLatencyShape(t *testing.T) {
	n := New(64, meshCfg())
	// Monotone in distance.
	if n.ZeroLoadLatency(0, 1, 64) >= n.ZeroLoadLatency(0, 63, 64) {
		t.Fatal("ZLL not increasing with distance")
	}
	// Monotone in size.
	if n.ZeroLoadLatency(0, 9, 16) >= n.ZeroLoadLatency(0, 9, 1024) {
		t.Fatal("ZLL not increasing with size")
	}
	if n.ZeroLoadLatency(5, 5, 64) != 1 {
		t.Fatal("self ZLL should be 1")
	}
}

func TestVCClassPartitioning(t *testing.T) {
	n := New(4, meshCfg())
	r := n.routers[0]
	lo0, hi0 := r.vcRange(noc.ClassRequest)
	lo1, hi1 := r.vcRange(noc.ClassResponse)
	lo2, hi2 := r.vcRange(noc.ClassWriteback)
	if hi0 <= lo0 || hi1 <= lo1 || hi2 <= lo2 {
		t.Fatal("empty VC range for a class")
	}
	// Ranges must not overlap when VCs ≥ classes.
	if hi0 > lo1 || hi1 > lo2 {
		t.Fatalf("overlapping class ranges: [%d,%d) [%d,%d) [%d,%d)", lo0, hi0, lo1, hi1, lo2, hi2)
	}
	if hi2 != 4 {
		t.Fatalf("last class should end at VCs=4, got %d", hi2)
	}

	// With a single VC, all classes share it.
	cfg := meshCfg()
	cfg.VCs = 1
	n1 := New(4, cfg)
	lo, hi := n1.routers[0].vcRange(noc.ClassWriteback)
	if lo != 0 || hi != 1 {
		t.Fatalf("single-VC sharing broken: [%d,%d)", lo, hi)
	}
}

func TestNonSquareNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-square node count accepted")
		}
	}()
	New(10, meshCfg())
}

func TestPowerCountersAccumulate(t *testing.T) {
	n := New(16, meshCfg())
	n.SetDeliver(func(m *noc.Message) {})
	n.Inject(&noc.Message{ID: 1, Src: 0, Dst: 15, Bytes: 128, Class: noc.ClassRequest})
	drain(n, 1000)
	rep := n.PowerReport(n.Now(), 2.0)
	if rep.StaticMW <= 0 {
		t.Fatal("no static power")
	}
	if rep.DynamicMW <= 0 {
		t.Fatal("no dynamic power despite traffic")
	}
	if len(rep.Breakdown) == 0 {
		t.Fatal("no breakdown")
	}
	// More traffic, more dynamic energy per time.
	n2 := New(16, meshCfg())
	n2.SetDeliver(func(m *noc.Message) {})
	for i := 0; i < 50; i++ {
		n2.Inject(&noc.Message{ID: uint64(i + 1), Src: i % 16, Dst: (i + 3) % 16, Bytes: 128, Class: noc.ClassRequest})
	}
	drain(n2, 5000)
	if n2.power.linkTraversals <= n.power.linkTraversals {
		t.Fatal("more packets should traverse more links")
	}
}

func TestHopCountMatchesManhattan(t *testing.T) {
	n := New(16, meshCfg())
	n.SetDeliver(func(m *noc.Message) {})
	n.Inject(&noc.Message{ID: 1, Src: 0, Dst: 15, Bytes: 16, Class: noc.ClassRequest})
	drain(n, 1000)
	// 0→15 on 4×4: dx=3, dy=3 → 6 hops under minimal routing.
	if got := n.Stats().HopCount.Mean(); got != 6 {
		t.Fatalf("hops = %g, want 6", got)
	}
}

func TestWestFirstAdaptiveStillMinimal(t *testing.T) {
	cfg := meshCfg()
	cfg.Routing = "westfirst"
	n := New(16, cfg)
	n.SetDeliver(func(m *noc.Message) {})
	n.Inject(&noc.Message{ID: 1, Src: 3, Dst: 12, Bytes: 16, Class: noc.ClassRequest})
	drain(n, 1000)
	// 3=(3,0) → 12=(0,3): dx=-3, dy=3 → 6 minimal hops.
	if got := n.Stats().HopCount.Mean(); got != 6 {
		t.Fatalf("westfirst hops = %g, want 6 (non-minimal route)", got)
	}
}

func TestFlitsFor(t *testing.T) {
	cases := []struct{ bytes, flit, want int }{
		{0, 16, 1}, {1, 16, 1}, {16, 16, 1}, {17, 16, 2}, {64, 16, 4}, {65, 16, 5},
	}
	for _, c := range cases {
		if got := flitsFor(c.bytes, c.flit); got != c.want {
			t.Errorf("flitsFor(%d,%d) = %d, want %d", c.bytes, c.flit, got, c.want)
		}
	}
}

// torusCfg returns a valid torus configuration (xy routing, 6 VCs).
func torusCfg() config.Mesh {
	cfg := meshCfg()
	cfg.Topology = "torus"
	cfg.VCs = 6
	return cfg
}

func TestTorusWraparoundShortensPaths(t *testing.T) {
	n := New(16, torusCfg())
	n.SetDeliver(func(m *noc.Message) {})
	// 0→15 on a 4×4 torus: (-1,-1) via wraparound = 2 hops, not 6.
	n.Inject(&noc.Message{ID: 1, Src: 0, Dst: 15, Bytes: 16, Class: noc.ClassRequest})
	if !drain(n, 1000) {
		t.Fatal("did not drain")
	}
	if got := n.Stats().HopCount.Mean(); got != 2 {
		t.Fatalf("torus hops = %g, want 2", got)
	}
	if zll := n.ZeroLoadLatency(0, 15, 16); zll >= New(16, meshCfg()).ZeroLoadLatency(0, 15, 16) {
		t.Fatalf("torus ZLL %d not shorter than mesh", zll)
	}
}

func TestTorusAllPairsDelivery(t *testing.T) {
	n := New(16, torusCfg())
	delivered := 0
	n.SetDeliver(func(m *noc.Message) { delivered++ })
	id := uint64(0)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			id++
			n.Inject(&noc.Message{ID: id, Src: s, Dst: d, Bytes: 32, Class: noc.ClassRequest})
		}
	}
	if !drain(n, 100_000) {
		t.Fatal("torus all-pairs did not drain")
	}
	if delivered != 256 {
		t.Fatalf("delivered %d of 256", delivered)
	}
}

func TestTorusHeavyLoadNoDeadlock(t *testing.T) {
	// The deadlock test that matters: rings full of wrapping traffic. All
	// nodes flood their ring-opposite node in both dimensions.
	n := New(64, torusCfg())
	n.SetDeliver(func(m *noc.Message) {})
	rng := sim.NewRNG(17)
	id := uint64(0)
	for k := 0; k < 40; k++ {
		for s := 0; s < 64; s++ {
			id++
			var dst int
			if rng.Bernoulli(0.5) {
				// Ring-opposite (max wrap pressure).
				x, y := s%8, s/8
				dst = (x+4)%8 + ((y+4)%8)*8
			} else {
				dst = rng.Intn(64)
			}
			n.Inject(&noc.Message{ID: id, Src: s, Dst: dst, Bytes: 64, Class: noc.Class(rng.Intn(3))})
		}
	}
	if !drain(n, 500_000) {
		t.Fatal("torus wedged under wrap-heavy load — dateline scheme broken")
	}
	if n.Stats().Delivered != 64*40 {
		t.Fatalf("delivered %d of %d", n.Stats().Delivered, 64*40)
	}
}

func TestTorusDeterminism(t *testing.T) {
	run := func() (sim.Tick, float64) {
		n := New(16, torusCfg())
		n.SetDeliver(func(m *noc.Message) {})
		rng := sim.NewRNG(23)
		id := uint64(0)
		for cyc := 0; cyc < 200; cyc++ {
			for s := 0; s < 16; s++ {
				if rng.Bernoulli(0.2) {
					id++
					n.Inject(&noc.Message{ID: id, Src: s, Dst: rng.Intn(16), Bytes: 8 + rng.Intn(90), Class: noc.Class(rng.Intn(3))})
				}
			}
			n.Tick()
		}
		drain(n, 200_000)
		return n.Now(), n.Stats().Latency.Mean()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatal("torus nondeterministic")
	}
}

func TestTorusCoherentWorkload(t *testing.T) {
	// End-to-end: the full MSI system on a torus must complete.
	// (Exercised through the public API in the root package tests; here we
	// only check the fabric-level mean hop count is below the mesh's.)
	mesh := New(64, meshCfg())
	torus := New(64, torusCfg())
	mesh.SetDeliver(func(m *noc.Message) {})
	torus.SetDeliver(func(m *noc.Message) {})
	rng := sim.NewRNG(29)
	id := uint64(0)
	for k := 0; k < 300; k++ {
		id++
		s, d := rng.Intn(64), rng.Intn(64)
		mesh.Inject(&noc.Message{ID: id, Src: s, Dst: d, Bytes: 32, Class: noc.ClassRequest})
		torus.Inject(&noc.Message{ID: id, Src: s, Dst: d, Bytes: 32, Class: noc.ClassRequest})
	}
	drain(mesh, 200_000)
	drain(torus, 200_000)
	if torus.Stats().HopCount.Mean() >= mesh.Stats().HopCount.Mean() {
		t.Fatalf("torus hops %.2f not below mesh %.2f",
			torus.Stats().HopCount.Mean(), mesh.Stats().HopCount.Mean())
	}
}

func TestFlitConservationAfterDrain(t *testing.T) {
	// Conservation invariant: every flit written into a buffer is read out
	// exactly once, and every crossbar traversal puts a flit on a link.
	n := New(16, meshCfg())
	n.SetDeliver(func(m *noc.Message) {})
	rng := sim.NewRNG(41)
	for k := 0; k < 30; k++ {
		for s := 0; s < 16; s++ {
			n.Inject(&noc.Message{ID: uint64(k*16 + s + 1), Src: s, Dst: rng.Intn(16), Bytes: 8 + rng.Intn(120), Class: noc.Class(rng.Intn(3))})
		}
	}
	if !drain(n, 200_000) {
		t.Fatal("did not drain")
	}
	if n.power.bufferWrites != n.power.bufferReads {
		t.Fatalf("flit leak: %d writes vs %d reads", n.power.bufferWrites, n.power.bufferReads)
	}
	if n.power.xbarTraversals != n.power.linkTraversals {
		t.Fatalf("crossbar/link mismatch: %d vs %d", n.power.xbarTraversals, n.power.linkTraversals)
	}
	// All occupancy counters must return to zero.
	for _, r := range n.routers {
		if r.occupancy != 0 || r.linkLoad != 0 {
			t.Fatalf("router %d occupancy=%d linkLoad=%d after drain", r.id, r.occupancy, r.linkLoad)
		}
	}
}
