package enoc

import (
	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// This file implements noc.Checkpointer for the wormhole mesh. Unlike the
// crossbars, in-flight state here is a pointer graph: flits point to their
// packet, packets to their message, and one packet is referenced from many
// places at once (every flit of it, the VC owner field, the NI send state).
// Snapshot and Restore therefore clone through a memoizing graphCloner so the
// sharing structure — which the allocator and the protocol both rely on — is
// reproduced exactly. The packet/flit free lists are deliberately left out on
// both sides: they hold only dead state, and restored traffic uses fresh
// clones, so a stale free-list entry can never alias a live flit.

// graphCloner deep-copies the packet/message graph while preserving aliasing:
// every distinct source pointer maps to exactly one clone. Flits are never
// shared between containers, so they clone without memoization.
type graphCloner struct {
	msgs map[*noc.Message]*noc.Message
	pkts map[*packet]*packet
}

func newGraphCloner() *graphCloner {
	return &graphCloner{
		msgs: make(map[*noc.Message]*noc.Message),
		pkts: make(map[*packet]*packet),
	}
}

func (c *graphCloner) msg(m *noc.Message) *noc.Message {
	if m == nil {
		return nil
	}
	if d, ok := c.msgs[m]; ok {
		return d
	}
	d := &noc.Message{}
	*d = *m
	c.msgs[m] = d
	return d
}

func (c *graphCloner) pkt(p *packet) *packet {
	if p == nil {
		return nil
	}
	if d, ok := c.pkts[p]; ok {
		return d
	}
	d := &packet{}
	*d = *p
	d.msg = c.msg(p.msg)
	c.pkts[p] = d
	return d
}

func (c *graphCloner) flit(f *flit) *flit {
	d := &flit{}
	*d = *f
	d.pkt = c.pkt(f.pkt)
	return d
}

func (c *graphCloner) flits(dst []*flit, src []*flit) []*flit {
	dst = dst[:0]
	for _, f := range src {
		dst = append(dst, c.flit(f))
	}
	return dst
}

func (c *graphCloner) pktSlice(dst []*packet, src []*packet) []*packet {
	dst = dst[:0]
	for _, p := range src {
		dst = append(dst, c.pkt(p))
	}
	return dst
}

// vcBufSnap mirrors vcBuf with cloned contents.
type vcBufSnap struct {
	q       []*flit
	owner   *packet
	outPort int
	outVC   int
	routed  bool
	granted bool
}

// routerSnap captures one router's buffers, credits, links and arbitration.
type routerSnap struct {
	in        [numPorts][]vcBufSnap
	outCredit [numPorts][]int
	outBusy   [numPorts][]bool
	link      [numPorts][]linkFlit
	rr        [numPorts]int
	occupancy int
	linkLoad  int
}

// niSnap captures one network interface's queues and send state.
type niSnap struct {
	classQ  [noc.NumClasses][]*packet
	sending [noc.NumClasses]sendState
	rr      int
}

// meshSnapshot is the mesh fabric's full mutable state.
type meshSnapshot struct {
	now      sim.Tick
	stats    *noc.Stats
	power    powerCounters
	selfQ    []selfMsg
	inflight int
	routers  []routerSnap
	nis      []niSnap
}

// SnapshotAt implements noc.Snapshot.
func (s *meshSnapshot) SnapshotAt() sim.Tick { return s.now }

// Snapshot implements noc.Checkpointer.
func (n *Network) Snapshot() noc.Snapshot {
	cl := newGraphCloner()
	s := &meshSnapshot{
		now:      n.now,
		stats:    n.stats.Clone(),
		power:    n.power,
		inflight: n.inflight,
		routers:  make([]routerSnap, len(n.routers)),
		nis:      make([]niSnap, len(n.nis)),
	}
	for _, sm := range n.selfQ {
		s.selfQ = append(s.selfQ, selfMsg{at: sm.at, msg: cl.msg(sm.msg)})
	}
	for ri, r := range n.routers {
		rs := &s.routers[ri]
		rs.rr = r.rr
		rs.occupancy = r.occupancy
		rs.linkLoad = r.linkLoad
		for p := 0; p < numPorts; p++ {
			rs.in[p] = make([]vcBufSnap, len(r.in[p]))
			for v := range r.in[p] {
				b := &r.in[p][v]
				rs.in[p][v] = vcBufSnap{
					q:       cl.flits(nil, b.q),
					owner:   cl.pkt(b.owner),
					outPort: b.outPort,
					outVC:   b.outVC,
					routed:  b.routed,
					granted: b.granted,
				}
			}
			rs.outCredit[p] = append([]int(nil), r.outCredit[p]...)
			rs.outBusy[p] = append([]bool(nil), r.outBusy[p]...)
			if l := r.outLink[p]; l != nil {
				for _, lf := range l.inflight {
					rs.link[p] = append(rs.link[p], linkFlit{at: lf.at, f: cl.flit(lf.f)})
				}
			}
		}
	}
	for ni, iface := range n.nis {
		ns := &s.nis[ni]
		ns.rr = iface.rr
		for c := range iface.classQ {
			ns.classQ[c] = cl.pktSlice(nil, iface.classQ[c])
			ns.sending[c] = iface.sending[c]
			ns.sending[c].pkt = cl.pkt(iface.sending[c].pkt)
		}
	}
	return s
}

// Restore implements noc.Checkpointer. A fresh cloner maps snapshot pointers
// to new live ones, so the snapshot remains valid for further restores and
// never aliases the running fabric.
func (n *Network) Restore(s noc.Snapshot) {
	snap := s.(*meshSnapshot)
	cl := newGraphCloner()
	n.now = snap.now
	n.stats = snap.stats.Clone()
	n.power = snap.power
	n.inflight = snap.inflight
	n.selfQ = n.selfQ[:0]
	for _, sm := range snap.selfQ {
		n.selfQ = append(n.selfQ, selfMsg{at: sm.at, msg: cl.msg(sm.msg)})
	}
	for ri, r := range n.routers {
		rs := &snap.routers[ri]
		r.rr = rs.rr
		r.occupancy = rs.occupancy
		r.linkLoad = rs.linkLoad
		for p := 0; p < numPorts; p++ {
			for v := range r.in[p] {
				b := &r.in[p][v]
				bs := &rs.in[p][v]
				b.q = cl.flits(b.q, bs.q)
				b.owner = cl.pkt(bs.owner)
				b.outPort = bs.outPort
				b.outVC = bs.outVC
				b.routed = bs.routed
				b.granted = bs.granted
			}
			copy(r.outCredit[p], rs.outCredit[p])
			copy(r.outBusy[p], rs.outBusy[p])
			if l := r.outLink[p]; l != nil {
				l.inflight = l.inflight[:0]
				for _, lf := range rs.link[p] {
					l.inflight = append(l.inflight, linkFlit{at: lf.at, f: cl.flit(lf.f)})
				}
			}
		}
	}
	for ni, iface := range n.nis {
		ns := &snap.nis[ni]
		iface.rr = ns.rr
		for c := range iface.classQ {
			iface.classQ[c] = cl.pktSlice(iface.classQ[c], ns.classQ[c])
			iface.sending[c] = ns.sending[c]
			iface.sending[c].pkt = cl.pkt(ns.sending[c].pkt)
		}
	}
}
