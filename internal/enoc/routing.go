package enoc

// route computes the output port for a packet at router r. Deterministic XY
// first crosses the X dimension, then Y, which is deadlock-free on a mesh.
// West-first is the classic partially adaptive turn model: any packet that
// must travel west does so first (deterministically); all remaining
// directions are chosen adaptively by downstream credit availability.
func (r *router) route(p *packet) int {
	dst := p.msg.Dst
	dx := dst%r.net.width - r.x
	dy := dst/r.net.width - r.y
	if dx == 0 && dy == 0 {
		return portLocal
	}
	if r.net.torus {
		return r.routeTorus(p, dx, dy)
	}
	if r.net.cfg.Routing == "westfirst" {
		return r.routeWestFirst(p, dx, dy)
	}
	return routeXY(dx, dy)
}

// routeTorus is dimension-ordered shortest-direction routing on the torus,
// maintaining the packet's dateline state: the wrap-crossing flag resets
// when the packet turns from the X ring into the Y ring.
func (r *router) routeTorus(p *packet, dx, dy int) int {
	w := r.net.width
	// Shorten each displacement through the wraparound when profitable;
	// ties break toward the positive direction deterministically.
	if dx > w/2 || (w%2 == 0 && dx == w/2) {
		dx -= w
	} else if dx < -w/2 || (w%2 == 0 && dx == -w/2) {
		dx += w
	}
	if dy > w/2 || (w%2 == 0 && dy == w/2) {
		dy -= w
	} else if dy < -w/2 || (w%2 == 0 && dy == -w/2) {
		dy += w
	}
	dim := int8(0)
	if dx == 0 {
		dim = 1
	}
	if p.lastDim != dim {
		p.crossedWrap = false
		p.lastDim = dim
	}
	switch {
	case dx > 0:
		return portEast
	case dx < 0:
		return portWest
	case dy > 0:
		return portSouth
	default:
		return portNorth
	}
}

// routeXY is dimension-ordered: X before Y.
func routeXY(dx, dy int) int {
	switch {
	case dx > 0:
		return portEast
	case dx < 0:
		return portWest
	case dy > 0:
		return portSouth
	default:
		return portNorth
	}
}

// routeWestFirst adaptively picks among productive non-west directions by
// free credit count once any westward travel is complete.
func (r *router) routeWestFirst(p *packet, dx, dy int) int {
	if dx < 0 {
		return portWest
	}
	// Candidate productive ports, in a fixed tie-break order.
	var candidates []int
	if dx > 0 {
		candidates = append(candidates, portEast)
	}
	if dy > 0 {
		candidates = append(candidates, portSouth)
	} else if dy < 0 {
		candidates = append(candidates, portNorth)
	}
	if len(candidates) == 1 {
		return candidates[0]
	}
	lo, hi := r.vcRange(p.msg.Class)
	best, bestCredits := candidates[0], -1
	for _, port := range candidates {
		credits := 0
		for v := lo; v < hi; v++ {
			credits += r.outCredit[port][v]
			if !r.outBusy[port][v] {
				credits += r.net.cfg.BufDepth // prefer ports with free VCs
			}
		}
		if credits > bestCredits {
			best, bestCredits = port, credits
		}
	}
	return best
}
