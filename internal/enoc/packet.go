// Package enoc implements the baseline electrical Network-on-Chip: a 2-D
// mesh of wormhole routers with virtual channels, credit-based flow control,
// deterministic XY or partially adaptive west-first routing, and an
// Orion-class power model. It is the "baseline NOC simulator" of the paper's
// case study and one of the two study fabrics of the reproduction.
package enoc

import (
	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// packet is the in-fabric representation of one noc.Message, broken into
// flits for wormhole switching.
type packet struct {
	msg    *noc.Message
	nflits int
	hops   int
	// enterNI is when the first flit left the injection queue; used for
	// the queue-delay statistic.
	enterNI sim.Tick

	// Torus dateline state: whether the packet crossed a wraparound link
	// in the dimension it is currently traversing (selects the escape
	// VC), and which dimension that is (0 = X, 1 = Y, -1 = none yet).
	crossedWrap bool
	lastDim     int8
}

// flit is the unit of switching and buffering.
type flit struct {
	pkt     *packet
	idx     int
	isHead  bool
	isTail  bool
	readyAt sim.Tick // earliest cycle the current router may forward it

	// Location bookkeeping, rewritten at every hop: the input port and VC
	// holding the flit at its current router, and the downstream VC it
	// was granted when it last crossed a link.
	inPort     int
	vcAtRouter int
	vcOnWire   int
}

// flitsFor computes the flit count for a payload size given the link width.
func flitsFor(bytes, flitBytes int) int {
	if bytes <= 0 {
		return 1
	}
	n := (bytes + flitBytes - 1) / flitBytes
	if n < 1 {
		n = 1
	}
	return n
}

// Port indices of a mesh router.
const (
	portNorth = iota
	portSouth
	portEast
	portWest
	portLocal
	numPorts
)

var portNames = [numPorts]string{"north", "south", "east", "west", "local"}
