package enoc

import (
	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// powerCounters tallies the microarchitectural events that the dynamic power
// model charges for. They are incremented inline by the router datapath.
type powerCounters struct {
	bufferWrites   uint64
	bufferReads    uint64
	xbarTraversals uint64
	linkTraversals uint64
	vcAllocs       uint64
	routeComps     uint64
}

// Orion-2-class per-event energies for a 16-byte flit at a 32nm-era process,
// in picojoules. These are the canonical constants used by 2012-era NoC
// papers; absolute values are not the point of the reproduction — the
// electrical-vs-optical *shape* is — and all scale linearly with flit width.
const (
	refFlitBytes       = 16
	eBufferWritePJ     = 1.2
	eBufferReadPJ      = 1.0
	eXbarPJ            = 2.0
	eLinkPJ            = 3.0
	eVCAllocPJ         = 0.2
	eRoutePJ           = 0.1
	leakagePerRouterMW = 1.5
	leakagePerLinkMW   = 0.12
)

// PowerReport implements noc.Network. elapsed is the measurement window in
// cycles; clockGHz converts cycles to seconds.
func (n *Network) PowerReport(elapsed sim.Tick, clockGHz float64) noc.PowerReport {
	scale := float64(n.cfg.FlitBytes) / refFlitBytes
	c := &n.power
	buffers := (float64(c.bufferWrites)*eBufferWritePJ + float64(c.bufferReads)*eBufferReadPJ) * scale
	xbar := float64(c.xbarTraversals) * eXbarPJ * scale
	links := float64(c.linkTraversals) * eLinkPJ * scale
	alloc := float64(c.vcAllocs)*eVCAllocPJ + float64(c.routeComps)*eRoutePJ
	totalPJ := buffers + xbar + links + alloc

	seconds := float64(elapsed) / (clockGHz * 1e9)
	dynMW := 0.0
	if seconds > 0 {
		// pJ / s = 1e-12 W = 1e-9 mW.
		dynMW = totalPJ * 1e-9 / seconds
	}
	numLinks := 2 * 2 * n.width * (n.width - 1) // bidirectional, both dims
	static := leakagePerRouterMW*float64(n.nodes) + leakagePerLinkMW*float64(numLinks)
	toMW := func(pj float64) float64 {
		if seconds <= 0 {
			return 0
		}
		return pj * 1e-9 / seconds
	}
	return noc.PowerReport{
		StaticMW:  static,
		DynamicMW: dynMW,
		Breakdown: map[string]float64{
			"buffers_mw":  toMW(buffers),
			"crossbar_mw": toMW(xbar),
			"links_mw":    toMW(links),
			"control_mw":  toMW(alloc),
			"leakage_mw":  static,
		},
	}
}
