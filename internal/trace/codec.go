package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// Binary trace format
//
//	magic   "SCTM"            4 bytes
//	version uvarint           currently 1
//	nodes   uvarint
//	wlen    uvarint, workload bytes
//	makespan uvarint
//	nevents uvarint
//	then per event:
//	  src, dst, bytes, class, kind, gap  (uvarints)
//	  refInject, refArrive               (uvarints)
//	  ndeps uvarint, then per dep: onDelta uvarint (self-on), class uvarint
//
// Dependency IDs are delta-encoded against the event's own ID, which keeps
// the common "depends on a recent event" case to one or two bytes.

const (
	magic         = "SCTM"
	formatVersion = 1
)

// WriteBinary serializes the trace to w in the compact binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("trace: refusing to write invalid trace: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putU(formatVersion); err != nil {
		return err
	}
	if err := putU(uint64(t.Nodes)); err != nil {
		return err
	}
	if err := putU(uint64(len(t.Workload))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Workload); err != nil {
		return err
	}
	if err := putU(uint64(t.RefMakespan)); err != nil {
		return err
	}
	if err := putU(uint64(len(t.Events))); err != nil {
		return err
	}
	for i := range t.Events {
		e := &t.Events[i]
		for _, v := range []uint64{
			uint64(e.Src), uint64(e.Dst), uint64(e.Bytes),
			uint64(e.Class), uint64(e.Kind), uint64(e.Gap),
			uint64(e.RefInject), uint64(e.RefArrive),
			uint64(len(e.Deps)),
		} {
			if err := putU(v); err != nil {
				return err
			}
		}
		for _, d := range e.Deps {
			if err := putU(uint64(e.ID - d.On)); err != nil {
				return err
			}
			if err := putU(uint64(d.Class)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a trace written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	getU := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("trace: reading %s: %w", what, err)
		}
		return v, nil
	}
	ver, err := getU("version")
	if err != nil {
		return nil, err
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d", ver)
	}
	nodes, err := getU("nodes")
	if err != nil {
		return nil, err
	}
	wlen, err := getU("workload length")
	if err != nil {
		return nil, err
	}
	if wlen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible workload name length %d", wlen)
	}
	wl := make([]byte, wlen)
	if _, err := io.ReadFull(br, wl); err != nil {
		return nil, fmt.Errorf("trace: reading workload name: %w", err)
	}
	makespan, err := getU("makespan")
	if err != nil {
		return nil, err
	}
	nevents, err := getU("event count")
	if err != nil {
		return nil, err
	}
	if nevents > 1<<31 {
		return nil, fmt.Errorf("trace: implausible event count %d", nevents)
	}
	t := &Trace{
		Nodes:       int(nodes),
		Workload:    string(wl),
		RefMakespan: sim.Tick(makespan),
		Events:      make([]Event, nevents),
	}
	// All dependency edges land in one shared arena instead of one slice
	// allocation per event, keeping the decoder's allocation count constant
	// in the event count. Events get subslices of the arena only after the
	// read completes: appending while handing out subslices would leave
	// earlier events pointing into abandoned backing arrays. depCounts
	// remembers each event's edge count for that final assignment.
	arena := make([]Dep, 0, 2*nevents)
	depCounts := make([]uint32, nevents)
	for i := range t.Events {
		e := &t.Events[i]
		e.ID = EventID(i + 1)
		fields := [9]uint64{}
		names := [9]string{"src", "dst", "bytes", "class", "kind", "gap", "ref_inject", "ref_arrive", "ndeps"}
		for j := range fields {
			v, err := getU(names[j])
			if err != nil {
				return nil, err
			}
			fields[j] = v
		}
		e.Src, e.Dst, e.Bytes = int(fields[0]), int(fields[1]), int(fields[2])
		e.Class = noc.Class(fields[3])
		e.Kind = Kind(fields[4])
		e.Gap = sim.Tick(fields[5])
		e.RefInject = sim.Tick(fields[6])
		e.RefArrive = sim.Tick(fields[7])
		ndeps := fields[8]
		if ndeps > uint64(i)+1 {
			return nil, fmt.Errorf("trace: event %d claims %d deps", e.ID, ndeps)
		}
		depCounts[i] = uint32(ndeps)
		for k := uint64(0); k < ndeps; k++ {
			delta, err := getU("dep id")
			if err != nil {
				return nil, err
			}
			if delta == 0 || delta >= uint64(e.ID) {
				return nil, fmt.Errorf("trace: event %d has invalid dep delta %d", e.ID, delta)
			}
			cls, err := getU("dep class")
			if err != nil {
				return nil, err
			}
			arena = append(arena, Dep{On: e.ID - EventID(delta), Class: DepClass(cls)})
		}
	}
	off := 0
	for i := range t.Events {
		n := int(depCounts[i])
		if n > 0 {
			// Full-capacity subslices, so an append through one event's
			// Deps can never silently overwrite its neighbor's.
			t.Events[i].Deps = arena[off : off+n : off+n]
		}
		off += n
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// SaveFile writes the binary format to path.
func SaveFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := WriteBinary(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads the binary format from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadBinary(f)
}

// WriteJSON serializes the trace as indented JSON, for inspection and
// interchange with plotting tools.
func WriteJSON(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// ReadJSON deserializes and validates a JSON trace.
func ReadJSON(r io.Reader) (*Trace, error) {
	t := &Trace{}
	if err := json.NewDecoder(r).Decode(t); err != nil {
		return nil, fmt.Errorf("trace: json decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
