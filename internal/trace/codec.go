package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Binary trace format
//
//	magic   "SCTM"            4 bytes
//	version uvarint           currently 1
//	nodes   uvarint
//	wlen    uvarint, workload bytes
//	makespan uvarint
//	nevents uvarint
//	then per event:
//	  src, dst, bytes, class, kind, gap  (uvarints)
//	  refInject, refArrive               (uvarints)
//	  ndeps uvarint, then per dep: onDelta uvarint (self-on), class uvarint
//
// Dependency IDs are delta-encoded against the event's own ID, which keeps
// the common "depends on a recent event" case to one or two bytes.
//
// Both directions have a single implementation: the streaming Reader/Writer
// in stream.go. WriteBinary and ReadBinary below are the materialized
// convenience forms layered on top of them.

const (
	magic         = "SCTM"
	formatVersion = 1
)

// WriteBinary serializes the trace to w in the compact binary format. The
// trace is validated as it encodes — NewWriter checks the header invariants
// and Append checks each event — so an invalid trace fails at the offending
// record without a separate up-front Validate pass.
func WriteBinary(w io.Writer, t *Trace) error {
	sw, err := NewWriter(w, Meta{
		Nodes:       t.Nodes,
		Workload:    t.Workload,
		RefMakespan: t.RefMakespan,
		NumEvents:   len(t.Events),
	})
	if err != nil {
		return err
	}
	for i := range t.Events {
		if err := sw.Append(&t.Events[i]); err != nil {
			return err
		}
	}
	return sw.Close()
}

// ReadBinary deserializes a trace written by WriteBinary. Every record is
// validated as it decodes, so a corrupt file fails with the offending record
// index and byte offset instead of a bare decode error.
func ReadBinary(r io.Reader) (*Trace, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	m := sr.Meta()
	t := &Trace{
		Nodes:       m.Nodes,
		Workload:    m.Workload,
		RefMakespan: m.RefMakespan,
		Events:      make([]Event, m.NumEvents),
	}
	// All dependency edges land in one shared arena instead of one slice
	// allocation per event, keeping the decoder's allocation count constant
	// in the event count. Events get subslices of the arena only after the
	// read completes: appending while handing out subslices would leave
	// earlier events pointing into abandoned backing arrays. depCounts
	// remembers each event's edge count for that final assignment.
	arena := make([]Dep, 0, 2*m.NumEvents)
	depCounts := make([]uint32, m.NumEvents)
	for i := range t.Events {
		ok, err := sr.Next(&t.Events[i])
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("trace: stream ended after %d of %d declared events", i, m.NumEvents)
		}
		depCounts[i] = uint32(len(t.Events[i].Deps))
		arena = append(arena, t.Events[i].Deps...)
		t.Events[i].Deps = nil
	}
	off := 0
	for i := range t.Events {
		n := int(depCounts[i])
		if n > 0 {
			// Full-capacity subslices, so an append through one event's
			// Deps can never silently overwrite its neighbor's.
			t.Events[i].Deps = arena[off : off+n : off+n]
		}
		off += n
	}
	return t, nil
}

// SaveFile writes the binary format to path.
func SaveFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := WriteBinary(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads the binary format from path.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadBinary(f)
}

// WriteJSON serializes the trace as indented JSON, for inspection and
// interchange with plotting tools.
func WriteJSON(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// ReadJSON deserializes and validates a JSON trace.
func ReadJSON(r io.Reader) (*Trace, error) {
	t := &Trace{}
	if err := json.NewDecoder(r).Decode(t); err != nil {
		return nil, fmt.Errorf("trace: json decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
