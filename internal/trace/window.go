package trace

import (
	"fmt"

	"onocsim/internal/sim"
)

// Streaming trace analysis: everything cmd/traceinfo reports, computed in a
// single decode pass with resident memory bounded by the dependency-span
// window instead of the trace length.
//
// The window invariant: per-event derived state (critical-path finish time,
// chain depth, path length) is retained only for the most recent Window
// events — older state has been retired and cannot be consulted again. A
// dependency edge always points backward, so the invariant holds exactly
// when every edge spans at most Window events. The ring starts small and
// grows (doubling) toward the window as the trace fills it, so a generous
// window costs only what the trace actually uses; an edge spanning farther
// back than the window is rejected with an error naming the span the trace
// needs — never silently mis-analyzed and never deadlocked. Retirement is
// what makes the pass out-of-core: state is discarded the moment the stream
// moves one window past it, exactly like the replay engines retire
// dependency state for completed messages.

// DefaultWindow is the dependency-span window streaming consumers use when
// none is chosen: 64Ki events (≈1 MiB of analysis state). Captured traces'
// spans are bounded by the protocol's outstanding-transaction window, and
// generated huge traces chain per source, so real spans are far smaller.
const DefaultWindow = 1 << 16

// Unbounded disables retirement: the window grows with the trace, so no
// span ever errors, at the cost of O(events) analysis state (still an order
// of magnitude below materializing the events themselves).
const Unbounded = -1

// StreamOptions tunes the streaming analyses.
type StreamOptions struct {
	// Window is the dependency-span window, in events; 0 selects
	// DefaultWindow, Unbounded (-1) disables retirement.
	Window int
	// Paths additionally records one predecessor link per event — O(events)
	// memory — so Analysis.CriticalPath.Events can be reconstructed. Leave
	// it false for constant-memory summaries of huge traces.
	Paths bool
}

// Analysis is everything one streaming pass computes about a trace.
type Analysis struct {
	// Meta is the trace header.
	Meta Meta
	// Stats matches Trace.ComputeStats exactly.
	Stats Stats
	// CriticalPath matches Trace.CriticalPathReference: Length always,
	// Events only when Options.Paths was set.
	CriticalPath CriticalPath
	// CriticalPathEvents is the number of events on the critical path,
	// available even without Options.Paths.
	CriticalPathEvents int
	// DepthHist matches Trace.DepthHistogram.
	DepthHist []int
	// Sends and Recvs match Trace.NodeActivity.
	Sends, Recvs []int
	// MaxDepSpan is the longest dependency edge observed, in events — the
	// minimum window a streaming consumer of this trace needs.
	MaxDepSpan int
}

// slot is the per-event state retained inside the window.
type slot struct {
	finish sim.Tick // critical-path completion time
	count  int32    // events on the best chain ending here
	depth  int32    // dependency-chain depth
}

// spanWindow is a ring buffer holding the slots of the most recent events.
// Allocation grows lazily: a slot is only ever overwritten once the ring has
// reached the full window, so every event within the window is live.
type spanWindow struct {
	slots   []slot
	horizon int // max live span; <= 0 means unbounded (never retire)
	next    int // index (0-based) of the next event to be added
}

func newSpanWindow(window int) *spanWindow {
	horizon := window
	if horizon == 0 {
		horizon = DefaultWindow
	}
	initial := 1024
	if horizon > 0 && initial > horizon {
		initial = horizon
	}
	return &spanWindow{slots: make([]slot, initial), horizon: horizon}
}

// get returns the slot for event index i (0-based), which the caller
// guarantees satisfies i < next. Spans beyond the horizon reference retired
// state and error.
func (w *spanWindow) get(i int) (*slot, error) {
	if span := w.next - i; w.horizon > 0 && span > w.horizon {
		return nil, fmt.Errorf("trace: dependency span of %d events exceeds the streaming window of %d; rerun with a window of at least %d", span, w.horizon, span)
	}
	return &w.slots[i%len(w.slots)], nil
}

// add returns the slot to fill for the next event. It grows the ring before
// retiring any event that is still within the horizon, so growth — not data
// loss — is what happens when the window is undersized but growable.
func (w *spanWindow) add() *slot {
	if w.next >= len(w.slots) && (w.horizon <= 0 || len(w.slots) < w.horizon) {
		w.grow()
	}
	s := &w.slots[w.next%len(w.slots)]
	w.next++
	return s
}

// grow doubles the ring (capped at the horizon), re-placing live entries at
// their positions modulo the new size.
func (w *spanWindow) grow() {
	size := len(w.slots) * 2
	if w.horizon > 0 && size > w.horizon {
		size = w.horizon
	}
	old := w.slots
	w.slots = make([]slot, size)
	lo := w.next - len(old)
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < w.next; i++ {
		w.slots[i%size] = old[i%len(old)]
	}
}

// StreamAnalyze computes the full traceinfo summary — stats, reference
// critical path, depth histogram, node activity — in one pass over the
// source. With opts.Paths false, resident memory is O(window + nodes +
// depth-histogram), independent of trace length.
//
// For any trace both paths accept, the results are identical to the
// in-memory ComputeStats / CriticalPathReference / DepthHistogram /
// NodeActivity quartet: the recurrences are the same, evaluated in the same
// ID order.
func StreamAnalyze(src Source, opts StreamOptions) (*Analysis, error) {
	m := src.Meta()
	it, err := src.Pass()
	if err != nil {
		return nil, err
	}
	defer it.Close()

	an := &Analysis{
		Meta:  m,
		Stats: Stats{RefMakespan: m.RefMakespan},
		Sends: make([]int, m.Nodes),
		Recvs: make([]int, m.Nodes),
	}
	win := newSpanWindow(opts.Window)
	var pred []int32
	if opts.Paths {
		pred = make([]int32, m.NumEvents)
	}
	var hist []int
	bestEnd, bestIdx := sim.Tick(-1), 0
	var bestCount int32
	var e Event
	for {
		ok, err := it.Next(&e)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		i := int(e.ID) - 1

		// Stats and activity accumulate windowlessly.
		an.Stats.Events++
		an.Stats.Bytes += uint64(e.Bytes)
		if int(e.Kind) < len(an.Stats.ByKind) {
			an.Stats.ByKind[e.Kind]++
		}
		an.Sends[e.Src]++
		an.Recvs[e.Dst]++

		// Critical path and depth need dependency state from the window.
		var ready sim.Tick
		p := int32(-1)
		var pCount, depth int32
		for _, d := range e.Deps {
			if int(d.Class) < len(an.Stats.DepEdges) {
				an.Stats.DepEdges[d.Class]++
			}
			di := int(d.On) - 1
			if span := i - di; span > an.MaxDepSpan {
				an.MaxDepSpan = span
			}
			ds, err := win.get(di)
			if err != nil {
				return nil, err
			}
			if ds.finish > ready {
				ready = ds.finish
				p = int32(di)
				pCount = ds.count
			}
			if ds.depth+1 > depth {
				depth = ds.depth + 1
			}
		}
		s := win.add()
		s.finish = ready + e.Gap + (e.RefArrive - e.RefInject)
		s.count = pCount + 1
		s.depth = depth
		if pred != nil {
			pred[i] = p
		}
		if int(depth) >= len(hist) {
			grown := make([]int, depth+1)
			copy(grown, hist)
			hist = grown
		}
		hist[depth]++
		if s.finish > bestEnd {
			bestEnd, bestIdx, bestCount = s.finish, i, s.count
		}
	}
	if an.Stats.Events != m.NumEvents {
		return nil, fmt.Errorf("trace: stream yielded %d events, header declared %d", an.Stats.Events, m.NumEvents)
	}
	if hist == nil {
		hist = []int{0} // matches DepthHistogram's shape for an empty trace
	}
	an.DepthHist = hist
	if an.Stats.Events > 0 {
		an.CriticalPath.Length = bestEnd
		an.CriticalPathEvents = int(bestCount)
		if pred != nil {
			// Predecessor indices strictly decrease along the chain, so the
			// backward walk reversed is the path in dependency order — and
			// dense IDs mean index+1 is the event ID, no event data needed.
			rev := make([]EventID, 0, bestCount)
			for i := bestIdx; i >= 0; i = int(pred[i]) {
				rev = append(rev, EventID(i+1))
			}
			path := make([]EventID, len(rev))
			for i := range rev {
				path[i] = rev[len(rev)-1-i]
			}
			an.CriticalPath.Events = path
		}
	}
	return an, nil
}
