package trace

import (
	"fmt"

	"onocsim/internal/sim"
)

// This file provides what-if transformations over captured traces. They are
// the reason trace-based methodologies pay for themselves: one expensive
// capture supports a family of derived studies (faster cores, partial
// chips, phase slicing) with no front-end re-run. Every transform returns a
// fresh validated trace and never mutates its input.

// ScaleGaps returns a copy of the trace with every compute/service gap
// multiplied by factor (rounded to cycles, floored at zero). factor < 1
// models faster cores relative to the network; factor > 1 slower ones. The
// R14 experiment validates predictions from scaled traces against real
// re-captures.
func (t *Trace) ScaleGaps(factor float64) (*Trace, error) {
	return t.ScaleGapsWhere(factor, func(*Event) bool { return true })
}

// ScaleGapsWhere scales only the gaps of events matching pred, leaving the
// rest untouched. The canonical use scales core-compute gaps (request-kind
// events) while preserving memory/directory service times, which is what a
// core-frequency what-if physically means.
func (t *Trace) ScaleGapsWhere(factor float64, pred func(*Event) bool) (*Trace, error) {
	if factor < 0 {
		return nil, fmt.Errorf("trace: negative gap scale %g", factor)
	}
	if pred == nil {
		return nil, fmt.Errorf("trace: nil event predicate")
	}
	out := t.clone()
	for i := range out.Events {
		if !pred(&out.Events[i]) {
			continue
		}
		g := sim.Tick(float64(out.Events[i].Gap) * factor)
		if g < 0 {
			g = 0
		}
		out.Events[i].Gap = g
	}
	// Reference timestamps no longer describe this trace; rebuild them
	// with a conservative self-consistent schedule (inject = dependency
	// readiness, arrive = recorded reference latency) so the transformed
	// trace still validates and naive replay stays meaningful.
	out.rebuildReferenceTimes(t)
	out.Workload = fmt.Sprintf("%s(gaps×%g)", t.Workload, factor)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("trace: gap scaling produced invalid trace: %w", err)
	}
	return out, nil
}

// rebuildReferenceTimes recomputes RefInject/RefArrive/RefMakespan for a
// transformed trace, preserving each event's original reference latency but
// re-deriving injection times from the (possibly modified) gaps and the
// dependency DAG.
func (t *Trace) rebuildReferenceTimes(orig *Trace) {
	arrive := make([]sim.Tick, len(t.Events))
	var maxArr, origMaxArr sim.Tick
	for i := range t.Events {
		e := &t.Events[i]
		var ready sim.Tick
		for _, d := range e.Deps {
			if a := arrive[int(d.On)-1]; a > ready {
				ready = a
			}
		}
		lat := orig.Events[i].RefArrive - orig.Events[i].RefInject
		e.RefInject = ready + e.Gap
		e.RefArrive = e.RefInject + lat
		arrive[i] = e.RefArrive
		if e.RefArrive > maxArr {
			maxArr = e.RefArrive
		}
		if orig.Events[i].RefArrive > origMaxArr {
			origMaxArr = orig.Events[i].RefArrive
		}
	}
	tail := orig.RefMakespan - origMaxArr
	if tail < 0 {
		tail = 0
	}
	t.RefMakespan = maxArr + tail
}

// FilterNodes returns the sub-trace of events whose source AND destination
// both lie in keep (a node predicate), with dependencies on dropped events
// transitively re-attached to the dropped events' own kept dependencies so
// the DAG stays meaningful. Event IDs are renumbered densely.
func (t *Trace) FilterNodes(keep func(node int) bool) (*Trace, error) {
	if keep == nil {
		return nil, fmt.Errorf("trace: nil node predicate")
	}
	// newID[old-1] = new EventID or None if dropped.
	newID := make([]EventID, len(t.Events))
	// liftedDeps[old-1] = for dropped events, the kept dependencies they
	// forward to their dependents.
	liftedDeps := make([][]Dep, len(t.Events))
	out := &Trace{Nodes: t.Nodes, Workload: t.Workload + "(filtered)", RefMakespan: t.RefMakespan}

	resolve := func(d Dep) []Dep {
		if newID[int(d.On)-1] != None {
			return []Dep{{On: newID[int(d.On)-1], Class: d.Class}}
		}
		return liftedDeps[int(d.On)-1]
	}
	for i := range t.Events {
		e := &t.Events[i]
		var resolved []Dep
		for _, d := range e.Deps {
			resolved = append(resolved, resolve(d)...)
		}
		if !keep(e.Src) || !keep(e.Dst) {
			liftedDeps[i] = resolved
			continue
		}
		id := EventID(len(out.Events) + 1)
		newID[i] = id
		ne := *e
		ne.ID = id
		ne.Deps = dedupeDeps(resolved, id)
		out.Events = append(out.Events, ne)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("trace: node filter produced invalid trace: %w", err)
	}
	return out, nil
}

// SliceTime returns the sub-trace of events injected (on the reference
// fabric) within [from, to), with cross-boundary dependencies dropped and
// gaps of now-dependency-free events re-anchored to the window start. It
// extracts a phase of a long run for focused study.
func (t *Trace) SliceTime(from, to sim.Tick) (*Trace, error) {
	if to <= from {
		return nil, fmt.Errorf("trace: empty time window [%d,%d)", from, to)
	}
	newID := make([]EventID, len(t.Events))
	out := &Trace{Nodes: t.Nodes, Workload: fmt.Sprintf("%s[%d:%d]", t.Workload, from, to)}
	var maxArr sim.Tick
	for i := range t.Events {
		e := &t.Events[i]
		if e.RefInject < from || e.RefInject >= to {
			continue
		}
		id := EventID(len(out.Events) + 1)
		newID[i] = id
		ne := *e
		ne.ID = id
		ne.Deps = nil
		for _, d := range e.Deps {
			if nid := newID[int(d.On)-1]; nid != None {
				ne.Deps = append(ne.Deps, Dep{On: nid, Class: d.Class})
			}
		}
		if len(ne.Deps) == 0 {
			// Re-anchor to the window: the gap becomes the offset from
			// the window start, keeping relative timing.
			ne.Gap = e.RefInject - from
		}
		ne.RefInject = e.RefInject - from
		ne.RefArrive = e.RefArrive - from
		if ne.RefArrive > maxArr {
			maxArr = ne.RefArrive
		}
		out.Events = append(out.Events, ne)
	}
	out.RefMakespan = maxArr
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("trace: time slice produced invalid trace: %w", err)
	}
	return out, nil
}

// clone deep-copies the trace.
func (t *Trace) clone() *Trace {
	out := &Trace{
		Nodes:       t.Nodes,
		Workload:    t.Workload,
		RefMakespan: t.RefMakespan,
		Events:      make([]Event, len(t.Events)),
	}
	copy(out.Events, t.Events)
	for i := range out.Events {
		if len(t.Events[i].Deps) > 0 {
			out.Events[i].Deps = append([]Dep(nil), t.Events[i].Deps...)
		}
	}
	return out
}
