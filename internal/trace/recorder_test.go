package trace

import (
	"strings"
	"testing"

	"onocsim/internal/noc"
)

func TestRecorderBasicFlow(t *testing.T) {
	r := NewRecorder(4)
	id1 := r.RecordSend(SendInfo{Src: 0, Dst: 1, Bytes: 8, Class: noc.ClassRequest,
		Kind: KindRequest, DepResolved: 0, Now: 10})
	if id1 != 1 {
		t.Fatalf("first id = %d", id1)
	}
	r.RecordArrive(id1, 30)
	id2 := r.RecordSend(SendInfo{Src: 1, Dst: 0, Bytes: 72, Class: noc.ClassResponse,
		Kind: KindResponse, Deps: []Dep{{On: id1, Class: DepCausal}}, DepResolved: 30, Now: 36})
	r.RecordArrive(id2, 60)
	tr, err := r.Finish("flow", 70)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events[0].Gap != 10 {
		t.Fatalf("gap1 = %d, want 10", tr.Events[0].Gap)
	}
	if tr.Events[1].Gap != 6 {
		t.Fatalf("gap2 = %d, want 6 (service time)", tr.Events[1].Gap)
	}
	if tr.Events[1].Deps[0].On != id1 {
		t.Fatal("dep lost")
	}
	if tr.RefMakespan != 70 || tr.Workload != "flow" {
		t.Fatal("metadata lost")
	}
}

func TestRecorderDedupesDeps(t *testing.T) {
	r := NewRecorder(2)
	a := r.RecordSend(SendInfo{Src: 0, Dst: 1, Bytes: 8, Now: 1})
	r.RecordArrive(a, 5)
	b := r.RecordSend(SendInfo{Src: 1, Dst: 0, Bytes: 8,
		Deps:        []Dep{{On: a, Class: DepCausal}, {On: a, Class: DepCausal}, {On: None}},
		DepResolved: 5, Now: 6})
	r.RecordArrive(b, 9)
	tr, err := r.Finish("dedupe", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events[1].Deps) != 1 {
		t.Fatalf("deps = %v, want one deduped edge", tr.Events[1].Deps)
	}
}

func TestRecorderKeepsDistinctClassesToSameEvent(t *testing.T) {
	r := NewRecorder(2)
	a := r.RecordSend(SendInfo{Src: 0, Dst: 1, Bytes: 8, Now: 1})
	r.RecordArrive(a, 5)
	b := r.RecordSend(SendInfo{Src: 1, Dst: 0, Bytes: 8,
		Deps:        []Dep{{On: a, Class: DepCausal}, {On: a, Class: DepSync}},
		DepResolved: 5, Now: 6})
	r.RecordArrive(b, 9)
	tr, err := r.Finish("classes", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events[1].Deps) != 2 {
		t.Fatalf("deps = %v, want both classes kept", tr.Events[1].Deps)
	}
}

func TestRecorderPanics(t *testing.T) {
	cases := []func(){
		func() { NewRecorder(0) },
		func() { NewRecorder(2).RecordSend(SendInfo{Src: 5, Dst: 0, Bytes: 8}) },
		func() { NewRecorder(2).RecordSend(SendInfo{Src: 0, Dst: 1, Bytes: 0}) },
		func() { // injected before dep resolved
			NewRecorder(2).RecordSend(SendInfo{Src: 0, Dst: 1, Bytes: 8, DepResolved: 10, Now: 5})
		},
		func() { // dep on future event
			r := NewRecorder(2)
			r.RecordSend(SendInfo{Src: 0, Dst: 1, Bytes: 8, Deps: []Dep{{On: 5}}, Now: 1})
		},
		func() { NewRecorder(2).RecordArrive(1, 10) }, // unknown event
		func() { // double arrival
			r := NewRecorder(2)
			id := r.RecordSend(SendInfo{Src: 0, Dst: 1, Bytes: 8, Now: 1})
			r.RecordArrive(id, 5)
			r.RecordArrive(id, 6)
		},
		func() { // arrival before injection
			r := NewRecorder(2)
			id := r.RecordSend(SendInfo{Src: 0, Dst: 1, Bytes: 8, Now: 10})
			r.RecordArrive(id, 5)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestFinishRejectsUnarrived(t *testing.T) {
	r := NewRecorder(2)
	r.RecordSend(SendInfo{Src: 0, Dst: 1, Bytes: 8, Now: 1})
	_, err := r.Finish("lost", 10)
	if err == nil || !strings.Contains(err.Error(), "never arrived") {
		t.Fatalf("err = %v", err)
	}
}
