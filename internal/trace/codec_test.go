package trace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

func TestBinaryRoundTrip(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	// Random DAG traces round-trip bit-exactly.
	gen := func(seed uint64, n int) *Trace {
		rng := sim.NewRNG(seed)
		tr := &Trace{Nodes: 8, Workload: "prop", RefMakespan: 10000}
		now := sim.Tick(0)
		for i := 0; i < n; i++ {
			id := EventID(i + 1)
			e := Event{
				ID:    id,
				Src:   rng.Intn(8),
				Dst:   rng.Intn(8),
				Bytes: 1 + rng.Intn(256),
				Class: noc.Class(rng.Intn(3)),
				Kind:  Kind(rng.Intn(int(numKinds))),
				Gap:   sim.Tick(rng.Intn(50)),
			}
			for d := 0; d < rng.Intn(3) && i > 0; d++ {
				e.Deps = append(e.Deps, Dep{
					On:    EventID(1 + rng.Intn(i)),
					Class: DepClass(rng.Intn(int(numDepClasses))),
				})
			}
			e.Deps = dedupeDeps(e.Deps, id)
			now += e.Gap + 1
			e.RefInject = now
			e.RefArrive = now + sim.Tick(1+rng.Intn(100))
			tr.Events = append(tr.Events, e)
		}
		return tr
	}
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		tr := gen(seed, int(nRaw%100)+1)
		if err := tr.Validate(); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, got)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBinaryAllocsConstant(t *testing.T) {
	// The decoder allocates a fixed number of times regardless of trace
	// size: events come from one slice, dependency edges from one shared
	// arena. A per-event allocation would put the count in the thousands
	// here and fail loudly.
	rng := sim.NewRNG(7)
	tr := &Trace{Nodes: 8, Workload: "allocs", RefMakespan: 1 << 30}
	now := sim.Tick(0)
	const n = 5000
	for i := 0; i < n; i++ {
		id := EventID(i + 1)
		e := Event{ID: id, Src: rng.Intn(8), Dst: rng.Intn(8), Bytes: 64, Gap: 1}
		for d := 0; d < rng.Intn(3) && i > 0; d++ {
			e.Deps = append(e.Deps, Dep{On: EventID(1 + rng.Intn(i))})
		}
		e.Deps = dedupeDeps(e.Deps, id)
		now += e.Gap + 1
		e.RefInject = now
		e.RefArrive = now + 10
		tr.Events = append(tr.Events, e)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	})
	// Generous fixed budget: reader plumbing plus the handful of one-shot
	// slices. The point is O(1), not the exact figure.
	if allocs > 64 {
		t.Fatalf("ReadBinary allocated %.0f times for %d events; want a constant well under 64", allocs, n)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bad magic.
	bad := append([]byte("XXXX"), data[4:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncations at every prefix must error, never panic.
	for cut := 0; cut < len(data); cut += 3 {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Bad version.
	bad2 := make([]byte, len(data))
	copy(bad2, data)
	bad2[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad2)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestWriteBinaryRejectsInvalidTrace(t *testing.T) {
	tr := tinyTrace()
	tr.Events[0].Bytes = 0
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err == nil {
		t.Fatal("invalid trace written")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sctm")
	tr := tinyTrace()
	if err := SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("json round trip mismatch")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte("{"))); err == nil {
		t.Fatal("malformed json accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"nodes":0}`))); err == nil {
		t.Fatal("invalid json trace accepted")
	}
}

func TestBinaryCompactness(t *testing.T) {
	// The binary format should be far smaller than JSON for real traces.
	tr := tinyTrace()
	var bin, js bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&js, tr); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= js.Len() {
		t.Fatalf("binary %dB not smaller than JSON %dB", bin.Len(), js.Len())
	}
}
