package trace

import (
	"fmt"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// Recorder builds a Trace during an execution-driven capture run. The
// protocol layer calls RecordSend when it injects a message (supplying the
// gating events it knows about) and RecordArrive when the message is
// delivered. The recorder computes gaps and reference timestamps.
//
// The recorder is deliberately dumb about *why* dependencies exist — the
// protocol knows; the recorder only enforces the DAG discipline (deps must
// already be recorded, arrivals must be monotone per event).
type Recorder struct {
	nodes  int
	events []Event
}

// NewRecorder starts an empty capture for a system with the given node count.
func NewRecorder(nodes int) *Recorder {
	if nodes < 1 {
		panic(fmt.Sprintf("trace: recorder needs ≥1 node, got %d", nodes))
	}
	return &Recorder{nodes: nodes}
}

// NumEvents returns the number of sends recorded so far.
func (r *Recorder) NumEvents() int { return len(r.events) }

// SendInfo describes one injected message to the recorder.
type SendInfo struct {
	Src, Dst int
	Bytes    int
	Class    noc.Class
	Kind     Kind
	// Deps are the gating events; duplicates are tolerated and removed.
	Deps []Dep
	// DepResolved is the capture-run time at which the last gating event
	// arrived; for dependency-free events pass 0 (meaning "start of run").
	DepResolved sim.Tick
	// Now is the capture-run injection time.
	Now sim.Tick
}

// RecordSend registers an injection and returns its EventID, which the
// caller must attach to the in-flight message so RecordArrive can find it.
func (r *Recorder) RecordSend(info SendInfo) EventID {
	if info.Src < 0 || info.Src >= r.nodes || info.Dst < 0 || info.Dst >= r.nodes {
		panic(fmt.Sprintf("trace: send endpoints (%d->%d) out of [0,%d)", info.Src, info.Dst, r.nodes))
	}
	if info.Bytes <= 0 {
		panic(fmt.Sprintf("trace: send with non-positive size %d", info.Bytes))
	}
	id := EventID(len(r.events) + 1)
	gap := info.Now - info.DepResolved
	if gap < 0 {
		panic(fmt.Sprintf("trace: event %d injected at %d before its dependency resolved at %d",
			id, info.Now, info.DepResolved))
	}
	deps := dedupeDeps(info.Deps, id)
	r.events = append(r.events, Event{
		ID:        id,
		Src:       info.Src,
		Dst:       info.Dst,
		Bytes:     info.Bytes,
		Class:     info.Class,
		Kind:      info.Kind,
		Gap:       gap,
		Deps:      deps,
		RefInject: info.Now,
		RefArrive: -1,
	})
	return id
}

// dedupeDeps removes duplicate edges and checks the DAG discipline.
func dedupeDeps(deps []Dep, self EventID) []Dep {
	if len(deps) == 0 {
		return nil
	}
	out := make([]Dep, 0, len(deps))
	seen := make(map[Dep]bool, len(deps))
	for _, d := range deps {
		if d.On == None {
			continue
		}
		if d.On >= self {
			panic(fmt.Sprintf("trace: event %d depends on non-earlier event %d", self, d.On))
		}
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// RecordArrive stamps the capture-run arrival time of an event.
func (r *Recorder) RecordArrive(id EventID, at sim.Tick) {
	if id == None || int(id) > len(r.events) {
		panic(fmt.Sprintf("trace: arrival for unknown event %d", id))
	}
	e := &r.events[id-1]
	if e.RefArrive >= 0 {
		panic(fmt.Sprintf("trace: event %d arrived twice", id))
	}
	if at < e.RefInject {
		panic(fmt.Sprintf("trace: event %d arrives (%d) before injection (%d)", id, at, e.RefInject))
	}
	e.RefArrive = at
}

// Finish seals the capture into a validated Trace. makespan is the
// completion time of the whole run. It returns an error if any recorded
// send never arrived — a sure sign the capture run did not drain.
func (r *Recorder) Finish(workload string, makespan sim.Tick) (*Trace, error) {
	for i := range r.events {
		if r.events[i].RefArrive < 0 {
			return nil, fmt.Errorf("trace: event %d (%s %d->%d) never arrived; capture run did not drain",
				r.events[i].ID, r.events[i].Kind, r.events[i].Src, r.events[i].Dst)
		}
	}
	t := &Trace{
		Nodes:       r.nodes,
		Workload:    workload,
		RefMakespan: makespan,
		Events:      r.events,
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
