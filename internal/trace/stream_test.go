package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// collect drains a pass into a slice, copying Deps (the iterator reuses its
// buffer).
func collect(t *testing.T, src Source) []Event {
	t.Helper()
	it, err := src.Pass()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []Event
	var e Event
	for {
		ok, err := it.Next(&e)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		c := e
		if len(e.Deps) > 0 {
			c.Deps = append([]Dep(nil), e.Deps...)
		}
		out = append(out, c)
	}
}

func writeTempTrace(t *testing.T, tr *Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.sctm")
	if err := SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileSourceMatchesTrace(t *testing.T) {
	tr := tinyTrace()
	src, err := NewFileSource(writeTempTrace(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	m := src.Meta()
	want := Meta{Nodes: tr.Nodes, Workload: tr.Workload, RefMakespan: tr.RefMakespan, NumEvents: len(tr.Events)}
	if m != want {
		t.Fatalf("meta %+v, want %+v", m, want)
	}
	if got := collect(t, src); !reflect.DeepEqual(got, tr.Events) {
		t.Fatalf("events mismatch:\n got %+v\nwant %+v", got, tr.Events)
	}
	// Passes must be independent and repeatable.
	if got := collect(t, src); !reflect.DeepEqual(got, tr.Events) {
		t.Fatal("second pass diverged from the first")
	}
}

func TestMemSourceMatchesTrace(t *testing.T) {
	tr := tinyTrace()
	src := NewMemSource(tr)
	if got := collect(t, src); !reflect.DeepEqual(got, tr.Events) {
		t.Fatalf("events mismatch:\n got %+v\nwant %+v", got, tr.Events)
	}
}

func TestConcurrentPasses(t *testing.T) {
	// The sharded engine opens one pass per shard; interleaved Next calls on
	// separate passes must not interfere.
	tr := tinyTrace()
	src, err := NewFileSource(writeTempTrace(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	a, err := src.Pass()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := src.Pass()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var ea, eb Event
	for i := range tr.Events {
		if ok, err := a.Next(&ea); !ok || err != nil {
			t.Fatalf("pass a event %d: ok=%v err=%v", i, ok, err)
		}
		if ok, err := b.Next(&eb); !ok || err != nil {
			t.Fatalf("pass b event %d: ok=%v err=%v", i, ok, err)
		}
		if ea.ID != eb.ID || ea.Src != eb.Src {
			t.Fatalf("interleaved passes diverged at event %d", i)
		}
	}
}

func TestStreamStatsMatchesComputeStats(t *testing.T) {
	tr := tinyTrace()
	for _, src := range []Source{NewMemSource(tr)} {
		got, err := StreamStats(src)
		if err != nil {
			t.Fatal(err)
		}
		if want := tr.ComputeStats(); got != want {
			t.Fatalf("StreamStats %+v, want %+v", got, want)
		}
	}
	fsrc, err := NewFileSource(writeTempTrace(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	got, err := StreamStats(fsrc)
	if err != nil {
		t.Fatal(err)
	}
	if want := tr.ComputeStats(); got != want {
		t.Fatalf("file StreamStats %+v, want %+v", got, want)
	}
}

func TestWriterRoundTripThroughReader(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Nodes: tr.Nodes, Workload: tr.Workload, RefMakespan: tr.RefMakespan, NumEvents: len(tr.Events)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events {
		// ID 0 exercises writer-side ID assignment.
		e := tr.Events[i]
		e.ID = None
		if err := w.Append(&e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestWriterMisuse(t *testing.T) {
	meta := Meta{Nodes: 2, Workload: "m", NumEvents: 1}
	ev := Event{Src: 0, Dst: 1, Bytes: 8, RefArrive: 1}

	t.Run("close before count reached", func(t *testing.T) {
		w, err := NewWriter(&bytes.Buffer{}, meta)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err == nil || !strings.Contains(err.Error(), "0 of 1") {
			t.Fatalf("early close error = %v", err)
		}
	})
	t.Run("append beyond count", func(t *testing.T) {
		w, err := NewWriter(&bytes.Buffer{}, meta)
		if err != nil {
			t.Fatal(err)
		}
		e := ev
		if err := w.Append(&e); err != nil {
			t.Fatal(err)
		}
		e2 := ev
		e2.ID = None
		if err := w.Append(&e2); err == nil || !strings.Contains(err.Error(), "beyond declared") {
			t.Fatalf("over-append error = %v", err)
		}
	})
	t.Run("append out of order", func(t *testing.T) {
		w, err := NewWriter(&bytes.Buffer{}, Meta{Nodes: 2, Workload: "m", NumEvents: 2})
		if err != nil {
			t.Fatal(err)
		}
		e := ev
		e.ID = 2
		if err := w.Append(&e); err == nil || !strings.Contains(err.Error(), "out of order") {
			t.Fatalf("out-of-order error = %v", err)
		}
	})
	t.Run("append invalid event", func(t *testing.T) {
		w, err := NewWriter(&bytes.Buffer{}, meta)
		if err != nil {
			t.Fatal(err)
		}
		e := ev
		e.Bytes = 0
		if err := w.Append(&e); err == nil || !strings.Contains(err.Error(), "non-positive size") {
			t.Fatalf("invalid-event error = %v", err)
		}
	})
	t.Run("append after close", func(t *testing.T) {
		w, err := NewWriter(&bytes.Buffer{}, Meta{Nodes: 2, Workload: "m", NumEvents: 0})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		e := ev
		if err := w.Append(&e); err == nil || !strings.Contains(err.Error(), "closed writer") {
			t.Fatalf("append-after-close error = %v", err)
		}
	})
}

// rawTrace hand-encodes a binary trace so tests can produce byte sequences
// the Writer's validation would refuse.
type rawTrace struct{ buf bytes.Buffer }

func (r *rawTrace) u(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	r.buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func (r *rawTrace) header(nodes, nevents uint64, workload string) {
	r.buf.WriteString(magic)
	r.u(formatVersion)
	r.u(nodes)
	r.u(uint64(len(workload)))
	r.buf.WriteString(workload)
	r.u(0) // makespan
	r.u(nevents)
}

func (r *rawTrace) event(src, dst, size, class, kind, gap, ri, ra uint64, deps ...uint64) {
	for _, v := range []uint64{src, dst, size, class, kind, gap, ri, ra, uint64(len(deps) / 2)} {
		r.u(v)
	}
	for _, v := range deps {
		r.u(v)
	}
}

func TestReaderErrorsCarryOffsetAndRecord(t *testing.T) {
	t.Run("bad magic", func(t *testing.T) {
		_, err := NewReader(bytes.NewReader([]byte("XCTM\x01")))
		if err == nil || !strings.Contains(err.Error(), "header (byte offset") {
			t.Fatalf("error = %v", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		_, err := NewReader(bytes.NewReader([]byte("SCTM\x01\x04")))
		if err == nil || !strings.Contains(err.Error(), "header (byte offset 6)") {
			t.Fatalf("error = %v", err)
		}
	})
	t.Run("invalid record field", func(t *testing.T) {
		var r rawTrace
		r.header(4, 2, "w")
		r.event(0, 1, 8, 0, 0, 0, 0, 5)
		r.event(1, 2, 0, 0, 0, 0, 0, 5) // zero-byte payload: invalid
		got, err := ReadBinary(&r.buf)
		if err == nil {
			t.Fatalf("corrupt record accepted: %+v", got)
		}
		msg := err.Error()
		if !strings.Contains(msg, "record 2 (byte offset") || !strings.Contains(msg, "non-positive size") {
			t.Fatalf("error %q lacks record/offset context", msg)
		}
	})
	t.Run("truncated mid record", func(t *testing.T) {
		var r rawTrace
		r.header(4, 2, "w")
		r.event(0, 1, 8, 0, 0, 0, 0, 5)
		raw := r.buf.Bytes()
		raw = append(raw, 2, 3) // record 2 begins, then the stream ends
		_, err := ReadBinary(bytes.NewReader(raw))
		if err == nil || !strings.Contains(err.Error(), "record 2 (byte offset") {
			t.Fatalf("error = %v", err)
		}
	})
	t.Run("missing events", func(t *testing.T) {
		var r rawTrace
		r.header(4, 3, "w")
		r.event(0, 1, 8, 0, 0, 0, 0, 5)
		_, err := ReadBinary(&r.buf)
		if err == nil || !strings.Contains(err.Error(), "record 2") {
			t.Fatalf("error = %v", err)
		}
	})
	t.Run("bad dep delta", func(t *testing.T) {
		var r rawTrace
		r.header(4, 2, "w")
		r.event(0, 1, 8, 0, 0, 0, 0, 5)
		r.event(1, 2, 8, 0, 0, 0, 0, 5, 2, 0) // delta 2 from id 2 → id 0: invalid
		_, err := ReadBinary(&r.buf)
		if err == nil || !strings.Contains(err.Error(), "invalid dep delta") {
			t.Fatalf("error = %v", err)
		}
	})
	t.Run("sticky error", func(t *testing.T) {
		var r rawTrace
		r.header(4, 1, "w")
		r.event(0, 1, 0, 0, 0, 0, 0, 0) // invalid size
		sr, err := NewReader(&r.buf)
		if err != nil {
			t.Fatal(err)
		}
		var e Event
		if _, err := sr.Next(&e); err == nil {
			t.Fatal("corrupt record accepted")
		}
		if _, err := sr.Next(&e); err == nil {
			t.Fatal("error did not stick")
		}
	})
}

func TestReaderToleratesTrailingBytes(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	buf.Write([]byte("trailing garbage"))
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("trailing bytes corrupted decode")
	}
}

func TestReaderRejectsImplausibleFields(t *testing.T) {
	big := uint64(1)<<62 + 1
	t.Run("huge gap", func(t *testing.T) {
		var r rawTrace
		r.header(4, 1, "w")
		r.event(0, 1, 8, 0, 0, big, 0, 5)
		_, err := ReadBinary(&r.buf)
		if err == nil || !strings.Contains(err.Error(), "implausible gap") {
			t.Fatalf("error = %v", err)
		}
	})
	t.Run("huge event count", func(t *testing.T) {
		var r rawTrace
		r.header(4, uint64(1)<<40, "w")
		_, err := NewReader(&r.buf)
		if err == nil || !strings.Contains(err.Error(), "implausible event count") {
			t.Fatalf("error = %v", err)
		}
	})
	t.Run("dep count exceeds earlier events", func(t *testing.T) {
		var r rawTrace
		r.header(4, 1, "w")
		r.event(0, 1, 8, 0, 0, 0, 0, 5, 1, 0, 1, 0, 1, 0) // claims 3 deps before any event exists
		_, err := ReadBinary(&r.buf)
		if err == nil || !strings.Contains(err.Error(), "claims 3 deps") {
			t.Fatalf("error = %v", err)
		}
	})
}

func TestNewFileSourceRejectsCorruptHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.sctm")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileSource(path); err == nil {
		t.Fatal("corrupt header accepted")
	} else if !strings.Contains(err.Error(), path) {
		t.Fatalf("error %q does not name the file", err)
	}
}

// randomStreamTrace builds a random valid DAG trace for streaming tests.
func randomStreamTrace(seed uint64, n, nodes int) *Trace {
	rng := sim.NewRNG(seed)
	tr := &Trace{Nodes: nodes, Workload: "stream-prop", RefMakespan: 100000}
	now := sim.Tick(0)
	for i := 0; i < n; i++ {
		id := EventID(i + 1)
		e := Event{
			ID:    id,
			Src:   rng.Intn(nodes),
			Dst:   rng.Intn(nodes),
			Bytes: 1 + rng.Intn(256),
			Class: noc.Class(rng.Intn(3)),
			Kind:  Kind(rng.Intn(int(numKinds))),
			Gap:   sim.Tick(rng.Intn(50)),
		}
		for d := 0; d < rng.Intn(3) && i > 0; d++ {
			e.Deps = append(e.Deps, Dep{
				On:    EventID(1 + rng.Intn(i)),
				Class: DepClass(rng.Intn(int(numDepClasses))),
			})
		}
		e.Deps = dedupeDeps(e.Deps, id)
		now += e.Gap + 1
		e.RefInject = now
		e.RefArrive = now + sim.Tick(1+rng.Intn(100))
		tr.Events = append(tr.Events, e)
	}
	return tr
}

func TestFileSourceMatchesTraceProperty(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		tr := randomStreamTrace(seed, 200, 8)
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		src, err := NewFileSource(writeTempTrace(t, tr))
		if err != nil {
			t.Fatal(err)
		}
		if got := collect(t, src); !reflect.DeepEqual(got, tr.Events) {
			t.Fatalf("seed %d: streamed events diverge from materialized trace", seed)
		}
		gotStats, err := StreamStats(src)
		if err != nil {
			t.Fatal(err)
		}
		if want := tr.ComputeStats(); gotStats != want {
			t.Fatalf("seed %d: StreamStats %+v, want %+v", seed, gotStats, want)
		}
	}
}
