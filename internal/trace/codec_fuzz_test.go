package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedCorpus returns representative encodings: valid traces of several
// shapes plus systematically damaged variants, so the fuzzer starts at the
// format's interesting boundaries instead of random bytes.
func fuzzSeedCorpus() [][]byte {
	var corpus [][]byte
	add := func(tr *Trace) {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			panic(err)
		}
		corpus = append(corpus, buf.Bytes())
	}
	add(tinyTrace())
	add(&Trace{Nodes: 1, Workload: "", RefMakespan: 0}) // empty trace
	add(chainTrace(40, 1))
	add(chainTrace(40, 30)) // long dependency spans
	add(randomStreamTrace(7, 120, 8))

	// Damaged variants of the tiny encoding.
	var tiny bytes.Buffer
	if err := WriteBinary(&tiny, tinyTrace()); err != nil {
		panic(err)
	}
	raw := tiny.Bytes()
	corpus = append(corpus, raw[:len(raw)/2])      // truncated mid-stream
	corpus = append(corpus, raw[:3])               // truncated magic
	corpus = append(corpus, append([]byte{}, 'X')) // not a trace at all
	flip := append([]byte(nil), raw...)
	flip[len(flip)/2] ^= 0xff // corrupted record body
	corpus = append(corpus, flip)
	ver := append([]byte(nil), raw...)
	ver[4] = 99 // unsupported version
	corpus = append(corpus, ver)
	return corpus
}

// FuzzReadBinary asserts the decoder's contract on arbitrary input: it never
// panics, and anything it accepts is a valid trace that re-encodes and
// re-decodes to the same value. The seed corpus runs under plain `go test`,
// so the boundary cases above are exercised on every CI run.
func FuzzReadBinary(f *testing.F) {
	for _, seed := range fuzzSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		again, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if !reflect.DeepEqual(tr, again) {
			t.Fatal("decode/encode/decode not a fixpoint")
		}
	})
}

// FuzzReaderStream asserts the incremental Reader matches ReadBinary
// decision-for-decision: same acceptance, same events.
func FuzzReaderStream(f *testing.F) {
	for _, seed := range fuzzSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		whole, wholeErr := ReadBinary(bytes.NewReader(data))

		sr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if wholeErr == nil {
				t.Fatalf("Reader rejected header ReadBinary accepted: %v", err)
			}
			return
		}
		var events []Event
		var e Event
		for {
			ok, nerr := sr.Next(&e)
			if nerr != nil {
				if wholeErr == nil {
					t.Fatalf("Reader rejected record ReadBinary accepted: %v", nerr)
				}
				return
			}
			if !ok {
				break
			}
			c := e
			if len(e.Deps) > 0 {
				c.Deps = append([]Dep(nil), e.Deps...)
			}
			events = append(events, c)
		}
		if sr.Decoded() < sr.Meta().NumEvents {
			// Clean EOF before the declared count: ReadBinary reports this
			// as a truncation error.
			if wholeErr == nil {
				t.Fatal("Reader stopped early on a stream ReadBinary accepted")
			}
			return
		}
		if wholeErr != nil {
			t.Fatalf("Reader accepted a stream ReadBinary rejected: %v", wholeErr)
		}
		if len(events) != len(whole.Events) {
			t.Fatalf("Reader yielded %d events, ReadBinary %d", len(events), len(whole.Events))
		}
		for i := range events {
			if !reflect.DeepEqual(events[i], whole.Events[i]) {
				t.Fatalf("event %d differs between Reader and ReadBinary", i)
			}
		}
	})
}
