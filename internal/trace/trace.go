// Package trace defines the dependency-annotated communication trace at the
// heart of the Self-Correction Trace Model, together with capture support,
// binary/JSON codecs, and structural validation.
//
// A trace is a DAG over network messages. Each event records, besides the
// message itself (endpoints, size, class), the *reason* it was injected when
// it was: the set of earlier events whose arrival gated it, and the local
// compute/service gap between the last gating arrival and the injection.
// Unlike a plain timestamped trace, this representation stays meaningful
// when the trace is replayed on a network with different timing: injection
// times are re-derived from dependencies instead of replayed verbatim.
package trace

import (
	"fmt"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// EventID identifies one traced message. IDs are assigned in injection
// order during capture and are therefore a valid topological order of the
// dependency DAG: every dependency refers to a strictly smaller ID.
type EventID uint32

// None is the null EventID; valid events are numbered from 1.
const None EventID = 0

// Kind classifies the protocol role of a traced message, for reporting and
// for sanity checks; the replay engines treat all kinds uniformly.
type Kind uint8

const (
	KindData     Kind = iota // generic data transfer
	KindRequest              // coherence/sync request
	KindResponse             // data or grant response
	KindControl              // invalidations, acks, recalls
	KindSync                 // lock grants, barrier releases
	numKinds
)

var kindNames = [numKinds]string{"data", "request", "response", "control", "sync"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "invalid"
}

// DepClass labels why an event depends on another; the R8 ablation disables
// classes selectively.
type DepClass uint8

const (
	// DepProgram is program order on a core: the event could not be
	// issued before the core finished its preceding work.
	DepProgram DepClass = iota
	// DepCausal is protocol causality: a response cannot precede the
	// arrival of its request.
	DepCausal
	// DepSync is synchronization: a grant cannot precede the release, a
	// barrier release cannot precede the last arrival.
	DepSync
	numDepClasses
)

var depClassNames = [numDepClasses]string{"program", "causal", "sync"}

// String names the dependency class.
func (c DepClass) String() string {
	if int(c) < len(depClassNames) {
		return depClassNames[c]
	}
	return "invalid"
}

// Dep is one dependency edge: this event may not be injected until event On
// has *arrived* at its destination.
type Dep struct {
	On    EventID  `json:"on"`
	Class DepClass `json:"class"`
}

// Event is one traced message plus its injection causes.
type Event struct {
	ID    EventID   `json:"id"`
	Src   int       `json:"src"`
	Dst   int       `json:"dst"`
	Bytes int       `json:"bytes"`
	Class noc.Class `json:"class"`
	Kind  Kind      `json:"kind"`

	// Gap is the local think/service time, in cycles, between the moment
	// the last dependency arrived (or time zero if no dependencies) and
	// the injection of this message during capture.
	Gap sim.Tick `json:"gap"`
	// Deps lists the gating events.
	Deps []Dep `json:"deps,omitempty"`

	// RefInject and RefArrive are the timestamps observed on the capture
	// (reference) network. Naive replay uses RefInject verbatim; the
	// self-correction model uses them only for diagnostics.
	RefInject sim.Tick `json:"ref_inject"`
	RefArrive sim.Tick `json:"ref_arrive"`
}

// Trace is a complete captured run.
type Trace struct {
	// Nodes is the endpoint count of the captured system.
	Nodes int `json:"nodes"`
	// Workload labels the run for reports.
	Workload string `json:"workload"`
	// RefMakespan is the completion time of the capture run, including
	// trailing computation after the last message.
	RefMakespan sim.Tick `json:"ref_makespan"`
	// Events are topologically ordered by ID (ID = index+1).
	Events []Event `json:"events"`
}

// NumEvents returns the event count.
func (t *Trace) NumEvents() int { return len(t.Events) }

// Event returns the event with the given ID; it panics on the null or
// out-of-range ID, which always indicates a corrupted trace.
func (t *Trace) Event(id EventID) *Event {
	if id == None || int(id) > len(t.Events) {
		panic(fmt.Sprintf("trace: event id %d out of range [1,%d]", id, len(t.Events)))
	}
	return &t.Events[id-1]
}

// Validate checks the structural invariants every consumer relies on:
// IDs dense and ascending, endpoints in range, dependencies strictly
// earlier, gaps non-negative, and reference timestamps coherent.
func (t *Trace) Validate() error {
	if t.Nodes < 1 {
		return fmt.Errorf("trace: nodes=%d must be ≥1", t.Nodes)
	}
	for i := range t.Events {
		e := &t.Events[i]
		want := EventID(i + 1)
		if e.ID != want {
			return fmt.Errorf("trace: event %d has id %d, want %d", i, e.ID, want)
		}
		if err := validateEvent(t.Nodes, e); err != nil {
			return err
		}
	}
	if t.RefMakespan < 0 {
		return fmt.Errorf("trace: negative makespan %d", t.RefMakespan)
	}
	return nil
}

// Stats summarizes a trace for reports.
type Stats struct {
	Events      int
	Bytes       uint64
	DepEdges    [numDepClasses]int
	ByKind      [numKinds]int
	RefMakespan sim.Tick
}

// ComputeStats scans the trace once.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Events: len(t.Events), RefMakespan: t.RefMakespan}
	for i := range t.Events {
		e := &t.Events[i]
		s.Bytes += uint64(e.Bytes)
		if int(e.Kind) < len(s.ByKind) {
			s.ByKind[e.Kind]++
		}
		for _, d := range e.Deps {
			if int(d.Class) < len(s.DepEdges) {
				s.DepEdges[d.Class]++
			}
		}
	}
	return s
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("events=%d bytes=%d deps[prog=%d causal=%d sync=%d] makespan=%d",
		s.Events, s.Bytes, s.DepEdges[DepProgram], s.DepEdges[DepCausal], s.DepEdges[DepSync], s.RefMakespan)
}
