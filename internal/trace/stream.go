package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sync"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// This file is the out-of-core half of the trace package: incremental
// decode/encode of the binary format, so a trace never has to be
// materialized to be produced, inspected, or replayed. The Source/Iterator
// pair is the contract the streaming replay engines in internal/core
// consume; FileSource streams from disk with O(1) resident state per pass,
// and MemSource adapts an in-memory Trace to the same contract so both
// execution paths share one consumer implementation.

// Meta is the trace header: everything known about a trace before any event
// has been decoded.
type Meta struct {
	// Nodes is the endpoint count of the captured system.
	Nodes int
	// Workload labels the run for reports.
	Workload string
	// RefMakespan is the completion time of the capture run.
	RefMakespan sim.Tick
	// NumEvents is the total event count declared by the header.
	NumEvents int
}

// validate checks the header invariants shared by reader and writer.
func (m Meta) validate() error {
	if m.Nodes < 1 {
		return fmt.Errorf("trace: nodes=%d must be ≥1", m.Nodes)
	}
	if len(m.Workload) > 1<<16 {
		return fmt.Errorf("trace: implausible workload name length %d", len(m.Workload))
	}
	if m.RefMakespan < 0 {
		return fmt.Errorf("trace: negative makespan %d", m.RefMakespan)
	}
	if m.NumEvents < 0 || m.NumEvents > 1<<31 {
		return fmt.Errorf("trace: implausible event count %d", m.NumEvents)
	}
	return nil
}

// Iterator decodes one sequential pass over a trace, in event-ID order.
type Iterator interface {
	// Next decodes the next event into *e and reports whether one was
	// available. The Deps slice may be reused by the following Next call:
	// consumers that retain dependency edges across calls must copy them.
	Next(e *Event) (bool, error)
	// Close releases the pass's underlying resources (file handles).
	Close() error
}

// Source yields repeated sequential decode passes over a stored trace. The
// replay engines take several passes per run (seeding, scheduling, replay),
// so a Source must support any number of Pass calls; passes are independent
// and may be open concurrently (the sharded engine opens one per shard).
type Source interface {
	// Meta returns the trace header without decoding any events.
	Meta() Meta
	// Pass opens a fresh iterator positioned before the first event.
	Pass() (Iterator, error)
}

// Digester is an optional Source extension: a stable, collision-resistant
// identity for the trace's *content*, usable as a cache key for results of
// replaying the source. Both provided sources implement it: FileSource
// hashes the raw file bytes (lazily, once), and MemSource hashes the
// canonical binary encoding — so a file written by Writer digests
// identically to the in-memory trace it encodes. A digest mismatch between
// two representations of equal content only costs a cache miss, never a
// wrong hit.
type Digester interface {
	// Digest returns an identity of the form "sha256:<hex>".
	Digest() (string, error)
}

// validateEvent checks the per-event structural invariants every consumer
// relies on. It is the single checkpoint shared by Trace.Validate, the
// streaming Reader, and the streaming Writer, so the three paths accept
// exactly the same traces.
func validateEvent(nodes int, e *Event) error {
	if e.Src < 0 || e.Src >= nodes || e.Dst < 0 || e.Dst >= nodes {
		return fmt.Errorf("trace: event %d endpoints (%d->%d) out of [0,%d)", e.ID, e.Src, e.Dst, nodes)
	}
	if e.Bytes <= 0 {
		return fmt.Errorf("trace: event %d has non-positive size %d", e.ID, e.Bytes)
	}
	if e.Class >= noc.NumClasses {
		return fmt.Errorf("trace: event %d has invalid class %d", e.ID, e.Class)
	}
	if e.Kind >= numKinds {
		return fmt.Errorf("trace: event %d has invalid kind %d", e.ID, e.Kind)
	}
	if e.Gap < 0 {
		return fmt.Errorf("trace: event %d has negative gap %d", e.ID, e.Gap)
	}
	for _, d := range e.Deps {
		if d.On == None || d.On >= e.ID {
			return fmt.Errorf("trace: event %d depends on non-earlier event %d", e.ID, d.On)
		}
		if d.Class >= numDepClasses {
			return fmt.Errorf("trace: event %d has invalid dep class %d", e.ID, d.Class)
		}
	}
	if e.RefArrive < e.RefInject {
		return fmt.Errorf("trace: event %d arrives (%d) before injection (%d)", e.ID, e.RefArrive, e.RefInject)
	}
	return nil
}

// maxTick bounds uvarint-decoded time and size fields so casting to a signed
// type can never wrap negative on adversarial input.
const maxTick = uint64(1) << 62

// eventFieldNames names the fixed per-event fields, in wire order, for decode
// error messages.
var eventFieldNames = [9]string{"src", "dst", "bytes", "class", "kind", "gap", "ref_inject", "ref_arrive", "ndeps"}

// Reader incrementally decodes the binary trace format: the header is read
// at construction, then Next yields one validated event per call. Resident
// state is O(1) plus the current event's dependency list, independent of
// trace length. Decode errors carry the failing record number and byte
// offset, so a corrupt multi-gigabyte file points at the damage instead of
// yielding a bare varint error.
type Reader struct {
	br   *bufio.Reader
	meta Meta
	off  int64 // bytes consumed so far
	next int   // events decoded so far
	deps []Dep // reusable dependency buffer handed out via Event.Deps
	err  error // sticky first error
}

// NewReader consumes and validates the header of a binary trace stream.
func NewReader(r io.Reader) (*Reader, error) {
	sr := &Reader{br: bufio.NewReader(r)}
	if err := sr.readHeader(); err != nil {
		return nil, err
	}
	return sr, nil
}

// Meta returns the decoded header.
func (r *Reader) Meta() Meta { return r.meta }

// Decoded returns how many events Next has yielded so far.
func (r *Reader) Decoded() int { return r.next }

// headerErrf wraps a header-stage decode failure with the byte offset.
func (r *Reader) headerErrf(format string, args ...any) error {
	return fmt.Errorf("trace: header (byte offset %d): %s", r.off, fmt.Sprintf(format, args...))
}

// recordErrf wraps a per-event decode failure with the 1-based record number
// (the event ID being decoded) and the byte offset where decoding stood.
func (r *Reader) recordErrf(format string, args ...any) error {
	err := fmt.Errorf("trace: record %d (byte offset %d): %s", r.next+1, r.off, fmt.Sprintf(format, args...))
	r.err = err
	return err
}

// readByte reads one byte, counting it toward the offset.
func (r *Reader) readByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.off++
	}
	return b, err
}

// readUvarint is binary.ReadUvarint with offset accounting.
func (r *Reader) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := r.readByte()
		if err != nil {
			if i > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, fmt.Errorf("uvarint overflows 64 bits")
			}
			return x | uint64(b)<<s, nil
		}
		if i >= 9 {
			return 0, fmt.Errorf("uvarint overflows 64 bits")
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

func (r *Reader) readHeader() error {
	head := make([]byte, len(magic))
	n, err := io.ReadFull(r.br, head)
	r.off += int64(n)
	if err != nil {
		return r.headerErrf("reading magic: %v", err)
	}
	if string(head) != magic {
		return r.headerErrf("bad magic %q", head)
	}
	getU := func(what string) (uint64, error) {
		v, err := r.readUvarint()
		if err != nil {
			return 0, r.headerErrf("reading %s: %v", what, err)
		}
		return v, nil
	}
	ver, err := getU("version")
	if err != nil {
		return err
	}
	if ver != formatVersion {
		return r.headerErrf("unsupported format version %d", ver)
	}
	nodes, err := getU("nodes")
	if err != nil {
		return err
	}
	wlen, err := getU("workload length")
	if err != nil {
		return err
	}
	if wlen > 1<<16 {
		return r.headerErrf("implausible workload name length %d", wlen)
	}
	wl := make([]byte, wlen)
	n, err = io.ReadFull(r.br, wl)
	r.off += int64(n)
	if err != nil {
		return r.headerErrf("reading workload name: %v", err)
	}
	makespan, err := getU("makespan")
	if err != nil {
		return err
	}
	nevents, err := getU("event count")
	if err != nil {
		return err
	}
	if nodes > 1<<31 || makespan > maxTick {
		return r.headerErrf("implausible header field (nodes=%d makespan=%d)", nodes, makespan)
	}
	r.meta = Meta{
		Nodes:       int(nodes),
		Workload:    string(wl),
		RefMakespan: sim.Tick(makespan),
		NumEvents:   int(nevents),
	}
	if err := r.meta.validate(); err != nil {
		return r.headerErrf("%v", err)
	}
	return nil
}

// Next decodes the next event. The event's Deps slice aliases a buffer owned
// by the reader and is only valid until the following Next call.
func (r *Reader) Next(e *Event) (bool, error) {
	if r.err != nil {
		return false, r.err
	}
	if r.next >= r.meta.NumEvents {
		// The format is length-prefixed; trailing bytes are tolerated so a
		// trace can be embedded in a larger stream.
		return false, nil
	}
	id := EventID(r.next + 1)
	var fields [9]uint64
	names := &eventFieldNames
	for j := range fields {
		v, err := r.readUvarint()
		if err != nil {
			return false, r.recordErrf("reading %s: %v", names[j], err)
		}
		fields[j] = v
	}
	for _, j := range [...]int{2, 5, 6, 7} { // bytes, gap, ref_inject, ref_arrive
		if fields[j] > maxTick {
			return false, r.recordErrf("implausible %s %d", names[j], fields[j])
		}
	}
	*e = Event{
		ID:        id,
		Src:       int(fields[0]),
		Dst:       int(fields[1]),
		Bytes:     int(fields[2]),
		Class:     noc.Class(fields[3]),
		Kind:      Kind(fields[4]),
		Gap:       sim.Tick(fields[5]),
		RefInject: sim.Tick(fields[6]),
		RefArrive: sim.Tick(fields[7]),
	}
	ndeps := fields[8]
	if ndeps > uint64(r.next)+1 {
		return false, r.recordErrf("event claims %d deps", ndeps)
	}
	r.deps = r.deps[:0]
	for k := uint64(0); k < ndeps; k++ {
		delta, err := r.readUvarint()
		if err != nil {
			return false, r.recordErrf("reading dep id: %v", err)
		}
		if delta == 0 || delta >= uint64(id) {
			return false, r.recordErrf("invalid dep delta %d", delta)
		}
		cls, err := r.readUvarint()
		if err != nil {
			return false, r.recordErrf("reading dep class: %v", err)
		}
		r.deps = append(r.deps, Dep{On: id - EventID(delta), Class: DepClass(cls)})
	}
	if len(r.deps) > 0 {
		e.Deps = r.deps
	}
	if err := validateEvent(r.meta.Nodes, e); err != nil {
		return false, r.recordErrf("%v", err)
	}
	r.next++
	return true, nil
}

// Close implements Iterator; the Reader does not own its io.Reader.
func (r *Reader) Close() error { return nil }

// FileSource streams passes over a binary trace file on disk. Each Pass
// opens the file independently, so concurrent passes (one per shard) are
// safe; the header is decoded once at construction.
type FileSource struct {
	path string
	meta Meta

	digestOnce sync.Once
	digest     string
	digestErr  error
}

// NewFileSource validates the file's header and returns a reusable source.
func NewFileSource(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &FileSource{path: path, meta: r.Meta()}, nil
}

// Meta returns the header decoded at construction.
func (s *FileSource) Meta() Meta { return s.meta }

// Pass opens a fresh decode pass over the file.
func (s *FileSource) Pass() (Iterator, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%w (in %s)", err, s.path)
	}
	return &fileIter{Reader: r, f: f}, nil
}

type fileIter struct {
	*Reader
	f *os.File
}

func (it *fileIter) Close() error { return it.f.Close() }

// Digest implements Digester by hashing the raw file bytes. The hash is
// computed on first use and cached; a multi-gigabyte trace pays one
// sequential read, far below a single replay pass's decode cost.
func (s *FileSource) Digest() (string, error) {
	s.digestOnce.Do(func() {
		f, err := os.Open(s.path)
		if err != nil {
			s.digestErr = fmt.Errorf("trace: %w", err)
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			s.digestErr = fmt.Errorf("trace: digesting %s: %w", s.path, err)
			return
		}
		s.digest = "sha256:" + hex.EncodeToString(h.Sum(nil))
	})
	return s.digest, s.digestErr
}

// MemSource adapts a materialized Trace to the Source contract, so in-memory
// and out-of-core execution share one consumer code path. The trace must
// already satisfy Validate; events are handed out without copying.
type MemSource struct {
	tr *Trace

	digestOnce sync.Once
	digest     string
	digestErr  error
}

// NewMemSource wraps an in-memory trace.
func NewMemSource(tr *Trace) *MemSource { return &MemSource{tr: tr} }

// Meta derives the header from the materialized trace.
func (s *MemSource) Meta() Meta {
	return Meta{
		Nodes:       s.tr.Nodes,
		Workload:    s.tr.Workload,
		RefMakespan: s.tr.RefMakespan,
		NumEvents:   len(s.tr.Events),
	}
}

// Pass opens an iterator over the trace's event slice.
func (s *MemSource) Pass() (Iterator, error) { return &memIter{tr: s.tr}, nil }

type memIter struct {
	tr  *Trace
	pos int
}

func (it *memIter) Next(e *Event) (bool, error) {
	if it.pos >= len(it.tr.Events) {
		return false, nil
	}
	*e = it.tr.Events[it.pos]
	it.pos++
	return true, nil
}

func (it *memIter) Close() error { return nil }

// Digest implements Digester by streaming the canonical binary encoding
// through the hash — no materialized copy — so it matches the Digest of a
// file written by Writer for the same trace.
func (s *MemSource) Digest() (string, error) {
	s.digestOnce.Do(func() {
		h := sha256.New()
		w, err := NewWriter(h, s.Meta())
		if err != nil {
			s.digestErr = err
			return
		}
		for i := range s.tr.Events {
			e := s.tr.Events[i] // Append may assign the ID; never mutate the trace
			if err := w.Append(&e); err != nil {
				s.digestErr = err
				return
			}
		}
		if err := w.Close(); err != nil {
			s.digestErr = err
			return
		}
		s.digest = "sha256:" + hex.EncodeToString(h.Sum(nil))
	})
	return s.digest, s.digestErr
}

// Writer incrementally encodes the binary trace format: the header (with the
// final event count) is written at construction, then Append encodes one
// validated event at a time. Nothing is buffered beyond bufio, so a trace of
// any length streams to disk with O(1) resident memory — this is what
// `tracegen -huge` writes through.
type Writer struct {
	bw     *bufio.Writer
	meta   Meta
	next   int // events appended so far
	closed bool
	// scratch is the uvarint encode buffer. It lives on the Writer rather
	// than putU's frame because a frame-local buffer escapes through
	// bufio's underlying io.Writer, costing one heap allocation per field.
	scratch [10]byte
	// buf accumulates one whole encoded event, so Append pays a single
	// bufio.Write instead of one per field.
	buf []byte
}

// NewWriter validates the header and writes it. The event count must be
// known up front — the format is length-prefixed.
func NewWriter(w io.Writer, meta Meta) (*Writer, error) {
	if err := meta.validate(); err != nil {
		return nil, err
	}
	sw := &Writer{bw: bufio.NewWriter(w), meta: meta}
	if _, err := sw.bw.WriteString(magic); err != nil {
		return nil, err
	}
	for _, v := range []uint64{formatVersion, uint64(meta.Nodes)} {
		if err := sw.putU(v); err != nil {
			return nil, err
		}
	}
	if err := sw.putU(uint64(len(meta.Workload))); err != nil {
		return nil, err
	}
	if _, err := sw.bw.WriteString(meta.Workload); err != nil {
		return nil, err
	}
	for _, v := range []uint64{uint64(meta.RefMakespan), uint64(meta.NumEvents)} {
		if err := sw.putU(v); err != nil {
			return nil, err
		}
	}
	return sw, nil
}

func (w *Writer) putU(v uint64) error {
	n := 0
	for v >= 0x80 {
		w.scratch[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	w.scratch[n] = byte(v)
	_, err := w.bw.Write(w.scratch[:n+1])
	return err
}

// Append validates and encodes one event. The event's ID must be the next
// dense ID (or zero, in which case it is assigned).
func (w *Writer) Append(e *Event) error {
	if w.closed {
		return fmt.Errorf("trace: append to closed writer")
	}
	if w.next >= w.meta.NumEvents {
		return fmt.Errorf("trace: append beyond declared event count %d", w.meta.NumEvents)
	}
	want := EventID(w.next + 1)
	if e.ID == None {
		e.ID = want
	}
	if e.ID != want {
		return fmt.Errorf("trace: event %d appended out of order, want id %d", e.ID, want)
	}
	if err := validateEvent(w.meta.Nodes, e); err != nil {
		return err
	}
	b := w.buf[:0]
	for _, v := range [...]uint64{
		uint64(e.Src), uint64(e.Dst), uint64(e.Bytes),
		uint64(e.Class), uint64(e.Kind), uint64(e.Gap),
		uint64(e.RefInject), uint64(e.RefArrive),
		uint64(len(e.Deps)),
	} {
		b = appendUvarint(b, v)
	}
	for _, d := range e.Deps {
		b = appendUvarint(b, uint64(e.ID-d.On))
		b = appendUvarint(b, uint64(d.Class))
	}
	w.buf = b
	if _, err := w.bw.Write(b); err != nil {
		return err
	}
	w.next++
	return nil
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// Close checks the declared event count was reached and flushes. It does not
// close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.next != w.meta.NumEvents {
		return fmt.Errorf("trace: writer closed after %d of %d declared events", w.next, w.meta.NumEvents)
	}
	return w.bw.Flush()
}

// StreamStats computes the same summary ComputeStats does, in one pass with
// O(1) resident memory.
func StreamStats(src Source) (Stats, error) {
	m := src.Meta()
	it, err := src.Pass()
	if err != nil {
		return Stats{}, err
	}
	defer it.Close()
	s := Stats{RefMakespan: m.RefMakespan}
	var e Event
	for {
		ok, err := it.Next(&e)
		if err != nil {
			return Stats{}, err
		}
		if !ok {
			break
		}
		s.Events++
		s.Bytes += uint64(e.Bytes)
		if int(e.Kind) < len(s.ByKind) {
			s.ByKind[e.Kind]++
		}
		for _, d := range e.Deps {
			if int(d.Class) < len(s.DepEdges) {
				s.DepEdges[d.Class]++
			}
		}
	}
	if s.Events != m.NumEvents {
		return Stats{}, fmt.Errorf("trace: stream yielded %d events, header declared %d", s.Events, m.NumEvents)
	}
	return s, nil
}
