package trace

import (
	"testing"

	"onocsim/internal/sim"
)

func TestScaleGapsDoublesGaps(t *testing.T) {
	tr := tinyTrace()
	scaled, err := tr.ScaleGaps(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events {
		if scaled.Events[i].Gap != 2*tr.Events[i].Gap {
			t.Fatalf("event %d gap %d, want %d", i+1, scaled.Events[i].Gap, 2*tr.Events[i].Gap)
		}
	}
	// Original untouched.
	if tr.Events[0].Gap != 5 {
		t.Fatal("ScaleGaps mutated its input")
	}
	// Reference times rebuilt consistently (arrive ≥ inject, deps honored).
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
	// Latencies preserved.
	for i := range tr.Events {
		o := tr.Events[i].RefArrive - tr.Events[i].RefInject
		n := scaled.Events[i].RefArrive - scaled.Events[i].RefInject
		if o != n {
			t.Fatalf("event %d latency changed %d→%d", i+1, o, n)
		}
	}
	// Makespan grows when gaps grow.
	if scaled.RefMakespan <= tr.RefMakespan {
		t.Fatalf("makespan %d did not grow from %d", scaled.RefMakespan, tr.RefMakespan)
	}
}

func TestScaleGapsZeroAndNegative(t *testing.T) {
	tr := tinyTrace()
	z, err := tr.ScaleGaps(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range z.Events {
		if z.Events[i].Gap != 0 {
			t.Fatal("zero scaling left a gap")
		}
	}
	if _, err := tr.ScaleGaps(-1); err == nil {
		t.Fatal("negative factor accepted")
	}
}

func TestFilterNodesLiftsDependencies(t *testing.T) {
	// e1: 0→1, e2: 1→2 (dep e1), e3: 0→2 (deps e1,e2). Dropping node 1
	// removes e1 and e2; e3's deps lift transitively to... e1 and e2 are
	// both dropped, and e1 has no deps, so e3 ends dependency-free.
	tr := tinyTrace()
	f, err := tr.FilterNodes(func(n int) bool { return n != 1 })
	if err != nil {
		t.Fatal(err)
	}
	if f.NumEvents() != 1 {
		t.Fatalf("kept %d events, want 1", f.NumEvents())
	}
	if f.Events[0].Src != 0 || f.Events[0].Dst != 2 {
		t.Fatal("wrong event kept")
	}
	if len(f.Events[0].Deps) != 0 {
		t.Fatalf("deps = %v, want none after lifting through dropped events", f.Events[0].Deps)
	}
}

func TestFilterNodesKeepAll(t *testing.T) {
	tr := tinyTrace()
	f, err := tr.FilterNodes(func(int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if f.NumEvents() != tr.NumEvents() {
		t.Fatal("keep-all filter dropped events")
	}
	for i := range f.Events {
		if len(f.Events[i].Deps) != len(tr.Events[i].Deps) {
			t.Fatal("keep-all filter changed deps")
		}
	}
	if _, err := tr.FilterNodes(nil); err == nil {
		t.Fatal("nil predicate accepted")
	}
}

func TestFilterNodesChainLifting(t *testing.T) {
	// Chain 0→1→0 where the middle event is dropped: the tail must lift
	// its dependency to the head.
	tr := &Trace{
		Nodes: 3, RefMakespan: 100,
		Events: []Event{
			{ID: 1, Src: 0, Dst: 2, Bytes: 8, Gap: 1, RefInject: 1, RefArrive: 10},
			{ID: 2, Src: 2, Dst: 1, Bytes: 8, Gap: 1, Deps: []Dep{{On: 1, Class: DepCausal}},
				RefInject: 11, RefArrive: 20},
			{ID: 3, Src: 2, Dst: 0, Bytes: 8, Gap: 1, Deps: []Dep{{On: 2, Class: DepSync}},
				RefInject: 21, RefArrive: 30},
		},
	}
	f, err := tr.FilterNodes(func(n int) bool { return n != 1 })
	if err != nil {
		t.Fatal(err)
	}
	if f.NumEvents() != 2 {
		t.Fatalf("kept %d", f.NumEvents())
	}
	e3 := f.Events[1]
	if len(e3.Deps) != 1 || e3.Deps[0].On != 1 {
		t.Fatalf("lifted deps = %v, want [{1 causal}]", e3.Deps)
	}
}

func TestSliceTimeWindow(t *testing.T) {
	tr := tinyTrace() // injects at 5, 31, 53
	s, err := tr.SliceTime(30, 60)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumEvents() != 2 {
		t.Fatalf("kept %d events, want 2", s.NumEvents())
	}
	// First kept event (old e2) re-anchors: dep on e1 dropped, gap = 31-30.
	if s.Events[0].Gap != 1 || len(s.Events[0].Deps) != 0 {
		t.Fatalf("re-anchoring wrong: gap=%d deps=%v", s.Events[0].Gap, s.Events[0].Deps)
	}
	// Second kept event retains its intra-window dep on the first.
	found := false
	for _, d := range s.Events[1].Deps {
		if d.On == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("intra-window dep lost: %v", s.Events[1].Deps)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.SliceTime(50, 50); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestTransformsComposeWithSchedulePipeline(t *testing.T) {
	// A scaled trace must still be consumable end to end.
	tr := tinyTrace()
	scaled, err := tr.ScaleGaps(3)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := scaled.CriticalPathReference()
	if err != nil {
		t.Fatal(err)
	}
	cpOrig, err := tr.CriticalPathReference()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Length <= cpOrig.Length {
		t.Fatalf("tripled gaps should lengthen the critical path: %d vs %d", cp.Length, cpOrig.Length)
	}
	var _ sim.Tick = cp.Length
}
