package trace

import (
	"reflect"
	"strings"
	"testing"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

// checkAnalysisMatchesInMemory asserts StreamAnalyze reproduces the in-memory
// quartet exactly.
func checkAnalysisMatchesInMemory(t *testing.T, tr *Trace, opts StreamOptions) *Analysis {
	t.Helper()
	an, err := StreamAnalyze(NewMemSource(tr), opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := tr.ComputeStats(); an.Stats != want {
		t.Fatalf("Stats %+v, want %+v", an.Stats, want)
	}
	cp, err := tr.CriticalPathReference()
	if err != nil {
		t.Fatal(err)
	}
	if an.CriticalPath.Length != cp.Length {
		t.Fatalf("CriticalPath.Length %d, want %d", an.CriticalPath.Length, cp.Length)
	}
	if opts.Paths {
		if !reflect.DeepEqual(an.CriticalPath.Events, cp.Events) {
			t.Fatalf("CriticalPath.Events %v, want %v", an.CriticalPath.Events, cp.Events)
		}
	} else if an.CriticalPath.Events != nil {
		t.Fatal("CriticalPath.Events populated without Paths")
	}
	if len(tr.Events) > 0 && an.CriticalPathEvents != len(cp.Events) {
		t.Fatalf("CriticalPathEvents %d, want %d", an.CriticalPathEvents, len(cp.Events))
	}
	if want := tr.DepthHistogram(); !reflect.DeepEqual(an.DepthHist, want) {
		t.Fatalf("DepthHist %v, want %v", an.DepthHist, want)
	}
	sends, recvs := tr.NodeActivity()
	if !reflect.DeepEqual(an.Sends, sends) || !reflect.DeepEqual(an.Recvs, recvs) {
		t.Fatalf("activity (%v, %v), want (%v, %v)", an.Sends, an.Recvs, sends, recvs)
	}
	return an
}

func TestStreamAnalyzeMatchesInMemory(t *testing.T) {
	for _, paths := range []bool{false, true} {
		checkAnalysisMatchesInMemory(t, tinyTrace(), StreamOptions{Paths: paths})
		for seed := uint64(1); seed <= 5; seed++ {
			checkAnalysisMatchesInMemory(t, randomStreamTrace(seed, 300, 8), StreamOptions{Paths: paths})
		}
	}
}

func TestStreamAnalyzeFromFile(t *testing.T) {
	tr := randomStreamTrace(42, 200, 8)
	src, err := NewFileSource(writeTempTrace(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	got, err := StreamAnalyze(src, StreamOptions{Paths: true})
	if err != nil {
		t.Fatal(err)
	}
	want := checkAnalysisMatchesInMemory(t, tr, StreamOptions{Paths: true})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("file analysis diverges from mem analysis:\n got %+v\nwant %+v", got, want)
	}
}

func TestStreamAnalyzeEmptyTrace(t *testing.T) {
	tr := &Trace{Nodes: 3, Workload: "empty"}
	an := checkAnalysisMatchesInMemory(t, tr, StreamOptions{Paths: true})
	if an.CriticalPathEvents != 0 || an.MaxDepSpan != 0 {
		t.Fatalf("empty trace produced %+v", an)
	}
}

// chainTrace builds a single-source causal chain where each event depends on
// the event `span` places earlier (or the immediately preceding event when
// span ≤ 1).
func chainTrace(n, span int) *Trace {
	tr := &Trace{Nodes: 2, Workload: "chain", RefMakespan: sim.Tick(10 * n)}
	for i := 0; i < n; i++ {
		e := Event{
			ID: EventID(i + 1), Src: 0, Dst: 1, Bytes: 8,
			Class: noc.ClassRequest, Kind: KindData,
			Gap: 1, RefInject: sim.Tick(2 * i), RefArrive: sim.Tick(2*i + 5),
		}
		if di := i - span; di >= 0 {
			e.Deps = []Dep{{On: EventID(di + 1), Class: DepProgram}}
		} else if i > 0 {
			e.Deps = []Dep{{On: EventID(i), Class: DepProgram}}
		}
		tr.Events = append(tr.Events, e)
	}
	return tr
}

func TestStreamAnalyzeSingleSourceChain(t *testing.T) {
	an := checkAnalysisMatchesInMemory(t, chainTrace(50, 1), StreamOptions{Paths: true})
	if an.MaxDepSpan != 1 {
		t.Fatalf("MaxDepSpan = %d, want 1", an.MaxDepSpan)
	}
	if an.CriticalPathEvents != 50 {
		t.Fatalf("chain critical path has %d events, want 50", an.CriticalPathEvents)
	}
}

func TestStreamAnalyzeWindowSmallerThanSpanErrors(t *testing.T) {
	// An edge spanning 10 events under a window of 4 must fail loudly (no
	// deadlock, no wrong numbers) and name the window that would work.
	tr := chainTrace(20, 10)
	_, err := StreamAnalyze(NewMemSource(tr), StreamOptions{Window: 4})
	if err == nil {
		t.Fatal("undersized window accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "window of at least 10") {
		t.Fatalf("error %q does not name the required window", msg)
	}
}

func TestStreamAnalyzeWindowExactlySpan(t *testing.T) {
	// A window equal to the longest span is sufficient.
	tr := chainTrace(20, 10)
	an, err := StreamAnalyze(NewMemSource(tr), StreamOptions{Window: 10})
	if err != nil {
		t.Fatal(err)
	}
	if an.MaxDepSpan != 10 {
		t.Fatalf("MaxDepSpan = %d, want 10", an.MaxDepSpan)
	}
	checkAnalysisMatchesInMemory(t, tr, StreamOptions{Window: 10})
}

func TestStreamAnalyzeRingGrowsPastInitialSize(t *testing.T) {
	// Spans beyond the initial 1024-slot ring but within the window must
	// trigger growth, not retirement: results stay exact.
	tr := chainTrace(3000, 2500)
	an := checkAnalysisMatchesInMemory(t, tr, StreamOptions{})
	if an.MaxDepSpan != 2500 {
		t.Fatalf("MaxDepSpan = %d, want 2500", an.MaxDepSpan)
	}
}

func TestStreamAnalyzeUnbounded(t *testing.T) {
	// Unbounded disables retirement entirely: a span of n-1 is fine.
	tr := chainTrace(1500, 1499)
	an, err := StreamAnalyze(NewMemSource(tr), StreamOptions{Window: Unbounded})
	if err != nil {
		t.Fatal(err)
	}
	if an.MaxDepSpan != 1499 {
		t.Fatalf("MaxDepSpan = %d, want 1499", an.MaxDepSpan)
	}
	// ...while a bounded window of the same trace errors.
	if _, err := StreamAnalyze(NewMemSource(tr), StreamOptions{Window: 100}); err == nil {
		t.Fatal("bounded window accepted span beyond it")
	}
}

func TestSpanWindowRetirementBoundary(t *testing.T) {
	// Boundary check on the ring itself, with a horizon past the initial
	// 1024-slot allocation so both growth steps and steady-state retirement
	// are crossed: after every add, a span of exactly H is served with the
	// value written H adds ago, and H+1 errors.
	const H = 2048
	w := newSpanWindow(H)
	for i := 0; i < 3*H; i++ {
		s := w.add()
		s.finish = sim.Tick(i)
		lo := i + 1 - H
		if lo < 0 {
			lo = 0
		}
		for _, j := range []int{lo, (lo + i) / 2, i} {
			got, err := w.get(j)
			if err != nil {
				t.Fatalf("add %d: get(%d) errored: %v", i, j, err)
			}
			if got.finish != sim.Tick(j) {
				t.Fatalf("add %d: get(%d) = %d, want %d (retired or misplaced)", i, j, got.finish, j)
			}
		}
		if lo > 0 {
			if _, err := w.get(lo - 1); err == nil {
				t.Fatalf("add %d: span %d beyond horizon served", i, H+1)
			}
		}
	}
}
