package trace

import (
	"testing"

	"onocsim/internal/sim"
)

func TestCriticalPathLinearChain(t *testing.T) {
	tr := tinyTrace()
	// Weights with lat = 10 each:
	//   e1: 5+10=15 → e2 (dep e1): 15+6+10=31 → e3 (deps e1,e2): 31+2+10=43.
	cp, err := tr.CriticalPathWith([]sim.Tick{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Length != 43 {
		t.Fatalf("length = %d, want 43", cp.Length)
	}
	want := []EventID{1, 2, 3}
	if len(cp.Events) != 3 {
		t.Fatalf("path = %v", cp.Events)
	}
	for i := range want {
		if cp.Events[i] != want[i] {
			t.Fatalf("path = %v, want %v", cp.Events, want)
		}
	}
}

func TestCriticalPathPicksHeavierBranch(t *testing.T) {
	tr := &Trace{
		Nodes: 4, RefMakespan: 1000,
		Events: []Event{
			{ID: 1, Src: 0, Dst: 1, Bytes: 8, Gap: 1, RefInject: 1, RefArrive: 2},
			{ID: 2, Src: 1, Dst: 2, Bytes: 8, Gap: 100, RefInject: 102, RefArrive: 110},
			{ID: 3, Src: 2, Dst: 3, Bytes: 8, Gap: 1,
				Deps:      []Dep{{On: 1, Class: DepCausal}, {On: 2, Class: DepCausal}},
				RefInject: 111, RefArrive: 120},
		},
	}
	cp, err := tr.CriticalPathWith([]sim.Tick{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Heavy branch is via e2 (gap 100).
	if len(cp.Events) != 2 || cp.Events[0] != 2 || cp.Events[1] != 3 {
		t.Fatalf("path = %v, want [2 3]", cp.Events)
	}
	if cp.Length != 103 { // e2: 100+1=101; e3: 101+1+1=103
		t.Fatalf("length = %d, want 103", cp.Length)
	}
}

func TestCriticalPathReference(t *testing.T) {
	tr := tinyTrace()
	cp, err := tr.CriticalPathReference()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Length <= 0 || len(cp.Events) == 0 {
		t.Fatalf("degenerate reference critical path: %+v", cp)
	}
	// The reference critical path cannot exceed the reference makespan in
	// a trace whose timestamps were produced by a real run... here the
	// synthetic makespan is 100 and the chain ends at 73+something; just
	// check against last arrival.
	if cp.Length < 73 {
		t.Fatalf("length %d below last arrival", cp.Length)
	}
}

func TestCriticalPathErrors(t *testing.T) {
	tr := tinyTrace()
	if _, err := tr.CriticalPathWith([]sim.Tick{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	empty := &Trace{Nodes: 1}
	cp, err := empty.CriticalPathWith(nil)
	if err != nil || cp.Length != 0 || len(cp.Events) != 0 {
		t.Fatalf("empty trace: %+v, %v", cp, err)
	}
}

func TestDepthHistogram(t *testing.T) {
	tr := tinyTrace()
	hist := tr.DepthHistogram()
	// e1 depth 0; e2 depth 1; e3 depth 2.
	if len(hist) != 3 || hist[0] != 1 || hist[1] != 1 || hist[2] != 1 {
		t.Fatalf("hist = %v", hist)
	}
}

func TestNodeActivity(t *testing.T) {
	tr := tinyTrace()
	sends, recvs := tr.NodeActivity()
	if sends[0] != 2 || sends[1] != 1 {
		t.Fatalf("sends = %v", sends)
	}
	if recvs[2] != 2 || recvs[1] != 1 {
		t.Fatalf("recvs = %v", recvs)
	}
}
