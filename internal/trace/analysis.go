package trace

import (
	"fmt"

	"onocsim/internal/sim"
)

// CriticalPath computes the longest weighted path through the dependency
// DAG, where each event contributes its gap plus a latency given by lat (per
// event index). The result is the trace's intrinsic lower bound on makespan
// for any fabric achieving those latencies, and the path itself names the
// messages that gate the application — the first thing an architect asks of
// a trace.
type CriticalPath struct {
	// Length is the total weight in cycles.
	Length sim.Tick
	// Events are the IDs along the path, in dependency order.
	Events []EventID
}

// CriticalPathWith computes the critical path under a per-event latency
// estimate. lat must have one entry per event.
func (t *Trace) CriticalPathWith(lat []sim.Tick) (CriticalPath, error) {
	if len(lat) != len(t.Events) {
		return CriticalPath{}, fmt.Errorf("trace: %d latencies for %d events", len(lat), len(t.Events))
	}
	n := len(t.Events)
	if n == 0 {
		return CriticalPath{}, nil
	}
	// finish[i] = completion time of event i on the critical schedule;
	// pred[i] = the dependency that determined it (-1 if none).
	finish := make([]sim.Tick, n)
	pred := make([]int, n)
	bestEnd, bestIdx := sim.Tick(-1), 0
	for i := range t.Events {
		e := &t.Events[i]
		pred[i] = -1
		var ready sim.Tick
		for _, d := range e.Deps {
			di := int(d.On) - 1
			if finish[di] > ready {
				ready = finish[di]
				pred[i] = di
			}
		}
		finish[i] = ready + e.Gap + lat[i]
		if finish[i] > bestEnd {
			bestEnd, bestIdx = finish[i], i
		}
	}
	// Walk the predecessor chain back.
	var rev []EventID
	for i := bestIdx; i >= 0; i = pred[i] {
		rev = append(rev, t.Events[i].ID)
	}
	path := make([]EventID, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return CriticalPath{Length: bestEnd, Events: path}, nil
}

// CriticalPathReference computes the critical path under the latencies
// observed on the capture fabric.
func (t *Trace) CriticalPathReference() (CriticalPath, error) {
	lat := make([]sim.Tick, len(t.Events))
	for i := range t.Events {
		lat[i] = t.Events[i].RefArrive - t.Events[i].RefInject
	}
	return t.CriticalPathWith(lat)
}

// DepthHistogram returns, per dependency-chain depth, the number of events
// at that depth (depth 0 = no dependencies). The distribution characterizes
// how serial a workload's communication is.
func (t *Trace) DepthHistogram() []int {
	depth := make([]int, len(t.Events))
	maxDepth := 0
	for i := range t.Events {
		d := 0
		for _, dep := range t.Events[i].Deps {
			if pd := depth[int(dep.On)-1] + 1; pd > d {
				d = pd
			}
		}
		depth[i] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	hist := make([]int, maxDepth+1)
	for _, d := range depth {
		hist[d]++
	}
	return hist
}

// NodeActivity returns per-node send and receive counts, exposing hotspots.
func (t *Trace) NodeActivity() (sends, recvs []int) {
	sends = make([]int, t.Nodes)
	recvs = make([]int, t.Nodes)
	for i := range t.Events {
		sends[t.Events[i].Src]++
		recvs[t.Events[i].Dst]++
	}
	return sends, recvs
}
