package trace

import (
	"strings"
	"testing"

	"onocsim/internal/noc"
)

// tinyTrace builds a small well-formed trace:
//
//	e1: 0→1 (no deps)
//	e2: 1→2 (causal on e1)
//	e3: 0→2 (program on e1, sync on e2)
func tinyTrace() *Trace {
	return &Trace{
		Nodes:       4,
		Workload:    "tiny",
		RefMakespan: 100,
		Events: []Event{
			{ID: 1, Src: 0, Dst: 1, Bytes: 8, Class: noc.ClassRequest, Kind: KindRequest,
				Gap: 5, RefInject: 5, RefArrive: 25},
			{ID: 2, Src: 1, Dst: 2, Bytes: 72, Class: noc.ClassResponse, Kind: KindResponse,
				Gap: 6, Deps: []Dep{{On: 1, Class: DepCausal}}, RefInject: 31, RefArrive: 51},
			{ID: 3, Src: 0, Dst: 2, Bytes: 8, Class: noc.ClassRequest, Kind: KindSync,
				Gap: 2, Deps: []Dep{{On: 1, Class: DepProgram}, {On: 2, Class: DepSync}},
				RefInject: 53, RefArrive: 73},
		},
	}
}

func TestTinyTraceValid(t *testing.T) {
	if err := tinyTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
		want   string
	}{
		{"no nodes", func(tr *Trace) { tr.Nodes = 0 }, "nodes"},
		{"bad id", func(tr *Trace) { tr.Events[1].ID = 7 }, "id"},
		{"src range", func(tr *Trace) { tr.Events[0].Src = 9 }, "endpoints"},
		{"dst range", func(tr *Trace) { tr.Events[0].Dst = -1 }, "endpoints"},
		{"zero bytes", func(tr *Trace) { tr.Events[0].Bytes = 0 }, "size"},
		{"bad class", func(tr *Trace) { tr.Events[0].Class = 99 }, "class"},
		{"bad kind", func(tr *Trace) { tr.Events[0].Kind = 99 }, "kind"},
		{"negative gap", func(tr *Trace) { tr.Events[0].Gap = -1 }, "gap"},
		{"self dep", func(tr *Trace) { tr.Events[1].Deps[0].On = 2 }, "non-earlier"},
		{"future dep", func(tr *Trace) { tr.Events[1].Deps[0].On = 3 }, "non-earlier"},
		{"null dep", func(tr *Trace) { tr.Events[1].Deps[0].On = None }, "non-earlier"},
		{"bad dep class", func(tr *Trace) { tr.Events[1].Deps[0].Class = 9 }, "dep class"},
		{"arrive before inject", func(tr *Trace) { tr.Events[0].RefArrive = 1 }, "before injection"},
		{"negative makespan", func(tr *Trace) { tr.RefMakespan = -1 }, "makespan"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := tinyTrace()
			c.mutate(tr)
			err := tr.Validate()
			if err == nil {
				t.Fatal("mutation accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestEventAccessor(t *testing.T) {
	tr := tinyTrace()
	if tr.Event(2).Src != 1 {
		t.Fatal("Event(2) wrong")
	}
	for _, id := range []EventID{None, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Event(%d) did not panic", id)
				}
			}()
			tr.Event(id)
		}()
	}
}

func TestComputeStats(t *testing.T) {
	st := tinyTrace().ComputeStats()
	if st.Events != 3 {
		t.Fatalf("events = %d", st.Events)
	}
	if st.Bytes != 88 {
		t.Fatalf("bytes = %d", st.Bytes)
	}
	if st.DepEdges[DepProgram] != 1 || st.DepEdges[DepCausal] != 1 || st.DepEdges[DepSync] != 1 {
		t.Fatalf("dep edges = %v", st.DepEdges)
	}
	if st.ByKind[KindRequest] != 1 || st.ByKind[KindResponse] != 1 || st.ByKind[KindSync] != 1 {
		t.Fatalf("kinds = %v", st.ByKind)
	}
	if !strings.Contains(st.String(), "events=3") {
		t.Fatal("stats String malformed")
	}
}

func TestKindAndDepClassNames(t *testing.T) {
	if KindData.String() != "data" || Kind(99).String() != "invalid" {
		t.Fatal("kind names")
	}
	if DepSync.String() != "sync" || DepClass(9).String() != "invalid" {
		t.Fatal("dep class names")
	}
}
