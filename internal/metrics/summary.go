// Package metrics provides the statistics toolkit used by every simulator in
// onocsim: streaming summaries, histograms, confidence intervals, and the
// table/CSV writers that render the reconstructed paper experiments.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations with O(1) memory
// using Welford's online algorithm. The zero value is an empty summary ready
// to use.
type Summary struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
	sum  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	s.sum += x
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN records the same observation n times (useful for weighted streams,
// where n can be millions of byte-weighted observations). It is the
// closed-form batch Welford update — algebraically the Merge of a
// pseudo-summary holding n copies of x, whose own m2 is exactly zero — so it
// runs in O(1) regardless of n, and min/max/sum stay exact.
func (s *Summary) AddN(x float64, n uint64) {
	if n == 0 {
		return
	}
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	n1, n2 := float64(s.n), float64(n)
	tot := n1 + n2
	delta := x - s.mean
	s.mean += delta * n2 / tot
	s.m2 += delta * delta * n1 * n2 / tot
	s.sum += x * n2
	s.n += n
}

// Merge folds other into s, as if every observation of other had been Added
// to s. It uses the parallel-variance combination rule.
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	tot := n1 + n2
	s.mean += delta * n2 / tot
	s.m2 += other.m2 + delta*delta*n1*n2/tot
	s.sum += other.sum
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n += other.n
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 { return s.n }

// Sum returns the sum of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Min returns the smallest observation, or 0 for an empty summary.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty summary.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CI95 returns the half-width of the 95% confidence interval of the mean
// under the normal approximation.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// String renders a compact human-readable summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f",
		s.n, s.Mean(), s.min, s.max, s.StdDev())
}

// summaryJSON mirrors the unexported accumulator state so summaries survive
// serialization (the simulation result cache persists stats blocks across
// process invocations). Every field is finite in every reachable state — the
// zero value keeps min/max at 0 rather than ±Inf — so encoding/json can
// always represent it.
type summaryJSON struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Sum  float64 `json:"sum"`
}

// MarshalJSON serializes the full accumulator state.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max, Sum: s.sum})
}

// UnmarshalJSON restores a summary written by MarshalJSON.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var j summaryJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = Summary{n: j.N, mean: j.Mean, m2: j.M2, min: j.Min, max: j.Max, sum: j.Sum}
	return nil
}

// RelErr returns the relative error |measured-reference|/|reference|,
// reported as a fraction (multiply by 100 for percent). A zero reference
// with nonzero measurement yields +Inf; zero/zero yields 0.
func RelErr(measured, reference float64) float64 {
	if reference == 0 {
		if measured == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(measured-reference) / math.Abs(reference)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of the sample using
// linear interpolation between order statistics. The input is not modified.
func Percentile(sample []float64, p float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeoMean returns the geometric mean of strictly positive values; any
// non-positive value makes the result NaN, surfacing the misuse.
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	acc := 0.0
	for _, v := range values {
		if v <= 0 {
			return math.NaN()
		}
		acc += math.Log(v)
	}
	return math.Exp(acc / float64(len(values)))
}
