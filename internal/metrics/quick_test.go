package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

// close compares within a relative tolerance: batch Welford reorders float
// operations, so results agree to rounding, not bit-for-bit.
func closeTo(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*math.Max(scale, 1)
}

// boundedVals maps arbitrary float inputs into a sane observation range:
// property inputs include NaN/Inf/huge magnitudes the Summary contract does
// not cover (it summarizes latencies and counts).
func boundedVals(raw []float64) []float64 {
	out := make([]float64, 0, len(raw))
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, math.Mod(v, 1e6))
	}
	return out
}

func summariesAgree(t *testing.T, name string, a, b Summary) bool {
	t.Helper()
	if a.Count() != b.Count() || a.Min() != b.Min() || a.Max() != b.Max() {
		t.Logf("%s: count/min/max mismatch: %v vs %v", name, a.String(), b.String())
		return false
	}
	if !closeTo(a.Sum(), b.Sum()) || !closeTo(a.Mean(), b.Mean()) || !closeTo(a.Variance(), b.Variance()) {
		t.Logf("%s: moments mismatch: %v vs %v", name, a.String(), b.String())
		return false
	}
	return true
}

// TestQuickMergeEquivalentToSequentialAdd is the satellite property test:
// Merge(a, b) must equal adding every observation one by one — including the
// empty-summary edges where min/max must come wholly from the other side.
func TestQuickMergeEquivalentToSequentialAdd(t *testing.T) {
	prop := func(xs, ys []float64) bool {
		xv, yv := boundedVals(xs), boundedVals(ys)
		var a, b Summary
		var seq Summary
		for _, v := range xv {
			a.Add(v)
			seq.Add(v)
		}
		for _, v := range yv {
			b.Add(v)
			seq.Add(v)
		}
		a.Merge(b)
		return summariesAgree(t, "merge", a, seq)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Deterministic empty-side edges quick.Check may not generate.
	var empty, full, seq Summary
	full.Add(3)
	seq.Add(3)
	empty.Merge(full)
	if !summariesAgree(t, "empty.Merge(full)", empty, seq) {
		t.Error("empty receiver must take the other summary's min/max")
	}
	full.Merge(Summary{})
	if !summariesAgree(t, "full.Merge(empty)", full, seq) {
		t.Error("merging an empty summary must be a no-op")
	}
}

// TestQuickAddNEquivalentToRepeatedAdd checks the closed-form batch update
// against the loop it replaced.
func TestQuickAddNEquivalentToRepeatedAdd(t *testing.T) {
	prop := func(pre []float64, x float64, n uint16) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		count := uint64(n % 512)
		var batch, loop Summary
		for _, v := range boundedVals(pre) {
			batch.Add(v)
			loop.Add(v)
		}
		batch.AddN(x, count)
		for i := uint64(0); i < count; i++ {
			loop.Add(x)
		}
		return summariesAgree(t, "addn", batch, loop)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Edge: AddN into an empty summary must establish min/max from x.
	var s Summary
	s.AddN(-2.5, 4)
	if s.Min() != -2.5 || s.Max() != -2.5 || s.Count() != 4 || !closeTo(s.Sum(), -10) {
		t.Errorf("AddN on empty summary: %s", s.String())
	}
	s.AddN(7, 0)
	if s.Count() != 4 || s.Max() != -2.5 {
		t.Error("AddN with n=0 must be a no-op")
	}
}
