package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	for _, v := range []float64{5, 9.99, 10, 15, 25, 30, 100} {
		h.Add(v)
	}
	// [-inf,10): 5, 9.99 → 2 ; [10,20): 10, 15 → 2 ; [20,30): 25 → 1 ;
	// [30,inf): 30, 100 → 2.
	want := []uint64{2, 2, 1, 2}
	for i, w := range want {
		if h.Bucket(i) != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Bucket(i), w)
		}
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.NumBuckets() != 4 {
		t.Fatalf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramExactMean(t *testing.T) {
	h := NewLatencyHistogram(10)
	var sum float64
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
		sum += float64(i)
	}
	if got := h.Mean(); got != sum/100 {
		t.Fatalf("mean = %g, want exact %g", got, sum/100)
	}
	if h.Max() != 100 {
		t.Fatalf("max = %g", h.Max())
	}
}

func TestHistogramPercentileConservative(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8, 16, 32})
	for i := 0; i < 100; i++ {
		h.Add(3) // all in [2,4)
	}
	if p := h.ApproxPercentile(50); p != 4 {
		t.Fatalf("p50 = %g, want upper bound 4", p)
	}
	if p := h.ApproxPercentile(100); p != 4 {
		t.Fatalf("p100 = %g, want 4", p)
	}
	h.Add(1000) // lands in overflow
	if p := h.ApproxPercentile(100); p != 1000 {
		t.Fatalf("overflow percentile = %g, want exact max 1000", p)
	}
	var empty = NewHistogram([]float64{1})
	if empty.ApproxPercentile(99) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	h := NewLatencyHistogram(12)
	if err := quick.Check(func(vals []uint16) bool {
		for _, v := range vals {
			h.Add(float64(v))
		}
		prev := 0.0
		for p := 0.0; p <= 100; p += 10 {
			v := h.ApproxPercentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramInvalidBoundsPanic(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {5, 5}, {5, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{10, 20})
	b := NewHistogram([]float64{10, 20})
	a.Add(5)
	b.Add(15)
	b.Add(25)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Bucket(0) != 1 || a.Bucket(1) != 1 || a.Bucket(2) != 1 {
		t.Fatal("merged buckets wrong")
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	a := NewHistogram([]float64{10})
	b := NewHistogram([]float64{20})
	defer func() {
		if recover() == nil {
			t.Error("mismatched merge did not panic")
		}
	}()
	a.Merge(b)
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram([]float64{10})
	for i := 0; i < 5; i++ {
		h.Add(1)
	}
	h.Add(100)
	out := h.Render(20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("render produced %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "#") {
		t.Fatalf("populated bucket has no bar:\n%s", out)
	}
}
