package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %g, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
	// Sample variance of this classic dataset is 32/7.
	if !almostEq(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %g, want %g", s.Variance(), 32.0/7.0)
	}
	if s.Sum() != 40 {
		t.Fatalf("sum = %g", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdDev() != 0 || s.CI95() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	if err := quick.Check(func(raw []int16) bool {
		var all, left, right Summary
		for i, r := range raw {
			v := float64(r) / 16
			all.Add(v)
			if i%2 == 0 {
				left.Add(v)
			} else {
				right.Add(v)
			}
		}
		left.Merge(right)
		if all.Count() != left.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		return almostEq(all.Mean(), left.Mean(), 1e-9) &&
			almostEq(all.Variance(), left.Variance(), 1e-9) &&
			all.Min() == left.Min() && all.Max() == left.Max()
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Add(3)
	a.Merge(b) // merge empty into non-empty
	if a.Count() != 1 || a.Mean() != 3 {
		t.Fatal("merging empty changed summary")
	}
	b.Merge(a) // merge non-empty into empty
	if b.Count() != 1 || b.Mean() != 3 {
		t.Fatal("merging into empty lost data")
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	a.AddN(7, 5)
	for i := 0; i < 5; i++ {
		b.Add(7)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() || a.Variance() != b.Variance() {
		t.Fatal("AddN differs from repeated Add")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, large Summary
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 5))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 5))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: %g vs %g", large.CI95(), small.CI95())
	}
}

func TestRelErr(t *testing.T) {
	cases := []struct {
		m, r, want float64
	}{
		{110, 100, 0.1},
		{90, 100, 0.1},
		{100, 100, 0},
		{0, 0, 0},
		{-50, 100, 1.5},
	}
	for _, c := range cases {
		if got := RelErr(c.m, c.r); !almostEq(got, c.want, 1e-12) {
			t.Errorf("RelErr(%g,%g) = %g, want %g", c.m, c.r, got, c.want)
		}
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) should be +Inf")
	}
}

func TestPercentile(t *testing.T) {
	data := []float64{15, 20, 35, 40, 50}
	if got := Percentile(data, 0); got != 15 {
		t.Fatalf("p0 = %g", got)
	}
	if got := Percentile(data, 100); got != 50 {
		t.Fatalf("p100 = %g", got)
	}
	if got := Percentile(data, 50); got != 35 {
		t.Fatalf("p50 = %g", got)
	}
	// Interpolated: p25 over 5 values sits at rank 1 exactly.
	if got := Percentile(data, 25); got != 20 {
		t.Fatalf("p25 = %g", got)
	}
	// Out-of-range p clamps.
	if Percentile(data, -5) != 15 || Percentile(data, 200) != 50 {
		t.Fatal("percentile clamping failed")
	}
	// Input must not be reordered.
	if data[0] != 15 || data[4] != 50 {
		t.Fatal("Percentile mutated its input")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	if Percentile([]float64{42}, 99) != 42 {
		t.Fatal("singleton percentile")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almostEq(got, 4, 1e-12) {
		t.Fatalf("GeoMean = %g, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean should be 0")
	}
	if !math.IsNaN(GeoMean([]float64{1, -2})) {
		t.Fatal("GeoMean with negative input should be NaN")
	}
}
