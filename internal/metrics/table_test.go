package metrics

import (
	"strings"
	"testing"
)

func TestTableASCIIAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-name", "2")
	tb.Note("a footnote %d", 7)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + rule + header + separator + 2 rows + note = 7 lines
	if len(lines) != 7 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(lines[2], "name") || !strings.Contains(lines[2], "|") {
		t.Fatalf("bad header:\n%s", out)
	}
	if !strings.Contains(lines[6], "note: a footnote 7") {
		t.Fatalf("missing note:\n%s", out)
	}
	// Pipe positions align between header and rows.
	if strings.Index(lines[2], "|") != strings.Index(lines[4], "|") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only-one")
	if tb.NumRows() != 1 {
		t.Fatal("row not added")
	}
	if tb.Cell(0, 2) != "" {
		t.Fatal("short row not padded")
	}
}

func TestTableLongRowPanics(t *testing.T) {
	tb := NewTable("", "a")
	defer func() {
		if recover() == nil {
			t.Error("oversized row did not panic")
		}
	}()
	tb.AddRow("1", "2")
}

func TestTableCSVEscaping(t *testing.T) {
	tb := NewTable("", "k", "v")
	tb.AddRow("plain", `has "quotes", and commas`)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "k,v\nplain,\"has \"\"quotes\"\", and commas\"\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "s", "f", "i")
	tb.AddRowf("x", 1.23456, 42)
	if tb.Cell(0, 0) != "x" || tb.Cell(0, 1) != "1.235" || tb.Cell(0, 2) != "42" {
		t.Fatalf("AddRowf cells: %q %q %q", tb.Cell(0, 0), tb.Cell(0, 1), tb.Cell(0, 2))
	}
}
