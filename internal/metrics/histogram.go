package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-boundary histogram over float64 observations with an
// exact streaming Summary alongside the bucketed counts. Buckets are
// half-open intervals [bound[i-1], bound[i]); observations below the first
// bound land in bucket 0 and observations at or above the last bound land in
// the overflow bucket.
type Histogram struct {
	bounds []float64
	counts []uint64
	sum    Summary
}

// NewHistogram builds a histogram with the given ascending bucket
// boundaries. It panics on empty or non-ascending boundaries: a histogram
// that silently merges buckets would corrupt every latency distribution
// derived from it.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d", i))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(bounds)+1)}
}

// NewLatencyHistogram returns a histogram with exponentially spaced bounds
// suited to network latencies in cycles: 1, 2, 4, ..., 2^maxExp.
func NewLatencyHistogram(maxExp int) *Histogram {
	if maxExp < 1 {
		maxExp = 1
	}
	bounds := make([]float64, maxExp+1)
	for i := 0; i <= maxExp; i++ {
		bounds[i] = math.Pow(2, float64(i))
	}
	return NewHistogram(bounds)
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.sum.Add(x)
	// Binary search for the first bound > x.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if x < h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo]++
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.sum.Count() }

// Mean returns the exact (not bucketed) mean of the observations.
func (h *Histogram) Mean() float64 { return h.sum.Mean() }

// Max returns the exact maximum observation.
func (h *Histogram) Max() float64 { return h.sum.Max() }

// Summary returns a copy of the exact streaming summary.
func (h *Histogram) Summary() Summary { return h.sum }

// Bucket returns the count of bucket i (0 ≤ i ≤ len(bounds)).
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// NumBuckets returns the number of buckets including overflow.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// ApproxPercentile estimates the p-th percentile from bucket boundaries,
// attributing each bucket's mass to its upper bound (conservative for
// latency SLO-style reporting).
func (h *Histogram) ApproxPercentile(p float64) float64 {
	total := h.sum.Count()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	target := uint64(math.Ceil(p / 100 * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.sum.Max()
		}
	}
	return h.sum.Max()
}

// Render draws a proportional ASCII bar chart of the distribution, width
// characters wide, for experiment reports.
func (h *Histogram) Render(width int) string {
	if width < 8 {
		width = 8
	}
	var maxCount uint64
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	prev := math.Inf(-1)
	for i, c := range h.counts {
		var label string
		if i < len(h.bounds) {
			label = fmt.Sprintf("[%8.4g,%8.4g)", prev, h.bounds[i])
			prev = h.bounds[i]
		} else {
			label = fmt.Sprintf("[%8.4g,     inf)", prev)
		}
		bar := 0
		if maxCount > 0 {
			bar = int(float64(c) / float64(maxCount) * float64(width))
		}
		fmt.Fprintf(&b, "%s %10d %s\n", label, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// histogramJSON mirrors the unexported state for serialization; see the
// Summary codec for why.
type histogramJSON struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    Summary   `json:"sum"`
}

// MarshalJSON serializes bounds, bucket counts, and the exact summary.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Bounds: h.bounds, Counts: h.counts, Sum: h.sum})
}

// UnmarshalJSON restores a histogram written by MarshalJSON. It enforces the
// same structural invariants as NewHistogram, returning an error instead of
// panicking on corrupt input.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var j histogramJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Bounds) == 0 {
		return fmt.Errorf("metrics: histogram with no bounds")
	}
	for i := 1; i < len(j.Bounds); i++ {
		if j.Bounds[i] <= j.Bounds[i-1] {
			return fmt.Errorf("metrics: histogram bounds not ascending at %d", i)
		}
	}
	if len(j.Counts) != len(j.Bounds)+1 {
		return fmt.Errorf("metrics: histogram has %d counts for %d bounds", len(j.Counts), len(j.Bounds))
	}
	*h = Histogram{bounds: j.Bounds, counts: j.Counts, sum: j.Sum}
	return nil
}

// Clone returns an independent deep copy of the histogram: mutating either
// copy leaves the other untouched. The checkpoint machinery relies on this to
// snapshot a fabric's statistics block mid-run.
func (h *Histogram) Clone() *Histogram {
	b := make([]float64, len(h.bounds))
	copy(b, h.bounds)
	c := make([]uint64, len(h.counts))
	copy(c, h.counts)
	return &Histogram{bounds: b, counts: c, sum: h.sum}
}

// Merge folds other into h. Both histograms must have identical bounds;
// mismatched bounds panic because the merged distribution would be wrong.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.bounds) != len(other.bounds) {
		panic("metrics: merging histograms with different bounds")
	}
	for i, bd := range h.bounds {
		if bd != other.bounds[i] {
			panic("metrics: merging histograms with different bounds")
		}
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.sum.Merge(other.sum)
}
