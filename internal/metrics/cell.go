package metrics

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"
)

// Kind classifies a typed table cell. The kind fixes both which value field
// of the Cell is meaningful and how the cell renders as ASCII; units are
// metadata carried alongside for machine consumers (JSON, CSV headers,
// dashboards) and are never printed into the ASCII form — with two
// deliberate exceptions, KindPercent ("%") and KindRatio ("x"), whose
// suffixes are part of the established table vocabulary.
type Kind uint8

const (
	// KindString is an opaque pre-formatted cell (labels, composite text).
	KindString Kind = iota
	// KindInt is an integer quantity (cycles, counts, nodes).
	KindInt
	// KindFloat is a fixed-precision decimal quantity.
	KindFloat
	// KindPercent is a fraction rendered as a percentage ("4.2%"); the
	// stored value is the fraction (0.042), not the percentage.
	KindPercent
	// KindRatio is a dimensionless multiplier rendered with an "x" suffix
	// ("1.62x").
	KindRatio
	// KindDuration is a host-time duration stored in nanoseconds. With a
	// non-negative precision it renders as milliseconds ("12.3"); with
	// Prec < 0 it renders as time.Duration.String ("12.3ms").
	KindDuration
	// KindDB is a decibel quantity (optical loss budgets).
	KindDB
	// KindBool renders "true"/"false"; the stored Int is 0 or 1.
	KindBool
)

// kindNames maps kinds to their stable JSON names. The names are part of
// the versioned table format: renaming one is a format change.
var kindNames = [...]string{
	KindString:   "string",
	KindInt:      "int",
	KindFloat:    "float",
	KindPercent:  "percent",
	KindRatio:    "ratio",
	KindDuration: "duration",
	KindDB:       "dB",
	KindBool:     "bool",
}

// String returns the kind's stable name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON encodes the kind by its stable name.
func (k Kind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(kindNames) {
		return nil, fmt.Errorf("metrics: unknown cell kind %d", int(k))
	}
	return json.Marshal(kindNames[k])
}

// UnmarshalJSON decodes a kind from its stable name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == name {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("metrics: unknown cell kind %q", name)
}

// Cell is one typed table cell: a value, its unit, and the precision it
// renders with. Experiments build cells with the constructors below so each
// table keeps exact control of its printed form while machine consumers
// (the JSON renderer, programmatic readers) get the underlying value.
type Cell struct {
	// Kind selects the value field and the ASCII form.
	Kind Kind `json:"kind"`
	// Str holds KindString values.
	Str string `json:"str,omitempty"`
	// Int holds KindInt values, KindBool (0/1), and KindDuration
	// (nanoseconds).
	Int int64 `json:"int,omitempty"`
	// Float holds KindFloat, KindPercent (as a fraction), KindRatio and
	// KindDB values.
	Float float64 `json:"float,omitempty"`
	// Unit is the quantity's unit ("cycles", "mW", "ms", "dB", …); metadata
	// only, never rendered into the ASCII form.
	Unit string `json:"unit,omitempty"`
	// Prec is the number of fractional digits in the ASCII form.
	Prec int `json:"prec,omitempty"`
}

// String makes an opaque text cell.
func String(s string) Cell { return Cell{Kind: KindString, Str: s} }

// Stringf makes a text cell from a format string.
func Stringf(format string, args ...interface{}) Cell {
	return String(fmt.Sprintf(format, args...))
}

// Int makes an integer cell with a unit.
func Int(v int64, unit string) Cell { return Cell{Kind: KindInt, Int: v, Unit: unit} }

// Float makes a fixed-precision decimal cell with a unit.
func Float(v float64, prec int, unit string) Cell {
	return Cell{Kind: KindFloat, Float: v, Prec: prec, Unit: unit}
}

// Percent makes a percentage cell from a fraction; it renders with one
// fractional digit ("4.2%"), the house style of every accuracy table.
func Percent(frac float64) Cell {
	return Cell{Kind: KindPercent, Float: frac, Prec: 1, Unit: "%"}
}

// Ratio makes a multiplier cell rendered with an "x" suffix ("1.62x").
func Ratio(v float64, prec int) Cell {
	return Cell{Kind: KindRatio, Float: v, Prec: prec, Unit: "x"}
}

// Duration makes a host-time cell rendered as milliseconds with one
// fractional digit ("12.3"), matching the simulation-cost tables.
func Duration(d time.Duration) Cell {
	return Cell{Kind: KindDuration, Int: int64(d), Prec: 1, Unit: "ms"}
}

// DurationText makes a host-time cell rendered as time.Duration.String
// ("12.3ms"); the stored value is still nanoseconds.
func DurationText(d time.Duration) Cell {
	return Cell{Kind: KindDuration, Int: int64(d), Prec: -1, Unit: "ns"}
}

// DB makes a decibel cell.
func DB(v float64, prec int) Cell {
	return Cell{Kind: KindDB, Float: v, Prec: prec, Unit: "dB"}
}

// Bool makes a boolean cell.
func Bool(v bool) Cell {
	c := Cell{Kind: KindBool}
	if v {
		c.Int = 1
	}
	return c
}

// Render returns the cell's ASCII form. The rules reproduce the printf
// vocabulary the experiments used before cells were typed, so tables render
// byte-identically: "%d" for ints, "%.<prec>f" for decimals, "%.1f%%" of
// the fraction for percentages, "%.<prec>fx" for ratios, milliseconds with
// one digit for durations, "true"/"false" for booleans.
func (c Cell) Render() string {
	switch c.Kind {
	case KindString:
		return c.Str
	case KindInt:
		return strconv.FormatInt(c.Int, 10)
	case KindFloat, KindDB:
		return strconv.FormatFloat(c.Float, 'f', c.Prec, 64)
	case KindPercent:
		return strconv.FormatFloat(c.Float*100, 'f', c.Prec, 64) + "%"
	case KindRatio:
		return strconv.FormatFloat(c.Float, 'f', c.Prec, 64) + "x"
	case KindDuration:
		d := time.Duration(c.Int)
		if c.Prec < 0 {
			return d.String()
		}
		return strconv.FormatFloat(float64(d.Microseconds())/1000, 'f', c.Prec, 64)
	case KindBool:
		if c.Int != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("?kind(%d)", int(c.Kind))
	}
}

// Value returns the cell's numeric value and true, or 0 and false for cells
// without one (strings). Percentages return the fraction, durations
// nanoseconds, booleans 0 or 1.
func (c Cell) Value() (float64, bool) {
	switch c.Kind {
	case KindString:
		return 0, false
	case KindInt, KindBool, KindDuration:
		return float64(c.Int), true
	default:
		return c.Float, true
	}
}
