package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table holds experiment results as rows of typed Cells and renders them
// three ways: aligned ASCII (for terminals and the EXPERIMENTS.md log), CSV
// (for plotting), and versioned JSON (for machine consumers — dashboards,
// regression gates, co-simulation tooling). Each experiment builds its rows
// with the Cell constructors so it keeps exact control of the printed
// precision while the underlying numeric values and units stay addressable.
type Table struct {
	Title   string
	Columns []string
	rows    [][]Cell
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddCells appends a row of typed cells. Short rows are padded with empty
// string cells; long rows panic since they indicate a bug in the experiment
// harness.
func (t *Table) AddCells(cells ...Cell) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("metrics: table %q: row has %d cells, table has %d columns",
			t.Title, len(cells), len(t.Columns)))
	}
	row := make([]Cell, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRow appends a row of pre-formatted string cells. Short rows are padded
// with empty cells; long rows panic since they indicate a bug in the
// experiment harness.
func (t *Table) AddRow(cells ...string) {
	row := make([]Cell, 0, len(cells))
	for _, c := range cells {
		row = append(row, String(c))
	}
	t.AddCells(row...)
}

// AddRowf appends a row of heterogeneous values, each converted to a typed
// cell: Cell values pass through, strings become string cells, float64
// renders with three fractional digits, int/int64 become integer cells,
// bool a boolean cell, time.Duration a millisecond cell, fmt.Stringer its
// String() form, and anything else falls back to a "%v" string cell.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]Cell, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case Cell:
			row = append(row, v)
		case string:
			row = append(row, String(v))
		case float64:
			row = append(row, Float(v, 3, ""))
		case int:
			row = append(row, Int(int64(v), ""))
		case int64:
			row = append(row, Int(v, ""))
		case bool:
			row = append(row, Bool(v))
		case fmt.Stringer:
			row = append(row, String(v.String()))
		default:
			row = append(row, Stringf("%v", v))
		}
	}
	t.AddCells(row...)
}

// Note attaches a footnote rendered under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns the rendered ASCII form of the cell at (row, col); it panics
// on out-of-range indices. Use At for the typed cell.
func (t *Table) Cell(row, col int) string { return t.rows[row][col].Render() }

// At returns the typed cell at (row, col); it panics on out-of-range
// indices.
func (t *Table) At(row, col int) Cell { return t.rows[row][col] }

// SetCell replaces the cell at (row, col); it panics on out-of-range
// indices. Renderers that must suppress nondeterministic cells (golden
// tests masking wall clocks) rewrite them through this.
func (t *Table) SetCell(row, col int, c Cell) { t.rows[row][col] = c }

// Notes returns the attached footnotes.
func (t *Table) Notes() []string { return append([]string(nil), t.notes...) }

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	rendered := make([][]string, len(t.rows))
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for r, row := range t.rows {
		rendered[r] = make([]string, len(row))
		for i, cell := range row {
			s := cell.Render()
			rendered[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	total := 0
	for _, wd := range widths {
		total += wd + 3
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", min(total, 100))); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
			if i != len(cells)-1 {
				b.WriteString(" | ")
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range rendered {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as RFC-4180-ish CSV (cells containing commas or
// quotes are quoted). Cells render exactly as in the ASCII form.
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = c.Render()
		}
		if err := writeRow(cells); err != nil {
			return err
		}
	}
	return nil
}

// TableFormatVersion guards the JSON table format against schema drift:
// decoders reject documents written for another version instead of silently
// zero-filling. Bump it whenever Cell or the table envelope changes shape.
const TableFormatVersion = 1

// tableJSON is the versioned wire form of a Table. It carries the typed
// cells verbatim, so a decoded table renders byte-identically and its
// numeric values and units survive the round trip (the simcache disk layer
// persists results through exactly this codec path).
type tableJSON struct {
	Version int      `json:"version"`
	Title   string   `json:"title"`
	Columns []string `json:"columns"`
	Rows    [][]Cell `json:"rows"`
	Notes   []string `json:"notes,omitempty"`
}

// MarshalJSON encodes the table in the versioned format.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{
		Version: TableFormatVersion,
		Title:   t.Title,
		Columns: t.Columns,
		Rows:    t.rows,
		Notes:   t.notes,
	})
}

// UnmarshalJSON decodes a table written by MarshalJSON, rejecting documents
// of any other format version and rows that do not match the column count.
func (t *Table) UnmarshalJSON(data []byte) error {
	var doc tableJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Version != TableFormatVersion {
		return fmt.Errorf("metrics: table format version %d, want %d", doc.Version, TableFormatVersion)
	}
	for i, row := range doc.Rows {
		if len(row) != len(doc.Columns) {
			return fmt.Errorf("metrics: table %q: row %d has %d cells, table has %d columns",
				doc.Title, i, len(row), len(doc.Columns))
		}
	}
	t.Title = doc.Title
	t.Columns = doc.Columns
	t.rows = doc.Rows
	t.notes = doc.Notes
	return nil
}

// WriteJSON renders the table as indented versioned JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// String renders the ASCII form; it satisfies fmt.Stringer for logging.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.WriteASCII(&b)
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
