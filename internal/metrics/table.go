package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table renders experiment results as aligned ASCII (for terminals and the
// EXPERIMENTS.md log) or as CSV (for plotting). Rows are strings; numeric
// cells should be pre-formatted by the caller so that each experiment
// controls its own precision.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Short rows are padded with empty cells; long rows
// panic since they indicate a bug in the experiment harness.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("metrics: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v for strings and %s for fmt.Stringer, or the caller may pass
// pre-formatted strings.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Note attaches a footnote rendered under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns the cell at (row, col); it panics on out-of-range indices.
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	total := 0
	for _, wd := range widths {
		total += wd + 3
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", min(total, 100))); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
			if i != len(cells)-1 {
				b.WriteString(" | ")
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as RFC-4180-ish CSV (cells containing commas or
// quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the ASCII form; it satisfies fmt.Stringer for logging.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.WriteASCII(&b)
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
