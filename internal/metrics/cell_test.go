package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestCellRender pins the ASCII vocabulary of every cell kind: it must
// reproduce exactly the printf forms the experiments used before cells were
// typed, since the golden ASCII tables depend on it.
func TestCellRender(t *testing.T) {
	cases := []struct {
		cell Cell
		want string
	}{
		{String("fft"), "fft"},
		{Stringf("t=%d", 4), "t=4"},
		{Int(4500, "cycles"), "4500"},
		{Int(-3, ""), "-3"},
		{Float(1.23456, 3, ""), "1.235"},
		{Float(12.0, 1, "mW"), "12.0"},
		{Float(0.5, 0, "mW"), "0"}, // strconv rounds half to even, like %f
		{Percent(0.0183), "1.8%"},
		{Percent(0), "0.0%"},
		{Percent(1.25), "125.0%"},
		{Ratio(1.6249, 2), "1.62x"},
		{Ratio(2, 1), "2.0x"},
		{Duration(12345 * time.Microsecond), "12.3"},
		{Duration(0), "0.0"},
		{DurationText(1500 * time.Millisecond), "1.5s"},
		{DB(3.14159, 2), "3.14"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.cell.Render(); got != c.want {
			t.Errorf("%+v renders %q, want %q", c.cell, got, c.want)
		}
	}
}

func TestCellValue(t *testing.T) {
	if _, ok := String("x").Value(); ok {
		t.Error("string cell reported a numeric value")
	}
	if v, ok := Percent(0.042).Value(); !ok || v != 0.042 {
		t.Errorf("percent value = %v, %v; want the fraction", v, ok)
	}
	if v, ok := Duration(time.Millisecond).Value(); !ok || v != 1e6 {
		t.Errorf("duration value = %v, %v; want nanoseconds", v, ok)
	}
	if v, ok := Bool(true).Value(); !ok || v != 1 {
		t.Errorf("bool value = %v, %v; want 1", v, ok)
	}
}

// TestTableJSONRoundTrip checks the versioned table codec: a decoded table
// renders byte-identically and keeps its typed values, units and notes.
func TestTableJSONRoundTrip(t *testing.T) {
	tb := NewTable("demo", "kernel", "makespan", "err", "speedup", "wall", "ok")
	tb.AddCells(String("fft"), Int(4500, "cycles"), Percent(0.018),
		Ratio(1.62, 2), Duration(12345*time.Microsecond), Bool(true))
	tb.Note("a note with %d parts", 2)
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != tb.String() {
		t.Fatalf("round-trip render drifted:\n--- want ---\n%s--- got ---\n%s", tb.String(), got.String())
	}
	if c := got.At(0, 1); c.Kind != KindInt || c.Int != 4500 || c.Unit != "cycles" {
		t.Fatalf("decoded cell lost type/value/unit: %+v", c)
	}
	if v, ok := got.At(0, 2).Value(); !ok || v != 0.018 {
		t.Fatalf("decoded percent lost its fraction: %+v", got.At(0, 2))
	}
	if n := got.Notes(); len(n) != 1 || n[0] != "a note with 2 parts" {
		t.Fatalf("notes did not survive: %v", n)
	}
}

func TestTableJSONRejectsBadDocuments(t *testing.T) {
	var tb Table
	if err := json.Unmarshal([]byte(`{"version":99,"title":"x","columns":["a"],"rows":[]}`), &tb); err == nil {
		t.Error("wrong format version accepted")
	}
	if err := json.Unmarshal([]byte(`{"version":1,"title":"x","columns":["a","b"],"rows":[[{"kind":"string"}]]}`), &tb); err == nil {
		t.Error("row/column count mismatch accepted")
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"flux"`), &k); err == nil {
		t.Error("unknown kind name accepted")
	}
}

func TestTableLongRowPanicNamesTable(t *testing.T) {
	tb := NewTable("R99 — demo", "a")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("oversized row did not panic")
		}
		if !strings.Contains(r.(string), "R99 — demo") {
			t.Fatalf("panic message does not name the table: %v", r)
		}
	}()
	tb.AddCells(String("1"), String("2"))
}

// stringerVal exercises the fmt.Stringer branch of AddRowf.
type stringerVal struct{}

func (stringerVal) String() string { return "stringered" }

func TestAddRowfConversions(t *testing.T) {
	tb := NewTable("", "cell", "str", "f", "i", "i64", "b", "stringer", "other")
	tb.AddRowf(Percent(0.5), "s", 1.5, 7, int64(8), true, stringerVal{}, struct{ X int }{3})
	wants := []string{"50.0%", "s", "1.500", "7", "8", "true", "stringered", "{3}"}
	for i, want := range wants {
		if got := tb.Cell(0, i); got != want {
			t.Errorf("col %d = %q, want %q", i, got, want)
		}
	}
}
