// Package prof wires the standard runtime/pprof profilers into command-line
// tools. Both cmd/onocsim and cmd/expreport expose the same
// -cpuprofile/-memprofile contract; this package is that contract's single
// implementation.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuPath is non-empty) and arranges a heap
// snapshot at stop time (when memPath is non-empty). The returned stop
// function must run before process exit so the profile files are complete;
// it is always non-nil and safe to call even when Start failed or both paths
// are empty.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	noop := func() error { return nil }
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return noop, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return noop, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
