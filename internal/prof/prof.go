// Package prof wires the standard runtime/pprof profilers into command-line
// tools. Both cmd/onocsim and cmd/expreport expose the same
// -cpuprofile/-memprofile contract; this package is that contract's single
// implementation.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
)

// cpuActive tracks whether a CPU profile started through Start is running.
var cpuActive atomic.Bool

// CPUActive reports whether a CPU profile started through Start is currently
// collecting samples. Hot loops consult it before attaching pprof labels:
// label bookkeeping allocates per call, and the allocation gate
// (`benchjson -counterregress`) holds unprofiled runs to a strict budget, so
// the labels are applied only when a profile is there to read them.
func CPUActive() bool { return cpuActive.Load() }

// Start begins CPU profiling (when cpuPath is non-empty) and arranges a heap
// snapshot at stop time (when memPath is non-empty). The returned stop
// function must run before process exit so the profile files are complete;
// it is always non-nil and safe to call even when Start failed or both paths
// are empty.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	noop := func() error { return nil }
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return noop, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return noop, err
		}
		cpuActive.Store(true)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuActive.Store(false)
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}
