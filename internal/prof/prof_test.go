package prof

import (
	"path/filepath"
	"testing"
)

// TestCPUActiveTracksProfileLifetime pins the label-gating signal: inactive
// before Start, active while a CPU profile collects, inactive after stop.
func TestCPUActiveTracksProfileLifetime(t *testing.T) {
	if CPUActive() {
		t.Fatal("CPUActive before any profile")
	}
	stop, err := Start(filepath.Join(t.TempDir(), "cpu.out"), "")
	if err != nil {
		t.Fatal(err)
	}
	if !CPUActive() {
		t.Error("CPUActive false while profiling")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if CPUActive() {
		t.Error("CPUActive true after stop")
	}
}

// TestCPUActiveNoopWithoutCPUPath checks a mem-only (or empty) Start never
// flips the flag.
func TestCPUActiveNoopWithoutCPUPath(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if CPUActive() {
		t.Error("CPUActive true without a CPU profile")
	}
}
