package cpu

import (
	"fmt"

	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// coreState is the blocking state of an in-order core.
type coreState uint8

const (
	coreRunning coreState = iota
	coreWaitMem
	coreWaitLock
	coreWaitBarrier
	coreDone
)

func (s coreState) String() string {
	switch s {
	case coreRunning:
		return "running"
	case coreWaitMem:
		return "wait-mem"
	case coreWaitLock:
		return "wait-lock"
	case coreWaitBarrier:
		return "wait-barrier"
	case coreDone:
		return "done"
	default:
		return "invalid"
	}
}

// core is one in-order, blocking processing element: at most one outstanding
// memory transaction, program-order execution, explicit synchronization.
type core struct {
	id   int
	sys  *System
	prog Program
	pc   int

	state     coreState
	busyUntil sim.Tick
	l1        *l1Cache

	// pendingLine/pendingWrite describe the in-flight miss.
	pendingLine  uint64
	pendingWrite bool

	// lastUnblock anchors program-order dependencies: the trace event
	// whose arrival most recently allowed this core to proceed, and when.
	lastUnblockID   trace.EventID
	lastUnblockTime sim.Tick

	// doneAt is the cycle the program finished.
	doneAt sim.Tick

	// Stats.
	ComputeCycles uint64
	MemOps        uint64
	SyncOps       uint64
}

func newCore(id int, sys *System, prog Program) *core {
	s := sys.cfg.System
	return &core{
		id:   id,
		sys:  sys,
		prog: prog,
		l1:   newL1(s.L1Sets, s.L1Ways, s.L1LineBytes),
	}
}

// setState transitions the core's blocking state, keeping the system's
// per-tile-range running-core counts exact. Every state write funnels
// through here; the counts are what let the tick loop and nextWake skip
// whole tile ranges with no runnable core.
func (c *core) setState(s coreState) {
	if (c.state == coreRunning) != (s == coreRunning) {
		r := c.id >> coreRangeShift
		if s == coreRunning {
			c.sys.runningInRange[r]++
		} else {
			c.sys.runningInRange[r]--
		}
	}
	c.state = s
}

// progDep returns the program-order dependency set of the core's next send.
func (c *core) progDep() ([]trace.Dep, sim.Tick) {
	if c.lastUnblockID == trace.None {
		return nil, c.lastUnblockTime
	}
	return []trace.Dep{{On: c.lastUnblockID, Class: trace.DepProgram}}, c.lastUnblockTime
}

// step advances the core by (at most) one blocking action at the current
// cycle. It is called once per system tick.
func (c *core) step() {
	now := c.sys.now
	if c.state != coreRunning || now < c.busyUntil {
		return
	}
	for {
		if c.pc >= len(c.prog) {
			c.setState(coreDone)
			c.doneAt = now
			return
		}
		op := c.prog[c.pc]
		switch op.Kind {
		case OpCompute:
			c.pc++
			c.busyUntil = now + sim.Tick(op.Arg)
			c.ComputeCycles += op.Arg
			return

		case OpLoad, OpStore:
			c.MemOps++
			write := op.Kind == OpStore
			line := c.l1.lineOf(op.Arg)
			if c.l1.Access(line, write) {
				if write {
					// A hit in M keeps M; Access already verified M.
					_ = line
				}
				c.pc++
				c.busyUntil = now + 1 // L1 hit cost
				return
			}
			c.startMiss(line, write)
			return

		case OpLock:
			c.SyncOps++
			deps, depTime := c.progDep()
			c.sys.sendFromCore(c, &protoMsg{typ: mLockReq, id: op.Arg, core: c.id}, deps, depTime)
			c.setState(coreWaitLock)
			return

		case OpUnlock:
			c.SyncOps++
			deps, depTime := c.progDep()
			c.sys.sendFromCore(c, &protoMsg{typ: mLockRel, id: op.Arg, core: c.id}, deps, depTime)
			c.pc++
			c.busyUntil = now + 1
			return

		case OpBarrier:
			c.SyncOps++
			deps, depTime := c.progDep()
			c.sys.sendFromCore(c, &protoMsg{typ: mBarArrive, id: op.Arg, core: c.id}, deps, depTime)
			c.setState(coreWaitBarrier)
			return

		default:
			panic(fmt.Sprintf("cpu: core %d invalid op kind %d", c.id, op.Kind))
		}
	}
}

// startMiss issues the coherence request for a missing line. A store to a
// present-S line and a store/load to an absent line both funnel here; the
// directory distinguishes them only by request type.
func (c *core) startMiss(line uint64, write bool) {
	typ := mGetS
	if write {
		typ = mGetM
	}
	deps, depTime := c.progDep()
	c.sys.sendFromCore(c, &protoMsg{typ: typ, line: line, core: c.id}, deps, depTime)
	c.pendingLine = line
	c.pendingWrite = write
	c.setState(coreWaitMem)
}

// handle processes a message delivered to this core.
func (c *core) handle(am arrivedMsg) {
	m := am.msg
	switch m.typ {
	case mData:
		c.completeMiss(am)

	case mInv:
		c.l1.Invalidate(m.line)
		// Acknowledge to the home (the sender), naming the requesting
		// core only for diagnostics.
		c.sys.sendFromCoreTo(c, c.sys.homeOf(m.line),
			&protoMsg{typ: mInvAck, line: m.line, core: c.id},
			[]trace.Dep{{On: m.traceID, Class: trace.DepCausal}}, am.at)

	case mRecall:
		home := c.sys.homeOf(m.line)
		dep := []trace.Dep{{On: m.traceID, Class: trace.DepCausal}}
		var resp *protoMsg
		if m.aux == recallForS {
			if c.l1.Downgrade(m.line) {
				resp = &protoMsg{typ: mWBData, line: m.line, core: c.id}
			} else {
				resp = &protoMsg{typ: mRecallAck, line: m.line, core: c.id}
			}
		} else {
			was, present := c.l1.Invalidate(m.line)
			if present && was == stateM {
				resp = &protoMsg{typ: mWBData, line: m.line, core: c.id}
			} else {
				resp = &protoMsg{typ: mRecallAck, line: m.line, core: c.id}
			}
		}
		c.sys.sendFromCoreTo(c, home, resp, dep, am.at)

	case mLockGrant:
		if c.state != coreWaitLock {
			panic(fmt.Sprintf("cpu: core %d got LockGrant in state %s", c.id, c.state))
		}
		c.unblock(am)

	case mBarRelease:
		if c.state != coreWaitBarrier {
			panic(fmt.Sprintf("cpu: core %d got BarRelease in state %s", c.id, c.state))
		}
		c.unblock(am)

	default:
		panic(fmt.Sprintf("cpu: core %d received unexpected %s", c.id, m.typ))
	}
}

// completeMiss fills the L1 (possibly evicting) and resumes the program.
func (c *core) completeMiss(am arrivedMsg) {
	m := am.msg
	if c.state != coreWaitMem || m.line != c.pendingLine {
		panic(fmt.Sprintf("cpu: core %d unexpected Data for line %#x in state %s", c.id, m.line, c.state))
	}
	st := stateS
	if m.aux == grantM {
		st = stateM
	}
	// Upgrade in place when the line is already resident (store hit-S).
	if c.l1.State(m.line) != stateI {
		if st == stateM {
			c.l1.Upgrade(m.line)
		}
	} else {
		if victim, dirty, ok := c.l1.victim(m.line); ok && dirty {
			// The eviction is caused by this fill: its dependency is
			// the arriving data message.
			c.sys.sendFromCoreTo(c, c.sys.homeOf(victim),
				&protoMsg{typ: mWB, line: victim, core: c.id},
				[]trace.Dep{{On: m.traceID, Class: trace.DepCausal}}, am.at)
		}
		c.l1.Fill(m.line, st)
	}
	c.unblock(am)
}

// unblock resumes program execution after a blocking response, anchoring
// future program-order dependencies at this arrival.
func (c *core) unblock(am arrivedMsg) {
	c.lastUnblockID = am.msg.traceID
	c.lastUnblockTime = am.at
	c.setState(coreRunning)
	c.pc++
	c.busyUntil = am.at + 1
}
