// Package cpu implements the full-system CMP substrate that drives the
// networks with real, dependency-rich traffic: in-order cores executing
// explicit programs, private L1 caches kept coherent by an MSI directory
// protocol over distributed shared-L2 banks, and lock/barrier managers.
//
// This substrate plays the role of the Simics/GEMS-class front end the
// original authors used. It is execution-driven: core progress depends on
// network timing, so running the same program on two fabrics yields
// different interleavings — exactly the effect the Self-Correction Trace
// Model must reconstruct from a trace captured on a third, cheaper fabric.
package cpu

import "fmt"

// OpKind enumerates the instruction repertoire of the synthetic cores.
type OpKind uint8

const (
	// OpCompute models local work of a given cycle count.
	OpCompute OpKind = iota
	// OpLoad reads one cache line through the coherence protocol.
	OpLoad
	// OpStore writes one cache line (requires M state).
	OpStore
	// OpLock acquires a global lock by ID (blocking).
	OpLock
	// OpUnlock releases a lock by ID.
	OpUnlock
	// OpBarrier joins a global barrier by ID (blocking until all cores
	// arrive).
	OpBarrier
	numOpKinds
)

var opNames = [numOpKinds]string{"compute", "load", "store", "lock", "unlock", "barrier"}

// String names the op kind.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return "invalid"
}

// Op is one instruction. Arg is cycles for OpCompute, a byte address for
// OpLoad/OpStore, and a lock/barrier ID for the synchronization ops.
type Op struct {
	Kind OpKind
	Arg  uint64
}

// Compute returns a compute op of n cycles (minimum 1).
func Compute(n int64) Op {
	if n < 1 {
		n = 1
	}
	return Op{Kind: OpCompute, Arg: uint64(n)}
}

// Load returns a load of the line containing addr.
func Load(addr uint64) Op { return Op{Kind: OpLoad, Arg: addr} }

// Store returns a store to the line containing addr.
func Store(addr uint64) Op { return Op{Kind: OpStore, Arg: addr} }

// Lock returns a lock acquisition.
func Lock(id uint64) Op { return Op{Kind: OpLock, Arg: id} }

// Unlock returns a lock release.
func Unlock(id uint64) Op { return Op{Kind: OpUnlock, Arg: id} }

// Barrier returns a global barrier join.
func Barrier(id uint64) Op { return Op{Kind: OpBarrier, Arg: id} }

// Program is the instruction sequence of one core.
type Program []Op

// Validate rejects programs with malformed ops or unbalanced locks, the two
// mistakes that hang a simulation in ways that are miserable to debug.
func (p Program) Validate() error {
	held := map[uint64]bool{}
	for i, op := range p {
		if op.Kind >= numOpKinds {
			return fmt.Errorf("cpu: op %d has invalid kind %d", i, op.Kind)
		}
		switch op.Kind {
		case OpCompute:
			if op.Arg == 0 {
				return fmt.Errorf("cpu: op %d is a zero-cycle compute", i)
			}
		case OpLock:
			if held[op.Arg] {
				return fmt.Errorf("cpu: op %d re-acquires held lock %d", i, op.Arg)
			}
			held[op.Arg] = true
		case OpUnlock:
			if !held[op.Arg] {
				return fmt.Errorf("cpu: op %d releases unheld lock %d", i, op.Arg)
			}
			delete(held, op.Arg)
		}
	}
	if len(held) > 0 {
		for id := range held {
			return fmt.Errorf("cpu: program ends holding lock %d", id)
		}
	}
	return nil
}
