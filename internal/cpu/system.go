package cpu

import (
	"fmt"

	"onocsim/internal/config"
	"onocsim/internal/noc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// coreRangeShift sizes the tile ranges tracked by System.runningInRange:
// ranges of 1<<coreRangeShift tiles. 32 keeps the range vector tiny while
// still letting large chips skip most of the core array when only a few
// tiles are runnable.
const (
	coreRangeShift = 5
	coreRangeSize  = 1 << coreRangeShift
)

// System couples the cores and home banks to a fabric and drives the whole
// chip cycle by cycle. The same System runs execution-driven ground truth
// (no recorder) and trace capture (with recorder) on any noc.Network.
type System struct {
	cfg   config.Config
	net   noc.Network
	nodes int
	now   sim.Tick

	cores []*core
	banks []*bank

	// runningInRange[r] counts cores in state coreRunning within tile range
	// r (ranges of 1<<coreRangeShift tiles), maintained by core.setState.
	// The tick step loop and nextWake skip ranges with a zero count: step
	// is a no-op for every non-running core, and nothing inside the step
	// loop can wake a core (unblocks happen only during inbox dispatch and
	// fabric delivery, both earlier in the cycle), so the skip is
	// observationally identical to stepping every core.
	runningInRange []int

	rec   *trace.Recorder
	msgID uint64

	// memTiles lists the memory-controller tiles, derived from
	// cfg.System.MemPorts at construction; empty when off-chip latency is
	// folded into the home bank (MemPorts == 0).
	memTiles []int

	inbox []arrivedMsg
	// inboxSpare is the second half of the inbox double buffer: tick
	// swaps it in before dispatching so the in-flight batch is never
	// aliased, and both backing arrays are recycled for the whole run.
	inboxSpare []arrivedMsg
	// pool recycles fabric messages: a Message dies in onDeliver as soon
	// as its fields are copied into the inbox, so steady state re-injects
	// the same handful of allocations.
	pool noc.MsgPool
	// eng schedules delayed bank responses: the bank occupancy model is
	// a small discrete-event simulation riding on the synchronous tick
	// loop (RunUntil flushes the events due each cycle).
	eng *sim.Engine

	lineBits uint
}

// NewSystem builds a chip from a validated config, per-core programs, and a
// fabric. programs must have exactly one entry per core. rec may be nil.
func NewSystem(cfg config.Config, programs []Program, net noc.Network, rec *trace.Recorder) (*System, error) {
	if len(programs) != cfg.System.Cores {
		return nil, fmt.Errorf("cpu: %d programs for %d cores", len(programs), cfg.System.Cores)
	}
	if net.Nodes() != cfg.System.Cores {
		return nil, fmt.Errorf("cpu: fabric has %d nodes, system has %d cores", net.Nodes(), cfg.System.Cores)
	}
	lb := uint(0)
	for 1<<lb < cfg.System.L1LineBytes {
		lb++
	}
	memTiles, err := memControllerTiles(&cfg)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, net: net, nodes: cfg.System.Cores, rec: rec, lineBits: lb, eng: sim.NewEngine(), memTiles: memTiles}
	s.runningInRange = make([]int, (cfg.System.Cores+coreRangeSize-1)>>coreRangeShift)
	for i, p := range programs {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("cpu: core %d: %w", i, err)
		}
		s.cores = append(s.cores, newCore(i, s, p))
		s.runningInRange[i>>coreRangeShift]++ // cores start coreRunning
	}
	for i := 0; i < s.nodes; i++ {
		s.banks = append(s.banks, newBank(i, s))
	}
	net.SetDeliver(s.onDeliver)
	return s, nil
}

// homeOf maps a line to its home tile (S-NUCA line interleaving).
func (s *System) homeOf(line uint64) int { return int(line % uint64(s.nodes)) }

// homeOfSync maps a lock/barrier ID to its manager tile.
func (s *System) homeOfSync(id uint64) int { return int(id % uint64(s.nodes)) }

// memControllerTiles derives the controller tile list from MemPorts: the
// first MemPorts chip corners, in the fixed order NW, NE, SW, SE. Config
// validation enforces the same bound, but NewSystem also accepts configs
// that were never validated, so the range is re-checked here — an
// out-of-range port count must be a construction error, not a replay-time
// index panic.
func memControllerTiles(cfg *config.Config) ([]int, error) {
	ports := cfg.System.MemPorts
	w := cfg.MeshWidth()
	corners := []int{0, w - 1, (w - 1) * w, cfg.System.Cores - 1}
	if ports < 0 || ports > len(corners) {
		return nil, fmt.Errorf("cpu: mem_ports=%d out of [0,%d]: controllers sit at the chip corners", ports, len(corners))
	}
	return corners[:ports], nil
}

// memControllerOf maps a line to its memory controller tile,
// line-interleaved across the tiles derived at construction.
func (s *System) memControllerOf(line uint64) int {
	return s.memTiles[int(line%uint64(len(s.memTiles)))]
}

// bytesFor returns the fabric payload size of a protocol message.
func (s *System) bytesFor(pm *protoMsg) int {
	if pm.isData() {
		return s.cfg.System.DataBytes
	}
	return s.cfg.System.CtrlBytes
}

// inject records (if capturing) and injects a protocol message now.
func (s *System) inject(src, dst int, pm *protoMsg, deps []trace.Dep, depTime sim.Tick) {
	if s.rec != nil {
		pm.traceID = s.rec.RecordSend(trace.SendInfo{
			Src:         src,
			Dst:         dst,
			Bytes:       s.bytesFor(pm),
			Class:       pm.class(),
			Kind:        pm.traceKind(),
			Deps:        deps,
			DepResolved: depTime,
			Now:         s.now,
		})
	}
	s.msgID++
	m := s.pool.Get()
	m.ID = s.msgID
	m.Src = src
	m.Dst = dst
	m.Bytes = s.bytesFor(pm)
	m.Class = pm.class()
	m.Payload = pm
	s.net.Inject(m)
}

// send schedules a message after a service delay (bank responses).
func (s *System) send(src, dst int, pm *protoMsg, delay sim.Tick, deps []trace.Dep, depTime sim.Tick) {
	if delay <= 0 {
		s.inject(src, dst, pm, deps, depTime)
		return
	}
	s.eng.Schedule(s.now+delay, func() {
		s.inject(src, dst, pm, deps, depTime)
	})
}

// sendFromCore routes a core-originated message to its implicit home.
func (s *System) sendFromCore(c *core, pm *protoMsg, deps []trace.Dep, depTime sim.Tick) {
	var dst int
	switch pm.typ {
	case mGetS, mGetM, mWB:
		dst = s.homeOf(pm.line)
	case mLockReq, mLockRel, mBarArrive:
		dst = s.homeOfSync(pm.id)
	default:
		panic(fmt.Sprintf("cpu: core message %s has no implicit home", pm.typ))
	}
	s.inject(c.id, dst, pm, deps, depTime)
}

// sendFromCoreTo routes a core-originated message to an explicit node.
func (s *System) sendFromCoreTo(c *core, dst int, pm *protoMsg, deps []trace.Dep, depTime sim.Tick) {
	s.inject(c.id, dst, pm, deps, depTime)
}

// onDeliver collects fabric deliveries; they are dispatched after the
// fabric tick completes so handler-triggered sends see a settled cycle.
// The fabric holds no reference to m after this returns, so the message
// goes straight back to the pool.
func (s *System) onDeliver(m *noc.Message) {
	pm, ok := m.Payload.(*protoMsg)
	if !ok {
		panic(fmt.Sprintf("cpu: delivery %d carries foreign payload %T", m.ID, m.Payload))
	}
	s.inbox = append(s.inbox, arrivedMsg{msg: pm, dst: m.Dst, at: m.Arrive})
	s.pool.Put(m)
}

// tick advances the whole chip one cycle.
func (s *System) tick() {
	s.net.Tick()
	s.now = s.net.Now()

	// Dispatch deliveries in fabric order. The inbox double buffer keeps
	// the in-flight batch unaliased while recycling both backing arrays:
	// the old `inbox[len(inbox):]` re-slice stranded the consumed prefix
	// and forced a fresh allocation every burst.
	if len(s.inbox) > 0 {
		batch := s.inbox
		s.inbox = s.inboxSpare[:0]
		for _, am := range batch {
			if s.rec != nil && am.msg.traceID != trace.None {
				s.rec.RecordArrive(am.msg.traceID, am.at)
			}
			switch am.msg.typ {
			case mGetS, mGetM, mWB, mInvAck, mWBData, mRecallAck,
				mLockReq, mLockRel, mBarArrive, mMemReq, mMemResp:
				s.banks[am.dst].handle(am)
			default:
				s.cores[am.dst].handle(am)
			}
		}
		// Recycle the consumed batch as the next spare. Deliveries only
		// happen inside net.Tick, so nothing was appended to the fresh
		// inbox while the batch was being dispatched.
		s.inboxSpare = batch[:0]
	}

	// Flush bank responses whose service delay expired.
	s.eng.RunUntil(s.now)

	// Advance cores, skipping whole tile ranges with no running core.
	// step() never wakes another core (unblocks happen only during inbox
	// dispatch above), so a range that starts the loop at zero stays at
	// zero, and the skip cannot miss work.
	for r, n := range s.runningInRange {
		if n == 0 {
			continue
		}
		base := r << coreRangeShift
		hi := base + coreRangeSize
		if hi > len(s.cores) {
			hi = len(s.cores)
		}
		for _, c := range s.cores[base:hi] {
			c.step()
		}
	}
}

// RunResult summarizes an execution-driven run.
type RunResult struct {
	// Makespan is the cycle the last core finished its program.
	Makespan sim.Tick
	// DrainTime is when the last in-flight message retired.
	DrainTime sim.Tick
	// Cycles is the number of simulated cycles (equals DrainTime).
	Cycles sim.Tick
	// Messages is the total fabric message count.
	Messages uint64
}

// nextWake returns the earliest future cycle at which any chip component
// could do observable work: a running core reaching busyUntil, a pending
// bank-response event, or the fabric's own wake-up. Blocked cores are woken
// exclusively by deliveries, which the fabric/engine terms already cover.
// Cycles strictly before the returned value are provably no-ops.
func (s *System) nextWake() sim.Tick {
	if len(s.inbox) > 0 {
		return s.now + 1
	}
	// Scan the cores first: on a busy chip some core is almost always due
	// next cycle, and the early-out then spares the fabric's (potentially
	// channel-scanning) NextWake entirely.
	wake := noc.Never
	for r, n := range s.runningInRange {
		if n == 0 {
			continue
		}
		base := r << coreRangeShift
		hi := base + coreRangeSize
		if hi > len(s.cores) {
			hi = len(s.cores)
		}
		for _, c := range s.cores[base:hi] {
			if c.state != coreRunning {
				continue
			}
			if c.busyUntil <= s.now+1 {
				return s.now + 1
			}
			if c.busyUntil < wake {
				wake = c.busyUntil
			}
		}
	}
	if at, ok := s.eng.NextAt(); ok && at < wake {
		wake = at
	}
	if nw := s.net.NextWake(); nw < wake {
		wake = nw
	}
	return wake
}

// Run drives the system until every core finishes and the fabric drains,
// or errors out at the cycle bound (indicating livelock or an undersized
// bound). Provably idle stretches — all cores blocked or mid-compute,
// nothing due in the fabric or the bank engine — are fast-forwarded without
// changing any observable timing.
func (s *System) Run(maxCycles int64) (RunResult, error) {
	bound := sim.Tick(maxCycles)
	for {
		s.tick()
		if s.done() {
			break
		}
		if s.now >= bound {
			return RunResult{}, fmt.Errorf("cpu: simulation exceeded %d cycles (cores: %s)", maxCycles, s.coreStates())
		}
		if wake := s.nextWake(); wake > s.now+1 {
			target := wake - 1
			if target > bound {
				target = bound // keep the livelock bound cycle-accurate
			}
			s.net.SkipTo(target)
			s.now = target
		}
	}
	var makespan sim.Tick
	for _, c := range s.cores {
		if c.doneAt > makespan {
			makespan = c.doneAt
		}
	}
	return RunResult{
		Makespan:  makespan,
		DrainTime: s.now,
		Cycles:    s.now,
		Messages:  s.msgID,
	}, nil
}

// done reports whether all cores finished and nothing is in flight.
func (s *System) done() bool {
	for _, c := range s.cores {
		if c.state != coreDone {
			return false
		}
	}
	return !s.net.Busy() && s.eng.Pending() == 0 && len(s.inbox) == 0
}

// coreStates summarizes core states for timeout diagnostics.
func (s *System) coreStates() string {
	counts := map[coreState]int{}
	for _, c := range s.cores {
		counts[c.state]++
	}
	return fmt.Sprintf("running=%d wait-mem=%d wait-lock=%d wait-barrier=%d done=%d",
		counts[coreRunning], counts[coreWaitMem], counts[coreWaitLock], counts[coreWaitBarrier], counts[coreDone])
}

// Network returns the fabric the system drives.
func (s *System) Network() noc.Network { return s.net }

// Now returns the current system cycle.
func (s *System) Now() sim.Tick { return s.now }

// CoreStats aggregates per-core counters for reports.
type CoreStats struct {
	ComputeCycles uint64
	MemOps        uint64
	SyncOps       uint64
	L1Hits        uint64
	L1Misses      uint64
	L1Evictions   uint64
}

// Stats sums core-side counters across the chip.
func (s *System) Stats() CoreStats {
	var t CoreStats
	for _, c := range s.cores {
		t.ComputeCycles += c.ComputeCycles
		t.MemOps += c.MemOps
		t.SyncOps += c.SyncOps
		t.L1Hits += c.l1.Hits
		t.L1Misses += c.l1.Misses
		t.L1Evictions += c.l1.Evictions
	}
	return t
}
