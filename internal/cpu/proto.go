package cpu

import (
	"onocsim/internal/noc"
	"onocsim/internal/trace"
)

// msgType enumerates the coherence and synchronization protocol messages.
type msgType uint8

const (
	// Core → home directory.
	mGetS msgType = iota
	mGetM
	mWB // dirty L1 eviction writeback (data)
	// Home directory → core.
	mData   // data response, grants aux=grantS/grantM
	mInv    // invalidate a shared copy
	mRecall // fetch/invalidate the modified copy, aux=recallS/recallM
	// Core → home directory, transaction responses.
	mInvAck
	mWBData    // recall response carrying data
	mRecallAck // recall response when the line was already written back
	// Synchronization.
	mLockReq
	mLockGrant
	mLockRel
	mBarArrive
	mBarRelease
	// Off-chip memory controller traffic (MemPorts > 0).
	mMemReq
	mMemResp
	numMsgTypes
)

var msgTypeNames = [numMsgTypes]string{
	"GetS", "GetM", "WB", "Data", "Inv", "Recall",
	"InvAck", "WBData", "RecallAck",
	"LockReq", "LockGrant", "LockRel", "BarArrive", "BarRelease",
	"MemReq", "MemResp",
}

func (t msgType) String() string {
	if int(t) < len(msgTypeNames) {
		return msgTypeNames[t]
	}
	return "invalid"
}

// Grant codes carried in protoMsg.aux for mData, and recall intents for
// mRecall.
const (
	grantS = iota
	grantM
)
const (
	recallForS = iota // downgrade owner to S, return data
	recallForM        // invalidate owner, return data
)

// protoMsg is the protocol payload attached to every noc.Message the
// substrate injects.
type protoMsg struct {
	typ  msgType
	line uint64 // cache line number (coherence) — unused for sync
	id   uint64 // lock/barrier id — unused for coherence
	core int    // requesting/acting core
	aux  int    // grant code or recall intent
	// traceID links the in-flight message to its trace event during
	// capture runs; None outside capture.
	traceID trace.EventID
}

// isData reports whether the message carries a full cache line (and thus
// uses the data message size and the response/writeback class).
func (m *protoMsg) isData() bool {
	switch m.typ {
	case mData, mWB, mWBData, mMemResp:
		return true
	}
	return false
}

// class maps protocol roles onto fabric virtual networks so that protocol
// request→response chains cannot deadlock.
func (m *protoMsg) class() noc.Class {
	switch m.typ {
	case mGetS, mGetM, mLockReq, mBarArrive, mMemReq:
		return noc.ClassRequest
	case mData, mInvAck, mWBData, mRecallAck, mLockGrant, mBarRelease, mMemResp:
		return noc.ClassResponse
	case mWB, mLockRel, mInv, mRecall:
		// Evictions and releases initiate no reply the sender waits on;
		// Inv/Recall are sunk by cores that always drain them.
		return noc.ClassWriteback
	default:
		return noc.ClassRequest
	}
}

// traceKind maps protocol roles onto trace event kinds.
func (m *protoMsg) traceKind() trace.Kind {
	switch m.typ {
	case mGetS, mGetM, mLockReq, mBarArrive, mMemReq:
		return trace.KindRequest
	case mData, mMemResp:
		return trace.KindResponse
	case mLockGrant, mBarRelease:
		return trace.KindSync
	case mWB, mWBData:
		return trace.KindData
	default:
		return trace.KindControl
	}
}
