package cpu

import (
	"fmt"

	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// bitset is a sharer set over up to a few hundred cores.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
func (b bitset) forEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			bit := w & -w
			i := wi*64 + trailingZeros(bit)
			fn(i)
			w &= w - 1
		}
	}
}
func trailingZeros(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}

// dirState is the directory view of a line.
type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirModified
)

// arrivedMsg couples a delivered protocol message with its destination node
// and arrival time, so handlers can cite it as a dependency of their
// responses.
type arrivedMsg struct {
	msg *protoMsg
	dst int
	at  sim.Tick
}

// dirEntry is the directory + transaction state of one line at its home.
type dirEntry struct {
	state   dirState
	sharers bitset
	owner   int

	// busy is set while a multi-message transaction (invalidation round
	// or recall) is in flight; conflicting requests queue in waitq.
	busy  bool
	waitq []arrivedMsg

	// Transaction scratch: the request being serviced, outstanding ack
	// count, and the dependency set accumulated for the final response.
	pendingReq  arrivedMsg
	pendingAcks int
	deps        []trace.Dep
	depTime     sim.Tick
	// recallFrom is the core a Recall was sent to (-1 when the current
	// transaction is not a recall); it filters stale recall responses.
	recallFrom int
	// waitingMem marks a transaction stalled on an off-chip fetch from a
	// memory controller (MemPorts > 0); pendingReq holds the request to
	// grant when the MemResp arrives.
	waitingMem bool
	// ownerKeptCopy records that the recalled owner downgraded to S and
	// must stay in the sharer set.
	ownerKeptCopy bool
}

// l2Bank models the shared-L2 data array of one tile as a capacity-bounded
// presence set with LRU: a miss costs the off-chip memory latency, and
// evictions drop data only (directory state is untouched — the directory is
// modelled as unbounded, a standard decoupling that avoids recall storms
// from directory evictions while preserving off-chip access timing).
type l2Bank struct {
	sets int
	ways int
	tags [][]l2Line
	tick uint64

	Hits, Misses uint64
}

type l2Line struct {
	tag   uint64
	valid bool
	lru   uint64
}

func newL2Bank(sets, ways int) *l2Bank {
	b := &l2Bank{sets: sets, ways: ways}
	// One backing array for all sets: bank construction is on the capture
	// hot path (every study run builds fresh systems), and per-set slices
	// were a dominant allocation source.
	b.tags = make([][]l2Line, sets)
	backing := make([]l2Line, sets*ways)
	for i := range b.tags {
		b.tags[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return b
}

// touch returns whether the line's data was present, installing it (with
// LRU eviction) if not. The caller charges the memory latency on a miss.
func (b *l2Bank) touch(line uint64) bool {
	set := b.tags[int(line)%b.sets]
	for i := range set {
		if set[i].valid && set[i].tag == line {
			b.tick++
			set[i].lru = b.tick
			b.Hits++
			return true
		}
	}
	b.Misses++
	vi, vlru := 0, ^uint64(0)
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
		if set[i].lru < vlru {
			vi, vlru = i, set[i].lru
		}
	}
	b.tick++
	set[vi] = l2Line{tag: line, valid: true, lru: b.tick}
	return false
}

// lockState is one lock at its home bank.
type lockState struct {
	held   bool
	holder int
	waitq  []arrivedMsg
	// relDep is the arrival of the release that freed the lock, cited as
	// the sync dependency of the next grant.
	relDep  trace.Dep
	relTime sim.Tick
	hasRel  bool
}

// barrierState is one barrier generation at its home bank.
type barrierState struct {
	arrived int
	deps    []trace.Dep
	depTime sim.Tick
}

// bank is the per-tile home node: L2 data, directory, lock and barrier
// managers. Banks are passive: they react to delivered messages and emit
// responses through the system's delayed-send queue.
type bank struct {
	id  int
	sys *System

	l2       *l2Bank
	dir      map[uint64]*dirEntry
	locks    map[uint64]*lockState
	barriers map[uint64]*barrierState

	// Stats.
	Transactions uint64
	Recalls      uint64
	InvRounds    uint64
}

func newBank(id int, sys *System) *bank {
	return &bank{
		id:       id,
		sys:      sys,
		l2:       newL2Bank(sys.cfg.System.L2SetsPerBank, sys.cfg.System.L2Ways),
		dir:      make(map[uint64]*dirEntry),
		locks:    make(map[uint64]*lockState),
		barriers: make(map[uint64]*barrierState),
	}
}

func (b *bank) entry(line uint64) *dirEntry {
	e, ok := b.dir[line]
	if !ok {
		e = &dirEntry{sharers: newBitset(b.sys.nodes), owner: -1, recallFrom: -1}
		b.dir[line] = e
	}
	return e
}

// serviceDelay returns the bank occupancy for a line access, charging the
// off-chip latency when the L2 data is absent.
func (b *bank) serviceDelay(line uint64) sim.Tick {
	d := sim.Tick(b.sys.cfg.System.L2HitCycles)
	if !b.l2.touch(line) {
		d += sim.Tick(b.sys.cfg.System.MemCycles)
	}
	return d
}

// handle dispatches one delivered message.
func (b *bank) handle(am arrivedMsg) {
	switch am.msg.typ {
	case mGetS, mGetM:
		b.handleRequest(am)
	case mMemReq:
		b.handleMemReq(am)
	case mMemResp:
		b.handleMemResp(am)
	case mWB:
		b.handleWB(am)
	case mInvAck:
		b.handleInvAck(am)
	case mWBData, mRecallAck:
		b.handleRecallResp(am)
	case mLockReq:
		b.handleLockReq(am)
	case mLockRel:
		b.handleLockRel(am)
	case mBarArrive:
		b.handleBarArrive(am)
	default:
		panic(fmt.Sprintf("cpu: bank %d received unexpected %s", b.id, am.msg.typ))
	}
}

// handleRequest services GetS/GetM, queueing behind a busy transaction.
func (b *bank) handleRequest(am arrivedMsg) {
	e := b.entry(am.msg.line)
	if e.busy {
		e.waitq = append(e.waitq, am)
		return
	}
	b.startRequest(e, am)
}

func (b *bank) startRequest(e *dirEntry, am arrivedMsg) {
	m := am.msg
	line, c := m.line, m.core
	b.Transactions++
	reqDep := trace.Dep{On: m.traceID, Class: trace.DepCausal}
	switch e.state {
	case dirUncached:
		if b.startMemFetch(e, am) {
			return
		}
		delay := b.serviceDelay(line)
		grant := grantS
		if m.typ == mGetM {
			grant = grantM
			e.state = dirModified
			e.owner = c
		} else {
			e.state = dirShared
			e.sharers.set(c)
		}
		b.sendData(line, c, grant, delay, []trace.Dep{reqDep}, am.at)

	case dirShared:
		if m.typ == mGetS {
			if b.startMemFetch(e, am) {
				return
			}
			delay := b.serviceDelay(line)
			e.sharers.set(c)
			b.sendData(line, c, grantS, delay, []trace.Dep{reqDep}, am.at)
			return
		}
		// GetM against sharers: invalidate everyone but the requestor.
		others := 0
		e.sharers.forEach(func(i int) {
			if i != c {
				others++
			}
		})
		if others == 0 {
			if b.startMemFetch(e, am) {
				return
			}
			delay := b.serviceDelay(line)
			e.sharers = newBitset(b.sys.nodes)
			e.state = dirModified
			e.owner = c
			b.sendData(line, c, grantM, delay, []trace.Dep{reqDep}, am.at)
			return
		}
		e.busy = true
		e.pendingReq = am
		e.pendingAcks = others
		e.deps = []trace.Dep{reqDep}
		e.depTime = am.at
		e.recallFrom = -1
		b.InvRounds++
		svc := sim.Tick(b.sys.cfg.System.L2HitCycles)
		e.sharers.forEach(func(i int) {
			if i == c {
				return
			}
			b.sys.send(b.id, i, &protoMsg{typ: mInv, line: line, core: c},
				svc, []trace.Dep{reqDep}, am.at)
		})

	case dirModified:
		if e.owner == c {
			// The owner re-requesting means its WB is in flight and
			// raced ahead of us; serialize behind it.
			e.waitq = append(e.waitq, am)
			e.busy = true
			e.pendingReq = arrivedMsg{}
			e.recallFrom = -1
			return
		}
		e.busy = true
		e.pendingReq = am
		e.pendingAcks = 1
		e.deps = []trace.Dep{reqDep}
		e.depTime = am.at
		e.recallFrom = e.owner
		e.ownerKeptCopy = false
		b.Recalls++
		intent := recallForS
		if m.typ == mGetM {
			intent = recallForM
		}
		svc := sim.Tick(b.sys.cfg.System.L2HitCycles)
		b.sys.send(b.id, e.owner, &protoMsg{typ: mRecall, line: line, core: c, aux: intent},
			svc, []trace.Dep{reqDep}, am.at)
	}
}

// startMemFetch begins an off-chip fetch when memory controllers are
// modelled and the L2 data is absent. It reports whether the grant is now
// deferred to the MemResp. The L2 tag is installed by the touch probe; only
// the timing is carried by the controller round trip.
func (b *bank) startMemFetch(e *dirEntry, am arrivedMsg) bool {
	if b.sys.cfg.System.MemPorts <= 0 {
		return false
	}
	if b.l2.touch(am.msg.line) {
		return false // data resident: grant immediately
	}
	e.busy = true
	e.waitingMem = true
	e.pendingReq = am
	e.pendingAcks = 0
	e.recallFrom = -1
	mc := b.sys.memControllerOf(am.msg.line)
	b.sys.send(b.id, mc,
		&protoMsg{typ: mMemReq, line: am.msg.line, core: b.id},
		sim.Tick(b.sys.cfg.System.L2HitCycles),
		[]trace.Dep{{On: am.msg.traceID, Class: trace.DepCausal}}, am.at)
	return true
}

// handleMemReq services an off-chip access at a memory controller tile:
// the response carries the line after the DRAM latency.
func (b *bank) handleMemReq(am arrivedMsg) {
	b.sys.send(b.id, am.msg.core,
		&protoMsg{typ: mMemResp, line: am.msg.line, core: b.id},
		sim.Tick(b.sys.cfg.System.MemCycles),
		[]trace.Dep{{On: am.msg.traceID, Class: trace.DepCausal}}, am.at)
}

// handleMemResp completes the deferred grant at the home bank.
func (b *bank) handleMemResp(am arrivedMsg) {
	e := b.entry(am.msg.line)
	if !e.busy || !e.waitingMem || e.pendingReq.msg == nil {
		panic(fmt.Sprintf("cpu: bank %d stray MemResp for line %#x", b.id, am.msg.line))
	}
	req := e.pendingReq
	line, c := req.msg.line, req.msg.core
	deps := []trace.Dep{{On: am.msg.traceID, Class: trace.DepCausal}}
	delay := sim.Tick(b.sys.cfg.System.L2HitCycles)
	if req.msg.typ == mGetM {
		e.sharers = newBitset(b.sys.nodes)
		e.state = dirModified
		e.owner = c
		b.sendData(line, c, grantM, delay, deps, am.at)
	} else {
		e.state = dirShared
		e.sharers.set(c)
		b.sendData(line, c, grantS, delay, deps, am.at)
	}
	e.busy = false
	e.waitingMem = false
	e.pendingReq = arrivedMsg{}
	b.drainWaitq(e)
}

// handleWB processes a spontaneous dirty eviction from the owner.
func (b *bank) handleWB(am arrivedMsg) {
	e := b.entry(am.msg.line)
	c := am.msg.core
	b.l2.touch(am.msg.line) // writeback installs the data
	if e.busy && e.pendingAcks > 0 && e.state == dirModified && e.owner == c {
		// The WB crossed a Recall we sent to the same core: it serves as
		// the recall response.
		b.absorbRecallData(e, am)
		return
	}
	if e.state == dirModified && e.owner == c {
		e.state = dirUncached
		e.owner = -1
		if e.busy && e.pendingReq.msg == nil {
			// An owner re-request was queued waiting for this WB.
			e.busy = false
			b.drainWaitq(e)
		}
	}
	// A WB from a non-owner is a stale message from an already-recalled
	// line; the data install above is all it contributes.
}

// handleInvAck counts one invalidation acknowledgement.
func (b *bank) handleInvAck(am arrivedMsg) {
	e := b.entry(am.msg.line)
	if !e.busy || e.pendingAcks <= 0 || e.pendingReq.msg == nil {
		panic(fmt.Sprintf("cpu: bank %d stray InvAck for line %#x", b.id, am.msg.line))
	}
	e.sharers.clear(am.msg.core)
	e.deps = append(e.deps, trace.Dep{On: am.msg.traceID, Class: trace.DepCausal})
	if am.at > e.depTime {
		e.depTime = am.at
	}
	e.pendingAcks--
	if e.pendingAcks == 0 {
		b.finishRequest(e)
	}
}

// handleRecallResp completes a recall with or without data.
func (b *bank) handleRecallResp(am arrivedMsg) {
	e := b.entry(am.msg.line)
	if !e.busy || e.pendingAcks <= 0 || e.pendingReq.msg == nil || e.recallFrom != am.msg.core {
		// A recall response may trail a crossing WB that already
		// completed the transaction; it is then a harmless straggler.
		return
	}
	if am.msg.typ == mWBData {
		b.l2.touch(am.msg.line)
		// A WBData reply means the owner still had the line and, for a
		// GetS-triggered recall, downgraded to S rather than dropping it.
		if e.pendingReq.msg.typ == mGetS {
			e.ownerKeptCopy = true
		}
	}
	b.absorbRecallData(e, am)
}

func (b *bank) absorbRecallData(e *dirEntry, am arrivedMsg) {
	e.deps = append(e.deps, trace.Dep{On: am.msg.traceID, Class: trace.DepCausal})
	if am.at > e.depTime {
		e.depTime = am.at
	}
	e.pendingAcks--
	if e.pendingAcks == 0 {
		b.finishRequest(e)
	}
}

// finishRequest sends the data response of the pending transaction and
// resolves the new directory state, then drains queued requests.
func (b *bank) finishRequest(e *dirEntry) {
	am := e.pendingReq
	m := am.msg
	line, c := m.line, m.core
	delay := sim.Tick(b.sys.cfg.System.L2HitCycles)
	if m.typ == mGetM {
		e.sharers = newBitset(b.sys.nodes)
		e.state = dirModified
		e.owner = c
		b.sendData(line, c, grantM, delay, e.deps, e.depTime)
	} else {
		prevOwner := e.owner
		e.state = dirShared
		if prevOwner >= 0 && e.ownerKeptCopy {
			e.sharers.set(prevOwner)
		}
		e.sharers.set(c)
		e.owner = -1
		b.sendData(line, c, grantS, delay, e.deps, e.depTime)
	}
	e.busy = false
	e.deps = nil
	e.pendingReq = arrivedMsg{}
	e.recallFrom = -1
	e.ownerKeptCopy = false
	b.drainWaitq(e)
}

// drainWaitq restarts the oldest queued request, if any.
func (b *bank) drainWaitq(e *dirEntry) {
	for !e.busy && len(e.waitq) > 0 {
		next := e.waitq[0]
		e.waitq = e.waitq[1:]
		b.startRequest(e, next)
	}
}

// sendData emits a data response.
func (b *bank) sendData(line uint64, c, grant int, delay sim.Tick, deps []trace.Dep, depTime sim.Tick) {
	b.sys.send(b.id, c, &protoMsg{typ: mData, line: line, core: c, aux: grant}, delay, deps, depTime)
}

// --- Synchronization ---

func (b *bank) lock(id uint64) *lockState {
	l, ok := b.locks[id]
	if !ok {
		l = &lockState{holder: -1}
		b.locks[id] = l
	}
	return l
}

func (b *bank) handleLockReq(am arrivedMsg) {
	l := b.lock(am.msg.id)
	if l.held {
		l.waitq = append(l.waitq, am)
		return
	}
	l.held = true
	l.holder = am.msg.core
	deps := []trace.Dep{{On: am.msg.traceID, Class: trace.DepCausal}}
	depTime := am.at
	if l.hasRel {
		deps = append(deps, l.relDep)
		if l.relTime > depTime {
			depTime = l.relTime
		}
	}
	b.sys.send(b.id, am.msg.core,
		&protoMsg{typ: mLockGrant, id: am.msg.id, core: am.msg.core},
		sim.Tick(b.sys.cfg.System.L2HitCycles), deps, depTime)
}

func (b *bank) handleLockRel(am arrivedMsg) {
	l := b.lock(am.msg.id)
	if !l.held || l.holder != am.msg.core {
		panic(fmt.Sprintf("cpu: bank %d lock %d released by non-holder %d", b.id, am.msg.id, am.msg.core))
	}
	l.held = false
	l.holder = -1
	l.relDep = trace.Dep{On: am.msg.traceID, Class: trace.DepSync}
	l.relTime = am.at
	l.hasRel = true
	if len(l.waitq) > 0 {
		next := l.waitq[0]
		l.waitq = l.waitq[1:]
		l.held = true
		l.holder = next.msg.core
		deps := []trace.Dep{
			{On: next.msg.traceID, Class: trace.DepCausal},
			l.relDep,
		}
		depTime := next.at
		if l.relTime > depTime {
			depTime = l.relTime
		}
		b.sys.send(b.id, next.msg.core,
			&protoMsg{typ: mLockGrant, id: next.msg.id, core: next.msg.core},
			sim.Tick(b.sys.cfg.System.L2HitCycles), deps, depTime)
	}
}

func (b *bank) handleBarArrive(am arrivedMsg) {
	bs, ok := b.barriers[am.msg.id]
	if !ok {
		bs = &barrierState{}
		b.barriers[am.msg.id] = bs
	}
	bs.arrived++
	bs.deps = append(bs.deps, trace.Dep{On: am.msg.traceID, Class: trace.DepSync})
	if am.at > bs.depTime {
		bs.depTime = am.at
	}
	if bs.arrived == b.sys.nodes {
		svc := sim.Tick(b.sys.cfg.System.L2HitCycles)
		for c := 0; c < b.sys.nodes; c++ {
			deps := make([]trace.Dep, len(bs.deps))
			copy(deps, bs.deps)
			b.sys.send(b.id, c,
				&protoMsg{typ: mBarRelease, id: am.msg.id, core: c},
				svc, deps, bs.depTime)
		}
		delete(b.barriers, am.msg.id)
	}
}
