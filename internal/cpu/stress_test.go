package cpu

import (
	"fmt"
	"testing"

	"onocsim/internal/config"
	"onocsim/internal/enoc"
	"onocsim/internal/hybrid"
	"onocsim/internal/noc"
	"onocsim/internal/onoc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// randomPrograms generates structurally valid random SPMD programs over a
// small shared address pool, with aligned barriers and balanced locks — the
// protocol fuzz driver.
func randomPrograms(seed uint64, cores, length int) []Program {
	rng := sim.NewRNG(seed)
	const pool = 48 // shared lines
	progs := make([]Program, cores)
	barriers := 1 + rng.Intn(3)
	for c := 0; c < cores; c++ {
		var p Program
		perPhase := length / (barriers + 1)
		bid := uint64(1)
		for phase := 0; phase <= barriers; phase++ {
			for i := 0; i < perPhase; i++ {
				addr := uint64(rng.Intn(pool)) * 64
				switch rng.Intn(6) {
				case 0, 1:
					p = append(p, Load(addr))
				case 2:
					p = append(p, Store(addr))
				case 3:
					p = append(p, Compute(int64(1+rng.Intn(20))))
				case 4:
					lock := uint64(1 + rng.Intn(4))
					p = append(p, Lock(lock), Load(addr), Store(addr), Unlock(lock))
				case 5:
					p = append(p, Store(addr), Load(addr+64))
				}
			}
			if phase < barriers {
				p = append(p, Barrier(bid))
				bid++
			}
		}
		progs[c] = p
	}
	return progs
}

// runOn executes random programs on a fabric and returns the result.
func runOn(t *testing.T, seed uint64, cores int, mk func() noc.Network, rec *trace.Recorder) RunResult {
	t.Helper()
	cfg := config.Default()
	cfg.System.Cores = cores
	progs := randomPrograms(seed, cores, 24)
	sys, err := NewSystem(cfg, progs, mk(), rec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(10_000_000)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return res
}

// TestProtocolStressRandomProgramsAllFabrics fuzzes the MSI + sync protocol
// with random sharing patterns on every fabric; any deadlock, credit leak,
// lost message, or assertion in the protocol surfaces as a timeout or panic.
func TestProtocolStressRandomProgramsAllFabrics(t *testing.T) {
	cfgDefault := config.Default()
	torusMesh := cfgDefault.Mesh
	torusMesh.Topology = "torus"
	torusMesh.VCs = 6
	fabrics := map[string]func() noc.Network{
		"ideal": func() noc.Network {
			return noc.NewIdeal(16, sim.Tick(cfgDefault.Ideal.LatencyCycles), cfgDefault.Ideal.BytesPerCycle)
		},
		"electrical": func() noc.Network { return enoc.New(16, cfgDefault.Mesh) },
		"torus":      func() noc.Network { return enoc.New(16, torusMesh) },
		"optical":    func() noc.Network { return onoc.New(16, cfgDefault.Optical) },
		"swmr":       func() noc.Network { return onoc.NewSWMR(16, cfgDefault.Optical) },
		"hybrid":     func() noc.Network { return hybrid.New(16, cfgDefault.Mesh, cfgDefault.Optical, 3) },
	}
	for name, mk := range fabrics {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 25; seed++ {
				res := runOn(t, seed, 16, mk, nil)
				if res.Makespan <= 0 || res.Messages == 0 {
					t.Fatalf("seed %d: degenerate run %+v", seed, res)
				}
			}
		})
	}
}

// TestProtocolStressDeterministic: the same seed must produce identical
// results, run after run, on the contended electrical fabric.
func TestProtocolStressDeterministic(t *testing.T) {
	cfg := config.Default()
	mk := func() noc.Network { return enoc.New(16, cfg.Mesh) }
	for seed := uint64(1); seed <= 5; seed++ {
		a := runOn(t, seed, 16, mk, nil)
		b := runOn(t, seed, 16, mk, nil)
		if a != b {
			t.Fatalf("seed %d nondeterministic: %+v vs %+v", seed, a, b)
		}
	}
}

// TestProtocolStressCaptureCompleteness: every random run must capture a
// complete, valid trace whose event count matches the message count.
func TestProtocolStressCaptureCompleteness(t *testing.T) {
	cfg := config.Default()
	for seed := uint64(30); seed <= 40; seed++ {
		rec := trace.NewRecorder(16)
		res := runOn(t, seed, 16, func() noc.Network {
			return noc.NewIdeal(16, sim.Tick(cfg.Ideal.LatencyCycles), cfg.Ideal.BytesPerCycle)
		}, rec)
		tr, err := rec.Finish(fmt.Sprintf("fuzz-%d", seed), res.Makespan)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if uint64(tr.NumEvents()) != res.Messages {
			t.Fatalf("seed %d: %d events, %d messages", seed, tr.NumEvents(), res.Messages)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: invalid trace: %v", seed, err)
		}
	}
}
