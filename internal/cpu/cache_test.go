package cpu

import (
	"testing"
	"testing/quick"
)

func TestL1HitMiss(t *testing.T) {
	c := newL1(4, 2, 64)
	line := c.lineOf(0x1000)
	if c.Access(line, false) {
		t.Fatal("cold access hit")
	}
	c.Fill(line, stateS)
	if !c.Access(line, false) {
		t.Fatal("read after S fill missed")
	}
	// A store needs M.
	if c.Access(line, true) {
		t.Fatal("store hit on S line")
	}
	c.Upgrade(line)
	if !c.Access(line, true) {
		t.Fatal("store missed after upgrade")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestL1LineOf(t *testing.T) {
	c := newL1(4, 2, 64)
	if c.lineOf(0) != 0 || c.lineOf(63) != 0 || c.lineOf(64) != 1 || c.lineOf(129) != 2 {
		t.Fatal("lineOf mapping wrong")
	}
}

func TestL1LRUEviction(t *testing.T) {
	// Direct-mapped-ish: 1 set × 2 ways; three distinct lines collide.
	c := newL1(1, 2, 64)
	c.Fill(1, stateS)
	c.Fill(2, stateM)
	// Touch line 1 so line 2 is LRU.
	if !c.Access(1, false) {
		t.Fatal("line 1 gone")
	}
	ev, dirty, ok := c.victim(3)
	if !ok {
		t.Fatal("full set reported free way")
	}
	if ev != 2 || !dirty {
		t.Fatalf("evicted %d dirty=%v, want 2 dirty", ev, dirty)
	}
	c.Fill(3, stateS)
	if c.State(2) != stateI {
		t.Fatal("evicted line still present")
	}
	if c.State(1) != stateS || c.State(3) != stateS {
		t.Fatal("survivors corrupted")
	}
	if c.Evictions != 1 || c.DirtyEvictions != 1 {
		t.Fatalf("eviction counters: %d/%d", c.Evictions, c.DirtyEvictions)
	}
}

func TestL1VictimFreeWay(t *testing.T) {
	c := newL1(1, 2, 64)
	c.Fill(1, stateS)
	if _, _, ok := c.victim(2); ok {
		t.Fatal("victim evicted despite a free way")
	}
}

func TestL1InvalidateAndDowngrade(t *testing.T) {
	c := newL1(2, 2, 64)
	c.Fill(4, stateM)
	if !c.Downgrade(4) {
		t.Fatal("downgrade of M line failed")
	}
	if c.State(4) != stateS {
		t.Fatal("downgrade did not leave S")
	}
	if c.Downgrade(4) {
		t.Fatal("downgrade of S line should report false")
	}
	was, present := c.Invalidate(4)
	if !present || was != stateS {
		t.Fatalf("invalidate: was=%v present=%v", was, present)
	}
	if _, present := c.Invalidate(4); present {
		t.Fatal("double invalidate reported present")
	}
}

func TestL1GeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { newL1(3, 2, 64) }, // sets not pow2
		func() { newL1(4, 0, 64) }, // no ways
		func() { newL1(4, 2, 48) }, // line not pow2
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid geometry accepted")
				}
			}()
			f()
		}()
	}
}

func TestL1FillInvalidPanics(t *testing.T) {
	c := newL1(2, 1, 64)
	defer func() {
		if recover() == nil {
			t.Error("fill with stateI accepted")
		}
	}()
	c.Fill(0, stateI)
}

func TestL1PropertyFillThenHit(t *testing.T) {
	// Property: immediately after filling a line, a read access hits.
	c := newL1(16, 4, 64)
	if err := quick.Check(func(raw uint32) bool {
		line := uint64(raw % 4096)
		if c.State(line) == stateI {
			if v, dirty, ok := c.victim(line); ok {
				_ = v
				_ = dirty
			}
			c.Fill(line, stateS)
		}
		return c.Access(line, false)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestL2BankTouch(t *testing.T) {
	b := newL2Bank(2, 2)
	if b.touch(10) {
		t.Fatal("cold touch hit")
	}
	if !b.touch(10) {
		t.Fatal("warm touch missed")
	}
	// Fill set 0 (even lines) beyond capacity: 10, 12, 14 collide.
	b.touch(12)
	b.touch(14) // evicts LRU (10)
	if b.touch(10) {
		t.Fatal("evicted line still present")
	}
	if b.Hits != 1 || b.Misses != 4 {
		t.Fatalf("hits=%d misses=%d", b.Hits, b.Misses)
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		b.set(i)
	}
	if b.count() != 5 {
		t.Fatalf("count = %d", b.count())
	}
	if !b.has(64) || b.has(1) {
		t.Fatal("membership wrong")
	}
	b.clear(64)
	if b.has(64) || b.count() != 4 {
		t.Fatal("clear failed")
	}
	var got []int
	b.forEach(func(i int) { got = append(got, i) })
	want := []int{0, 63, 127, 129}
	if len(got) != len(want) {
		t.Fatalf("forEach = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("forEach order = %v, want %v", got, want)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	good := Program{Compute(5), Load(0x40), Lock(1), Store(0x40), Unlock(1), Barrier(1)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	bad := []Program{
		{Op{Kind: 200}},                          // invalid kind
		{Op{Kind: OpCompute, Arg: 0}},            // zero compute
		{Lock(1), Lock(1), Unlock(1), Unlock(1)}, // re-acquire
		{Unlock(1)},                              // release unheld
		{Lock(1)},                                // ends holding
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad program %d accepted", i)
		}
	}
}

func TestOpConstructors(t *testing.T) {
	if Compute(0).Arg != 1 {
		t.Fatal("Compute floor to 1 cycle")
	}
	if Load(0x123).Kind != OpLoad || Store(0x123).Kind != OpStore {
		t.Fatal("memory op kinds")
	}
	if OpBarrier.String() != "barrier" || OpKind(99).String() != "invalid" {
		t.Fatal("op names")
	}
}
