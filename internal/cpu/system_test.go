package cpu

import (
	"testing"

	"onocsim/internal/config"
	"onocsim/internal/noc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// testConfig returns a small validated config for protocol tests.
func testConfig(cores int) config.Config {
	cfg := config.Default()
	cfg.System.Cores = cores
	cfg.MaxCycles = 2_000_000
	return cfg
}

// run builds a system on an ideal fabric and runs it to completion.
func run(t *testing.T, cfg config.Config, progs []Program, rec *trace.Recorder) (*System, RunResult) {
	t.Helper()
	net := noc.NewIdeal(cfg.System.Cores, sim.Tick(cfg.Ideal.LatencyCycles), cfg.Ideal.BytesPerCycle)
	sys, err := NewSystem(cfg, progs, net, rec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(cfg.MaxCyclesOrDefault())
	if err != nil {
		t.Fatal(err)
	}
	return sys, res
}

// idle returns a program that only computes.
func idle() Program { return Program{Compute(1)} }

// progsFor builds a program slice with prog at core 0 and idle elsewhere.
func progsFor(cores int, prog Program, others ...Program) []Program {
	ps := make([]Program, cores)
	ps[0] = prog
	for i := 1; i < cores; i++ {
		ps[i] = idle()
	}
	for i, p := range others {
		ps[i+1] = p
	}
	return ps
}

func TestComputeOnlyProgram(t *testing.T) {
	cfg := testConfig(4)
	_, res := run(t, cfg, []Program{
		{Compute(100)}, {Compute(50)}, {Compute(10)}, {Compute(200)},
	}, nil)
	// Makespan is the slowest core, plus the step-granularity slack of
	// the tick loop.
	if res.Makespan < 200 || res.Makespan > 210 {
		t.Fatalf("makespan = %d, want ≈200", res.Makespan)
	}
	if res.Messages != 0 {
		t.Fatalf("compute-only run sent %d messages", res.Messages)
	}
}

func TestLoadMissAndHit(t *testing.T) {
	cfg := testConfig(4)
	sys, _ := run(t, cfg, progsFor(4, Program{
		Load(0x10000), // miss: GetS + Data
		Load(0x10000), // hit
		Load(0x10010), // same line → hit
	}), nil)
	st := sys.Stats()
	if st.L1Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.L1Misses)
	}
	if st.L1Hits != 2 {
		t.Fatalf("hits = %d, want 2", st.L1Hits)
	}
	// One miss = GetS + Data = 2 messages.
	if sys.msgID != 2 {
		t.Fatalf("messages = %d, want 2", sys.msgID)
	}
}

func TestStoreUpgradePath(t *testing.T) {
	cfg := testConfig(4)
	sys, _ := run(t, cfg, progsFor(4, Program{
		Load(0x20000),  // GetS miss
		Store(0x20000), // S→M upgrade: GetM while present
		Store(0x20000), // hit in M
	}), nil)
	st := sys.Stats()
	if st.L1Misses != 2 {
		t.Fatalf("misses = %d, want 2 (GetS + upgrade)", st.L1Misses)
	}
	if st.L1Hits != 1 {
		t.Fatalf("hits = %d", st.L1Hits)
	}
	// GetS+Data + GetM+Data = 4 messages.
	if sys.msgID != 4 {
		t.Fatalf("messages = %d, want 4", sys.msgID)
	}
}

func TestInvalidationRound(t *testing.T) {
	cfg := testConfig(4)
	addr := uint64(0x30000)
	// Cores 1..3 read the line; then core 0 writes it, forcing INVs.
	reader := Program{Load(addr), Barrier(1), Compute(1), Barrier(2)}
	writer := Program{Compute(1), Barrier(1), Store(addr), Barrier(2)}
	sys, _ := run(t, cfg, []Program{writer, reader, reader, reader}, nil)
	var inv uint64
	for _, b := range sys.banks {
		inv += b.InvRounds
	}
	if inv != 1 {
		t.Fatalf("invalidation rounds = %d, want 1", inv)
	}
	// After the run, the writer must hold M and readers nothing.
	line := sys.cores[0].l1.lineOf(addr)
	if sys.cores[0].l1.State(line) != stateM {
		t.Fatalf("writer state = %v, want M", sys.cores[0].l1.State(line))
	}
	for c := 1; c < 4; c++ {
		if sys.cores[c].l1.State(line) != stateI {
			t.Fatalf("reader %d still has the line in %v", c, sys.cores[c].l1.State(line))
		}
	}
}

func TestRecallOnReadOfModified(t *testing.T) {
	cfg := testConfig(4)
	addr := uint64(0x40000)
	writer := Program{Store(addr), Barrier(1), Compute(1), Barrier(2)}
	reader := Program{Compute(1), Barrier(1), Load(addr), Barrier(2)}
	sys, _ := run(t, cfg, []Program{writer, reader, idleB(), idleB()}, nil)
	var recalls uint64
	for _, b := range sys.banks {
		recalls += b.Recalls
	}
	if recalls != 1 {
		t.Fatalf("recalls = %d, want 1", recalls)
	}
	line := sys.cores[0].l1.lineOf(addr)
	// Writer downgraded to S, reader has S.
	if sys.cores[0].l1.State(line) != stateS || sys.cores[1].l1.State(line) != stateS {
		t.Fatalf("states after recall: writer=%v reader=%v",
			sys.cores[0].l1.State(line), sys.cores[1].l1.State(line))
	}
}

// idleB is an idle program that still joins the two barriers.
func idleB() Program {
	return Program{Compute(1), Barrier(1), Compute(1), Barrier(2)}
}

func TestRecallForWriteInvalidatesOwner(t *testing.T) {
	cfg := testConfig(4)
	addr := uint64(0x50000)
	first := Program{Store(addr), Barrier(1), Compute(1), Barrier(2)}
	second := Program{Compute(1), Barrier(1), Store(addr), Barrier(2)}
	sys, _ := run(t, cfg, []Program{first, second, idleB(), idleB()}, nil)
	line := sys.cores[0].l1.lineOf(addr)
	if sys.cores[0].l1.State(line) != stateI {
		t.Fatalf("previous owner state = %v, want I", sys.cores[0].l1.State(line))
	}
	if sys.cores[1].l1.State(line) != stateM {
		t.Fatalf("new owner state = %v, want M", sys.cores[1].l1.State(line))
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := testConfig(4)
	cfg.System.L1Sets = 1
	cfg.System.L1Ways = 1 // single-entry L1: every new line evicts
	sys, _ := run(t, cfg, progsFor(4, Program{
		Store(0x1000), // M
		Load(0x2000),  // evicts dirty 0x1000 → WB
		Load(0x1000),  // line must come back from L2, not be lost
	}), nil)
	st := sys.Stats()
	if st.L1Evictions < 2 {
		t.Fatalf("evictions = %d, want ≥2", st.L1Evictions)
	}
	// The final load must observe the line as Uncached-at-home (WB
	// landed) rather than triggering a recall to ourselves.
	var recalls uint64
	for _, b := range sys.banks {
		recalls += b.Recalls
	}
	if recalls != 0 {
		t.Fatalf("self-recall happened: %d", recalls)
	}
}

func TestLockMutualExclusionOrder(t *testing.T) {
	cfg := testConfig(4)
	// All four cores contend for one lock and append to their critical
	// section in home-bank grant order; the test asserts grants are
	// serialized (lock holder count ≤ 1 at the protocol level is implied
	// by construction; here we check all cores completed).
	prog := func() Program {
		return Program{Lock(5), Compute(10), Unlock(5), Barrier(1)}
	}
	sys, res := run(t, cfg, []Program{prog(), prog(), prog(), prog()}, nil)
	if res.Makespan <= 0 {
		t.Fatal("run failed")
	}
	// Four grants were issued, serially: the lock's home bank shows no
	// waiting queue left.
	home := sys.homeOfSync(5)
	l := sys.banks[home].locks[5]
	if l == nil {
		t.Fatal("lock never materialized")
	}
	if l.held || len(l.waitq) != 0 {
		t.Fatalf("lock left held=%v waitq=%d", l.held, len(l.waitq))
	}
	// Serialization lower bound: 4 critical sections of 10 cycles.
	if res.Makespan < 40 {
		t.Fatalf("makespan %d too small for serialized critical sections", res.Makespan)
	}
}

func TestBarrierBlocksUntilAll(t *testing.T) {
	cfg := testConfig(4)
	// Core 3 computes long before the barrier; everyone's post-barrier
	// work must start after it.
	mk := func(pre int64) Program {
		return Program{Compute(pre), Barrier(9), Compute(1)}
	}
	_, res := run(t, cfg, []Program{mk(1), mk(1), mk(1), mk(500)}, nil)
	if res.Makespan < 500 {
		t.Fatalf("makespan %d — barrier did not hold cores", res.Makespan)
	}
}

func TestDeterministicMakespan(t *testing.T) {
	cfg := testConfig(16)
	mk := func() []Program {
		ps := make([]Program, 16)
		for c := range ps {
			ps[c] = Program{
				Store(uint64(0x1000 + c*64)),
				Load(uint64(0x1000 + ((c + 1) % 16 * 64))),
				Barrier(1),
				Load(uint64(0x9000 + c*64)),
				Barrier(2),
			}
		}
		return ps
	}
	_, r1 := run(t, cfg, mk(), nil)
	_, r2 := run(t, cfg, mk(), nil)
	if r1.Makespan != r2.Makespan || r1.Messages != r2.Messages {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", r1.Makespan, r1.Messages, r2.Makespan, r2.Messages)
	}
}

func TestCaptureRecordsEverything(t *testing.T) {
	cfg := testConfig(4)
	rec := trace.NewRecorder(4)
	prog := Program{Store(0x7000), Barrier(1), Load(0x7040), Barrier(2)}
	_, res := run(t, cfg, []Program{prog, prog, prog, prog}, rec)
	tr, err := rec.Finish("unit", res.Makespan)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEvents() == 0 {
		t.Fatal("no events captured")
	}
	if uint64(tr.NumEvents()) != res.Messages {
		t.Fatalf("captured %d events for %d messages", tr.NumEvents(), res.Messages)
	}
	st := tr.ComputeStats()
	if st.DepEdges[trace.DepSync] == 0 {
		t.Fatal("no sync dependencies captured despite barriers")
	}
	if st.DepEdges[trace.DepCausal] == 0 {
		t.Fatal("no causal dependencies captured despite coherence traffic")
	}
	if st.DepEdges[trace.DepProgram] == 0 {
		t.Fatal("no program-order dependencies captured")
	}
}

func TestRunTimeoutErrors(t *testing.T) {
	cfg := testConfig(4)
	net := noc.NewIdeal(4, 20, 16)
	sys, err := NewSystem(cfg, []Program{
		{Compute(100000)}, idle(), idle(), idle(),
	}, net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(100); err == nil {
		t.Fatal("bound exceeded but no error")
	}
}

func TestNewSystemRejectsMismatches(t *testing.T) {
	cfg := testConfig(4)
	net := noc.NewIdeal(4, 20, 16)
	if _, err := NewSystem(cfg, []Program{idle()}, net, nil); err == nil {
		t.Fatal("wrong program count accepted")
	}
	net2 := noc.NewIdeal(8, 20, 16)
	if _, err := NewSystem(cfg, []Program{idle(), idle(), idle(), idle()}, net2, nil); err == nil {
		t.Fatal("node/core mismatch accepted")
	}
	if _, err := NewSystem(cfg, []Program{{Unlock(1)}, idle(), idle(), idle()}, net, nil); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestRunsOnAllMessageSizes(t *testing.T) {
	// Control vs data message sizes must be distinguishable in traffic.
	cfg := testConfig(4)
	rec := trace.NewRecorder(4)
	_, res := run(t, cfg, progsFor(4, Program{Store(0xA000)}), rec)
	tr, err := rec.Finish("sizes", res.Makespan)
	if err != nil {
		t.Fatal(err)
	}
	sawCtrl, sawData := false, false
	for i := range tr.Events {
		switch tr.Events[i].Bytes {
		case cfg.System.CtrlBytes:
			sawCtrl = true
		case cfg.System.DataBytes:
			sawData = true
		default:
			t.Fatalf("unexpected message size %d", tr.Events[i].Bytes)
		}
	}
	if !sawCtrl || !sawData {
		t.Fatalf("ctrl=%v data=%v — both sizes expected", sawCtrl, sawData)
	}
}
