package cpu

import (
	"testing"

	"onocsim/internal/config"
	"onocsim/internal/enoc"
	"onocsim/internal/noc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// mcConfig returns a config with memory controllers enabled and a tiny L2,
// so off-chip traffic is guaranteed.
func mcConfig(ports int) config.Config {
	cfg := config.Default()
	cfg.System.Cores = 16
	cfg.System.MemPorts = ports
	cfg.System.L2SetsPerBank = 2
	cfg.System.L2Ways = 1
	cfg.MaxCycles = 5_000_000
	return cfg
}

func TestMemControllerTrafficAppears(t *testing.T) {
	// The same program with and without controllers: MC mode must produce
	// strictly more messages (the MemReq/MemResp round trips).
	prog := Program{
		Load(0x1000), Load(0x2000), Load(0x3000), Load(0x4000),
		Store(0x1000), Store(0x5000),
	}
	base := mcConfig(0)
	mc := mcConfig(4)
	_, resBase := run(t, base, progsFor(16, prog), nil)
	_, resMC := run(t, mc, progsFor(16, prog), nil)
	if resMC.Messages <= resBase.Messages {
		t.Fatalf("MC mode messages %d not above folded-latency mode %d",
			resMC.Messages, resBase.Messages)
	}
	// Off-chip latency must still be felt: a cold load takes at least
	// MemCycles end to end in both modes.
	if resMC.Makespan < sim.Tick(mc.System.MemCycles) {
		t.Fatalf("MC makespan %d below one memory access", resMC.Makespan)
	}
}

func TestMemControllerCornerMapping(t *testing.T) {
	for ports := 1; ports <= 4; ports++ {
		cfg := mcConfig(ports)
		net := noc.NewIdeal(16, 20, 16)
		sys, err := NewSystem(cfg, progsFor(16, idle()), net, nil)
		if err != nil {
			t.Fatal(err)
		}
		corners := map[int]bool{0: true, 3: true, 12: true, 15: true}
		seen := map[int]bool{}
		for line := uint64(0); line < 64; line++ {
			mcNode := sys.memControllerOf(line)
			if !corners[mcNode] {
				t.Fatalf("ports=%d line %d mapped to non-corner %d", ports, line, mcNode)
			}
			seen[mcNode] = true
		}
		if len(seen) != ports {
			t.Fatalf("ports=%d used %d controllers", ports, len(seen))
		}
	}
}

func TestMemControllerPortsOutOfRange(t *testing.T) {
	// Only four chip corners exist: a port count beyond that used to index
	// past the corner array at replay time (a panic on the first off-chip
	// miss). Both the config validator and NewSystem itself — which accepts
	// unvalidated configs — must reject it up front.
	for _, ports := range []int{-1, 5, 8} {
		cfg := mcConfig(ports)
		if err := cfg.Validate(); err == nil {
			t.Errorf("ports=%d: config.Validate accepted it", ports)
		}
		net := noc.NewIdeal(16, 20, 16)
		if _, err := NewSystem(cfg, progsFor(16, idle()), net, nil); err == nil {
			t.Errorf("ports=%d: NewSystem accepted it", ports)
		}
	}
	// The line-interleaved mapping itself must exercise exactly the derived
	// tiles even under a heavy address sweep (regression for the old
	// fixed-[4]int indexing).
	cfg := mcConfig(3)
	net := noc.NewIdeal(16, 20, 16)
	sys, err := NewSystem(cfg, progsFor(16, idle()), net, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{0: true, 3: true, 12: true}
	for line := uint64(0); line < 1<<12; line++ {
		if mc := sys.memControllerOf(line); !want[mc] {
			t.Fatalf("line %d mapped to tile %d outside the 3-port corner set", line, mc)
		}
	}
}

func TestMemControllerCaptureCompleteness(t *testing.T) {
	cfg := mcConfig(2)
	rec := trace.NewRecorder(16)
	prog := Program{Load(0x9000), Store(0xA000), Barrier(1)}
	progs := make([]Program, 16)
	for i := range progs {
		progs[i] = Program{Load(uint64(0x9000 + i*64)), Store(uint64(0xC000 + i*64)), Barrier(1)}
	}
	_ = prog
	_, res := run(t, cfg, progs, rec)
	tr, err := rec.Finish("mc", res.Makespan)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(tr.NumEvents()) != res.Messages {
		t.Fatalf("captured %d events for %d messages", tr.NumEvents(), res.Messages)
	}
	// MemReq/MemResp events must be present and respect causality chains.
	st := tr.ComputeStats()
	if st.DepEdges[trace.DepCausal] == 0 {
		t.Fatal("no causal edges captured")
	}
}

func TestMemControllerStressAndDeterminism(t *testing.T) {
	cfg := mcConfig(4)
	mk := func() noc.Network {
		return noc.NewIdeal(16, sim.Tick(cfg.Ideal.LatencyCycles), cfg.Ideal.BytesPerCycle)
	}
	for seed := uint64(50); seed <= 60; seed++ {
		progs := randomPrograms(seed, 16, 20)
		sys, err := NewSystem(cfg, progs, mk(), nil)
		if err != nil {
			t.Fatal(err)
		}
		a, err := sys.Run(cfg.MaxCyclesOrDefault())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sys2, err := NewSystem(cfg, randomPrograms(seed, 16, 20), mk(), nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sys2.Run(cfg.MaxCyclesOrDefault())
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		if a != b {
			t.Fatalf("seed %d nondeterministic with MCs: %+v vs %+v", seed, a, b)
		}
	}
}

func TestMemControllerOnElectricalMesh(t *testing.T) {
	// End-to-end on a real fabric: controllers at corners skew traffic
	// toward the edges; the run must still complete.
	cfg := mcConfig(4)
	progs := make([]Program, 16)
	for i := range progs {
		progs[i] = Program{
			Load(uint64(0x11000 + i*64)),
			Store(uint64(0x12000 + i*64)),
			Load(uint64(0x11000 + ((i + 1) % 16 * 64))),
			Barrier(1),
		}
	}
	net := enoc.New(16, cfg.Mesh)
	sys, err := NewSystem(cfg, progs, net, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(cfg.MaxCyclesOrDefault())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("degenerate run")
	}
}
