package cpu

import "fmt"

// lineState is the MSI state of an L1 line.
type lineState uint8

const (
	stateI lineState = iota
	stateS
	stateM
)

func (s lineState) String() string {
	switch s {
	case stateI:
		return "I"
	case stateS:
		return "S"
	case stateM:
		return "M"
	default:
		return "?"
	}
}

// l1Line is one L1 tag entry.
type l1Line struct {
	tag   uint64
	state lineState
	lru   uint64
}

// l1Cache is a set-associative private L1 with LRU replacement and MSI
// states. It is a tag-only timing model: data values are not simulated, only
// presence and coherence permissions.
type l1Cache struct {
	sets     int
	ways     int
	lineBits uint
	lines    [][]l1Line
	tick     uint64 // LRU clock

	// Stats.
	Hits, Misses, Evictions, DirtyEvictions uint64
}

// newL1 builds an L1 with the given geometry (sets must be a power of two).
func newL1(sets, ways, lineBytes int) *l1Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cpu: l1 sets=%d must be a positive power of two", sets))
	}
	if ways <= 0 {
		panic(fmt.Sprintf("cpu: l1 ways=%d must be positive", ways))
	}
	lb := uint(0)
	for 1<<lb < lineBytes {
		lb++
	}
	if 1<<lb != lineBytes {
		panic(fmt.Sprintf("cpu: line bytes=%d must be a power of two", lineBytes))
	}
	c := &l1Cache{sets: sets, ways: ways, lineBits: lb}
	// Single backing array, same trick as newL2Bank: cache construction
	// recurs on every captured system, so per-set slices add up.
	c.lines = make([][]l1Line, sets)
	backing := make([]l1Line, sets*ways)
	for i := range c.lines {
		c.lines[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return c
}

// lineOf maps a byte address to its line number.
func (c *l1Cache) lineOf(addr uint64) uint64 { return addr >> c.lineBits }

func (c *l1Cache) setOf(line uint64) int { return int(line) & (c.sets - 1) }

// lookup returns the way holding line, or nil.
func (c *l1Cache) lookup(line uint64) *l1Line {
	set := c.lines[c.setOf(line)]
	for i := range set {
		if set[i].state != stateI && set[i].tag == line {
			c.tick++
			set[i].lru = c.tick
			return &set[i]
		}
	}
	return nil
}

// Access checks whether a load (write=false) or store (write=true) hits.
func (c *l1Cache) Access(line uint64, write bool) bool {
	l := c.lookup(line)
	hit := l != nil && (!write || l.state == stateM)
	if hit {
		c.Hits++
	} else {
		c.Misses++
	}
	return hit
}

// victim picks the fill way for line's set, returning the evicted line
// number and whether it was dirty; ok=false means the set had a free way and
// nothing was evicted.
func (c *l1Cache) victim(line uint64) (evicted uint64, dirty, ok bool) {
	set := c.lines[c.setOf(line)]
	vi, vlru := -1, ^uint64(0)
	for i := range set {
		if set[i].state == stateI {
			return 0, false, false
		}
		if set[i].lru < vlru {
			vi, vlru = i, set[i].lru
		}
	}
	v := &set[vi]
	evicted, dirty = v.tag, v.state == stateM
	v.state = stateI
	c.Evictions++
	if dirty {
		c.DirtyEvictions++
	}
	return evicted, dirty, true
}

// Fill installs line with the given state, assuming any needed eviction was
// already performed via victim.
func (c *l1Cache) Fill(line uint64, st lineState) {
	if st == stateI {
		panic("cpu: filling L1 with invalid state")
	}
	set := c.lines[c.setOf(line)]
	for i := range set {
		if set[i].state == stateI {
			c.tick++
			set[i] = l1Line{tag: line, state: st, lru: c.tick}
			return
		}
	}
	panic("cpu: L1 fill with no free way — victim not evicted")
}

// Upgrade promotes an S line to M (store after GetM on a present line).
func (c *l1Cache) Upgrade(line uint64) {
	if l := c.lookup(line); l != nil {
		l.state = stateM
		return
	}
	panic(fmt.Sprintf("cpu: upgrading absent line %#x", line))
}

// Invalidate drops a line if present, reporting its prior state.
func (c *l1Cache) Invalidate(line uint64) (was lineState, present bool) {
	l := c.lookup(line)
	if l == nil {
		return stateI, false
	}
	was = l.state
	l.state = stateI
	return was, true
}

// Downgrade moves an M line to S (recall for a reader), reporting whether
// the line was present in M.
func (c *l1Cache) Downgrade(line uint64) bool {
	l := c.lookup(line)
	if l == nil || l.state != stateM {
		return false
	}
	l.state = stateS
	return true
}

// State reports the current state of a line (stateI if absent).
func (c *l1Cache) State(line uint64) lineState {
	if l := c.lookup(line); l != nil {
		return l.state
	}
	return stateI
}
