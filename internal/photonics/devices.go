// Package photonics models the physical layer of the optical network:
// per-device insertion losses, the worst-case link power budget, laser
// wall-plug power, and per-bit modulation/reception energies.
//
// The parameter defaults are literature constants from the Corona /
// PhoenixSim era (c. 2008-2012), which is the technology point the
// reproduced paper targets. Every constant is overridable so that
// sensitivity studies can sweep the technology.
package photonics

import (
	"fmt"
	"math"
)

// DeviceParams collects the per-element optical losses (in dB, positive
// numbers mean attenuation) and electrical energies of the photonic link.
type DeviceParams struct {
	// CouplerLossDB is the fiber-to-chip coupler loss (per traversal).
	CouplerLossDB float64
	// WaveguideLossDBPerCm is propagation loss of on-chip waveguides.
	WaveguideLossDBPerCm float64
	// BendLossDB is the loss of one 90° waveguide bend.
	BendLossDB float64
	// SplitterLossDB is the excess loss of one Y-splitter stage.
	SplitterLossDB float64
	// RingThroughLossDB is the loss a wavelength suffers passing one
	// off-resonance ring.
	RingThroughLossDB float64
	// RingDropLossDB is the loss of being dropped by an on-resonance ring.
	RingDropLossDB float64
	// PhotodetectorLossDB is the detector coupling loss.
	PhotodetectorLossDB float64
	// CrossingLossDB is the loss of one waveguide crossing.
	CrossingLossDB float64

	// DetectorSensitivityDBm is the minimum optical power a receiver
	// needs for the target bit-error rate.
	DetectorSensitivityDBm float64
	// LaserEfficiency is the laser wall-plug efficiency (electrical →
	// optical), a fraction in (0,1].
	LaserEfficiency float64

	// ModulationEnergyPJPerBit is the dynamic energy to modulate one bit.
	ModulationEnergyPJPerBit float64
	// ReceiverEnergyPJPerBit is the dynamic energy to receive one bit.
	ReceiverEnergyPJPerBit float64
	// TuningPowerMWPerRing is the static thermal trimming power per ring.
	TuningPowerMWPerRing float64
}

// DefaultDeviceParams returns the Corona/PhoenixSim-era constants used
// throughout the reconstruction.
func DefaultDeviceParams() DeviceParams {
	return DeviceParams{
		CouplerLossDB:            1.0,
		WaveguideLossDBPerCm:     1.0,
		BendLossDB:               0.005,
		SplitterLossDB:           0.2,
		RingThroughLossDB:        0.01,
		RingDropLossDB:           1.0,
		PhotodetectorLossDB:      0.1,
		CrossingLossDB:           0.05,
		DetectorSensitivityDBm:   -20,
		LaserEfficiency:          0.3,
		ModulationEnergyPJPerBit: 0.05,
		ReceiverEnergyPJPerBit:   0.1,
		TuningPowerMWPerRing:     0.02,
	}
}

// Validate reports the first physically meaningless parameter.
func (p *DeviceParams) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("photonics: %s=%g must be finite and ≥0", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"coupler_loss_db", p.CouplerLossDB},
		{"waveguide_loss_db_per_cm", p.WaveguideLossDBPerCm},
		{"bend_loss_db", p.BendLossDB},
		{"splitter_loss_db", p.SplitterLossDB},
		{"ring_through_loss_db", p.RingThroughLossDB},
		{"ring_drop_loss_db", p.RingDropLossDB},
		{"photodetector_loss_db", p.PhotodetectorLossDB},
		{"crossing_loss_db", p.CrossingLossDB},
		{"modulation_energy_pj_per_bit", p.ModulationEnergyPJPerBit},
		{"receiver_energy_pj_per_bit", p.ReceiverEnergyPJPerBit},
		{"tuning_power_mw_per_ring", p.TuningPowerMWPerRing},
	} {
		if err := check(c.name, c.v); err != nil {
			return err
		}
	}
	if p.LaserEfficiency <= 0 || p.LaserEfficiency > 1 {
		return fmt.Errorf("photonics: laser_efficiency=%g must be in (0,1]", p.LaserEfficiency)
	}
	if math.IsNaN(p.DetectorSensitivityDBm) || math.IsInf(p.DetectorSensitivityDBm, 0) {
		return fmt.Errorf("photonics: detector_sensitivity_dbm must be finite")
	}
	return nil
}

// PathProfile counts the optical elements along one worst-case source →
// destination lightpath of a topology. The loss budget is linear in these
// counts.
type PathProfile struct {
	Couplers        int
	WaveguideCm     float64
	Bends           int
	SplitterStages  int
	RingsPassed     int // off-resonance rings traversed
	RingsDropped    int // on-resonance drop operations (normally 1)
	Crossings       int
	PhotodetectorOn bool
}

// LossDB returns the total insertion loss of the path in dB.
func (p DeviceParams) LossDB(path PathProfile) float64 {
	loss := float64(path.Couplers)*p.CouplerLossDB +
		path.WaveguideCm*p.WaveguideLossDBPerCm +
		float64(path.Bends)*p.BendLossDB +
		float64(path.SplitterStages)*p.SplitterLossDB +
		float64(path.RingsPassed)*p.RingThroughLossDB +
		float64(path.RingsDropped)*p.RingDropLossDB +
		float64(path.Crossings)*p.CrossingLossDB
	if path.PhotodetectorOn {
		loss += p.PhotodetectorLossDB
	}
	return loss
}

// DBmToMW converts dBm to milliwatts.
func DBmToMW(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MWToDBm converts milliwatts to dBm; zero or negative power yields -Inf.
func MWToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// LaserPowerPerWavelengthMW returns the *electrical* wall-plug power one
// wavelength needs so the detector still sees its sensitivity floor after
// the worst-case path loss.
func (p DeviceParams) LaserPowerPerWavelengthMW(worstLossDB float64) float64 {
	requiredAtLaserDBm := p.DetectorSensitivityDBm + worstLossDB
	opticalMW := DBmToMW(requiredAtLaserDBm)
	return opticalMW / p.LaserEfficiency
}
