package photonics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultDeviceParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []func(*DeviceParams){
		func(p *DeviceParams) { p.CouplerLossDB = -1 },
		func(p *DeviceParams) { p.WaveguideLossDBPerCm = math.NaN() },
		func(p *DeviceParams) { p.RingDropLossDB = math.Inf(1) },
		func(p *DeviceParams) { p.LaserEfficiency = 0 },
		func(p *DeviceParams) { p.LaserEfficiency = 1.5 },
		func(p *DeviceParams) { p.DetectorSensitivityDBm = math.NaN() },
		func(p *DeviceParams) { p.TuningPowerMWPerRing = -0.1 },
	}
	for i, m := range mutations {
		p := DefaultDeviceParams()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLossLinearity(t *testing.T) {
	p := DefaultDeviceParams()
	base := PathProfile{Couplers: 1, WaveguideCm: 2, RingsPassed: 10, RingsDropped: 1, PhotodetectorOn: true}
	l1 := p.LossDB(base)
	more := base
	more.RingsPassed += 100
	l2 := p.LossDB(more)
	if got, want := l2-l1, 100*p.RingThroughLossDB; math.Abs(got-want) > 1e-9 {
		t.Fatalf("100 extra rings added %g dB, want %g", got, want)
	}
	if p.LossDB(PathProfile{}) != 0 {
		t.Fatal("empty path should have zero loss")
	}
}

func TestDBmConversionsInverse(t *testing.T) {
	if err := quick.Check(func(raw int16) bool {
		dbm := float64(raw) / 100 // −327..327 dBm range
		return math.Abs(MWToDBm(DBmToMW(dbm))-dbm) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(MWToDBm(0), -1) {
		t.Fatal("MWToDBm(0) should be -Inf")
	}
	if DBmToMW(0) != 1 {
		t.Fatal("0 dBm should be 1 mW")
	}
}

func TestLaserPowerMonotoneInLoss(t *testing.T) {
	p := DefaultDeviceParams()
	prev := 0.0
	for loss := 0.0; loss <= 30; loss += 5 {
		pw := p.LaserPowerPerWavelengthMW(loss)
		if pw <= prev {
			t.Fatalf("laser power not increasing with loss: %g at %g dB", pw, loss)
		}
		prev = pw
	}
	// 10 dB more loss = 10x more laser power.
	r := p.LaserPowerPerWavelengthMW(20) / p.LaserPowerPerWavelengthMW(10)
	if math.Abs(r-10) > 1e-9 {
		t.Fatalf("10 dB should cost 10x, got %gx", r)
	}
}

func TestCrossbarGeometry(t *testing.T) {
	g := CrossbarGeometry{Nodes: 64, WavelengthsPerChannel: 16, DieEdgeCm: 2}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 64 nodes → 8 rows → serpentine 16 cm.
	if got := g.SerpentineLengthCm(); got != 16 {
		t.Fatalf("serpentine = %g cm, want 16", got)
	}
	// rings: 64*63*16 modulators + 64*16 receivers.
	if got, want := g.TotalRings(), 64*63*16+64*16; got != want {
		t.Fatalf("rings = %d, want %d", got, want)
	}
	wp := g.WorstPath()
	if wp.RingsPassed != (64-2)*16 {
		t.Fatalf("worst path rings passed = %d", wp.RingsPassed)
	}
	if !wp.PhotodetectorOn || wp.RingsDropped != 1 {
		t.Fatal("worst path must end in one drop + detector")
	}
}

func TestCrossbarGeometryRejections(t *testing.T) {
	bad := []CrossbarGeometry{
		{Nodes: 1, WavelengthsPerChannel: 1, DieEdgeCm: 1},
		{Nodes: 4, WavelengthsPerChannel: 0, DieEdgeCm: 1},
		{Nodes: 4, WavelengthsPerChannel: 1, DieEdgeCm: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("geometry %d accepted", i)
		}
	}
}

func TestComputeBudget(t *testing.T) {
	p := DefaultDeviceParams()
	g := CrossbarGeometry{Nodes: 16, WavelengthsPerChannel: 8, DieEdgeCm: 2}
	b, err := ComputeBudget(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if b.WorstLossDB <= 0 {
		t.Fatal("non-positive worst loss")
	}
	if b.LaserPowerMW <= 0 || b.TuningPowerMW <= 0 {
		t.Fatal("non-positive static power")
	}
	if b.WavelengthsOnChip != 16*8 {
		t.Fatalf("wavelengths = %d", b.WavelengthsOnChip)
	}
	if b.TotalRings != g.TotalRings() {
		t.Fatal("ring count mismatch")
	}

	// More nodes → strictly more loss and more laser power.
	g2 := g
	g2.Nodes = 64
	b2, err := ComputeBudget(p, g2)
	if err != nil {
		t.Fatal(err)
	}
	if b2.WorstLossDB <= b.WorstLossDB || b2.LaserPowerMW <= b.LaserPowerMW {
		t.Fatalf("scaling up nodes did not increase budget: %+v vs %+v", b2, b)
	}
}

func TestComputeBudgetRejectsInvalid(t *testing.T) {
	p := DefaultDeviceParams()
	p.LaserEfficiency = -1
	if _, err := ComputeBudget(p, CrossbarGeometry{Nodes: 4, WavelengthsPerChannel: 1, DieEdgeCm: 1}); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := ComputeBudget(DefaultDeviceParams(), CrossbarGeometry{}); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestDynamicEnergy(t *testing.T) {
	p := DefaultDeviceParams()
	if got, want := p.DynamicEnergyPJ(1000), 1000*(p.ModulationEnergyPJPerBit+p.ReceiverEnergyPJPerBit); math.Abs(got-want) > 1e-9 {
		t.Fatalf("dynamic energy = %g, want %g", got, want)
	}
	if p.DynamicEnergyPJ(0) != 0 {
		t.Fatal("zero bits should cost zero energy")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 64: 6, 65: 7}
	for n, want := range cases {
		if got := log2ceil(n); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", n, got, want)
		}
	}
}
