package photonics

import "math"

// RateDerateTable maps serpentine hop count → modulation-rate serialization
// multiplier under a drooped laser: halving the rate recovers ≈3 dB of link
// margin, so a lightpath whose loss exceeds the shrunken budget by e dB is
// slowed by 2^ceil(e/3) (capped at 2^16). It returns nil when every path
// still closes at full rate, so fault-free consumers stay branch-free. Both
// the crossbar fabrics and the closed-form analytic model derive their
// per-pair derate factors from this one table, keeping the physical story
// in a single place.
func RateDerateTable(p DeviceParams, g CrossbarGeometry, b Budget, droopDB float64) []int64 {
	if droopDB <= 0 || b.MaxFeasibleHops >= g.Nodes-1 {
		return nil
	}
	feasible := b.WorstLossDB - droopDB
	tab := make([]int64, g.Nodes)
	for h := 1; h < g.Nodes; h++ {
		tab[h] = 1
		if excess := p.LossDB(g.PathAt(h)) - feasible; excess > 0 {
			shift := int(math.Ceil(excess / 3))
			if shift > 16 {
				shift = 16
			}
			tab[h] = 1 << shift
		}
	}
	return tab
}
