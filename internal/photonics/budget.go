package photonics

import "fmt"

// CrossbarGeometry describes the physical layout of a Corona-class
// multiple-writer single-reader (MWSR) serpentine crossbar well enough to
// derive its worst-case lightpath and its static power.
type CrossbarGeometry struct {
	// Nodes is the number of network endpoints (one home channel each).
	Nodes int
	// WavelengthsPerChannel is the WDM degree of each home channel.
	WavelengthsPerChannel int
	// DieEdgeCm is the physical die edge; the serpentine waveguide length
	// scales with it.
	DieEdgeCm float64
}

// Validate reports the first invalid geometry field.
func (g CrossbarGeometry) Validate() error {
	if g.Nodes < 2 {
		return fmt.Errorf("photonics: crossbar needs ≥2 nodes, got %d", g.Nodes)
	}
	if g.WavelengthsPerChannel < 1 {
		return fmt.Errorf("photonics: wavelengths per channel must be ≥1, got %d", g.WavelengthsPerChannel)
	}
	if g.DieEdgeCm <= 0 {
		return fmt.Errorf("photonics: die edge must be positive, got %g", g.DieEdgeCm)
	}
	return nil
}

// SerpentineLengthCm estimates the full serpentine waveguide length: the
// waveguide snakes across the die once per node row. We model the standard
// layout where the serpentine visits every node once: length ≈ nodes/rowlen
// passes of the die edge, with rowlen = sqrt(nodes).
func (g CrossbarGeometry) SerpentineLengthCm() float64 {
	rows := 1
	for rows*rows < g.Nodes {
		rows++
	}
	return float64(rows) * g.DieEdgeCm
}

// WorstPath returns the element counts of the longest lightpath: a writer
// adjacent (just downstream) of the reader must send light almost the entire
// serpentine length, passing the modulator banks of every intermediate node.
func (g CrossbarGeometry) WorstPath() PathProfile {
	// Each intermediate node contributes one modulator bank of
	// off-resonance rings on this channel (WavelengthsPerChannel rings),
	// and the die-spanning serpentine contributes bends: 2 per row.
	rows := 1
	for rows*rows < g.Nodes {
		rows++
	}
	return PathProfile{
		Couplers:        2, // laser in, (conservatively) one more distribution coupler
		WaveguideCm:     g.SerpentineLengthCm(),
		Bends:           2 * rows,
		SplitterStages:  log2ceil(g.Nodes), // laser power distribution tree
		RingsPassed:     (g.Nodes - 2) * g.WavelengthsPerChannel,
		RingsDropped:    1,
		Crossings:       0,
		PhotodetectorOn: true,
	}
}

// TotalRings returns the number of microrings in the crossbar: every node
// carries a modulator bank for every other node's home channel, plus its own
// receive bank.
func (g CrossbarGeometry) TotalRings() int {
	modulators := g.Nodes * (g.Nodes - 1) * g.WavelengthsPerChannel
	receivers := g.Nodes * g.WavelengthsPerChannel
	return modulators + receivers
}

// Budget is the resolved static power budget of the crossbar.
type Budget struct {
	WorstLossDB        float64
	LaserPowerMW       float64 // total electrical laser power, all wavelengths
	TuningPowerMW      float64 // total thermal trimming power, all rings
	TotalRings         int
	WavelengthsOnChip  int
	SerpentineLengthCm float64
}

// ComputeBudget resolves the full static budget for a geometry under the
// given device parameters.
func ComputeBudget(p DeviceParams, g CrossbarGeometry) (Budget, error) {
	if err := p.Validate(); err != nil {
		return Budget{}, err
	}
	if err := g.Validate(); err != nil {
		return Budget{}, err
	}
	worst := p.LossDB(g.WorstPath())
	perWavelength := p.LaserPowerPerWavelengthMW(worst)
	wavelengths := g.Nodes * g.WavelengthsPerChannel
	rings := g.TotalRings()
	return Budget{
		WorstLossDB:        worst,
		LaserPowerMW:       perWavelength * float64(wavelengths),
		TuningPowerMW:      p.TuningPowerMWPerRing * float64(rings),
		TotalRings:         rings,
		WavelengthsOnChip:  wavelengths,
		SerpentineLengthCm: g.SerpentineLengthCm(),
	}, nil
}

// DynamicEnergyPJ returns the endpoint dynamic energy of moving bits
// optically: modulation at the writer plus reception at the reader.
func (p DeviceParams) DynamicEnergyPJ(bits int64) float64 {
	return float64(bits) * (p.ModulationEnergyPJPerBit + p.ReceiverEnergyPJPerBit)
}

func log2ceil(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}
