package photonics

import (
	"fmt"
	"math"
)

// CrossbarGeometry describes the physical layout of a Corona-class
// multiple-writer single-reader (MWSR) serpentine crossbar well enough to
// derive its worst-case lightpath and its static power.
type CrossbarGeometry struct {
	// Nodes is the number of network endpoints (one home channel each).
	Nodes int
	// WavelengthsPerChannel is the WDM degree of each home channel.
	WavelengthsPerChannel int
	// DieEdgeCm is the physical die edge; the serpentine waveguide length
	// scales with it.
	DieEdgeCm float64
}

// Validate reports the first invalid geometry field.
func (g CrossbarGeometry) Validate() error {
	if g.Nodes < 2 {
		return fmt.Errorf("photonics: crossbar needs ≥2 nodes, got %d", g.Nodes)
	}
	if g.WavelengthsPerChannel < 1 {
		return fmt.Errorf("photonics: wavelengths per channel must be ≥1, got %d", g.WavelengthsPerChannel)
	}
	if g.DieEdgeCm <= 0 {
		return fmt.Errorf("photonics: die edge must be positive, got %g", g.DieEdgeCm)
	}
	return nil
}

// rows returns the edge length of the (ceil-)square node grid the serpentine
// snakes across: the smallest r with r² ≥ Nodes. Both the waveguide length
// and the bend count derive from it.
func (g CrossbarGeometry) rows() int {
	r := 1
	for r*r < g.Nodes {
		r++
	}
	return r
}

// SerpentineLengthCm estimates the full serpentine waveguide length: the
// waveguide snakes across the die once per node row. We model the standard
// layout where the serpentine visits every node once: length ≈ nodes/rowlen
// passes of the die edge, with rowlen = sqrt(nodes).
func (g CrossbarGeometry) SerpentineLengthCm() float64 {
	return float64(g.rows()) * g.DieEdgeCm
}

// WorstPath returns the element counts of the longest lightpath: a writer
// adjacent (just downstream) of the reader must send light almost the entire
// serpentine length, passing the modulator banks of every intermediate node.
func (g CrossbarGeometry) WorstPath() PathProfile {
	// Each intermediate node contributes one modulator bank of
	// off-resonance rings on this channel (WavelengthsPerChannel rings),
	// and the die-spanning serpentine contributes bends: 2 per row.
	return PathProfile{
		Couplers:        2, // laser in, (conservatively) one more distribution coupler
		WaveguideCm:     g.SerpentineLengthCm(),
		Bends:           2 * g.rows(),
		SplitterStages:  log2ceil(g.Nodes), // laser power distribution tree
		RingsPassed:     (g.Nodes - 2) * g.WavelengthsPerChannel,
		RingsDropped:    1,
		Crossings:       0,
		PhotodetectorOn: true,
	}
}

// PathAt returns the element counts of a lightpath spanning hops serpentine
// positions (1 ≤ hops ≤ Nodes−1): waveguide length and bends scale with the
// traversed fraction of the serpentine, while couplers, the distribution
// tree, and the drop stage are hop-independent. PathAt(Nodes−1) equals
// WorstPath, anchoring the per-hop loss curve to the budget's worst case.
func (g CrossbarGeometry) PathAt(hops int) PathProfile {
	if hops < 1 {
		hops = 1
	}
	if max := g.Nodes - 1; hops > max {
		hops = max
	}
	frac := float64(hops) / float64(g.Nodes-1)
	return PathProfile{
		Couplers:        2,
		WaveguideCm:     g.SerpentineLengthCm() * frac,
		Bends:           int(math.Ceil(float64(2*g.rows()) * frac)),
		SplitterStages:  log2ceil(g.Nodes),
		RingsPassed:     (hops - 1) * g.WavelengthsPerChannel,
		RingsDropped:    1,
		Crossings:       0,
		PhotodetectorOn: true,
	}
}

// TotalRings returns the number of microrings in the crossbar: every node
// carries a modulator bank for every other node's home channel, plus its own
// receive bank.
func (g CrossbarGeometry) TotalRings() int {
	modulators := g.Nodes * (g.Nodes - 1) * g.WavelengthsPerChannel
	receivers := g.Nodes * g.WavelengthsPerChannel
	return modulators + receivers
}

// Budget is the resolved static power budget of the crossbar.
type Budget struct {
	WorstLossDB        float64
	LaserPowerMW       float64 // total electrical laser power, all wavelengths
	TuningPowerMW      float64 // total thermal trimming power, all rings
	TotalRings         int
	WavelengthsOnChip  int
	SerpentineLengthCm float64
	// LaserDroopDB is the injected power droop the budget was resolved
	// under (0 for a healthy laser), and MaxFeasibleHops the longest
	// lightpath whose loss still fits the shrunken margin. Hops beyond it
	// are not dark — the fabric derates them — but a system architect
	// would call them infeasible at full rate.
	LaserDroopDB    float64
	MaxFeasibleHops int
}

// ComputeBudget resolves the full static budget for a geometry under the
// given device parameters.
func ComputeBudget(p DeviceParams, g CrossbarGeometry) (Budget, error) {
	return ComputeBudgetWithDroop(p, g, 0)
}

// ComputeBudgetWithDroop resolves the budget for a laser whose output has
// drooped by droopDB below nominal. The laser is still provisioned for the
// nominal worst-case loss (WorstLossDB, LaserPowerMW are droop-independent),
// but the margin actually available shrinks: lightpaths whose loss exceeds
// WorstLossDB−droopDB no longer close at full modulation rate, which
// MaxFeasibleHops exposes and the fabrics consume via DerateFactor tables.
func ComputeBudgetWithDroop(p DeviceParams, g CrossbarGeometry, droopDB float64) (Budget, error) {
	if err := p.Validate(); err != nil {
		return Budget{}, err
	}
	if err := g.Validate(); err != nil {
		return Budget{}, err
	}
	if droopDB < 0 {
		return Budget{}, fmt.Errorf("photonics: laser droop must be ≥0 dB, got %g", droopDB)
	}
	worst := p.LossDB(g.WorstPath())
	perWavelength := p.LaserPowerPerWavelengthMW(worst)
	wavelengths := g.Nodes * g.WavelengthsPerChannel
	rings := g.TotalRings()
	b := Budget{
		WorstLossDB:        worst,
		LaserPowerMW:       perWavelength * float64(wavelengths),
		TuningPowerMW:      p.TuningPowerMWPerRing * float64(rings),
		TotalRings:         rings,
		WavelengthsOnChip:  wavelengths,
		SerpentineLengthCm: g.SerpentineLengthCm(),
		LaserDroopDB:       droopDB,
		MaxFeasibleHops:    g.Nodes - 1,
	}
	if droopDB > 0 {
		b.MaxFeasibleHops = g.MaxFeasibleHops(p, droopDB)
	}
	return b, nil
}

// MaxFeasibleHops returns the longest serpentine hop count whose lightpath
// loss fits within the droop-shrunken margin WorstLossDB−droopDB, or 0 when
// even adjacent nodes cannot close the link at full rate. Loss grows
// monotonically with hops, so a linear scan from the short end suffices.
func (g CrossbarGeometry) MaxFeasibleHops(p DeviceParams, droopDB float64) int {
	feasible := p.LossDB(g.WorstPath()) - droopDB
	max := 0
	for h := 1; h < g.Nodes; h++ {
		if p.LossDB(g.PathAt(h)) > feasible {
			break
		}
		max = h
	}
	return max
}

// DynamicEnergyPJ returns the endpoint dynamic energy of moving bits
// optically: modulation at the writer plus reception at the reader.
func (p DeviceParams) DynamicEnergyPJ(bits int64) float64 {
	return float64(bits) * (p.ModulationEnergyPJPerBit + p.ReceiverEnergyPJPerBit)
}

func log2ceil(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}
