package photonics

import (
	"math"
	"testing"
)

// TestRowsNonSquare pins rows() — the shared helper behind the serpentine
// length, the bend count, and the per-hop path profiles — on node counts
// that are not perfect squares: the smallest r with r² ≥ Nodes.
func TestRowsNonSquare(t *testing.T) {
	cases := []struct{ nodes, want int }{
		{2, 2}, {3, 2}, {4, 2}, {5, 3}, {9, 3}, {10, 4}, {16, 4}, {17, 5}, {63, 8}, {64, 8}, {65, 9},
	}
	for _, c := range cases {
		g := CrossbarGeometry{Nodes: c.nodes, WavelengthsPerChannel: 4, DieEdgeCm: 2}
		if got := g.rows(); got != c.want {
			t.Errorf("rows(%d nodes) = %d, want %d", c.nodes, got, c.want)
		}
		if got, want := g.SerpentineLengthCm(), float64(c.want)*2; got != want {
			t.Errorf("serpentine(%d nodes) = %g, want %g", c.nodes, got, want)
		}
	}
}

// TestPathAtAnchorsWorstPath checks the per-hop loss curve ends exactly at
// the budget's worst case and grows monotonically with distance.
func TestPathAtAnchorsWorstPath(t *testing.T) {
	p := DefaultDeviceParams()
	for _, nodes := range []int{10, 16, 64} {
		g := CrossbarGeometry{Nodes: nodes, WavelengthsPerChannel: 16, DieEdgeCm: 2}
		if got, want := g.PathAt(nodes-1), g.WorstPath(); got != want {
			t.Errorf("%d nodes: PathAt(N-1) = %+v, want WorstPath %+v", nodes, got, want)
		}
		prev := math.Inf(-1)
		for h := 1; h < nodes; h++ {
			loss := p.LossDB(g.PathAt(h))
			if loss < prev {
				t.Fatalf("%d nodes: loss not monotone at hop %d (%g < %g)", nodes, h, loss, prev)
			}
			prev = loss
		}
		// Out-of-range hops clamp instead of exploding.
		if g.PathAt(0) != g.PathAt(1) || g.PathAt(nodes+5) != g.PathAt(nodes-1) {
			t.Errorf("%d nodes: PathAt does not clamp", nodes)
		}
	}
}

// TestMaxFeasibleHopsMonotone checks more droop never lengthens the feasible
// range, zero-margin keeps every hop feasible, and the budget carries it.
func TestMaxFeasibleHopsMonotone(t *testing.T) {
	p := DefaultDeviceParams()
	g := CrossbarGeometry{Nodes: 64, WavelengthsPerChannel: 16, DieEdgeCm: 2}
	prev := g.Nodes - 1
	for droop := 0.0; droop <= 30; droop += 1.5 {
		h := g.MaxFeasibleHops(p, droop)
		if h > prev {
			t.Fatalf("droop %g dB lengthened feasible range: %d > %d", droop, h, prev)
		}
		prev = h
	}
	if g.MaxFeasibleHops(p, 0) != g.Nodes-1 {
		t.Error("zero droop must keep every hop feasible")
	}

	b, err := ComputeBudgetWithDroop(p, g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if b.LaserDroopDB != 6 || b.MaxFeasibleHops != g.MaxFeasibleHops(p, 6) {
		t.Errorf("budget droop fields: %+v", b)
	}
	clean, err := ComputeBudget(p, g)
	if err != nil {
		t.Fatal(err)
	}
	if clean.LaserDroopDB != 0 || clean.MaxFeasibleHops != g.Nodes-1 {
		t.Errorf("clean budget droop fields: %+v", clean)
	}
	if _, err := ComputeBudgetWithDroop(p, g, -1); err == nil {
		t.Error("negative droop accepted")
	}
}
