package sweep

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"onocsim"
	"onocsim/internal/config"
)

// TestFrontProperties drives the Pareto extraction with random point sets
// and checks the three defining properties: the front is a subset of the
// input, no front point dominates another front point, and every excluded
// point is dominated by (or an objective-duplicate of) some front point.
func TestFrontProperties(t *testing.T) {
	type rawPoint struct {
		Lat, Thr, Pow uint8 // small domains force plenty of dominance/ties
	}
	prop := func(raw []rawPoint) bool {
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{
				Label:         string(rune('a'+i%26)) + string(rune('0'+i/26%10)),
				LatencyCycles: float64(r.Lat % 8),
				ThroughputBpc: float64(r.Thr % 8),
				PowerMW:       float64(r.Pow % 8),
			}
		}
		front := Front(pts)

		inInput := func(p Point) bool {
			for _, q := range pts {
				if p == q {
					return true
				}
			}
			return false
		}
		for _, p := range front {
			if !inInput(p) {
				t.Logf("front point %+v not in input", p)
				return false
			}
		}
		for i, p := range front {
			for j, q := range front {
				if i != j && p.Dominates(q) {
					t.Logf("front point %+v dominates front point %+v", p, q)
					return false
				}
			}
		}
		onFront := func(p Point) bool {
			for _, q := range front {
				if p == q {
					return true
				}
			}
			return false
		}
		for _, p := range pts {
			if onFront(p) {
				continue
			}
			covered := false
			for _, q := range front {
				sameObjectives := q.LatencyCycles == p.LatencyCycles &&
					q.ThroughputBpc == p.ThroughputBpc && q.PowerMW == p.PowerMW
				if q.Dominates(p) || sameObjectives {
					covered = true
					break
				}
			}
			if !covered {
				t.Logf("excluded point %+v dominated by no front point", p)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDominates(t *testing.T) {
	base := Point{LatencyCycles: 10, ThroughputBpc: 5, PowerMW: 100}
	cases := []struct {
		name string
		p, q Point
		want bool
	}{
		{"strictly better everywhere", Point{LatencyCycles: 9, ThroughputBpc: 6, PowerMW: 90}, base, true},
		{"better on one axis only", Point{LatencyCycles: 9, ThroughputBpc: 5, PowerMW: 100}, base, true},
		{"identical", base, base, false},
		{"tradeoff", Point{LatencyCycles: 9, ThroughputBpc: 4, PowerMW: 100}, base, false},
		{"worse", Point{LatencyCycles: 11, ThroughputBpc: 5, PowerMW: 100}, base, false},
	}
	for _, c := range cases {
		if got := c.p.Dominates(c.q); got != c.want {
			t.Errorf("%s: Dominates = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestExpandCollapsesUnobservableAxes checks the fingerprint-level dedup:
// electrical arms cannot observe the wavelength or fault axes, so a grid
// that varies only those must collapse to one job per (cores, kernel).
func TestExpandCollapsesUnobservableAxes(t *testing.T) {
	spec := config.Sweep{
		Networks:    []config.NetworkKind{config.NetElectrical},
		Cores:       []int{16},
		Wavelengths: []int{4, 16, 64},
		Faults:      []string{"off", "heavy"},
		Kernels:     []string{"stencil"},
		Quick:       true,
	}
	spec.Normalize()
	arms, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(arms) != 1 {
		t.Fatalf("electrical grid with 6 unobservable cells expanded to %d arms, want 1", len(arms))
	}
	if got := len(arms[0].Labels); got != 6 {
		t.Fatalf("collapsed arm carries %d labels, want 6", got)
	}
	if arms[0].Label != arms[0].Labels[0] {
		t.Fatalf("canonical label %q is not the first sorted label %q", arms[0].Label, arms[0].Labels[0])
	}
}

func TestExpandDeterministic(t *testing.T) {
	spec := config.DefaultSweep()
	a, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Expand is not deterministic for the same spec")
	}
}

// TestRunDefaultGrid runs the standard quick grid end to end and pins the
// acceptance properties: the grid has at least 64 arms, the analytic
// prefilter prunes at least 30% of the unique jobs before simulation, and
// the rendered JSON is byte-identical across reruns (fresh sessions, so the
// second run recomputes rather than just replaying the memo).
func TestRunDefaultGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick grid in -short mode")
	}
	spec := config.DefaultSweep()
	if spec.Arms() < 64 {
		t.Fatalf("default grid has %d arms, want >= 64", spec.Arms())
	}
	run := func() (*Result, []byte) {
		res, err := Run(context.Background(), spec, Options{Session: onocsim.NewSession("")})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	res, first := run()

	if res.Arms != spec.Arms() {
		t.Errorf("Arms = %d, want %d", res.Arms, spec.Arms())
	}
	if res.UniqueJobs >= res.Arms {
		t.Errorf("no dedup: %d unique jobs from %d arms", res.UniqueJobs, res.Arms)
	}
	pruneFrac := float64(res.Pruned) / float64(res.UniqueJobs)
	if pruneFrac < 0.30 {
		t.Errorf("prefilter pruned %.0f%% of %d unique jobs, want >= 30%%", 100*pruneFrac, res.UniqueJobs)
	}
	if res.Simulated != res.UniqueJobs-res.Pruned {
		t.Errorf("Simulated = %d, want %d", res.Simulated, res.UniqueJobs-res.Pruned)
	}
	if len(res.Points) != res.Simulated {
		t.Errorf("%d points from %d simulations", len(res.Points), res.Simulated)
	}
	if len(res.FrontPoints) == 0 || len(res.FrontPoints) > len(res.Points) {
		t.Errorf("front size %d out of range (0, %d]", len(res.FrontPoints), len(res.Points))
	}
	for _, p := range res.Points {
		if math.IsNaN(p.LatencyCycles) || p.LatencyCycles <= 0 || p.ThroughputBpc <= 0 || p.PowerMW <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}

	_, second := run()
	if !bytes.Equal(first, second) {
		t.Error("sweep JSON differs across reruns of the same spec")
	}
}
