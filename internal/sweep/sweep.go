// Package sweep expands a parameterized design grid into fingerprinted jobs,
// prunes dominated regions with the analytic model before paying for
// simulation, and reduces the survivors to latency/throughput/power Pareto
// fronts. It is the first batch consumer of the internal/job pipeline: every
// arm is an ordinary Job routed through the same Session memoization and
// SlotScheduler admission classes the interactive front ends use, so a sweep
// shares cache entries with — and is fairly scheduled against — everything
// else in the process.
//
// The pipeline is three phases, all deterministic given the spec:
//
//  1. Expand: the axis cross product becomes labelled arms; arms whose
//     configs are observationally identical (the fingerprint normalization
//     masks axes a fabric cannot observe — an electrical mesh has no
//     wavelengths and no optical faults) collapse into one job with merged
//     labels, so the grid never pays twice for the same physics.
//  2. Prefilter: every unique job is priced with the closed-form analytic
//     estimate (light admission, no fabric ticks) plus a static power probe;
//     arms a margin worse than some other arm on every objective are pruned
//     without simulating.
//  3. Simulate: survivors run the self-correction loop (medium admission),
//     and the realized points reduce to a Pareto front.
package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"onocsim"
	"onocsim/internal/config"
	"onocsim/internal/job"
	"onocsim/internal/metrics"
)

// Arm is one unique design point: a correction job plus every grid label
// that collapsed onto it.
type Arm struct {
	// Label is the canonical (lexically smallest) grid label.
	Label string
	// Labels lists every grid cell this job serves, sorted.
	Labels []string
	// Job is the self-correction job the arm runs if it survives pruning.
	Job job.Job
	// Key is the session-level identity used for collapsing, from
	// onocsim.SelfCorrectionKey.
	Key string
}

// Point is one realized design point in objective space.
type Point struct {
	// Label is the arm's canonical label.
	Label string `json:"label"`
	// LatencyCycles is the converged mean message latency (lower is
	// better).
	LatencyCycles float64 `json:"latency_cycles"`
	// ThroughputBpc is delivered payload bytes per makespan cycle (higher
	// is better).
	ThroughputBpc float64 `json:"throughput_bpc"`
	// PowerMW is the design's static power floor (lower is better).
	PowerMW float64 `json:"power_mw"`
}

// Dominates reports whether p is at least as good as q on every objective
// and strictly better on at least one.
func (p Point) Dominates(q Point) bool {
	if p.LatencyCycles > q.LatencyCycles || p.ThroughputBpc < q.ThroughputBpc || p.PowerMW > q.PowerMW {
		return false
	}
	return p.LatencyCycles < q.LatencyCycles || p.ThroughputBpc > q.ThroughputBpc || p.PowerMW < q.PowerMW
}

// Front extracts the Pareto-optimal subset: every returned point is an input
// point, no returned point dominates another, and every excluded point is
// dominated by some returned point. The result is sorted by (latency
// ascending, label ascending), like every sweep table.
func Front(points []Point) []Point {
	var front []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.Dominates(p) {
				dominated = true
				break
			}
			// Duplicate objective vectors dominate nobody; keep the
			// lexically first label so ties resolve deterministically.
			if !p.Dominates(q) && p.LatencyCycles == q.LatencyCycles &&
				p.ThroughputBpc == q.ThroughputBpc && p.PowerMW == q.PowerMW &&
				q.Label < p.Label {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sortPoints(front)
	return front
}

func sortPoints(ps []Point) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].LatencyCycles != ps[j].LatencyCycles {
			return ps[i].LatencyCycles < ps[j].LatencyCycles
		}
		return ps[i].Label < ps[j].Label
	})
}

// Expand materializes the spec's grid: one config per axis combination,
// collapsed by session-level identity into unique arms. The returned slice
// is sorted by canonical label and depends only on the spec.
func Expand(spec config.Sweep) ([]Arm, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	byKey := map[string]*Arm{}
	for _, kind := range spec.Networks {
		for _, cores := range spec.Cores {
			for _, wl := range spec.Wavelengths {
				for _, preset := range spec.Faults {
					for _, kern := range spec.Kernels {
						label := fmt.Sprintf("%s/%dc/%dλ/%s/%s", kind, cores, wl, preset, kern)
						cfg, err := armConfig(spec, kind, cores, wl, preset, kern)
						if err != nil {
							return nil, fmt.Errorf("sweep: arm %s: %w", label, err)
						}
						key, err := onocsim.SelfCorrectionKey(cfg, kind)
						if err != nil {
							return nil, fmt.Errorf("sweep: arm %s: %w", label, err)
						}
						if a, ok := byKey[key]; ok {
							a.Labels = append(a.Labels, label)
							continue
						}
						byKey[key] = &Arm{
							Label:  label,
							Labels: []string{label},
							Key:    key,
							Job: job.Job{
								Op:     job.OpCorrect,
								Config: cfg,
								Kind:   kind,
							},
						}
					}
				}
			}
		}
	}
	arms := make([]Arm, 0, len(byKey))
	for _, a := range byKey {
		sort.Strings(a.Labels)
		a.Label = a.Labels[0]
		a.Job.Config.Name = a.Label
		arms = append(arms, *a)
	}
	sort.Slice(arms, func(i, j int) bool { return arms[i].Label < arms[j].Label })
	return arms, nil
}

// armConfig builds one grid cell's config from the default baseline.
func armConfig(spec config.Sweep, kind config.NetworkKind, cores, wl int, preset, kern string) (onocsim.Config, error) {
	cfg := config.Default()
	cfg.Seed = spec.Seed
	cfg.Network = kind
	cfg.System.Cores = cores
	cfg.Optical.WavelengthsPerChannel = wl
	cfg.Workload.Kind = config.WorkloadKernel
	cfg.Workload.Kernel = kern
	if spec.Quick {
		cfg.Workload.Scale = 4
		cfg.Workload.Iterations = 2
	}
	f, err := config.FaultPreset(preset)
	if err != nil {
		return onocsim.Config{}, err
	}
	cfg.Faults = f
	if err := cfg.Validate(); err != nil {
		return onocsim.Config{}, err
	}
	return cfg, nil
}

// Options configures a sweep run.
type Options struct {
	// Session memoizes simulations and lets the estimate and simulate
	// phases share each arm's captured trace; nil creates a private
	// session for the run (with Progress installed on it).
	Session *onocsim.Session
	// Progress receives one ProgressSweepArm event per unique arm and
	// phase ("estimate", then "pruned" or "simulated"); nil disables.
	Progress onocsim.Progress
	// Sched admits arms (estimates light/1, simulations medium/2); nil
	// creates a private scheduler sized to the host.
	Sched *onocsim.SlotScheduler
	// Parallel bounds concurrent arm goroutines; 0 means one per arm
	// (scheduler admission is then the only concurrency bound).
	Parallel int
}

// Result is one completed sweep: the grid accounting, every simulated point,
// and the rendered tables. The JSON and ASCII renderings are deterministic
// functions of the spec and the simulation results — no wall-clock ever
// enters them — so reruns and different front ends produce identical bytes.
type Result struct {
	// Spec is the normalized sweep specification.
	Spec config.Sweep
	// Arms is the full grid size (axis cross product).
	Arms int
	// UniqueJobs counts arms after identity collapsing.
	UniqueJobs int
	// Pruned counts unique arms the analytic prefilter eliminated.
	Pruned int
	// Simulated counts unique arms that ran the self-correction loop.
	Simulated int
	// Points are the realized design points, sorted (latency, label).
	Points []Point
	// FrontPoints is the Pareto-optimal subset of Points.
	FrontPoints []Point
	// Front is the Pareto front rendered as a table.
	Front *metrics.Table
	// Summary is the per-arm accounting table (every unique arm, its
	// phase outcome, and its analytic estimates).
	Summary *metrics.Table
}

// estimatedArm is one arm after the prefilter phase.
type estimatedArm struct {
	arm   Arm
	est   Point // analytic objective estimates, same axes as realized points
	prune bool
}

// Run executes the sweep pipeline. Estimates fan out first (light
// admission); the prune decision is a barrier (dominance is a property of
// the whole estimate set); survivors then fan out through simulation (medium
// admission). Ctx cancellation aborts promptly between arms and inside any
// arm's simulation.
func Run(ctx context.Context, spec config.Sweep, opts Options) (*Result, error) {
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// A sweep without a caller-supplied session gets a private one: the
	// estimate and simulate phases share each arm's captured trace, and
	// identical arms across reruns memoize, so running uncached would
	// capture everything twice.
	if opts.Session == nil {
		opts.Session = onocsim.NewSession("")
		if opts.Progress != nil {
			opts.Session.SetProgress(opts.Progress)
		}
	}
	sched := opts.Sched
	if sched == nil {
		sched = onocsim.NewSlotScheduler(2 * runtime.GOMAXPROCS(0))
	}
	runner := &job.Runner{Session: opts.Session}

	arms, err := Expand(spec)
	if err != nil {
		return nil, err
	}

	// Phase 1: analytic prefilter, one light job per unique arm.
	ests := make([]estimatedArm, len(arms))
	err = forEach(ctx, len(arms), opts.Parallel, func(ctx context.Context, i int) error {
		a := arms[i]
		est := job.Job{Op: job.OpEstimate, Config: a.Job.Config, Kind: a.Job.Kind}
		class, cost := est.Admission()
		if err := sched.Acquire(ctx, class, cost); err != nil {
			return err
		}
		defer sched.Release(cost)
		res, err := runner.Run(ctx, est)
		if err != nil {
			return fmt.Errorf("sweep: estimate %s: %w", a.Label, err)
		}
		power, err := onocsim.StaticPowerMW(a.Job.Config, a.Job.Kind)
		if err != nil {
			return fmt.Errorf("sweep: power %s: %w", a.Label, err)
		}
		ests[i] = estimatedArm{arm: a, est: Point{
			Label:         a.Label,
			LatencyCycles: res.Estimate.MeanLatency,
			ThroughputBpc: throughput(res.TraceBytes, int64(res.Estimate.Makespan)),
			PowerMW:       power,
		}}
		emit(opts.Progress, a.Label, "estimate")
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Barrier: prune needs the whole estimate set. An arm is pruned when
	// some other arm's estimate beats it by the margin on latency and
	// throughput and is no worse on power — close calls always simulate.
	if m := spec.PruneMargin; m >= 0 {
		for i := range ests {
			for j := range ests {
				if i == j {
					continue
				}
				b, a := ests[j].est, ests[i].est
				if b.LatencyCycles*(1+m) <= a.LatencyCycles &&
					b.ThroughputBpc >= a.ThroughputBpc*(1+m) &&
					b.PowerMW <= a.PowerMW {
					ests[i].prune = true
					break
				}
			}
		}
	}

	// Phase 2: simulate survivors, one medium job per arm.
	points := make([]Point, len(ests))
	pruned := 0
	for i := range ests {
		if ests[i].prune {
			pruned++
			emit(opts.Progress, ests[i].arm.Label, "pruned")
		}
	}
	err = forEach(ctx, len(ests), opts.Parallel, func(ctx context.Context, i int) error {
		if ests[i].prune {
			return nil
		}
		a := ests[i].arm
		class, cost := a.Job.Admission()
		if err := sched.Acquire(ctx, class, cost); err != nil {
			return err
		}
		defer sched.Release(cost)
		res, err := runner.Run(ctx, a.Job)
		if err != nil {
			return fmt.Errorf("sweep: simulate %s: %w", a.Label, err)
		}
		if res.Status != "ok" {
			return fmt.Errorf("sweep: simulate %s: run %s", a.Label, res.Status)
		}
		points[i] = Point{
			Label:         a.Label,
			LatencyCycles: res.Correction.Final.MeanLatency,
			ThroughputBpc: throughput(res.TraceBytes, int64(res.Correction.Final.Makespan)),
			PowerMW:       ests[i].est.PowerMW,
		}
		emit(opts.Progress, a.Label, "simulated")
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &Result{
		Spec:       spec,
		Arms:       spec.Arms(),
		UniqueJobs: len(arms),
		Pruned:     pruned,
		Simulated:  len(arms) - pruned,
	}
	for i := range points {
		if !ests[i].prune {
			out.Points = append(out.Points, points[i])
		}
	}
	sortPoints(out.Points)
	out.FrontPoints = Front(out.Points)
	out.Front = frontTable(spec, out)
	out.Summary = summaryTable(spec, ests)
	return out, nil
}

// throughput converts delivered payload bytes over a makespan into
// bytes/cycle; a degenerate makespan yields zero rather than infinity.
func throughput(bytes, makespan int64) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(bytes) / float64(makespan)
}

func emit(p onocsim.Progress, label, phase string) {
	if p == nil {
		return
	}
	p.Event(onocsim.ProgressEvent{Kind: onocsim.ProgressSweepArm, Sim: label, Op: phase})
}

// forEach runs fn for indices [0,n) on up to parallel goroutines (0 means
// n), stopping at the first error.
func forEach(ctx context.Context, n, parallel int, fn func(context.Context, int) error) error {
	if parallel <= 0 || parallel > n {
		parallel = n
	}
	if n == 0 {
		return ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain
				}
				if err := fn(ctx, i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// frontTable renders the Pareto front. Columns mirror the Point fields; no
// wall-clock cell ever appears, keeping reruns byte-identical.
func frontTable(spec config.Sweep, r *Result) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Pareto front: %s", spec.Name),
		"arm", "latency", "throughput", "power",
	)
	for _, p := range r.FrontPoints {
		t.AddCells(
			metrics.String(p.Label),
			metrics.Float(p.LatencyCycles, 2, "cyc"),
			metrics.Float(p.ThroughputBpc, 3, "B/cyc"),
			metrics.Float(p.PowerMW, 2, "mW"),
		)
	}
	t.Note("%d grid arms -> %d unique jobs; %d pruned by analytic prefilter, %d simulated, %d on front",
		r.Arms, r.UniqueJobs, r.Pruned, r.Simulated, len(r.FrontPoints))
	return t
}

// summaryTable renders per-arm accounting: every unique arm, how many grid
// cells it covers, its analytic estimates, and its phase outcome.
func summaryTable(spec config.Sweep, ests []estimatedArm) *metrics.Table {
	t := metrics.NewTable(
		fmt.Sprintf("Sweep arms: %s", spec.Name),
		"arm", "cells", "est latency", "est throughput", "power", "outcome",
	)
	for _, e := range ests {
		outcome := "simulated"
		if e.prune {
			outcome = "pruned"
		}
		t.AddCells(
			metrics.String(e.arm.Label),
			metrics.Int(int64(len(e.arm.Labels)), ""),
			metrics.Float(e.est.LatencyCycles, 2, "cyc"),
			metrics.Float(e.est.ThroughputBpc, 3, "B/cyc"),
			metrics.Float(e.est.PowerMW, 2, "mW"),
			metrics.String(outcome),
		)
	}
	t.Note("prune margin %.2f; estimates are analytic (no fabric ticks)", spec.PruneMargin)
	return t
}

// resultJSON is the deterministic wire form shared by the CLI -format json
// rendering and the onocsimd /v1/sweeps response body.
type resultJSON struct {
	Name       string         `json:"name"`
	Arms       int            `json:"arms"`
	UniqueJobs int            `json:"unique_jobs"`
	Pruned     int            `json:"pruned"`
	Simulated  int            `json:"simulated"`
	Points     []Point        `json:"points"`
	FrontPts   []Point        `json:"front_points"`
	Front      *metrics.Table `json:"front"`
	Summary    *metrics.Table `json:"summary"`
}

// WriteJSON writes the canonical JSON rendering. The bytes depend only on
// the spec and the simulation results, so the CLI and the service emit
// identical documents for the same sweep.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(resultJSON{
		Name:       r.Spec.Name,
		Arms:       r.Arms,
		UniqueJobs: r.UniqueJobs,
		Pruned:     r.Pruned,
		Simulated:  r.Simulated,
		Points:     r.Points,
		FrontPts:   r.FrontPoints,
		Front:      r.Front,
		Summary:    r.Summary,
	})
}

// WriteASCII writes the summary table then the Pareto front.
func (r *Result) WriteASCII(w io.Writer) error {
	if err := r.Summary.WriteASCII(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return r.Front.WriteASCII(w)
}
