package hybrid

import (
	"testing"

	"onocsim/internal/config"
	"onocsim/internal/noc"
	"onocsim/internal/sim"
)

func mkHybrid(threshold int) *Network {
	cfg := config.Default()
	return New(16, cfg.Mesh, cfg.Optical, threshold)
}

func drain(n *Network, bound int) bool {
	for i := 0; i < bound && n.Busy(); i++ {
		n.Tick()
	}
	return !n.Busy()
}

func TestRoutingDecisionByDistance(t *testing.T) {
	n := mkHybrid(3)
	n.SetDeliver(func(m *noc.Message) {})
	// 0→1 is 1 hop: mesh. 0→15 is 6 hops: optical.
	n.Inject(&noc.Message{ID: 1, Src: 0, Dst: 1, Bytes: 64, Class: noc.ClassRequest})
	n.Inject(&noc.Message{ID: 2, Src: 0, Dst: 15, Bytes: 64, Class: noc.ClassRequest})
	if n.ViaMesh != 1 || n.ViaOptical != 1 {
		t.Fatalf("routing: mesh=%d optical=%d", n.ViaMesh, n.ViaOptical)
	}
	if !drain(n, 5000) {
		t.Fatal("did not drain")
	}
	if n.Stats().Delivered != 2 {
		t.Fatalf("delivered %d", n.Stats().Delivered)
	}
}

func TestThresholdExtremes(t *testing.T) {
	allOpt := mkHybrid(1)
	allOpt.SetDeliver(func(m *noc.Message) {})
	allOpt.Inject(&noc.Message{ID: 1, Src: 0, Dst: 1, Bytes: 64, Class: noc.ClassRequest})
	if allOpt.ViaOptical != 1 {
		t.Fatal("threshold 1 should route everything optical")
	}
	allMesh := mkHybrid(100)
	allMesh.SetDeliver(func(m *noc.Message) {})
	allMesh.Inject(&noc.Message{ID: 1, Src: 0, Dst: 15, Bytes: 64, Class: noc.ClassRequest})
	if allMesh.ViaMesh != 1 {
		t.Fatal("huge threshold should route everything electrical")
	}
}

func TestSelfMessagesStayLocal(t *testing.T) {
	n := mkHybrid(1)
	got := 0
	n.SetDeliver(func(m *noc.Message) { got++ })
	n.Inject(&noc.Message{ID: 1, Src: 3, Dst: 3, Bytes: 8, Class: noc.ClassRequest})
	n.Tick()
	if got != 1 {
		t.Fatal("self-message lost")
	}
	if n.ViaOptical != 0 {
		t.Fatal("self-message routed through the crossbar")
	}
}

func TestAllPairsAcrossBothFabrics(t *testing.T) {
	n := mkHybrid(3)
	delivered := 0
	n.SetDeliver(func(m *noc.Message) { delivered++ })
	id := uint64(0)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			id++
			n.Inject(&noc.Message{ID: id, Src: s, Dst: d, Bytes: 48, Class: noc.ClassResponse})
		}
	}
	if !drain(n, 100_000) {
		t.Fatal("did not drain")
	}
	if delivered != 240 {
		t.Fatalf("delivered %d of 240", delivered)
	}
	if n.ViaMesh == 0 || n.ViaOptical == 0 {
		t.Fatalf("expected both fabrics used: mesh=%d optical=%d", n.ViaMesh, n.ViaOptical)
	}
}

func TestZeroLoadLatencyFollowsRouting(t *testing.T) {
	n := mkHybrid(3)
	// Short hop: mesh ZLL; long hop: optical ZLL.
	if n.ZeroLoadLatency(0, 1, 64) != n.mesh.ZeroLoadLatency(0, 1, 64) {
		t.Fatal("short-hop ZLL should come from the mesh")
	}
	if n.ZeroLoadLatency(0, 15, 64) != n.optical.ZeroLoadLatency(0, 15, 64) {
		t.Fatal("long-hop ZLL should come from the crossbar")
	}
}

func TestPowerReportSumsBothFabrics(t *testing.T) {
	n := mkHybrid(3)
	n.SetDeliver(func(m *noc.Message) {})
	for i := 0; i < 32; i++ {
		n.Inject(&noc.Message{ID: uint64(i + 1), Src: i % 16, Dst: (i*5 + 1) % 16, Bytes: 64, Class: noc.ClassRequest})
	}
	drain(n, 100_000)
	rep := n.PowerReport(n.Now(), 2.0)
	e := n.mesh.PowerReport(n.Now(), 2.0)
	o := n.optical.PowerReport(n.Now(), 2.0)
	if rep.StaticMW != e.StaticMW+o.StaticMW {
		t.Fatalf("static %g != %g + %g", rep.StaticMW, e.StaticMW, o.StaticMW)
	}
	if _, ok := rep.Breakdown["mesh_leakage_mw"]; !ok {
		t.Fatal("missing mesh breakdown prefix")
	}
	if _, ok := rep.Breakdown["optical_laser_mw"]; !ok {
		t.Fatal("missing optical breakdown prefix")
	}
}

func TestHybridWithSWMRSubfabric(t *testing.T) {
	cfg := config.Default()
	cfg.Optical.Architecture = "swmr"
	n := New(16, cfg.Mesh, cfg.Optical, 2)
	got := 0
	n.SetDeliver(func(m *noc.Message) { got++ })
	n.Inject(&noc.Message{ID: 1, Src: 0, Dst: 15, Bytes: 64, Class: noc.ClassRequest})
	if !drain(n, 5000) || got != 1 {
		t.Fatalf("swmr-backed hybrid failed: got=%d", got)
	}
}

func TestHybridDeterminism(t *testing.T) {
	run := func() (sim.Tick, float64) {
		n := mkHybrid(3)
		n.SetDeliver(func(m *noc.Message) {})
		rng := sim.NewRNG(55)
		id := uint64(0)
		for cyc := 0; cyc < 200; cyc++ {
			for s := 0; s < 16; s++ {
				if rng.Bernoulli(0.15) {
					id++
					n.Inject(&noc.Message{ID: id, Src: s, Dst: rng.Intn(16), Bytes: 8 + rng.Intn(100), Class: noc.Class(rng.Intn(3))})
				}
			}
			n.Tick()
		}
		drain(n, 100_000)
		return n.Now(), n.Stats().Latency.Mean()
	}
	t1, l1 := run()
	t2, l2 := run()
	if t1 != t2 || l1 != l2 {
		t.Fatal("nondeterministic")
	}
}

func TestHybridNonSquarePanics(t *testing.T) {
	cfg := config.Default()
	defer func() {
		if recover() == nil {
			t.Error("non-square accepted")
		}
	}()
	New(10, cfg.Mesh, cfg.Optical, 3)
}
