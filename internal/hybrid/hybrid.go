// Package hybrid implements a path-adaptive opto-electronic NoC: an
// electrical mesh and an optical crossbar side by side, with a per-message
// routing policy that sends short-distance traffic over the mesh (which R4
// shows wins at low hop counts) and long-distance traffic over the crossbar
// (whose latency is distance-insensitive). This is the design direction the
// paper's authors themselves took next ("A Path-Adaptive Opto-electronic
// Hybrid NoC for Chip Multi-processor", ISPA 2013), and it drops out of this
// codebase for free because every fabric implements the same contract.
package hybrid

import (
	"fmt"

	"onocsim/internal/config"
	"onocsim/internal/enoc"
	"onocsim/internal/noc"
	"onocsim/internal/onoc"
	"onocsim/internal/sim"
)

// Network routes each message to one of two sub-fabrics by Manhattan
// distance. It implements noc.Network.
type Network struct {
	mesh    *enoc.Network
	optical noc.Network
	width   int
	nodes   int

	// threshold is the minimum hop distance that goes optical.
	threshold int

	deliver noc.DeliverFunc
	stats   *noc.Stats

	// der consults the optical sub-fabric's laser-droop blacklist; rerouted
	// counts messages diverted to the mesh because of it.
	der      optDerater
	rerouted uint64

	// Sub-fabric routing counters.
	ViaMesh, ViaOptical uint64
}

// optDerater is the slice of the crossbar API the reroute policy needs: the
// droop-induced serialization multiplier of a lightpath. Both crossbars
// implement it.
type optDerater interface {
	DerateFactor(src, dst int) sim.Tick
}

// New builds a hybrid fabric: messages with Manhattan distance ≥ threshold
// ride the optical crossbar, the rest the electrical mesh. threshold ≤ 1
// sends everything optical; a threshold above the mesh diameter sends
// everything electrical.
func New(nodes int, mesh config.Mesh, optical config.Optical, threshold int) *Network {
	return NewWithFaults(nodes, mesh, optical, threshold, config.Faults{}, 0)
}

// NewWithFaults builds the hybrid fabric with deterministic fault injection
// on the optical sub-fabric. Graceful degradation here is a routing policy:
// lightpaths blacklisted by laser droop (DerateFactor > 1) fall back to the
// electrical mesh instead of limping along at reduced rate.
func NewWithFaults(nodes int, mesh config.Mesh, optical config.Optical, threshold int, faults config.Faults, seed uint64) *Network {
	width := 1
	for width*width < nodes {
		width++
	}
	if width*width != nodes {
		panic(fmt.Sprintf("hybrid: %d nodes is not a perfect square", nodes))
	}
	n := &Network{
		mesh:      enoc.New(nodes, mesh),
		width:     width,
		nodes:     nodes,
		threshold: threshold,
		stats:     noc.NewStats(),
	}
	if optical.Architecture == "swmr" {
		opt := onoc.NewSWMRWithFaults(nodes, optical, faults, seed)
		n.optical, n.der = opt, opt
	} else {
		opt := onoc.NewWithFaults(nodes, optical, faults, seed)
		n.optical, n.der = opt, opt
	}
	relay := func(m *noc.Message) {
		n.stats.RecordDelivery(m)
		if n.deliver != nil {
			n.deliver(m)
		}
	}
	n.mesh.SetDeliver(relay)
	n.optical.SetDeliver(relay)
	return n
}

// Nodes implements noc.Network.
func (n *Network) Nodes() int { return n.nodes }

// Now implements noc.Network.
func (n *Network) Now() sim.Tick { return n.mesh.Now() }

// Stats implements noc.Network; it aggregates both sub-fabrics'
// deliveries (sub-fabric stats remain accessible via Mesh/Optical). Fault
// counters are folded in from the optical sub-fabric on each call — the
// refresh is idempotent, so calling Stats repeatedly is safe.
func (n *Network) Stats() *noc.Stats {
	f := n.optical.Stats().Faults
	f.Rerouted = n.rerouted
	n.stats.Faults = f
	return n.stats
}

// Mesh exposes the electrical sub-fabric (for power and diagnostics).
func (n *Network) Mesh() *enoc.Network { return n.mesh }

// Optical exposes the photonic sub-fabric.
func (n *Network) Optical() noc.Network { return n.optical }

// SetDeliver implements noc.Network.
func (n *Network) SetDeliver(fn noc.DeliverFunc) { n.deliver = fn }

// distance is the Manhattan hop count between two nodes.
func (n *Network) distance(src, dst int) int {
	sx, sy := src%n.width, src/n.width
	dx, dy := dst%n.width, dst/n.width
	return abs(dx-sx) + abs(dy-sy)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Inject implements noc.Network: the path-adaptive routing decision, with
// droop-blacklisted optical paths falling back to the electrical mesh.
func (n *Network) Inject(m *noc.Message) {
	n.stats.Injected++
	if m.Src != m.Dst && n.distance(m.Src, m.Dst) >= n.threshold {
		if n.der != nil && n.der.DerateFactor(m.Src, m.Dst) > 1 {
			n.rerouted++
		} else {
			n.ViaOptical++
			n.optical.Inject(m)
			return
		}
	}
	n.ViaMesh++
	n.mesh.Inject(m)
}

// Tick implements noc.Network, advancing both sub-fabrics in lockstep.
func (n *Network) Tick() {
	n.mesh.Tick()
	n.optical.Tick()
}

// Busy implements noc.Network.
func (n *Network) Busy() bool { return n.mesh.Busy() || n.optical.Busy() }

// Lookahead implements noc.Network: a cross-node message may ride either
// sub-fabric, so the safe bound is the smaller of the two.
func (n *Network) Lookahead() sim.Tick {
	la := n.mesh.Lookahead()
	if o := n.optical.Lookahead(); o < la {
		la = o
	}
	return la
}

// NextWake implements noc.Network: the earlier of the two sub-fabrics'
// wake-ups, since Tick advances both in lockstep.
func (n *Network) NextWake() sim.Tick {
	wake := n.mesh.NextWake()
	if o := n.optical.NextWake(); o < wake {
		wake = o
	}
	return wake
}

// SkipTo implements noc.Network. Both sub-fabrics share the clock, and t is
// below the combined NextWake, hence below each sub-fabric's own.
func (n *Network) SkipTo(t sim.Tick) {
	n.mesh.SkipTo(t)
	n.optical.SkipTo(t)
}

// hybridSnapshot composes the two sub-fabric snapshots with the routing
// layer's own counters and aggregate statistics.
type hybridSnapshot struct {
	mesh    noc.Snapshot
	optical noc.Snapshot
	stats   *noc.Stats

	rerouted            uint64
	viaMesh, viaOptical uint64
}

// SnapshotAt implements noc.Snapshot: both sub-fabrics share the clock.
func (s *hybridSnapshot) SnapshotAt() sim.Tick { return s.mesh.SnapshotAt() }

// Snapshot implements noc.Checkpointer.
func (n *Network) Snapshot() noc.Snapshot {
	return &hybridSnapshot{
		mesh:       n.mesh.Snapshot(),
		optical:    n.optical.(noc.Checkpointer).Snapshot(),
		stats:      n.stats.Clone(),
		rerouted:   n.rerouted,
		viaMesh:    n.ViaMesh,
		viaOptical: n.ViaOptical,
	}
}

// Restore implements noc.Checkpointer.
func (n *Network) Restore(s noc.Snapshot) {
	snap := s.(*hybridSnapshot)
	n.mesh.Restore(snap.mesh)
	n.optical.(noc.Checkpointer).Restore(snap.optical)
	n.stats = snap.stats.Clone()
	n.rerouted = snap.rerouted
	n.ViaMesh = snap.viaMesh
	n.ViaOptical = snap.viaOptical
}

// Reset implements noc.Resettable.
func (n *Network) Reset() {
	n.mesh.Reset()
	n.optical.(noc.Resettable).Reset()
	n.stats = noc.NewStats()
	n.ViaMesh = 0
	n.ViaOptical = 0
	n.rerouted = 0
}

// ZeroLoadLatency implements noc.Network, following the routing decision —
// including the droop-blacklist fallback, so SCTM's round-0 estimates match
// where traffic will actually flow.
func (n *Network) ZeroLoadLatency(src, dst, bytes int) sim.Tick {
	if src != dst && n.distance(src, dst) >= n.threshold {
		if n.der == nil || n.der.DerateFactor(src, dst) == 1 {
			return n.optical.ZeroLoadLatency(src, dst, bytes)
		}
	}
	return n.mesh.ZeroLoadLatency(src, dst, bytes)
}

// PowerReport implements noc.Network: the sum of both sub-fabrics, with the
// breakdowns merged under prefixed keys.
func (n *Network) PowerReport(elapsed sim.Tick, clockGHz float64) noc.PowerReport {
	e := n.mesh.PowerReport(elapsed, clockGHz)
	o := n.optical.PowerReport(elapsed, clockGHz)
	breakdown := make(map[string]float64, len(e.Breakdown)+len(o.Breakdown))
	for k, v := range e.Breakdown {
		breakdown["mesh_"+k] = v
	}
	for k, v := range o.Breakdown {
		breakdown["optical_"+k] = v
	}
	return noc.PowerReport{
		StaticMW:  e.StaticMW + o.StaticMW,
		DynamicMW: e.DynamicMW + o.DynamicMW,
		Breakdown: breakdown,
	}
}
