// Package simcache memoizes simulation results across an experiment session.
//
// The reconstructed evaluation (R1–R17) asks for the same byte-identical
// simulations many times over: the execution-driven optical ground truth of
// a kernel config is needed by the accuracy table, the convergence figure,
// the case study, the power table, the league table, … Because every
// simulation in this repository is deterministic — same validated config,
// same result bits — the (config fingerprint, network kind, operation)
// triple fully identifies a result, and recomputation is pure waste.
//
// Cache is a concurrent in-memory store with single-flight semantics: the
// first requester of a key computes it while concurrent duplicates block on
// the in-flight computation and share its result. A failed computation is
// broadcast to its waiters but never cached, so transient errors do not
// poison the session. An optional disk layer persists captured traces via
// the binary trace codec and every other result as versioned JSON, carrying
// simulation work across process invocations.
package simcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"onocsim/internal/trace"
)

// Op names a cached operation. The replay ops are keyed on the capture
// fabric too (see Key.Capture): a self-correction on an ideal-captured
// trace is a different result from one on an electrically captured trace.
type Op string

const (
	// OpTruth is an execution-driven ground-truth run on Key.Kind.
	OpTruth Op = "truth"
	// OpCapture is a trace capture on Key.Kind (the capture fabric).
	OpCapture Op = "capture"
	// OpNaive, OpCoupled and OpSCTM are replays targeting Key.Kind of a
	// trace captured on Key.Capture.
	OpNaive   Op = "naive"
	OpCoupled Op = "coupled"
	OpSCTM    Op = "sctm"
	// OpSynthetic is an open-loop synthetic traffic run on Key.Kind.
	OpSynthetic Op = "synthetic"
	// OpEstimate is a closed-form analytic latency estimate targeting
	// Key.Kind of a trace captured on Key.Capture — keyed like the replay
	// ops, priced like none of them.
	OpEstimate Op = "estimate"
)

// Key identifies one simulation result.
type Key struct {
	// Fingerprint is config.Fingerprint() of the validated config.
	Fingerprint string
	// Kind is the fabric the operation ran on (the capture fabric for
	// OpCapture, the target fabric for runs and replays).
	Kind string
	// Capture is the capture fabric of the replayed trace; empty for
	// OpTruth and OpCapture.
	Capture string
	// Op is the operation.
	Op Op
}

func (k Key) String() string {
	// Fingerprints are normally 64 hex characters, but keys also get
	// rendered on error paths where the fingerprint never materialized (a
	// zero Key in a log line must not panic the logger), so the
	// abbreviation truncates defensively.
	fp := k.Fingerprint
	if len(fp) > 12 {
		fp = fp[:12]
	}
	if k.Capture != "" {
		return fmt.Sprintf("%s/%s@%s(cap=%s)", fp, k.Op, k.Kind, k.Capture)
	}
	return fmt.Sprintf("%s/%s@%s", fp, k.Op, k.Kind)
}

// entry is one in-flight or settled computation. done is closed exactly
// once, after val/err are written; waiters block on it without holding the
// cache lock.
type entry struct {
	done chan struct{}
	val  any
	err  error
}

// Stats counts cache traffic; all fields are monotone.
type Stats struct {
	// Misses is the number of computations actually run.
	Misses uint64
	// Hits is the number of requests served from a settled entry.
	Hits uint64
	// Waits is the number of requests that blocked on an in-flight
	// computation (the single-flight dedup at work).
	Waits uint64
	// DiskHits is the number of trace loads served by the disk layer.
	DiskHits uint64
	// DiskErrors is the number of failed disk-layer writes (MkdirAll,
	// temp-file write, or rename). The cache degrades to memory-only on
	// such failures by design — results are never lost — but silently: a
	// read-only or full cache dir would otherwise look healthy while
	// persisting nothing, so the count (plus a once-per-process stderr
	// warning) surfaces the degradation.
	DiskErrors uint64
}

// Outcome names how a cache request was resolved, for observers.
type Outcome string

const (
	// OutcomeComputed: the request ran the computation.
	OutcomeComputed Outcome = "computed"
	// OutcomeHit: the request was served from a settled in-memory entry.
	OutcomeHit Outcome = "hit"
	// OutcomeWait: the request blocked on a concurrent in-flight
	// computation and shared its result.
	OutcomeWait Outcome = "wait"
	// OutcomeDiskHit: the request was served by the disk layer.
	OutcomeDiskHit Outcome = "disk-hit"
)

// Cache is a concurrent memoization table for simulation results.
// The zero value is not usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	stats   Stats
	dir     string
	notify  func(Key, Outcome)
}

// SetNotify installs an observer called once per resolved request with how
// it was resolved. The observer runs on the requesting goroutine, outside
// the cache lock, and must be safe for concurrent use. A nil fn removes the
// observer.
func (c *Cache) SetNotify(fn func(Key, Outcome)) {
	c.mu.Lock()
	c.notify = fn
	c.mu.Unlock()
}

// event delivers an outcome to the observer, if one is installed.
func (c *Cache) event(key Key, o Outcome) {
	c.mu.Lock()
	fn := c.notify
	c.mu.Unlock()
	if fn != nil {
		fn(key, o)
	}
}

// New returns an empty cache. dir, when non-empty, enables the disk layer:
// captured traces are persisted as <dir>/<key>.sctm via the binary codec,
// every other result as versioned <dir>/<key>.json, and both are reloaded by
// later invocations (the directory is created on first write).
func New(dir string) *Cache {
	return &Cache{entries: map[Key]*entry{}, dir: dir}
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Do returns the cached value for key, computing it via compute on a miss.
// Concurrent callers with the same key block on the first caller's
// computation and share its result (or its error). Errors are propagated to
// every waiter of the failing flight but are not cached: the next request
// for the key computes afresh.
func (c *Cache) Do(key Key, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		outcome := OutcomeWait
		select {
		case <-e.done:
			c.stats.Hits++
			outcome = OutcomeHit
		default:
			c.stats.Waits++
		}
		c.mu.Unlock()
		c.event(key, outcome)
		<-e.done
		return e.val, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.stats.Misses++
	c.mu.Unlock()

	e.val, e.err = compute()
	if e.err != nil {
		// Failed flights are evicted before waiters are released: a
		// request arriving after the eviction retries the computation,
		// one arriving before it shares the error.
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err
}

// tracePath places a persisted trace under the disk layer's directory. The
// fingerprint is hex and the remaining parts are fabric/op names, so the
// name needs no escaping.
func (c *Cache) tracePath(key Key) string {
	return filepath.Join(c.dir, fmt.Sprintf("%s-%s-%s.sctm", key.Fingerprint, key.Kind, key.Op))
}

// valuePath places a persisted non-trace result under the disk layer's
// directory. Replay keys carry the capture identity ("fp@kind"), which is
// filename-safe as is.
func (c *Cache) valuePath(key Key) string {
	name := fmt.Sprintf("%s-%s-%s", key.Fingerprint, key.Kind, key.Op)
	if key.Capture != "" {
		name += "-" + key.Capture
	}
	return filepath.Join(c.dir, name+".json")
}

// writeAtomic persists data at path via a per-process temp file and rename,
// so a concurrent invocation never reads a half-written file. Failures are
// swallowed: a read-only or full cache directory degrades to in-memory
// caching rather than failing the run.
func (c *Cache) writeAtomic(path string, write func(string) error) {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		c.diskError(err)
		return
	}
	tmp := fmt.Sprintf("%s.%d.tmp", path, os.Getpid())
	if err := write(tmp); err != nil {
		os.Remove(tmp)
		c.diskError(err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		c.diskError(err)
	}
}

// diskWarnOnce gates the stderr warning to once per process: a full or
// read-only cache dir fails every write, and one line says it all.
var diskWarnOnce sync.Once

// diskError records a failed disk-layer write. The cache stays correct —
// the result lives on in memory — but persistence is degraded, which the
// DiskErrors counter and a one-time warning make visible.
func (c *Cache) diskError(err error) {
	c.mu.Lock()
	c.stats.DiskErrors++
	c.mu.Unlock()
	diskWarnOnce.Do(func() {
		fmt.Fprintf(os.Stderr, "simcache: disk cache write failed (%v); continuing memory-only — results from this session will not persist\n", err)
	})
}

// valueFormatVersion guards persisted results against schema drift: decoding
// a result struct from JSON written for an older field layout would silently
// zero-fill, so bump this whenever a cached result type changes shape and
// stale files become plain misses.
// Version 2: CorrectionResult grew the ReplayedEvents/SavedCycles work
// counters; version-1 files would decode them as zero and misreport the
// replay cost, so they are re-computed instead.
const valueFormatVersion = 2

// diskValue is the on-disk envelope for non-trace results.
type diskValue struct {
	Version int             `json:"version"`
	Value   json.RawMessage `json:"value"`
}

// DoValue memoizes a typed simulation result, additionally consulting the
// disk layer when one is configured: results are persisted as versioned JSON
// and reloaded across invocations, the same lifecycle DoTrace gives traces.
// T must round-trip through encoding/json (the repository's result structs
// either are plain data or provide codecs). Like DoTrace, persistence is
// best-effort and failures degrade silently to in-memory caching.
func DoValue[T any](c *Cache, key Key, compute func() (T, error)) (T, error) {
	v, err := c.Do(key, func() (any, error) {
		if c.dir != "" {
			if data, err := os.ReadFile(c.valuePath(key)); err == nil {
				var env diskValue
				if json.Unmarshal(data, &env) == nil && env.Version == valueFormatVersion {
					var out T
					if json.Unmarshal(env.Value, &out) == nil {
						c.mu.Lock()
						c.stats.DiskHits++
						c.mu.Unlock()
						c.event(key, OutcomeDiskHit)
						return out, nil
					}
				}
			}
		}
		out, err := compute()
		if err != nil {
			return nil, err
		}
		c.event(key, OutcomeComputed)
		if c.dir != "" {
			if raw, jerr := json.Marshal(out); jerr == nil {
				data, _ := json.Marshal(diskValue{Version: valueFormatVersion, Value: raw})
				c.writeAtomic(c.valuePath(key), func(tmp string) error {
					return os.WriteFile(tmp, data, 0o644)
				})
			}
		}
		return out, nil
	})
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}

// tracePair is the cached value of a capture: the trace plus the wall time
// it cost to obtain (capture time on a compute, load time on a disk hit).
// Storing the timing inside the entry keeps duplicate requesters' reported
// walls identical to the original flight's, with no side-channel races.
type tracePair struct {
	tr   *trace.Trace
	wall time.Duration
}

// DoTrace memoizes a trace capture, additionally consulting the disk layer
// when one is configured: a miss first tries to load the persisted trace,
// and a computed trace is persisted for future invocations. Persistence
// failures degrade silently to in-memory caching: a read-only or full cache
// directory must not fail the run. The returned duration is what the trace
// cost the first flight — a full capture, or a disk load.
func (c *Cache) DoTrace(key Key, compute func() (*trace.Trace, time.Duration, error)) (*trace.Trace, time.Duration, error) {
	v, err := c.Do(key, func() (any, error) {
		if c.dir != "" {
			start := time.Now()
			if tr, err := trace.LoadFile(c.tracePath(key)); err == nil {
				c.mu.Lock()
				c.stats.DiskHits++
				c.mu.Unlock()
				c.event(key, OutcomeDiskHit)
				return tracePair{tr: tr, wall: time.Since(start)}, nil
			}
		}
		tr, wall, err := compute()
		if err != nil {
			return nil, err
		}
		c.event(key, OutcomeComputed)
		if c.dir != "" {
			c.writeAtomic(c.tracePath(key), func(tmp string) error {
				return trace.SaveFile(tmp, tr)
			})
		}
		return tracePair{tr: tr, wall: wall}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	p := v.(tracePair)
	return p.tr, p.wall, nil
}
