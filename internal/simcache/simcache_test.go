package simcache

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

func testKey(i int) Key {
	return Key{Fingerprint: fmt.Sprintf("%064x", i), Kind: "optical", Op: OpTruth}
}

func TestDoSingleFlight(t *testing.T) {
	// N concurrent requesters of one key: exactly one compute runs, every
	// caller gets its value, and the duplicates are counted as waits.
	c := New("")
	const n = 32
	var computes atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(testKey(1), func() (any, error) {
				close(started) // only the single flight may get here
				computes.Add(1)
				<-release
				return "value", nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	<-started
	// Give the other goroutines a chance to pile onto the in-flight entry;
	// a second compute reaching close(started) would panic immediately.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != "value" {
			t.Fatalf("goroutine %d got %v", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Waits != n-1 {
		t.Fatalf("hits+waits = %d+%d, want %d", st.Hits, st.Waits, n-1)
	}
}

func TestDoErrorPropagatesAndIsNotCached(t *testing.T) {
	c := New("")
	boom := errors.New("transient fabric failure")
	var calls atomic.Int64

	// First flight fails; concurrent waiters must all see the error.
	release := make(chan struct{})
	started := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Do(testKey(2), func() (any, error) {
				close(started)
				calls.Add(1)
				<-release
				return nil, boom
			})
		}(i)
	}
	<-started
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d got %v, want the flight's error", i, err)
		}
	}

	// The failure must not be cached: the next request recomputes, and this
	// time the value sticks.
	v, err := c.Do(testKey(2), func() (any, error) {
		calls.Add(1)
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("retry after failed flight: v=%v err=%v", v, err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("compute ran %d times, want 2 (one failure, one retry)", got)
	}
	// And the retry's success is cached like any other value.
	v, err = c.Do(testKey(2), func() (any, error) {
		t.Error("cached success recomputed")
		return nil, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("cached value after retry: v=%v err=%v", v, err)
	}
}

func TestDoDistinctKeysDoNotShare(t *testing.T) {
	c := New("")
	for i := 0; i < 4; i++ {
		v, err := c.Do(testKey(i), func() (any, error) { return i, nil })
		if err != nil || v != i {
			t.Fatalf("key %d: v=%v err=%v", i, v, err)
		}
	}
	if st := c.Stats(); st.Misses != 4 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 4 misses", st)
	}
}

// diskTrace builds a small but structurally complete trace for persistence
// tests: multiple nodes, classes, and dependency edges.
func diskTrace() *trace.Trace {
	tr := &trace.Trace{Nodes: 4, Workload: "disk", RefMakespan: 500}
	for i := 0; i < 10; i++ {
		e := trace.Event{
			ID: trace.EventID(i + 1), Src: i % 4, Dst: (i + 1) % 4,
			Bytes: 64, Class: noc.Class(i % 2), Gap: 1,
			RefInject: sim.Tick(10 * (i + 1)), RefArrive: sim.Tick(10*(i+1) + 5),
		}
		if i > 0 {
			e.Deps = []trace.Dep{{On: trace.EventID(i), Class: trace.DepCausal}}
		}
		tr.Events = append(tr.Events, e)
	}
	return tr
}

func TestDoTraceDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := Key{Fingerprint: "f00d", Kind: "ideal", Op: OpCapture}
	want := diskTrace()

	// First cache: computes and persists.
	c1 := New(dir)
	got, wall, err := c1.DoTrace(key, func() (*trace.Trace, time.Duration, error) {
		return want, 123 * time.Millisecond, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want || wall != 123*time.Millisecond {
		t.Fatalf("first flight returned tr=%p wall=%v", got, wall)
	}
	if _, err := os.Stat(c1.tracePath(key)); err != nil {
		t.Fatalf("trace not persisted: %v", err)
	}
	// No leftover temp files from the write-then-rename dance.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("leftover temp files: %v", tmps)
	}

	// Fresh cache over the same directory: the capture must come off disk,
	// bit-identical, without invoking compute.
	c2 := New(dir)
	loaded, _, err := c2.DoTrace(key, func() (*trace.Trace, time.Duration, error) {
		t.Error("compute ran despite persisted trace")
		return nil, 0, errors.New("unreachable")
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, want) {
		t.Fatal("disk round trip altered the trace")
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", st.DiskHits)
	}

	// Within one cache, the second request is a plain memory hit — the disk
	// is consulted once per process, not per request.
	if _, _, err := c2.DoTrace(key, nil); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Hits != 1 || st.DiskHits != 1 {
		t.Fatalf("stats after re-request = %+v", st)
	}
}

func TestDoTraceErrorNotPersisted(t *testing.T) {
	dir := t.TempDir()
	c := New(dir)
	key := Key{Fingerprint: "dead", Kind: "ideal", Op: OpCapture}
	boom := errors.New("capture failed")
	if _, _, err := c.DoTrace(key, func() (*trace.Trace, time.Duration, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the compute error", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("failed capture left files behind: %v", ents)
	}
	// The failure is not cached in memory either.
	want := diskTrace()
	got, _, err := c.DoTrace(key, func() (*trace.Trace, time.Duration, error) {
		return want, 0, nil
	})
	if err != nil || got != want {
		t.Fatalf("retry after failure: tr=%p err=%v", got, err)
	}
}

func TestDoTraceUnwritableDirDegradesGracefully(t *testing.T) {
	// A cache directory that cannot be created must not fail the run: the
	// session falls back to in-memory memoization — but the degradation is
	// observable, not silent: DiskErrors counts every failed write.
	bad := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(bad, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(filepath.Join(bad, "cache")) // parent is a file: MkdirAll fails
	want := diskTrace()
	got, _, err := c.DoTrace(Key{Fingerprint: "beef", Kind: "ideal", Op: OpCapture},
		func() (*trace.Trace, time.Duration, error) { return want, 0, nil })
	if err != nil || got != want {
		t.Fatalf("unwritable dir leaked into the result: tr=%p err=%v", got, err)
	}
	if st := c.Stats(); st.Misses != 1 || st.DiskErrors != 1 {
		t.Fatalf("stats = %+v, want 1 miss and 1 disk error", st)
	}
	// The value path degrades the same way, and the counter accumulates.
	v, err := DoValue(c, testKey(99), func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("DoValue under unwritable dir: %v, %v", v, err)
	}
	if st := c.Stats(); st.DiskErrors != 2 {
		t.Fatalf("stats = %+v, want 2 disk errors", st)
	}
	// A memory-only cache must never count disk errors.
	m := New("")
	if _, err := DoValue(m, testKey(1), func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.DiskErrors != 0 {
		t.Fatalf("memory-only cache counted disk errors: %+v", st)
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Fingerprint: "0123456789abcdef0123", Kind: "optical", Op: OpSCTM, Capture: "aa@ideal"}
	s := k.String()
	if s != "0123456789ab/sctm@optical(cap=aa@ideal)" {
		t.Fatalf("String() = %q", s)
	}
	k.Capture = ""
	if got := k.String(); got != "0123456789ab/sctm@optical" {
		t.Fatalf("String() = %q", got)
	}
}

// Keys shorter than the 12-character abbreviation — above all the zero Key,
// which error paths hand to log formatting before a fingerprint ever
// materialized — must render instead of panicking with a slice range error.
func TestKeyStringShortFingerprint(t *testing.T) {
	cases := []struct {
		key  Key
		want string
	}{
		{Key{}, "/@"},
		{Key{Fingerprint: "abc", Kind: "optical", Op: OpTruth}, "abc/truth@optical"},
		{Key{Fingerprint: "abcdef0123456789", Kind: "ideal", Op: OpCapture}, "abcdef012345/capture@ideal"},
		{Key{Fingerprint: "ff", Kind: "mesh", Op: OpNaive, Capture: "aa@ideal"}, "ff/naive@mesh(cap=aa@ideal)"},
	}
	for _, c := range cases {
		if got := c.key.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.key, got, c.want)
		}
	}
}
