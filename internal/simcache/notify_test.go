package simcache

import (
	"bytes"
	"sync"
	"testing"

	"onocsim/internal/metrics"
)

// TestNotifyOutcomes checks the observer sees each resolution kind exactly
// once per request: a compute, then a memory hit, and a disk hit in a fresh
// cache sharing the directory.
func TestNotifyOutcomes(t *testing.T) {
	dir := t.TempDir()
	var (
		mu   sync.Mutex
		seen []Outcome
	)
	record := func(_ Key, o Outcome) {
		mu.Lock()
		seen = append(seen, o)
		mu.Unlock()
	}
	c := New(dir)
	c.SetNotify(record)
	key := testKey(1)
	compute := func() (int, error) { return 7, nil }
	if _, err := DoValue(c, key, compute); err != nil {
		t.Fatal(err)
	}
	if _, err := DoValue(c, key, compute); err != nil {
		t.Fatal(err)
	}
	c2 := New(dir)
	c2.SetNotify(record)
	if _, err := DoValue(c2, key, compute); err != nil {
		t.Fatal(err)
	}
	want := []Outcome{OutcomeComputed, OutcomeHit, OutcomeDiskHit}
	if len(seen) != len(want) {
		t.Fatalf("outcomes = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("outcomes = %v, want %v", seen, want)
		}
	}
	c.SetNotify(nil)
	if _, err := DoValue(c, key, compute); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want) {
		t.Fatal("removed observer still notified")
	}
}

// TestDoValueTableRoundTrip persists a typed metrics.Table through the disk
// layer's versioned-JSON envelope and checks a fresh cache reloads it
// rendering byte-identically — the acceptance path for cached experiment
// results.
func TestDoValueTableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := testKey(2)
	build := func() (*metrics.Table, error) {
		tb := metrics.NewTable("cached", "kernel", "makespan", "err")
		tb.AddCells(metrics.String("fft"), metrics.Int(4500, "cycles"), metrics.Percent(0.018))
		tb.Note("persisted through simcache")
		return tb, nil
	}
	c := New(dir)
	orig, err := DoValue(c, key, build)
	if err != nil {
		t.Fatal(err)
	}
	c2 := New(dir)
	loaded, err := DoValue(c2, key, func() (*metrics.Table, error) {
		t.Fatal("disk layer missed: compute ran")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := orig.WriteASCII(&a); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("table drifted through the disk layer:\n--- stored ---\n%s--- loaded ---\n%s", a.String(), b.String())
	}
	if c := loaded.At(0, 1); c.Kind != metrics.KindInt || c.Int != 4500 || c.Unit != "cycles" {
		t.Fatalf("loaded cell lost its type: %+v", c)
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("disk hits = %d, want 1", st.DiskHits)
	}
}
