// Package noc defines the interconnect abstraction shared by every fabric in
// onocsim — the electrical mesh, the optical crossbar, and the ideal
// reference network — together with the message type, delivery statistics,
// and power reporting common to all of them.
//
// All fabrics are synchronous cycle-level models: the owner calls Tick once
// per system clock cycle, injects messages at the current cycle, and receives
// deliveries through a callback. This single contract is what lets the
// execution-driven system, the naive trace replayer, and the self-correction
// engine run unmodified on any fabric.
package noc

import (
	"onocsim/internal/metrics"
	"onocsim/internal/sim"
)

// Class partitions messages into virtual networks so that request/response
// protocol cycles cannot deadlock in the fabric.
type Class uint8

const (
	// ClassRequest carries coherence/sync requests.
	ClassRequest Class = iota
	// ClassResponse carries data and acknowledgement responses.
	ClassResponse
	// ClassWriteback carries evictions and releases.
	ClassWriteback
	// NumClasses is the number of virtual networks.
	NumClasses
)

// String names the class for reports.
func (c Class) String() string {
	switch c {
	case ClassRequest:
		return "request"
	case ClassResponse:
		return "response"
	case ClassWriteback:
		return "writeback"
	default:
		return "invalid"
	}
}

// Message is one network transaction. The fabric treats Payload as opaque
// and guarantees delivery of every injected message exactly once.
type Message struct {
	// ID is unique per simulation and assigned by the producer.
	ID uint64
	// Src and Dst are node indices in [0, Nodes).
	Src, Dst int
	// Bytes is the payload size; the fabric derives flit/serialization
	// counts from it.
	Bytes int
	// Class selects the virtual network.
	Class Class
	// Inject and Arrive are stamped by the fabric.
	Inject, Arrive sim.Tick
	// Payload is delivered untouched to the destination.
	Payload interface{}
}

// Latency returns the end-to-end message latency; it is only meaningful
// after delivery.
func (m *Message) Latency() sim.Tick { return m.Arrive - m.Inject }

// DeliverFunc receives a message at its destination node.
type DeliverFunc func(m *Message)

// Network is the fabric contract.
type Network interface {
	// Nodes returns the endpoint count.
	Nodes() int
	// Inject enqueues m at its source at the current cycle. Injection
	// never fails: fabrics apply backpressure internally by queueing at
	// the network interface. Self-messages (Src == Dst) are delivered on
	// the next Tick without touching the fabric.
	Inject(m *Message)
	// Tick advances the fabric by one system clock cycle.
	Tick()
	// Now returns the current cycle (number of completed Ticks).
	Now() sim.Tick
	// SetDeliver registers the delivery callback; it must be set before
	// the first Tick that could deliver.
	SetDeliver(fn DeliverFunc)
	// Busy reports whether any message is queued or in flight.
	Busy() bool
	// Stats exposes the shared counters.
	Stats() *Stats
	// ZeroLoadLatency estimates the uncontended latency of a message of
	// the given size between two nodes; the self-correction engine uses
	// it to seed its first iteration.
	ZeroLoadLatency(src, dst, bytes int) sim.Tick
	// PowerReport resolves the power model over an elapsed window.
	PowerReport(elapsed sim.Tick, clockGHz float64) PowerReport
}

// Stats aggregates the counters every fabric maintains.
type Stats struct {
	Injected  uint64
	Delivered uint64
	// Latency is the exact end-to-end latency distribution in cycles.
	Latency *metrics.Histogram
	// PerClass splits latency by virtual network: coherence studies care
	// whether requests or data responses are the slow class.
	PerClass [NumClasses]metrics.Summary
	// QueueDelay measures source-NI queueing (injection backpressure).
	QueueDelay metrics.Summary
	// HopCount distribution (electrical) or token wait (optical); the
	// fabric documents its meaning.
	HopCount metrics.Summary
	// BytesDelivered totals payload bytes that completed.
	BytesDelivered uint64
}

// NewStats returns an initialized stats block.
func NewStats() *Stats {
	return &Stats{Latency: metrics.NewLatencyHistogram(20)}
}

// RecordDelivery folds one completed message into the counters.
func (s *Stats) RecordDelivery(m *Message) {
	s.Delivered++
	s.BytesDelivered += uint64(m.Bytes)
	s.Latency.Add(float64(m.Latency()))
	if m.Class < NumClasses {
		s.PerClass[m.Class].Add(float64(m.Latency()))
	}
}

// MeanLatency returns the mean delivered latency in cycles.
func (s *Stats) MeanLatency() float64 { return s.Latency.Mean() }

// PowerReport is the resolved power of a fabric over a measurement window.
type PowerReport struct {
	// StaticMW is load-independent power (leakage, laser, ring tuning).
	StaticMW float64
	// DynamicMW is activity-proportional power averaged over the window.
	DynamicMW float64
	// Breakdown itemizes contributions by component name.
	Breakdown map[string]float64
}

// TotalMW returns static plus dynamic power.
func (p PowerReport) TotalMW() float64 { return p.StaticMW + p.DynamicMW }

// EnergyMJ returns the window energy in millijoules given the elapsed
// simulated seconds.
func (p PowerReport) EnergyMJ(seconds float64) float64 {
	return p.TotalMW() * seconds
}
