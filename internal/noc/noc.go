// Package noc defines the interconnect abstraction shared by every fabric in
// onocsim — the electrical mesh, the optical crossbar, and the ideal
// reference network — together with the message type, delivery statistics,
// and power reporting common to all of them.
//
// All fabrics are synchronous cycle-level models: the owner calls Tick once
// per system clock cycle, injects messages at the current cycle, and receives
// deliveries through a callback. This single contract is what lets the
// execution-driven system, the naive trace replayer, and the self-correction
// engine run unmodified on any fabric.
package noc

import (
	"onocsim/internal/metrics"
	"onocsim/internal/sim"
)

// Class partitions messages into virtual networks so that request/response
// protocol cycles cannot deadlock in the fabric.
type Class uint8

const (
	// ClassRequest carries coherence/sync requests.
	ClassRequest Class = iota
	// ClassResponse carries data and acknowledgement responses.
	ClassResponse
	// ClassWriteback carries evictions and releases.
	ClassWriteback
	// NumClasses is the number of virtual networks.
	NumClasses
)

// String names the class for reports.
func (c Class) String() string {
	switch c {
	case ClassRequest:
		return "request"
	case ClassResponse:
		return "response"
	case ClassWriteback:
		return "writeback"
	default:
		return "invalid"
	}
}

// Message is one network transaction. The fabric treats Payload as opaque
// and guarantees delivery of every injected message exactly once.
type Message struct {
	// ID is unique per simulation and assigned by the producer.
	ID uint64
	// Src and Dst are node indices in [0, Nodes).
	Src, Dst int
	// Bytes is the payload size; the fabric derives flit/serialization
	// counts from it.
	Bytes int
	// Class selects the virtual network.
	Class Class
	// Inject and Arrive are stamped by the fabric.
	Inject, Arrive sim.Tick
	// Payload is delivered untouched to the destination.
	Payload interface{}
}

// Latency returns the end-to-end message latency; it is only meaningful
// after delivery.
func (m *Message) Latency() sim.Tick { return m.Arrive - m.Inject }

// DeliverFunc receives a message at its destination node.
//
// Ownership: the fabric guarantees it holds no reference to m after the
// callback returns, so the receiver may recycle the Message (see MsgPool)
// once it has copied out what it needs.
type DeliverFunc func(m *Message)

// Never is the NextWake sentinel meaning "no observable work pending": the
// fabric will stay silent forever unless something new is injected. It is
// the same sentinel the sharded engine uses for drained shard runners.
const Never = sim.Never

// Network is the fabric contract.
type Network interface {
	// Nodes returns the endpoint count.
	Nodes() int
	// Inject enqueues m at its source at the current cycle. Injection
	// never fails: fabrics apply backpressure internally by queueing at
	// the network interface. Self-messages (Src == Dst) are delivered on
	// the next Tick without touching the fabric.
	Inject(m *Message)
	// Tick advances the fabric by one system clock cycle.
	Tick()
	// Now returns the current cycle (number of completed Ticks).
	Now() sim.Tick
	// SetDeliver registers the delivery callback; it must be set before
	// the first Tick that could deliver.
	SetDeliver(fn DeliverFunc)
	// Busy reports whether any message is queued or in flight.
	Busy() bool
	// Stats exposes the shared counters.
	Stats() *Stats
	// ZeroLoadLatency estimates the uncontended latency of a message of
	// the given size between two nodes; the self-correction engine uses
	// it to seed its first iteration.
	ZeroLoadLatency(src, dst, bytes int) sim.Tick
	// PowerReport resolves the power model over an elapsed window.
	PowerReport(elapsed sim.Tick, clockGHz float64) PowerReport
	// NextWake returns the earliest future cycle at which the fabric
	// could perform observable work — deliver a message, move a flit,
	// start a transmission — assuming nothing new is injected. It returns
	// Never when the fabric is fully drained, and Now()+1 whenever it
	// cannot cheaply bound the next action. The invariant owners rely on:
	// every Tick strictly before NextWake is observationally a no-op, so
	// the stretch may be skipped with SkipTo.
	NextWake() sim.Tick
	// SkipTo fast-forwards the fabric clock to cycle t without ticking
	// the cycles in between. The caller must guarantee Now() ≤ t <
	// NextWake(); the fabric updates any time-dependent internal state
	// (e.g. arbitration token positions) analytically so that subsequent
	// Ticks behave exactly as if each skipped cycle had been ticked.
	SkipTo(t sim.Tick)
	// Lookahead returns the minimum number of cycles between an injection
	// at one node and its earliest possible observable effect at a
	// *different* node: serialization + hop latency for the mesh, circuit
	// setup + flight time for the crossbars, the fixed delivery latency
	// for the ideal fabric. It is a static property of the configuration
	// (never smaller than 1) and is the safe window the conservative
	// parallel engine may let shards advance without synchronizing.
	Lookahead() sim.Tick
}

// ShardObs is the fabric-side observation the sharded replay engine needs to
// reconstruct serial statistics without re-deriving fabric-internal decisions.
// For crossbars it is recorded when a queued message wins its channel (Start =
// the transmit-start cycle, Queue = the token/channel wait); for the ideal
// fabric it is recorded at injection (Start = the injection cycle, Queue = the
// bandwidth-cap stall). Fabrics emit at most one observation per message and
// none for messages whose serial path records no such sample.
type ShardObs struct {
	Start sim.Tick
	Queue float64
}

// ShardObsFunc receives the per-message observation for message ID id.
type ShardObsFunc func(id uint64, obs ShardObs)

// SeqOrder names the rule a fabric uses to break ties between deliveries that
// complete at the same cycle, so a sharded merge can reproduce the serial
// delivery order without access to the serial sequence counter.
type SeqOrder int

const (
	// SeqByService orders same-cycle deliveries by when and where their
	// transmission started: first by transmit-start cycle, then — for
	// transmissions starting the same cycle — by the fabric's channel scan
	// order (== ShardNode), with locally-delivered self-messages sorting
	// after all transmissions of their injection cycle, by message ID.
	SeqByService SeqOrder = iota
	// SeqByInjection orders same-cycle deliveries by global injection
	// rank: the fabric assigns sequence numbers at Inject, so the serial
	// tie-break is the order messages entered the network.
	SeqByInjection
)

// ScheduleShardable is implemented by fabrics whose schedule-driven replay —
// injections fixed up front, no delivery→injection feedback — factorizes into
// independent per-node slices: every resource a message uses is owned by the
// single node ShardNode(src, dst), so a replica fabric fed only the messages
// of the nodes it owns evolves those nodes' state exactly as the serial run
// does. The crossbars qualify (MWSR arbitrates per destination, SWMR
// serializes per source), as does the ideal fabric (per-source bandwidth
// cap). The mesh does not: wormhole flits from different sources contend for
// shared links every cycle.
type ScheduleShardable interface {
	Network
	// ShardNode returns the node index that owns all fabric resources a
	// src→dst message touches.
	ShardNode(src, dst int) int
	// SetShardObs registers the observation sink; nil disables it.
	SetShardObs(fn ShardObsFunc)
	// SeqOrder reports the fabric's same-cycle delivery tie-break rule.
	SeqOrder() SeqOrder
}

// Snapshot is an opaque deep copy of a fabric's mutable state, produced by
// Checkpointer.Snapshot. A snapshot owns every piece of state it captures —
// cloned messages, cloned statistics, copied queues — so the live fabric may
// keep running (or be Reset) without invalidating it. SnapshotAt reports the
// fabric clock at capture time; the correction loop uses it to decide which
// checkpoint is still inside a new schedule's frozen prefix.
type Snapshot interface {
	SnapshotAt() sim.Tick
}

// Checkpointer is implemented by fabrics whose full mutable state can be
// captured mid-run and restored later — the primitive behind incremental
// self-correction (replay resumes from the deepest checkpoint still valid
// under the next round's schedule instead of from cycle zero).
//
// The contract mirrors Resettable: Restore(s) must leave the fabric
// observationally identical to the one Snapshot was called on at that
// instant — clock, statistics (Welford accumulators included), every queued
// and in-flight message, arbitration state (token positions, credits,
// round-robin pointers), and fault counters. Like Reset, the delivery and
// shard-observation callbacks are deliberately left in place. Restore
// deep-copies *from* the snapshot, so one snapshot may be restored any
// number of times, onto the originating instance or any identically
// configured one. State that is immutable or a pure function of the
// configuration (topology wiring, photonic budgets, lazily materialized
// fault timelines, serialization memo tables, free lists) is exempt.
type Checkpointer interface {
	// Snapshot captures the fabric's mutable state at the current cycle.
	Snapshot() Snapshot
	// Restore rewinds the fabric to the captured state. It panics if s was
	// produced by a different fabric kind or configuration shape.
	Restore(s Snapshot)
}

// Resettable is implemented by fabrics that can return to their
// just-constructed state, letting owners reuse one network across
// independent runs instead of rebuilding it. Reset must restore the clock
// to zero, drop all queued and in-flight traffic, zero every statistic and
// power counter, and re-arm arbitration state (token positions, credits,
// round-robin pointers) to the constructor values. The delivery callback
// is deliberately left in place; callers that need a different sink call
// SetDeliver again.
type Resettable interface {
	Reset()
}

// SkipIdle advances net to cycle target using NextWake/SkipTo: stretches
// the fabric provably sleeps through are jumped in O(1), cycles with work
// are ticked normally. It is the drain-loop helper shared by the replay
// engines and the synthetic harness.
func SkipIdle(net Network, target sim.Tick) {
	for net.Now() < target {
		if wake := net.NextWake(); wake > net.Now()+1 {
			if wake > target {
				wake = target + 1
			}
			net.SkipTo(wake - 1)
			if net.Now() >= target {
				return
			}
		}
		net.Tick()
	}
}

// MsgPool recycles Message allocations inside one goroutine-confined
// simulation. Producers Get a zeroed message, fill it and Inject it; once
// the delivery callback has copied out what it needs it may Put the message
// back. It is deliberately not safe for concurrent use — simulations are
// single-goroutine by design, and a sync.Pool would add contention and
// nondeterministic reuse for nothing.
type MsgPool struct {
	free []*Message
}

// Get returns a zeroed message, recycled when possible.
func (p *MsgPool) Get() *Message {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*m = Message{}
		return m
	}
	return &Message{}
}

// Put returns a delivered message to the pool. The caller must not touch m
// afterwards.
func (p *MsgPool) Put(m *Message) {
	p.free = append(p.free, m)
}

// Stats aggregates the counters every fabric maintains.
type Stats struct {
	Injected  uint64
	Delivered uint64
	// Latency is the exact end-to-end latency distribution in cycles.
	Latency *metrics.Histogram
	// PerClass splits latency by virtual network: coherence studies care
	// whether requests or data responses are the slow class.
	PerClass [NumClasses]metrics.Summary
	// QueueDelay measures source-NI queueing (injection backpressure).
	QueueDelay metrics.Summary
	// HopCount distribution (electrical) or token wait (optical); the
	// fabric documents its meaning.
	HopCount metrics.Summary
	// BytesDelivered totals payload bytes that completed.
	BytesDelivered uint64
	// Faults counts injected-fault events the fabric absorbed (all zero on
	// fault-free runs, so persisted pre-fault statistics decode
	// losslessly with the zero value).
	Faults FaultCounts
}

// FaultCounts tallies fault events by class. Each event is attributable to
// exactly one channel, and every counter is a plain sum, so sharded replicas'
// counts add up to the serial run's — the property that keeps faulted runs
// shard-invariant.
type FaultCounts struct {
	// TokenLosses counts lost-token events (each stalls one MWSR home
	// channel until its timeout-and-regenerate recovery fires).
	TokenLosses uint64
	// DriftedSends counts transmissions serialized at reduced WDM degree
	// because a thermal drift window detuned part of the channel's rings.
	DriftedSends uint64
	// DeratedSends counts transmissions slowed because laser droop left
	// their lightpath short of margin at full modulation rate.
	DeratedSends uint64
	// Rerouted counts messages the hybrid fabric diverted to the
	// electrical mesh because their optical path was blacklisted.
	Rerouted uint64
}

// Add accumulates another tally (used when merging shard replicas).
func (f *FaultCounts) Add(o FaultCounts) {
	f.TokenLosses += o.TokenLosses
	f.DriftedSends += o.DriftedSends
	f.DeratedSends += o.DeratedSends
	f.Rerouted += o.Rerouted
}

// Clone returns an independent deep copy of the statistics block. PerClass,
// QueueDelay and HopCount are value-type Welford summaries and copy with the
// struct; only the latency histogram needs an explicit deep copy.
func (s *Stats) Clone() *Stats {
	c := *s
	c.Latency = s.Latency.Clone()
	return &c
}

// NewStats returns an initialized stats block.
func NewStats() *Stats {
	return &Stats{Latency: metrics.NewLatencyHistogram(20)}
}

// RecordDelivery folds one completed message into the counters.
func (s *Stats) RecordDelivery(m *Message) {
	s.Delivered++
	s.BytesDelivered += uint64(m.Bytes)
	s.Latency.Add(float64(m.Latency()))
	if m.Class < NumClasses {
		s.PerClass[m.Class].Add(float64(m.Latency()))
	}
}

// MeanLatency returns the mean delivered latency in cycles.
func (s *Stats) MeanLatency() float64 { return s.Latency.Mean() }

// PowerReport is the resolved power of a fabric over a measurement window.
type PowerReport struct {
	// StaticMW is load-independent power (leakage, laser, ring tuning).
	StaticMW float64
	// DynamicMW is activity-proportional power averaged over the window.
	DynamicMW float64
	// Breakdown itemizes contributions by component name.
	Breakdown map[string]float64
}

// TotalMW returns static plus dynamic power.
func (p PowerReport) TotalMW() float64 { return p.StaticMW + p.DynamicMW }

// EnergyMJ returns the window energy in millijoules given the elapsed
// simulated seconds.
func (p PowerReport) EnergyMJ(seconds float64) float64 {
	return p.TotalMW() * seconds
}
