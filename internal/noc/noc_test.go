package noc

import (
	"testing"

	"onocsim/internal/sim"
)

func TestClassStrings(t *testing.T) {
	cases := map[Class]string{
		ClassRequest:   "request",
		ClassResponse:  "response",
		ClassWriteback: "writeback",
		NumClasses:     "invalid",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestMessageLatency(t *testing.T) {
	m := &Message{Inject: 10, Arrive: 35}
	if m.Latency() != 25 {
		t.Fatalf("latency = %d", m.Latency())
	}
}

func TestStatsRecordDelivery(t *testing.T) {
	s := NewStats()
	s.RecordDelivery(&Message{Bytes: 64, Inject: 0, Arrive: 8, Class: ClassRequest})
	s.RecordDelivery(&Message{Bytes: 8, Inject: 4, Arrive: 20, Class: ClassResponse})
	if s.Delivered != 2 {
		t.Fatalf("delivered = %d", s.Delivered)
	}
	if s.BytesDelivered != 72 {
		t.Fatalf("bytes = %d", s.BytesDelivered)
	}
	if s.MeanLatency() != 12 {
		t.Fatalf("mean latency = %g, want 12", s.MeanLatency())
	}
	if s.PerClass[ClassRequest].Mean() != 8 || s.PerClass[ClassResponse].Mean() != 16 {
		t.Fatalf("per-class means: %g/%g",
			s.PerClass[ClassRequest].Mean(), s.PerClass[ClassResponse].Mean())
	}
	if s.PerClass[ClassWriteback].Count() != 0 {
		t.Fatal("untouched class has samples")
	}
}

func TestPowerReport(t *testing.T) {
	p := PowerReport{StaticMW: 100, DynamicMW: 50}
	if p.TotalMW() != 150 {
		t.Fatalf("total = %g", p.TotalMW())
	}
	if got := p.EnergyMJ(2); got != 300 {
		t.Fatalf("energy = %g mJ, want 300", got)
	}
}

func TestIdealFixedLatency(t *testing.T) {
	n := NewIdeal(4, 10, 0)
	var arrived []*Message
	n.SetDeliver(func(m *Message) { arrived = append(arrived, m) })
	n.Inject(&Message{ID: 1, Src: 0, Dst: 3, Bytes: 64})
	for i := 0; i < 20; i++ {
		n.Tick()
	}
	if len(arrived) != 1 {
		t.Fatalf("delivered %d", len(arrived))
	}
	if got := arrived[0].Latency(); got != 10 {
		t.Fatalf("latency = %d, want exactly 10", got)
	}
	if n.Busy() {
		t.Fatal("still busy after delivery")
	}
}

func TestIdealBandwidthCapSerializes(t *testing.T) {
	// 8 bytes/cycle cap: two 16-byte messages from one node serialize by
	// 2 cycles each.
	n := NewIdeal(2, 5, 8)
	var lats []sim.Tick
	n.SetDeliver(func(m *Message) { lats = append(lats, m.Latency()) })
	n.Inject(&Message{ID: 1, Src: 0, Dst: 1, Bytes: 16})
	n.Inject(&Message{ID: 2, Src: 0, Dst: 1, Bytes: 16})
	for i := 0; i < 30; i++ {
		n.Tick()
	}
	if len(lats) != 2 {
		t.Fatalf("delivered %d", len(lats))
	}
	// First: 1 extra serialization cycle (2-cycle ser, starts at 0) →
	// 5+1=6; second starts after the first's slot → 5+3=8.
	if lats[0] != 6 || lats[1] != 8 {
		t.Fatalf("latencies = %v, want [6 8]", lats)
	}
}

func TestIdealSelfMessage(t *testing.T) {
	n := NewIdeal(2, 10, 0)
	got := 0
	n.SetDeliver(func(m *Message) {
		got++
		if m.Latency() != 1 {
			t.Fatalf("self-message latency = %d, want 1", m.Latency())
		}
	})
	n.Inject(&Message{ID: 1, Src: 1, Dst: 1, Bytes: 8})
	n.Tick()
	if got != 1 {
		t.Fatal("self-message not delivered next tick")
	}
}

func TestIdealZeroLoadLatency(t *testing.T) {
	n := NewIdeal(4, 10, 8)
	if n.ZeroLoadLatency(0, 0, 64) != 1 {
		t.Fatal("self ZLL should be 1")
	}
	// 16 bytes at 8 B/cyc → +1 serialization beyond the first cycle.
	if got := n.ZeroLoadLatency(0, 1, 16); got != 11 {
		t.Fatalf("ZLL = %d, want 11", got)
	}
	uncapped := NewIdeal(4, 10, 0)
	if got := uncapped.ZeroLoadLatency(0, 1, 1<<20); got != 10 {
		t.Fatalf("uncapped ZLL = %d, want 10", got)
	}
}

func TestIdealDeliveryOrderDeterministic(t *testing.T) {
	run := func() []uint64 {
		n := NewIdeal(4, 5, 0)
		var order []uint64
		n.SetDeliver(func(m *Message) { order = append(order, m.ID) })
		for id := uint64(1); id <= 10; id++ {
			n.Inject(&Message{ID: id, Src: int(id) % 4, Dst: int(id+1) % 4, Bytes: 8})
		}
		for i := 0; i < 20; i++ {
			n.Tick()
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("deliveries %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery order diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestIdealPanicsOnBadEndpoints(t *testing.T) {
	n := NewIdeal(2, 5, 0)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range endpoint accepted")
		}
	}()
	n.Inject(&Message{ID: 1, Src: 0, Dst: 7, Bytes: 8})
}

func TestIdealConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewIdeal(0, 5, 0) },
		func() { NewIdeal(4, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor args accepted")
				}
			}()
			f()
		}()
	}
}

func TestIdealQueueMatchesGeoD1Theory(t *testing.T) {
	// Cross-validation against queueing theory: the capped injection port
	// is a discrete-time Geo/D/1 queue (Bernoulli arrivals, deterministic
	// service). Its mean queueing delay is Wq = s(s−1)p / (2(1−ρ)) with
	// service s and utilization ρ = p·s. The simulator's QueueDelay stat
	// must track the formula — a wrong credit/serialization model shows
	// up here long before it corrupts an experiment.
	const (
		svc   = 4    // 32-byte packets at 8 B/cyc
		p     = 0.15 // arrivals per cycle
		pkts  = 60000
		nodes = 2
	)
	n := NewIdeal(nodes, 5, 8)
	n.SetDeliver(func(m *Message) {})
	rng := sim.NewRNG(99)
	id := uint64(0)
	sent := 0
	for sent < pkts {
		n.Tick()
		if rng.Bernoulli(p) {
			id++
			n.Inject(&Message{ID: id, Src: 0, Dst: 1, Bytes: 32})
			sent++
		}
	}
	for n.Busy() {
		n.Tick()
	}
	rho := p * svc
	// Theory gives the pure queueing wait; the simulator's QueueDelay
	// stat additionally contains the deterministic serialization tail of
	// s−1 cycles (the message occupies the port until its last byte).
	want := float64(svc*(svc-1))*p/(2*(1-rho)) + float64(svc-1)
	got := n.Stats().QueueDelay.Mean()
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("Geo/D/1 mean wait: simulated %.3f, theory %.3f (ρ=%.2f)", got, want, rho)
	}
}

func TestIdealQueueDelayStat(t *testing.T) {
	n := NewIdeal(2, 5, 4) // 4 B/cyc
	n.SetDeliver(func(m *Message) {})
	// Burst of 4 × 8-byte messages: each occupies 2 cycles of the port.
	for i := 0; i < 4; i++ {
		n.Inject(&Message{ID: uint64(i + 1), Src: 0, Dst: 1, Bytes: 8})
	}
	for i := 0; i < 30; i++ {
		n.Tick()
	}
	if n.Stats().QueueDelay.Mean() <= 0 {
		t.Fatal("bursty injection should show queue delay")
	}
	if n.Stats().Delivered != 4 {
		t.Fatalf("delivered = %d", n.Stats().Delivered)
	}
}
