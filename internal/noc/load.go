package noc

import "fmt"

// PairLoad aggregates the traffic offered between one (src, dst) endpoint
// pair: how many messages and how many payload bytes.
type PairLoad struct {
	Messages int64
	Bytes    int64
}

// add folds another aggregate in.
func (p *PairLoad) add(o PairLoad) {
	p.Messages += o.Messages
	p.Bytes += o.Bytes
}

// LoadMatrix is the per-(src, dst) offered-load histogram of a traffic
// source, built in one O(messages) pass. Analytical latency models consume
// it through the per-destination, per-source and per-pair accessors: the
// MWSR crossbar's token wait is driven by destination-channel load, the SWMR
// crossbar's serialization by source-channel load, and the mesh's link
// utilization by per-pair routes. Self-traffic (src == dst) bypasses every
// fabric, so callers conventionally exclude it.
type LoadMatrix struct {
	nodes  int
	pairs  []PairLoad // row-major [src*nodes+dst], zero value = no traffic
	perSrc []PairLoad
	perDst []PairLoad
	total  PairLoad
}

// NewLoadMatrix returns an empty histogram over the given endpoint count.
func NewLoadMatrix(nodes int) *LoadMatrix {
	if nodes < 1 {
		panic(fmt.Sprintf("noc: load matrix needs ≥1 node, got %d", nodes))
	}
	return &LoadMatrix{
		nodes:  nodes,
		pairs:  make([]PairLoad, nodes*nodes),
		perSrc: make([]PairLoad, nodes),
		perDst: make([]PairLoad, nodes),
	}
}

// Nodes returns the endpoint count.
func (l *LoadMatrix) Nodes() int { return l.nodes }

// Add records one message of the given payload size.
func (l *LoadMatrix) Add(src, dst, bytes int) {
	if src < 0 || src >= l.nodes || dst < 0 || dst >= l.nodes {
		panic(fmt.Sprintf("noc: load matrix endpoints (%d->%d) out of [0,%d)", src, dst, l.nodes))
	}
	one := PairLoad{Messages: 1, Bytes: int64(bytes)}
	l.pairs[src*l.nodes+dst].add(one)
	l.perSrc[src].add(one)
	l.perDst[dst].add(one)
	l.total.add(one)
}

// Pair returns the aggregate load offered from src to dst.
func (l *LoadMatrix) Pair(src, dst int) PairLoad { return l.pairs[src*l.nodes+dst] }

// FromSrc returns the aggregate load offered by one source.
func (l *LoadMatrix) FromSrc(src int) PairLoad { return l.perSrc[src] }

// ToDst returns the aggregate load offered to one destination.
func (l *LoadMatrix) ToDst(dst int) PairLoad { return l.perDst[dst] }

// Total returns the whole-matrix aggregate.
func (l *LoadMatrix) Total() PairLoad { return l.total }

// ForEachPair visits every pair with traffic, in ascending (src, dst) order.
func (l *LoadMatrix) ForEachPair(fn func(src, dst int, load PairLoad)) {
	for i, p := range l.pairs {
		if p.Messages > 0 {
			fn(i/l.nodes, i%l.nodes, p)
		}
	}
}
