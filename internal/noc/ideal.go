package noc

import (
	"fmt"

	"onocsim/internal/sim"
)

// Ideal is a contention-free fixed-latency fabric with an optional per-node
// injection bandwidth cap. It is the cheap reference network on which traces
// are captured: fast to simulate and deliberately different from both study
// fabrics, so that naive timestamp replay exhibits the timing error the
// self-correction model must remove.
type Ideal struct {
	nodes     int
	latency   sim.Tick
	bytesPerC int
	now       sim.Tick
	deliver   DeliverFunc
	shardObs  ShardObsFunc
	stats     *Stats

	// nextFree[n] is the first cycle node n's injection port is free,
	// implementing the bandwidth cap as a serialization delay.
	nextFree []sim.Tick
	inflight deliveryHeap
}

type pendingDelivery struct {
	at  sim.Tick
	seq uint64
	msg *Message
}

// deliveryHeap is a value-based 4-ary min-heap ordered by (at, seq); like
// the sim engine it avoids container/heap's per-operation interface boxing.
type deliveryHeap []pendingDelivery

func (h deliveryHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *deliveryHeap) push(d pendingDelivery) {
	q := append(*h, d)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

func (h *deliveryHeap) pop() pendingDelivery {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = pendingDelivery{} // release the message reference
	q = q[:n]
	i := 0
	for {
		best := i
		for k := 4*i + 1; k <= 4*i+4 && k < n; k++ {
			if q.less(k, best) {
				best = k
			}
		}
		if best == i {
			break
		}
		q[i], q[best] = q[best], q[i]
		i = best
	}
	*h = q
	return top
}

// NewIdeal builds an ideal network over the given number of nodes with the
// given fixed latency (cycles) and per-node injection bandwidth cap in
// bytes/cycle (0 disables the cap).
func NewIdeal(nodes int, latency sim.Tick, bytesPerCycle int) *Ideal {
	if nodes < 1 {
		panic(fmt.Sprintf("noc: ideal network needs ≥1 node, got %d", nodes))
	}
	if latency < 1 {
		panic(fmt.Sprintf("noc: ideal latency must be ≥1, got %d", latency))
	}
	return &Ideal{
		nodes:     nodes,
		latency:   latency,
		bytesPerC: bytesPerCycle,
		stats:     NewStats(),
		nextFree:  make([]sim.Tick, nodes),
	}
}

// Nodes implements Network.
func (n *Ideal) Nodes() int { return n.nodes }

// SetDeliver implements Network.
func (n *Ideal) SetDeliver(fn DeliverFunc) { n.deliver = fn }

// Now implements Network.
func (n *Ideal) Now() sim.Tick { return n.now }

// Stats implements Network.
func (n *Ideal) Stats() *Stats { return n.stats }

// Inject implements Network.
func (n *Ideal) Inject(m *Message) {
	if m.Src < 0 || m.Src >= n.nodes || m.Dst < 0 || m.Dst >= n.nodes {
		panic(fmt.Sprintf("noc: message %d endpoints (%d->%d) out of range [0,%d)", m.ID, m.Src, m.Dst, n.nodes))
	}
	m.Inject = n.now
	n.stats.Injected++
	start := n.now
	if n.bytesPerC > 0 {
		if n.nextFree[m.Src] > start {
			start = n.nextFree[m.Src]
		}
		ser := sim.Tick((m.Bytes + n.bytesPerC - 1) / n.bytesPerC)
		if ser < 1 {
			ser = 1
		}
		n.nextFree[m.Src] = start + ser
		start += ser - 1
	}
	n.stats.QueueDelay.Add(float64(start - n.now))
	if n.shardObs != nil {
		n.shardObs(m.ID, ShardObs{Start: n.now, Queue: float64(start - n.now)})
	}
	at := start + n.latency
	if m.Src == m.Dst {
		at = n.now + 1
	}
	n.inflight.push(pendingDelivery{at: at, seq: uint64(n.stats.Injected), msg: m})
}

// Tick implements Network.
func (n *Ideal) Tick() {
	n.now++
	for len(n.inflight) > 0 && n.inflight[0].at <= n.now {
		d := n.inflight.pop()
		d.msg.Arrive = n.now
		n.stats.RecordDelivery(d.msg)
		n.stats.HopCount.Add(1)
		if n.deliver != nil {
			n.deliver(d.msg)
		}
	}
}

// Busy implements Network.
func (n *Ideal) Busy() bool { return len(n.inflight) > 0 }

// NextWake implements Network: the earliest pending delivery, or Never when
// drained. The fixed-latency model does no other per-cycle work.
func (n *Ideal) NextWake() sim.Tick {
	if len(n.inflight) == 0 {
		return Never
	}
	return n.inflight[0].at
}

// SkipTo implements Network. All internal state (nextFree, delivery times)
// is kept in absolute cycles, so skipping is a pure clock jump.
func (n *Ideal) SkipTo(t sim.Tick) {
	if t > n.now {
		n.now = t
	}
}

// Reset implements Resettable: back to the just-constructed state.
func (n *Ideal) Reset() {
	n.now = 0
	n.stats = NewStats()
	for i := range n.nextFree {
		n.nextFree[i] = 0
	}
	n.inflight = n.inflight[:0]
}

// idealSnapshot captures the ideal fabric's mutable state: clock, statistics,
// per-node port reservations and the pending-delivery heap. The heap is stored
// as-is (copying the slice preserves the heap shape) with every message cloned
// so the snapshot survives pool recycling of the originals.
type idealSnapshot struct {
	now      sim.Tick
	stats    *Stats
	nextFree []sim.Tick
	inflight deliveryHeap
}

// SnapshotAt implements Snapshot.
func (s *idealSnapshot) SnapshotAt() sim.Tick { return s.now }

// cloneDeliveries deep-copies a delivery heap, giving every entry a fresh
// Message so neither side can observe the other's mutations.
func cloneDeliveries(src deliveryHeap) deliveryHeap {
	if len(src) == 0 {
		return nil
	}
	dst := make(deliveryHeap, len(src))
	copy(dst, src)
	for i := range dst {
		m := *dst[i].msg
		dst[i].msg = &m
	}
	return dst
}

// Snapshot implements Checkpointer.
func (n *Ideal) Snapshot() Snapshot {
	s := &idealSnapshot{
		now:      n.now,
		stats:    n.stats.Clone(),
		nextFree: make([]sim.Tick, len(n.nextFree)),
		inflight: cloneDeliveries(n.inflight),
	}
	copy(s.nextFree, n.nextFree)
	return s
}

// Restore implements Checkpointer. It deep-copies from the snapshot, so the
// snapshot stays valid for further restores.
func (n *Ideal) Restore(s Snapshot) {
	snap := s.(*idealSnapshot)
	n.now = snap.now
	n.stats = snap.stats.Clone()
	copy(n.nextFree, snap.nextFree)
	for i := range n.inflight {
		n.inflight[i] = pendingDelivery{}
	}
	n.inflight = append(n.inflight[:0], cloneDeliveries(snap.inflight)...)
}

// Lookahead implements Network: the fixed delivery latency is the minimum
// delay between an injection and its effect at another node.
func (n *Ideal) Lookahead() sim.Tick { return n.latency }

// ShardNode implements ScheduleShardable. The only stateful resource is the
// per-source injection port (nextFree), so a message's whole lifetime is
// owned by its source.
func (n *Ideal) ShardNode(src, dst int) int { return src }

// SetShardObs implements ScheduleShardable. Like the delivery callback, the
// sink survives Reset.
func (n *Ideal) SetShardObs(fn ShardObsFunc) { n.shardObs = fn }

// SeqOrder implements ScheduleShardable: the delivery heap's tie-break seq is
// assigned at Inject, so same-cycle deliveries complete in injection order.
func (n *Ideal) SeqOrder() SeqOrder { return SeqByInjection }

// ZeroLoadLatency implements Network.
func (n *Ideal) ZeroLoadLatency(src, dst, bytes int) sim.Tick {
	if src == dst {
		return 1
	}
	l := n.latency
	if n.bytesPerC > 0 {
		l += sim.Tick((bytes+n.bytesPerC-1)/n.bytesPerC) - 1
	}
	return l
}

// PowerReport implements Network. The ideal fabric has no power model; it
// exists only as a capture substrate.
func (n *Ideal) PowerReport(elapsed sim.Tick, clockGHz float64) PowerReport {
	return PowerReport{Breakdown: map[string]float64{}}
}
