package core

import (
	"reflect"
	"testing"

	"onocsim/internal/config"
	"onocsim/internal/enoc"
	"onocsim/internal/hybrid"
	"onocsim/internal/noc"
	"onocsim/internal/onoc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// checkpointFabrics covers every fabric family the incremental loop can
// meet, parameterized by fault preset (ideal and mesh have no optical fault
// machinery and ignore the preset).
func checkpointFabrics(t *testing.T, nodes int, preset string) map[string]NetworkFactory {
	t.Helper()
	cfg := config.Default()
	faults, err := config.FaultPreset(preset)
	if err != nil {
		t.Fatal(err)
	}
	swmr := cfg.Optical
	swmr.Architecture = "swmr"
	return map[string]NetworkFactory{
		"ideal":  func() noc.Network { return noc.NewIdeal(nodes, 15, 16) },
		"mwsr":   func() noc.Network { return onoc.NewWithFaults(nodes, cfg.Optical, faults, 42) },
		"swmr":   func() noc.Network { return onoc.NewSWMRWithFaults(nodes, swmr, faults, 42) },
		"mesh":   func() noc.Network { return enoc.New(nodes, cfg.Mesh) },
		"hybrid": func() noc.Network { return hybrid.NewWithFaults(nodes, cfg.Mesh, cfg.Optical, 2, faults, 42) },
	}
}

// stripWork zeroes the execution-mode work counters: they are the only
// fields allowed to differ between full and incremental runs.
func stripWork(r CorrectionResult) CorrectionResult {
	r.ReplayedEvents = 0
	r.SavedCycles = 0
	return r
}

// TestIncrementalMatchesFull: the incremental correction loop is
// byte-identical to the full-replay loop — final result, full per-round
// trajectory, statistics block — for every fabric family, fault preset, and
// shard count.
func TestIncrementalMatchesFull(t *testing.T) {
	const nodes = 16
	sctm := config.Default().SCTM
	incr := sctm
	incr.Incremental = true
	for _, preset := range []string{"off", "light", "heavy"} {
		for name, mk := range checkpointFabrics(t, nodes, preset) {
			tr := randomTrace(99, 60, nodes)
			want, err := SelfCorrect(mk, tr, sctm)
			if err != nil {
				t.Fatalf("%s/%s full: %v", name, preset, err)
			}
			for _, k := range []int{1, 2, 8} {
				got, err := SelfCorrectSharded(mk, tr, incr, k)
				if err != nil {
					t.Fatalf("%s/%s shards=%d incremental: %v", name, preset, k, err)
				}
				if !reflect.DeepEqual(stripWork(want), stripWork(got)) {
					t.Fatalf("%s/%s shards=%d: incremental trajectory drift", name, preset, k)
				}
				if got.ReplayedEvents > len(tr.Events)*len(got.Iterations) {
					t.Fatalf("%s/%s shards=%d: replayed %d events, full loop would replay %d",
						name, preset, k, got.ReplayedEvents, len(tr.Events)*len(got.Iterations))
				}
			}
		}
	}
}

// TestSnapshotRestoreRoundTrip: capturing a snapshot mid-replay and resuming
// from it — on the same instance after it ran to completion, and on a fresh
// instance that never saw the prefix — reproduces the uninterrupted replay
// byte-for-byte on every fabric family and fault preset.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	const nodes = 16
	for _, preset := range []string{"off", "light", "heavy"} {
		for name, mk := range checkpointFabrics(t, nodes, preset) {
			tr := randomTrace(7, 80, nodes)
			inject := make([]sim.Tick, len(tr.Events))
			for i := range tr.Events {
				inject[i] = tr.Events[i].RefInject
			}
			n := len(tr.Events)
			order := injectionOrder(inject)

			// Uninterrupted replay, capturing one snapshot halfway through.
			net := mk()
			ck := net.(noc.Checkpointer)
			full := ReplayResult{Inject: make([]sim.Tick, n), Arrive: make([]sim.Tick, n)}
			var pool noc.MsgPool
			delivered := 0
			net.SetDeliver(func(m *noc.Message) {
				idx := int(m.ID) - 1
				full.Arrive[idx] = m.Arrive
				full.Inject[idx] = m.Inject
				delivered++
				pool.Put(m)
			})
			var snap noc.Snapshot
			capture := func(injected int) {
				if snap == nil && injected >= n/2 {
					snap = ck.Snapshot()
				}
			}
			if err := replayDrain(net, tr, inject, order, 0, &delivered, n, &pool, capture); err != nil {
				t.Fatalf("%s/%s full replay: %v", name, preset, err)
			}
			finalizeResult(&full, tr, net)
			if snap == nil {
				t.Fatalf("%s/%s: no snapshot captured", name, preset)
			}

			resume := func(target noc.Network, label string) {
				t0 := snap.SnapshotAt()
				target.(noc.Checkpointer).Restore(snap)
				res := ReplayResult{Inject: make([]sim.Tick, n), Arrive: make([]sim.Tick, n)}
				next, done := 0, 0
				for _, i := range order {
					if inject[i] <= t0 {
						next++
					}
				}
				for i := 0; i < n; i++ {
					if full.Arrive[i] <= t0 {
						res.Inject[i] = full.Inject[i]
						res.Arrive[i] = full.Arrive[i]
						done++
					}
				}
				var rpool noc.MsgPool
				target.SetDeliver(func(m *noc.Message) {
					idx := int(m.ID) - 1
					res.Arrive[idx] = m.Arrive
					res.Inject[idx] = m.Inject
					done++
					rpool.Put(m)
				})
				if err := replayDrain(target, tr, inject, order, next, &done, n, &rpool, nil); err != nil {
					t.Fatalf("%s/%s %s: %v", name, preset, label, err)
				}
				finalizeResult(&res, tr, target)
				if !reflect.DeepEqual(full, res) {
					t.Fatalf("%s/%s %s: resumed replay drifted from uninterrupted replay", name, preset, label)
				}
			}
			// Same instance, dirty post-run state overwritten by Restore.
			resume(net, "same-instance resume")
			// Fresh identically-configured instance that never ran the prefix.
			resume(mk(), "fresh-instance resume")
		}
	}
}

// TestIncrementalEmptyFrozenPrefix: when the next round changes the very
// first injection, the frozen prefix is empty, every checkpoint is
// invalidated, and the runner must fall back to a full replay — correctly.
func TestIncrementalEmptyFrozenPrefix(t *testing.T) {
	const nodes = 16
	cfg := config.Default()
	tr := randomTrace(31, 50, nodes)
	n := len(tr.Events)
	mk := func() noc.Network { return onoc.New(nodes, cfg.Optical) }

	injA := make([]sim.Tick, n)
	for i := range tr.Events {
		injA[i] = tr.Events[i].RefInject
	}
	// Find the earliest-injecting event and move it: the boundary becomes its
	// old time, which precedes every checkpoint capture.
	first := 0
	for i := 1; i < n; i++ {
		if injA[i] < injA[first] {
			first = i
		}
	}
	injB := make([]sim.Tick, n)
	copy(injB, injA)
	injB[first] += 5

	r := newIncrSerial(mk)
	resA, err := r.run(tr, injA)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ladder) == 0 {
		t.Fatal("round A captured no checkpoints")
	}
	resB, err := r.run(tr, injB)
	if err != nil {
		t.Fatal(err)
	}
	if r.saved != 0 {
		t.Fatalf("saved %d cycles despite an empty frozen prefix", r.saved)
	}
	if r.replayed != 2*n {
		t.Fatalf("replayed %d events, want %d (two full rounds)", r.replayed, 2*n)
	}
	wantA, err := ReplaySchedule(mk(), tr, injA)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := ReplaySchedule(mk(), tr, injB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantA, resA) {
		t.Fatal("round A drifted from a plain full replay")
	}
	if !reflect.DeepEqual(wantB, resB) {
		t.Fatal("fallback round B drifted from a plain full replay")
	}
}

// TestIncrementalIdenticalScheduleResumesDeep: re-running an unchanged
// schedule must resume from the deepest checkpoint (the boundary is Never),
// replaying only the post-checkpoint suffix.
func TestIncrementalIdenticalScheduleResumesDeep(t *testing.T) {
	const nodes = 16
	cfg := config.Default()
	tr := randomTrace(13, 64, nodes)
	n := len(tr.Events)
	inject := make([]sim.Tick, n)
	for i := range tr.Events {
		inject[i] = tr.Events[i].RefInject
	}
	r := newIncrSerial(func() noc.Network { return onoc.New(nodes, cfg.Optical) })
	resA, err := r.run(tr, inject)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := r.run(tr, inject)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Fatal("identical schedule replayed differently")
	}
	if r.saved == 0 {
		t.Fatal("identical schedule saved no cycles")
	}
	// The deepest checkpoint sits at the last octile: at most n/8 injections
	// (plus threshold rounding) remain.
	if suffix := r.replayed - n; suffix > n/8+8 {
		t.Fatalf("second round replayed %d events, want at most the last octile (~%d)", suffix, n/8)
	}
}

// incrGateTrace builds the saved-work gate workload: a dependency-free head
// (75% of events, schedule constant across rounds — dep-free events inject
// at their Gap regardless of latency estimates) followed by a hotspot
// dependency-chain tail whose schedule keeps shifting while the estimates
// converge. The frozen-prefix boundary of every later round lands at the
// head/tail seam, so checkpoints covering the head survive all rounds.
func incrGateTrace(nodes int) *trace.Trace {
	tr := &trace.Trace{Nodes: nodes, Workload: "incr-gate", RefMakespan: 1_000_000}
	const head, tail = 150, 50
	for i := 0; i < head; i++ {
		at := sim.Tick(i * 8)
		tr.Events = append(tr.Events, trace.Event{
			ID: trace.EventID(i + 1), Src: i % nodes, Dst: (i*5 + 1) % nodes,
			Bytes: 64 + (i%4)*32, Class: noc.Class(i % 3),
			Kind: trace.KindData, Gap: at,
			RefInject: at, RefArrive: at + 40,
		})
	}
	// Ten parallel dependency chains, all hammering node 3: the chain heads
	// collide, queueing delays diverge from the zero-load seed, and every
	// downstream link's scheduled injection shifts round over round.
	const chains = 10
	for i := 0; i < tail; i++ {
		id := head + i + 1
		dep := trace.EventID(head) // chain anchors hang off the last head event
		if i >= chains {
			dep = trace.EventID(id - chains)
		}
		at := sim.Tick(head*8 + i*4)
		tr.Events = append(tr.Events, trace.Event{
			ID: trace.EventID(id), Src: i % nodes, Dst: 3,
			Bytes: 256, Class: noc.Class(i % 3),
			Kind: trace.KindData, Gap: 4,
			Deps:      []trace.Dep{{On: dep, Class: trace.DepCausal}},
			RefInject: at, RefArrive: at + 80,
		})
	}
	return tr
}

// TestIncrementalSavesReplayedEvents is the headline gate: on quick
// converging workloads the incremental loop must replay at least 30% fewer
// events than the full loop, on a crossbar and on the mesh. The counter is
// deterministic — no wall-clock flakiness.
func TestIncrementalSavesReplayedEvents(t *testing.T) {
	const nodes = 16
	cfg := config.Default()
	sctm := cfg.SCTM
	incr := sctm
	incr.Incremental = true
	fabrics := map[string]NetworkFactory{
		"crossbar": func() noc.Network { return onoc.New(nodes, cfg.Optical) },
		"mesh":     func() noc.Network { return enoc.New(nodes, cfg.Mesh) },
	}
	for name, mk := range fabrics {
		tr := incrGateTrace(nodes)
		full, err := SelfCorrect(mk, tr, sctm)
		if err != nil {
			t.Fatalf("%s full: %v", name, err)
		}
		got, err := SelfCorrect(mk, tr, incr)
		if err != nil {
			t.Fatalf("%s incremental: %v", name, err)
		}
		if !reflect.DeepEqual(stripWork(full), stripWork(got)) {
			t.Fatalf("%s: incremental drifted", name)
		}
		if full.ReplayedEvents == 0 {
			t.Fatalf("%s: full loop reports zero replayed events", name)
		}
		saved := float64(full.ReplayedEvents-got.ReplayedEvents) / float64(full.ReplayedEvents)
		t.Logf("%s: full=%d incremental=%d saved=%.1f%% (rounds=%d, saved cycles=%d)",
			name, full.ReplayedEvents, got.ReplayedEvents, 100*saved, len(got.Iterations), got.SavedCycles)
		if saved < 0.30 {
			t.Fatalf("%s: incremental saved only %.1f%% of replayed events, want >= 30%%", name, 100*saved)
		}
	}
}
