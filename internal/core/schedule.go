// Package core implements the paper's contribution: the Self-Correction
// Trace Model. It contains three replay engines over dependency-annotated
// traces —
//
//   - NaiveReplay: inject at the timestamps recorded on the capture network
//     (the fast-but-wrong baseline the paper improves on);
//   - CoupledReplay: a tightly coupled dependency-driven co-simulation that
//     resolves dependencies inside the network simulation (the expensive
//     upper-accuracy reference);
//   - SelfCorrect: the paper's method — an iterated schedule-then-simulate
//     fixpoint in which each round replays the trace with injection times
//     derived from the dependency DAG using the previous round's *measured*
//     per-message latencies, until the schedule stops moving.
//
// plus the error metrics that compare them against execution-driven ground
// truth.
package core

import (
	"fmt"

	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// ScheduleOptions controls dependency interpretation; the zero value is the
// full model. Disabling classes reproduces the R8 ablation.
type ScheduleOptions struct {
	DisableSyncDeps   bool
	DisableCausalDeps bool
}

// keepDep reports whether a dependency class participates in scheduling.
func (o ScheduleOptions) keepDep(c trace.DepClass) bool {
	switch c {
	case trace.DepSync:
		return !o.DisableSyncDeps
	case trace.DepCausal:
		return !o.DisableCausalDeps
	default:
		return true
	}
}

// Schedule derives an injection time for every event from the dependency
// DAG, given a per-event latency estimate: an event is injected its recorded
// gap after its last dependency's estimated arrival. Events are processed in
// ID order, which is a topological order by construction, so a single pass
// suffices.
//
// latency[i] estimates the end-to-end latency of event ID i+1 (including
// source queueing). The returned slice is indexed the same way.
func Schedule(tr *trace.Trace, latency []sim.Tick, opts ScheduleOptions) []sim.Tick {
	if len(latency) != len(tr.Events) {
		panic(fmt.Sprintf("core: %d latency estimates for %d events", len(latency), len(tr.Events)))
	}
	inject := make([]sim.Tick, len(tr.Events))
	for i := range tr.Events {
		e := &tr.Events[i]
		var ready sim.Tick // dependency-free events start at time zero
		for _, d := range e.Deps {
			if !opts.keepDep(d.Class) {
				continue
			}
			di := int(d.On) - 1
			arr := inject[di] + latency[di]
			if arr > ready {
				ready = arr
			}
		}
		inject[i] = ready + e.Gap
	}
	return inject
}

// MaxScheduleDelta returns the largest absolute difference between two
// schedules, the convergence measure of the correction loop.
func MaxScheduleDelta(a, b []sim.Tick) sim.Tick {
	if len(a) != len(b) {
		panic(fmt.Sprintf("core: comparing schedules of lengths %d and %d", len(a), len(b)))
	}
	var max sim.Tick
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}
