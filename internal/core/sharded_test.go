package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"onocsim/internal/config"
	"onocsim/internal/enoc"
	"onocsim/internal/noc"
	"onocsim/internal/onoc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// shardFabrics covers every fabric family the sharded replayer can meet:
// the three ScheduleShardable ones and the mesh, which must take the serial
// fallback and still agree.
func shardFabrics(nodes int) map[string]NetworkFactory {
	cfg := config.Default()
	return map[string]NetworkFactory{
		"ideal": func() noc.Network { return noc.NewIdeal(nodes, 15, 16) },
		"mwsr":  func() noc.Network { return onoc.New(nodes, cfg.Optical) },
		"swmr": func() noc.Network {
			c := cfg.Optical
			c.Architecture = "swmr"
			return onoc.NewSWMR(nodes, c)
		},
		"mesh": func() noc.Network { return enoc.New(nodes, cfg.Mesh) },
	}
}

// TestShardedReplayMatchesSerial: for random traces, the sharded replay is
// byte-identical to the serial engine — per-event times, makespan, cycle
// count, and the full order-sensitive statistics block — for every shard
// count, on every fabric family.
func TestShardedReplayMatchesSerial(t *testing.T) {
	const nodes = 16
	for name, mk := range shardFabrics(nodes) {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			if err := quick.Check(func(seed uint64, nRaw uint8) bool {
				n := int(nRaw%50) + 1
				tr := randomTrace(seed, n, nodes)
				want, err := NaiveReplay(mk(), tr)
				if err != nil {
					t.Logf("serial replay failed: %v", err)
					return false
				}
				for _, k := range []int{1, 2, 3, 8} {
					got, err := NaiveReplaySharded(mk, tr, k)
					if err != nil {
						t.Logf("shards=%d: %v", k, err)
						return false
					}
					if !reflect.DeepEqual(want, got) {
						t.Logf("shards=%d: result drift (seed=%d n=%d)", k, seed, n)
						return false
					}
				}
				return true
			}, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedReplayHotspot drives every source at one destination (the MWSR
// worst case: a single channel arbitrating all senders) and one source at
// every destination (the SWMR/ideal worst case: a single send port), so the
// busiest per-node resources land in one shard while others are empty.
func TestShardedReplayHotspot(t *testing.T) {
	const nodes = 16
	build := func(toOne bool) *trace.Trace {
		tr := &trace.Trace{Nodes: nodes, Workload: "hotspot", RefMakespan: 100000}
		now := sim.Tick(0)
		for i := 0; i < 120; i++ {
			src, dst := i%nodes, 3
			if !toOne {
				src, dst = 3, i%nodes
			}
			now += sim.Tick(i % 4)
			tr.Events = append(tr.Events, trace.Event{
				ID: trace.EventID(i + 1), Src: src, Dst: dst,
				Bytes: 16 + (i%5)*32, Class: noc.Class(i % 3),
				Kind: trace.KindData, Gap: 1,
				RefInject: now, RefArrive: now + 40,
			})
		}
		return tr
	}
	for name, mk := range shardFabrics(nodes) {
		for _, toOne := range []bool{true, false} {
			tr := build(toOne)
			want, err := NaiveReplay(mk(), tr)
			if err != nil {
				t.Fatalf("%s serial: %v", name, err)
			}
			for _, k := range []int{2, 5, 8} {
				got, err := NaiveReplaySharded(mk, tr, k)
				if err != nil {
					t.Fatalf("%s shards=%d: %v", name, k, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s shards=%d toOne=%v: result drift", name, k, toOne)
				}
			}
		}
	}
}

// TestShardedReplayerReuse: one replayer instance must stay byte-exact
// across consecutive Replay calls (SelfCorrect reuses it every round).
func TestShardedReplayerReuse(t *testing.T) {
	const nodes = 16
	cfg := config.Default()
	rep := NewShardedReplayer(func() noc.Network { return onoc.New(nodes, cfg.Optical) }, 4)
	for trial := 0; trial < 3; trial++ {
		tr := randomTrace(uint64(77+trial), 40, nodes)
		want, err := NaiveReplay(onoc.New(nodes, cfg.Optical), tr)
		if err != nil {
			t.Fatal(err)
		}
		inject := make([]sim.Tick, len(tr.Events))
		for i := range tr.Events {
			inject[i] = tr.Events[i].RefInject
		}
		got, err := rep.Replay(tr, inject)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: reused replayer drifted", trial)
		}
	}
}

// TestSelfCorrectShardedMatchesSerial: the whole correction loop — final
// result, per-round trajectory, convergence flag, total cost — is invariant
// under the shard count.
func TestSelfCorrectShardedMatchesSerial(t *testing.T) {
	const nodes = 16
	sctm := config.Default().SCTM
	for name, mk := range shardFabrics(nodes) {
		tr := randomTrace(99, 60, nodes)
		want, err := SelfCorrect(mk, tr, sctm)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, k := range []int{1, 2, 3, 8} {
			got, err := SelfCorrectSharded(mk, tr, sctm, k)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, k, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s shards=%d: correction trajectory drift", name, k)
			}
		}
	}
}

// TestShardedReplayRejections mirrors the serial engine's input validation.
func TestShardedReplayRejections(t *testing.T) {
	tr := randomTrace(5, 10, 8)
	factory := func() noc.Network { return noc.NewIdeal(8, 10, 0) }
	if _, err := ReplayScheduleSharded(factory, tr, make([]sim.Tick, 3), 4); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	bad := func() noc.Network { return noc.NewIdeal(4, 10, 0) }
	if _, err := NaiveReplaySharded(bad, tr, 4); err == nil {
		t.Fatal("node mismatch not rejected")
	}
}
