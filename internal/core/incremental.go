package core

import (
	"fmt"
	"sync"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// This file implements incremental correction rounds: instead of replaying
// the whole trace from cycle zero every round, the loop resumes round r+1
// from the deepest round-r checkpoint that is still inside the new
// schedule's frozen prefix.
//
// The frozen-prefix rule: let B = min over all events i with prev[i] ≠
// next[i] of min(prev[i], next[i]) — the earliest cycle at which the two
// schedules diverge (sim.Never when they are identical). Every injection at
// or before any t0 < B is present in both schedules at the same time, and
// schedule-driven replay has no delivery→injection feedback, so the fabric
// evolution through t0 — arbitration, statistics mutation order, everything
// — is byte-identical under both schedules. A checkpoint captured at cycle
// t0 < B is therefore a valid state of the new round's trajectory, and the
// replay may resume from it. The inequality is strict: an event whose
// injection time *is* B may differ between the schedules.
//
// Checkpoints are captured during each round's replay at a ladder of
// injection-count thresholds (octiles of the event count), at the drain
// loop's top-of-iteration point where the state is exactly "every injection
// and delivery ≤ Now() applied". Surviving checkpoints (at < B) are retained
// across rounds: by induction they are states of the current trajectory, so
// the ladder deepens as the schedule's stable prefix grows — exactly the
// effect the paper's fixpoint exhibits, with late contention-heavy suffixes
// churning long after early injections froze.

// checkpoint pairs a fabric snapshot with its capture cycle. Ladders are
// kept ascending by at.
type checkpoint struct {
	at   sim.Tick
	snap noc.Snapshot
}

// frozenBoundary returns the earliest cycle at which two schedules diverge:
// the minimum, over events whose injection time changed, of both times. It
// returns sim.Never for identical schedules (every checkpoint stays valid).
func frozenBoundary(prev, next []sim.Tick) sim.Tick {
	b := sim.Never
	for i := range prev {
		if prev[i] != next[i] {
			if prev[i] < b {
				b = prev[i]
			}
			if next[i] < b {
				b = next[i]
			}
		}
	}
	return b
}

// pruneLadder drops checkpoints invalidated by boundary b (at ≥ b, strict
// validity) and returns the surviving prefix.
func pruneLadder(ladder []checkpoint, b sim.Tick) []checkpoint {
	keep := len(ladder)
	for keep > 0 && ladder[keep-1].at >= b {
		ladder[keep-1] = checkpoint{}
		keep--
	}
	return ladder[:keep]
}

// captureThresholds returns the ascending injected-count thresholds at which
// a round's replay captures checkpoints: the octiles of want (duplicates
// collapsed, counts ≤ from dropped — those states are already behind the
// resume point). The final threshold equals want, so a round whose schedule
// matches the previous one resumes past its last injection and replays only
// the drain tail.
func captureThresholds(want, from int) []int {
	var ts []int
	for k := 1; k <= 8; k++ {
		t := k * want / 8
		if t <= from || t == 0 {
			continue
		}
		if len(ts) > 0 && ts[len(ts)-1] == t {
			continue
		}
		ts = append(ts, t)
	}
	return ts
}

// ladderCapture returns a replayDrain capture hook appending a checkpoint to
// *ladder whenever the injected count crosses the next threshold. Several
// thresholds crossed by one injection burst collapse into one snapshot.
func ladderCapture(net noc.Network, ck noc.Checkpointer, ladder *[]checkpoint, thresholds []int) func(int) {
	ti := 0
	return func(injected int) {
		crossed := false
		for ti < len(thresholds) && injected >= thresholds[ti] {
			ti++
			crossed = true
		}
		if crossed {
			*ladder = append(*ladder, checkpoint{at: net.Now(), snap: ck.Snapshot()})
		}
	}
}

// incrWork is the counter pair the correction loop surfaces in
// CorrectionResult; both incremental runners implement it.
type incrWork struct {
	replayed int
	saved    sim.Tick
}

func (w *incrWork) work() (int, sim.Tick) { return w.replayed, w.saved }

// incrSerial implements roundRunner with serial incremental rounds. A fabric
// that does not implement noc.Checkpointer degrades to plain full replays on
// a reused instance — observationally the serialRounds path.
type incrSerial struct {
	factory NetworkFactory
	net     noc.Network
	used    bool

	prevInject []sim.Tick // previous round's schedule
	prevInjRes []sim.Tick // its realized injection times
	prevArrive []sim.Tick // its realized arrival times
	ladder     []checkpoint

	incrWork
}

func newIncrSerial(factory NetworkFactory) *incrSerial {
	return &incrSerial{factory: factory}
}

// fabric returns the runner's long-lived instance (never Reset here — rounds
// either restore a checkpoint or Reset explicitly for a full replay).
func (r *incrSerial) fabric() noc.Network {
	if r.net == nil {
		r.net = r.factory()
	}
	return r.net
}

// probe implements roundRunner. It never ticks, so the instance stays fresh
// for round 0.
func (r *incrSerial) probe() noc.Network { return r.fabric() }

// freshFabric returns the instance at time zero with no prior traffic.
func (r *incrSerial) freshFabric() noc.Network {
	net := r.fabric()
	if r.used {
		if res, ok := net.(noc.Resettable); ok {
			res.Reset()
		} else {
			r.net = r.factory()
			net = r.net
		}
	}
	return net
}

// invalidate drops all cross-round state after a failed round.
func (r *incrSerial) invalidate() {
	r.prevInject = nil
	r.prevInjRes = nil
	r.prevArrive = nil
	r.ladder = pruneLadder(r.ladder, 0)
}

// run implements roundRunner.
func (r *incrSerial) run(tr *trace.Trace, inject []sim.Tick) (ReplayResult, error) {
	net := r.fabric()
	if net.Nodes() != tr.Nodes {
		return ReplayResult{}, fmt.Errorf("core: fabric has %d nodes, trace has %d", net.Nodes(), tr.Nodes)
	}
	if len(inject) != len(tr.Events) {
		return ReplayResult{}, fmt.Errorf("core: %d injection times for %d events", len(inject), len(tr.Events))
	}
	if err := checkEventIDs(tr); err != nil {
		return ReplayResult{}, err
	}
	ck, checkpointable := net.(noc.Checkpointer)
	if !checkpointable {
		// No checkpoint contract: every round is a full replay.
		r.used = true
		r.replayed += len(tr.Events)
		return ReplaySchedule(r.freshFabric(), tr, inject)
	}

	n := len(tr.Events)
	res := ReplayResult{
		Inject: make([]sim.Tick, n),
		Arrive: make([]sim.Tick, n),
	}
	order := injectionOrder(inject)

	// Resume point: the deepest retained checkpoint below the boundary.
	next, delivered := 0, 0
	if r.prevInject != nil {
		r.ladder = pruneLadder(r.ladder, frozenBoundary(r.prevInject, inject))
	} else {
		r.ladder = pruneLadder(r.ladder, 0)
	}
	if len(r.ladder) > 0 {
		cp := r.ladder[len(r.ladder)-1]
		ck.Restore(cp.snap)
		// Reconstruct the drain cursors in O(n): injections at or before
		// the checkpoint are identical in both schedules (t0 < B), so the
		// injected set is exactly {i : inject[i] ≤ t0} and the delivered
		// prefix carries over from the previous round's realized times.
		for _, i := range order {
			if inject[i] > cp.at {
				break
			}
			next++
		}
		for i := 0; i < n; i++ {
			if r.prevArrive[i] <= cp.at {
				res.Inject[i] = r.prevInjRes[i]
				res.Arrive[i] = r.prevArrive[i]
				delivered++
			}
		}
		r.saved += cp.at
	} else {
		net = r.freshFabric()
		ck = net.(noc.Checkpointer)
	}
	r.used = true
	r.replayed += n - next

	var pool noc.MsgPool
	net.SetDeliver(func(m *noc.Message) {
		idx := int(m.ID) - 1
		res.Arrive[idx] = m.Arrive
		res.Inject[idx] = m.Inject
		delivered++
		pool.Put(m)
	})
	capture := ladderCapture(net, ck, &r.ladder, captureThresholds(n, next))
	if err := replayDrain(net, tr, inject, order, next, &delivered, n, &pool, capture); err != nil {
		r.invalidate()
		return ReplayResult{}, fmt.Errorf("core: %w", err)
	}
	finalizeResult(&res, tr, net)

	r.prevInject = append(r.prevInject[:0], inject...)
	r.prevInjRes = res.Inject
	r.prevArrive = res.Arrive
	return res, nil
}

// incrSharded implements roundRunner with per-shard incremental rounds. The
// sharded partition has zero cross-shard channels (see ShardedReplayer), so
// each replica is a fully independent serial drain over its owned events —
// barrier patterns cannot affect results, and each shard keeps its own
// checkpoint ladder and its own frozen-prefix boundary (the minimum over its
// *owned* changed events, typically deeper than the global one). Fabrics
// that are not ScheduleShardable, effective shard counts ≤ 1, and fabrics
// without the checkpoint contract all fall back to the serial incremental
// runner on replica 0.
type incrSharded struct {
	factory NetworkFactory
	shards  int
	nets    []noc.Network
	used    []bool
	serial  *incrSerial

	prevInject []sim.Tick
	prevInjRes []sim.Tick
	prevArrive []sim.Tick
	prevObs    []noc.ShardObs
	prevHasObs []bool
	ladders    [][]checkpoint

	incrWork
}

func newIncrSharded(factory NetworkFactory, shards int) *incrSharded {
	if shards < 1 {
		shards = 1
	}
	return &incrSharded{factory: factory, shards: shards}
}

// fabric returns the long-lived replica for shard slot i.
func (p *incrSharded) fabric(i int) noc.Network {
	for len(p.nets) <= i {
		p.nets = append(p.nets, nil)
		p.used = append(p.used, false)
	}
	if p.nets[i] == nil {
		p.nets[i] = p.factory()
	}
	return p.nets[i]
}

// freshFabric returns replica i at time zero with no prior traffic.
func (p *incrSharded) freshFabric(i int) noc.Network {
	net := p.fabric(i)
	if p.used[i] {
		if res, ok := net.(noc.Resettable); ok {
			res.Reset()
		} else {
			p.nets[i] = p.factory()
			net = p.nets[i]
		}
	}
	return net
}

// probe implements roundRunner.
func (p *incrSharded) probe() noc.Network { return p.fabric(0) }

// serialFallback routes a round through the serial incremental runner,
// sharing replica 0 so the fabric cache is not duplicated.
func (p *incrSharded) serialFallback(tr *trace.Trace, inject []sim.Tick) (ReplayResult, error) {
	if p.serial == nil {
		p.serial = &incrSerial{factory: p.factory, net: p.fabric(0), used: p.used[0]}
	}
	res, err := p.serial.run(tr, inject)
	p.used[0] = true
	p.replayed, p.saved = p.serial.replayed, p.serial.saved
	return res, err
}

// invalidate drops all cross-round state after a failed round.
func (p *incrSharded) invalidate() {
	p.prevInject = nil
	p.prevInjRes = nil
	p.prevArrive = nil
	p.prevObs = nil
	p.prevHasObs = nil
	for s := range p.ladders {
		p.ladders[s] = pruneLadder(p.ladders[s], 0)
	}
}

// run implements roundRunner. It mirrors ShardedReplayer.Replay — same
// partition, same disjoint-index observation writes, same serial-order
// statistics merge — with each replica's drain resuming from its own
// checkpoint ladder.
func (p *incrSharded) run(tr *trace.Trace, inject []sim.Tick) (ReplayResult, error) {
	net := p.fabric(0)
	if net.Nodes() != tr.Nodes {
		return ReplayResult{}, fmt.Errorf("core: fabric has %d nodes, trace has %d", net.Nodes(), tr.Nodes)
	}
	if len(inject) != len(tr.Events) {
		return ReplayResult{}, fmt.Errorf("core: %d injection times for %d events", len(inject), len(tr.Events))
	}
	if err := checkEventIDs(tr); err != nil {
		return ReplayResult{}, err
	}
	nodes := net.Nodes()
	k := p.shards
	if k > nodes {
		k = nodes
	}
	sh0, shardable := net.(noc.ScheduleShardable)
	_, checkpointable := net.(noc.Checkpointer)
	if k <= 1 || !shardable || !checkpointable {
		if shardable {
			sh0.SetShardObs(nil)
		}
		return p.serialFallback(tr, inject)
	}
	for len(p.ladders) < k {
		p.ladders = append(p.ladders, nil)
	}

	n := len(tr.Events)
	res := ReplayResult{
		Inject: make([]sim.Tick, n),
		Arrive: make([]sim.Tick, n),
	}
	order := injectionOrder(inject)
	rank := make([]int, n)
	for pos, i := range order {
		rank[i] = pos
	}

	// Partition events by owner shard; iterating the global order keeps each
	// shard's subsequence in serial injection order. Ownership depends only
	// on (src, dst), so it is stable across rounds.
	sn := make([]int, n)
	owner := make([]int, n)
	shardOrder := make([][]int, k)
	for _, i := range order {
		e := &tr.Events[i]
		sn[i] = sh0.ShardNode(e.Src, e.Dst)
		s := sn[i] * k / nodes
		owner[i] = s
		shardOrder[s] = append(shardOrder[s], i)
	}

	// Per-shard frozen-prefix boundaries over owned events only.
	bounds := make([]sim.Tick, k)
	for s := range bounds {
		bounds[s] = sim.Never
	}
	if p.prevInject == nil {
		for s := range bounds {
			bounds[s] = 0
		}
	} else {
		for i := range inject {
			if p.prevInject[i] != inject[i] {
				lo := p.prevInject[i]
				if inject[i] < lo {
					lo = inject[i]
				}
				if lo < bounds[owner[i]] {
					bounds[owner[i]] = lo
				}
			}
		}
	}

	obs := make([]noc.ShardObs, n)
	hasObs := make([]bool, n)

	type shardState struct {
		net       noc.Network
		next      int
		delivered int
		err       error
	}
	states := make([]*shardState, k)
	for s := 0; s < k; s++ {
		ss := &shardState{}
		p.ladders[s] = pruneLadder(p.ladders[s], bounds[s])
		if len(p.ladders[s]) > 0 {
			cp := p.ladders[s][len(p.ladders[s])-1]
			ss.net = p.fabric(s)
			ss.net.(noc.Checkpointer).Restore(cp.snap)
			for _, i := range shardOrder[s] {
				if inject[i] <= cp.at {
					ss.next++
				}
			}
			for _, i := range shardOrder[s] {
				if p.prevArrive[i] <= cp.at {
					res.Inject[i] = p.prevInjRes[i]
					res.Arrive[i] = p.prevArrive[i]
					ss.delivered++
				}
				// Observations are recorded at transmit start (crossbars)
				// or injection (ideal); starts at or before the checkpoint
				// carry over, later ones re-record during the resumed run.
				if p.prevHasObs[i] && p.prevObs[i].Start <= cp.at {
					obs[i] = p.prevObs[i]
					hasObs[i] = true
				}
			}
			p.saved += cp.at
		} else {
			ss.net = p.freshFabric(s)
		}
		p.used[s] = true
		p.replayed += len(shardOrder[s]) - ss.next
		states[s] = ss
	}

	// Drain every shard to completion concurrently. Replicas are fully
	// independent, and every shared-slice write (res, obs) lands at indices
	// owned by exactly one shard.
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		ss := states[s]
		sub := shardOrder[s]
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var pool noc.MsgPool
			fsh := ss.net.(noc.ScheduleShardable)
			fsh.SetDeliver(func(m *noc.Message) {
				idx := int(m.ID) - 1
				res.Arrive[idx] = m.Arrive
				res.Inject[idx] = m.Inject
				ss.delivered++
				pool.Put(m)
			})
			fsh.SetShardObs(func(id uint64, o noc.ShardObs) {
				obs[id-1] = o
				hasObs[id-1] = true
			})
			capture := ladderCapture(ss.net, ss.net.(noc.Checkpointer), &p.ladders[s], captureThresholds(len(sub), ss.next))
			ss.err = replayDrain(ss.net, tr, inject, sub, ss.next, &ss.delivered, len(sub), &pool, capture)
		}(s)
	}
	wg.Wait()
	for s, ss := range states {
		if ss.err != nil {
			p.invalidate()
			return ReplayResult{}, fmt.Errorf("core: shard %d/%d: %w", s, k, ss.err)
		}
		if ss.delivered != len(shardOrder[s]) {
			p.invalidate()
			return ReplayResult{}, fmt.Errorf("core: shard %d/%d delivered %d/%d", s, k, ss.delivered, len(shardOrder[s]))
		}
	}

	stats, err := mergeStats(n, func(i int) (int, noc.Class, bool) {
		e := &tr.Events[i]
		return e.Bytes, e.Class, e.Src == e.Dst
	}, &res, inject, obs, hasObs, rank, sn, sh0.SeqOrder())
	if err != nil {
		p.invalidate()
		return ReplayResult{}, err
	}
	for _, ss := range states {
		stats.Faults.Add(ss.net.Stats().Faults)
	}
	finalizeShardedResult(&res, tr)
	res.NetStats = stats

	p.prevInject = append(p.prevInject[:0], inject...)
	p.prevInjRes = res.Inject
	p.prevArrive = res.Arrive
	p.prevObs = obs
	p.prevHasObs = hasObs
	return res, nil
}
