package core

import (
	"onocsim/internal/metrics"
	"onocsim/internal/sim"
)

// Accuracy compares a replay-derived estimate against execution-driven
// ground truth on the same target fabric.
type Accuracy struct {
	// MakespanErr and LatencyErr are relative errors (fractions).
	MakespanErr float64
	LatencyErr  float64
	// EstimatedMakespan / TrueMakespan document the raw numbers.
	EstimatedMakespan sim.Tick
	TrueMakespan      sim.Tick
	EstimatedLatency  float64
	TrueLatency       float64
}

// CompareToTruth computes the accuracy of a replay against ground truth
// measurements (makespan in cycles, mean message latency in cycles).
func CompareToTruth(replayMakespan sim.Tick, replayMeanLat float64,
	trueMakespan sim.Tick, trueMeanLat float64) Accuracy {
	return Accuracy{
		MakespanErr:       metrics.RelErr(float64(replayMakespan), float64(trueMakespan)),
		LatencyErr:        metrics.RelErr(replayMeanLat, trueMeanLat),
		EstimatedMakespan: replayMakespan,
		TrueMakespan:      trueMakespan,
		EstimatedLatency:  replayMeanLat,
		TrueLatency:       trueMeanLat,
	}
}
