package core

import (
	"fmt"
	"sort"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// ReplayResult reports one trace replay on a target fabric.
type ReplayResult struct {
	// Inject and Arrive are the realized per-event times (indexed by
	// event ID minus one).
	Inject []sim.Tick
	Arrive []sim.Tick
	// Makespan estimates total application time: the last arrival plus
	// the capture run's trailing computation (the tail after its own last
	// arrival, which the network cannot change).
	Makespan sim.Tick
	// MeanLatency is the mean realized message latency in cycles.
	MeanLatency float64
	// Cycles is how long the fabric was ticked.
	Cycles sim.Tick
	// NetStats is the fabric's own statistics block.
	NetStats *noc.Stats
}

// Latencies returns the realized per-event latencies, suitable as the next
// correction iteration's estimates.
func (r *ReplayResult) Latencies() []sim.Tick {
	out := make([]sim.Tick, len(r.Inject))
	for i := range out {
		out[i] = r.Arrive[i] - r.Inject[i]
	}
	return out
}

// replayPayload tags fabric messages with their trace event index.
type replayPayload struct{ idx int }

// ReplaySchedule injects every trace event into net at the given absolute
// times and runs the fabric until all are delivered. The fabric must be
// fresh (at time zero, no prior traffic).
func ReplaySchedule(net noc.Network, tr *trace.Trace, inject []sim.Tick) (ReplayResult, error) {
	if net.Now() != 0 {
		return ReplayResult{}, fmt.Errorf("core: replay fabric is not fresh (now=%d)", net.Now())
	}
	if net.Nodes() != tr.Nodes {
		return ReplayResult{}, fmt.Errorf("core: fabric has %d nodes, trace has %d", net.Nodes(), tr.Nodes)
	}
	if len(inject) != len(tr.Events) {
		return ReplayResult{}, fmt.Errorf("core: %d injection times for %d events", len(inject), len(tr.Events))
	}
	n := len(tr.Events)
	res := ReplayResult{
		Inject: make([]sim.Tick, n),
		Arrive: make([]sim.Tick, n),
	}
	// Injection order: by time, then ID, mirroring capture determinism.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return inject[order[a]] < inject[order[b]] })

	delivered := 0
	net.SetDeliver(func(m *noc.Message) {
		idx := m.Payload.(replayPayload).idx
		res.Arrive[idx] = m.Arrive
		res.Inject[idx] = m.Inject
		delivered++
	})

	next := 0
	for delivered < n {
		now := net.Now()
		for next < n && inject[order[next]] <= now {
			i := order[next]
			e := &tr.Events[i]
			net.Inject(&noc.Message{
				ID:      uint64(e.ID),
				Src:     e.Src,
				Dst:     e.Dst,
				Bytes:   e.Bytes,
				Class:   e.Class,
				Payload: replayPayload{idx: i},
			})
			next++
		}
		net.Tick()
		// Guard against fabric bugs swallowing messages.
		if net.Now() > inject[order[n-1]]+sim.Tick(1_000_000_000) {
			return ReplayResult{}, fmt.Errorf("core: replay did not drain (%d/%d delivered)", delivered, n)
		}
	}
	finalizeResult(&res, tr, net)
	return res, nil
}

// finalizeResult computes makespan and summary statistics.
func finalizeResult(res *ReplayResult, tr *trace.Trace, net noc.Network) {
	var maxArr, maxRef sim.Tick
	var sum float64
	for i := range res.Arrive {
		if res.Arrive[i] > maxArr {
			maxArr = res.Arrive[i]
		}
		if tr.Events[i].RefArrive > maxRef {
			maxRef = tr.Events[i].RefArrive
		}
		sum += float64(res.Arrive[i] - res.Inject[i])
	}
	tail := tr.RefMakespan - maxRef
	if tail < 0 {
		tail = 0
	}
	res.Makespan = maxArr + tail
	if len(res.Arrive) > 0 {
		res.MeanLatency = sum / float64(len(res.Arrive))
	}
	res.Cycles = net.Now()
	res.NetStats = net.Stats()
}

// NaiveReplay replays the trace at its recorded capture-network timestamps —
// the conventional trace-driven methodology the paper shows to be wrong on a
// fabric with different timing.
func NaiveReplay(net noc.Network, tr *trace.Trace) (ReplayResult, error) {
	inject := make([]sim.Tick, len(tr.Events))
	for i := range tr.Events {
		inject[i] = tr.Events[i].RefInject
	}
	return ReplaySchedule(net, tr, inject)
}

// CoupledReplay resolves dependencies *inside* the network simulation: an
// event is injected its gap after its last dependency physically arrives on
// the target fabric. One pass, no estimates — the expensive upper-accuracy
// reference the self-correction loop approaches.
func CoupledReplay(net noc.Network, tr *trace.Trace, opts ScheduleOptions) (ReplayResult, error) {
	if net.Now() != 0 {
		return ReplayResult{}, fmt.Errorf("core: replay fabric is not fresh (now=%d)", net.Now())
	}
	if net.Nodes() != tr.Nodes {
		return ReplayResult{}, fmt.Errorf("core: fabric has %d nodes, trace has %d", net.Nodes(), tr.Nodes)
	}
	n := len(tr.Events)
	res := ReplayResult{
		Inject: make([]sim.Tick, n),
		Arrive: make([]sim.Tick, n),
	}
	// Dependency bookkeeping.
	remaining := make([]int, n)
	lastDep := make([]sim.Tick, n)
	children := make([][]int, n)
	for i := range tr.Events {
		for _, d := range tr.Events[i].Deps {
			if !opts.keepDep(d.Class) {
				continue
			}
			di := int(d.On) - 1
			children[di] = append(children[di], i)
			remaining[i]++
		}
	}
	// ready is a time-ordered queue of events whose dependencies are all
	// arrived; we keep it as a simple sorted insertion since fan-out per
	// tick is small.
	type readyEv struct {
		at  sim.Tick
		idx int
	}
	var ready []readyEv
	pushReady := func(idx int, at sim.Tick) {
		ready = append(ready, readyEv{at: at, idx: idx})
	}
	for i := range tr.Events {
		if remaining[i] == 0 {
			pushReady(i, tr.Events[i].Gap)
		}
	}

	delivered := 0
	net.SetDeliver(func(m *noc.Message) {
		idx := m.Payload.(replayPayload).idx
		res.Arrive[idx] = m.Arrive
		res.Inject[idx] = m.Inject
		delivered++
		for _, ch := range children[idx] {
			if m.Arrive+tr.Events[ch].Gap > lastDep[ch] {
				lastDep[ch] = m.Arrive + tr.Events[ch].Gap
			}
			remaining[ch]--
			if remaining[ch] == 0 {
				pushReady(ch, lastDep[ch])
			}
		}
	})

	var stall sim.Tick
	for delivered < n {
		now := net.Now()
		// Inject everything ready at or before now. Linear scan; the
		// list stays short because injected entries are removed.
		progressed := false
		for i := 0; i < len(ready); {
			if ready[i].at <= now {
				idx := ready[i].idx
				e := &tr.Events[idx]
				net.Inject(&noc.Message{
					ID:      uint64(e.ID),
					Src:     e.Src,
					Dst:     e.Dst,
					Bytes:   e.Bytes,
					Class:   e.Class,
					Payload: replayPayload{idx: idx},
				})
				ready[i] = ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				progressed = true
			} else {
				i++
			}
		}
		net.Tick()
		if progressed || net.Busy() {
			stall = 0
		} else {
			stall++
			if stall > 10_000_000 {
				return ReplayResult{}, fmt.Errorf("core: coupled replay stalled (%d/%d delivered)", delivered, n)
			}
		}
	}
	finalizeResult(&res, tr, net)
	return res, nil
}
