package core

import (
	"fmt"
	"sort"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// ReplayResult reports one trace replay on a target fabric.
type ReplayResult struct {
	// Inject and Arrive are the realized per-event times (indexed by
	// event ID minus one).
	Inject []sim.Tick
	Arrive []sim.Tick
	// Makespan estimates total application time: the last arrival plus
	// the capture run's trailing computation (the tail after its own last
	// arrival, which the network cannot change).
	Makespan sim.Tick
	// MeanLatency is the mean realized message latency in cycles.
	MeanLatency float64
	// Cycles is how long the fabric was ticked.
	Cycles sim.Tick
	// NetStats is the fabric's own statistics block.
	NetStats *noc.Stats
}

// Latencies returns the realized per-event latencies, suitable as the next
// correction iteration's estimates.
func (r *ReplayResult) Latencies() []sim.Tick {
	out := make([]sim.Tick, len(r.Inject))
	for i := range out {
		out[i] = r.Arrive[i] - r.Inject[i]
	}
	return out
}

// checkEventIDs verifies the dense 1-based ID invariant the replay engines
// rely on to map a delivered message back to its trace event without
// carrying a boxed payload. Traces produced by the recorder always satisfy
// it; hand-built traces are caught here.
func checkEventIDs(tr *trace.Trace) error {
	for i := range tr.Events {
		if tr.Events[i].ID != trace.EventID(i+1) {
			return fmt.Errorf("core: trace event %d has id %d, want dense 1-based ids", i, tr.Events[i].ID)
		}
	}
	return nil
}

// ReplaySchedule injects every trace event into net at the given absolute
// times and runs the fabric until all are delivered. The fabric must be
// fresh (at time zero, no prior traffic).
func ReplaySchedule(net noc.Network, tr *trace.Trace, inject []sim.Tick) (ReplayResult, error) {
	if net.Now() != 0 {
		return ReplayResult{}, fmt.Errorf("core: replay fabric is not fresh (now=%d)", net.Now())
	}
	if net.Nodes() != tr.Nodes {
		return ReplayResult{}, fmt.Errorf("core: fabric has %d nodes, trace has %d", net.Nodes(), tr.Nodes)
	}
	if len(inject) != len(tr.Events) {
		return ReplayResult{}, fmt.Errorf("core: %d injection times for %d events", len(inject), len(tr.Events))
	}
	if err := checkEventIDs(tr); err != nil {
		return ReplayResult{}, err
	}
	n := len(tr.Events)
	res := ReplayResult{
		Inject: make([]sim.Tick, n),
		Arrive: make([]sim.Tick, n),
	}
	// Injection order: by time, then ID, mirroring capture determinism.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if inject[ia] != inject[ib] {
			return inject[ia] < inject[ib]
		}
		return ia < ib // explicit ID tiebreak: stable order without the stable-sort cost
	})

	var pool noc.MsgPool
	delivered := 0
	net.SetDeliver(func(m *noc.Message) {
		idx := int(m.ID) - 1
		res.Arrive[idx] = m.Arrive
		res.Inject[idx] = m.Inject
		delivered++
		pool.Put(m)
	})

	if err := replayDrain(net, tr, inject, order, 0, &delivered, n, &pool, nil); err != nil {
		return ReplayResult{}, fmt.Errorf("core: %w", err)
	}
	finalizeResult(&res, tr, net)
	return res, nil
}

// replayDrain is the schedule-driven drain loop shared by ReplaySchedule, the
// incremental correction rounds, and the per-shard incremental replicas. It
// injects the events listed in order (positions [next, len(order))) at their
// absolute schedule times and ticks/skips the fabric until want deliveries
// have been recorded through the fabric's delivery callback, which must
// increment *delivered.
//
// The loop is resumable: callers restoring a checkpoint pass the fabric at
// its restored clock, next set to the count of order positions whose
// injection time lies at or before it, and *delivered prefilled with the
// arrivals that completed by then.
//
// capture, when non-nil, is invoked at the top of every iteration — after
// the injection burst, when the fabric state is exactly "every injection and
// delivery ≤ Now() applied" — with the current injected count; it is the
// hook the incremental loop uses to snapshot checkpoints at a consistent,
// trajectory-independent point.
func replayDrain(net noc.Network, tr *trace.Trace, inject []sim.Tick, order []int, next int, delivered *int, want int, pool *noc.MsgPool, capture func(injected int)) error {
	var lastInj sim.Tick
	if len(order) > 0 {
		lastInj = inject[order[len(order)-1]]
	}
	for *delivered < want {
		now := net.Now()
		for next < len(order) && inject[order[next]] <= now {
			i := order[next]
			e := &tr.Events[i]
			m := pool.Get()
			m.ID = uint64(e.ID)
			m.Src = e.Src
			m.Dst = e.Dst
			m.Bytes = e.Bytes
			m.Class = e.Class
			net.Inject(m)
			next++
		}
		if capture != nil {
			capture(next)
		}
		// Fast-forward to the next injection or fabric event; the cycles
		// in between are provably idle.
		wake := net.NextWake()
		if next < len(order) && inject[order[next]] < wake {
			wake = inject[order[next]]
		}
		if wake == noc.Never {
			// Nothing pending and nothing left to inject: the fabric
			// swallowed a message.
			return fmt.Errorf("replay did not drain (%d/%d delivered)", *delivered, want)
		}
		if wake > now+1 {
			net.SkipTo(wake - 1)
		}
		net.Tick()
		// Guard against fabric bugs swallowing messages.
		if net.Now() > lastInj+sim.Tick(1_000_000_000) {
			return fmt.Errorf("replay did not drain (%d/%d delivered)", *delivered, want)
		}
	}
	return nil
}

// injectionOrder returns event indices sorted by (injection time, ID) — the
// serial injection order every replay engine follows.
func injectionOrder(inject []sim.Tick) []int {
	order := make([]int, len(inject))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if inject[ia] != inject[ib] {
			return inject[ia] < inject[ib]
		}
		return ia < ib
	})
	return order
}

// finalizeResult computes makespan and summary statistics.
func finalizeResult(res *ReplayResult, tr *trace.Trace, net noc.Network) {
	var maxArr, maxRef sim.Tick
	var sum float64
	for i := range res.Arrive {
		if res.Arrive[i] > maxArr {
			maxArr = res.Arrive[i]
		}
		if tr.Events[i].RefArrive > maxRef {
			maxRef = tr.Events[i].RefArrive
		}
		sum += float64(res.Arrive[i] - res.Inject[i])
	}
	tail := tr.RefMakespan - maxRef
	if tail < 0 {
		tail = 0
	}
	res.Makespan = maxArr + tail
	if len(res.Arrive) > 0 {
		res.MeanLatency = sum / float64(len(res.Arrive))
	}
	res.Cycles = net.Now()
	res.NetStats = net.Stats()
}

// NaiveReplay replays the trace at its recorded capture-network timestamps —
// the conventional trace-driven methodology the paper shows to be wrong on a
// fabric with different timing.
func NaiveReplay(net noc.Network, tr *trace.Trace) (ReplayResult, error) {
	inject := make([]sim.Tick, len(tr.Events))
	for i := range tr.Events {
		inject[i] = tr.Events[i].RefInject
	}
	return ReplaySchedule(net, tr, inject)
}

// CoupledReplay resolves dependencies *inside* the network simulation: an
// event is injected its gap after its last dependency physically arrives on
// the target fabric. One pass, no estimates — the expensive upper-accuracy
// reference the self-correction loop approaches.
func CoupledReplay(net noc.Network, tr *trace.Trace, opts ScheduleOptions) (ReplayResult, error) {
	if net.Now() != 0 {
		return ReplayResult{}, fmt.Errorf("core: replay fabric is not fresh (now=%d)", net.Now())
	}
	if net.Nodes() != tr.Nodes {
		return ReplayResult{}, fmt.Errorf("core: fabric has %d nodes, trace has %d", net.Nodes(), tr.Nodes)
	}
	if err := checkEventIDs(tr); err != nil {
		return ReplayResult{}, err
	}
	n := len(tr.Events)
	res := ReplayResult{
		Inject: make([]sim.Tick, n),
		Arrive: make([]sim.Tick, n),
	}
	// Dependency bookkeeping.
	remaining := make([]int, n)
	lastDep := make([]sim.Tick, n)
	children := make([][]int, n)
	for i := range tr.Events {
		for _, d := range tr.Events[i].Deps {
			if !opts.keepDep(d.Class) {
				continue
			}
			di := int(d.On) - 1
			children[di] = append(children[di], i)
			remaining[i]++
		}
	}
	// ready is a time-ordered queue of events whose dependencies are all
	// arrived; we keep it as a simple sorted insertion since fan-out per
	// tick is small.
	type readyEv struct {
		at  sim.Tick
		idx int
	}
	var ready []readyEv
	pushReady := func(idx int, at sim.Tick) {
		ready = append(ready, readyEv{at: at, idx: idx})
	}
	for i := range tr.Events {
		if remaining[i] == 0 {
			pushReady(i, tr.Events[i].Gap)
		}
	}

	var pool noc.MsgPool
	delivered := 0
	net.SetDeliver(func(m *noc.Message) {
		idx := int(m.ID) - 1
		res.Arrive[idx] = m.Arrive
		res.Inject[idx] = m.Inject
		delivered++
		pool.Put(m)
		for _, ch := range children[idx] {
			if m.Arrive+tr.Events[ch].Gap > lastDep[ch] {
				lastDep[ch] = m.Arrive + tr.Events[ch].Gap
			}
			remaining[ch]--
			if remaining[ch] == 0 {
				pushReady(ch, lastDep[ch])
			}
		}
	})

	for delivered < n {
		now := net.Now()
		// Inject everything ready at or before now. Linear scan; the
		// list stays short because injected entries are removed.
		for i := 0; i < len(ready); {
			if ready[i].at <= now {
				idx := ready[i].idx
				e := &tr.Events[idx]
				m := pool.Get()
				m.ID = uint64(e.ID)
				m.Src = e.Src
				m.Dst = e.Dst
				m.Bytes = e.Bytes
				m.Class = e.Class
				net.Inject(m)
				ready[i] = ready[len(ready)-1]
				ready = ready[:len(ready)-1]
			} else {
				i++
			}
		}
		// Fast-forward: the next observable cycle is the earliest of a
		// pending ready event and the fabric's own wake-up. If neither
		// exists while deliveries are outstanding, the dependency graph
		// (or the fabric) has deadlocked.
		wake := net.NextWake()
		for i := range ready {
			if ready[i].at < wake {
				wake = ready[i].at
			}
		}
		if wake == noc.Never {
			return ReplayResult{}, fmt.Errorf("core: coupled replay stalled (%d/%d delivered)", delivered, n)
		}
		if wake > now+1 {
			net.SkipTo(wake - 1)
		}
		net.Tick()
	}
	finalizeResult(&res, tr, net)
	return res, nil
}
