package core

import (
	"testing"
	"testing/quick"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// randomTrace builds a structurally valid random DAG trace.
func randomTrace(seed uint64, n, nodes int) *trace.Trace {
	rng := sim.NewRNG(seed)
	tr := &trace.Trace{Nodes: nodes, Workload: "prop", RefMakespan: 1_000_000}
	now := sim.Tick(0)
	for i := 0; i < n; i++ {
		id := trace.EventID(i + 1)
		e := trace.Event{
			ID:    id,
			Src:   rng.Intn(nodes),
			Dst:   rng.Intn(nodes),
			Bytes: 1 + rng.Intn(128),
			Class: noc.Class(rng.Intn(3)),
			Kind:  trace.KindData,
			Gap:   sim.Tick(rng.Intn(30)),
		}
		ndeps := rng.Intn(3)
		for d := 0; d < ndeps && i > 0; d++ {
			e.Deps = append(e.Deps, trace.Dep{
				On:    trace.EventID(1 + rng.Intn(i)),
				Class: trace.DepClass(rng.Intn(3)),
			})
		}
		now += e.Gap + 1
		e.RefInject = now
		e.RefArrive = now + sim.Tick(1+rng.Intn(60))
		tr.Events = append(tr.Events, e)
	}
	return tr
}

// TestSchedulePropertyRespectsDeps: for random traces and random latency
// estimates, every event's scheduled injection must be at least each kept
// dependency's estimated arrival plus the gap.
func TestSchedulePropertyRespectsDeps(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 2
		tr := randomTrace(seed, n, 8)
		if err := tr.Validate(); err != nil {
			return false
		}
		rng := sim.NewRNG(seed ^ 0xabcd)
		lat := make([]sim.Tick, n)
		for i := range lat {
			lat[i] = sim.Tick(1 + rng.Intn(100))
		}
		inj := Schedule(tr, lat, ScheduleOptions{})
		for i := range tr.Events {
			e := &tr.Events[i]
			for _, d := range e.Deps {
				di := int(d.On) - 1
				if inj[i] < inj[di]+lat[di]+e.Gap {
					return false
				}
			}
			if len(e.Deps) == 0 && inj[i] != e.Gap {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulePropertyMonotoneInLatency: uniformly increasing every latency
// estimate can never make any injection happen earlier.
func TestSchedulePropertyMonotoneInLatency(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 2
		tr := randomTrace(seed, n, 8)
		lat1 := make([]sim.Tick, n)
		lat2 := make([]sim.Tick, n)
		rng := sim.NewRNG(seed ^ 0x1234)
		for i := range lat1 {
			lat1[i] = sim.Tick(1 + rng.Intn(50))
			lat2[i] = lat1[i] + sim.Tick(rng.Intn(50))
		}
		a := Schedule(tr, lat1, ScheduleOptions{})
		b := Schedule(tr, lat2, ScheduleOptions{})
		for i := range a {
			if b[i] < a[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestReplayPropertyAllDelivered: every random trace replays to completion
// on every fabric kind with all arrivals after their injections.
func TestReplayPropertyAllDelivered(t *testing.T) {
	fabrics := map[string]func() noc.Network{
		"ideal": func() noc.Network { return noc.NewIdeal(16, 15, 16) },
	}
	for name, mk := range fabrics {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			if err := quick.Check(func(seed uint64, nRaw uint8) bool {
				n := int(nRaw%50) + 1
				tr := randomTrace(seed, n, 16)
				res, err := NaiveReplay(mk(), tr)
				if err != nil {
					return false
				}
				for i := range res.Arrive {
					if res.Arrive[i] <= res.Inject[i] && tr.Events[i].Src != tr.Events[i].Dst {
						return false
					}
				}
				return true
			}, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCoupledReplayNeverBeatsSchedule: on a deterministic fixed-latency
// fabric, the coupled replay's injections equal the analytic schedule for
// any random trace (the two resolution strategies agree without contention).
func TestCoupledReplayNeverBeatsSchedule(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		tr := randomTrace(seed, n, 8)
		lat := make([]sim.Tick, n)
		net := noc.NewIdeal(8, 25, 0)
		for i := range lat {
			e := &tr.Events[i]
			lat[i] = net.ZeroLoadLatency(e.Src, e.Dst, e.Bytes)
		}
		want := Schedule(tr, lat, ScheduleOptions{})
		res, err := CoupledReplay(noc.NewIdeal(8, 25, 0), tr, ScheduleOptions{})
		if err != nil {
			return false
		}
		for i := range want {
			if res.Inject[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
