package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"onocsim/internal/config"
)

// countdownCtx reports Canceled after a fixed number of Err polls, letting a
// test park the correction loop at an exact round boundary.
type countdownCtx struct {
	context.Context
	remaining int
}

func (c *countdownCtx) Err() error {
	if c.remaining > 0 {
		c.remaining--
		return nil
	}
	return context.Canceled
}

// neverConverge disables both convergence criteria so the loop always runs
// its full iteration budget: delta can never be ≤ -1.
func neverConverge(cfg config.SCTM) config.SCTM {
	cfg.ToleranceCycles = -1
	cfg.MakespanTolerance = 0
	return cfg
}

func TestSelfCorrectParksOnDeadContext(t *testing.T) {
	tr := chainTrace()
	cfg := config.Default().SCTM
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SelfCorrectShardedSeededCtx(ctx, idealFactory(4, 20), tr, cfg, 1, nil)
	if !errors.Is(err, ErrParked) {
		t.Fatalf("err = %v, want ErrParked", err)
	}
	if len(res.Iterations) != 0 || res.Converged {
		t.Fatalf("dead-context park ran rounds: %+v", res)
	}
}

// Parking returns the valid partial trajectory: the parked run's iterations
// are byte-identical to a prefix of the uncancelled run's.
func TestSelfCorrectParkedPrefixMatchesFullRun(t *testing.T) {
	tr := chainTrace()
	cfg := neverConverge(config.Default().SCTM)
	cfg.MaxIterations = 8
	cfg.InitialLatencyCycles = 3

	full, err := SelfCorrectShardedSeededCtx(context.Background(), idealFactory(4, 20), tr, cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Converged || len(full.Iterations) != 8 {
		t.Fatalf("reference run unexpectedly converged: %+v", full)
	}

	const parkAfter = 3
	ctx := &countdownCtx{Context: context.Background(), remaining: parkAfter}
	parked, err := SelfCorrectShardedSeededCtx(ctx, idealFactory(4, 20), tr, cfg, 1, nil)
	if !errors.Is(err, ErrParked) {
		t.Fatalf("err = %v, want ErrParked", err)
	}
	if parked.Converged {
		t.Fatal("parked run claims convergence")
	}
	if len(parked.Iterations) != parkAfter {
		t.Fatalf("parked after %d rounds, want %d", len(parked.Iterations), parkAfter)
	}
	if !reflect.DeepEqual(parked.Iterations, full.Iterations[:parkAfter]) {
		t.Fatalf("parked trajectory diverged:\n got %+v\nwant %+v", parked.Iterations, full.Iterations[:parkAfter])
	}
	if parked.Final.Makespan != full.Iterations[parkAfter-1].Makespan {
		t.Fatalf("parked Final.Makespan = %d, want round %d's %d",
			parked.Final.Makespan, parkAfter-1, full.Iterations[parkAfter-1].Makespan)
	}
	// Work counters account for exactly the rounds performed.
	if parked.ReplayedEvents != len(tr.Events)*parkAfter {
		t.Fatalf("ReplayedEvents = %d, want %d", parked.ReplayedEvents, len(tr.Events)*parkAfter)
	}
}

// A Background context can never park: the ctx path is byte-identical to
// the classic entry points for every runner configuration.
func TestSelfCorrectCtxBackgroundIdentical(t *testing.T) {
	tr := chainTrace()
	cfg := config.Default().SCTM
	cfg.MakespanTolerance = 0
	for _, shards := range []int{1, 2} {
		for _, incr := range []bool{false, true} {
			cfg.Incremental = incr
			want, err := SelfCorrectShardedSeeded(idealFactory(4, 20), tr, cfg, shards, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SelfCorrectShardedSeededCtx(context.Background(), idealFactory(4, 20), tr, cfg, shards, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d incr=%v: ctx path diverged:\n got %+v\nwant %+v", shards, incr, got, want)
			}
		}
	}
}
