package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"onocsim/internal/config"
)

// TestResumeCompletesIdenticalToUninterrupted parks the loop after k rounds,
// resumes it from the returned state, and requires the completed result to
// be deep-equal to an uninterrupted run's — trajectory, final replay, cycle
// and event counters included. The resumed loop reuses the parked runner, so
// the continuation is literally the same execution the uninterrupted run
// performs.
func TestResumeCompletesIdenticalToUninterrupted(t *testing.T) {
	tr := chainTrace()
	base := neverConverge(config.Default().SCTM)
	base.MaxIterations = 8
	base.InitialLatencyCycles = 3

	for _, tc := range []struct {
		name   string
		cfg    config.SCTM
		shards int
	}{
		{"serial", base, 1},
		{"sharded", base, 2},
		{"incremental", func() config.SCTM { c := base; c.Incremental = true; return c }(), 1},
		{"incremental-sharded", func() config.SCTM { c := base; c.Incremental = true; return c }(), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			full, _, err := SelfCorrectParkableCtx(context.Background(), idealFactory(4, 20), tr, tc.cfg, tc.shards, nil, nil)
			if err != nil {
				t.Fatal(err)
			}

			const parkAfter = 3
			ctx := &countdownCtx{Context: context.Background(), remaining: parkAfter}
			parked, state, err := SelfCorrectParkableCtx(ctx, idealFactory(4, 20), tr, tc.cfg, tc.shards, nil, nil)
			if !errors.Is(err, ErrParked) {
				t.Fatalf("err = %v, want ErrParked", err)
			}
			if state == nil {
				t.Fatal("parked run returned no resume state")
			}
			if state.Rounds() != parkAfter {
				t.Fatalf("state.Rounds() = %d, want %d", state.Rounds(), parkAfter)
			}
			if len(parked.Iterations) != parkAfter {
				t.Fatalf("parked after %d rounds, want %d", len(parked.Iterations), parkAfter)
			}

			resumed, state2, err := SelfCorrectParkableCtx(context.Background(), idealFactory(4, 20), tr, tc.cfg, tc.shards, nil, state)
			if err != nil {
				t.Fatal(err)
			}
			if state2 != nil {
				t.Fatalf("completed resume returned state: %+v", state2)
			}
			if !reflect.DeepEqual(resumed, full) {
				t.Fatalf("resumed result diverged from uninterrupted run:\n got %+v\nwant %+v", resumed, full)
			}
		})
	}
}

// TestResumeCanParkAgain parks, resumes with another counting-down context,
// parks again further along, and finally completes — the ladder of partial
// runs still lands on the uninterrupted result.
func TestResumeCanParkAgain(t *testing.T) {
	tr := chainTrace()
	cfg := neverConverge(config.Default().SCTM)
	cfg.MaxIterations = 8
	cfg.InitialLatencyCycles = 3

	full, _, err := SelfCorrectParkableCtx(context.Background(), idealFactory(4, 20), tr, cfg, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx1 := &countdownCtx{Context: context.Background(), remaining: 2}
	_, state, err := SelfCorrectParkableCtx(ctx1, idealFactory(4, 20), tr, cfg, 1, nil, nil)
	if !errors.Is(err, ErrParked) || state == nil {
		t.Fatalf("first park: err=%v state=%v", err, state)
	}

	ctx2 := &countdownCtx{Context: context.Background(), remaining: 3}
	parked2, state2, err := SelfCorrectParkableCtx(ctx2, idealFactory(4, 20), tr, cfg, 1, nil, state)
	if !errors.Is(err, ErrParked) || state2 == nil {
		t.Fatalf("second park: err=%v state=%v", err, state2)
	}
	if got := len(parked2.Iterations); got != 5 {
		t.Fatalf("second park at %d rounds, want 5 (2 resumed + 3 fresh)", got)
	}
	if !reflect.DeepEqual(parked2.Iterations, full.Iterations[:5]) {
		t.Fatal("second parked trajectory diverged from uninterrupted prefix")
	}

	resumed, _, err := SelfCorrectParkableCtx(context.Background(), idealFactory(4, 20), tr, cfg, 1, nil, state2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, full) {
		t.Fatalf("twice-parked resume diverged from uninterrupted run:\n got %+v\nwant %+v", resumed, full)
	}
}

// TestResumeIncrementalReplaysFewerEvents pins the point of carrying the
// live runner through the park: an incremental loop's frozen-prefix
// checkpoints survive, so the resumed rounds replay only dirty suffixes.
// Restarting from scratch after a park would pay the full-replay cost again.
func TestResumeIncrementalReplaysFewerEvents(t *testing.T) {
	tr := chainTrace()
	cfg := neverConverge(config.Default().SCTM)
	cfg.MaxIterations = 8
	cfg.InitialLatencyCycles = 3
	cfg.Incremental = true

	full, _, err := SelfCorrectParkableCtx(context.Background(), idealFactory(4, 20), tr, cfg, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fullReplay := len(tr.Events) * cfg.MaxIterations
	if full.ReplayedEvents >= fullReplay {
		t.Fatalf("incremental run replayed %d events, full replay is %d — checkpointing inert", full.ReplayedEvents, fullReplay)
	}

	ctx := &countdownCtx{Context: context.Background(), remaining: 3}
	_, state, err := SelfCorrectParkableCtx(ctx, idealFactory(4, 20), tr, cfg, 1, nil, nil)
	if !errors.Is(err, ErrParked) || state == nil {
		t.Fatalf("park: err=%v state=%v", err, state)
	}
	resumed, _, err := SelfCorrectParkableCtx(context.Background(), idealFactory(4, 20), tr, cfg, 1, nil, state)
	if err != nil {
		t.Fatal(err)
	}
	// The counter is cumulative across park and resume and must equal the
	// uninterrupted run's — proof the resumed rounds did not degrade to
	// full replays.
	if resumed.ReplayedEvents != full.ReplayedEvents {
		t.Fatalf("resumed run replayed %d events, uninterrupted run %d", resumed.ReplayedEvents, full.ReplayedEvents)
	}
}

// TestResumeRejectsBadState guards the single-use contract: resume state
// whose geometry does not match the trace, or that has already exhausted the
// iteration budget, is refused rather than silently corrupting the loop.
func TestResumeRejectsBadState(t *testing.T) {
	tr := chainTrace()
	cfg := neverConverge(config.Default().SCTM)
	cfg.MaxIterations = 3
	cfg.InitialLatencyCycles = 3

	ctx := &countdownCtx{Context: context.Background(), remaining: 2}
	_, state, err := SelfCorrectParkableCtx(ctx, idealFactory(4, 20), tr, cfg, 1, nil, nil)
	if !errors.Is(err, ErrParked) || state == nil {
		t.Fatalf("park: err=%v state=%v", err, state)
	}

	// Shrinking the budget below the completed rounds invalidates the state.
	small := cfg
	small.MaxIterations = 2
	if _, _, err := SelfCorrectParkableCtx(context.Background(), idealFactory(4, 20), tr, small, 1, nil, state); err == nil {
		t.Fatal("resume with exhausted iteration budget succeeded")
	}
}
