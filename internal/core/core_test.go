package core

import (
	"testing"

	"onocsim/internal/config"
	"onocsim/internal/noc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// chainTrace builds a linear dependency chain across nodes:
// e1: 0→1 gap 10; e2: 1→2 gap 5 (causal e1); e3: 2→3 gap 5 (causal e2).
func chainTrace() *trace.Trace {
	return &trace.Trace{
		Nodes:       4,
		Workload:    "chain",
		RefMakespan: 200,
		Events: []trace.Event{
			{ID: 1, Src: 0, Dst: 1, Bytes: 16, Gap: 10, RefInject: 10, RefArrive: 60},
			{ID: 2, Src: 1, Dst: 2, Bytes: 16, Gap: 5,
				Deps:      []trace.Dep{{On: 1, Class: trace.DepCausal}},
				RefInject: 65, RefArrive: 115},
			{ID: 3, Src: 2, Dst: 3, Bytes: 16, Gap: 5,
				Deps:      []trace.Dep{{On: 2, Class: trace.DepSync}},
				RefInject: 120, RefArrive: 170},
		},
	}
}

func TestScheduleLinearChain(t *testing.T) {
	tr := chainTrace()
	lat := []sim.Tick{20, 20, 20}
	inj := Schedule(tr, lat, ScheduleOptions{})
	// e1 at gap 10; e2 at 10+20+5 = 35; e3 at 35+20+5 = 60.
	want := []sim.Tick{10, 35, 60}
	for i := range want {
		if inj[i] != want[i] {
			t.Fatalf("inject[%d] = %d, want %d (all: %v)", i, inj[i], want[i], inj)
		}
	}
}

func TestScheduleMaxOverDeps(t *testing.T) {
	tr := &trace.Trace{
		Nodes: 2, RefMakespan: 100,
		Events: []trace.Event{
			{ID: 1, Src: 0, Dst: 1, Bytes: 8, Gap: 0, RefInject: 0, RefArrive: 50},
			{ID: 2, Src: 1, Dst: 0, Bytes: 8, Gap: 0, RefInject: 0, RefArrive: 10},
			{ID: 3, Src: 0, Dst: 1, Bytes: 8, Gap: 7,
				Deps:      []trace.Dep{{On: 1, Class: trace.DepCausal}, {On: 2, Class: trace.DepCausal}},
				RefInject: 57, RefArrive: 80},
		},
	}
	inj := Schedule(tr, []sim.Tick{50, 10, 5}, ScheduleOptions{})
	// e3 waits for max(0+50, 0+10) + 7 = 57.
	if inj[2] != 57 {
		t.Fatalf("inject[2] = %d, want 57", inj[2])
	}
}

func TestScheduleAblation(t *testing.T) {
	tr := chainTrace()
	lat := []sim.Tick{20, 20, 20}
	noSync := Schedule(tr, lat, ScheduleOptions{DisableSyncDeps: true})
	// e3's only dep is sync → dropped → injects at its own gap 5.
	if noSync[2] != 5 {
		t.Fatalf("ablated inject[2] = %d, want 5", noSync[2])
	}
	noCausal := Schedule(tr, lat, ScheduleOptions{DisableCausalDeps: true})
	if noCausal[1] != 5 {
		t.Fatalf("ablated inject[1] = %d, want 5", noCausal[1])
	}
	// Program deps always kept.
	if !(ScheduleOptions{DisableSyncDeps: true, DisableCausalDeps: true}).keepDep(trace.DepProgram) {
		t.Fatal("program deps must never be ablated")
	}
}

func TestScheduleLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched latency slice accepted")
		}
	}()
	Schedule(chainTrace(), []sim.Tick{1}, ScheduleOptions{})
}

func TestMaxScheduleDelta(t *testing.T) {
	a := []sim.Tick{10, 20, 30}
	b := []sim.Tick{12, 15, 30}
	if d := MaxScheduleDelta(a, b); d != 5 {
		t.Fatalf("delta = %d, want 5", d)
	}
	if d := MaxScheduleDelta(a, a); d != 0 {
		t.Fatalf("self delta = %d", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch accepted")
		}
	}()
	MaxScheduleDelta(a, b[:2])
}

func idealFactory(nodes int, latency sim.Tick) NetworkFactory {
	return func() noc.Network { return noc.NewIdeal(nodes, latency, 0) }
}

func TestReplayScheduleOnIdealExact(t *testing.T) {
	tr := chainTrace()
	inj := []sim.Tick{10, 35, 60}
	res, err := ReplaySchedule(idealFactory(4, 20)(), tr, inj)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inj {
		if res.Inject[i] != inj[i] {
			t.Fatalf("realized inject[%d] = %d, want %d", i, res.Inject[i], inj[i])
		}
		if got := res.Arrive[i] - res.Inject[i]; got != 20 {
			t.Fatalf("latency[%d] = %d, want 20", i, got)
		}
	}
	// Makespan = last arrival (80) + capture tail (200-170=30) = 110.
	if res.Makespan != 110 {
		t.Fatalf("makespan = %d, want 110", res.Makespan)
	}
	if res.MeanLatency != 20 {
		t.Fatalf("mean latency = %g", res.MeanLatency)
	}
}

func TestNaiveReplayUsesRecordedTimes(t *testing.T) {
	tr := chainTrace()
	res, err := NaiveReplay(idealFactory(4, 20)(), tr)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range tr.Events {
		if res.Inject[i] != e.RefInject {
			t.Fatalf("naive inject[%d] = %d, want recorded %d", i, res.Inject[i], e.RefInject)
		}
	}
}

func TestCoupledReplayMatchesScheduleOnIdeal(t *testing.T) {
	// On a contention-free fixed-latency fabric, coupled replay must
	// realize exactly the analytic schedule.
	tr := chainTrace()
	res, err := CoupledReplay(idealFactory(4, 20)(), tr, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := Schedule(tr, []sim.Tick{20, 20, 20}, ScheduleOptions{})
	for i := range want {
		if res.Inject[i] != want[i] {
			t.Fatalf("coupled inject[%d] = %d, want %d", i, res.Inject[i], want[i])
		}
	}
}

func TestReplayRejections(t *testing.T) {
	tr := chainTrace()
	// Node mismatch.
	if _, err := ReplaySchedule(idealFactory(8, 20)(), tr, []sim.Tick{0, 0, 0}); err == nil {
		t.Fatal("node mismatch accepted")
	}
	// Wrong schedule length.
	if _, err := ReplaySchedule(idealFactory(4, 20)(), tr, []sim.Tick{0}); err == nil {
		t.Fatal("schedule length mismatch accepted")
	}
	// Non-fresh fabric.
	used := idealFactory(4, 20)()
	used.Tick()
	if _, err := ReplaySchedule(used, tr, []sim.Tick{0, 0, 0}); err == nil {
		t.Fatal("warm fabric accepted")
	}
	if _, err := CoupledReplay(used, tr, ScheduleOptions{}); err == nil {
		t.Fatal("warm fabric accepted by coupled replay")
	}
}

func TestSelfCorrectConvergesOnIdeal(t *testing.T) {
	// On a fixed-latency fabric the fixpoint is exact after one round:
	// measured latencies equal the constant, so round 2's schedule equals
	// round 1's.
	tr := chainTrace()
	cfg := config.Default().SCTM
	cfg.InitialLatencyCycles = 3 // deliberately wrong seed
	cfg.MakespanTolerance = 0    // force the strict schedule criterion
	res, err := SelfCorrect(idealFactory(4, 20), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res.Iterations)
	}
	if len(res.Iterations) > 2 {
		t.Fatalf("took %d rounds on a constant-latency fabric", len(res.Iterations))
	}
	// Final schedule must match the analytic one at latency 20.
	want := Schedule(tr, []sim.Tick{20, 20, 20}, ScheduleOptions{})
	for i := range want {
		if res.Final.Inject[i] != want[i] {
			t.Fatalf("final inject[%d] = %d, want %d", i, res.Final.Inject[i], want[i])
		}
	}
}

func TestSelfCorrectZeroLoadSeed(t *testing.T) {
	tr := chainTrace()
	cfg := config.Default().SCTM
	cfg.InitialLatencyCycles = 0 // use fabric ZLL = exactly right here
	cfg.MakespanTolerance = 0
	res, err := SelfCorrect(idealFactory(4, 20), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Iterations) != 1 {
		t.Fatalf("perfect seed should converge in one round: %+v", res.Iterations)
	}
}

func TestSelfCorrectDampedStillConverges(t *testing.T) {
	tr := chainTrace()
	cfg := config.Default().SCTM
	cfg.InitialLatencyCycles = 3
	cfg.Damping = 0.5
	cfg.MaxIterations = 30
	cfg.MakespanTolerance = 0
	res, err := SelfCorrect(idealFactory(4, 20), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("damped loop did not converge in %d rounds", len(res.Iterations))
	}
}

func TestSelfCorrectRejectsInvalidTrace(t *testing.T) {
	tr := chainTrace()
	tr.Events[0].Bytes = 0
	if _, err := SelfCorrect(idealFactory(4, 20), tr, config.Default().SCTM); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestSelfCorrectIterationBudget(t *testing.T) {
	tr := chainTrace()
	cfg := config.Default().SCTM
	cfg.MaxIterations = 1
	cfg.ToleranceCycles = 0
	cfg.MakespanTolerance = 0
	cfg.InitialLatencyCycles = 1
	res, err := SelfCorrect(idealFactory(4, 20), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 1 {
		t.Fatalf("iteration budget ignored: %d rounds", len(res.Iterations))
	}
	if res.TotalCycles != res.Iterations[0].Cycles {
		t.Fatal("total cycles accounting wrong")
	}
}

func TestCompareToTruth(t *testing.T) {
	acc := CompareToTruth(110, 22, 100, 20)
	if acc.MakespanErr != 0.1 {
		t.Fatalf("makespan err = %g", acc.MakespanErr)
	}
	if acc.LatencyErr != 0.1 {
		t.Fatalf("latency err = %g", acc.LatencyErr)
	}
	if acc.TrueMakespan != 100 || acc.EstimatedMakespan != 110 {
		t.Fatal("raw values lost")
	}
}

func TestReplayPreservesEventIdentity(t *testing.T) {
	// Deliveries must map back to the right trace events even when
	// delivered out of injection order (forced via distinct gaps).
	tr := &trace.Trace{
		Nodes: 4, RefMakespan: 300,
		Events: []trace.Event{
			{ID: 1, Src: 0, Dst: 1, Bytes: 8, Gap: 100, RefInject: 100, RefArrive: 150},
			{ID: 2, Src: 2, Dst: 3, Bytes: 8, Gap: 1, RefInject: 1, RefArrive: 51},
		},
	}
	res, err := ReplaySchedule(idealFactory(4, 10)(), tr, []sim.Tick{100, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inject[0] != 100 || res.Inject[1] != 1 {
		t.Fatalf("injects %v", res.Inject)
	}
	if res.Arrive[1] >= res.Arrive[0] {
		t.Fatal("expected event 2 to arrive first")
	}
}
