package core

import (
	"fmt"
	"sort"

	"onocsim/internal/config"
	"onocsim/internal/noc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// Streaming replay: the schedule-driven engines of replay.go and sharded.go,
// re-expressed over a trace.Source so events decode incrementally instead of
// being materialized.
//
// The equivalence contract: every streaming engine here produces results
// byte-identical to its in-memory counterpart — same per-event times, same
// NetStats down to Welford accumulator bits, same correction trajectories —
// because it drives the fabric through the exact same Inject/SkipTo/Tick
// sequence. What changes is residency: event payloads and dependency edges
// live only inside a bounded read-ahead window. Per-event *scalar*
// bookkeeping (injection times, latencies, result vectors) remains O(n) —
// the schedule itself is the correction loop's state — so the equivalence
// tier trades the dominant event/dependency storage for the window, not the
// tick vectors. NaiveReplaySummaryStream below is the fully out-of-core
// tier: O(window + nodes) resident, summary-only results.
//
// How byte-identity survives out-of-order schedules: the serial engine
// injects by (time, ID) over a fully sorted order. The streaming engine
// instead keeps suffixMin[i] = min injection time over events ≥ i. Decoding
// while suffixMin[pos] ≤ now guarantees every event due at `now` has been
// decoded, and a min-heap keyed (time, index) releases them in exactly the
// serial (time, ID) order. The heap is the read-ahead window: it holds
// events the stream has passed but the schedule has not yet made due, and
// its size is the trace's schedule inversion width. A window cap turns an
// undersized window into a deterministic error — never a deadlock and never
// a silently wrong result.

// streamWindow resolves a window request: 0 selects trace.DefaultWindow,
// negative (trace.Unbounded) disables the cap.
func streamWindow(w int) int {
	switch {
	case w == 0:
		return trace.DefaultWindow
	case w < 0:
		return 0
	default:
		return w
	}
}

// suffixMinInject returns sm with sm[i] = min(inject[i:]) and sm[n] =
// sim.Never: the earliest injection among events the stream has not yet
// decoded, the conservative bound that drives both decode and fast-forward.
func suffixMinInject(inject []sim.Tick) []sim.Tick {
	n := len(inject)
	sm := make([]sim.Tick, n+1)
	sm[n] = sim.Never
	for i := n - 1; i >= 0; i-- {
		sm[i] = inject[i]
		if sm[i+1] < sm[i] {
			sm[i] = sm[i+1]
		}
	}
	return sm
}

// pendingMsg is one decoded-but-not-yet-injected event: the full payload a
// future Inject needs, without retaining the trace.Event (or its deps).
type pendingMsg struct {
	at    sim.Tick
	idx   int // event ID minus one
	src   int
	dst   int
	bytes int
	class noc.Class
}

// pendingHeap is a binary min-heap ordered by (at, idx) — exactly the serial
// engine's (time, ID) injection order.
type pendingHeap []pendingMsg

func (h pendingHeap) less(a, b int) bool {
	if h[a].at != h[b].at {
		return h[a].at < h[b].at
	}
	return h[a].idx < h[b].idx
}

func (h *pendingHeap) push(m pendingMsg) {
	*h = append(*h, m)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *pendingHeap) pop() pendingMsg {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && s.less(l, m) {
			m = l
		}
		if r < last && s.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// streamDecoder advances an iterator in lockstep with a suffix-min bound,
// pushing owned events onto a pending heap. Shared by the serial and sharded
// streaming engines so the decode discipline cannot diverge.
type streamDecoder struct {
	it      trace.Iterator
	inject  []sim.Tick
	sm      []sim.Tick
	pos     int
	pending pendingHeap
	window  int // max pending entries; 0 = unbounded
	// own filters which events this consumer keeps; nil keeps all.
	own func(idx int) bool
	// maxRef folds in every decoded event's RefArrive: the trace is gone by
	// finalize time, so the makespan tail term accumulates during decode.
	maxRef sim.Tick
	ev     trace.Event
}

// decodeTo decodes every event whose suffix-min injection bound is ≤ t.
// Afterward, any undecoded event injects strictly after t.
func (d *streamDecoder) decodeTo(t sim.Tick) error {
	n := len(d.inject)
	for d.pos < n && d.sm[d.pos] <= t {
		ok, err := d.it.Next(&d.ev)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("trace stream ended after %d of %d events", d.pos, n)
		}
		if int(d.ev.ID) != d.pos+1 {
			return fmt.Errorf("trace event %d has id %d, want dense 1-based ids", d.pos, d.ev.ID)
		}
		if d.ev.RefArrive > d.maxRef {
			d.maxRef = d.ev.RefArrive
		}
		if d.own == nil || d.own(d.pos) {
			d.pending.push(pendingMsg{
				at:    d.inject[d.pos],
				idx:   d.pos,
				src:   d.ev.Src,
				dst:   d.ev.Dst,
				bytes: d.ev.Bytes,
				class: d.ev.Class,
			})
			if d.window > 0 && len(d.pending) > d.window {
				return fmt.Errorf("schedule needs %d events resident at once, exceeding the streaming window of %d; rerun with a larger window", len(d.pending), d.window)
			}
		}
		d.pos++
	}
	return nil
}

// nextInject is the earliest injection among events not yet injected: the
// heap top among decoded ones, the suffix-min bound among undecoded ones.
func (d *streamDecoder) nextInject() sim.Tick {
	t := d.sm[d.pos]
	if len(d.pending) > 0 && d.pending[0].at < t {
		t = d.pending[0].at
	}
	return t
}

// injectDue injects every pending event due at or before now, in (time, ID)
// order, and returns the count.
func (d *streamDecoder) injectDue(now sim.Tick, net noc.Network, pool *noc.MsgPool) int {
	injected := 0
	for len(d.pending) > 0 && d.pending[0].at <= now {
		pm := d.pending.pop()
		m := pool.Get()
		m.ID = uint64(pm.idx + 1)
		m.Src = pm.src
		m.Dst = pm.dst
		m.Bytes = pm.bytes
		m.Class = pm.class
		net.Inject(m)
		injected++
	}
	return injected
}

// ReplayScheduleStream is ReplaySchedule over a trace.Source: it injects
// every event at the given absolute time and runs the fabric until all are
// delivered, holding at most `window` undecoded-schedule events resident
// (0 selects trace.DefaultWindow, trace.Unbounded lifts the cap). Results
// are byte-identical to ReplaySchedule on the materialized trace.
func ReplayScheduleStream(net noc.Network, src trace.Source, inject []sim.Tick, window int) (ReplayResult, error) {
	m := src.Meta()
	if net.Now() != 0 {
		return ReplayResult{}, fmt.Errorf("core: replay fabric is not fresh (now=%d)", net.Now())
	}
	if net.Nodes() != m.Nodes {
		return ReplayResult{}, fmt.Errorf("core: fabric has %d nodes, trace has %d", net.Nodes(), m.Nodes)
	}
	if len(inject) != m.NumEvents {
		return ReplayResult{}, fmt.Errorf("core: %d injection times for %d events", len(inject), m.NumEvents)
	}
	n := m.NumEvents
	var maxInj sim.Tick
	for _, t := range inject {
		if t > maxInj {
			maxInj = t
		}
	}
	it, err := src.Pass()
	if err != nil {
		return ReplayResult{}, err
	}
	defer it.Close()

	res := ReplayResult{
		Inject: make([]sim.Tick, n),
		Arrive: make([]sim.Tick, n),
	}
	var pool noc.MsgPool
	delivered := 0
	net.SetDeliver(func(msg *noc.Message) {
		idx := int(msg.ID) - 1
		res.Arrive[idx] = msg.Arrive
		res.Inject[idx] = msg.Inject
		delivered++
		pool.Put(msg)
	})

	dec := &streamDecoder{it: it, inject: inject, sm: suffixMinInject(inject), window: streamWindow(window)}
	for delivered < n {
		now := net.Now()
		if err := dec.decodeTo(now); err != nil {
			return ReplayResult{}, fmt.Errorf("core: %w", err)
		}
		dec.injectDue(now, net, &pool)
		wake := net.NextWake()
		if t := dec.nextInject(); t < wake {
			wake = t
		}
		if wake == noc.Never {
			return ReplayResult{}, fmt.Errorf("core: replay did not drain (%d/%d delivered)", delivered, n)
		}
		if wake > now+1 {
			net.SkipTo(wake - 1)
		}
		net.Tick()
		if net.Now() > maxInj+sim.Tick(1_000_000_000) {
			return ReplayResult{}, fmt.Errorf("core: replay did not drain (%d/%d delivered)", delivered, n)
		}
	}
	finalizeStream(&res, m.RefMakespan, dec.maxRef, net)
	return res, nil
}

// finalizeStream is finalizeResult with the reference-arrival maximum
// supplied by the caller (the stream folds it in during decode; the trace is
// no longer resident to rescan).
func finalizeStream(res *ReplayResult, refMakespan, maxRef sim.Tick, net noc.Network) {
	var maxArr sim.Tick
	var sum float64
	for i := range res.Arrive {
		if res.Arrive[i] > maxArr {
			maxArr = res.Arrive[i]
		}
		sum += float64(res.Arrive[i] - res.Inject[i])
	}
	tail := refMakespan - maxRef
	if tail < 0 {
		tail = 0
	}
	res.Makespan = maxArr + tail
	if len(res.Arrive) > 0 {
		res.MeanLatency = sum / float64(len(res.Arrive))
	}
	res.Cycles = net.Now()
	res.NetStats = net.Stats()
}

// ScheduleStream is Schedule over a trace.Source: one pass in ID order —
// a topological order by construction — evaluating the identical recurrence.
// Dependency edges are consulted only while the event streams past, so no
// event or edge outlives its decode.
func ScheduleStream(src trace.Source, latency []sim.Tick, opts ScheduleOptions) ([]sim.Tick, error) {
	m := src.Meta()
	n := m.NumEvents
	if len(latency) != n {
		return nil, fmt.Errorf("core: %d latency estimates for %d events", len(latency), n)
	}
	it, err := src.Pass()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	inject := make([]sim.Tick, n)
	var e trace.Event
	for i := 0; i < n; i++ {
		ok, err := it.Next(&e)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("core: trace stream ended after %d of %d events", i, n)
		}
		if int(e.ID) != i+1 {
			return nil, fmt.Errorf("core: trace event %d has id %d, want dense 1-based ids", i, e.ID)
		}
		var ready sim.Tick
		for _, d := range e.Deps {
			if !opts.keepDep(d.Class) {
				continue
			}
			di := int(d.On) - 1
			arr := inject[di] + latency[di]
			if arr > ready {
				ready = arr
			}
		}
		inject[i] = ready + e.Gap
	}
	return inject, nil
}

// refInjectTimes collects the capture-network injection times — the naive
// replay schedule — in one pass.
func refInjectTimes(src trace.Source) ([]sim.Tick, error) {
	n := src.Meta().NumEvents
	it, err := src.Pass()
	if err != nil {
		return nil, err
	}
	defer it.Close()
	inject := make([]sim.Tick, n)
	var e trace.Event
	for i := 0; i < n; i++ {
		ok, err := it.Next(&e)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("core: trace stream ended after %d of %d events", i, n)
		}
		if int(e.ID) != i+1 {
			return nil, fmt.Errorf("core: trace event %d has id %d, want dense 1-based ids", i, e.ID)
		}
		inject[i] = e.RefInject
	}
	return inject, nil
}

// NaiveReplayStream is NaiveReplay(Sharded) over a trace.Source: one pass
// collects the recorded injection times, a second replays them. Byte-identical
// to the in-memory naive replay for any shard count.
func NaiveReplayStream(factory NetworkFactory, src trace.Source, shards, window int) (ReplayResult, error) {
	inject, err := refInjectTimes(src)
	if err != nil {
		return ReplayResult{}, err
	}
	if shards > 1 {
		return NewShardedReplayer(factory, shards).ReplayStream(src, inject, window)
	}
	return ReplayScheduleStream(factory(), src, inject, window)
}

// ReplaySummary is the O(window)-resident replay result: everything
// ReplayResult reports except the per-event time vectors, whose O(n) storage
// is exactly what the summary tier exists to avoid.
type ReplaySummary struct {
	// Events is the number of messages replayed.
	Events int
	// Makespan, MeanLatency, Cycles and NetStats match the corresponding
	// ReplayResult fields exactly.
	Makespan    sim.Tick
	MeanLatency float64
	Cycles      sim.Tick
	NetStats    *noc.Stats
}

// NaiveReplaySummaryStream replays the trace at its recorded capture
// timestamps with truly constant residency: one event in flight from the
// decoder, O(nodes) fabric state, no per-event vectors. It requires the
// capture-order property that RefInject is nondecreasing in ID (true of
// every recorded and generated trace; checked, not assumed), which makes
// stream order the injection order and the read-ahead window exactly one
// event. The summary fields equal NaiveReplay's on the same fabric.
func NaiveReplaySummaryStream(net noc.Network, src trace.Source) (ReplaySummary, error) {
	m := src.Meta()
	if net.Now() != 0 {
		return ReplaySummary{}, fmt.Errorf("core: replay fabric is not fresh (now=%d)", net.Now())
	}
	if net.Nodes() != m.Nodes {
		return ReplaySummary{}, fmt.Errorf("core: fabric has %d nodes, trace has %d", net.Nodes(), m.Nodes)
	}
	total := m.NumEvents
	sum := ReplaySummary{Events: total}
	if total == 0 {
		tail := m.RefMakespan
		if tail < 0 {
			tail = 0
		}
		sum.Makespan = tail
		sum.Cycles = net.Now()
		sum.NetStats = net.Stats()
		return sum, nil
	}
	it, err := src.Pass()
	if err != nil {
		return ReplaySummary{}, err
	}
	defer it.Close()

	var pool noc.MsgPool
	var latSum float64
	var maxArr, maxRef sim.Tick
	delivered := 0
	net.SetDeliver(func(msg *noc.Message) {
		latSum += float64(msg.Arrive - msg.Inject)
		if msg.Arrive > maxArr {
			maxArr = msg.Arrive
		}
		delivered++
		pool.Put(msg)
	})

	var cur trace.Event
	advance := func(injected int) (bool, error) {
		ok, err := it.Next(&cur)
		if err != nil {
			return false, err
		}
		if !ok {
			if injected < total {
				return false, fmt.Errorf("core: trace stream ended after %d of %d events", injected, total)
			}
			return false, nil
		}
		if int(cur.ID) != injected+1 {
			return false, fmt.Errorf("core: trace event %d has id %d, want dense 1-based ids", injected, cur.ID)
		}
		return true, nil
	}
	have, err := advance(0)
	if err != nil {
		return ReplaySummary{}, err
	}
	injected := 0
	lastInj := cur.RefInject
	for delivered < total {
		now := net.Now()
		for have && cur.RefInject <= now {
			msg := pool.Get()
			msg.ID = uint64(cur.ID)
			msg.Src = cur.Src
			msg.Dst = cur.Dst
			msg.Bytes = cur.Bytes
			msg.Class = cur.Class
			net.Inject(msg)
			injected++
			if cur.RefArrive > maxRef {
				maxRef = cur.RefArrive
			}
			prev := cur.RefInject
			have, err = advance(injected)
			if err != nil {
				return ReplaySummary{}, err
			}
			if have {
				if cur.RefInject < prev {
					return ReplaySummary{}, fmt.Errorf("core: summary replay requires capture order, but event %d injects at %d after event %d at %d; use NaiveReplayStream", cur.ID, cur.RefInject, prev, prev)
				}
				lastInj = cur.RefInject
			}
		}
		wake := net.NextWake()
		if have && cur.RefInject < wake {
			wake = cur.RefInject
		}
		if wake == noc.Never {
			return ReplaySummary{}, fmt.Errorf("core: replay did not drain (%d/%d delivered)", delivered, total)
		}
		if wake > now+1 {
			net.SkipTo(wake - 1)
		}
		net.Tick()
		if net.Now() > lastInj+sim.Tick(1_000_000_000) {
			return ReplaySummary{}, fmt.Errorf("core: replay did not drain (%d/%d delivered)", delivered, total)
		}
	}
	tail := m.RefMakespan - maxRef
	if tail < 0 {
		tail = 0
	}
	sum.Makespan = maxArr + tail
	sum.MeanLatency = latSum / float64(total)
	sum.Cycles = net.Now()
	sum.NetStats = net.Stats()
	return sum, nil
}

// ReplayStream is the streaming counterpart of Replay: the same sharded
// conservative-lookahead composition, with each replica decoding its own
// pass of the source instead of indexing a materialized trace. A pre-pass
// collects the compact per-event scalars the statistics merge needs (payload
// size, class, shard node) — O(n) small arrays, like the schedule itself —
// while event payloads and dependency edges stay windowed. Results are
// byte-identical to Replay, hence to ReplaySchedule, for any shard count.
func (p *ShardedReplayer) ReplayStream(src trace.Source, inject []sim.Tick, window int) (ReplayResult, error) {
	net := p.fabric(0)
	m := src.Meta()
	if net.Nodes() != m.Nodes {
		return ReplayResult{}, fmt.Errorf("core: fabric has %d nodes, trace has %d", net.Nodes(), m.Nodes)
	}
	if len(inject) != m.NumEvents {
		return ReplayResult{}, fmt.Errorf("core: %d injection times for %d events", len(inject), m.NumEvents)
	}
	nodes := net.Nodes()
	k := p.shards
	if k > nodes {
		k = nodes
	}
	sh0, shardable := net.(noc.ScheduleShardable)
	if k <= 1 || !shardable {
		if shardable {
			sh0.SetShardObs(nil)
		}
		return ReplayScheduleStream(net, src, inject, window)
	}

	n := m.NumEvents
	// Pre-pass: ownership and statistics scalars. ShardNode depends only on
	// endpoints, so one scan settles which replica owns each event.
	sn := make([]int, n)
	ebytes := make([]int32, n)
	eclass := make([]noc.Class, n)
	eself := make([]bool, n)
	shardWant := make([]int, k)
	shardLast := make([]sim.Tick, k)
	var maxRef sim.Tick
	{
		it, err := src.Pass()
		if err != nil {
			return ReplayResult{}, err
		}
		var e trace.Event
		i := 0
		for ; i < n; i++ {
			ok, err := it.Next(&e)
			if err != nil {
				it.Close()
				return ReplayResult{}, err
			}
			if !ok {
				break
			}
			if int(e.ID) != i+1 {
				it.Close()
				return ReplayResult{}, fmt.Errorf("core: trace event %d has id %d, want dense 1-based ids", i, e.ID)
			}
			sn[i] = sh0.ShardNode(e.Src, e.Dst)
			ebytes[i] = int32(e.Bytes)
			eclass[i] = e.Class
			eself[i] = e.Src == e.Dst
			if e.RefArrive > maxRef {
				maxRef = e.RefArrive
			}
			s := sn[i] * k / nodes
			shardWant[s]++
			if inject[i] > shardLast[s] {
				shardLast[s] = inject[i]
			}
		}
		it.Close()
		if i != n {
			return ReplayResult{}, fmt.Errorf("core: trace stream ended after %d of %d events", i, n)
		}
	}

	// Global injection rank: the serial tie-break the statistics merge needs.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if inject[ia] != inject[ib] {
			return inject[ia] < inject[ib]
		}
		return ia < ib
	})
	rank := make([]int, n)
	for pos, i := range order {
		rank[i] = pos
	}
	sm := suffixMinInject(inject)

	res := ReplayResult{
		Inject: make([]sim.Tick, n),
		Arrive: make([]sim.Tick, n),
	}
	obs := make([]noc.ShardObs, n)
	hasObs := make([]bool, n)

	runners := make([]sim.ShardRunner, k)
	states := make([]*streamShard, k)
	var iters []trace.Iterator
	defer func() {
		for _, c := range iters {
			c.Close()
		}
	}()
	capWin := streamWindow(window)
	for s := 0; s < k; s++ {
		fnet := net
		if s > 0 {
			fnet = p.fabric(s)
		}
		fsh := fnet.(noc.ScheduleShardable)
		it, err := src.Pass()
		if err != nil {
			return ReplayResult{}, err
		}
		iters = append(iters, it)
		shard := s
		rs := &streamShard{
			net: fsh,
			dec: streamDecoder{
				it:     it,
				inject: inject,
				sm:     sm,
				window: capWin,
				own:    func(idx int) bool { return sn[idx]*k/nodes == shard },
			},
			want:    shardWant[s],
			lastInj: shardLast[s],
		}
		fsh.SetDeliver(func(msg *noc.Message) {
			idx := int(msg.ID) - 1
			res.Arrive[idx] = msg.Arrive
			res.Inject[idx] = msg.Inject
			rs.done++
			rs.pool.Put(msg)
		})
		fsh.SetShardObs(func(id uint64, o noc.ShardObs) {
			obs[id-1] = o
			hasObs[id-1] = true
		})
		runners[s] = rs
		states[s] = rs
	}

	engineWin := net.Lookahead() * 64
	if engineWin < 1024 {
		engineWin = 1024
	}
	sim.NewShardedEngine(runners, engineWin).Run()

	for s, rs := range states {
		if rs.err != nil {
			return ReplayResult{}, fmt.Errorf("core: shard %d/%d: %w", s, k, rs.err)
		}
		if rs.done != rs.want {
			return ReplayResult{}, fmt.Errorf("core: shard %d/%d delivered %d/%d", s, k, rs.done, rs.want)
		}
	}

	stats, err := mergeStats(n, func(i int) (int, noc.Class, bool) {
		return int(ebytes[i]), eclass[i], eself[i]
	}, &res, inject, obs, hasObs, rank, sn, sh0.SeqOrder())
	if err != nil {
		return ReplayResult{}, err
	}
	for _, rs := range states {
		stats.Faults.Add(rs.net.Stats().Faults)
	}

	var maxArr sim.Tick
	var lsum float64
	for i := range res.Arrive {
		if res.Arrive[i] > maxArr {
			maxArr = res.Arrive[i]
		}
		lsum += float64(res.Arrive[i] - res.Inject[i])
	}
	tail := m.RefMakespan - maxRef
	if tail < 0 {
		tail = 0
	}
	res.Makespan = maxArr + tail
	if n > 0 {
		res.MeanLatency = lsum / float64(n)
	}
	res.Cycles = maxArr
	res.NetStats = stats
	return res, nil
}

// streamShard drives one replica fabric over its owned subsequence, decoding
// from its own pass of the source. It mirrors replayShard exactly: within a
// window, decoding through the horizon first makes every potentially due
// event resident, after which the tick/skip decisions reduce to replayShard's
// — the suffix-min bound only ever matters beyond the horizon, where both
// implementations yield.
type streamShard struct {
	net     noc.ScheduleShardable
	dec     streamDecoder
	want    int
	done    int
	lastInj sim.Tick
	pool    noc.MsgPool
	err     error
}

// NextAt implements sim.ShardRunner. The suffix-min term makes it a
// conservative lower bound when the next owned event is still undecoded; a
// too-early horizon costs a barrier round, never correctness.
func (r *streamShard) NextAt() sim.Tick {
	if r.err != nil || r.done >= r.want {
		return sim.Never
	}
	wake := r.net.NextWake()
	if t := r.dec.nextInject(); t < wake {
		wake = t
	}
	return wake
}

// AdvanceTo implements sim.ShardRunner.
func (r *streamShard) AdvanceTo(horizon sim.Tick) {
	if r.err != nil {
		return
	}
	// Decode through the horizon up front: decoding never advances fabric
	// time, and it guarantees every owned event injectable inside this
	// window is pending before any tick decision is made.
	if err := r.dec.decodeTo(horizon); err != nil {
		r.err = err
		return
	}
	for r.done < r.want {
		now := r.net.Now()
		r.dec.injectDue(now, r.net, &r.pool)
		wake := r.net.NextWake()
		if t := r.dec.nextInject(); t < wake {
			wake = t
		}
		if wake >= sim.Never {
			r.err = fmt.Errorf("replay did not drain (%d/%d delivered)", r.done, r.want)
			return
		}
		if wake > horizon {
			return
		}
		if wake > now+1 {
			r.net.SkipTo(wake - 1)
		}
		r.net.Tick()
		if r.net.Now() > r.lastInj+sim.Tick(1_000_000_000) {
			r.err = fmt.Errorf("replay did not drain (%d/%d delivered)", r.done, r.want)
			return
		}
	}
}

// streamRounds executes correction rounds with streaming replays: serial on
// a reused fabric when shards ≤ 1, sharded otherwise. It mirrors
// serialRounds/ShardedReplayer round handling exactly.
type streamRounds struct {
	src    netSource
	p      *ShardedReplayer // nil for serial rounds
	window int
}

func (s *streamRounds) probe() noc.Network {
	if s.p != nil {
		return s.p.fabric(0)
	}
	pr := s.src.factory()
	if _, ok := pr.(noc.Resettable); ok {
		s.src.reused = pr
	}
	return pr
}

func (s *streamRounds) run(src trace.Source, inject []sim.Tick) (ReplayResult, error) {
	if s.p != nil {
		return s.p.ReplayStream(src, inject, s.window)
	}
	return ReplayScheduleStream(s.src.acquire(), src, inject, s.window)
}

// SelfCorrectStream runs the self-correction fixpoint over a trace.Source:
// the same correctionLoop as SelfCorrect — seeding, damping, convergence
// criteria — with every trace-touching step (zero-load probe, schedule
// derivation, replay) streamed. Trajectories and the final result are
// byte-identical to SelfCorrectShardedSeeded with the same shard count and
// seed. Window semantics match ReplayScheduleStream.
func SelfCorrectStream(factory NetworkFactory, src trace.Source, cfg config.SCTM, shards, window int, seed []sim.Tick) (CorrectionResult, error) {
	runner := &streamRounds{src: netSource{factory: factory}, window: window}
	if shards > 1 {
		runner = &streamRounds{p: NewShardedReplayer(factory, shards), window: window}
	}
	opts := ScheduleOptions{
		DisableSyncDeps:   cfg.DisableSyncDeps,
		DisableCausalDeps: cfg.DisableCausalDeps,
	}
	m := src.Meta()
	hooks := correctionHooks{
		n: m.NumEvents,
		zeroSeed: func(lat []sim.Tick) error {
			probe := runner.probe()
			it, err := src.Pass()
			if err != nil {
				return err
			}
			defer it.Close()
			var e trace.Event
			for i := 0; i < m.NumEvents; i++ {
				ok, err := it.Next(&e)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("trace stream ended after %d of %d events", i, m.NumEvents)
				}
				lat[i] = probe.ZeroLoadLatency(e.Src, e.Dst, e.Bytes)
			}
			return nil
		},
		schedule: func(lat []sim.Tick) ([]sim.Tick, error) {
			return ScheduleStream(src, lat, opts)
		},
		run: func(inject []sim.Tick) (ReplayResult, error) {
			return runner.run(src, inject)
		},
	}
	return correctionLoop(hooks, cfg, seed)
}
