package core

import (
	"fmt"
	"sort"

	"onocsim/internal/noc"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// ShardedReplayer replays injection schedules on K replica fabrics in
// parallel, producing results byte-identical to ReplaySchedule for any shard
// count.
//
// Why this is possible: schedule-driven replay fixes every injection time up
// front — deliveries never feed back into injections — so the only coupling
// between messages is contention for fabric resources. On a
// noc.ScheduleShardable fabric every resource a src→dst message touches is
// owned by the single node ShardNode(src, dst): the MWSR crossbar arbitrates
// per destination channel, SWMR serializes per source channel, the ideal
// fabric caps bandwidth per source port. Partitioning nodes across K replica
// fabrics and handing each replica only the messages of the nodes it owns
// therefore evolves every owned resource exactly as the serial run does —
// the partition has zero cross-shard channels, which makes it the degenerate
// optimum of conservative-lookahead partitioning: the safe window is
// unbounded, and the engine's window size only tunes barrier overhead.
//
// Per-message times then match the serial run by the skip-equivalence
// invariant (every Tick strictly before NextWake is a no-op), and the serial
// statistics — order-sensitive Welford accumulators included — are
// reconstructed by replaying every statistics mutation in the serial engine's
// exact order, recovered from (cycle, phase, fabric scan position); see
// mergeStats.
//
// Fabrics that do not implement noc.ScheduleShardable (the wormhole mesh,
// whose flits contend for shared links every cycle, and the hybrid fabric
// that embeds it) fall back to the serial engine, as does K ≤ 1.
type ShardedReplayer struct {
	factory NetworkFactory
	shards  int
	// nets caches Resettable fabric instances across Replay calls, one per
	// shard slot, mirroring netSource reuse in the serial loop.
	nets []noc.Network
}

// NewShardedReplayer builds a replayer that targets the given shard count.
// The count is clamped to [1, nodes] per replay; 1 (or a fabric that is not
// ScheduleShardable) selects the serial engine.
func NewShardedReplayer(factory NetworkFactory, shards int) *ShardedReplayer {
	if shards < 1 {
		shards = 1
	}
	return &ShardedReplayer{factory: factory, shards: shards}
}

// fabric returns a fresh-state network for shard slot i, reusing a cached
// Resettable instance when possible.
func (p *ShardedReplayer) fabric(i int) noc.Network {
	for len(p.nets) <= i {
		p.nets = append(p.nets, nil)
	}
	if n := p.nets[i]; n != nil {
		n.(noc.Resettable).Reset()
		return n
	}
	n := p.factory()
	if _, ok := n.(noc.Resettable); ok {
		p.nets[i] = n
	}
	return n
}

// probe implements roundRunner: a fabric for zero-load latency seeding.
func (p *ShardedReplayer) probe() noc.Network { return p.fabric(0) }

// run implements roundRunner.
func (p *ShardedReplayer) run(tr *trace.Trace, inject []sim.Tick) (ReplayResult, error) {
	return p.Replay(tr, inject)
}

// Replay is the sharded counterpart of ReplaySchedule.
func (p *ShardedReplayer) Replay(tr *trace.Trace, inject []sim.Tick) (ReplayResult, error) {
	net := p.fabric(0)
	if net.Nodes() != tr.Nodes {
		return ReplayResult{}, fmt.Errorf("core: fabric has %d nodes, trace has %d", net.Nodes(), tr.Nodes)
	}
	if len(inject) != len(tr.Events) {
		return ReplayResult{}, fmt.Errorf("core: %d injection times for %d events", len(inject), len(tr.Events))
	}
	if err := checkEventIDs(tr); err != nil {
		return ReplayResult{}, err
	}
	nodes := net.Nodes()
	k := p.shards
	if k > nodes {
		k = nodes
	}
	sh0, shardable := net.(noc.ScheduleShardable)
	if k <= 1 || !shardable {
		if shardable {
			sh0.SetShardObs(nil)
		}
		return ReplaySchedule(net, tr, inject)
	}

	n := len(tr.Events)
	res := ReplayResult{
		Inject: make([]sim.Tick, n),
		Arrive: make([]sim.Tick, n),
	}
	// Global injection order and each event's rank in it: the serial engine
	// injects by (time, ID), and the rank doubles as the serial tie-break
	// for injection-ordered statistics.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if inject[ia] != inject[ib] {
			return inject[ia] < inject[ib]
		}
		return ia < ib
	})
	rank := make([]int, n)
	for pos, i := range order {
		rank[i] = pos
	}

	// Partition events by the owner shard of their ShardNode. Iterating the
	// global order keeps every shard's subsequence in serial injection
	// order, so each replica sees its messages exactly as the serial run
	// interleaved them.
	sn := make([]int, n)
	shardOrder := make([][]int, k)
	for _, i := range order {
		e := &tr.Events[i]
		s := sh0.ShardNode(e.Src, e.Dst) * k / nodes
		sn[i] = sh0.ShardNode(e.Src, e.Dst)
		shardOrder[s] = append(shardOrder[s], i)
	}

	// Per-message fabric observations, written at disjoint indices by the
	// owning shard (each message is observed only by its own replica).
	obs := make([]noc.ShardObs, n)
	hasObs := make([]bool, n)

	runners := make([]sim.ShardRunner, k)
	shardsState := make([]*replayShard, k)
	for s := 0; s < k; s++ {
		fnet := net
		if s > 0 {
			fnet = p.fabric(s)
		}
		fsh := fnet.(noc.ScheduleShardable)
		rs := &replayShard{
			net:    fsh,
			tr:     tr,
			inject: inject,
			order:  shardOrder[s],
			want:   len(shardOrder[s]),
		}
		if rs.want > 0 {
			rs.lastInj = inject[rs.order[rs.want-1]]
		}
		fsh.SetDeliver(func(m *noc.Message) {
			idx := int(m.ID) - 1
			res.Arrive[idx] = m.Arrive
			res.Inject[idx] = m.Inject
			rs.done++
			rs.pool.Put(m)
		})
		fsh.SetShardObs(func(id uint64, o noc.ShardObs) {
			obs[id-1] = o
			hasObs[id-1] = true
		})
		runners[s] = rs
		shardsState[s] = rs
	}

	// Window size: with zero cross-shard channels any window is safe, so it
	// is sized as a generous multiple of the fabric lookahead purely to
	// amortize barrier overhead.
	window := net.Lookahead() * 64
	if window < 1024 {
		window = 1024
	}
	sim.NewShardedEngine(runners, window).Run()

	for s, rs := range shardsState {
		if rs.err != nil {
			return ReplayResult{}, fmt.Errorf("core: shard %d/%d: %w", s, k, rs.err)
		}
		if rs.done != rs.want {
			return ReplayResult{}, fmt.Errorf("core: shard %d/%d delivered %d/%d", s, k, rs.done, rs.want)
		}
	}

	stats, err := mergeStats(n, func(i int) (int, noc.Class, bool) {
		e := &tr.Events[i]
		return e.Bytes, e.Class, e.Src == e.Dst
	}, &res, inject, obs, hasObs, rank, sn, sh0.SeqOrder())
	if err != nil {
		return ReplayResult{}, err
	}

	// Fault events are per-channel, and every channel is owned by exactly
	// one shard, so each replica's counters reproduce the serial run's
	// tallies for its owned channels and zero elsewhere; summation is
	// order-insensitive, hence equal to the serial totals.
	for _, rs := range shardsState {
		stats.Faults.Add(rs.net.Stats().Faults)
	}

	finalizeShardedResult(&res, tr)
	res.NetStats = stats
	return res, nil
}

// finalizeShardedResult computes makespan and summary statistics exactly as
// finalizeResult does, with the serial engine's final clock reconstructed:
// the serial loop exits on the Tick that delivers the last message, so Now()
// there equals the last arrival. Shared by the sharded and the incremental
// sharded replayers; the caller installs NetStats from mergeStats.
func finalizeShardedResult(res *ReplayResult, tr *trace.Trace) {
	var maxArr, maxRef sim.Tick
	var sum float64
	for i := range res.Arrive {
		if res.Arrive[i] > maxArr {
			maxArr = res.Arrive[i]
		}
		if tr.Events[i].RefArrive > maxRef {
			maxRef = tr.Events[i].RefArrive
		}
		sum += float64(res.Arrive[i] - res.Inject[i])
	}
	tail := tr.RefMakespan - maxRef
	if tail < 0 {
		tail = 0
	}
	res.Makespan = maxArr + tail
	if len(res.Arrive) > 0 {
		res.MeanLatency = sum / float64(len(res.Arrive))
	}
	res.Cycles = maxArr
}

// replayShard drives one replica fabric over its owned injection
// subsequence. It is the serial ReplaySchedule loop, windowed: AdvanceTo
// processes injections, skips and ticks exactly as the serial engine would,
// but yields at the horizon so the sharded engine can barrier.
type replayShard struct {
	net     noc.ScheduleShardable
	tr      *trace.Trace
	inject  []sim.Tick
	order   []int
	next    int
	want    int
	done    int
	lastInj sim.Tick
	pool    noc.MsgPool
	err     error
}

// NextAt implements sim.ShardRunner.
func (r *replayShard) NextAt() sim.Tick {
	if r.err != nil || r.done >= r.want {
		return sim.Never
	}
	wake := r.net.NextWake()
	if r.next < len(r.order) {
		if t := r.inject[r.order[r.next]]; t < wake {
			wake = t
		}
	}
	return wake
}

// AdvanceTo implements sim.ShardRunner.
func (r *replayShard) AdvanceTo(horizon sim.Tick) {
	if r.err != nil {
		return
	}
	for r.done < r.want {
		now := r.net.Now()
		for r.next < len(r.order) && r.inject[r.order[r.next]] <= now {
			i := r.order[r.next]
			e := &r.tr.Events[i]
			m := r.pool.Get()
			m.ID = uint64(e.ID)
			m.Src = e.Src
			m.Dst = e.Dst
			m.Bytes = e.Bytes
			m.Class = e.Class
			r.net.Inject(m)
			r.next++
		}
		wake := r.net.NextWake()
		if r.next < len(r.order) {
			if t := r.inject[r.order[r.next]]; t < wake {
				wake = t
			}
		}
		if wake >= sim.Never {
			r.err = fmt.Errorf("replay did not drain (%d/%d delivered)", r.done, r.want)
			return
		}
		if wake > horizon {
			return
		}
		if wake > now+1 {
			r.net.SkipTo(wake - 1)
		}
		r.net.Tick()
		if r.net.Now() > r.lastInj+sim.Tick(1_000_000_000) {
			r.err = fmt.Errorf("replay did not drain (%d/%d delivered)", r.done, r.want)
			return
		}
	}
}

// mergeStats rebuilds the serial engine's statistics block from per-shard
// observations by replaying every mutation in the serial order. This matters
// because metrics.Summary is a Welford accumulator — its mean/m2 floats
// depend on Add order, and Summary.Merge is *not* byte-identical to
// sequential Adds — so the only way to match the serial block bit-for-bit is
// to re-run the Adds in the exact serial sequence.
//
// The serial replay loop visits each clock value c in three phases:
//
//	phase 0 — deliveries: messages with Arrive == c pop from the arrival
//	  heap in (at, seq) order. SeqByInjection fabrics assign seq at Inject,
//	  so the tie-break is the global injection rank; SeqByService fabrics
//	  assign seq when a transmission starts (self-messages at Inject), so
//	  the tie-break is the transmit-start key (start cycle, then channel
//	  scan position; self-messages sort as injections of their cycle).
//	phase 1 — transmit starts: the crossbar Tick scans channels in
//	  ascending ShardNode order, recording the queue wait into HopCount
//	  then QueueDelay for each message that wins its channel.
//	phase 2 — injections: events due at c are injected in (time, ID)
//	  order at the top of the loop, after the Tick that moved the clock to
//	  c — Injected++, and the ideal fabric also records its bandwidth
//	  stall into QueueDelay here.
//
// Sorting all mutation records by (cycle, phase, tie-break) therefore
// reproduces the serial mutation sequence exactly.
//
// The per-event trace data it needs is tiny — payload bytes, traffic class,
// and whether the message is node-local — so it takes an accessor instead of
// the materialized trace: the in-memory path closes over tr.Events, the
// streaming path over the compact arrays its pre-pass collected.
func mergeStats(n int, ev func(i int) (bytes int, class noc.Class, self bool), res *ReplayResult, inject []sim.Tick, obs []noc.ShardObs, hasObs []bool, rank, sn []int, seqOrder noc.SeqOrder) (*noc.Stats, error) {
	type mutOp struct {
		cycle sim.Tick
		phase uint8
		// Tie-break key inside (cycle, phase): for phase-0 deliveries of
		// SeqByService fabrics this is the seq-assignment key (a, b, c) =
		// (start cycle, assignment phase, channel/rank); elsewhere only c
		// is used.
		a   sim.Tick
		b   uint8
		c   int64
		idx int
	}
	ops := make([]mutOp, 0, 3*n)
	for i := 0; i < n; i++ {
		_, _, self := ev(i)
		switch seqOrder {
		case noc.SeqByInjection:
			if !hasObs[i] {
				return nil, fmt.Errorf("core: fabric recorded no shard observation for event %d", i+1)
			}
			ops = append(ops, mutOp{cycle: res.Arrive[i], phase: 0, c: int64(rank[i]), idx: i})
		case noc.SeqByService:
			if self {
				ops = append(ops, mutOp{cycle: res.Arrive[i], phase: 0, a: inject[i], b: 2, c: int64(rank[i]), idx: i})
			} else {
				if !hasObs[i] {
					return nil, fmt.Errorf("core: fabric recorded no shard observation for event %d", i+1)
				}
				ops = append(ops, mutOp{cycle: res.Arrive[i], phase: 0, a: obs[i].Start, b: 1, c: int64(sn[i]), idx: i})
				ops = append(ops, mutOp{cycle: obs[i].Start, phase: 1, c: int64(sn[i]), idx: i})
			}
		default:
			return nil, fmt.Errorf("core: unknown fabric seq order %d", seqOrder)
		}
		ops = append(ops, mutOp{cycle: inject[i], phase: 2, c: int64(rank[i]), idx: i})
	}
	sort.Slice(ops, func(x, y int) bool {
		ox, oy := &ops[x], &ops[y]
		if ox.cycle != oy.cycle {
			return ox.cycle < oy.cycle
		}
		if ox.phase != oy.phase {
			return ox.phase < oy.phase
		}
		if ox.a != oy.a {
			return ox.a < oy.a
		}
		if ox.b != oy.b {
			return ox.b < oy.b
		}
		return ox.c < oy.c
	})

	stats := noc.NewStats()
	for _, op := range ops {
		bytes, class, _ := ev(op.idx)
		switch op.phase {
		case 0:
			lat := float64(res.Arrive[op.idx] - res.Inject[op.idx])
			stats.Delivered++
			stats.BytesDelivered += uint64(bytes)
			stats.Latency.Add(lat)
			if class < noc.NumClasses {
				stats.PerClass[class].Add(lat)
			}
			if seqOrder == noc.SeqByInjection {
				// The ideal fabric records one "hop" per delivery.
				stats.HopCount.Add(1)
			}
		case 1:
			stats.HopCount.Add(obs[op.idx].Queue)
			stats.QueueDelay.Add(obs[op.idx].Queue)
		case 2:
			stats.Injected++
			if seqOrder == noc.SeqByInjection {
				stats.QueueDelay.Add(obs[op.idx].Queue)
			}
		}
	}
	return stats, nil
}

// ReplayScheduleSharded replays a schedule across the given number of shards;
// it is ReplaySchedule's drop-in parallel form.
func ReplayScheduleSharded(factory NetworkFactory, tr *trace.Trace, inject []sim.Tick, shards int) (ReplayResult, error) {
	return NewShardedReplayer(factory, shards).Replay(tr, inject)
}

// NaiveReplaySharded is NaiveReplay across the given number of shards.
func NaiveReplaySharded(factory NetworkFactory, tr *trace.Trace, shards int) (ReplayResult, error) {
	inject := make([]sim.Tick, len(tr.Events))
	for i := range tr.Events {
		inject[i] = tr.Events[i].RefInject
	}
	return ReplayScheduleSharded(factory, tr, inject, shards)
}
