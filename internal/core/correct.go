package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strconv"

	"onocsim/internal/config"
	"onocsim/internal/noc"
	"onocsim/internal/prof"
	"onocsim/internal/sim"
	"onocsim/internal/trace"
)

// NetworkFactory builds a fresh instance of the target fabric. Each
// correction iteration replays on a clean network. When the fabric
// implements noc.Resettable the loop builds it once and resets it between
// rounds — observationally identical to a fresh build, without paying the
// full construction (topology wiring, photonic budget) per iteration; other
// fabrics fall back to one build per round.
type NetworkFactory func() noc.Network

// netSource hands out clean fabrics for correction rounds, reusing a single
// Resettable instance when the fabric supports it.
type netSource struct {
	factory NetworkFactory
	reused  noc.Network
	used    bool
}

// acquire returns a fabric at time zero with no prior traffic.
func (s *netSource) acquire() noc.Network {
	if s.reused != nil {
		if s.used {
			s.reused.(noc.Resettable).Reset()
		}
		s.used = true
		return s.reused
	}
	n := s.factory()
	if _, ok := n.(noc.Resettable); ok {
		s.reused = n
		s.used = true
	}
	return n
}

// Iteration records the state of the correction loop after one round.
type Iteration struct {
	// Round is 0-based.
	Round int
	// Delta is the largest injection-time change versus the previous
	// round's schedule (Round 0 compares against the zero-load seed).
	Delta sim.Tick
	// Makespan and MeanLatency are this round's estimates.
	Makespan    sim.Tick
	MeanLatency float64
	// Cycles is the fabric time simulated this round.
	Cycles sim.Tick
}

// CorrectionResult is the output of the self-correction loop.
type CorrectionResult struct {
	// Final is the converged replay.
	Final ReplayResult
	// Iterations traces the convergence (experiment R3).
	Iterations []Iteration
	// Converged reports whether the loop met the tolerance before
	// exhausting its iteration budget.
	Converged bool
	// TotalCycles sums fabric cycles across all rounds — the simulation
	// cost the R2 experiment charges to the method.
	TotalCycles sim.Tick
	// ReplayedEvents counts injections actually performed across all
	// rounds. A full-replay loop performs len(tr.Events) per round;
	// incremental rounds resume from frozen-prefix checkpoints and inject
	// only the dirty suffix, so the gap between this and
	// len(tr.Events)×len(Iterations) is the work the checkpointing saved.
	ReplayedEvents int
	// SavedCycles sums the fabric cycles skipped by checkpoint restores
	// (each restore at time t0 saves the t0 cycles of frozen prefix it
	// would otherwise re-simulate). Zero for full-replay loops.
	SavedCycles sim.Tick
}

// roundRunner abstracts how one correction round's replay is executed: the
// serial engine on a reused fabric, or the sharded engine on K replicas. The
// probe hands out a fresh fabric for zero-load latency seeding; it never
// ticks, so implementations may recycle it into later rounds.
type roundRunner interface {
	probe() noc.Network
	run(tr *trace.Trace, inject []sim.Tick) (ReplayResult, error)
}

// serialRounds is the classic single-fabric execution of the loop.
type serialRounds struct {
	src netSource
}

func (s *serialRounds) probe() noc.Network {
	p := s.src.factory()
	if _, ok := p.(noc.Resettable); ok {
		s.src.reused = p
	}
	return p
}

func (s *serialRounds) run(tr *trace.Trace, inject []sim.Tick) (ReplayResult, error) {
	return ReplaySchedule(s.src.acquire(), tr, inject)
}

// SelfCorrect runs the Self-Correction Trace Model: starting from zero-load
// latency estimates, it alternates (a) re-deriving the injection schedule
// from the dependency DAG and (b) measuring realized latencies by replaying
// that schedule on a fresh fabric, until the schedule reaches a fixpoint.
func SelfCorrect(factory NetworkFactory, tr *trace.Trace, cfg config.SCTM) (CorrectionResult, error) {
	return SelfCorrectSeeded(factory, tr, cfg, nil)
}

// SelfCorrectSeeded is SelfCorrect with an externally supplied round-0
// latency seed, one entry per trace event (the analytical fast path computes
// one from the trace's byte histogram). A nil seed reproduces SelfCorrect
// exactly; a non-nil seed takes precedence over both InitialLatencyCycles
// and the zero-load probe. The seed slice is copied, never mutated.
//
// cfg.Incremental selects frozen-prefix checkpointing between rounds:
// results stay byte-identical (only ReplayedEvents/SavedCycles differ), the
// later rounds just skip re-simulating the schedule prefix that did not
// change.
func SelfCorrectSeeded(factory NetworkFactory, tr *trace.Trace, cfg config.SCTM, seed []sim.Tick) (CorrectionResult, error) {
	var runner roundRunner = &serialRounds{src: netSource{factory: factory}}
	if cfg.Incremental {
		runner = newIncrSerial(factory)
	}
	return selfCorrect(runner, tr, cfg, seed)
}

// SelfCorrectSharded is SelfCorrect with each round's replay executed across
// the given number of shards. Results are byte-identical to SelfCorrect for
// any shard count — the schedule derivation is untouched and the sharded
// replay reproduces the serial replay exactly — so the shard count is purely
// a wall-clock knob.
func SelfCorrectSharded(factory NetworkFactory, tr *trace.Trace, cfg config.SCTM, shards int) (CorrectionResult, error) {
	return SelfCorrectShardedSeeded(factory, tr, cfg, shards, nil)
}

// SelfCorrectShardedSeeded combines SelfCorrectSharded's parallel replay
// rounds with SelfCorrectSeeded's external round-0 seed.
func SelfCorrectShardedSeeded(factory NetworkFactory, tr *trace.Trace, cfg config.SCTM, shards int, seed []sim.Tick) (CorrectionResult, error) {
	return SelfCorrectShardedSeededCtx(context.Background(), factory, tr, cfg, shards, seed)
}

// ErrParked reports a correction loop stopped cooperatively at a round
// boundary because its context ended before the fixpoint was reached. The
// accompanying CorrectionResult is the valid partial trajectory up to the
// park point (Converged false); callers that memoize results must treat a
// parked result as uncacheable — it reflects where the loop stopped, not
// what the configuration converges to.
var ErrParked = errors.New("core: self-correction parked before convergence")

// SelfCorrectShardedSeededCtx is SelfCorrectShardedSeeded with cooperative
// cancellation: the loop checks ctx at every round boundary — the same
// boundaries the incremental engine checkpoints at — and, once ctx is done,
// parks instead of starting another round. A parked run returns the partial
// CorrectionResult together with an error wrapping ErrParked and ctx's
// error. Replay rounds themselves are never interrupted mid-flight, so a
// park costs at most one round of latency and the partial trajectory is
// byte-identical to a prefix of the uncancelled run's.
func SelfCorrectShardedSeededCtx(ctx context.Context, factory NetworkFactory, tr *trace.Trace, cfg config.SCTM, shards int, seed []sim.Tick) (CorrectionResult, error) {
	res, _, err := SelfCorrectParkableCtx(ctx, factory, tr, cfg, shards, seed, nil)
	return res, err
}

// ParkState snapshots a parked correction loop at the round boundary it
// stopped at: the blended latency estimates, the derived schedule the next
// round would have replayed, the trajectory so far, and — crucially — the
// live round runner, whose fabric checkpoints (the incremental engine's
// noc.Checkpointer ladders) survive the park intact. Resuming through
// SelfCorrectParkableCtx continues the loop exactly where it stopped: the
// completed run is byte-identical to one that never parked, and an
// incremental resume replays only the dirty suffix of its first resumed
// round instead of starting the whole fixpoint from scratch.
//
// A ParkState is bound to the (trace, SCTM config, fabric) triple that
// produced it and is single-use: the runner inside is not safe for
// concurrent resumes. Callers that stash states must hand each one to at
// most one resume.
type ParkState struct {
	runner     roundRunner
	lat        []sim.Tick
	prev       []sim.Tick
	iterations []Iteration
	final      ReplayResult
	cycles     sim.Tick
}

// Rounds reports how many correction rounds completed before the park.
func (p *ParkState) Rounds() int {
	if p == nil {
		return 0
	}
	return len(p.iterations)
}

// SelfCorrectParkableCtx is SelfCorrectShardedSeededCtx with explicit park
// state: a parked run returns a non-nil *ParkState alongside the ErrParked
// error, and passing that state back (same trace, config and fabric kind)
// resumes the loop at the parked round boundary instead of restarting. With
// a nil resume the call is identical to SelfCorrectShardedSeededCtx. seed is
// ignored on resume — the state's blended latencies take precedence.
func SelfCorrectParkableCtx(ctx context.Context, factory NetworkFactory, tr *trace.Trace, cfg config.SCTM, shards int, seed []sim.Tick, resume *ParkState) (CorrectionResult, *ParkState, error) {
	var runner roundRunner
	switch {
	case resume != nil && resume.runner != nil:
		// The parked runner carries the fabric checkpoints the resumed
		// rounds restore from; a fresh runner would be correct but would
		// replay its first round in full.
		runner = resume.runner
	case shards <= 1 && cfg.Incremental:
		runner = newIncrSerial(factory)
	case shards <= 1:
		runner = &serialRounds{src: netSource{factory: factory}}
	case cfg.Incremental:
		runner = newIncrSharded(factory, shards)
	default:
		runner = NewShardedReplayer(factory, shards)
	}
	return selfCorrectParkable(ctx, runner, tr, cfg, seed, resume)
}

func selfCorrect(runner roundRunner, tr *trace.Trace, cfg config.SCTM, seed []sim.Tick) (CorrectionResult, error) {
	return selfCorrectCtx(context.Background(), runner, tr, cfg, seed)
}

func selfCorrectCtx(ctx context.Context, runner roundRunner, tr *trace.Trace, cfg config.SCTM, seed []sim.Tick) (CorrectionResult, error) {
	res, _, err := selfCorrectParkable(ctx, runner, tr, cfg, seed, nil)
	return res, err
}

func selfCorrectParkable(ctx context.Context, runner roundRunner, tr *trace.Trace, cfg config.SCTM, seed []sim.Tick, resume *ParkState) (CorrectionResult, *ParkState, error) {
	if err := tr.Validate(); err != nil {
		return CorrectionResult{}, nil, fmt.Errorf("core: invalid trace: %w", err)
	}
	opts := ScheduleOptions{
		DisableSyncDeps:   cfg.DisableSyncDeps,
		DisableCausalDeps: cfg.DisableCausalDeps,
	}
	hooks := correctionHooks{
		n: len(tr.Events),
		zeroSeed: func(lat []sim.Tick) error {
			probe := runner.probe()
			for i := range tr.Events {
				e := &tr.Events[i]
				lat[i] = probe.ZeroLoadLatency(e.Src, e.Dst, e.Bytes)
			}
			return nil
		},
		schedule: func(lat []sim.Tick) ([]sim.Tick, error) {
			return Schedule(tr, lat, opts), nil
		},
		run: func(inject []sim.Tick) (ReplayResult, error) {
			return runner.run(tr, inject)
		},
	}
	if w, ok := runner.(interface{ work() (int, sim.Tick) }); ok {
		hooks.work = w.work
	}
	hooks.stop = ctx.Err
	res, state, err := correctionLoopResume(hooks, cfg, seed, resume)
	if state != nil {
		state.runner = runner
	}
	return res, state, err
}

// correctionHooks abstracts the three trace-touching operations of one
// correction loop — zero-load seeding, schedule derivation, and the replay
// itself — so the in-memory and streaming executions share a single loop
// body (damping, convergence criteria, iteration records) and can never
// drift apart.
type correctionHooks struct {
	n        int
	zeroSeed func(lat []sim.Tick) error
	schedule func(lat []sim.Tick) ([]sim.Tick, error)
	run      func(inject []sim.Tick) (ReplayResult, error)
	// work, when non-nil, reports the runner's (replayed events, saved
	// cycles) counters for CorrectionResult. Runners without it (full
	// replay) default to events×rounds replayed, zero saved.
	work func() (int, sim.Tick)
	// stop, when non-nil, is polled at every round boundary; a non-nil
	// return parks the loop there (see ErrParked). Typically ctx.Err.
	stop func() error
}

// correctionLoop is the fixpoint iteration shared by SelfCorrect and its
// streaming counterpart.
func correctionLoop(h correctionHooks, cfg config.SCTM, seed []sim.Tick) (CorrectionResult, error) {
	res, _, err := correctionLoopResume(h, cfg, seed, nil)
	return res, err
}

// correctionLoopResume is correctionLoop with park-state plumbing: a parked
// exit returns the state the loop can later be re-entered with, and a
// non-nil resume re-enters at the parked round boundary — skipping seeding
// and the initial schedule derivation, with the trajectory so far already in
// place.
func correctionLoopResume(h correctionHooks, cfg config.SCTM, seed []sim.Tick, resume *ParkState) (CorrectionResult, *ParkState, error) {
	n := h.n

	var out CorrectionResult
	var lat, prev []sim.Tick
	if resume != nil {
		if len(resume.lat) != n || len(resume.prev) != n {
			return CorrectionResult{}, nil, fmt.Errorf("core: resume state sized for %d events, trace has %d", len(resume.lat), n)
		}
		if len(resume.iterations) >= cfg.MaxIterations {
			return CorrectionResult{}, nil, fmt.Errorf("core: resume state has %d rounds, budget is %d", len(resume.iterations), cfg.MaxIterations)
		}
		lat = append([]sim.Tick(nil), resume.lat...)
		prev = append([]sim.Tick(nil), resume.prev...)
		out.Iterations = append([]Iteration(nil), resume.iterations...)
		out.Final = resume.final
		out.TotalCycles = resume.cycles
	} else {
		// Seed latencies: an externally supplied per-event estimate wins (the
		// damping blend mutates lat in place, so the caller's slice is copied),
		// then a fixed constant if configured, else the target fabric's
		// zero-load estimate per message.
		lat = make([]sim.Tick, n)
		if seed != nil {
			if len(seed) != n {
				return CorrectionResult{}, nil, fmt.Errorf("core: seed has %d latencies for %d events", len(seed), n)
			}
			copy(lat, seed)
		} else if cfg.InitialLatencyCycles > 0 {
			for i := range lat {
				lat[i] = sim.Tick(cfg.InitialLatencyCycles)
			}
		} else if err := h.zeroSeed(lat); err != nil {
			return CorrectionResult{}, nil, fmt.Errorf("core: zero-load seeding: %w", err)
		}
	}
	// finish fills the work counters at every successful exit; full-replay
	// runners charge the whole trace to every round.
	finish := func() {
		if h.work != nil {
			out.ReplayedEvents, out.SavedCycles = h.work()
		} else {
			out.ReplayedEvents = n * len(out.Iterations)
		}
	}
	// Profiler labels tag every sample with the round and phase so a pprof
	// capture of a correction run decomposes into schedule derivation versus
	// replay, per round (round -1 renders as "seed"). Label bookkeeping
	// allocates per pprof.Do call, so unprofiled runs — the common case, and
	// the one the allocation gate measures — skip it entirely.
	labeled := func(round int, phase string, fn func() error) error {
		if !prof.CPUActive() {
			return fn()
		}
		r := "seed"
		if round >= 0 {
			r = strconv.Itoa(round)
		}
		var err error
		pprof.Do(context.Background(), pprof.Labels("round", r, "phase", phase), func(context.Context) {
			err = fn()
		})
		return err
	}
	if resume == nil {
		if err := labeled(-1, "schedule", func() (err error) {
			prev, err = h.schedule(lat)
			return err
		}); err != nil {
			return CorrectionResult{}, nil, fmt.Errorf("core: deriving schedule: %w", err)
		}
	}
	for round := len(out.Iterations); round < cfg.MaxIterations; round++ {
		// Park point: the round boundary is where the incremental engine
		// checkpoints, so stopping here loses at most the round that was
		// about to start, never work already done. The partial result is
		// returned alongside the error — callers decide whether the
		// trajectory so far is worth reporting — together with the state a
		// later call can resume from.
		if h.stop != nil {
			if cause := h.stop(); cause != nil {
				finish()
				state := &ParkState{
					lat:        append([]sim.Tick(nil), lat...),
					prev:       append([]sim.Tick(nil), prev...),
					iterations: append([]Iteration(nil), out.Iterations...),
					final:      out.Final,
					cycles:     out.TotalCycles,
				}
				return out, state, fmt.Errorf("%w after %d of %d rounds: %v",
					ErrParked, len(out.Iterations), cfg.MaxIterations, cause)
			}
		}
		var res ReplayResult
		if err := labeled(round, "replay", func() (err error) {
			res, err = h.run(prev)
			return err
		}); err != nil {
			return CorrectionResult{}, nil, fmt.Errorf("core: correction round %d: %w", round, err)
		}
		out.TotalCycles += res.Cycles
		// Blend measured latencies into the running estimates. Damping
		// suppresses the two-cycle oscillation of self-reinforcing
		// contention estimates (messages scheduled together congest,
		// spread apart, then congest again).
		measured := res.Latencies()
		if cfg.Damping > 0 {
			for i := range lat {
				lat[i] += sim.Tick(float64(measured[i]-lat[i]) * (1 - cfg.Damping))
			}
		} else {
			lat = measured
		}
		var next []sim.Tick
		if err := labeled(round, "schedule", func() (err error) {
			next, err = h.schedule(lat)
			return err
		}); err != nil {
			return CorrectionResult{}, nil, fmt.Errorf("core: correction round %d: %w", round, err)
		}
		delta := MaxScheduleDelta(next, prev)
		out.Iterations = append(out.Iterations, Iteration{
			Round:       round,
			Delta:       delta,
			Makespan:    res.Makespan,
			MeanLatency: res.MeanLatency,
			Cycles:      res.Cycles,
		})
		prevMakespan := sim.Tick(-1)
		if round > 0 {
			prevMakespan = out.Iterations[round-1].Makespan
		}
		out.Final = res
		if delta <= sim.Tick(cfg.ToleranceCycles) {
			out.Converged = true
			finish()
			return out, nil, nil
		}
		// Aggregate-stability criterion: under contention the per-event
		// schedule keeps jittering by a few hundred cycles while the
		// makespan has long settled; declare convergence when the
		// makespan moves less than the configured fraction.
		if cfg.MakespanTolerance > 0 && prevMakespan > 0 {
			diff := res.Makespan - prevMakespan
			if diff < 0 {
				diff = -diff
			}
			if float64(diff) <= cfg.MakespanTolerance*float64(res.Makespan) {
				out.Converged = true
				finish()
				return out, nil, nil
			}
		}
		prev = next
	}
	finish()
	return out, nil, nil
}
