// Package cliutil standardizes error-to-exit-code mapping across the
// onocsim commands, following the flag package's convention: bad
// command-line input exits 2, runtime failures exit 1, success exits 0.
package cliutil

import (
	"errors"
	"fmt"
)

// UsageError marks an error caused by invalid command-line input (an unknown
// flag value, a malformed positional argument) as opposed to a runtime
// failure. Wrap-aware: ExitCode finds it anywhere in an error chain.
type UsageError struct {
	Err error
}

func (e UsageError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e UsageError) Unwrap() error { return e.Err }

// Usagef builds a UsageError from a format string.
func Usagef(format string, args ...interface{}) error {
	return UsageError{Err: fmt.Errorf(format, args...)}
}

// ExitCode maps an error to the conventional process exit code: 0 for nil,
// 2 for usage errors, 1 for everything else.
func ExitCode(err error) int {
	if err == nil {
		return 0
	}
	var ue UsageError
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}
