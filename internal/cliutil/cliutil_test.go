package cliutil

import (
	"errors"
	"fmt"
	"testing"
)

// TestExitCode pins the exit-code convention every command shares: usage
// errors exit 2 (flag package convention), runtime failures exit 1.
func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"runtime", errors.New("boom"), 1},
		{"usage", Usagef("unknown mode %q", "teleport"), 2},
		{"wrapped usage", fmt.Errorf("while parsing: %w", Usagef("bad flag")), 2},
		{"wrapped runtime", fmt.Errorf("outer: %w", errors.New("inner")), 1},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestUsageErrorMessage checks the wrapper is transparent to callers that
// just print the error.
func TestUsageErrorMessage(t *testing.T) {
	err := Usagef("unknown format %q (want ascii or json)", "xml")
	want := `unknown format "xml" (want ascii or json)`
	if err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
	var ue UsageError
	if !errors.As(err, &ue) {
		t.Error("errors.As failed to find UsageError")
	}
}
