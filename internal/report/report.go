// Package report builds the typed result tables shared by the onocsim CLI
// and the onocsimd service: one table per operation, rendered as ASCII for
// terminals or versioned JSON for machine consumers. Both front ends call
// these builders so their outputs stay byte-identical — the daemon's JSON for
// an exec run is exactly what `onocsim -mode exec -format json` prints.
package report

import (
	"fmt"
	"time"

	"onocsim"
	"onocsim/internal/config"
	"onocsim/internal/metrics"
)

// Exec renders an execution-driven run.
func Exec(cfg onocsim.Config, kind onocsim.NetworkKind, res onocsim.GroundTruth) *metrics.Table {
	t := metrics.NewTable(fmt.Sprintf("execution-driven run — %s, %s, %d cores",
		cfg.Workload.Kernel, kind, cfg.System.Cores), "metric", "value")
	t.AddCells(metrics.String("makespan (cycles)"), metrics.Int(int64(res.Makespan), "cycles"))
	t.AddCells(metrics.String("mean msg latency (cycles)"), metrics.Float(res.MeanLatency, 2, "cycles"))
	t.AddCells(metrics.String("network messages"), metrics.Int(int64(res.Messages), "messages"))
	t.AddCells(metrics.String("simulated cycles"), metrics.Int(int64(res.Cycles), "cycles"))
	t.AddCells(metrics.String("mean latency by class"), metrics.Stringf("req %.1f / resp %.1f / wb %.1f",
		res.ClassLatency[0], res.ClassLatency[1], res.ClassLatency[2]))
	t.AddCells(metrics.String("host wall time"), metrics.DurationText(res.WallTime))
	t.AddCells(metrics.String("network power (mW)"), metrics.Stringf("%.1f static + %.2f dynamic",
		res.Power.StaticMW, res.Power.DynamicMW))
	if cfg.Faults.Enabled() {
		t.AddCells(metrics.String("fault events"), metrics.Stringf("%d token losses / %d drifted / %d derated / %d rerouted",
			res.Faults.TokenLosses, res.Faults.DriftedSends, res.Faults.DeratedSends, res.Faults.Rerouted))
	}
	return t
}

// Study renders the full methodology comparison.
func Study(cfg onocsim.Config, kind onocsim.NetworkKind, study *onocsim.Study) *metrics.Table {
	t := metrics.NewTable(fmt.Sprintf("methodology study — %s on %s, %d cores",
		study.Workload, kind, cfg.System.Cores),
		"method", "makespan", "err vs truth", "mean lat", "host time")
	t.AddCells(metrics.String("execution-driven (truth)"), metrics.Int(int64(study.Truth.Makespan), "cycles"),
		metrics.String("—"),
		metrics.Float(study.Truth.MeanLatency, 1, "cycles"), metrics.DurationText(study.Truth.WallTime))
	t.AddCells(metrics.String("naive trace replay"), metrics.Int(int64(study.Naive.Makespan), "cycles"),
		metrics.Percent(study.NaiveAcc.MakespanErr),
		metrics.Float(study.Naive.MeanLatency, 1, "cycles"), metrics.DurationText(study.NaiveWall))
	t.AddCells(metrics.String("self-correction trace model"), metrics.Int(int64(study.SCTM.Final.Makespan), "cycles"),
		metrics.Percent(study.SCTMAcc.MakespanErr),
		metrics.Float(study.SCTM.Final.MeanLatency, 1, "cycles"), metrics.DurationText(study.SCTMWall))
	t.AddCells(metrics.String("coupled replay (reference)"), metrics.Int(int64(study.Coupled.Makespan), "cycles"),
		metrics.Percent(study.CoupAcc.MakespanErr),
		metrics.Float(study.Coupled.MeanLatency, 1, "cycles"), metrics.DurationText(study.CoupledWall))
	t.Note("trace: %d events captured on the %s fabric in %s",
		study.Trace.NumEvents(), config.NetIdeal, study.CaptureWall)
	t.Note("self-correction: %d rounds, converged=%v, %d events replayed (%d cycles skipped by checkpoints)",
		len(study.SCTM.Iterations), study.SCTM.Converged, study.SCTM.ReplayedEvents, study.SCTM.SavedCycles)
	return t
}

// Correction renders one self-correction run: the converged (or parked)
// replay plus the convergence trajectory summary. parked marks a run whose
// loop stopped at a round boundary before converging.
func Correction(cfg onocsim.Config, kind onocsim.NetworkKind, res onocsim.CorrectionResult, wall time.Duration, parked bool) *metrics.Table {
	t := metrics.NewTable(fmt.Sprintf("self-correction trace model — %s on %s, %d cores",
		cfg.Workload.Kernel, kind, cfg.System.Cores), "metric", "value")
	t.AddCells(metrics.String("makespan (cycles)"), metrics.Int(int64(res.Final.Makespan), "cycles"))
	t.AddCells(metrics.String("mean msg latency (cycles)"), metrics.Float(res.Final.MeanLatency, 2, "cycles"))
	t.AddCells(metrics.String("rounds"), metrics.Int(int64(len(res.Iterations)), "rounds"))
	t.AddCells(metrics.String("converged"), metrics.Stringf("%v", res.Converged))
	t.AddCells(metrics.String("events replayed"), metrics.Int(int64(res.ReplayedEvents), "events"))
	t.AddCells(metrics.String("simulation cost (cycles)"), metrics.Int(int64(res.TotalCycles), "cycles"))
	if res.SavedCycles > 0 {
		t.AddCells(metrics.String("cycles skipped by checkpoints"), metrics.Int(int64(res.SavedCycles), "cycles"))
	}
	t.AddCells(metrics.String("host wall time"), metrics.DurationText(wall))
	if parked {
		t.Note("parked before convergence: the trajectory above is a valid prefix of the full run")
	}
	return t
}

// Estimate renders the closed-form contention-aware estimate.
func Estimate(cfg onocsim.Config, kind onocsim.NetworkKind, res onocsim.AnalyticEstimate, wall time.Duration) *metrics.Table {
	t := metrics.NewTable(fmt.Sprintf("analytic estimate — %s on %s, %d cores",
		cfg.Workload.Kernel, kind, cfg.System.Cores), "metric", "value")
	t.AddCells(metrics.String("estimated makespan (cycles)"), metrics.Int(int64(res.Makespan), "cycles"))
	t.AddCells(metrics.String("zero-load makespan (cycles)"), metrics.Int(int64(res.ZeroLoadMakespan), "cycles"))
	t.AddCells(metrics.String("estimated mean latency (cycles)"), metrics.Float(res.MeanLatency, 2, "cycles"))
	t.AddCells(metrics.String("events priced"), metrics.Int(int64(len(res.Latency)), "events"))
	t.AddCells(metrics.String("host wall time"), metrics.DurationText(wall))
	return t
}
