package sim

import (
	"fmt"
)

// Event is a unit of scheduled work. Events are ordered by time, with the
// scheduling sequence number breaking ties so that execution order is total
// and deterministic.
//
// Events are stored by value inside the engine's queue: scheduling performs
// no per-event allocation beyond the caller's closure, and the queue slice
// itself is recycled across the whole run.
type Event struct {
	at  Tick
	seq uint64
	fn  func()
}

// At returns the simulated time at which the event fires.
func (e *Event) At() Tick { return e.at }

// eventHeap is a hand-rolled 4-ary min-heap over Event values ordered by
// (time, seq). A 4-ary heap halves the tree depth of the binary heap the
// standard library would give us, and storing values instead of *Event
// removes both the per-event allocation and the interface{} boxing of
// container/heap — the two dominant allocation sources of the old engine.
type eventHeap []Event

// before is the (time, seq) total order.
func (h eventHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends ev and sifts it up.
func (h *eventHeap) push(ev Event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q.before(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() Event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = Event{} // release the closure for GC
	q = q[:n]
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.before(c, min) {
				min = c
			}
		}
		if !q.before(min, i) {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	*h = q
	return top
}

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use. Engine is not safe for concurrent use; each simulation owns
// exactly one goroutine-confined engine.
type Engine struct {
	now     Tick
	seq     uint64
	queue   eventHeap
	stopped bool

	// Executed counts events that have fired; it is the canonical measure
	// of simulation effort used by the R2 cost experiment.
	Executed uint64
}

// NewEngine returns an empty engine positioned at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Tick { return e.now }

// Pending returns the number of scheduled, not-yet-executed events.
func (e *Engine) Pending() int { return len(e.queue) }

// NextAt returns the firing time of the earliest pending event. ok is false
// when the queue is empty. Owners use it to fast-forward across provably
// idle stretches.
func (e *Engine) NextAt() (at Tick, ok bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Schedule enqueues fn to run at absolute time at. Scheduling in the past is
// a programming error and panics: silently reordering time would destroy the
// determinism contract.
func (e *Engine) Schedule(at Tick, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	e.queue.push(Event{at: at, seq: e.seq, fn: fn})
	e.seq++
}

// After enqueues fn to run delay ticks from now.
func (e *Engine) After(delay Tick, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// Stop makes the currently running Run call return after the in-flight
// event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing time to it. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.at
	e.Executed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or Stop is called. It
// returns the final simulated time.
func (e *Engine) Run() Tick {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with time ≤ deadline. Events scheduled beyond the
// deadline remain queued; time advances to the deadline if the queue runs
// dry earlier, mirroring how a synchronous co-simulation window behaves.
func (e *Engine) RunUntil(deadline Tick) Tick {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 || e.queue[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}
