package sim

import (
	"container/heap"
	"fmt"
)

// Event is a unit of scheduled work. Events are ordered by time, with the
// scheduling sequence number breaking ties so that execution order is total
// and deterministic.
type Event struct {
	at  Tick
	seq uint64
	fn  func()
}

// At returns the simulated time at which the event fires.
func (e *Event) At() Tick { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event scheduler. The zero value is
// ready to use. Engine is not safe for concurrent use; each simulation owns
// exactly one goroutine-confined engine.
type Engine struct {
	now     Tick
	seq     uint64
	queue   eventHeap
	stopped bool

	// Executed counts events that have fired; it is the canonical measure
	// of simulation effort used by the R2 cost experiment.
	Executed uint64
}

// NewEngine returns an empty engine positioned at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Tick { return e.now }

// Pending returns the number of scheduled, not-yet-executed events.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past is
// a programming error and panics: silently reordering time would destroy the
// determinism contract.
func (e *Engine) Schedule(at Tick, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After enqueues fn to run delay ticks from now.
func (e *Engine) After(delay Tick, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return e.Schedule(e.now+delay, fn)
}

// Stop makes the currently running Run call return after the in-flight
// event completes.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single next event, advancing time to it. It reports
// whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.Executed++
	ev.fn()
	return true
}

// Run executes events until the queue is empty or Stop is called. It
// returns the final simulated time.
func (e *Engine) Run() Tick {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil executes events with time ≤ deadline. Events scheduled beyond the
// deadline remain queued; time advances to the deadline if the queue runs
// dry earlier, mirroring how a synchronous co-simulation window behaves.
func (e *Engine) RunUntil(deadline Tick) Tick {
	e.stopped = false
	for !e.stopped {
		if len(e.queue) == 0 || e.queue[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}
