package sim

import "math"

// RNG is a small, fast, reproducible pseudo-random generator
// (xoshiro256** seeded through SplitMix64). Every stochastic component in
// onocsim owns its own RNG stream derived from the experiment seed and a
// component label, so adding a component never perturbs the random sequence
// observed by the others.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the seed expander; it is the standard SplitMix64 step.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Any seed, including zero, is
// valid: SplitMix64 expansion guarantees a non-degenerate internal state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

// NewStream derives an independent generator from a parent seed and a stream
// label. Streams with distinct labels are statistically independent.
func NewStream(seed uint64, label string) *RNG {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	return NewRNG(h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n ≤ 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation with rejection.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate ≤ 0.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0,1], so the log is finite.
	return -math.Log(1-u) / rate
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns the number of failures before the first success in a
// Bernoulli(p) process; it is used for bursty traffic interarrival times.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("sim: Geometric requires p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	return int(math.Floor(math.Log(1-r.Float64()) / math.Log(1-p)))
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
